// Command experiments runs the paper-reproduction experiment suite
// (E1–E13, see DESIGN.md) and prints the EXPERIMENTS.md tables.
//
// Usage:
//
//	experiments [-run E1,E4] [-scale 1.0] [-seed 2024] [-workers 0]
//	            [-progress] [-csv dir] [-cache dir [-cache-max-bytes n]]
//	            [-shard i/k -out dir [-resume]] [-merge dir]
//	            [-coordinate addr [-chunk n] [-lease-ttl d] [-auth-key k]
//	                             [-out dir [-drain-timeout d]] [-chaos seed]]
//	            [-worker addr [-auth-key k] [-dial-retries n]]
//	            [-cache-gc fingerprint]
//	            [-status-addr addr [-pprof]] [-dump-metrics]
//	            [-events file [-events-max-bytes n]]
//	            [-trace file [-trace-bfs k]]
//
// -scale shrinks workload sizes and replication counts proportionally
// (0.1 gives a quick smoke run); -workers bounds the trial worker pool
// (0 uses every core; output is bit-identical for every worker count
// under the same seed); -progress streams per-trial completions plus
// an aggregate rate/ETA to stderr; -csv additionally writes every
// table as a CSV file into the given directory. Ctrl-C cancels the run
// between trials.
//
// Distribution (DESIGN.md §6): -cache dir keeps a content-addressed
// per-trial result cache, so interrupted sweeps resume where they
// stopped and unchanged experiments re-reduce without recomputing.
// -shard i/k (1-based, with -out dir) executes only the i-th of k
// disjoint slices of each selected experiment's trials and writes a
// shard file instead of tables — run the k shards on any machines,
// gather the files into one directory, and -merge dir reassembles them
// and prints tables byte-identical to a single-process run of the same
// seed and scale. -resume lets a -shard run reuse a matching existing
// shard file.
//
// Work stealing (DESIGN.md §6.4): -coordinate addr listens for worker
// processes, leases them trial chunks with heartbeat deadlines —
// reassigning a dead worker's chunk — and prints the same
// byte-identical tables once every trial reports; -worker addr joins
// such a coordinator, executing leased chunks through the local
// -workers pool and optional -cache. Every process must use the same
// binary, -run, -seed, and -scale; the plan fingerprint enforces this.
// -cache-gc fingerprint deletes a finished or abandoned run's entries
// (plus crashed writers' temp files) from -cache.
//
// Robustness (DESIGN.md §6.6): -auth-key authenticates every
// coordinator/worker handshake by shared-key HMAC challenge–response —
// both ends must carry the same key, and a mismatch is rejected before
// any trial is leased. With -coordinate, -out names a drain directory:
// a cancelled coordinator waits up to -drain-timeout for in-flight
// leases, then persists every completed result there as 1-of-1 shard
// files, which `-shard 1/1 -out dir -resume` re-executes from (only the
// missing trials run) or -merge reassembles. -dial-retries bounds a
// worker's consecutive failed connection attempts; within the bound the
// worker rides out coordinator restarts and partitions with jittered
// exponential backoff. -cache-max-bytes evicts least-recently-used
// -cache entries down to the given size after a successful run, never
// touching entries the run itself wrote or read. -chaos n wraps every
// accepted coordinator connection in deterministic seed-scripted fault
// injection (internal/faultnet) for recovery drills; the rendered
// tables must still be byte-identical to a fault-free run.
//
// Observability (DESIGN.md §9): -status-addr serves an HTTP ops plane
// on a coordinator or worker — /metrics (Prometheus text exposition),
// /status (JSON sweep snapshot: chunk/lease table summary, per-worker
// completion counts, rate and ETA; append ?format=html for a live
// view), /healthz, and with -pprof the net/http/pprof profiles.
// -events file appends one JSON line per sweep lifecycle event (worker
// join/leave, lease grant/steal/revoke/complete, chunk fail/retry,
// injected faults, drain, cache GC/eviction); -events-max-bytes rotates
// the file (events.jsonl -> events.1.jsonl, ...) when it would exceed
// the limit, with sequence numbers monotonic across rotations.
// -dump-metrics prints the full metrics exposition to stderr at exit.
//
// Tracing (DESIGN.md §11): -trace file writes a Chrome trace-event JSON
// timeline (open in Perfetto or chrome://tracing) of the whole sweep —
// per-trial spans with generate/freeze/search phases in a local run; in
// a coordinated run the lease lifecycle, steals, retries, and every
// worker's merged trial spans, propagated back over the wire, in one
// file. -trace belongs on the process that owns the timeline (a plain
// run or the coordinator; workers are enabled remotely via the lease
// protocol). -trace-bfs k additionally records every k-th BFS frontier
// level inside search phases — on a worker process set it directly,
// since the wire carries no sampling config. Analyze the file with
// `sweeptrace` (critical path, per-worker utilization, slowest trials).
// All of it is strictly observational: rendered tables stay
// byte-identical with every observability flag enabled.
//
// Tables go to stdout; all status goes to stderr, so single-process,
// merged, and coordinated outputs diff cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/experiment"
	"scalefree/internal/faultnet"
	"scalefree/internal/obs"
	"scalefree/internal/obs/trace"
	"scalefree/internal/sweep"
)

// mFaultsInjected counts chaos faults by operation. It lives here, not
// in faultnet, so the fault injector itself stays dependency-free; the
// CLI bridges its structured event callback into metrics and the event
// log.
var mFaultsInjected = obs.Default().CounterVec("scalefree_faultnet_injected_total",
	"Faults injected by the -chaos wrapper, by operation.", "op")

// buildInfo registers the binary's identity as the constant metric
// scalefree_build_info and feeds the /status payloads — the fleet-wide
// answer to "which revision is this process actually running?".
var buildInfo = obs.RegisterBuildInfo(obs.Default())

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// options is the parsed command line. Modes and their validity rules
// live in validate(), separately from flag plumbing, so the CLI test
// covers every rejected combination without exec'ing the binary.
type options struct {
	runList  string
	scale    float64
	seed     uint64
	workers  int
	progress bool
	csvDir   string
	cacheDir string
	shard    string
	out      string
	merge    string
	resume   bool
	coord    string
	worker   string
	cacheGC  string
	chunk    int
	leaseTTL time.Duration

	authKey       string
	dialRetries   int
	drainTimeout  time.Duration
	cacheMaxBytes int64
	chaos         uint64

	statusAddr     string
	pprofOn        bool
	eventsPath     string
	eventsMaxBytes int64
	dumpMetrics    bool
	tracePath      string
	traceBFS       int

	// set records which flags were explicitly given, for rejecting
	// explicit-but-meaningless combinations whose zero values are
	// otherwise fine.
	set map[string]bool
}

func (o *options) isSet(name string) bool { return o.set[name] }

// mode names the execution mode the flags select: "run", "shard",
// "merge", "coordinate", "worker", or "cache-gc".
func (o *options) mode() string {
	switch {
	case o.merge != "":
		return "merge"
	case o.shard != "":
		return "shard"
	case o.coord != "":
		return "coordinate"
	case o.worker != "":
		return "worker"
	case o.cacheGC != "":
		return "cache-gc"
	default:
		return "run"
	}
}

// validate rejects meaningless flag combinations up front — a
// silently ignored flag reads as accepted and misleads the operator.
func (o *options) validate() error {
	// The five non-default modes are pairwise exclusive.
	modes := []struct{ flag, value string }{
		{"-merge", o.merge}, {"-shard", o.shard}, {"-coordinate", o.coord},
		{"-worker", o.worker}, {"-cache-gc", o.cacheGC},
	}
	var active []string
	for _, m := range modes {
		if m.value != "" {
			active = append(active, m.flag)
		}
	}
	if len(active) > 1 {
		return fmt.Errorf("%s are mutually exclusive: each selects a different execution mode", strings.Join(active, " and "))
	}

	switch o.mode() {
	case "merge":
		switch {
		case o.cacheDir != "":
			return fmt.Errorf("-cache applies to runs that execute trials; -merge only reads shard files")
		case o.resume:
			return fmt.Errorf("-resume applies to -shard runs; -merge re-reads shard files every time")
		case o.isSet("workers") || o.progress:
			return fmt.Errorf("-workers and -progress apply to runs that execute trials; -merge only reads shard files")
		case o.out != "":
			return fmt.Errorf("-out is the shard file directory written by -shard; -merge reads its directory argument")
		}
	case "shard":
		switch {
		case o.out == "":
			return fmt.Errorf("-shard requires -out: shard runs write result files, not tables")
		case o.csvDir != "":
			return fmt.Errorf("-csv applies to runs that print tables; shard runs write result files (use -csv with -merge)")
		}
	case "coordinate":
		// -out here is the drain directory: a cancelled coordinator
		// persists completed results into it as 1-of-1 shard files that
		// `-shard 1/1 -out dir -resume` or -merge pick back up.
		switch {
		case o.isSet("workers"):
			return fmt.Errorf("-workers sizes a trial pool; the coordinator executes no trials (set it on each -worker)")
		case o.cacheDir != "":
			return fmt.Errorf("-cache applies to processes that execute trials; the coordinator only schedules (set it on each -worker)")
		case o.resume:
			return fmt.Errorf("-resume applies to -shard runs; coordinated sweeps resume through each worker's -cache")
		}
	case "worker":
		switch {
		case o.csvDir != "":
			return fmt.Errorf("-csv applies to runs that print tables; workers stream results to the coordinator (use -csv there)")
		case o.resume:
			return fmt.Errorf("-resume applies to -shard runs; workers resume through -cache")
		case o.out != "":
			return fmt.Errorf("-out applies to -shard runs; workers stream results to the coordinator")
		}
	case "cache-gc":
		switch {
		case o.cacheDir == "":
			return fmt.Errorf("-cache-gc needs -cache to name the cache directory to collect")
		case o.isSet("workers") || o.progress || o.csvDir != "" || o.out != "" || o.resume:
			return fmt.Errorf("-cache-gc only deletes cache entries; it executes no trials and prints no tables")
		}
	case "run":
		switch {
		case o.out != "":
			return fmt.Errorf("-out is the shard file directory; it requires -shard i/k")
		case o.resume:
			return fmt.Errorf("-resume applies to -shard runs; plain runs resume via -cache")
		}
	}

	// Coordinator tunables make sense only where leases exist.
	if o.mode() != "coordinate" {
		if o.isSet("chunk") {
			return fmt.Errorf("-chunk sizes coordinator leases; it requires -coordinate")
		}
		if o.isSet("lease-ttl") {
			return fmt.Errorf("-lease-ttl bounds coordinator leases; it requires -coordinate")
		}
	}
	if o.isSet("chunk") && o.chunk < 1 {
		return fmt.Errorf("-chunk must be >= 1 trials per lease")
	}
	if o.isSet("lease-ttl") && o.leaseTTL <= 0 {
		return fmt.Errorf("-lease-ttl must be positive")
	}

	// Robustness tunables are mode-specific too.
	if o.isSet("auth-key") && o.mode() != "coordinate" && o.mode() != "worker" {
		return fmt.Errorf("-auth-key authenticates the coordinator/worker handshake; it requires -coordinate or -worker")
	}
	if o.isSet("dial-retries") && o.mode() != "worker" {
		return fmt.Errorf("-dial-retries bounds a worker's reconnection attempts; it requires -worker")
	}
	if o.isSet("drain-timeout") {
		switch {
		case o.mode() != "coordinate":
			return fmt.Errorf("-drain-timeout bounds a cancelled coordinator's drain; it requires -coordinate")
		case o.out == "":
			return fmt.Errorf("-drain-timeout needs -out to name the drain directory for persisted results")
		case o.drainTimeout <= 0:
			return fmt.Errorf("-drain-timeout must be positive")
		}
	}
	if o.isSet("chaos") && o.mode() != "coordinate" {
		return fmt.Errorf("-chaos injects faults on coordinator connections; it requires -coordinate")
	}
	// Observability flags: the ops plane belongs to long-lived sweep
	// processes; the event log to processes that emit sweep lifecycle
	// events.
	if o.statusAddr != "" && o.mode() != "coordinate" && o.mode() != "worker" {
		return fmt.Errorf("-status-addr serves the coordinator/worker ops plane (/metrics, /status); it requires -coordinate or -worker")
	}
	if o.pprofOn && o.statusAddr == "" {
		return fmt.Errorf("-pprof mounts profiling endpoints on the ops plane; it requires -status-addr")
	}
	if o.eventsPath != "" {
		switch o.mode() {
		case "coordinate", "worker", "cache-gc":
		default:
			return fmt.Errorf("-events records sweep lifecycle events; it requires -coordinate, -worker, or -cache-gc")
		}
	}
	if o.isSet("events-max-bytes") {
		switch {
		case o.eventsPath == "":
			return fmt.Errorf("-events-max-bytes rotates the -events file; it requires -events")
		case o.eventsMaxBytes <= 0:
			return fmt.Errorf("-events-max-bytes must be positive")
		}
	}
	if o.dumpMetrics && o.mode() == "merge" {
		return fmt.Errorf("-dump-metrics snapshots execution metrics; -merge only reads shard files")
	}
	// Tracing: the trace file belongs to the process that owns the sweep
	// timeline — a plain run, or the coordinator (which merges every
	// worker's spans off the wire). Workers are traced remotely: the
	// lease protocol enables their recorders, and their spans ship back
	// on COMPLETE — except BFS level sampling, which the wire does not
	// carry, so -trace-bfs is also a direct worker knob.
	if o.tracePath != "" && o.mode() != "run" && o.mode() != "coordinate" {
		return fmt.Errorf("-trace writes the sweep timeline from a plain run or a coordinator; workers are traced through the lease protocol")
	}
	if o.isSet("trace-bfs") {
		switch {
		case o.traceBFS < 0:
			return fmt.Errorf("-trace-bfs must be >= 0 (0 disables BFS level spans)")
		case o.tracePath == "" && o.mode() != "worker":
			return fmt.Errorf("-trace-bfs samples BFS levels into a trace; it requires -trace (or -worker, whose trace ships to the coordinator)")
		}
	}
	if o.isSet("cache-max-bytes") {
		switch {
		case o.cacheDir == "":
			return fmt.Errorf("-cache-max-bytes bounds the -cache directory; it requires -cache")
		case o.cacheMaxBytes < 0:
			return fmt.Errorf("-cache-max-bytes must be >= 0")
		case o.mode() == "cache-gc":
			return fmt.Errorf("-cache-max-bytes evicts after a run completes; use -cache-gc's fingerprint deletion instead")
		}
	}
	return nil
}

func parseOptions(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.StringVar(&o.runList, "run", "all", "comma-separated experiment IDs (e.g. E1,E4) or 'all'")
	fs.Float64Var(&o.scale, "scale", 1.0, "workload scale factor (1.0 = full EXPERIMENTS.md workload)")
	fs.Uint64Var(&o.seed, "seed", 2024, "master seed")
	fs.IntVar(&o.workers, "workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
	fs.BoolVar(&o.progress, "progress", false, "stream per-trial completions and aggregate rate/ETA to stderr")
	fs.StringVar(&o.csvDir, "csv", "", "directory to also write per-table CSV files (optional)")
	fs.StringVar(&o.cacheDir, "cache", "", "content-addressed per-trial result cache directory (optional)")
	fs.StringVar(&o.shard, "shard", "", "execute one shard i/k (1-based, e.g. 2/5) and write a shard file instead of tables; requires -out")
	fs.StringVar(&o.out, "out", "", "directory for shard files written by -shard")
	fs.StringVar(&o.merge, "merge", "", "merge shard files from this directory and print tables (instead of executing trials)")
	fs.BoolVar(&o.resume, "resume", false, "with -shard: reuse a matching existing shard file's results")
	fs.StringVar(&o.coord, "coordinate", "", "listen on this address (e.g. :9131) and lease trial chunks to -worker processes")
	fs.StringVar(&o.worker, "worker", "", "connect to a coordinator at this address and execute leased chunks")
	fs.StringVar(&o.cacheGC, "cache-gc", "", "delete the given plan fingerprint's entries (plus temp files) from -cache")
	fs.IntVar(&o.chunk, "chunk", 8, "with -coordinate: trials per lease")
	fs.DurationVar(&o.leaseTTL, "lease-ttl", 10*time.Second, "with -coordinate: heartbeat deadline before a lease's chunk is reassigned")
	fs.StringVar(&o.authKey, "auth-key", "", "shared key for the coordinator/worker HMAC handshake (both ends must agree)")
	fs.IntVar(&o.dialRetries, "dial-retries", 0, "with -worker: consecutive failed connection attempts before giving up (0 = default 10, negative = single attempt)")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 0, "with -coordinate -out: how long a cancelled coordinator waits for in-flight leases before draining results to -out")
	fs.Int64Var(&o.cacheMaxBytes, "cache-max-bytes", 0, "after a successful run: evict least-recently-used -cache entries down to this many bytes (current run's entries are never evicted)")
	fs.Uint64Var(&o.chaos, "chaos", 0, "with -coordinate: inject deterministic seed-scripted connection faults (delays, resets, truncations, partitions) for recovery testing")
	fs.StringVar(&o.statusAddr, "status-addr", "", "with -coordinate or -worker: serve the HTTP ops plane (/metrics, /status, /healthz) on this address")
	fs.BoolVar(&o.pprofOn, "pprof", false, "with -status-addr: also mount net/http/pprof under /debug/pprof/")
	fs.StringVar(&o.eventsPath, "events", "", "write one JSON line per sweep lifecycle event to this file")
	fs.Int64Var(&o.eventsMaxBytes, "events-max-bytes", 0, "with -events: rotate the event log when it would exceed this many bytes (events.jsonl -> events.1.jsonl, ...)")
	fs.BoolVar(&o.dumpMetrics, "dump-metrics", false, "print the Prometheus text exposition of all metrics to stderr at exit")
	fs.StringVar(&o.tracePath, "trace", "", "write a Chrome trace-event JSON timeline of the sweep to this file (open in Perfetto; analyze with sweeptrace)")
	fs.IntVar(&o.traceBFS, "trace-bfs", 0, "with -trace (or -worker): record every k-th BFS frontier level as a span inside search phases (0 = off)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	o.set = map[string]bool{}
	fs.Visit(func(f *flag.Flag) { o.set[f.Name] = true })
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func run() error {
	o, err := parseOptions(os.Args[1:])
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var selected []experiment.Experiment
	if o.runList == "all" {
		selected = experiment.Registry()
	} else {
		for _, id := range strings.Split(o.runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiment.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: E1..E13)", id)
			}
			selected = append(selected, e)
		}
	}
	if o.csvDir != "" {
		if err := os.MkdirAll(o.csvDir, 0o755); err != nil {
			return fmt.Errorf("creating CSV directory: %w", err)
		}
	}

	var cache *sweep.Cache
	if o.cacheDir != "" {
		if cache, err = sweep.OpenCache(o.cacheDir); err != nil {
			return err
		}
	}

	cfg := experiment.Config{Seed: o.seed, Scale: o.scale}

	// The event log and the metrics dump bracket whichever mode runs;
	// both are nil-safe no-ops when their flags are absent.
	var events *obs.EventLog
	if o.eventsPath != "" {
		if events, err = obs.OpenEventLogRotating(o.eventsPath, o.eventsMaxBytes); err != nil {
			return err
		}
	}

	err = func() error {
		switch o.mode() {
		case "merge":
			return mergeShards(selected, cfg, o.merge, o.csvDir)
		case "shard":
			spec, err := sweep.ParseShardSpec(o.shard)
			if err != nil {
				return err
			}
			return runShards(ctx, selected, cfg, spec, o.workers, o.progress, cache, o.out, o.resume)
		case "coordinate":
			return runCoordinator(ctx, selected, cfg, o, events)
		case "worker":
			return runWorker(ctx, selected, cfg, o, cache, events)
		case "cache-gc":
			return runCacheGC(cache, o.cacheGC, events)
		default:
			return runAll(ctx, selected, cfg, o, cache)
		}
	}()

	// Eviction runs only after a fully successful run: an interrupted
	// sweep's entries are exactly what the next -cache run resumes from.
	if err == nil && o.isSet("cache-max-bytes") && cache != nil {
		stats, eerr := cache.EvictTo(o.cacheMaxBytes)
		if eerr != nil {
			err = fmt.Errorf("evicting cache to %d bytes: %w", o.cacheMaxBytes, eerr)
		} else {
			events.Emit(obs.Event{Event: "cache_evict", N: stats.Bytes, Msg: stats.String()})
			fmt.Fprintf(os.Stderr, "cache %s: evicted to <= %d bytes (%s)\n", cache.Dir(), o.cacheMaxBytes, stats)
		}
	}

	// Metrics go to stderr: stdout carries only the byte-identical
	// tables the golden comparisons diff.
	if o.dumpMetrics {
		if werr := obs.Default().WriteText(os.Stderr); werr != nil && err == nil {
			err = fmt.Errorf("dumping metrics: %w", werr)
		}
	}
	if cerr := events.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("event log %s: %w", o.eventsPath, cerr)
	}
	return err
}

// progressHook builds the -progress stderr stream: per-trial lines
// with the aggregate sliding-window rate and ETA appended.
func progressHook(tracker *engine.RateTracker) func(engine.Progress) {
	return func(p engine.Progress) {
		tracker.Observe(p)
		status := "ok"
		if p.Err != nil {
			status = "FAIL: " + p.Err.Error()
		}
		fmt.Fprintf(os.Stderr, "  [%d/%d] %s (%v) %s | %s\n",
			p.Done, p.Total, p.Trial.Key, p.Elapsed.Round(time.Millisecond), status,
			tracker.Snapshot())
	}
}

// newRecorder builds the sweep's trace recorder when -trace is set
// (nil otherwise — every recorder method is nil-safe) and opens the
// root "sweep" span on the control lane.
func newRecorder(o *options, procName string) *trace.Recorder {
	if o.tracePath == "" {
		return nil
	}
	rec := trace.New()
	rec.ProcName = procName
	rec.BFSSample = o.traceBFS
	rec.Emit(trace.Record{Ph: 'B', Name: "sweep", Cat: "sweep"})
	return rec
}

// writeTrace closes the root span and writes the Chrome trace-event
// JSON file. Nil-safe: a nil recorder writes nothing.
func writeTrace(rec *trace.Recorder, path string) error {
	if rec == nil {
		return nil
	}
	rec.Emit(trace.Record{Ph: 'E'})
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("creating trace file: %w", err)
	}
	if err := rec.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("writing trace file: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("closing trace file: %w", err)
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %s (open in Perfetto, or run: sweeptrace %s)\n", path, path)
	return nil
}

// runAll is the classic mode: execute every selected experiment in
// this process (optionally through the result cache) and print tables.
//
//sf:wallclock — wraps deterministic runs with elapsed-time reporting.
func runAll(ctx context.Context, selected []experiment.Experiment, cfg experiment.Config, o *options, cache *sweep.Cache) error {
	rec := newRecorder(o, "sweep")
	for _, e := range selected {
		fmt.Fprintf(os.Stderr, "=== %s: %s (scale %.2f, seed %d, workers %d)\n",
			e.ID, e.Title, cfg.Scale, cfg.Seed, o.workers)
		opts := engine.Options{Workers: o.workers, Trace: rec}
		if o.progress {
			opts.Progress = progressHook(engine.NewRateTracker(0))
		}
		rec.Emit(trace.Record{Ph: 'B', Name: "experiment " + e.ID, Cat: "sweep"})
		start := time.Now()
		tables, stats, err := e.RunCached(ctx, cfg, opts, cache)
		rec.Emit(trace.Record{Ph: 'E'})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "    completed in %v (%s)\n\n",
			time.Since(start).Round(time.Millisecond), stats)
		if err := emit(e, tables, o.csvDir); err != nil {
			return err
		}
	}
	return writeTrace(rec, o.tracePath)
}

// runShards executes one shard of every selected experiment, writing
// one shard file per experiment into outDir.
//
//sf:wallclock — wraps deterministic runs with elapsed-time reporting.
func runShards(ctx context.Context, selected []experiment.Experiment, cfg experiment.Config, spec sweep.ShardSpec, workers int, progress bool, cache *sweep.Cache, outDir string, resume bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("creating shard output directory: %w", err)
	}
	for _, e := range selected {
		path := filepath.Join(outDir, e.ShardFileName(spec))
		fp, err := e.Fingerprint(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "=== %s shard %s: %s (scale %.2f, seed %d, fp %s) -> %s\n",
			e.ID, spec, e.Title, cfg.Scale, cfg.Seed, fp, path)
		opts := engine.Options{Workers: workers}
		if progress {
			opts.Progress = progressHook(engine.NewRateTracker(0))
		}
		start := time.Now()
		stats, err := e.RunShard(ctx, cfg, spec, opts, cache, path, resume)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "    completed in %v (%s)\n",
			time.Since(start).Round(time.Millisecond), stats)
	}
	return nil
}

// coordStatus is the /status payload a coordinator serves: process
// identity, the sweep scheduling snapshot, and the same rate/ETA and
// per-worker counts the -progress stderr line prints — both render one
// Aggregator, so they always agree.
type coordStatus struct {
	Mode          string               `json:"mode"`
	Addr          string               `json:"addr"`
	Seed          uint64               `json:"seed"`
	Scale         float64              `json:"scale"`
	Experiments   []string             `json:"experiments"`
	Sweep         sweep.CoordSnapshot  `json:"sweep"`
	Done          int                  `json:"done"`
	Total         int                  `json:"total"`
	RatePerSec    float64              `json:"rate_per_sec"`
	ETA           string               `json:"eta,omitempty"`
	Workers       []engine.SourceCount `json:"workers"`
	ChaosInjected int64                `json:"chaos_injected,omitempty"`
	Build         obs.BuildInfo        `json:"build"`
}

// runCoordinator serves the selected experiments' trials to -worker
// processes and prints the reduced tables once every trial reports.
//
//sf:wallclock — fleet orchestration; timing is operational output.
func runCoordinator(ctx context.Context, selected []experiment.Experiment, cfg experiment.Config, o *options, events *obs.EventLog) error {
	total := 0
	expIDs := make([]string, 0, len(selected))
	for _, e := range selected {
		plan, err := e.Plan(cfg)
		if err != nil {
			return fmt.Errorf("%s: planning: %w", e.ID, err)
		}
		fp, err := e.Fingerprint(cfg)
		if err != nil {
			return err
		}
		total += len(plan.Trials)
		expIDs = append(expIDs, e.ID)
		fmt.Fprintf(os.Stderr, "=== %s: %d trials (scale %.2f, seed %d, fp %s)\n",
			e.ID, len(plan.Trials), cfg.Scale, cfg.Seed, fp)
	}
	lis, err := net.Listen("tcp", o.coord)
	if err != nil {
		return fmt.Errorf("coordinator listening on %s: %w", o.coord, err)
	}
	fmt.Fprintf(os.Stderr, "coordinating %d trials on %s (chunk %d, lease TTL %v)\n",
		total, lis.Addr(), o.chunk, o.leaseTTL)

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
	}
	var faultLis *faultnet.Listener
	if o.isSet("chaos") {
		faultLis = faultnet.Listen(lis, o.chaos, faultnet.Default())
		faultLis.Log = logf
		faultLis.OnEvent = func(ev faultnet.Event) {
			mFaultsInjected.With(ev.Op).Inc()
			events.Emit(obs.Event{Event: "fault_injected", Op: ev.Op, Conn: ev.Conn, N: ev.Seq})
		}
		lis = faultLis
		fmt.Fprintf(os.Stderr, "chaos: injecting scripted faults on every accepted connection (seed %d)\n", o.chaos)
	}

	rec := newRecorder(o, "coordinator")
	observer := &sweep.CoordObserver{}
	copts := sweep.CoordOptions{
		ChunkSize: o.chunk,
		LeaseTTL:  o.leaseTTL,
		AuthKey:   o.authKey,
		Log:       logf,
		Events:    events,
		Observer:  observer,
		Trace:     rec,
	}
	if o.out != "" {
		if err := os.MkdirAll(o.out, 0o755); err != nil {
			return fmt.Errorf("creating drain directory: %w", err)
		}
		drain, err := experiment.DrainToDir(selected, cfg, o.out, logf)
		if err != nil {
			return err
		}
		copts.Drain = drain
		copts.DrainTimeout = o.drainTimeout
	}

	// One aggregator feeds both the -progress stderr stream and the
	// /status payload, so the two views can never disagree. OnResult is
	// observation only — attaching it does not perturb scheduling or
	// results, which the golden observability test pins.
	var agg *engine.Aggregator
	if o.progress || o.statusAddr != "" {
		agg = engine.NewAggregator(total, engine.NewRateTracker(0))
		progress := o.progress
		copts.OnResult = func(worker, expID string, t engine.Trial) {
			agg.Add(worker)
			if progress {
				snap, _ := agg.Snapshot()
				fmt.Fprintf(os.Stderr, "  [%d/%d] %s %s (worker %s) | %s\n",
					snap.Done, snap.Total, expID, t.Key, worker, snap)
			}
		}
	}

	if o.statusAddr != "" {
		status := func() any {
			s := coordStatus{
				Mode:        "coordinate",
				Addr:        lis.Addr().String(),
				Seed:        cfg.Seed,
				Scale:       cfg.Scale,
				Experiments: expIDs,
				Sweep:       observer.Snapshot(),
				Total:       total,
				Workers:     []engine.SourceCount{},
				Build:       buildInfo,
			}
			if agg != nil {
				snap, workers := agg.SnapshotSorted()
				s.Done = snap.Done
				s.RatePerSec = snap.Rate
				if snap.ETA > 0 {
					s.ETA = snap.ETA.Round(time.Second).String()
				}
				s.Workers = workers
			}
			if faultLis != nil {
				s.ChaosInjected = faultLis.Injected()
			}
			return s
		}
		srv, err := obs.StartOps(o.statusAddr, obs.NewOpsHandler(obs.Default(), status, o.pprofOn))
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ops plane on http://%s (/metrics /status /healthz)\n", srv.Addr())
	}

	start := time.Now()
	tables, err := experiment.CoordinateSweep(ctx, selected, cfg, lis, copts)
	if faultLis != nil {
		fmt.Fprintf(os.Stderr, "chaos: %d faults injected\n", faultLis.Injected())
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep completed in %v\n", time.Since(start).Round(time.Millisecond))
	if agg != nil && o.progress {
		// Final per-worker attribution, in the same sorted order /status
		// reports, so the last stderr line and a final /status scrape
		// match field for field.
		snap, workers := agg.SnapshotSorted()
		parts := make([]string, 0, len(workers))
		for _, w := range workers {
			parts = append(parts, fmt.Sprintf("%s=%d", w.Source, w.Done))
		}
		fmt.Fprintf(os.Stderr, "workers: [%d/%d] %s\n", snap.Done, snap.Total, strings.Join(parts, " "))
	}
	for i, e := range selected {
		if err := emit(e, tables[i], o.csvDir); err != nil {
			return err
		}
	}
	return writeTrace(rec, o.tracePath)
}

// runWorker joins a coordinator and executes leased chunks until the
// sweep is done.
//
//sf:wallclock — fleet orchestration; timing is operational output.
func runWorker(ctx context.Context, selected []experiment.Experiment, cfg experiment.Config, o *options, cache *sweep.Cache, events *obs.EventLog) error {
	// The worker always carries a recorder, but disabled: the lease
	// protocol switches it on when the coordinator is tracing, and the
	// worker's spans ship back on COMPLETE lines — no local trace file,
	// no worker-side tracing flag. -trace-bfs is the one local knob,
	// since the wire carries no sampling config.
	rec := trace.New()
	rec.SetEnabled(false)
	rec.BFSSample = o.traceBFS
	eopts := engine.Options{Workers: o.workers, Trace: rec}
	if o.progress {
		eopts.Progress = progressHook(engine.NewRateTracker(0))
	}
	name := sweep.DefaultWorkerName()
	wopts := sweep.WorkerOptions{
		Name:        name,
		AuthKey:     o.authKey,
		DialRetries: o.dialRetries,
		Events:      events,
		Trace:       rec,
		Log: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "  "+format+"\n", args...)
		},
	}
	if o.statusAddr != "" {
		status := func() any {
			return map[string]any{
				"mode":        "worker",
				"name":        name,
				"coordinator": o.worker,
				"seed":        cfg.Seed,
				"scale":       cfg.Scale,
				"workers":     o.workers,
				"build":       buildInfo,
			}
		}
		srv, err := obs.StartOps(o.statusAddr, obs.NewOpsHandler(obs.Default(), status, o.pprofOn))
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ops plane on http://%s (/metrics /status /healthz)\n", srv.Addr())
	}
	fmt.Fprintf(os.Stderr, "joining coordinator at %s (scale %.2f, seed %d, workers %d)\n",
		o.worker, cfg.Scale, cfg.Seed, o.workers)
	start := time.Now()
	stats, err := experiment.SweepWorker(ctx, selected, cfg, o.worker, eopts, cache, wopts)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "worker done in %v (%s)\n", time.Since(start).Round(time.Millisecond), stats)
	return nil
}

// runCacheGC deletes one plan fingerprint's entries from the cache.
func runCacheGC(cache *sweep.Cache, fingerprint string, events *obs.EventLog) error {
	stats, err := cache.GC(fingerprint)
	if err != nil {
		return err
	}
	events.Emit(obs.Event{Event: "cache_gc", N: stats.Bytes, Msg: stats.String()})
	fmt.Fprintf(os.Stderr, "cache-gc %s: removed %s\n", cache.Dir(), stats)
	return nil
}

// mergeShards reassembles shard files from dir for every selected
// experiment and prints the reduced tables.
func mergeShards(selected []experiment.Experiment, cfg experiment.Config, dir, csvDir string) error {
	for _, e := range selected {
		paths, err := filepath.Glob(filepath.Join(dir, e.ID+".shard-*of*"))
		if err != nil {
			return err
		}
		if len(paths) == 0 {
			return fmt.Errorf("%s: no shard files named %s.shard-*of* in %s", e.ID, e.ID, dir)
		}
		sort.Strings(paths)
		fmt.Fprintf(os.Stderr, "=== %s: merging %d shard files (scale %.2f, seed %d)\n",
			e.ID, len(paths), cfg.Scale, cfg.Seed)
		tables, err := e.MergeShardFiles(cfg, paths)
		if err != nil {
			return err
		}
		if err := emit(e, tables, csvDir); err != nil {
			return err
		}
	}
	return nil
}

// emit renders tables to stdout and, when csvDir is set, as CSV files.
func emit(e experiment.Experiment, tables []experiment.Table, csvDir string) error {
	for ti, tab := range tables {
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		if csvDir != "" {
			name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), ti)
			f, err := os.Create(filepath.Join(csvDir, name))
			if err != nil {
				return fmt.Errorf("creating %s: %w", name, err)
			}
			if err := tab.CSV(f); err != nil {
				f.Close()
				return fmt.Errorf("writing %s: %w", name, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("closing %s: %w", name, err)
			}
		}
	}
	return nil
}
