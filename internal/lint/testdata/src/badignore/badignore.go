// Package badignore names an analyzer that does not exist; loading it
// must fail.
package badignore

//sflint:ignore nosuch a reason for a nonexistent analyzer
func f() int { return 1 }
