package search

import (
	"scalefree/internal/rng"

	"scalefree/internal/graph"
)

// Scratch holds the reusable state of one search worker: a persistent
// Oracle whose vertex-indexed tables are cleared and reused search to
// search, the slot-permutation shuffler, and slab arenas for the
// per-vertex slices the oracle hands out. One scratch serves one
// oracle at a time; constructing a new oracle with the same scratch
// invalidates the previous one. After a warm-up search, repeated
// searches over same-size graphs allocate nothing.
//
// Scratch is memory reuse only: a search through a scratch-backed
// oracle behaves bit-identically to one through a fresh oracle.
type Scratch struct {
	oracle   Oracle
	shuffler rng.RNG

	viewSlab   slab[View]
	slotSlab   slab[int32]
	vertexSlab slab[graph.Vertex]
}

// slab is a bump allocator handing out zeroed sub-slices of one backing
// buffer. Exhausting the buffer abandons it to the slices already
// handed out and starts a doubled one, so steady-state reuse converges
// to zero allocations after a few warm-up rounds.
type slab[T any] struct {
	buf []T
	off int
}

func (s *slab[T]) reset() { s.off = 0 }

//sf:hotpath
func (s *slab[T]) alloc(n int) []T {
	if s.off+n > len(s.buf) {
		c := 2 * len(s.buf)
		if c < s.off+n {
			c = s.off + n
		}
		if c < 64 {
			c = 64
		}
		s.buf = make([]T, c)
		s.off = 0
	}
	out := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	clear(out)
	return out
}

// allocOne hands out one zeroed T from the slab.
//
//sf:hotpath
func (s *slab[T]) allocOne() *T {
	return &s.alloc(1)[0]
}
