// Package stats is the statistics toolkit behind every measurement in
// the repository: summary statistics, degree histograms and CCDFs,
// discrete power-law maximum-likelihood fitting, log-log scaling
// regressions (the tool that turns search-cost sweeps into exponents),
// bootstrap confidence intervals, and the chi-square and
// Kolmogorov–Smirnov tests used by the distribution-equality tests of
// the equivalence machinery.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice
// or out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		panic(fmt.Sprintf("stats: Quantile(%v) out of [0, 1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5 quantile.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary bundles the descriptive statistics reported in experiment
// tables.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	StdErr float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs. It panics on an empty slice.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: Summarize of empty slice")
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		StdErr: StdErr(xs),
		Min:    min,
		Median: Median(xs),
		Max:    max,
	}
}

// IntsToFloats converts an []int sample to []float64.
func IntsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
