package rng

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestNewDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at step %d: %d != %d", i, got, want)
		}
	}
}

func TestNewDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 outputs", same)
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := make(map[uint64]bool)
	for stream := uint64(0); stream < 1000; stream++ {
		s := DeriveSeed(12345, stream)
		if seen[s] {
			t.Fatalf("DeriveSeed collision at stream %d", stream)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("DeriveSeed ignores the base seed")
	}
}

// TestDeriveSeedStreamIndependence is the property the parallel trial
// engine leans on: generators seeded from *consecutive* stream indices
// of the same base must behave like independent streams. It checks, for
// several adjacent index pairs, that the two streams never collide
// positionally over many draws and that their outputs differ in about
// half their bits on average (the bitwise signature of independent
// uniform draws).
func TestDeriveSeedStreamIndependence(t *testing.T) {
	const draws = 4096
	base := uint64(2024)
	for _, stream := range []uint64{0, 1, 7, 1000} {
		a := New(DeriveSeed(base, stream))
		b := New(DeriveSeed(base, stream+1))
		differing := 0
		for i := 0; i < draws; i++ {
			x, y := a.Uint64(), b.Uint64()
			if x == y {
				t.Fatalf("streams %d and %d collide at position %d", stream, stream+1, i)
			}
			differing += bits.OnesCount64(x ^ y)
		}
		mean := float64(differing) / (64 * draws)
		// Independent uniform draws differ in half their bits; the
		// tolerance is ~6 standard deviations of the mean estimate.
		if math.Abs(mean-0.5) > 0.006 {
			t.Errorf("streams %d and %d: mean bit difference %.4f, want ~0.5",
				stream, stream+1, mean)
		}
	}
}

// TestDeriveSeedCrossBaseIndependence extends the check across base
// seeds: the same stream index under different bases must also yield
// unrelated generators (experiments derive both ways).
func TestDeriveSeedCrossBaseIndependence(t *testing.T) {
	const draws = 4096
	a := New(DeriveSeed(1, 42))
	b := New(DeriveSeed(2, 42))
	differing := 0
	for i := 0; i < draws; i++ {
		x, y := a.Uint64(), b.Uint64()
		if x == y {
			t.Fatalf("bases 1 and 2 collide at position %d", i)
		}
		differing += bits.OnesCount64(x ^ y)
	}
	if mean := float64(differing) / (64 * draws); math.Abs(mean-0.5) > 0.006 {
		t.Errorf("cross-base mean bit difference %.4f, want ~0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: count %d too far from expectation %.0f", i, c, want)
		}
	}
}

func TestIntRange(t *testing.T) {
	r := New(3)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("IntRange(-5,5) = %d", v)
		}
	}
	if got := r.IntRange(4, 4); got != 4 {
		t.Fatalf("IntRange(4,4) = %d, want 4", got)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	sum := 0.0
	const draws = 100000
	for i := 0; i < draws; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
		if r.Bernoulli(-1) {
			t.Fatal("Bernoulli(-1) returned true")
		}
		if !r.Bernoulli(2) {
			t.Fatal("Bernoulli(2) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(13)
	const p, draws = 0.3, 200000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	got := float64(hits) / draws
	if math.Abs(got-p) > 0.005 {
		t.Errorf("Bernoulli(%v) empirical rate %v", p, got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == int(n)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestPermUniformity(t *testing.T) {
	// All 6 permutations of 3 elements should appear about equally often.
	r := New(17)
	counts := map[[3]int]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		p := r.Perm(3)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	want := float64(draws) / 6
	for p, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("perm %v: count %d too far from %.0f", p, c, want)
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	seen := map[int]bool{}
	for _, x := range xs {
		got += x
		seen[x] = true
	}
	if got != sum || len(seen) != len(xs) {
		t.Fatalf("shuffle corrupted slice: %v", xs)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(31)
	const p, draws = 0.25, 100000
	sum := 0
	for i := 0; i < draws; i++ {
		sum += r.Geometric(p)
	}
	got := float64(sum) / draws
	want := (1 - p) / p
	if math.Abs(got-want) > 0.1 {
		t.Errorf("Geometric(%v) mean %v, want %v", p, got, want)
	}
	if v := r.Geometric(1); v != 0 {
		t.Errorf("Geometric(1) = %d, want 0", v)
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestExpMean(t *testing.T) {
	r := New(37)
	const lambda, draws = 2.0, 100000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += r.Exp(lambda)
	}
	if got := sum / draws; math.Abs(got-1/lambda) > 0.02 {
		t.Errorf("Exp(%v) mean %v, want %v", lambda, got, 1/lambda)
	}
}

func TestParetoBounds(t *testing.T) {
	r := New(41)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2.5, 1, 100)
		if v < 1 || v > 100 {
			t.Fatalf("Pareto sample %v out of [1, 100]", v)
		}
	}
}

func TestReseedMatchesNew(t *testing.T) {
	r := New(1)
	r.Uint64() // disturb the state
	r.Reseed(42)
	want := New(42)
	for i := 0; i < 16; i++ {
		if got, exp := r.Uint64(), want.Uint64(); got != exp {
			t.Fatalf("draw %d: Reseed stream %d != New stream %d", i, got, exp)
		}
	}
}
