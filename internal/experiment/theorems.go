package experiment

import (
	"fmt"
	"strings"

	"scalefree/internal/cooperfrieze"
	"scalefree/internal/core"
	"scalefree/internal/equivalence"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
	"scalefree/internal/search"
)

// walkBudgetFactor caps walk-style algorithms at this multiple of n so
// that pathological walks terminate; the found-rate column records how
// often the cap bit. Non-walk algorithms run uncensored (they finish
// within m requests on connected graphs).
const walkBudgetFactor = 50

func isWalk(a search.Algorithm) bool {
	switch a.Name() {
	case "random-walk", "self-avoiding-walk", "random-walk-strong":
		return true
	default:
		return strings.HasPrefix(a.Name(), "biased-walk")
	}
}

// RunE1 measures Theorem 1 in the weak model: for every weak algorithm
// and several (p, m), the expected number of requests to find vertex n
// grows at least like √n, and pointwise dominates the Lemma-1 bound
// |V|·P(E)/2.
func RunE1(cfg Config) ([]Table, error) {
	sizes := cfg.sizes(512, 5)
	reps := cfg.scaleInt(24, 6)
	table := &Table{
		Title: "E1  Theorem 1 (weak model) — expected requests to find vertex n in Móri graphs",
		Columns: []string{"algorithm", "p", "m", "n(max)", "mean@max", "bound@max",
			"fit-exponent", "±se", "R2", "found-rate"},
		Notes: []string{
			"theorem: exponent >= 0.5 and mean >= bound at every n (bound = |V|·P(E)/2, exact)",
			fmt.Sprintf("sizes %v, %d reps per point; walks censored at %d·n requests", sizes, reps, walkBudgetFactor),
		},
	}
	stream := uint64(0)
	for _, p := range []float64{0.25, 0.5, 0.75, 1.0} {
		for _, m := range []int{1, 2} {
			for _, alg := range search.WeakAlgorithms() {
				stream++
				spec := core.SearchSpec{
					Algorithm: alg,
					Reps:      reps,
					Seed:      cfg.seed(stream),
				}
				if isWalk(alg) {
					spec.Budget = walkBudgetFactor * sizes[len(sizes)-1]
				}
				res, err := core.MeasureScaling(sizes,
					func(n int) core.GraphGen { return core.MoriGen(mori.Config{N: n, M: m, P: p}) },
					func(n int) (float64, error) { return core.Theorem1Bound(n, p) },
					spec)
				if err != nil {
					return nil, fmt.Errorf("E1 p=%v m=%d %s: %w", p, m, alg.Name(), err)
				}
				last := res.Points[len(res.Points)-1]
				table.AddRow(alg.Name(), p, m, last.N,
					last.Measurement.Requests.Mean, last.Bound,
					res.Fit.Exponent, res.Fit.ExponentSE, res.Fit.R2,
					last.Measurement.FoundRate)
			}
		}
	}
	return []Table{*table}, nil
}

// RunE2 measures Theorem 1 in the strong model for p < 1/2: the
// expected number of requests grows at least like n^(1/2-p).
func RunE2(cfg Config) ([]Table, error) {
	sizes := cfg.sizes(512, 5)
	reps := cfg.scaleInt(24, 6)
	table := &Table{
		Title: "E2  Theorem 1 (strong model) — expected requests, Móri graphs with p < 1/2",
		Columns: []string{"algorithm", "p", "n(max)", "mean@max",
			"fit-exponent", "±se", "bound-exponent", "found-rate"},
		Notes: []string{
			"theorem: fitted exponent >= 1/2 - p for any strong-model algorithm",
			fmt.Sprintf("sizes %v, %d reps per point", sizes, reps),
		},
	}
	stream := uint64(100)
	for _, p := range []float64{0.1, 0.25, 0.4} {
		for _, alg := range search.StrongAlgorithms() {
			stream++
			spec := core.SearchSpec{
				Algorithm: alg,
				Reps:      reps,
				Seed:      cfg.seed(stream),
			}
			if isWalk(alg) {
				spec.Budget = walkBudgetFactor * sizes[len(sizes)-1]
			}
			res, err := core.MeasureScaling(sizes,
				func(n int) core.GraphGen { return core.MoriGen(mori.Config{N: n, M: 1, P: p}) },
				nil, spec)
			if err != nil {
				return nil, fmt.Errorf("E2 p=%v %s: %w", p, alg.Name(), err)
			}
			last := res.Points[len(res.Points)-1]
			table.AddRow(alg.Name(), p, last.N,
				last.Measurement.Requests.Mean,
				res.Fit.Exponent, res.Fit.ExponentSE,
				core.StrongModelExponent(p),
				last.Measurement.FoundRate)
		}
	}
	return []Table{*table}, nil
}

// cfConfig is the Cooper–Frieze parameterization used by E3 and E6/E7.
func cfConfig(n int, alpha float64) cooperfrieze.Config {
	return cooperfrieze.Config{
		N:          n,
		Alpha:      alpha,
		Beta:       0.5,
		Gamma:      0.5,
		Delta:      0.5,
		AllowLoops: true,
	}
}

// RunE3 measures Theorem 2: Ω(√n) weak-model search cost in
// Cooper–Frieze graphs, with the Lemma-1 bound estimated by Monte
// Carlo.
func RunE3(cfg Config) ([]Table, error) {
	sizes := cfg.sizes(512, 4)
	reps := cfg.scaleInt(24, 6)
	mcReps := cfg.scaleInt(400, 100)
	table := &Table{
		Title: "E3  Theorem 2 — expected requests to find vertex n in Cooper–Frieze graphs (weak model)",
		Columns: []string{"algorithm", "alpha", "n(max)", "mean@max", "bound@max",
			"fit-exponent", "±se", "found-rate"},
		Notes: []string{
			"theorem: exponent >= 0.5; bound = |V|·P̂(E)/2 with P̂ estimated by Monte Carlo",
			fmt.Sprintf("sizes %v, %d reps per point, %d MC generations per bound", sizes, reps, mcReps),
		},
	}
	stream := uint64(200)
	for _, alpha := range []float64{0.5, 0.8} {
		for _, alg := range search.WeakAlgorithms() {
			stream++
			spec := core.SearchSpec{
				Algorithm: alg,
				Reps:      reps,
				Seed:      cfg.seed(stream),
			}
			if isWalk(alg) {
				spec.Budget = walkBudgetFactor * sizes[len(sizes)-1]
			}
			boundSeed := cfg.seed(stream + 5000)
			res, err := core.MeasureScaling(sizes,
				func(n int) core.GraphGen { return core.CooperFriezeGen(cfConfig(n, alpha)) },
				func(n int) (float64, error) {
					return core.Theorem2Bound(cfConfig(n, alpha), mcReps, boundSeed)
				},
				spec)
			if err != nil {
				return nil, fmt.Errorf("E3 alpha=%v %s: %w", alpha, alg.Name(), err)
			}
			last := res.Points[len(res.Points)-1]
			table.AddRow(alg.Name(), alpha, last.N,
				last.Measurement.Requests.Mean, last.Bound,
				res.Fit.Exponent, res.Fit.ExponentSE,
				last.Measurement.FoundRate)
		}
	}
	return []Table{*table}, nil
}

// RunE4 reports the equivalence-event probabilities of Lemmas 2-3:
// exact product formula vs Monte Carlo vs the e^{-(1-p)} floor, plus
// the exhaustive Lemma-2 verification on small trees.
func RunE4(cfg Config) ([]Table, error) {
	mcReps := cfg.scaleInt(20000, 2000)
	probs := &Table{
		Title:   "E4a  P(E_{a,b}) for the canonical window b = a+⌊√(a-1)⌋ (Lemma 3)",
		Columns: []string{"p", "a", "b", "exact", "monte-carlo", "±se", "floor e^{-(1-p)}", "exact>=floor"},
		Notes:   []string{fmt.Sprintf("%d Monte-Carlo generations per estimate", mcReps)},
	}
	r := rng.New(cfg.seed(300))
	for _, p := range []float64{0.25, 0.5, 0.75, 1.0} {
		for _, n := range []int{1 << 8, 1 << 10, 1 << 12} {
			a, b, err := equivalence.Window(n)
			if err != nil {
				return nil, err
			}
			exact, err := equivalence.ExactEventProb(p, a, b)
			if err != nil {
				return nil, err
			}
			est, se, err := equivalence.MonteCarloEventProb(r, p, a, b, mcReps)
			if err != nil {
				return nil, err
			}
			floor := equivalence.Lemma3Bound(p)
			probs.AddRow(p, a, b, exact, est, se, floor, fmt.Sprintf("%v", exact >= floor-1e-12))
		}
	}

	lemma2 := &Table{
		Title:   "E4b  Exhaustive Lemma-2 verification: P(T) = P(σT) conditional on E_{a,b}",
		Columns: []string{"tree-size", "window", "p", "pairs-checked", "result"},
	}
	for _, tc := range []struct {
		size, a, b int
		p          float64
	}{
		{6, 2, 5, 0.5},
		{7, 3, 6, 0.5},
		{7, 3, 6, 0.25},
		{8, 4, 7, 0.75},
	} {
		checked, err := equivalence.VerifyLemma2(tc.size, tc.a, tc.b, tc.p, 1e-12)
		result := "ok"
		if err != nil {
			result = err.Error()
		}
		lemma2.AddRow(tc.size, fmt.Sprintf("(%d,%d]", tc.a, tc.b), tc.p, checked, result)
	}
	return []Table{*probs, *lemma2}, nil
}
