package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEventLogSchema pins the JSONL schema: fixed field order, absent
// fields omitted, seq monotonic from 1, RFC3339Nano UTC timestamps.
func TestEventLogSchema(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb)
	fixed := time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC)
	l.now = func() time.Time { return fixed }

	l.Emit(Event{Event: "worker_join", Worker: "w1", Conn: 3})
	l.Emit(Event{Event: "lease_grant", Worker: "w1", Exp: "E4", Lease: 9, Chunk: ChunkRange(0, 8)})
	l.Emit(Event{Event: "cache_evict", N: 4096, Msg: "evicted 2 entries"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	want := `{"seq":1,"ts":"2026-08-08T12:00:00.123456789Z","event":"worker_join","worker":"w1","conn":3}
{"seq":2,"ts":"2026-08-08T12:00:00.123456789Z","event":"lease_grant","worker":"w1","exp":"E4","lease":9,"chunk":"[0,8)"}
{"seq":3,"ts":"2026-08-08T12:00:00.123456789Z","event":"cache_evict","n":4096,"msg":"evicted 2 entries"}
`
	if sb.String() != want {
		t.Errorf("event log:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}

// TestEventLogRoundTrip: every line re-parses into an equal Event —
// the schema is machine-consumable, not just printable.
func TestEventLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	in := []Event{
		{Event: "worker_join", Worker: "host:1"},
		{Event: "fault_injected", Op: "reset", Conn: 2, N: 17},
		{Event: "sweep_abort", Msg: `worker said "no" \o/`},
	}
	for _, e := range in {
		l.Emit(e)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != len(in) {
		t.Fatalf("wrote %d lines, want %d", len(lines), len(in))
	}
	for i, line := range lines {
		var got Event
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		if got.Seq != uint64(i+1) {
			t.Errorf("line %d seq = %d, want %d", i, got.Seq, i+1)
		}
		if _, err := time.Parse(time.RFC3339Nano, got.TS); err != nil {
			t.Errorf("line %d ts %q: %v", i, got.TS, err)
		}
		want := in[i]
		want.Seq, want.TS = got.Seq, got.TS
		if got != want {
			t.Errorf("line %d round-trip = %+v, want %+v", i, got, want)
		}
	}
}

// TestEventLogStickyError: a failed write latches, later emits no-op,
// Close reports it.
func TestEventLogStickyError(t *testing.T) {
	l := NewEventLog(failWriter{})
	l.Emit(Event{Event: "x"})
	if l.Err() == nil {
		t.Fatal("write error not latched")
	}
	l.Emit(Event{Event: "y"}) // must not panic or reset the error
	if l.Close() == nil {
		t.Error("Close did not report the write error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, os.ErrClosed }
