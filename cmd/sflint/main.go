// Command sflint runs the repository's static invariant suite
// (internal/lint, DESIGN.md §10): the determinism, lockorder,
// hotpath, and codecreg analyzers that prove at compile time what the
// golden runtime tests can only spot-check per schedule — no
// wall-clock or global randomness on the deterministic side of the
// boundary, the documented coordinator lock order, allocation-free
// //sf:hotpath bodies, and complete codec/parameter registration.
//
// Usage:
//
//	sflint [-json] [-list] [packages]
//
// With no arguments every package of the enclosing module is
// analyzed ("./..."). Package arguments are directories relative to
// the module root (or "./..." explicitly). Diagnostics print one per
// line as file:line:col: analyzer: message; -json emits the same
// findings as a JSON array on stdout for tooling. The exit status is
// 0 for a clean run, 1 when there are findings (including stale
// //sflint:ignore directives), 2 on usage or load errors.
//
// Suppressions are //sflint:ignore <analyzer> <reason> comments on
// the flagged line or the line above; the reason is mandatory and a
// directive that suppresses nothing fails the run, so the ignore list
// can only shrink.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"scalefree/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sflint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// options is the parsed command line, separated from execution so the
// CLI test covers flag validation and output modes without exec'ing
// the binary (the cmd/genstats idiom).
type options struct {
	jsonOut  bool
	list     bool
	dir      string
	patterns []string
}

func parseOptions(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("sflint", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.BoolVar(&o.jsonOut, "json", false, "emit diagnostics as a JSON array on stdout")
	fs.BoolVar(&o.list, "list", false, "list the analyzers and exit")
	fs.StringVar(&o.dir, "C", ".", "analyze the module containing this directory")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	o.patterns = fs.Args()
	if len(o.patterns) == 0 {
		o.patterns = []string{"./..."}
	}
	return o, nil
}

// jsonDiagnostic is the machine-readable diagnostic schema. It is
// part of the tooling contract: field renames are breaking changes.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, stdout, stderr io.Writer) (int, error) {
	o, err := parseOptions(args)
	if err != nil {
		return 2, err
	}
	if o.list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}
	root, err := moduleRoot(o.dir)
	if err != nil {
		return 2, err
	}
	modPath, err := lint.ModulePathOf(root)
	if err != nil {
		return 2, err
	}
	loader := lint.NewLoader(root, modPath)
	pkgs, err := loader.Load()
	if err != nil {
		return 2, err
	}
	selected, err := selectPackages(pkgs, root, modPath, o.patterns)
	if err != nil {
		return 2, err
	}
	res, err := lint.Run(selected, lint.Analyzers)
	if err != nil {
		return 2, err
	}
	all := res.All()
	if o.jsonOut {
		out := make([]jsonDiagnostic, 0, len(all))
		for _, d := range all {
			out = append(out, jsonDiagnostic{
				File:     relPath(root, d.Position.Filename),
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return 2, err
		}
	} else {
		for _, d := range all {
			fmt.Fprintf(stdout, "%s:%d:%d: %s: %s\n",
				relPath(root, d.Position.Filename), d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(stderr, "sflint: %d finding(s) across %d package(s)\n", len(all), len(selected))
		return 1, nil
	}
	fmt.Fprintf(stderr, "sflint: clean (%d packages, %d analyzers)\n", len(selected), len(lint.Analyzers))
	return 0, nil
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", abs)
		}
		d = parent
	}
}

// selectPackages filters the loaded packages by the CLI patterns:
// "./..." (everything), "dir/..." (subtree), or "dir" (one package),
// all relative to the module root.
func selectPackages(pkgs []*lint.Package, root, modPath string, patterns []string) ([]*lint.Package, error) {
	var out []*lint.Package
	seen := map[string]bool{}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		matched := false
		for _, pkg := range pkgs {
			rel := strings.TrimPrefix(strings.TrimPrefix(pkg.Path, modPath), "/")
			ok := false
			switch {
			case pat == "..." || pat == "":
				ok = true
			case strings.HasSuffix(pat, "/..."):
				prefix := strings.TrimSuffix(pat, "/...")
				ok = rel == prefix || strings.HasPrefix(rel, prefix+"/")
			default:
				ok = rel == pat
			}
			if ok && !seen[pkg.Path] {
				seen[pkg.Path] = true
				out = append(out, pkg)
			}
			matched = matched || ok
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages under %s", pat, root)
		}
	}
	return out, nil
}

func relPath(root, path string) string {
	if rel, err := filepath.Rel(root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
