package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"scalefree/internal/obs"
)

// TestCoordObserverSnapshot runs a coordinated sweep with the observer
// and event log attached and pins the observable contract: the final
// snapshot accounts for every trial, survives a JSON round-trip
// unchanged (the /status payload is exactly this struct), and the
// event log records the lease lifecycle with monotonic sequence
// numbers.
func TestCoordObserverSnapshot(t *testing.T) {
	trials := makeTrials(21)
	job := testJob(trials)

	observer := &CoordObserver{}
	if !reflect.DeepEqual(observer.Snapshot(), (CoordSnapshot{})) {
		t.Fatal("unattached observer does not report the zero snapshot")
	}

	var buf bytes.Buffer
	events := obs.NewEventLog(&buf)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: 2 * time.Second,
			Observer: observer, Events: events})
	defer cancel()

	// Scrape the observer while the sweep runs: every intermediate
	// snapshot must be internally consistent even as state changes
	// underneath it.
	scrapeDone := make(chan struct{})
	stop := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := observer.Snapshot()
			if s.DoneTrials > s.TotalTrials {
				t.Errorf("snapshot overcounts: %d done of %d", s.DoneTrials, s.TotalTrials)
				return
			}
		}
	}()

	var executed atomic.Int64
	if _, err := RunWorker(context.Background(), addr,
		countingResolver(job, trials, &executed), WorkerOptions{Name: "obs-w"}); err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	close(stop)
	<-scrapeDone
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)

	snap := observer.Snapshot()
	if !snap.Finished || snap.Failure != "" {
		t.Errorf("final snapshot not cleanly finished: %+v", snap)
	}
	if snap.DoneTrials != 21 || snap.TotalTrials != 21 {
		t.Errorf("final trials = %d/%d, want 21/21", snap.DoneTrials, snap.TotalTrials)
	}
	if snap.PendingChunks != 0 || snap.ActiveLeases != 0 || snap.Workers != 0 {
		t.Errorf("final snapshot has residual scheduling state: %+v", snap)
	}
	if len(snap.Jobs) != 1 || snap.Jobs[0].ExpID != job.ExpID ||
		snap.Jobs[0].Trials != 21 || snap.Jobs[0].Done != 21 {
		t.Errorf("job status = %+v", snap.Jobs)
	}

	// The /status payload is this struct marshalled as-is: a round-trip
	// through its own JSON must reproduce it exactly.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back CoordSnapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Errorf("JSON round-trip changed the snapshot:\n got %+v\nwant %+v", back, snap)
	}

	if err := events.Close(); err != nil {
		t.Fatal(err)
	}
	verifySweepEventLog(t, buf.Bytes(), "obs-w")
}

// verifySweepEventLog parses a JSONL event log written by a clean
// single-worker sweep and checks schema invariants: valid JSON per
// line, sequence numbers 1..n in order, grants balanced by completes,
// and the lifecycle endpoints present.
func verifySweepEventLog(t *testing.T, raw []byte, worker string) {
	t.Helper()
	lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
	if len(lines) == 0 {
		t.Fatal("event log is empty")
	}
	counts := map[string]int{}
	for i, line := range lines {
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if ev.Seq != uint64(i+1) {
			t.Errorf("line %d has seq %d, want %d", i+1, ev.Seq, i+1)
		}
		if ev.Event == "" {
			t.Errorf("line %d has empty event name", i+1)
		}
		counts[ev.Event]++
		switch ev.Event {
		case "lease_grant", "lease_complete", "worker_join", "worker_leave":
			if ev.Worker != worker {
				t.Errorf("line %d (%s) attributes worker %q, want %q", i+1, ev.Event, ev.Worker, worker)
			}
		}
	}
	if counts["lease_grant"] == 0 {
		t.Error("no lease_grant events recorded")
	}
	if counts["lease_grant"] != counts["lease_complete"] {
		t.Errorf("grants (%d) and completes (%d) unbalanced in a clean sweep",
			counts["lease_grant"], counts["lease_complete"])
	}
	if counts["worker_join"] != 1 || counts["worker_leave"] != 1 {
		t.Errorf("worker lifecycle events = join:%d leave:%d, want 1 each",
			counts["worker_join"], counts["worker_leave"])
	}
	if counts["sweep_done"] != 1 {
		t.Errorf("sweep_done events = %d, want exactly 1", counts["sweep_done"])
	}
}

// TestCoordObserverSeesSteal: the event log records lease steals. A
// worker takes a lease by hand and goes silent; after the TTL expires
// the chunk is stolen and a live worker finishes the sweep.
func TestCoordObserverSeesSteal(t *testing.T) {
	trials := makeTrials(12)
	job := testJob(trials)
	var buf bytes.Buffer
	events := obs.NewEventLog(&buf)
	observer := &CoordObserver{}
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		// IOTimeout far past the TTL so the hung connection stays up:
		// only the lease-expiry steal path can reclaim the chunk, never
		// the disconnect revoke.
		CoordOptions{ChunkSize: 4, LeaseTTL: 150 * time.Millisecond, Linger: 100 * time.Millisecond,
			IOTimeout: time.Minute, Observer: observer, Events: events})
	defer cancel()

	dead := dialDeadWorker(t, addr, "dead")
	defer dead.wc.close()
	dead.takeLease() // never pinged, never completed: the chunk must be stolen

	var executed atomic.Int64
	if _, err := RunWorker(context.Background(), addr,
		countingResolver(job, trials, &executed), WorkerOptions{Name: "live"}); err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)
	if err := events.Close(); err != nil {
		t.Fatal(err)
	}

	var steals int
	for _, line := range bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n")) {
		var ev obs.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("bad event line: %v\n%s", err, line)
		}
		if ev.Event == "lease_steal" {
			steals++
			if ev.Worker != "dead" {
				t.Errorf("steal attributed to %q, want the dead worker", ev.Worker)
			}
			if ev.Chunk == "" {
				t.Error("steal event has no chunk range")
			}
		}
	}
	if steals == 0 {
		t.Error("no lease_steal event recorded for the expired lease")
	}
}
