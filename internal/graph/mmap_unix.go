//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned release func
// unmaps; the file descriptor itself may be closed as soon as mapFile
// returns (the mapping keeps the pages alive).
func mapFile(f *os.File, size int) (data []byte, release func() error, err error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return b, func() error { return syscall.Munmap(b) }, nil
}
