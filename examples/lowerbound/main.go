// Lowerbound walks through the paper's proof machinery end to end:
//
//  1. Lemma 2 — exhaustively verifies on small trees that window
//     permutations preserve the tree distribution conditional on
//     E_{a,b};
//  2. Lemma 3 — compares the exact event probability with the
//     e^{-(1-p)} floor across p;
//  3. Lemma 1 / Theorem 1 — sweeps n and shows every weak-model
//     algorithm's measured cost sitting above |V|·P(E)/2, growing
//     like √n.
//
// Run with: go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"
	"os"

	"scalefree/internal/core"
	"scalefree/internal/equivalence"
	"scalefree/internal/experiment"
	"scalefree/internal/mori"
	"scalefree/internal/search"
)

func main() {
	// Step 1: Lemma 2, exactly.
	checked, err := equivalence.VerifyLemma2(7, 3, 6, 0.5, 1e-12)
	if err != nil {
		log.Fatal("Lemma 2 verification failed:", err)
	}
	fmt.Printf("Lemma 2: all %d (tree, permutation) pairs on 7-vertex trees preserve P(T) exactly\n\n", checked)

	// Step 2: Lemma 3 across p.
	lemma3 := &experiment.Table{
		Title:   "Lemma 3: P(E_{a,b}) vs the e^{-(1-p)} floor (a=4095, b=a+63)",
		Columns: []string{"p", "exact P(E)", "floor", "holds"},
	}
	a := 4095
	b := a + 63
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		exact, err := equivalence.ExactEventProb(p, a, b)
		if err != nil {
			log.Fatal(err)
		}
		floor := equivalence.Lemma3Bound(p)
		lemma3.AddRow(p, exact, floor, fmt.Sprintf("%v", exact >= floor))
	}
	if err := lemma3.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Step 3: the theorem in action. Every weak algorithm pays Ω(√n).
	const p = 0.5
	table := &experiment.Table{
		Title:   "Theorem 1: measured E[requests] vs the |V|·P(E)/2 bound (Móri, p=0.5)",
		Columns: []string{"algorithm", "n=1024", "n=4096", "bound@1024", "bound@4096", "exponent"},
		Notes:   []string{"all measured means must exceed the bound; exponents cluster at or above 0.5"},
	}
	sizes := []int{1024, 4096}
	for _, alg := range []search.Algorithm{
		search.NewFlood(),
		search.NewRandomEdge(),
		search.NewDegreeGreedyWeak(),
		search.NewIDGreedyWeak(),
	} {
		res, err := core.MeasureScaling(sizes,
			func(n int) core.GraphGen { return core.MoriGen(mori.Config{N: n, M: 1, P: p}) },
			func(n int) (float64, error) { return core.Theorem1Bound(n, p) },
			core.SearchSpec{Algorithm: alg, Reps: 16, Seed: 7},
		)
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(alg.Name(),
			res.Points[0].Measurement.Requests.Mean,
			res.Points[1].Measurement.Requests.Mean,
			res.Points[0].Bound,
			res.Points[1].Bound,
			res.Fit.Exponent)
	}
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Interpretation: identities carry no routing signal near the target —")
	fmt.Println("conditional on E, the last √n labels are interchangeable, so every")
	fmt.Println("algorithm must probe half of them in expectation (Lemma 1).")
}
