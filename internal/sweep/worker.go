package sweep

import (
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/obs"
	"scalefree/internal/obs/trace"
	"scalefree/internal/rng"
)

// WorkerJob is the worker-local counterpart of a CoordJob: the plan's
// trials plus an Execute closure that runs a subset of them through
// the caller's execution stack (engine options, scratch factory,
// result cache). Execute must honour sweep.Execute's semantics:
// results keyed by plan trial index, context cancellation respected.
type WorkerJob struct {
	Trials  []engine.Trial
	Execute func(ctx context.Context, trials []engine.Trial) (map[int]any, Stats, error)
}

// WorkerJobResolver maps a leased (experiment ID, plan fingerprint)
// onto the worker's local plan. Returning an error means the worker
// cannot run this sweep at all — wrong experiment selection, seed,
// scale, or binary revision — and aborts the sweep loudly on both
// sides rather than letting a misconfigured worker spin or, worse,
// compute under different parameters.
type WorkerJobResolver func(expID, fingerprint string) (*WorkerJob, error)

// WorkerOptions configures one RunWorker call.
type WorkerOptions struct {
	// Name identifies the worker in coordinator-side progress and
	// error messages; empty defaults to host:pid.
	Name string
	// Heartbeat overrides the coordinator-announced PING interval
	// (tests); <= 0 uses the announced value.
	Heartbeat time.Duration
	// AuthKey, if non-empty, authenticates the handshake by shared-key
	// HMAC challenge–response (auth.go). Both sides must agree: a
	// keyed worker refuses a keyless coordinator and vice versa.
	AuthKey string
	// DialRetries bounds consecutive failed connection attempts (dial
	// failures, dropped sessions with no protocol progress) before
	// RunWorker gives up. 0 means the default of 10; negative means a
	// single attempt with no retry. The counter resets every time a
	// coordinator reply parses, so a long sweep over a flaky link
	// retries indefinitely while a dead address still fails promptly.
	DialRetries int
	// ReconnectBase and ReconnectMax bound the exponential backoff
	// between attempts (defaults 100ms and 5s); the actual sleep is
	// jittered uniformly in [d/2, d) so a restarted coordinator is not
	// hit by its whole fleet at once.
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// IOTimeout is the per-message wire deadline after the handshake;
	// <= 0 derives max(4×heartbeat, 1s), so a partitioned or hung
	// coordinator surfaces as a reconnectable error instead of a
	// worker pinned in a read forever.
	IOTimeout time.Duration
	// Log, if non-nil, receives one line per lease processed and per
	// reconnection attempt.
	Log func(format string, args ...any)
	// Events, if non-nil, receives structured worker-side lifecycle
	// records (reconnects, revoked leases, chunk failures). Strictly
	// observational.
	Events *obs.EventLog
	// Trace, if non-nil, is the worker's span recorder. It should be
	// created disabled: the first LEASE carrying a trace context (the
	// coordinator is tracing) enables it, so workers need no tracing
	// flag — the wire is the switch. The same recorder must be wired
	// into the engine options the resolver's Execute closures use, so
	// trial spans land in it; each COMPLETE drains it into the wire
	// batch the coordinator merges.
	Trace *trace.Recorder
}

const (
	defaultDialRetries     = 10
	workerHandshakeTimeout = 10 * time.Second
	// traceBatchBudget bounds the binary span batch a COMPLETE line
	// carries: hex doubles it, and the verb + lease id need headroom
	// inside wireMaxLine. Overflow drops the newest records (the codec
	// reports the count); a chunk's spans are a few records per trial,
	// so a real batch is orders of magnitude below this.
	traceBatchBudget = (wireMaxLine - 64) / 2
)

// RunWorker connects to a coordinator, pulls chunk leases until the
// coordinator reports the sweep done, executes each chunk via the
// resolver's Execute closure, and streams encoded results back. While
// a chunk executes, a background heartbeat keeps its lease alive; if
// the coordinator reports the lease revoked (this worker was presumed
// dead and its chunk stolen), the chunk's execution is cancelled and
// abandoned without error — the thief delivers the results. The
// returned stats aggregate what this worker executed and what its
// local cache satisfied.
//
// Transport failures are never fatal while retries remain: a failed
// dial (coordinator slow to start), a dropped or partitioned
// connection, or a line that does not parse all tear the session down
// and reconnect with exponential backoff + jitter, resuming the NEXT
// loop. Work abandoned mid-chunk is re-leased by the coordinator's
// disconnect revoke or TTL steal, and re-delivered results are
// resolved by encoded-byte equality, so reconnection never perturbs
// the table. Protocol-level rejections (version mismatch, failed
// authentication, ABORT, ERR) are fatal immediately.
//
// A chunk whose execution fails is reported to the coordinator as
// FAIL (which re-leases it once, see Coordinate) and the worker keeps
// pulling further chunks — the retry needs a live worker to land on,
// and with a single worker that is this one. If the sweep still
// completes, RunWorker returns a non-nil error recording the local
// failures so the host shows up unhealthy; a resolver error (plan
// mismatch — this worker cannot run the sweep at all) is reported as
// REFUSE, which aborts the sweep immediately on both sides.
//
//sf:wallclock — heartbeat pacing and reconnect backoff use real time.
func RunWorker(ctx context.Context, addr string, resolve WorkerJobResolver, opts WorkerOptions) (Stats, error) {
	var stats Stats
	name := opts.Name
	if name == "" {
		name = DefaultWorkerName()
	}
	opts.Name = name // downstream instrumentation tags events with it
	retries := opts.DialRetries
	switch {
	case retries == 0:
		retries = defaultDialRetries
	case retries < 0:
		retries = 1
	}
	base := opts.ReconnectBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxBackoff := opts.ReconnectMax
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	// Jitter only desynchronizes fleet retries; it never feeds trial
	// results, so a wall-clock seed does not touch determinism.
	jitter := rng.New(rng.DeriveSeed(uint64(time.Now().UnixNano()), uint64(os.Getpid())))

	var failed []*chunkFailure
	attempts := 0 // consecutive attempts without protocol progress
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		sess, err := dialWorkerSession(ctx, addr, name, opts)
		if err == nil {
			err = serveSession(ctx, sess, resolve, &stats, &failed, func() { attempts = 0 }, opts)
			sess.close()
			if err == nil {
				if len(failed) > 0 {
					// The sweep converged (retries landed elsewhere, or a
					// later attempt here succeeded), but this host failed
					// chunks — exit nonzero so the machine gets looked at.
					return stats, fmt.Errorf("sweep: completed, but this worker failed %d chunk(s) locally (first: %v)",
						len(failed), failed[0])
				}
				return stats, nil
			}
		}
		if ctxErr := ctx.Err(); ctxErr != nil {
			return stats, ctxErr
		}
		var te *transportError
		if !errors.As(err, &te) {
			return stats, err
		}
		attempts++
		mWorkerReconnects.Inc()
		opts.Events.Emit(obs.Event{Event: "reconnect", Worker: name, N: int64(attempts), Msg: err.Error()})
		opts.Trace.Emit(trace.Record{Ph: 'i', Name: "reconnect", Cat: "worker", Arg: err.Error()})
		if attempts >= retries {
			return stats, fmt.Errorf("sweep: worker giving up on %s after %d consecutive connection attempts: %w", addr, attempts, err)
		}
		delay := backoffDelay(base, maxBackoff, attempts, jitter)
		if opts.Log != nil {
			opts.Log("connection attempt %d/%d failed (%v); retrying in %v", attempts, retries, err, delay.Round(time.Millisecond))
		}
		select {
		case <-ctx.Done():
			return stats, ctx.Err()
		case <-time.After(delay):
		}
	}
}

// DefaultWorkerName is the host:pid identity a worker reports when no
// name is configured — shared by RunWorker and the CLI's status
// payload so both describe the same worker.
func DefaultWorkerName() string {
	host, _ := os.Hostname()
	return fmt.Sprintf("%s:%d", host, os.Getpid())
}

// backoffDelay doubles from base toward max with attempt count, then
// jitters uniformly into [d/2, d).
func backoffDelay(base, max time.Duration, attempt int, jitter *rng.RNG) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	return d/2 + time.Duration(jitter.Float64()*float64(d/2))
}

// workerSession is one dialed, handshaken connection to the
// coordinator.
type workerSession struct {
	wc        *wireConn
	heartbeat time.Duration
	stopWatch func() bool
}

func (s *workerSession) close() {
	s.stopWatch()
	s.wc.close()
}

// dialWorkerSession dials the coordinator and completes the HELLO (and
// optional CHAL/AUTH) handshake. Transport failures come back as
// *transportError (retriable); rejections are fatal.
func dialWorkerSession(ctx context.Context, addr, name string, opts WorkerOptions) (*workerSession, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, &transportError{err: fmt.Errorf("sweep: worker connecting to %s: %w", addr, err)}
	}
	wc := newWireConn(conn, workerHandshakeTimeout)
	// Unblock any in-flight read when the caller cancels.
	stopWatch := context.AfterFunc(ctx, func() { conn.Close() })
	sess := &workerSession{wc: wc, stopWatch: stopWatch}
	if err := sess.handshake(name, opts); err != nil {
		sess.close()
		return nil, err
	}
	// Steady-state wire deadline: generous multiple of the heartbeat,
	// so a healthy coordinator never trips it but a hung one cannot
	// pin this worker past a few heartbeat periods.
	io := opts.IOTimeout
	if io <= 0 {
		io = 4 * sess.heartbeat
		if io < time.Second {
			io = time.Second
		}
	}
	wc.timeout = io
	return sess, nil
}

// handshake runs HELLO and, when a key is configured, the CHAL/AUTH
// exchange (wire.go documents the flow).
func (s *workerSession) handshake(name string, opts WorkerOptions) error {
	key := []byte(opts.AuthKey)
	hello := fmt.Sprintf("HELLO %s %s", protoVersion, name)
	var clientNonce string
	if len(key) > 0 {
		n, err := newAuthNonce()
		if err != nil {
			return err
		}
		clientNonce = n
		hello += " " + clientNonce
	}
	if err := s.wc.send(hello); err != nil {
		return &transportError{err: fmt.Errorf("sweep: worker handshake: %w", err)}
	}
	line, err := s.wc.recv()
	if err != nil {
		return &transportError{err: fmt.Errorf("sweep: worker handshake: %w", err)}
	}
	verb, fields := splitMsg(line)
	switch verb {
	case "OK":
		if len(key) > 0 {
			// A keyless coordinator accepted us without proving it holds
			// the key. Refuse to run unauthenticated: a keyed fleet must
			// be keyed end to end.
			return fmt.Errorf("sweep: coordinator does not require authentication but this worker has a key configured; refusing to run unauthenticated")
		}
	case "CHAL":
		if len(key) == 0 {
			return fmt.Errorf("sweep: coordinator requires shared-key authentication but this worker has no key configured")
		}
		if len(fields) != 2 {
			return fmt.Errorf("sweep: malformed CHAL %q", line)
		}
		coordNonce, coordProof := fields[0], fields[1]
		// Answer before verifying the coordinator's proof: with
		// mismatched keys both proofs fail, and sending ours first lets
		// the coordinator log its side of the mismatch too, so the
		// failure is diagnosable from either end.
		if err := s.wc.send("AUTH " + authProof(key, authWorkerLabel, coordNonce)); err != nil {
			return &transportError{err: fmt.Errorf("sweep: worker auth: %w", err)}
		}
		okLine, rerr := s.wc.recv()
		if !verifyAuthProof(key, authCoordLabel, clientNonce, coordProof) {
			msg := "sweep: coordinator failed its shared-key proof (key mismatch?)"
			if rerr == nil {
				if v, f := splitMsg(okLine); v == "ERR" {
					msg += "; coordinator says: " + unquoteMsg(f)
				}
			}
			return errors.New(msg)
		}
		if rerr != nil {
			return &transportError{err: fmt.Errorf("sweep: worker auth: %w", rerr)}
		}
		v, f := splitMsg(okLine)
		if v != "OK" {
			if v == "ERR" {
				return fmt.Errorf("sweep: coordinator rejected authentication: %s", unquoteMsg(f))
			}
			return fmt.Errorf("sweep: coordinator rejected authentication: %s", okLine)
		}
		fields = f
	case "ERR":
		return fmt.Errorf("sweep: coordinator rejected handshake: %s", unquoteMsg(fields))
	default:
		// Anything else (a truncated or fault-mangled line) is a
		// transport problem: reconnect and try again.
		return &transportError{err: fmt.Errorf("sweep: unexpected handshake reply %q", line)}
	}
	hb := opts.Heartbeat
	if hb <= 0 && len(fields) > 0 {
		if v, err := parseMillis(fields[0]); err == nil && v > 0 {
			hb = v
		}
	}
	if hb <= 0 {
		hb = 3 * time.Second
	}
	s.heartbeat = hb
	return nil
}

// serveSession runs the NEXT loop over one session. It returns nil on
// DONE; a *transportError for anything that a reconnection can heal;
// and a plain error for protocol-level finality (ABORT, ERR, refusal,
// context cancellation). progress is called whenever a coordinator
// reply parses, resetting the caller's consecutive-failure budget.
func serveSession(ctx context.Context, sess *workerSession, resolve WorkerJobResolver, stats *Stats, failed *[]*chunkFailure, progress func(), opts WorkerOptions) error {
	wc := sess.wc
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := wc.send("NEXT"); err != nil {
			return &transportError{err: fmt.Errorf("sweep: worker requesting chunk: %w", err)}
		}
		line, err := wc.recv()
		if err != nil {
			return &transportError{err: fmt.Errorf("sweep: worker requesting chunk: %w", err)}
		}
		verb, fields := splitMsg(line)
		switch verb {
		case "DONE":
			progress()
			return nil
		case "ABORT":
			// The sweep failed elsewhere (another worker's trial error
			// or config skew); exit nonzero so this worker's machine
			// also shows the failure.
			progress()
			return fmt.Errorf("sweep: aborted: %s", unquoteMsg(fields))
		case "WAIT":
			progress()
			if len(fields) != 1 {
				return &transportError{err: fmt.Errorf("sweep: malformed WAIT %q", line)}
			}
			d, err := parseMillis(fields[0])
			if err != nil {
				return &transportError{err: err}
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
			}
		case "LEASE":
			progress()
			m, err := parseLease(fields)
			if err != nil {
				return &transportError{err: err}
			}
			chunkStats, err := runLease(ctx, wc, m, resolve, sess.heartbeat, opts)
			stats.Executed += chunkStats.Executed
			stats.CacheHits += chunkStats.CacheHits
			if err != nil {
				var cf *chunkFailure
				if errors.As(err, &cf) {
					// The chunk's failure went to the coordinator as
					// FAIL; keep serving — the sweep continues until
					// the chunk's second failure, and the re-lease
					// needs a live worker.
					*failed = append(*failed, cf)
					continue
				}
				return err
			}
		case "ERR":
			progress()
			return fmt.Errorf("sweep: coordinator: %s", unquoteMsg(fields))
		default:
			return &transportError{err: fmt.Errorf("sweep: unexpected coordinator reply %q", line)}
		}
	}
}

// transportError marks a connection-level failure: dial errors,
// send/recv failures, and lines mangled past parsing. Transport loss
// is retriable by reconnection — the coordinator's disconnect/TTL
// reclaim requeues any mid-flight chunk without debiting its
// one-retry budget; a network blip is not a trial fault.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// chunkFailure is the worker-local record of one chunk whose
// execution failed: already reported to the coordinator as a
// retriable FAIL, and kept distinct from fatal errors so RunWorker
// continues serving other chunks.
type chunkFailure struct {
	expID  string
	lo, hi int
	err    error
}

func (c *chunkFailure) Error() string {
	return fmt.Sprintf("sweep: executing %s trials [%d,%d): %v", c.expID, c.lo, c.hi, c.err)
}

func (c *chunkFailure) Unwrap() error { return c.err }

// runLease executes one leased chunk and streams its results. A
// revoked lease (stolen chunk) is not an error: the work is abandoned
// and the caller polls for the next chunk. An execution failure comes
// back as a *chunkFailure (reported to the coordinator as FAIL,
// retriable); transport loss as a *transportError (the session
// reconnects); every other error is fatal to this worker.
func runLease(ctx context.Context, wc *wireConn, m leaseMsg, resolve WorkerJobResolver, heartbeat time.Duration, opts WorkerOptions) (Stats, error) {
	logf := opts.Log
	// SFCOORD4: a trace context on the lease line means the sweep is
	// traced. Enable the recorder (sticky — every traced lease carries
	// the field) and open the worker-side lease span, terminating the
	// coordinator's grant flow so the merged timeline draws the arrow
	// from the grant to the execution.
	traced := m.Trace != "" && opts.Trace != nil
	if traced {
		opts.Trace.SetEnabled(true)
		if id, perr := strconv.ParseUint(m.Trace, 16, 64); perr == nil {
			opts.Trace.Emit(trace.Record{Ph: 'f', ID: id, Name: "lease", Cat: "flow"})
		}
		opts.Trace.Emit(trace.Record{Ph: 'B',
			Name: fmt.Sprintf("lease %s[%d,%d)", m.ExpID, m.Lo, m.Hi), Cat: "lease"})
	}
	endSpan := func() {
		if traced {
			traced = false
			opts.Trace.Emit(trace.Record{Ph: 'E'})
		}
	}
	defer endSpan()
	job, err := resolve(m.ExpID, m.Fingerprint)
	if err == nil && m.Hi > len(job.Trials) {
		err = fmt.Errorf("lease range [%d,%d) exceeds local plan of %d trials", m.Lo, m.Hi, len(job.Trials))
	}
	if err != nil {
		// The coordinator must learn this worker cannot participate
		// at all — a plan mismatch is systematic, never chunk-local,
		// so REFUSE aborts the sweep instead of burning retries (a
		// silent exit would look like a death and waste a TTL).
		sendFail(wc, "REFUSE", m.ID, err)
		return Stats{}, fmt.Errorf("sweep: lease for %s: %w", m.ExpID, err)
	}
	trials := job.Trials[m.Lo:m.Hi]
	if logf != nil {
		logf("lease %d: %s trials [%d,%d)", m.ID, m.ExpID, m.Lo, m.Hi)
	}

	results, stats, err := executeWithHeartbeat(ctx, wc, m.ID, job, trials, heartbeat)
	if err != nil {
		if errors.Is(err, errLeaseRevoked) {
			mWorkerLeasesLost.Inc()
			opts.Events.Emit(obs.Event{Event: "lease_revoked", Worker: opts.Name, Exp: m.ExpID, Lease: m.ID, Chunk: obs.ChunkRange(m.Lo, m.Hi)})
			if logf != nil {
				logf("lease %d revoked, chunk stolen", m.ID)
			}
			return stats, nil
		}
		if ctx.Err() != nil {
			return stats, ctx.Err()
		}
		var te *transportError
		if errors.As(err, &te) {
			// The connection broke mid-chunk: tear the session down and
			// reconnect. The coordinator's disconnect/TTL reclaim
			// requeues the work without touching its retry budget, and
			// a FAIL could not be delivered anyway.
			return stats, &transportError{err: fmt.Errorf("sweep: lease %d: heartbeat connection to coordinator lost: %w", m.ID, te.Unwrap())}
		}
		sendFail(wc, "FAIL", m.ID, err)
		mWorkerChunkFailures.Inc()
		opts.Events.Emit(obs.Event{Event: "chunk_fail", Worker: opts.Name, Exp: m.ExpID, Lease: m.ID, Chunk: obs.ChunkRange(m.Lo, m.Hi), Msg: err.Error()})
		if logf != nil {
			logf("lease %d: %s trials [%d,%d) failed: %v", m.ID, m.ExpID, m.Lo, m.Hi, err)
		}
		return stats, &chunkFailure{expID: m.ExpID, lo: m.Lo, hi: m.Hi, err: err}
	}

	// Stream the chunk's results in index order (determinism of the
	// wire stream itself is not required — results land positionally —
	// but ordered streams make captures diffable), then synchronize on
	// COMPLETE's acknowledgement.
	idxs := make([]int, 0, len(results))
	for i := range results {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		payload, err := EncodeResult(results[i])
		if err != nil {
			// An unencodable result is a binary-level bug (unregistered
			// type), identical on every worker — abort, don't retry.
			sendFail(wc, "REFUSE", m.ID, err)
			return stats, fmt.Errorf("sweep: encoding %s trial %d: %w", m.ExpID, i, err)
		}
		if err := wc.buffer(formatResult(m.ID, m.ExpID, i, payload)); err != nil {
			return stats, &transportError{err: fmt.Errorf("sweep: streaming results: %w", err)}
		}
	}
	completeLine := fmt.Sprintf("COMPLETE %d", m.ID)
	if m.Trace != "" && opts.Trace != nil {
		// Close the lease span first so it rides in its own batch, then
		// drain everything this lease recorded (trial and phase spans
		// from the engine writers included) onto the COMPLETE line.
		endSpan()
		if batch := opts.Trace.Drain(); len(batch) > 0 {
			enc, _ := trace.EncodeBatch(batch, traceBatchBudget)
			completeLine += " " + hex.EncodeToString(enc)
		}
	}
	if err := wc.send(completeLine); err != nil {
		return stats, &transportError{err: fmt.Errorf("sweep: completing lease: %w", err)}
	}
	line, err := wc.recv()
	if err != nil {
		return stats, &transportError{err: fmt.Errorf("sweep: completing lease: %w", err)}
	}
	switch verb, fields := splitMsg(line); verb {
	case "OK", "GONE": // GONE: lease was stolen but the results were accepted
		mWorkerChunks.Inc()
		return stats, nil
	case "ERR":
		return stats, fmt.Errorf("sweep: coordinator: %s", unquoteMsg(fields))
	default:
		return stats, &transportError{err: fmt.Errorf("sweep: unexpected COMPLETE reply %q", line)}
	}
}

// executeWithHeartbeat runs the chunk while a background goroutine
// owns the connection, pinging the lease every interval. The two
// goroutines never touch the connection concurrently: the main
// goroutine is inside Execute for exactly the period the heartbeater
// runs, and resumes only after the heartbeater has fully stopped.
func executeWithHeartbeat(ctx context.Context, wc *wireConn, leaseID uint64, job *WorkerJob, trials []engine.Trial, interval time.Duration) (map[int]any, Stats, error) {
	hbCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	stop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-hbCtx.Done():
				return
			case <-ticker.C:
				mWorkerHeartbeats.Inc()
				if err := wc.send(fmt.Sprintf("PING %d", leaseID)); err != nil {
					cancel(&transportError{err: err})
					return
				}
				line, err := wc.recv()
				if err != nil {
					cancel(&transportError{err: err})
					return
				}
				if verb, _ := splitMsg(line); verb == "GONE" {
					cancel(errLeaseRevoked)
					return
				}
			}
		}
	}()
	results, stats, err := job.Execute(hbCtx, trials)
	close(stop)
	<-hbDone
	if err != nil {
		// Surface the cancellation's cause: a revoked lease or a
		// heartbeat transport failure explains the abort better than
		// the bare context.Canceled the engine reports.
		if cause := context.Cause(hbCtx); cause != nil && !errors.Is(err, cause) && errors.Is(err, context.Canceled) {
			err = cause
		}
	}
	return results, stats, err
}

// sendFail reports a failure under the given verb: "FAIL" (chunk
// execution failed; the coordinator re-leases it once) or "REFUSE"
// (this worker cannot run the sweep; the coordinator aborts).
func sendFail(wc *wireConn, verb string, leaseID uint64, failure error) {
	if err := wc.send(fmt.Sprintf("%s %d %s", verb, leaseID, quoteMsg(failure.Error()))); err != nil {
		return
	}
	wc.recv() // the OK acknowledgement; errors are moot at this point
}
