// Package wallclockpkg is annotated nondeterministic-side as a whole:
// nothing in it is checked by the determinism analyzer.
//
//sf:wallclock — fixture: the entire package is ops code
package wallclockpkg

import (
	"os"
	"time"
)

func anything() (time.Time, string) {
	return time.Now(), os.Getenv("HOME")
}
