package experiment

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: aligned text for humans, CSV
// for downstream tooling.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: integers without decimals,
// small values with three significant decimals.
func formatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(t.Columns) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(note)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// CSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV(w io.Writer) error {
	writeLine := func(cells []string) error {
		for i, cell := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, cell); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeLine(t.Columns); err != nil {
		return fmt.Errorf("experiment: writing CSV header: %w", err)
	}
	for _, row := range t.Rows {
		if err := writeLine(row); err != nil {
			return fmt.Errorf("experiment: writing CSV row: %w", err)
		}
	}
	return nil
}
