package fitness

import (
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

func TestValidate(t *testing.T) {
	for _, bad := range []Config{
		{N: 1, M: 1, Eta0: 0.1},
		{N: 100, M: 0, Eta0: 0.1},
		{N: 100, M: 1, Eta0: 0},
		{N: 100, M: 1, Eta0: -0.5},
		{N: 100, M: 1, Eta0: 1.5},
		{N: 100, M: 1, Eta0: 1e-9}, // below the busy-loop floor
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v validated", bad)
		}
		if _, err := bad.Generate(rng.New(1)); err == nil {
			t.Errorf("%+v generated", bad)
		}
	}
	if err := (Config{N: 100, M: 2, Eta0: 1}).Validate(); err != nil {
		t.Errorf("eta0=1 (pure BA) rejected: %v", err)
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{N: 400, M: 2, Eta0: 0.2}
	g, err := cfg.Generate(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 400 || g.NumEdges() != 1+2*399 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if _, comps := graph.Components(g); comps != 1 {
		t.Errorf("fitness graph has %d components, want 1", comps)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{N: 300, M: 1, Eta0: 0.1}
	a, err := cfg.Generate(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Generate(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(a, b) {
		t.Error("equal seeds yield different graphs")
	}
}

func TestGenerateScratchMatchesGenerate(t *testing.T) {
	cfg := Config{N: 200, M: 2, Eta0: 0.3}
	var s Scratch
	for seed := uint64(1); seed <= 5; seed++ {
		want, err := cfg.Generate(rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		got, err := cfg.GenerateScratch(rng.New(seed), &s)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(want, got) {
			t.Fatalf("seed %d: scratch generation diverges from Generate", seed)
		}
	}
}

// TestGenerateScratchAllocFree pins the steady state of the scratch
// path: after a warm-up generation, repeated same-size draws perform
// zero allocations.
func TestGenerateScratchAllocFree(t *testing.T) {
	cfg := Config{N: 500, M: 2, Eta0: 0.2}
	var s Scratch
	r := rng.New(3)
	gen := func() {
		if _, err := cfg.GenerateScratch(r, &s); err != nil {
			t.Fatal(err)
		}
	}
	gen() // warm up the buffers
	if allocs := testing.AllocsPerRun(10, gen); allocs > 0 {
		t.Errorf("steady-state GenerateScratch allocates %v times per graph, want 0", allocs)
	}
}

// TestRejectionMatchesRefDistribution is the sampler safety net: the
// O(1) rejection sampler on the endpoint array and the O(n) exact-
// inversion reference must draw degree distributions that a two-sample
// chi-square test cannot tell apart.
func TestRejectionMatchesRefDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution comparison is not short")
	}
	const (
		size = 400
		reps = 250
		bins = 9 // degrees 1..7 and >= 8 (index 0 unused: min degree is 1)
	)
	for _, eta0 := range []float64{0.1, 0.5} {
		cfg := Config{N: size, M: 1, Eta0: eta0}
		histProd := make([]int, bins)
		histRef := make([]int, bins)
		for rep := 0; rep < reps; rep++ {
			gp, err := cfg.Generate(rng.New(rng.DeriveSeed(21, uint64(rep))))
			if err != nil {
				t.Fatal(err)
			}
			gr, err := cfg.GenerateRef(rng.New(rng.DeriveSeed(22, uint64(rep))))
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range gp.Degrees()[1:] {
				histProd[min(d, bins-1)]++
			}
			for _, d := range gr.Degrees()[1:] {
				histRef[min(d, bins-1)]++
			}
		}
		res, err := stats.ChiSquareTwoSample(histProd, histRef)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 1e-3 {
			t.Errorf("eta0=%v: rejection vs reference degree distributions differ: chi2=%.2f df=%d p-value=%g\nproduction: %v\nreference:  %v",
				eta0, res.Statistic, res.DF, res.PValue, histProd, histRef)
		}
	}
}

// TestPowerLawTail checks the model's known scale-free behavior: the
// Bianconi–Barabási degree distribution keeps a power-law tail whose
// exponent sits below pure BA's 3 (fitness fattens the tail; with
// uniform fitness the literature value is ≈ 2.25 plus logarithmic
// corrections, and the bounded-fitness variant here lands between
// that and 3).
func TestPowerLawTail(t *testing.T) {
	if testing.Short() {
		t.Skip("tail fit is not short")
	}
	cfg := Config{N: 1 << 15, M: 2, Eta0: 0.1}
	g, err := cfg.Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	fit, err := stats.FitPowerLawAuto(g.Degrees()[1:], 50)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 1.8 || fit.Alpha > 3.2 {
		t.Errorf("fitted tail exponent %.3f ± %.3f outside the plausible fitness band (1.8, 3.2)", fit.Alpha, fit.StdErr)
	}
}
