// Package mori implements the Móri model of scale-free random trees and
// its merged m-out graph variant, the first of the two graph families
// for which the paper proves the Ω(√n) non-searchability lower bound.
//
// The Móri tree G_t starts at time t = 2 with vertices 1, 2 and the
// single edge 2 → 1. At each later time t, vertex t is added with one
// outgoing edge to an older vertex u chosen with probability
// proportional to
//
//	p·d_t(u) + (1 − p),
//
// where d_t(u) is the indegree of u at time t and 0 < p ≤ 1 mixes
// preferential (p) and uniform (1 − p) attachment.
//
// As an extension beyond the paper's parameter range, p = 0 is also
// accepted: the process degenerates to pure uniform attachment (the
// random recursive tree), for which the same equivalence machinery
// applies with P(E_{a,b}) → e^{-1} — experiment E11 measures that the
// Ω(√n) non-searchability carries over, answering the paper's closing
// remark that the technique "seems broad enough to be adapted to other
// models of growing random graphs". The m-out Móri graph
// G^(m)_n is obtained by generating the tree of size n·m and merging
// each block of m consecutive vertices into one, preserving multi-edges
// and self-loops, exactly as the paper defines it.
//
// The implementation samples the mixture exactly: the total attachment
// weight splits as p·E + (1−p)·V with E the total indegree (t−2) and V
// the vertex count (t−1), so the generator flips a coin with the exact
// state-dependent probability and then draws either proportionally to
// indegree or uniformly. Because the coin is flipped *before* the
// vertex draw, the preferential draw is pure hit-count sampling and is
// served by the O(1) endpoint array (weights.EndpointArray): generation
// of an n-vertex tree costs O(n) time and O(1) allocations (amortized
// zero with a Scratch). GenerateTreeFenwick keeps the historical
// O(n log n) Fenwick-tree path as the reference implementation the
// production sampler is validated against (chi-square equivalence in
// the tests, BenchmarkGenerateMori for the speedup).
package mori

import (
	"fmt"
	"math"

	"scalefree/internal/buf"
	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/weights"
)

// Tree is a realized Móri tree: Fathers[k] records the destination of
// vertex k's outgoing edge, for 2 <= k <= Size. Fathers[0] and
// Fathers[1] are zero padding; Fathers[2] is always 1.
type Tree struct {
	P       float64
	Fathers []graph.Vertex
}

// GenerateTree draws a Móri tree with size >= 2 vertices and mixing
// parameter 0 < p <= 1, in O(n) time via endpoint-array preferential
// sampling.
func GenerateTree(r *rng.RNG, size int, p float64) (*Tree, error) {
	if size < 2 {
		return nil, fmt.Errorf("mori: tree size %d < 2", size)
	}
	if err := validateP(p); err != nil {
		return nil, err
	}
	t := &Tree{P: p, Fathers: make([]graph.Vertex, size+1)}
	generateTree(r, size, p, t.Fathers, weights.NewEndpointArray(size-1))
	return t, nil
}

// generateTree fills fathers (length size+1, entries 0 and 1 zeroed)
// with a fresh draw, recording every attachment endpoint in ends. The
// endpoint array holds one entry per indegree hit, so a uniform draw
// from it is exactly the indegree-proportional draw of the model.
func generateTree(r *rng.RNG, size int, p float64, fathers []graph.Vertex, ends *weights.EndpointArray) {
	fathers[0], fathers[1] = 0, 0
	fathers[2] = 1
	ends.Record(1) // the initial edge 2 → 1
	for k := 3; k <= size; k++ {
		// Before inserting vertex k there are k-1 vertices and k-2
		// edges, so the total attachment weight is p(k-2) + (1-p)(k-1).
		prefMass := p * float64(k-2)
		unifMass := (1 - p) * float64(k-1)
		var u graph.Vertex
		if r.Float64()*(prefMass+unifMass) < prefMass {
			u = graph.Vertex(ends.Sample(r))
		} else {
			u = graph.Vertex(r.IntRange(1, k-1))
		}
		fathers[k] = u
		ends.Record(int32(u))
	}
}

// GenerateTreeFenwick is the historical O(n log n) generator drawing
// the preferential vertex from a Fenwick tree over indegrees. It
// samples exactly the same distribution as GenerateTree and is kept as
// the reference implementation for the sampler ablation
// (BenchmarkGenerateMori, DESIGN.md §5.2) and the chi-square
// equivalence test; the two consume RNG streams differently, so equal
// seeds yield different (identically distributed) trees.
func GenerateTreeFenwick(r *rng.RNG, size int, p float64) (*Tree, error) {
	if size < 2 {
		return nil, fmt.Errorf("mori: tree size %d < 2", size)
	}
	if err := validateP(p); err != nil {
		return nil, err
	}
	t := &Tree{P: p, Fathers: make([]graph.Vertex, size+1)}
	t.Fathers[2] = 1
	indeg := weights.NewFenwick(size)
	indeg.Add(1, 1) // the initial edge 2 → 1
	for k := 3; k <= size; k++ {
		prefMass := p * float64(k-2)
		unifMass := (1 - p) * float64(k-1)
		var u graph.Vertex
		if r.Float64()*(prefMass+unifMass) < prefMass {
			u = graph.Vertex(indeg.Sample(r))
		} else {
			u = graph.Vertex(r.IntRange(1, k-1))
		}
		t.Fathers[k] = u
		indeg.Add(int(u), 1)
	}
	return t, nil
}

// Size returns the number of vertices.
func (t *Tree) Size() int { return len(t.Fathers) - 1 }

// Father returns the destination of vertex k's outgoing edge
// (2 <= k <= Size).
func (t *Tree) Father(k graph.Vertex) graph.Vertex {
	return t.Fathers[k]
}

// Graph freezes the tree into a directed graph with edges k → Father(k)
// appended in insertion order k = 2..Size.
func (t *Tree) Graph() *graph.Graph {
	size := t.Size()
	b := graph.NewBuilder(size, size-1)
	b.AddVertices(size)
	for k := 2; k <= size; k++ {
		b.AddEdge(graph.Vertex(k), t.Fathers[k])
	}
	return b.Freeze()
}

// InDegrees replays the tree and returns the indegree of every vertex
// (indexed 1..Size).
func (t *Tree) InDegrees() []int {
	ds := make([]int, t.Size()+1)
	for k := 2; k <= t.Size(); k++ {
		ds[t.Fathers[k]]++
	}
	return ds
}

// Merge produces the m-out Móri graph from a tree whose size is
// divisible by m: tree vertices m(i-1)+1..mi become graph vertex i and
// every tree edge is carried over, so the result has Size/m vertices
// and Size-1 edges, possibly with loops and multi-edges.
func Merge(t *Tree, m int) (*graph.Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("mori: merge factor %d < 1", m)
	}
	size := t.Size()
	if size%m != 0 {
		return nil, fmt.Errorf("mori: tree size %d not divisible by merge factor %d", size, m)
	}
	return mergeInto(t, m, graph.NewBuilder(size/m, size-1), new(graph.Graph)), nil
}

// mergeInto performs the merge through a caller-owned builder and
// snapshot (both reused when their capacity suffices). The builder must
// be freshly Reset.
func mergeInto(t *Tree, m int, b *graph.Builder, g *graph.Graph) *graph.Graph {
	size := t.Size()
	b.AddVertices(size / m)
	for k := 2; k <= size; k++ {
		b.AddEdge(mergedID(graph.Vertex(k), m), mergedID(t.Fathers[k], m))
	}
	return b.FreezeInto(g)
}

// mergedID maps tree vertex v to its block identity under merge factor m.
func mergedID(v graph.Vertex, m int) graph.Vertex {
	return (v + graph.Vertex(m) - 1) / graph.Vertex(m)
}

// Config describes a merged Móri graph G^(m)_N.
type Config struct {
	N int     // merged graph size (number of vertices), >= 2
	M int     // merge factor m >= 1; 1 yields the plain tree
	P float64 // preferential mixing, 0 < p <= 1
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("mori: N = %d < 2", c.N)
	}
	if c.M < 1 {
		return fmt.Errorf("mori: M = %d < 1", c.M)
	}
	return validateP(c.P)
}

// String implements fmt.Stringer for bench and log labels.
func (c Config) String() string {
	return fmt.Sprintf("mori(n=%d,m=%d,p=%g)", c.N, c.M, c.P)
}

// Generate draws the merged Móri graph: a tree of size N·M merged with
// factor M.
func (c Config) Generate(r *rng.RNG) (*graph.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	t, err := GenerateTree(r, c.N*c.M, c.P)
	if err != nil {
		return nil, err
	}
	return Merge(t, c.M)
}

// Scratch holds the reusable buffers of one generation worker: the
// tree's father array, the endpoint array, and the merge builder plus
// its CSR snapshot. The zero value is ready to use; after a warm-up
// generation, repeated same-size GenerateScratch calls allocate
// nothing.
type Scratch struct {
	tree    Tree
	ends    weights.EndpointArray
	builder graph.Builder
	g       graph.Graph
}

// GenerateTreeScratch is GenerateTree through s's reusable buffers:
// after a warm-up call, repeated same-size draws allocate nothing. The
// returned tree aliases s and is valid until the next use of the same
// scratch. A nil scratch falls back to GenerateTree; equal seeds yield
// the identical tree either way.
func GenerateTreeScratch(r *rng.RNG, size int, p float64, s *Scratch) (*Tree, error) {
	if s == nil {
		return GenerateTree(r, size, p)
	}
	if size < 2 {
		return nil, fmt.Errorf("mori: tree size %d < 2", size)
	}
	if err := validateP(p); err != nil {
		return nil, err
	}
	// generateTree overwrites every entry, so plain Grow suffices.
	s.tree.Fathers = buf.Grow(s.tree.Fathers, size+1)
	s.tree.P = p
	s.ends.Reset(size - 1)
	generateTree(r, size, p, s.tree.Fathers, &s.ends)
	return &s.tree, nil
}

// GenerateScratch is Generate drawing the identical distribution (and,
// for equal seeds, the identical graph) through s's reusable buffers.
// The returned graph aliases s and is valid until the next call with
// the same scratch; callers that outlive the scratch must use Generate.
func (c Config) GenerateScratch(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
	if s == nil {
		return c.Generate(r)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	t, err := GenerateTreeScratch(r, c.N*c.M, c.P, s)
	if err != nil {
		return nil, err
	}
	s.builder.Reset(c.N, c.N*c.M-1)
	return mergeInto(t, c.M, &s.builder, &s.g), nil
}

func validateP(p float64) error {
	// p = 0 (pure uniform attachment) is accepted as a documented
	// extension; the paper's theorems cover 0 < p <= 1.
	if math.IsNaN(p) || p < 0 || p > 1 {
		return fmt.Errorf("mori: p = %v out of [0, 1]", p)
	}
	return nil
}

// TreeLogProb returns the exact log-probability that GenerateTree
// produces exactly the given father assignment under mixing parameter
// p. Fathers must be a valid increasing assignment (father(k) < k); the
// function replays the attachment weights step by step.
func TreeLogProb(fathers []graph.Vertex, p float64) (float64, error) {
	size := len(fathers) - 1
	if size < 2 {
		return 0, fmt.Errorf("mori: father array for size %d < 2", size)
	}
	if err := validateP(p); err != nil {
		return 0, err
	}
	if fathers[2] != 1 {
		return 0, fmt.Errorf("mori: fathers[2] = %d, must be 1", fathers[2])
	}
	indeg := make([]int, size+1)
	indeg[1] = 1
	logProb := 0.0
	for k := 3; k <= size; k++ {
		u := fathers[k]
		if u < 1 || int(u) >= k {
			return 0, fmt.Errorf("mori: fathers[%d] = %d violates father < child", k, u)
		}
		num := p*float64(indeg[u]) + (1 - p)
		den := p*float64(k-2) + (1-p)*float64(k-1)
		logProb += math.Log(num / den)
		indeg[u]++
	}
	return logProb, nil
}

// TreeProb is TreeLogProb exponentiated; it underflows for large trees,
// so use it only on small instances (enumeration tests).
func TreeProb(fathers []graph.Vertex, p float64) (float64, error) {
	lp, err := TreeLogProb(fathers, p)
	if err != nil {
		return 0, err
	}
	return math.Exp(lp), nil
}

// EnumerateTrees visits every possible father assignment of a Móri tree
// with the given size, in lexicographic order. The callback receives a
// reused slice that it must not retain. The number of assignments is
// (size-1)!, so this is intended for size <= 10.
func EnumerateTrees(size int, visit func(fathers []graph.Vertex)) error {
	if size < 2 {
		return fmt.Errorf("mori: cannot enumerate trees of size %d < 2", size)
	}
	fathers := make([]graph.Vertex, size+1)
	fathers[2] = 1
	var rec func(k int)
	rec = func(k int) {
		if k > size {
			visit(fathers)
			return
		}
		for u := 1; u < k; u++ {
			fathers[k] = graph.Vertex(u)
			rec(k + 1)
		}
	}
	rec(3)
	return nil
}
