package graph

import (
	"testing"

	"scalefree/internal/rng"
)

func TestComponentsTwoIslands(t *testing.T) {
	b := NewBuilder(5, 2)
	b.AddVertices(5)
	b.AddEdge(1, 2)
	b.AddEdge(4, 5)
	g := b.Freeze()
	labels, count := Components(g)
	if count != 3 {
		t.Fatalf("component count = %d, want 3", count)
	}
	if labels[1] != labels[2] {
		t.Error("1 and 2 should share a component")
	}
	if labels[4] != labels[5] {
		t.Error("4 and 5 should share a component")
	}
	if labels[1] == labels[3] || labels[1] == labels[4] || labels[3] == labels[4] {
		t.Errorf("components not distinct: %v", labels[1:])
	}
}

func TestIsConnected(t *testing.T) {
	if !IsConnected(buildPath(10)) {
		t.Error("path should be connected")
	}
	b := NewBuilder(2, 0)
	b.AddVertices(2)
	if IsConnected(b.Freeze()) {
		t.Error("two isolated vertices should not be connected")
	}
}

func TestLargestComponentExtraction(t *testing.T) {
	// Component A: 2-4-6 path (3 vertices); component B: 1-3 (2 vertices);
	// vertex 5 isolated.
	b := NewBuilder(6, 3)
	b.AddVertices(6)
	b.AddEdge(2, 4)
	b.AddEdge(4, 6)
	b.AddEdge(1, 3)
	g := b.Freeze()
	sub, orig := LargestComponent(g)
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("largest component: %d vertices, %d edges; want 3, 2", sub.NumVertices(), sub.NumEdges())
	}
	// Relabelling preserves increasing identity order: 2->1, 4->2, 6->3.
	want := []Vertex{NoVertex, 2, 4, 6}
	for i := 1; i < len(want); i++ {
		if orig[i] != want[i] {
			t.Errorf("origID[%d] = %d, want %d", i, orig[i], want[i])
		}
	}
	u, v := sub.Endpoints(0)
	if u != 1 || v != 2 {
		t.Errorf("first edge = (%d, %d), want (1, 2)", u, v)
	}
	if !IsConnected(sub) {
		t.Error("extracted component should be connected")
	}
}

func TestLargestComponentPreservesMultiEdges(t *testing.T) {
	b := NewBuilder(3, 4)
	b.AddVertices(3)
	b.AddEdge(1, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 2)
	g := b.Freeze()
	sub, _ := LargestComponent(g)
	if sub.NumVertices() != 2 || sub.NumEdges() != 3 {
		t.Fatalf("component: %d vertices, %d edges; want 2, 3", sub.NumVertices(), sub.NumEdges())
	}
	if sub.NumSelfLoops() != 1 {
		t.Errorf("self-loops = %d, want 1", sub.NumSelfLoops())
	}
}

func TestLargestComponentEmptyGraph(t *testing.T) {
	sub, orig := LargestComponent(NewBuilder(0, 0).Freeze())
	if sub.NumVertices() != 0 || orig != nil {
		t.Fatalf("empty extraction gave %d vertices, orig %v", sub.NumVertices(), orig)
	}
}

func TestComponentsPartitionProperty(t *testing.T) {
	// Property: every vertex gets exactly one label in [0, count) and
	// edges never cross labels.
	r := rng.New(123)
	for trial := 0; trial < 50; trial++ {
		n := r.IntRange(1, 60)
		m := r.Intn(80)
		b := NewBuilder(n, m)
		b.AddVertices(n)
		for i := 0; i < m; i++ {
			b.AddEdge(Vertex(r.IntRange(1, n)), Vertex(r.IntRange(1, n)))
		}
		g := b.Freeze()
		labels, count := Components(g)
		for v := 1; v <= n; v++ {
			if labels[v] < 0 || labels[v] >= int32(count) {
				t.Fatalf("vertex %d label %d out of [0, %d)", v, labels[v], count)
			}
		}
		for e := 0; e < m; e++ {
			u, v := g.Endpoints(EdgeID(e))
			if labels[u] != labels[v] {
				t.Fatalf("edge (%d, %d) crosses components", u, v)
			}
		}
	}
}
