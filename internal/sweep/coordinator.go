package sweep

import (
	"bytes"
	"context"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"slices"
	"strconv"
	"sync"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/obs"
	"scalefree/internal/obs/trace"
)

// CoordJob is one experiment's plan as the coordinator schedules it:
// the job identity (experiment ID + plan fingerprint) and the full
// positional trial list. Workers re-plan the same experiment locally
// and the fingerprint guarantees both sides hold identical trials.
type CoordJob struct {
	Job    Job
	Trials []engine.Trial
}

// CoordOptions configures one Coordinate call.
type CoordOptions struct {
	// ChunkSize is the number of trials per lease; <= 0 defaults to 8.
	// Smaller chunks bound the work a dead worker forfeits; larger
	// chunks amortize round trips.
	ChunkSize int
	// LeaseTTL is the heartbeat deadline: a lease not pinged for this
	// long is forfeit and its chunk is stolen by the next worker that
	// asks. <= 0 defaults to 10 seconds.
	LeaseTTL time.Duration
	// Linger bounds how long Coordinate keeps serving DONE responses to
	// connected workers after the sweep finishes, so they exit cleanly
	// instead of seeing a reset. <= 0 defaults to 3 seconds.
	Linger time.Duration
	// OnResult, if non-nil, is called once per newly completed trial
	// with the reporting worker's name. Duplicate deliveries from
	// stolen chunks do not re-fire it. Called under the coordinator's
	// lock — keep it fast.
	OnResult func(worker, expID string, t engine.Trial)
	// AuthKey, if non-empty, requires every worker to pass the
	// shared-key HMAC challenge–response handshake (auth.go). Keyless
	// or wrong-key workers are rejected at HELLO with a clear error.
	AuthKey string
	// DrainTimeout bounds the graceful drain on ctx cancellation: the
	// coordinator stops issuing leases and waits up to this long for
	// in-flight chunks to land before failing. <= 0 disables draining
	// (immediate abort) unless Drain is set, which implies a 10s
	// default.
	DrainTimeout time.Duration
	// Drain, if non-nil, receives each job's completed results (a
	// private copy, keyed by plan trial index) after a cancelled sweep
	// finishes draining — the hook the CLI uses to persist partial
	// progress as SFSHARD1 shard files so a killed sweep resumes via
	// the -resume/-merge path. Called only when the sweep fails after
	// draining, once per job with at least one result, with no other
	// coordinator activity in flight.
	Drain func(jobIdx int, results map[int]any)
	// Log, if non-nil, receives coordinator lifecycle lines (auth
	// rejections, drain progress).
	Log func(format string, args ...any)
	// IOTimeout is the per-message wire deadline on worker
	// connections; <= 0 defaults to 2×LeaseTTL. A worker silent past
	// it is torn down like a disconnect (leases revoked) — the bound
	// that keeps a hung peer from pinning a handler goroutine forever.
	IOTimeout time.Duration
	// Events, if non-nil, receives one structured record per sweep
	// lifecycle event (worker join/leave, lease grant/steal/revoke/
	// complete, chunk fail/retry, drain, sweep done/abort). Strictly
	// observational: events never feed scheduling or results.
	Events *obs.EventLog
	// Observer, if non-nil, is attached to this sweep so its Snapshot
	// serves the /status endpoint while Coordinate runs.
	Observer *CoordObserver
	// Trace, if non-nil and enabled, records the sweep's causal
	// timeline: a coordinator-side span per lease (on the connection's
	// lane), steal/revoke/retry instants, flow events linking a lost
	// lease to the chunk's re-grant, and the trace context propagated
	// to workers on LEASE lines (their span batches come back on
	// COMPLETE and are merged under per-worker process lanes). Strictly
	// observational: tracing never feeds scheduling or results.
	Trace *trace.Recorder
}

func (o CoordOptions) withDefaults() CoordOptions {
	if o.ChunkSize <= 0 {
		o.ChunkSize = 8
	}
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.Linger <= 0 {
		o.Linger = 3 * time.Second
	}
	if o.IOTimeout <= 0 {
		o.IOTimeout = 2 * o.LeaseTTL
	}
	return o
}

// Coordinate serves the jobs' trials to workers connecting on lis as
// leased chunks (see wire.go for the protocol) and returns each job's
// positional results, keyed by plan trial index, once every trial has
// a result. Scheduling is pull-based work stealing: workers take the
// next pending chunk when they are free, a chunk whose lease misses
// its heartbeat deadline (dead worker) or whose connection drops is
// reassigned, and a duplicate completion — the original worker was
// slow, not dead — is resolved by content: both encodings of a pure
// trial must be byte-identical, so the first result wins and a
// mismatch aborts the sweep as a determinism violation. Because every
// result lands at its plan index before any reduction, the assembled
// slices are exactly what a single-process run produces.
//
// A worker FAIL (trial execution error) re-leases the failed chunk
// once — preferring a different worker, so one faulty host does not
// kill a fleet-wide sweep — and aborts the sweep on the chunk's
// second failure, mirroring the engine's first-error-cancels
// semantics one retry later; the failing worker keeps serving other
// chunks, so even a lone worker drives its own retry to the abort. A
// worker REFUSE (plan mismatch, codec failure — systematic, never
// chunk-local) aborts immediately.
//
// Cancellation of ctx aborts — immediately by default, or gracefully
// when DrainTimeout/Drain is configured: the coordinator stops
// issuing leases, lets in-flight chunks land (bounded by
// DrainTimeout), and hands each job's completed results to Drain
// before returning the cancellation error, so partial progress
// survives as resumable state. If every trial lands during the drain
// the sweep returns success despite the cancellation. lis is closed
// on return.
func Coordinate(ctx context.Context, lis net.Listener, jobs []CoordJob, opts CoordOptions) ([]map[int]any, error) {
	opts = opts.withDefaults()
	st, err := newCoordState(jobs, opts)
	if err != nil {
		lis.Close()
		return nil, err
	}

	var handlers sync.WaitGroup
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return // listener closed: sweep over or cancelled
			}
			handlers.Add(1)
			go func() {
				defer handlers.Done()
				st.handle(conn)
			}()
		}
	}()

	select {
	case <-ctx.Done():
		st.drainOrFail(ctx.Err())
		// drainOrFail returns when the sweep is finished (drained, or
		// completed mid-drain); fall through to the normal teardown.
		<-st.done
	case <-st.done:
	}
	lis.Close()

	// Let connected workers poll once more and see DONE; then force
	// any straggler connections closed so handle() goroutines exit.
	drained := make(chan struct{})
	go func() { handlers.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(opts.Linger):
		st.closeConns()
		<-drained
	}

	// Timeline close-out: leases still open at teardown (stragglers
	// whose chunks completed through another lease) get their spans
	// closed, and retry flows whose chunk was never re-granted get
	// their terminating 'f', so the export holds no dangling B or 's'.
	// Handlers have all exited, so nothing else is emitting.
	if tr := opts.Trace; tr.Enabled() {
		for _, l := range st.leases.Outstanding() {
			tid := int32(l.ConnID)
			tr.Emit(trace.Record{Ph: 'i', TID: tid, Name: "lease_outstanding", Cat: "lease", Arg: l.Worker})
			tr.Emit(trace.Record{Ph: 'E', TID: tid})
		}
		tr.AbandonPending()
	}

	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failure != nil {
		// Hand partial progress to the persistence hook. All handlers
		// have exited, so the results maps are quiescent; copies keep
		// the hook from aliasing coordinator state.
		if st.opts.Drain != nil {
			for j := range st.jobs {
				if len(st.results[j]) == 0 {
					continue
				}
				cp := make(map[int]any, len(st.results[j]))
				for i, v := range st.results[j] {
					cp[i] = v
				}
				st.opts.Drain(j, cp)
			}
		}
		return nil, st.failure
	}
	return st.results, nil
}

// drainOrFail handles ctx cancellation: with no drain configured it
// aborts immediately (the historical behaviour); otherwise it stops
// lease issuance and waits — bounded by DrainTimeout — for every
// in-flight lease to land or expire before recording the failure.
//
//sf:wallclock — the drain deadline is a real operational timeout.
func (st *coordState) drainOrFail(cause error) {
	if st.opts.Drain == nil && st.opts.DrainTimeout <= 0 {
		st.fail(cause)
		return
	}
	timeout := st.opts.DrainTimeout
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	st.mu.Lock()
	if st.finished {
		st.mu.Unlock()
		return
	}
	st.draining = true
	st.mu.Unlock()
	st.opts.Events.Emit(obs.Event{Event: "drain_start", Msg: cause.Error()})
	st.opts.Trace.Emit(trace.Record{Ph: 'i', Name: "drain_start", Cat: "sweep", Arg: cause.Error()})
	st.logf("sweep: cancelled (%v); draining in-flight leases for up to %v", cause, timeout)
	deadline := time.Now().Add(timeout)
	for st.leases.ActiveAfterReclaim() > 0 && time.Now().Before(deadline) {
		select {
		case <-st.done:
			// The last trials landed (success) or something failed hard
			// mid-drain; either way the outcome is already decided.
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
	st.fail(cause)
}

func (st *coordState) logf(format string, args ...any) {
	if st.opts.Log != nil {
		st.opts.Log(format, args...)
	}
}

// coordState is the shared state of one Coordinate call.
//
// Lock discipline: st.mu may be held while acquiring leases.mu
// (failChunk holds st.mu and calls leases.RequeueAvoiding), so the
// lease table must never call back into coordState under its own lock
// — onDrop fires under leases.mu and touches only metrics and the
// event log. The lockorder analyzer enforces the declared order below.
//
//sf:lockorder st.mu leases.mu
type coordState struct {
	mu        sync.Mutex //sf:mutex st.mu
	jobs      []CoordJob
	byExp     map[string]int   // ExpID -> job index
	results   []map[int]any    // per job: trial index -> decoded value
	encoded   []map[int]string // per job: trial index -> raw payload (dup check)
	remaining int
	failure   error
	finished  bool
	draining  bool // cancelled; in-flight leases landing, none issued
	done      chan struct{}
	leases    *leaseTable
	opts      CoordOptions
	connSeq   uint64
	conns     map[uint64]net.Conn
	// helloed maps handshaken connections to their worker names — the
	// live-worker census /status reports and worker_leave events name.
	helloed map[uint64]string
	// chunkFailed records chunks that already burned their one retry
	// (see failChunk).
	chunkFailed map[chunk]bool
}

func newCoordState(jobs []CoordJob, opts CoordOptions) (*coordState, error) {
	st := &coordState{
		jobs:        jobs,
		byExp:       make(map[string]int, len(jobs)),
		results:     make([]map[int]any, len(jobs)),
		encoded:     make([]map[int]string, len(jobs)),
		done:        make(chan struct{}),
		opts:        opts,
		conns:       map[uint64]net.Conn{},
		helloed:     map[uint64]string{},
		chunkFailed: map[chunk]bool{},
	}
	for j, job := range jobs {
		if job.Job.ExpID == "" || job.Job.Fingerprint == "" {
			return nil, fmt.Errorf("sweep: coordinate: job %d has empty identity", j)
		}
		if _, dup := st.byExp[job.Job.ExpID]; dup {
			return nil, fmt.Errorf("sweep: coordinate: duplicate job for %s", job.Job.ExpID)
		}
		for i, t := range job.Trials {
			if t.Index != i {
				return nil, fmt.Errorf("sweep: coordinate: %s trial %d has plan index %d (jobs must carry full plans)",
					job.Job.ExpID, i, t.Index)
			}
		}
		st.byExp[job.Job.ExpID] = j
		st.results[j] = make(map[int]any, len(job.Trials))
		st.encoded[j] = make(map[int]string, len(job.Trials))
		st.remaining += len(job.Trials)
	}
	st.leases = newLeaseTable(chunked(jobs, opts.ChunkSize), opts.LeaseTTL)
	// Observe steals and revocations where the table decides them. The
	// callback runs with the table lock held: it reads only immutable
	// job identity and touches metrics/events (their own locks), never
	// st.mu — coordinator paths nest st.mu over the table lock, so
	// taking st.mu here would invert the order.
	st.leases.onDrop = func(l lease, how string) {
		switch how {
		case "steal":
			mLeasesStolen.Inc()
		case "revoke":
			mLeasesRevoked.Inc()
		}
		job := st.jobs[l.Chunk.JobIdx].Job
		st.opts.Events.Emit(obs.Event{
			Event:  "lease_" + how,
			Worker: l.Worker,
			Exp:    job.ExpID,
			Lease:  l.ID,
			Chunk:  obs.ChunkRange(l.Chunk.Lo, l.Chunk.Hi),
			Conn:   l.ConnID,
		})
		// Trace the loss: close the lease span on the connection's
		// lane, mark the moment, and open a retry flow that the
		// chunk's re-grant (serveNext) will terminate — the arrow from
		// the lost lease to the chunk's next home. The recorder's
		// mutex is a leaf lock, so this is safe under leases.mu.
		if tr := st.opts.Trace; tr.Enabled() {
			tid := int32(l.ConnID)
			tr.Emit(trace.Record{Ph: 'E', TID: tid})
			tr.Emit(trace.Record{Ph: 'i', TID: tid, Name: "lease_" + how, Cat: "lease", Arg: l.Worker})
			base := trace.LeaseContext(job.ExpID, job.Fingerprint, l.Chunk.Lo, l.Chunk.Hi)
			if id, ok := tr.NextFlow(traceChunkKey(job.ExpID, l.Chunk), base); ok {
				tr.Emit(trace.Record{Ph: 's', ID: id, TID: tid, Name: "retry", Cat: "flow"})
			}
		}
	}
	if opts.Observer != nil {
		opts.Observer.attach(st)
	}
	if st.remaining == 0 {
		close(st.done)
		st.finished = true
	}
	return st, nil
}

// fail records the first failure and releases Coordinate. A failure
// reported after the sweep already finished successfully is ignored:
// every trial holds a content-verified result by then, so a
// straggler's FAIL/REFUSE (e.g. the live holder of a stolen chunk
// erroring during the linger window) cannot invalidate the outcome.
func (st *coordState) fail(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.finished {
		return
	}
	st.failLocked(err)
}

// failNow is fail without the finished-success exemption — for result
// integrity errors (a determinism violation, a malformed delivery),
// which cast doubt on results already accepted and must surface even
// when the last trial has reported.
func (st *coordState) failNow(err error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.failLocked(err)
}

func (st *coordState) failLocked(err error) {
	if st.failure == nil {
		st.failure = err
	}
	st.finishLocked()
}

func (st *coordState) finishLocked() {
	if !st.finished {
		st.finished = true
		close(st.done)
		if st.failure != nil {
			st.opts.Events.Emit(obs.Event{Event: "sweep_abort", Msg: st.failure.Error()})
		} else {
			st.opts.Events.Emit(obs.Event{Event: "sweep_done"})
		}
	}
}

func (st *coordState) isOver() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.finished
}

func (st *coordState) isDraining() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.draining && !st.finished
}

// finishLine renders the sweep's terminal reply: DONE on success,
// ABORT with the cause on failure.
func (st *coordState) finishLine() string {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.failure != nil {
		return "ABORT " + quoteMsg(st.failure.Error())
	}
	return "DONE"
}

// chunkCovered reports whether every trial of c has a delivered
// result.
func (st *coordState) chunkCovered(c chunk) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.chunkCoveredLocked(c)
}

func (st *coordState) chunkCoveredLocked(c chunk) bool {
	m := st.results[c.JobIdx]
	for i := c.Lo; i < c.Hi; i++ {
		if _, ok := m[i]; !ok {
			return false
		}
	}
	return true
}

func (st *coordState) closeConns() {
	st.mu.Lock()
	defer st.mu.Unlock()
	ids := make([]uint64, 0, len(st.conns))
	for id := range st.conns {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		st.conns[id].Close()
	}
}

// handle serves one worker connection until it disconnects or the
// protocol is violated. Any lease the connection still holds when it
// goes away is revoked immediately — a visible disconnect reassigns
// faster than waiting out the TTL.
//
//sf:wallclock — lease grant/deadline bookkeeping uses real time.
func (st *coordState) handle(conn net.Conn) {
	// Per-message deadline: a worker that stops making protocol
	// progress for this long (default two lease TTLs) is
	// indistinguishable from a dead one and its connection is torn
	// down (revoking its leases), so a hung peer never outlives the
	// lease it holds by more than the reclaim already tolerates.
	wc := newWireConn(conn, st.opts.IOTimeout)
	st.mu.Lock()
	st.connSeq++
	connID := st.connSeq
	st.conns[connID] = conn
	st.mu.Unlock()
	defer func() {
		wc.close()
		revoked := st.leases.RevokeConn(connID)
		st.mu.Lock()
		delete(st.conns, connID)
		name, wasHelloed := st.helloed[connID]
		delete(st.helloed, connID)
		st.mu.Unlock()
		if wasHelloed {
			mWorkersConnected.Dec()
			st.opts.Events.Emit(obs.Event{Event: "worker_leave", Worker: name, Conn: connID, N: int64(revoked)})
		}
	}()

	worker := ""
	helloed := false
	for {
		line, err := wc.recv()
		if err != nil {
			return
		}
		verb, fields := splitMsg(line)
		// The handshake (including authentication) must complete before
		// any other verb is served — otherwise a peer could skip
		// straight past a required AUTH exchange.
		if !helloed && verb != "HELLO" {
			wc.send("ERR " + quoteMsg("HELLO required before any other verb"))
			return
		}
		switch verb {
		case "HELLO":
			if len(fields) < 1 || fields[0] != protoVersion {
				wc.send("ERR " + quoteMsg(fmt.Sprintf("protocol version mismatch: want %s", protoVersion)))
				return
			}
			if len(fields) > 1 {
				worker = fields[1]
			}
			if !st.authenticate(wc, worker, fields) {
				return
			}
			helloed = true
			st.mu.Lock()
			st.helloed[connID] = worker
			st.mu.Unlock()
			mWorkersConnected.Inc()
			st.opts.Events.Emit(obs.Event{Event: "worker_join", Worker: worker, Conn: connID})
			hb := st.opts.LeaseTTL / 3
			if hb < time.Millisecond {
				hb = time.Millisecond
			}
			if err := wc.send(fmt.Sprintf("OK %d", hb.Milliseconds())); err != nil {
				return
			}
		case "NEXT":
			if err := st.serveNext(wc, worker, connID); err != nil {
				return
			}
		case "PING":
			id, err := parseID(fields)
			if err != nil {
				wc.send("ERR " + quoteMsg(err.Error()))
				return
			}
			reply := "GONE"
			if st.leases.Heartbeat(id) {
				reply = "OK"
			}
			if err := wc.send(reply); err != nil {
				return
			}
		case "RESULT":
			m, err := parseResult(fields)
			if err != nil {
				wc.send("ERR " + quoteMsg(err.Error()))
				return
			}
			if err := st.acceptResult(worker, m); err != nil {
				st.failNow(err)
				wc.send("ERR " + quoteMsg(err.Error()))
				return
			}
			st.leases.Heartbeat(m.LeaseID) // streaming counts as liveness
		case "COMPLETE":
			id, err := parseID(fields)
			if err != nil {
				wc.send("ERR " + quoteMsg(err.Error()))
				return
			}
			// A traced COMPLETE carries the worker's span batch as an
			// optional hex field; merge it into the worker's process
			// lane whether or not the lease is still live — results
			// from a stolen lease are accepted, and so is its timeline.
			if len(fields) > 1 && st.opts.Trace.Enabled() {
				if raw, err := hex.DecodeString(fields[1]); err == nil {
					if recs, err := trace.DecodeBatch(raw); err == nil {
						st.opts.Trace.Merge(worker, recs)
					}
				}
			}
			reply := "GONE"
			if l, ok := st.leases.Complete(id); ok {
				reply = "OK"
				mLeasesCompleted.Inc()
				mLeaseSeconds.Observe(time.Since(l.Granted).Seconds())
				st.opts.Events.Emit(obs.Event{
					Event:  "lease_complete",
					Worker: worker,
					Exp:    st.jobs[l.Chunk.JobIdx].Job.ExpID,
					Lease:  l.ID,
					Chunk:  obs.ChunkRange(l.Chunk.Lo, l.Chunk.Hi),
					Conn:   connID,
				})
				if st.opts.Trace.Enabled() {
					st.opts.Trace.Emit(trace.Record{Ph: 'E', TID: int32(l.ConnID)})
				}
				// Coverage backstop: a COMPLETE whose results did not
				// all arrive (a worker that violated the Execute
				// contract) must not strand its chunk in limbo — the
				// missing trials go back on the queue.
				if !st.chunkCovered(l.Chunk) {
					st.leases.Requeue(l.Chunk)
				}
			}
			if err := wc.send(reply); err != nil {
				return
			}
		case "FAIL":
			id, err := parseID(fields)
			if err != nil {
				wc.send("ERR " + quoteMsg(err.Error()))
				return
			}
			msg := unquoteMsg(fields[1:])
			if l, ok := st.leases.Complete(id); ok {
				if st.opts.Trace.Enabled() {
					st.opts.Trace.Emit(trace.Record{Ph: 'E', TID: int32(l.ConnID)})
				}
				st.failChunk(worker, l.Chunk, msg)
			}
			// A FAIL on an already-revoked lease is ignored: the chunk
			// was stolen and its fate belongs to its current owner —
			// if the error is deterministic, that owner's FAIL (on a
			// live lease) drives the retry accounting.
			if err := wc.send("OK"); err != nil {
				return
			}
		case "REFUSE":
			// This worker cannot run the sweep at all (plan mismatch,
			// codec failure) — systematic, never chunk-local, so abort
			// immediately rather than burning chunk retries.
			id, err := parseID(fields)
			if err != nil {
				wc.send("ERR " + quoteMsg(err.Error()))
				return
			}
			if l, ok := st.leases.Complete(id); ok && st.opts.Trace.Enabled() {
				st.opts.Trace.Emit(trace.Record{Ph: 'E', TID: int32(l.ConnID)})
			}
			mRefusals.Inc()
			st.opts.Events.Emit(obs.Event{Event: "worker_refuse", Worker: worker, Conn: connID, Msg: unquoteMsg(fields[1:])})
			st.fail(fmt.Errorf("sweep: worker %s: %s", worker, unquoteMsg(fields[1:])))
			if err := wc.send("OK"); err != nil {
				return
			}
		default:
			wc.send("ERR " + quoteMsg(fmt.Sprintf("unknown verb %q", verb)))
			return
		}
	}
}

// authenticate runs the coordinator's half of the CHAL/AUTH exchange
// when a key is configured (wire.go documents the flow). It reports
// whether the session may proceed; on rejection the ERR has been sent
// and the connection must close. fields are HELLO's: version, name,
// optional client nonce.
func (st *coordState) authenticate(wc *wireConn, worker string, fields []string) bool {
	key := []byte(st.opts.AuthKey)
	if len(key) == 0 {
		if len(fields) > 2 {
			// The worker offered an auth nonce we cannot answer: it is
			// keyed and we are not. Refusing beats silently running a
			// sweep the operator believed was authenticated.
			st.logf("worker %s: rejected: worker requires authentication, coordinator has no key", worker)
			wc.send("ERR " + quoteMsg("worker requires authentication but coordinator has no key configured"))
			return false
		}
		return true
	}
	if len(fields) < 3 {
		st.logf("worker %s: rejected: authentication required, no nonce offered", worker)
		wc.send("ERR " + quoteMsg("authentication required: configure the shared key on this worker"))
		return false
	}
	clientNonce := fields[2]
	coordNonce, err := newAuthNonce()
	if err != nil {
		wc.send("ERR " + quoteMsg(err.Error()))
		return false
	}
	if err := wc.send("CHAL " + coordNonce + " " + authProof(key, authCoordLabel, clientNonce)); err != nil {
		return false
	}
	line, err := wc.recv()
	if err != nil {
		return false
	}
	verb, f := splitMsg(line)
	if verb != "AUTH" || len(f) != 1 || !verifyAuthProof(key, authWorkerLabel, coordNonce, f[0]) {
		st.logf("worker %s: rejected: shared-key proof mismatch", worker)
		wc.send("ERR " + quoteMsg("authentication failed: shared-key proof mismatch"))
		return false
	}
	return true
}

// serveNext answers one NEXT: a lease, a WAIT (everything leased out
// and alive, or the coordinator is draining), DONE (sweep complete),
// or ABORT (sweep failed) — the DONE/ABORT distinction lets an idle
// worker on a failed sweep exit nonzero instead of reporting success.
func (st *coordState) serveNext(wc *wireConn, worker string, connID uint64) error {
	if st.isOver() {
		return wc.send(st.finishLine())
	}
	if st.isDraining() {
		// No new leases while draining; idle workers poll until the
		// drain resolves into DONE or ABORT.
		return wc.send("WAIT 20")
	}
	if l, ok := st.leases.Acquire(worker, connID); ok {
		job := st.jobs[l.Chunk.JobIdx]
		mLeasesGranted.Inc()
		st.opts.Events.Emit(obs.Event{
			Event:  "lease_grant",
			Worker: worker,
			Exp:    job.Job.ExpID,
			Lease:  l.ID,
			Chunk:  obs.ChunkRange(l.Chunk.Lo, l.Chunk.Hi),
			Conn:   connID,
		})
		m := leaseMsg{
			ID:          l.ID,
			ExpID:       job.Job.ExpID,
			Fingerprint: job.Job.Fingerprint,
			Lo:          l.Chunk.Lo,
			Hi:          l.Chunk.Hi,
		}
		if tr := st.opts.Trace; tr.Enabled() {
			tid := int32(connID)
			// A pending retry flow means this grant is the re-home of a
			// stolen/failed chunk: terminate the arrow here.
			if id, ok := tr.TakePending(traceChunkKey(job.Job.ExpID, l.Chunk)); ok {
				tr.Emit(trace.Record{Ph: 'f', ID: id, TID: tid, Name: "retry", Cat: "flow"})
			}
			ctx := trace.LeaseContext(job.Job.ExpID, job.Job.Fingerprint, l.Chunk.Lo, l.Chunk.Hi)
			tr.Emit(trace.Record{Ph: 'B', TID: tid,
				Name: fmt.Sprintf("lease %s[%d,%d)", job.Job.ExpID, l.Chunk.Lo, l.Chunk.Hi),
				Cat:  "lease", Arg: worker})
			tr.Emit(trace.Record{Ph: 's', ID: ctx, TID: tid, Name: "lease", Cat: "flow"})
			m.Trace = strconv.FormatUint(ctx, 16)
		}
		return wc.send(formatLease(m))
	}
	if st.isOver() {
		return wc.send(st.finishLine())
	}
	// All chunks are leased to live workers; poll again well inside
	// the TTL so a freshly expired lease is stolen promptly.
	wait := st.opts.LeaseTTL / 4
	if wait > 500*time.Millisecond {
		wait = 500 * time.Millisecond
	}
	if wait < 5*time.Millisecond {
		wait = 5 * time.Millisecond
	}
	return wc.send(fmt.Sprintf("WAIT %d", wait.Milliseconds()))
}

// failChunk handles a worker's FAIL for a live lease's chunk. The
// first failure re-leases the chunk once, preferring a different
// worker — one retry distinguishes a host-local fault (OOM kill, disk
// error, bad deploy on one machine) from a deterministic trial error
// without masking the latter. A second failure of the same chunk, by
// any worker, aborts the sweep, mirroring the engine's
// first-error-cancels semantics one retry later.
func (st *coordState) failChunk(worker string, c chunk, msg string) {
	// One critical section for coverage, the retry flip, and the
	// requeue: results land under the same lock (acceptResult), so a
	// chunk whose last result races the FAIL can neither be requeued
	// for pointless re-execution nor burn its retry budget.
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.chunkCoveredLocked(c) {
		// Every trial of the chunk already holds a content-verified
		// result (a presumed-dead worker delivered late, the thief
		// then failed): the failure concerns work nobody needs —
		// neither a retry nor an abort. Mirrors the COMPLETE
		// handler's coverage backstop.
		return
	}
	expID := st.jobs[c.JobIdx].Job.ExpID
	if !st.chunkFailed[c] {
		st.chunkFailed[c] = true
		mChunkRetries.Inc()
		st.opts.Events.Emit(obs.Event{
			Event:  "chunk_retry",
			Worker: worker,
			Exp:    expID,
			Chunk:  obs.ChunkRange(c.Lo, c.Hi),
			Msg:    msg,
		})
		// Open the retry flow: the arrow from this failure to the
		// chunk's re-grant (serveNext consumes it). The lease span was
		// already closed by the FAIL handler.
		if tr := st.opts.Trace; tr.Enabled() {
			tr.Emit(trace.Record{Ph: 'i', Name: "chunk_retry", Cat: "lease", Arg: worker})
			base := trace.LeaseContext(expID, st.jobs[c.JobIdx].Job.Fingerprint, c.Lo, c.Hi)
			if id, ok := tr.NextFlow(traceChunkKey(expID, c), base); ok {
				tr.Emit(trace.Record{Ph: 's', ID: id, Name: "retry", Cat: "flow"})
			}
		}
		st.leases.RequeueAvoiding(c, worker)
		return
	}
	st.opts.Events.Emit(obs.Event{
		Event:  "chunk_fail",
		Worker: worker,
		Exp:    expID,
		Chunk:  obs.ChunkRange(c.Lo, c.Hi),
		Msg:    msg,
	})
	if st.finished {
		return
	}
	st.failLocked(fmt.Errorf("sweep: worker %s: %s (%s trials [%d,%d) already failed once and were re-leased)",
		worker, msg, st.jobs[c.JobIdx].Job.ExpID, c.Lo, c.Hi))
}

// acceptResult records one delivered trial result. Results are valid
// regardless of lease state — trials are pure, so a revoked lease's
// late delivery is identical to the stolen re-execution — but two
// deliveries that disagree expose a broken determinism contract and
// abort the sweep.
func (st *coordState) acceptResult(worker string, m resultMsg) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	j, ok := st.byExp[m.ExpID]
	if !ok {
		return fmt.Errorf("sweep: result for unknown experiment %s", m.ExpID)
	}
	job := st.jobs[j]
	if m.Index < 0 || m.Index >= len(job.Trials) {
		return fmt.Errorf("sweep: result index %d outside %s plan of %d trials", m.Index, m.ExpID, len(job.Trials))
	}
	if prev, dup := st.encoded[j][m.Index]; dup {
		mDupResults.Inc()
		if !bytes.Equal([]byte(prev), m.Payload) {
			return fmt.Errorf("sweep: %s trial %d (%s): workers delivered different encodings — trial function is not deterministic",
				m.ExpID, m.Index, job.Trials[m.Index].Key)
		}
		return nil
	}
	v, err := DecodeResult(m.Payload)
	if err != nil {
		return fmt.Errorf("sweep: %s trial %d: %w", m.ExpID, m.Index, err)
	}
	st.encoded[j][m.Index] = string(m.Payload)
	st.results[j][m.Index] = v
	st.remaining--
	mCoordResults.With(worker).Inc()
	if st.opts.OnResult != nil {
		st.opts.OnResult(worker, m.ExpID, job.Trials[m.Index])
	}
	if st.remaining == 0 {
		st.finishLocked()
	}
	return nil
}

// traceChunkKey identifies a chunk in the trace recorder's
// pending-flow table (steal/retry lineage).
func traceChunkKey(expID string, c chunk) string {
	return fmt.Sprintf("%s:%d:%d", expID, c.Lo, c.Hi)
}

// errLeaseRevoked is the worker-side cause when a chunk's lease was
// stolen mid-execution: the work is abandoned, not failed.
var errLeaseRevoked = errors.New("sweep: lease revoked")
