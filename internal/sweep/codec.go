package sweep

import (
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sync"
)

// CodecVersion identifies the wire format of encoded trial results. It
// participates in every cache key and shard-file header, so bumping it
// atomically invalidates all persisted results rather than decoding
// them wrongly. Bump it after any change to (a) the encoding rules,
// (b) a registered type's shape, or (c) the semantics of any trial
// function — fingerprints pin the workload's *parameters* (config,
// trial keys, seeds), not the code, so a trial-logic change without a
// bump would let old cached results splice silently into new runs.
//
// Version history: 1 = initial format; 2 = cache entry headers carry
// the plan fingerprint (enabling GC by fingerprint, cache.go).
const CodecVersion = 2

// The result-type registry. Wire names are part of the persistence
// contract: renaming a registered type's wire name orphans its cached
// results, and two types can never share a name.
var (
	regMu     sync.RWMutex
	regByName = map[string]reflect.Type{}
	regByType = map[reflect.Type]string{}
)

// RegisterResult registers T under the given stable wire name, so
// values of dynamic type T can cross process boundaries via
// EncodeResult/DecodeResult. T must be an encodable type: bools, ints,
// uints, floats, strings, slices of encodable types, and structs whose
// fields are all exported and encodable. Registration panics on
// violations — they are programming errors, caught by the first test
// that imports the registering package.
func RegisterResult[T any](name string) {
	var zero T
	t := reflect.TypeOf(zero)
	if t == nil {
		panic("sweep: RegisterResult of interface type")
	}
	if err := checkEncodable(t, nil); err != nil {
		panic(fmt.Sprintf("sweep: RegisterResult(%q): %v", name, err))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if prev, ok := regByName[name]; ok && prev != t {
		panic(fmt.Sprintf("sweep: wire name %q already registered for %v", name, prev))
	}
	if prev, ok := regByType[t]; ok && prev != name {
		panic(fmt.Sprintf("sweep: type %v already registered as %q", t, prev))
	}
	regByName[name] = t
	regByType[t] = name
}

// checkEncodable validates that t fits the codec's type system. path
// guards against recursive types, which the flat encoding cannot
// represent.
func checkEncodable(t reflect.Type, path []reflect.Type) error {
	for _, p := range path {
		if p == t {
			return fmt.Errorf("recursive type %v", t)
		}
	}
	switch t.Kind() {
	case reflect.Bool,
		reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64,
		reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64,
		reflect.Float32, reflect.Float64,
		reflect.String:
		return nil
	case reflect.Slice:
		return checkEncodable(t.Elem(), append(path, t))
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if !f.IsExported() {
				return fmt.Errorf("%v has unexported field %s (codec requires exported fields for exact round-trips)", t, f.Name)
			}
			if err := checkEncodable(f.Type, append(path, t)); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unsupported kind %v (%v)", t.Kind(), t)
	}
}

// EncodeResult encodes one trial result as its wire name followed by
// the deterministic binary encoding of the value. The dynamic type of
// v must have been registered. Equal values always produce equal bytes
// (fixed-width integers, IEEE-754 float bits, declaration-order struct
// fields), so encodings can be compared and hashed.
func EncodeResult(v any) ([]byte, error) {
	t := reflect.TypeOf(v)
	regMu.RLock()
	name, ok := regByType[t]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("sweep: result type %T not registered (call sweep.RegisterResult)", v)
	}
	buf := appendString(nil, name)
	return appendValue(buf, reflect.ValueOf(v)), nil
}

// DecodeResult decodes bytes produced by EncodeResult back into a
// value of the originally registered concrete type (returned as that
// type, not a pointer, so reductions can type-assert it exactly as
// they assert in-process results).
func DecodeResult(data []byte) (any, error) {
	d := &decoder{buf: data}
	name := d.string()
	regMu.RLock()
	t, ok := regByName[name]
	regMu.RUnlock()
	if d.err != nil {
		return nil, fmt.Errorf("sweep: decoding result header: %w", d.err)
	}
	if !ok {
		return nil, fmt.Errorf("sweep: unknown result wire name %q (registered by a newer binary?)", name)
	}
	v := reflect.New(t).Elem()
	d.value(v)
	if d.err != nil {
		return nil, fmt.Errorf("sweep: decoding %s: %w", name, d.err)
	}
	if d.pos != len(d.buf) {
		return nil, fmt.Errorf("sweep: decoding %s: %d trailing bytes", name, len(d.buf)-d.pos)
	}
	return v.Interface(), nil
}

// appendValue appends the deterministic encoding of v. v's type was
// validated at registration, so unsupported kinds cannot occur.
//
//sf:hotpath
func appendValue(buf []byte, v reflect.Value) []byte {
	switch v.Kind() {
	case reflect.Bool:
		if v.Bool() {
			return append(buf, 1)
		}
		return append(buf, 0)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.LittleEndian.AppendUint64(buf, uint64(v.Int()))
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return binary.LittleEndian.AppendUint64(buf, v.Uint())
	case reflect.Float32:
		return binary.LittleEndian.AppendUint32(buf, math.Float32bits(float32(v.Float())))
	case reflect.Float64:
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
	case reflect.String:
		return appendString(buf, v.String())
	case reflect.Slice:
		buf = binary.AppendUvarint(buf, uint64(v.Len()))
		for i := 0; i < v.Len(); i++ {
			buf = appendValue(buf, v.Index(i))
		}
		return buf
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			buf = appendValue(buf, v.Field(i))
		}
		return buf
	default:
		//sflint:ignore hotpath panic formatting on a registration-validated unreachable branch
		panic(fmt.Sprintf("sweep: unvalidated kind %v reached the encoder", v.Kind()))
	}
}

//sf:hotpath
func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder is a cursor over an encoded buffer; the first error sticks
// and every subsequent read is a no-op, so call sites check once.
type decoder struct {
	buf []byte
	pos int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.pos+n > len(d.buf) {
		d.fail("truncated: need %d bytes at offset %d of %d", n, d.pos, len(d.buf))
		return nil
	}
	b := d.buf[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail("bad uvarint at offset %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) uint64() uint64 {
	b := d.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.buf)-d.pos) {
		d.fail("string length %d exceeds remaining %d bytes", n, len(d.buf)-d.pos)
	}
	b := d.bytes(int(n))
	return string(b)
}

// value decodes into the addressable v.
func (d *decoder) value(v reflect.Value) {
	if d.err != nil {
		return
	}
	switch v.Kind() {
	case reflect.Bool:
		b := d.bytes(1)
		if b != nil {
			v.SetBool(b[0] != 0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		u := d.uint64()
		i := int64(u)
		if d.err == nil && v.OverflowInt(i) {
			d.fail("value %d overflows %v", i, v.Type())
			return
		}
		v.SetInt(i)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		u := d.uint64()
		if d.err == nil && v.OverflowUint(u) {
			d.fail("value %d overflows %v", u, v.Type())
			return
		}
		v.SetUint(u)
	case reflect.Float32:
		b := d.bytes(4)
		if b != nil {
			v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(b))))
		}
	case reflect.Float64:
		u := d.uint64()
		v.SetFloat(math.Float64frombits(u))
	case reflect.String:
		v.SetString(d.string())
	case reflect.Slice:
		n := d.uvarint()
		if d.err != nil {
			return
		}
		if n == 0 {
			// Canonical: empty decodes to nil, matching the zero value
			// a fresh in-process run would carry.
			v.SetZero()
			return
		}
		// Cap pre-allocation by what the buffer could possibly hold
		// (every element costs at least one byte), so corrupt lengths
		// fail cleanly instead of allocating wildly.
		if n > uint64(len(d.buf)-d.pos) {
			d.fail("slice length %d exceeds remaining %d bytes", n, len(d.buf)-d.pos)
			return
		}
		s := reflect.MakeSlice(v.Type(), int(n), int(n))
		for i := 0; i < int(n) && d.err == nil; i++ {
			d.value(s.Index(i))
		}
		v.Set(s)
	case reflect.Struct:
		for i := 0; i < v.NumField() && d.err == nil; i++ {
			d.value(v.Field(i))
		}
	default:
		d.fail("unsupported kind %v", v.Kind())
	}
}
