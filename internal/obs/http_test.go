package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testHandler(t *testing.T, pprofOn bool) http.Handler {
	t.Helper()
	r := NewRegistry()
	r.Counter("ops_total", "requests served").Add(5)
	status := func() any {
		return map[string]any{"mode": "coordinate", "done": 3, "total": 10}
	}
	return NewOpsHandler(r, status, pprofOn)
}

func get(t *testing.T, h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestOpsEndpoints(t *testing.T) {
	h := testHandler(t, false)

	if rec := get(t, h, "/healthz", nil); rec.Code != 200 || rec.Body.String() != "ok\n" {
		t.Errorf("/healthz = %d %q", rec.Code, rec.Body.String())
	}

	rec := get(t, h, "/metrics", nil)
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != TextContentType {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "ops_total 5") {
		t.Errorf("/metrics missing counter:\n%s", rec.Body.String())
	}

	// pprof is absent unless enabled.
	if rec := get(t, h, "/debug/pprof/", nil); rec.Code != http.StatusNotFound {
		t.Errorf("/debug/pprof/ without -pprof = %d, want 404", rec.Code)
	}
	if rec := get(t, testHandler(t, true), "/debug/pprof/", nil); rec.Code != 200 {
		t.Errorf("/debug/pprof/ with -pprof = %d, want 200", rec.Code)
	}
}

// TestStatusJSONRoundTrip: the /status body is valid JSON whose fields
// survive a marshal→serve→parse round trip.
func TestStatusJSONRoundTrip(t *testing.T) {
	h := testHandler(t, false)
	rec := get(t, h, "/status", nil)
	if rec.Code != 200 {
		t.Fatalf("/status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("/status content type = %q", ct)
	}
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("/status is not JSON: %v\n%s", err, rec.Body.String())
	}
	if got["mode"] != "coordinate" || got["done"] != float64(3) || got["total"] != float64(10) {
		t.Errorf("/status round trip = %v", got)
	}
}

func TestStatusHTML(t *testing.T) {
	h := testHandler(t, false)
	for _, tc := range []struct {
		path string
		hdr  map[string]string
	}{
		{"/status?format=html", nil},
		{"/status", map[string]string{"Accept": "text/html"}},
	} {
		rec := get(t, h, tc.path, tc.hdr)
		if rec.Code != 200 {
			t.Fatalf("%s = %d", tc.path, rec.Code)
		}
		body := rec.Body.String()
		if !strings.Contains(body, "<table>") || !strings.Contains(body, "coordinate") {
			t.Errorf("%s: not an HTML rendering:\n%s", tc.path, body)
		}
	}
}

func TestStartOps(t *testing.T) {
	srv, err := StartOps("127.0.0.1:0", testHandler(t, false))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || string(body) != "ok\n" {
		t.Errorf("healthz over TCP = %d %q", resp.StatusCode, body)
	}
}
