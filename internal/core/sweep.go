package core

import (
	"fmt"

	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

// SweepTrial is one unit of a decomposed scaling sweep: a key suffix
// (the caller prepends its cell label), the derived seed, and the
// closure to execute. Run's RNG argument drives Monte-Carlo bound
// trials; search trials derive their own streams via MeasureOne and
// ignore it. The scratch argument is the executing worker's reusable
// buffer set (nil for scratch-free execution) — it never affects the
// result value.
type SweepTrial struct {
	Key  string
	Seed uint64
	Run  func(r *rng.RNG, s *Scratch) (any, error)
}

// ScalingSweep decomposes one scaling measurement — a full
// (sizes × replications) sweep of a single algorithm/model pairing,
// plus optional per-size bounds — into independent trials, and owns
// the seed-derivation scheme shared by every execution path:
//
//   - point seed   = DeriveSeed(spec.Seed, 1000+sizeIndex), exactly as
//     the serial MeasureScaling derives it, with replication streams
//     fanned out by MeasureOne;
//   - bound seed   = DeriveSeed(spec.Seed, 5000+sizeIndex), seeding the
//     RNG handed to Monte-Carlo bounds (exact bounds ignore it).
//
// Search measurements therefore reproduce the serial harness bit for
// bit on any worker count; Monte-Carlo bounds are deterministic per
// (seed, size) but reseeded per size, unlike the pre-engine harness
// which reused one bound stream across sizes.
type ScalingSweep struct {
	sizes     []int
	spec      SearchSpec
	trials    []SweepTrial
	searchIdx [][]int // [size][rep] -> index into trials
	boundIdx  []int   // [size] -> index into trials, or -1
}

// NewScalingSweep builds the trial decomposition. boundFor may be nil.
func NewScalingSweep(sizes []int, genFor func(n int) GraphGen, boundFor func(n int, r *rng.RNG) (float64, error), spec SearchSpec) (*ScalingSweep, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("core: scaling sweep needs at least 2 sizes, got %d", len(sizes))
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	s := &ScalingSweep{
		sizes:     sizes,
		spec:      spec,
		searchIdx: make([][]int, len(sizes)),
		boundIdx:  make([]int, len(sizes)),
	}
	add := func(key string, seed uint64, run func(r *rng.RNG, sc *Scratch) (any, error)) int {
		s.trials = append(s.trials, SweepTrial{Key: key, Seed: seed, Run: run})
		return len(s.trials) - 1
	}
	for si, n := range sizes {
		pointSpec := spec
		pointSpec.Seed = rng.DeriveSeed(spec.Seed, uint64(1000+si))
		gen := genFor(n)
		s.searchIdx[si] = make([]int, spec.Reps)
		for rep := 0; rep < spec.Reps; rep++ {
			s.searchIdx[si][rep] = add(
				fmt.Sprintf("n=%d/rep=%d", n, rep),
				rng.DeriveSeed(pointSpec.Seed, uint64(rep)),
				func(_ *rng.RNG, sc *Scratch) (any, error) { return MeasureOneScratch(gen, pointSpec, rep, sc) })
		}
		s.boundIdx[si] = -1
		if boundFor != nil {
			s.boundIdx[si] = add(
				fmt.Sprintf("n=%d/bound", n),
				rng.DeriveSeed(spec.Seed, uint64(5000+si)),
				func(r *rng.RNG, _ *Scratch) (any, error) { return boundFor(n, r) })
		}
	}
	return s, nil
}

// Trials returns the decomposition in plan order; Collect expects its
// results positionally aligned with this slice.
func (s *ScalingSweep) Trials() []SweepTrial { return s.trials }

// Collect assembles the positional trial results into the
// ScalingResult: replications summarized in order, bounds attached,
// scaling exponent fitted — all deterministic given the result slice.
func (s *ScalingSweep) Collect(results []any) (ScalingResult, error) {
	if len(results) != len(s.trials) {
		return ScalingResult{}, fmt.Errorf("core: sweep got %d results for %d trials", len(results), len(s.trials))
	}
	out := ScalingResult{Algorithm: s.spec.Algorithm.Name()}
	var ns, means []float64
	for si, n := range s.sizes {
		outcomes := make([]SearchOutcome, s.spec.Reps)
		for rep, idx := range s.searchIdx[si] {
			o, ok := results[idx].(SearchOutcome)
			if !ok {
				return ScalingResult{}, fmt.Errorf("core: sweep n=%d rep=%d: result type %T", n, rep, results[idx])
			}
			outcomes[rep] = o
		}
		point := ScalingPoint{N: n, Measurement: NewMeasurement(s.spec, outcomes)}
		if bi := s.boundIdx[si]; bi >= 0 {
			bv, ok := results[bi].(float64)
			if !ok {
				return ScalingResult{}, fmt.Errorf("core: sweep n=%d bound: result type %T", n, results[bi])
			}
			point.Bound = bv
		}
		out.Points = append(out.Points, point)
		ns = append(ns, float64(n))
		means = append(means, point.Measurement.Requests.Mean)
	}
	fit, err := stats.FitScaling(ns, means)
	if err != nil {
		return ScalingResult{}, fmt.Errorf("core: fitting scaling: %w", err)
	}
	out.Fit = fit
	return out, nil
}
