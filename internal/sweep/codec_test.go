package sweep

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

type wireEnum int

type wireInner struct {
	N      int
	Mean   float64
	Labels []string
}

type wireOuter struct {
	Name    string
	Kind    wireEnum
	OK      bool
	Samples []float64
	Inner   wireInner
	Inners  []wireInner
}

func init() {
	RegisterResult[wireOuter]("sweep_test.wireOuter")
	RegisterResult[float64]("sweep_test.float64")
}

func testValue() wireOuter {
	return wireOuter{
		Name:    "degree-greedy/weak",
		Kind:    wireEnum(2),
		OK:      true,
		Samples: []float64{1, 2.5, math.Inf(1), math.NaN(), math.Copysign(0, -1), 1e-308},
		Inner:   wireInner{N: -3, Mean: math.Pi, Labels: []string{"a", "", "c,\"quoted\"\n"}},
		Inners:  []wireInner{{N: 1}, {N: 2, Labels: nil}},
	}
}

// equalExact compares with NaN == NaN and -0 distinguished from +0,
// i.e. bit-level float equality — the codec's actual contract.
func equalExact(a, b any) bool {
	ba, err1 := EncodeResult(a)
	bb, err2 := EncodeResult(b)
	return err1 == nil && err2 == nil && bytes.Equal(ba, bb)
}

func TestCodecRoundTripExact(t *testing.T) {
	orig := testValue()
	enc, err := EncodeResult(orig)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := dec.(wireOuter)
	if !ok {
		t.Fatalf("decoded dynamic type %T, want wireOuter", dec)
	}
	if !equalExact(orig, got) {
		t.Errorf("round trip not bit-exact:\norig %+v\ngot  %+v", orig, got)
	}
	// NaN round-trips as the same bit pattern.
	if !math.IsNaN(got.Samples[3]) {
		t.Errorf("NaN sample decoded as %v", got.Samples[3])
	}
	if math.Signbit(got.Samples[4]) != true {
		t.Errorf("-0 lost its sign bit")
	}
}

func TestCodecDeterministic(t *testing.T) {
	a, err := EncodeResult(testValue())
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeResult(testValue())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("equal values encoded to different bytes")
	}
}

func TestCodecFloat64(t *testing.T) {
	enc, err := EncodeResult(math.Sqrt(2))
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeResult(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec != math.Sqrt(2) {
		t.Errorf("float64 round trip: got %v", dec)
	}
}

func TestCodecNilSliceCanonical(t *testing.T) {
	// nil and empty slices encode identically and decode to nil, so a
	// decoded result can never differ from a fresh zero-valued one.
	a, _ := EncodeResult(wireOuter{Samples: nil})
	b, _ := EncodeResult(wireOuter{Samples: []float64{}})
	if !bytes.Equal(a, b) {
		t.Error("nil and empty slice encode differently")
	}
	dec, err := DecodeResult(a)
	if err != nil {
		t.Fatal(err)
	}
	if dec.(wireOuter).Samples != nil {
		t.Error("empty slice did not decode to nil")
	}
}

func TestCodecUnregisteredType(t *testing.T) {
	type unregistered struct{ X int }
	if _, err := EncodeResult(unregistered{}); err == nil {
		t.Error("encoding an unregistered type succeeded")
	}
	if _, err := EncodeResult(nil); err == nil {
		t.Error("encoding nil succeeded")
	}
}

func TestCodecUnknownWireName(t *testing.T) {
	data := appendString(nil, "sweep_test.never-registered")
	if _, err := DecodeResult(data); err == nil {
		t.Error("decoding an unknown wire name succeeded")
	}
}

func TestCodecCorruptData(t *testing.T) {
	enc, err := EncodeResult(testValue())
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeResult(enc[:n]); err == nil {
			t.Errorf("decoding %d-byte truncation succeeded", n)
		}
	}
	if _, err := DecodeResult(append(append([]byte(nil), enc...), 0xFF)); err == nil {
		t.Error("decoding with trailing bytes succeeded")
	}
}

func TestRegisterRejectsBadTypes(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	type unexported struct{ x int } //nolint:unused
	mustPanic("unexported field", func() { RegisterResult[unexported]("sweep_test.unexported") })
	type withMap struct{ M map[string]int }
	mustPanic("map field", func() { RegisterResult[withMap]("sweep_test.withMap") })
	type withPtr struct{ P *int }
	mustPanic("pointer field", func() { RegisterResult[withPtr]("sweep_test.withPtr") })
	mustPanic("duplicate wire name", func() { RegisterResult[wireInner]("sweep_test.wireOuter") })
	mustPanic("duplicate type", func() { RegisterResult[wireOuter]("sweep_test.other-name") })
}

func TestRegisterIdempotent(t *testing.T) {
	// Same (type, name) pair may be registered twice — packages with
	// multiple init paths must not trip over themselves.
	RegisterResult[wireOuter]("sweep_test.wireOuter")
	if regByName["sweep_test.wireOuter"] != reflect.TypeOf(wireOuter{}) {
		t.Error("registration lost")
	}
}
