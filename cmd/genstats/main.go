// Command genstats generates one graph from any model registered in
// the model registry (internal/model) and prints its structural
// statistics: degree distribution with power-law fit, maximum degree,
// distances, and connectivity.
//
// Usage:
//
//	genstats -model mori -params n=16384,p=0.5,m=1 [-seed 1]
//	genstats -model cf -params n=16384,alpha=0.8
//	genstats -model fitness -params n=16384,m=2,eta0=0.1
//	genstats -model geopa -params n=16384,r=0.25
//
// -params is a comma-separated name=value list validated against the
// chosen model's parameter table (missing parameters take their
// defaults; run `graphgen -list` for the registry). Defaults are the
// registry's — e.g. bare genstats now measures the registry default
// n=4096, where the pre-registry CLI defaulted to 16384 — so pass
// -params n=… when comparing against older baselines. Adding a model
// to the registry makes it available here with no CLI changes.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"scalefree/internal/graph"
	"scalefree/internal/model"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "genstats:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		name   = flag.String("model", "mori", "registered model name (see graphgen -list)")
		params = flag.String("params", "", "comma-separated name=value model parameters (defaults otherwise)")
		seed   = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	m, err := model.New(*name, *params)
	if err != nil {
		return err
	}
	r := rng.New(*seed)
	g, err := m.Generate(r, nil)
	if err != nil {
		return err
	}

	fmt.Printf("model %s(%s): %d vertices, %d edges, %d self-loops\n",
		m.Name(), m.Params(), g.NumVertices(), g.NumEdges(), g.NumSelfLoops())
	_, comps := graph.Components(g)
	fmt.Printf("connected components: %d\n", comps)

	degs := g.Degrees()[1:]
	sum := stats.Summarize(stats.IntsToFloats(degs))
	fmt.Printf("degree: mean %.2f  median %.0f  max %d\n", sum.Mean, sum.Median, g.MaxDegree())
	fmt.Printf("max indegree: %d (n^%.3f)\n", g.MaxInDegree(),
		math.Log(float64(g.MaxInDegree()))/math.Log(float64(g.NumVertices())))

	if fit, err := stats.FitPowerLawAuto(degs, 50); err == nil {
		fmt.Printf("power-law tail fit: alpha %.3f ± %.3f (xmin %d, %d tail points, KS %.3f)\n",
			fit.Alpha, fit.StdErr, fit.Xmin, fit.NTail, fit.KS)
	} else {
		fmt.Printf("power-law tail fit unavailable: %v\n", err)
	}

	if comps == 1 {
		sources := make([]graph.Vertex, 8)
		for i := range sources {
			sources[i] = graph.Vertex(r.IntRange(1, g.NumVertices()))
		}
		mean := graph.AverageDistanceSampled(g, sources)
		diam := graph.DoubleSweepLowerBound(g, sources[0])
		fmt.Printf("mean distance %.2f (%.2f·ln n), diameter >= %d\n",
			mean, mean/math.Log(float64(g.NumVertices())), diam)
	} else {
		sub, _ := graph.LargestComponent(g)
		fmt.Printf("giant component: %d vertices (%.1f%%)\n",
			sub.NumVertices(), 100*float64(sub.NumVertices())/float64(g.NumVertices()))
	}

	ccdf := stats.HistogramOf(degs).CCDF()
	fmt.Println("degree CCDF (value: fraction >= value):")
	step := len(ccdf)/10 + 1
	for i := 0; i < len(ccdf); i += step {
		fmt.Printf("  %6d: %.5f\n", ccdf[i].X, ccdf[i].Frac)
	}
	return nil
}
