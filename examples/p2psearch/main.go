// P2psearch simulates an unstructured peer-to-peer lookup (the
// Gnutella-style scenario motivating Adamic et al. and Sarshar et al.):
// a power-law overlay network where a peer must locate a file hosted by
// an unknown peer, comparing
//
//   - flooding (Gnutella's protocol),
//   - a random walk,
//   - Adamic et al.'s high-degree routing, and
//   - Sarshar et al.'s percolation search with replication.
//
// Run with: go run ./examples/p2psearch
package main

import (
	"fmt"
	"log"
	"os"

	"scalefree/internal/configmodel"
	"scalefree/internal/core"
	"scalefree/internal/experiment"
	"scalefree/internal/graph"
	"scalefree/internal/percolation"
	"scalefree/internal/rng"
	"scalefree/internal/search"
)

func main() {
	const (
		n    = 16384
		k    = 2.3 // power-law exponent of the overlay
		seed = 99
		reps = 30
	)

	gen := func(r *rng.RNG, _ *core.Scratch) (*graph.Graph, error) {
		g, _, err := configmodel.Config{N: n, Exponent: k, MinDeg: 2}.GenerateGiant(r)
		return g, err
	}
	probe, err := gen(rng.New(seed), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("overlay: power-law k=%.1f giant component, %d peers, %d links\n\n",
		k, probe.NumVertices(), probe.NumEdges())

	table := &experiment.Table{
		Title:   "P2P lookup: cost to locate a random peer's file",
		Columns: []string{"strategy", "mean-msgs", "median", "hit-rate", "theory"},
		Notes: []string{
			"oracle-based strategies count knowledge requests; percolation counts protocol messages",
			fmt.Sprintf("%d lookups each, random querier and host", reps),
		},
	}

	for _, tc := range []struct {
		alg    search.Algorithm
		theory string
	}{
		{search.NewFlood(), "O(m) — Gnutella flooding"},
		{search.NewRandomWalkStrong(), fmt.Sprintf("O(n^%.2f) — Adamic walk", core.AdamicWalkExponent(k))},
		{search.NewDegreeGreedyStrong(), fmt.Sprintf("O(n^%.2f) — Adamic greedy", core.AdamicGreedyExponent(k))},
	} {
		m, err := core.MeasureSearch(gen, core.SearchSpec{
			Algorithm:    tc.alg,
			Reps:         reps,
			Seed:         seed,
			RandomStart:  true,
			RandomTarget: true,
			Budget:       40 * n,
		})
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(tc.alg.Name(), m.Requests.Mean, m.Requests.Median, m.FoundRate, tc.theory)
	}

	// Percolation search: the host replicates its index along a √n-walk;
	// the querier walks and percolates.
	r := rng.New(seed + 1)
	walk := 128
	hits, msgs := 0, 0
	var msgSamples []float64
	for i := 0; i < reps; i++ {
		host := graph.Vertex(r.IntRange(1, probe.NumVertices()))
		replicas := percolation.Replicate(probe, r, host, walk)
		querier := graph.Vertex(r.IntRange(1, probe.NumVertices()))
		res, err := percolation.Query(probe, r, replicas, querier, percolation.Config{
			QueryWalk:     walk / 2,
			BroadcastProb: 0.25,
		})
		if err != nil {
			log.Fatal(err)
		}
		if res.Hit {
			hits++
		}
		msgs += res.Messages
		msgSamples = append(msgSamples, float64(res.Messages))
	}
	median := msgSamples[len(msgSamples)/2]
	table.AddRow("percolation-search", float64(msgs)/float64(reps), median,
		float64(hits)/float64(reps), "sublinear w/ replication — Sarshar")

	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Reading: high-degree routing needs orders of magnitude fewer messages")
	fmt.Println("than flooding, and percolation search trades replication storage for")
	fmt.Println("query traffic — the two classic answers to unstructured P2P lookup.")
}
