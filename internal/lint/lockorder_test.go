package lint

import "testing"

func TestLockOrderFixture(t *testing.T) {
	RunFixture(t, "lockorder", LockOrder)
}
