package core

import (
	"math"
	"testing"

	"scalefree/internal/cooperfrieze"
	"scalefree/internal/mori"
	"scalefree/internal/search"
)

func TestMeasureSearchValidation(t *testing.T) {
	gen := MoriGen(mori.Config{N: 10, M: 1, P: 0.5})
	if _, err := MeasureSearch(gen, SearchSpec{Reps: 5}); err == nil {
		t.Error("nil algorithm accepted")
	}
	if _, err := MeasureSearch(gen, SearchSpec{Algorithm: search.NewFlood(), Reps: 0}); err == nil {
		t.Error("zero reps accepted")
	}
}

func TestMeasureSearchFloodOnMori(t *testing.T) {
	gen := MoriGen(mori.Config{N: 200, M: 1, P: 0.5})
	m, err := MeasureSearch(gen, SearchSpec{
		Algorithm: search.NewFlood(),
		Reps:      16,
		Seed:      42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FoundRate != 1 {
		t.Errorf("flood found rate %v on connected trees", m.FoundRate)
	}
	if m.Requests.N != 16 {
		t.Errorf("summary over %d runs, want 16", m.Requests.N)
	}
	// Flood resolves every edge at most once: at most n-1 requests.
	if m.Requests.Max > 199 {
		t.Errorf("flood max requests %v exceeds edge count", m.Requests.Max)
	}
	if m.Algorithm != "flood" || m.Knowledge != search.Weak {
		t.Errorf("metadata wrong: %+v", m)
	}
}

func TestMeasureSearchDeterminism(t *testing.T) {
	gen := MoriGen(mori.Config{N: 150, M: 2, P: 0.7})
	spec := SearchSpec{Algorithm: search.NewRandomWalk(), Reps: 8, Seed: 7, Budget: 10000}
	a, err := MeasureSearch(gen, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureSearch(gen, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Requests.Mean != b.Requests.Mean || a.FoundRate != b.FoundRate {
		t.Errorf("same seed gave different measurements: %+v vs %+v", a, b)
	}
}

func TestMeasureSearchBudgetCensoring(t *testing.T) {
	gen := MoriGen(mori.Config{N: 500, M: 1, P: 0.5})
	m, err := MeasureSearch(gen, SearchSpec{
		Algorithm: search.NewRandomWalk(),
		Reps:      8,
		Seed:      3,
		Budget:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Requests.Max > 5 {
		t.Errorf("censored max %v exceeds budget", m.Requests.Max)
	}
}

func TestMeasureSearchCooperFrieze(t *testing.T) {
	cfg := cooperfrieze.Config{N: 150, Alpha: 0.8, Beta: 0.5, Gamma: 0.5, Delta: 0.5, AllowLoops: true}
	m, err := MeasureSearch(CooperFriezeGen(cfg), SearchSpec{
		Algorithm: search.NewDegreeGreedyWeak(),
		Reps:      8,
		Seed:      11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.FoundRate != 1 {
		t.Errorf("found rate %v on connected CF graphs with unlimited budget", m.FoundRate)
	}
}

func TestMeasureScaling(t *testing.T) {
	sizes := []int{64, 128, 256}
	res, err := MeasureScaling(sizes,
		func(n int) GraphGen { return MoriGen(mori.Config{N: n, M: 1, P: 0.5}) },
		func(n int) (float64, error) { return Theorem1Bound(n, 0.5) },
		SearchSpec{Algorithm: search.NewFlood(), Reps: 12, Seed: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, pt := range res.Points {
		if pt.Bound <= 0 {
			t.Errorf("missing bound at n=%d", pt.N)
		}
		// Lemma 1: every algorithm's mean must sit above |V|P(E)/2.
		if pt.Measurement.Requests.Mean < pt.Bound {
			t.Errorf("n=%d: flood mean %.1f below theorem bound %.1f",
				pt.N, pt.Measurement.Requests.Mean, pt.Bound)
		}
	}
	if res.Fit.Exponent <= 0 {
		t.Errorf("flood cost should grow with n; exponent %v", res.Fit.Exponent)
	}
}

func TestMeasureScalingValidation(t *testing.T) {
	_, err := MeasureScaling([]int{10},
		func(n int) GraphGen { return MoriGen(mori.Config{N: n, M: 1, P: 0.5}) },
		nil,
		SearchSpec{Algorithm: search.NewFlood(), Reps: 2, Seed: 1},
	)
	if err == nil {
		t.Error("single-size sweep accepted")
	}
}

func TestTheorem1BoundValues(t *testing.T) {
	// The bound is |V|·P(E)/2 with P(E) in [e^{-(1-p)}, 1]: for p = 1
	// it equals exactly ⌊√(n-2)⌋/2.
	b, err := Theorem1Bound(10002, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-50) > 0.5 {
		t.Errorf("Theorem1Bound(10002, 1) = %v, want ≈50", b)
	}
	lo, err := Theorem1Bound(10002, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= b || lo < b*math.Exp(-0.75)-1 {
		t.Errorf("Theorem1Bound at p=0.25 = %v out of expected band (p=1 gives %v)", lo, b)
	}
	if _, err := Theorem1Bound(2, 0.5); err == nil {
		t.Error("n=2 accepted")
	}
}

func TestStrongModelExponent(t *testing.T) {
	cases := map[float64]float64{0.1: 0.4, 0.25: 0.25, 0.5: 0, 0.9: 0}
	for p, want := range cases {
		if got := StrongModelExponent(p); math.Abs(got-want) > 1e-12 {
			t.Errorf("StrongModelExponent(%v) = %v, want %v", p, got, want)
		}
	}
}

func TestTheorem2Bound(t *testing.T) {
	cfg := cooperfrieze.Config{N: 200, Alpha: 0.9, Beta: 0.5, Gamma: 0.5, Delta: 0.5, AllowLoops: true}
	b, err := Theorem2Bound(cfg, 200, 13)
	if err != nil {
		t.Fatal(err)
	}
	if b < 0 || b > float64(cfg.N) {
		t.Errorf("Theorem2Bound = %v out of range", b)
	}
}

func TestAdamicExponents(t *testing.T) {
	// At k = 2 both exponents vanish (searchable in O(1) scaling); at
	// k = 3 they are 2/3 and 1.
	if got := AdamicGreedyExponent(2); math.Abs(got) > 1e-12 {
		t.Errorf("greedy exponent at k=2: %v", got)
	}
	if got := AdamicWalkExponent(3); math.Abs(got-1) > 1e-12 {
		t.Errorf("walk exponent at k=3: %v", got)
	}
	k := 2.5
	if AdamicGreedyExponent(k) >= AdamicWalkExponent(k) {
		t.Error("greedy exponent should be smaller than walk exponent")
	}
}
