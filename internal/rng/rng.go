// Package rng provides a fast, deterministic pseudo-random number
// generator and the sampling distributions used across the simulator.
//
// All stochastic components of the repository take an explicit *RNG so
// that every graph, search run, and experiment replication is a pure
// function of its seed. Child seeds for independent replications are
// derived with DeriveSeed, which applies a splitmix64-style mix so that
// consecutive stream indices yield statistically independent streams.
//
// The core generator is xoshiro256++ (Blackman & Vigna), seeded through
// splitmix64 per the authors' recommendation. It is not safe for
// concurrent use; create one RNG per goroutine.
package rng

import "math/bits"

// RNG is a xoshiro256++ pseudo-random number generator.
//
// The zero value is not a valid generator; use New.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances *x and returns the next splitmix64 output.
// It is used for seeding and for deriving independent stream seeds.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed via splitmix64.
// Equal seeds yield identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed reinitializes the generator in place, exactly as New(seed)
// would, so long-lived scratch state can restart streams without
// allocating a generator per trial.
func (r *RNG) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro256++ requires a state that is not all zero; splitmix64
	// output over four consecutive steps is never all zero, but guard
	// anyway so the invariant is local and obvious.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

// DeriveSeed deterministically derives an independent child seed from a
// base seed and a stream index. It is the canonical way to fan a single
// experiment seed out to per-replication seeds.
func DeriveSeed(base, stream uint64) uint64 {
	x := base ^ (stream+1)*0xd1342543de82ef95
	out := splitmix64(&x)
	out ^= splitmix64(&x)
	return out
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Uint64n returns a uniform integer in [0, n). It panics if n == 0.
// It uses Lemire's nearly-divisionless bounded rejection method, so the
// result is exactly uniform.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// IntRange returns a uniform integer in [lo, hi]. It panics if lo > hi.
func (r *RNG) IntRange(lo, hi int) int {
	if lo > hi {
		panic("rng: IntRange with lo > hi")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *RNG) Bool() bool {
	return r.Uint64()&1 == 1
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using swap, which must
// exchange the elements at the two given indices.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
