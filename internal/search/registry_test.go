package search

import "testing"

func TestRegistryNamesUniqueAndModelsConsistent(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range WeakAlgorithms() {
		if seen[a.Name()] {
			t.Errorf("duplicate algorithm name %q", a.Name())
		}
		seen[a.Name()] = true
		if a.Knowledge() != Weak {
			t.Errorf("%s registered as weak but declares %v", a.Name(), a.Knowledge())
		}
	}
	for _, a := range StrongAlgorithms() {
		if seen[a.Name()] {
			t.Errorf("duplicate algorithm name %q", a.Name())
		}
		seen[a.Name()] = true
		if a.Knowledge() != Strong {
			t.Errorf("%s registered as strong but declares %v", a.Name(), a.Knowledge())
		}
	}
	if len(seen) != len(WeakAlgorithms())+len(StrongAlgorithms()) {
		t.Error("registry sizes inconsistent")
	}
}

func TestStepCap(t *testing.T) {
	if got := stepCap(100); got != 64*100+1024 {
		t.Errorf("stepCap(100) = %d", got)
	}
	if got := stepCap(0); got < 1<<30 {
		t.Errorf("unbounded stepCap too small: %d", got)
	}
}

func TestBudgetLeft(t *testing.T) {
	g := pathGraph(3)
	o, err := NewOracle(g, 1, 3, Weak)
	if err != nil {
		t.Fatal(err)
	}
	if !budgetLeft(o, 0) {
		t.Error("unlimited budget reported exhausted")
	}
	if !budgetLeft(o, 1) {
		t.Error("fresh oracle reported exhausted")
	}
	if _, _, err := o.RequestEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if budgetLeft(o, 1) {
		t.Error("spent budget reported available")
	}
}
