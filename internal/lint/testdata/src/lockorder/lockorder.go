// Package lockorder is the fixture for the lockorder analyzer: a
// declared a.mu -> b.mu order, an unordered third lock, call-graph and
// func-field propagation, and the //sf:locksequential discipline.
package lockorder

import "sync"

//sf:lockorder a.mu b.mu

type A struct {
	mu sync.Mutex //sf:mutex a.mu
}

type B struct {
	mu sync.Mutex //sf:mutex b.mu
}

type C struct {
	mu sync.Mutex //sf:mutex c.mu
}

type S struct {
	a  A
	b  B
	cb func()
}

// declaredOrder nests per the declaration: fine.
func declaredOrder(s *S) {
	s.a.mu.Lock()
	s.b.mu.Lock()
	s.b.mu.Unlock()
	s.a.mu.Unlock()
}

func inverted(s *S) {
	s.b.mu.Lock()
	s.a.mu.Lock() // want `a\.mu acquired while holding b\.mu, inverting the declared //sf:lockorder a\.mu b\.mu`
	s.a.mu.Unlock()
	s.b.mu.Unlock()
}

func selfDeadlock(s *S) {
	s.a.mu.Lock()
	s.a.mu.Lock() // want `a\.mu acquired while already held .*self-deadlock`
	s.a.mu.Unlock()
	s.a.mu.Unlock()
}

func unorderedPair(s *S, c *C) {
	s.a.mu.Lock()
	c.mu.Lock() // want `c\.mu acquired while holding a\.mu with no declared //sf:lockorder between them`
	c.mu.Unlock()
	s.a.mu.Unlock()
}

func lockA(s *S) {
	s.a.mu.Lock()
	s.a.mu.Unlock()
}

// invertedViaCall: the inversion happens inside the callee.
func invertedViaCall(s *S) {
	s.b.mu.Lock()
	lockA(s) // want `a\.mu acquired via call to lockA while holding b\.mu, inverting the declared`
	s.b.mu.Unlock()
}

// setCallback assigns a lock-taking closure to a func field; calling
// the field under b.mu is an inversion the analyzer must see through
// the indirection (the coordinator's onDrop shape).
func setCallback(s *S) {
	s.cb = func() {
		s.a.mu.Lock()
		s.a.mu.Unlock()
	}
}

func fireUnderB(s *S) {
	s.b.mu.Lock()
	s.cb() // want `a\.mu acquired via call to cb while holding b\.mu, inverting the declared`
	s.b.mu.Unlock()
}

// earlyExit: the unlock-and-return branch restores the held set for
// the fallthrough path, so the later b.mu acquisition is correctly
// seen as nested under a.mu (sanctioned by the declared order).
func earlyExit(s *S, bad bool) {
	s.a.mu.Lock()
	if bad {
		s.a.mu.Unlock()
		return
	}
	s.b.mu.Lock()
	s.b.mu.Unlock()
	s.a.mu.Unlock()
}

// deferredUnlock holds a.mu to function end; nesting b.mu under it is
// the declared order.
func deferredUnlock(s *S) {
	s.a.mu.Lock()
	defer s.a.mu.Unlock()
	s.b.mu.Lock()
	s.b.mu.Unlock()
}

// spawn: the goroutine's locks run concurrently, not nested.
func spawn(s *S) {
	s.b.mu.Lock()
	go func() {
		s.a.mu.Lock()
		s.a.mu.Unlock()
	}()
	s.b.mu.Unlock()
}

// sequentialOK takes its locks strictly one at a time.
//
//sf:locksequential
func sequentialOK(s *S) {
	s.a.mu.Lock()
	s.a.mu.Unlock()
	s.b.mu.Lock()
	s.b.mu.Unlock()
}

// sequentialBad nests even in the declared order — forbidden for a
// locksequential function.
//
//sf:locksequential
func sequentialBad(s *S) {
	s.a.mu.Lock()
	s.b.mu.Lock() // want `//sf:locksequential function acquires b\.mu while holding a\.mu`
	s.b.mu.Unlock()
	s.a.mu.Unlock()
}
