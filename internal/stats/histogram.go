package stats

import (
	"sort"
	"sync"
)

// Histogram counts occurrences of non-negative integer values (degrees).
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// HistogramOf builds a histogram from a sample in one call.
func HistogramOf(xs []int) *Histogram {
	h := NewHistogram()
	for _, x := range xs {
		h.Observe(x)
	}
	return h
}

// HistogramOfParallel builds the same histogram as HistogramOf by
// partitioning the sample into contiguous worker ranges, counting each
// range into a per-worker partial histogram, and merging the partials.
// Counts are additive, so the result is identical to the serial build
// for every worker count; memory stays O(workers × support), not O(n).
func HistogramOfParallel(xs []int, workers int) *Histogram {
	if workers <= 1 || len(xs) < 1<<14 {
		return HistogramOf(xs)
	}
	partial := make([]*Histogram, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(xs) * w / workers
		hi := len(xs) * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partial[w] = HistogramOf(xs[lo:hi])
		}(w, lo, hi)
	}
	wg.Wait()
	merged := partial[0]
	for _, p := range partial[1:] {
		merged.Merge(p)
	}
	return merged
}

// Merge adds every observation of other into h.
func (h *Histogram) Merge(other *Histogram) {
	for v, c := range other.counts {
		h.counts[v] += c
	}
	h.total += other.total
}

// Observe adds one occurrence of value x.
func (h *Histogram) Observe(x int) {
	h.counts[x]++
	h.total++
}

// Count returns the number of occurrences of x.
func (h *Histogram) Count(x int) int { return h.counts[x] }

// Total returns the number of observations.
func (h *Histogram) Total() int { return h.total }

// Support returns the observed values in increasing order.
func (h *Histogram) Support() []int {
	vals := make([]int, 0, len(h.counts))
	for v := range h.counts {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	return vals
}

// CCDFPoint is one point of a complementary cumulative distribution:
// the fraction of observations with value >= X.
type CCDFPoint struct {
	X    int
	Frac float64
}

// CCDF returns the complementary CDF at every observed value, in
// increasing order of value. An empty histogram yields nil.
func (h *Histogram) CCDF() []CCDFPoint {
	if h.total == 0 {
		return nil
	}
	support := h.Support()
	points := make([]CCDFPoint, len(support))
	remaining := h.total
	for i, v := range support {
		points[i] = CCDFPoint{X: v, Frac: float64(remaining) / float64(h.total)}
		remaining -= h.counts[v]
	}
	return points
}

// TailFraction returns the fraction of observations with value >= x.
func (h *Histogram) TailFraction(x int) float64 {
	if h.total == 0 {
		return 0
	}
	tail := 0
	for v, c := range h.counts {
		if v >= x {
			tail += c
		}
	}
	return float64(tail) / float64(h.total)
}
