package mori

import (
	"math"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

func TestGenerateTreeValidation(t *testing.T) {
	r := rng.New(1)
	cases := []struct {
		name string
		size int
		p    float64
	}{
		{"size 1", 1, 0.5},
		{"size 0", 0, 0.5},
		{"p negative", 10, -0.5},
		{"p above one", 10, 1.5},
		{"p NaN", 10, math.NaN()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := GenerateTree(r, tc.size, tc.p); err == nil {
				t.Fatalf("GenerateTree(%d, %v) succeeded, want error", tc.size, tc.p)
			}
		})
	}
}

func TestGenerateTreeDeterminism(t *testing.T) {
	a, err := GenerateTree(rng.New(99), 500, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateTree(rng.New(99), 500, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 500; k++ {
		if a.Fathers[k] != b.Fathers[k] {
			t.Fatalf("same seed diverged at vertex %d", k)
		}
	}
}

func TestTreeStructureInvariants(t *testing.T) {
	for _, p := range []float64{0.25, 0.5, 1.0} {
		tree, err := GenerateTree(rng.New(7), 1000, p)
		if err != nil {
			t.Fatal(err)
		}
		if tree.Size() != 1000 {
			t.Fatalf("Size = %d", tree.Size())
		}
		if tree.Father(2) != 1 {
			t.Errorf("p=%v: Father(2) = %d, want 1", p, tree.Father(2))
		}
		for k := graph.Vertex(3); k <= 1000; k++ {
			f := tree.Father(k)
			if f < 1 || f >= k {
				t.Fatalf("p=%v: Father(%d) = %d violates father < child", p, k, f)
			}
		}
	}
}

func TestTreeGraphIsConnectedTree(t *testing.T) {
	tree, err := GenerateTree(rng.New(13), 300, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	if g.NumVertices() != 300 || g.NumEdges() != 299 {
		t.Fatalf("graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if !graph.IsConnected(g) {
		t.Fatal("Móri tree graph is disconnected")
	}
	if g.NumSelfLoops() != 0 {
		t.Fatal("tree has self-loops")
	}
	// Edge k-2 is vertex k's outgoing edge.
	for k := graph.Vertex(2); k <= 300; k++ {
		from, to := g.Endpoints(graph.EdgeID(k - 2))
		if from != k || to != tree.Father(k) {
			t.Fatalf("edge %d = (%d, %d), want (%d, %d)", k-2, from, to, k, tree.Father(k))
		}
	}
}

func TestInDegreesMatchGraph(t *testing.T) {
	tree, err := GenerateTree(rng.New(17), 200, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	ds := tree.InDegrees()
	for v := graph.Vertex(1); v <= 200; v++ {
		if ds[v] != g.InDegree(v) {
			t.Fatalf("InDegrees[%d] = %d, graph says %d", v, ds[v], g.InDegree(v))
		}
	}
}

func TestPureUniformNeverUsed(t *testing.T) {
	// With p = 1 the uniform mass is zero, so attachment is purely
	// preferential: a vertex with indegree 0 can never receive an edge.
	// In a p=1 tree only vertex 1 has positive indegree at time 3, and
	// inductively every father must already have positive indegree.
	tree, err := GenerateTree(rng.New(23), 2000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	indeg := make([]int, 2001)
	indeg[1] = 1
	for k := 3; k <= 2000; k++ {
		u := tree.Fathers[k]
		if indeg[u] == 0 {
			t.Fatalf("p=1 attached vertex %d to indegree-0 vertex %d", k, u)
		}
		indeg[u]++
	}
}

func TestMergeValidation(t *testing.T) {
	tree, err := GenerateTree(rng.New(1), 10, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(tree, 0); err == nil {
		t.Error("merge factor 0 accepted")
	}
	if _, err := Merge(tree, 3); err == nil {
		t.Error("indivisible merge factor accepted")
	}
}

func TestMergeBlockMapping(t *testing.T) {
	// Size-6 tree merged with m=2: blocks {1,2}→1, {3,4}→2, {5,6}→3.
	tree := &Tree{P: 0.5, Fathers: []graph.Vertex{0, 0, 1, 2, 3, 1, 4}}
	g, err := Merge(tree, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 5 {
		t.Fatalf("merged: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	// Tree edges: 2→1, 3→2, 4→3, 5→1, 6→4 map to
	// 1→1 (loop), 2→1, 2→2 (loop), 3→1, 3→2.
	wantEdges := [][2]graph.Vertex{{1, 1}, {2, 1}, {2, 2}, {3, 1}, {3, 2}}
	for e, want := range wantEdges {
		u, v := g.Endpoints(graph.EdgeID(e))
		if u != want[0] || v != want[1] {
			t.Errorf("merged edge %d = (%d, %d), want (%d, %d)", e, u, v, want[0], want[1])
		}
	}
	if g.NumSelfLoops() != 2 {
		t.Errorf("self-loops = %d, want 2", g.NumSelfLoops())
	}
}

func TestConfigGenerate(t *testing.T) {
	g, err := Config{N: 128, M: 4, P: 0.5}.Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 128 {
		t.Fatalf("vertices = %d, want 128", g.NumVertices())
	}
	if g.NumEdges() != 128*4-1 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), 128*4-1)
	}
	if !graph.IsConnected(g) {
		t.Fatal("merged Móri graph disconnected")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []Config{
		{N: 1, M: 1, P: 0.5},
		{N: 10, M: 0, P: 0.5},
		{N: 10, M: 1, P: -0.1},
		{N: 10, M: 1, P: 1.1},
	}
	for _, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("Config %+v validated", c)
		}
	}
	if err := (Config{N: 10, M: 1, P: 1}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestEnumerateTreesCountAndValidity(t *testing.T) {
	// (size-1)!/1 assignments: size 5 → 2·3·4 = 24.
	count := 0
	err := EnumerateTrees(5, func(fathers []graph.Vertex) {
		count++
		if fathers[2] != 1 {
			t.Fatal("enumerated tree with fathers[2] != 1")
		}
		for k := 3; k <= 5; k++ {
			if fathers[k] < 1 || int(fathers[k]) >= k {
				t.Fatalf("enumerated invalid father %d for vertex %d", fathers[k], k)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 24 {
		t.Fatalf("enumerated %d trees, want 24", count)
	}
	if err := EnumerateTrees(1, func([]graph.Vertex) {}); err == nil {
		t.Error("size 1 enumeration accepted")
	}
}

func TestTreeProbSumsToOne(t *testing.T) {
	for _, p := range []float64{0.3, 0.7, 1.0} {
		for _, size := range []int{2, 3, 5, 7} {
			total := 0.0
			err := EnumerateTrees(size, func(fathers []graph.Vertex) {
				prob, err := TreeProb(fathers, p)
				if err != nil {
					t.Fatal(err)
				}
				total += prob
			})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(total-1) > 1e-9 {
				t.Errorf("size=%d p=%v: tree probabilities sum to %v", size, p, total)
			}
		}
	}
}

func TestTreeLogProbValidation(t *testing.T) {
	if _, err := TreeLogProb([]graph.Vertex{0, 0}, 0.5); err == nil {
		t.Error("short father array accepted")
	}
	if _, err := TreeLogProb([]graph.Vertex{0, 0, 2, 1}, 0.5); err == nil {
		t.Error("fathers[2] != 1 accepted")
	}
	if _, err := TreeLogProb([]graph.Vertex{0, 0, 1, 3}, 0.5); err == nil {
		t.Error("father >= child accepted")
	}
	if _, err := TreeLogProb([]graph.Vertex{0, 0, 1, 1}, -0.5); err == nil {
		t.Error("invalid p accepted")
	}
}

func TestGeneratorMatchesExactDistribution(t *testing.T) {
	// Chi-square test of empirical tree frequencies against the exact
	// enumeration probabilities for size 5, p = 0.5. This is the
	// end-to-end faithfulness test of the generator.
	const size = 5
	const p = 0.5
	const draws = 30000

	type key [size + 1]graph.Vertex
	exact := map[key]float64{}
	var order []key
	err := EnumerateTrees(size, func(fathers []graph.Vertex) {
		var k key
		copy(k[:], fathers)
		prob, err := TreeProb(fathers, p)
		if err != nil {
			t.Fatal(err)
		}
		exact[k] = prob
		order = append(order, k)
	})
	if err != nil {
		t.Fatal(err)
	}

	r := rng.New(2024)
	counts := map[key]int{}
	for i := 0; i < draws; i++ {
		tree, err := GenerateTree(r, size, p)
		if err != nil {
			t.Fatal(err)
		}
		var k key
		copy(k[:], tree.Fathers)
		counts[k]++
	}
	observed := make([]int, len(order))
	expected := make([]float64, len(order))
	for i, k := range order {
		observed[i] = counts[k]
		expected[i] = exact[k] * draws
	}
	res, err := stats.ChiSquareGoodnessOfFit(observed, expected, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 1e-4 {
		t.Fatalf("generator does not match exact tree distribution: chi²=%v df=%d p=%v",
			res.Statistic, res.DF, res.PValue)
	}
}

func TestPureUniformAttachmentExtension(t *testing.T) {
	// p = 0 is the random recursive tree: fathers are uniform over the
	// existing vertices, so the father of the last vertex is uniform on
	// [1, n-1]. Check frequencies of a few positions.
	const size = 6
	const draws = 30000
	r := rng.New(555)
	counts := make([]int, size)
	for i := 0; i < draws; i++ {
		tree, err := GenerateTree(r, size, 0)
		if err != nil {
			t.Fatal(err)
		}
		counts[tree.Father(size)]++
	}
	want := float64(draws) / float64(size-1)
	for u := 1; u < size; u++ {
		if math.Abs(float64(counts[u])-want) > 6*math.Sqrt(want) {
			t.Errorf("p=0: father %d chosen %d times, want ≈%.0f", u, counts[u], want)
		}
	}
	// TreeProb must agree: every size-4 tree has probability 1/(2·3)=1/6...
	// at p=0 each father choice is uniform, so P(T) = Π 1/(k-2+... ) = 1/2·1/3.
	total := 0.0
	err := EnumerateTrees(4, func(fathers []graph.Vertex) {
		prob, err := TreeProb(fathers, 0)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(prob-1.0/6) > 1e-12 {
			t.Errorf("p=0 tree prob = %v, want 1/6", prob)
		}
		total += prob
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("p=0 probabilities sum to %v", total)
	}
}

func TestMaxInDegreeGrowsWithP(t *testing.T) {
	// Móri's theorem: max degree ~ t^p. At minimum, higher p must give
	// a clearly larger hub at the same size.
	maxAt := func(p float64) int {
		tree, err := GenerateTree(rng.New(5), 20000, p)
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		for _, d := range tree.InDegrees() {
			if d > best {
				best = d
			}
		}
		return best
	}
	low, high := maxAt(0.25), maxAt(1.0)
	if high <= 2*low {
		t.Errorf("max indegree at p=1 (%d) not clearly larger than at p=0.25 (%d)", high, low)
	}
}

func BenchmarkGenerateTree(b *testing.B) {
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateTree(r, 1<<14, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConfigGenerateMerged(b *testing.B) {
	r := rng.New(1)
	cfg := Config{N: 1 << 12, M: 4, P: 0.5}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Generate(r); err != nil {
			b.Fatal(err)
		}
	}
}
