package stats

import (
	"fmt"
	"math"
	"sort"
)

// ChiSquareResult reports a chi-square goodness-of-fit test.
type ChiSquareResult struct {
	Statistic float64
	DF        int
	PValue    float64
}

// ChiSquareGoodnessOfFit tests observed integer counts against expected
// counts (same length, expected all positive). Degrees of freedom are
// len-1 unless the caller reduces them via fittedParams (number of
// model parameters estimated from the data).
func ChiSquareGoodnessOfFit(observed []int, expected []float64, fittedParams int) (ChiSquareResult, error) {
	if len(observed) != len(expected) {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square length mismatch %d != %d", len(observed), len(expected))
	}
	if len(observed) < 2 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square needs at least two cells")
	}
	stat := 0.0
	for i, o := range observed {
		e := expected[i]
		if e <= 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: chi-square expected count %d is %v; all must be positive", i, e)
		}
		d := float64(o) - e
		stat += d * d / e
	}
	df := len(observed) - 1 - fittedParams
	if df < 1 {
		return ChiSquareResult{}, fmt.Errorf("stats: chi-square degrees of freedom %d < 1", df)
	}
	return ChiSquareResult{
		Statistic: stat,
		DF:        df,
		PValue:    chiSquareSF(stat, df),
	}, nil
}

// ChiSquareTwoSample tests whether two histograms of counts over the
// same cells are draws from one distribution (Numerical Recipes
// construction: the statistic scales each sample by the square root of
// the totals ratio, so unequal totals are handled exactly). Cells
// where both counts are zero are skipped; at least two informative
// cells are required. Degrees of freedom are the informative cell
// count minus one when the totals are equal, the cell count otherwise.
func ChiSquareTwoSample(a, b []int) (ChiSquareResult, error) {
	if len(a) != len(b) {
		return ChiSquareResult{}, fmt.Errorf("stats: two-sample chi-square length mismatch %d != %d", len(a), len(b))
	}
	var totalA, totalB float64
	for i := range a {
		if a[i] < 0 || b[i] < 0 {
			return ChiSquareResult{}, fmt.Errorf("stats: two-sample chi-square cell %d has a negative count", i)
		}
		totalA += float64(a[i])
		totalB += float64(b[i])
	}
	if totalA == 0 || totalB == 0 {
		return ChiSquareResult{}, fmt.Errorf("stats: two-sample chi-square with an empty sample")
	}
	kA := math.Sqrt(totalB / totalA)
	kB := math.Sqrt(totalA / totalB)
	stat := 0.0
	cells := 0
	for i := range a {
		oa, ob := float64(a[i]), float64(b[i])
		if oa == 0 && ob == 0 {
			continue
		}
		cells++
		d := kA*oa - kB*ob
		stat += d * d / (oa + ob)
	}
	df := cells
	if totalA == totalB {
		df--
	}
	if df < 1 {
		return ChiSquareResult{}, fmt.Errorf("stats: two-sample chi-square degrees of freedom %d < 1", df)
	}
	return ChiSquareResult{Statistic: stat, DF: df, PValue: chiSquareSF(stat, df)}, nil
}

// chiSquareSF is the chi-square survival function P(X >= x) with df
// degrees of freedom, computed via the regularized upper incomplete
// gamma function Q(df/2, x/2).
func chiSquareSF(x float64, df int) float64 {
	if x <= 0 {
		return 1
	}
	return regularizedGammaQ(float64(df)/2, x/2)
}

// regularizedGammaQ computes Q(a, x) = Γ(a, x)/Γ(a) using the series
// expansion for x < a+1 and the continued fraction otherwise
// (Numerical Recipes construction, double precision).
func regularizedGammaQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - lowerGammaSeries(a, x)
	default:
		return upperGammaCF(a, x)
	}
}

func lowerGammaSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func upperGammaCF(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// KSResult reports a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	Statistic float64 // max CDF distance
	PValue    float64 // asymptotic two-sided p-value
}

// KSTwoSample computes the two-sample KS statistic and its asymptotic
// p-value. It returns an error when either sample is empty.
func KSTwoSample(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, fmt.Errorf("stats: KS test with empty sample (%d, %d)", len(a), len(b))
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	na, nb := len(as), len(bs)
	var i, j int
	maxDist := 0.0
	for i < na && j < nb {
		var x float64
		if as[i] <= bs[j] {
			x = as[i]
		} else {
			x = bs[j]
		}
		for i < na && as[i] <= x {
			i++
		}
		for j < nb && bs[j] <= x {
			j++
		}
		d := math.Abs(float64(i)/float64(na) - float64(j)/float64(nb))
		if d > maxDist {
			maxDist = d
		}
	}
	en := math.Sqrt(float64(na) * float64(nb) / float64(na+nb))
	return KSResult{Statistic: maxDist, PValue: ksPValue((en + 0.12 + 0.11/en) * maxDist)}, nil
}

// ksPValue evaluates the Kolmogorov distribution tail
// Q(λ) = 2 Σ_{k>=1} (-1)^{k-1} e^{-2k²λ²}.
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k)*float64(k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// Bootstrap is a bootstrap confidence interval for the mean.
type Bootstrap struct {
	Mean float64
	Lo   float64 // lower CI bound
	Hi   float64 // upper CI bound
}

// BootstrapMeanCI computes a percentile bootstrap confidence interval
// for the mean of xs at the given confidence level (e.g. 0.95), using
// resamples drawn with the provided uniform source. nextUint64 must
// return uniform random 64-bit values (an rng.RNG's Uint64 method fits;
// the indirection keeps this package dependency-free).
func BootstrapMeanCI(xs []float64, resamples int, level float64, nextUint64 func() uint64) (Bootstrap, error) {
	if len(xs) == 0 {
		return Bootstrap{}, fmt.Errorf("stats: bootstrap of empty sample")
	}
	if resamples < 10 {
		return Bootstrap{}, fmt.Errorf("stats: %d bootstrap resamples; need at least 10", resamples)
	}
	if level <= 0 || level >= 1 {
		return Bootstrap{}, fmt.Errorf("stats: bootstrap level %v out of (0, 1)", level)
	}
	n := len(xs)
	means := make([]float64, resamples)
	for r := 0; r < resamples; r++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += xs[nextUint64()%uint64(n)]
		}
		means[r] = s / float64(n)
	}
	alpha := (1 - level) / 2
	return Bootstrap{
		Mean: Mean(xs),
		Lo:   Quantile(means, alpha),
		Hi:   Quantile(means, 1-alpha),
	}, nil
}
