package mori

import (
	"testing"
	"testing/quick"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

func TestMergedGraphInvariantsProperty(t *testing.T) {
	// For any (n, m, p): the merged graph has n vertices, n·m−1 edges,
	// degree sum 2(n·m−1), stays connected, and block identities map
	// correctly.
	check := func(seed uint64, nRaw, mRaw uint8, pRaw uint16) bool {
		n := int(nRaw%40) + 2
		m := int(mRaw%4) + 1
		p := float64(pRaw%1001) / 1000
		cfg := Config{N: n, M: m, P: p}
		g, err := cfg.Generate(rng.New(seed))
		if err != nil {
			return false
		}
		if g.NumVertices() != n || g.NumEdges() != n*m-1 {
			return false
		}
		sum := 0
		for v := graph.Vertex(1); v <= graph.Vertex(n); v++ {
			sum += g.Degree(v)
		}
		return sum == 2*(n*m-1) && graph.IsConnected(g)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMergedIDConsistencyProperty(t *testing.T) {
	// Each merged edge must connect the blocks of its tree endpoints.
	tree, err := GenerateTree(rng.New(21), 120, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []int{2, 3, 4, 5, 6} {
		if 120%m != 0 {
			continue
		}
		g, err := Merge(tree, m)
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= 120; k++ {
			e := graph.EdgeID(k - 2)
			from, to := g.Endpoints(e)
			wantFrom := graph.Vertex((k + m - 1) / m)
			wantTo := graph.Vertex((int(tree.Father(graph.Vertex(k))) + m - 1) / m)
			if from != wantFrom || to != wantTo {
				t.Fatalf("m=%d edge %d: (%d,%d), want (%d,%d)", m, e, from, to, wantFrom, wantTo)
			}
		}
	}
}

func TestTreeProbMatchesGeneratorLikelihoodProperty(t *testing.T) {
	// Replay check: the log-probability of a generated tree must be
	// finite and negative (it is a product of probabilities < 1 for
	// size > 2), and exp of it must never exceed 1.
	check := func(seed uint64, sizeRaw uint8, pRaw uint16) bool {
		size := int(sizeRaw%30) + 3
		p := float64(pRaw%1001) / 1000
		tree, err := GenerateTree(rng.New(seed), size, p)
		if err != nil {
			return false
		}
		lp, err := TreeLogProb(tree.Fathers, p)
		if err != nil {
			return false
		}
		return lp <= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
