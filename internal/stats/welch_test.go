package stats

import (
	"math"
	"testing"

	"scalefree/internal/rng"
)

func TestWelchSameMean(t *testing.T) {
	r := rng.New(3)
	a := make([]float64, 500)
	b := make([]float64, 800)
	for i := range a {
		a[i] = 5 + r.Float64()
	}
	for i := range b {
		b[i] = 5 + 2*r.Float64() - 0.5 // same mean 5.5, different variance
	}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.001 {
		t.Errorf("equal means rejected: t=%v df=%v p=%v", res.T, res.DF, res.PValue)
	}
}

func TestWelchDetectsShift(t *testing.T) {
	r := rng.New(7)
	a := make([]float64, 300)
	b := make([]float64, 300)
	for i := range a {
		a[i] = r.Float64()
		b[i] = r.Float64() + 0.5
	}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 1e-10 {
		t.Errorf("0.5 shift not detected: p=%v", res.PValue)
	}
	if res.T >= 0 {
		t.Errorf("t statistic sign wrong: %v (a below b)", res.T)
	}
}

func TestWelchKnownValue(t *testing.T) {
	// Hand-computable case: a = {1,2,3,4} (mean 2.5, var 5/3),
	// b = {2,4,6} (mean 4, var 4). Then
	//   se² = 5/12 + 4/3 = 1.75,     t = -1.5/√1.75,
	//   df  = 1.75² / ((5/12)²/3 + (4/3)²/2) = 3.0625/0.94676 ≈ 3.2347.
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6}
	res, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	wantT := -1.5 / math.Sqrt(1.75)
	if math.Abs(res.T-wantT) > 1e-12 {
		t.Errorf("t = %v, want %v", res.T, wantT)
	}
	if math.Abs(res.DF-3.234740) > 1e-4 {
		t.Errorf("df = %v, want ≈3.2347", res.DF)
	}
	// For |t| ≈ 1.134 at df ≈ 3.23 the two-sided p sits near 0.34.
	if res.PValue < 0.30 || res.PValue > 0.38 {
		t.Errorf("p = %v, want ≈0.34", res.PValue)
	}
}

func TestWelchErrors(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("short sample accepted")
	}
	if _, err := WelchTTest([]float64{1, 1}, []float64{2, 2}); err == nil {
		t.Error("zero-variance unequal means accepted")
	}
	res, err := WelchTTest([]float64{3, 3}, []float64{3, 3})
	if err != nil || res.PValue != 1 {
		t.Errorf("identical constant samples: res=%+v err=%v", res, err)
	}
}

func TestStudentTwoSidedSanity(t *testing.T) {
	// t=0 → p=1; large t → p→0; classic quantile: P(|T|>2.086, df=20) ≈ 0.05.
	if got := studentTwoSided(0, 10); got != 1 {
		t.Errorf("p at t=0: %v", got)
	}
	if got := studentTwoSided(2.086, 20); math.Abs(got-0.05) > 0.002 {
		t.Errorf("p at t=2.086 df=20: %v, want ≈0.05", got)
	}
	if got := studentTwoSided(100, 5); got > 1e-6 {
		t.Errorf("p at t=100: %v", got)
	}
}

func TestRegularizedBetaEdges(t *testing.T) {
	if regularizedBeta(0, 2, 3) != 0 || regularizedBeta(1, 2, 3) != 1 {
		t.Error("beta edges wrong")
	}
	// I_{0.5}(1, 1) = 0.5 (uniform CDF).
	if got := regularizedBeta(0.5, 1, 1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("I_0.5(1,1) = %v", got)
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.1, 0.3, 0.7} {
		lhs := regularizedBeta(x, 2.5, 4)
		rhs := 1 - regularizedBeta(1-x, 4, 2.5)
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("beta symmetry broken at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
}
