package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serializes g in a line-oriented text format:
//
//	# scalefree edgelist v1
//	n <vertices> m <edges>
//	<from> <to>        (m lines, in edge order)
//
// The format preserves edge order, multi-edges, self-loops, and
// isolated vertices, so ReadEdgeList(WriteEdgeList(g)) reproduces g
// exactly.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# scalefree edgelist v1\nn %d m %d\n", g.NumVertices(), g.NumEdges()); err != nil {
		return fmt.Errorf("graph: writing header: %w", err)
	}
	// One reused line buffer instead of a string per endpoint keeps the
	// export allocation-flat at any edge count.
	line := make([]byte, 0, 32)
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.Endpoints(EdgeID(e))
		line = strconv.AppendInt(line[:0], int64(u), 10)
		line = append(line, ' ')
		line = strconv.AppendInt(line, int64(v), 10)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return fmt.Errorf("graph: writing edge %d: %w", e, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing edge list: %w", err)
	}
	return nil
}

// ReadEdgeList parses the format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)

	line, err := nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: reading magic line: %w", err)
	}
	if !strings.HasPrefix(line, "# scalefree edgelist") {
		return nil, fmt.Errorf("graph: bad magic line %q", line)
	}
	line, err = nextLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: reading size line: %w", err)
	}
	var n, m int
	if _, err := fmt.Sscanf(line, "n %d m %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad size line %q: %w", line, err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative sizes in %q", line)
	}
	b := NewBuilder(n, m)
	b.AddVertices(n)
	for e := 0; e < m; e++ {
		line, err = nextLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", e, err)
		}
		sep := strings.IndexByte(line, ' ')
		if sep < 0 {
			return nil, fmt.Errorf("graph: bad edge line %q", line)
		}
		u, err := strconv.Atoi(line[:sep])
		if err != nil {
			return nil, fmt.Errorf("graph: bad edge tail in %q: %w", line, err)
		}
		v, err := strconv.Atoi(line[sep+1:])
		if err != nil {
			return nil, fmt.Errorf("graph: bad edge head in %q: %w", line, err)
		}
		if u < 1 || u > n || v < 1 || v > n {
			return nil, fmt.Errorf("graph: edge %d endpoint out of range in %q", e, line)
		}
		b.AddEdge(Vertex(u), Vertex(v))
	}
	return b.Freeze(), nil
}

func nextLine(sc *bufio.Scanner) (string, error) {
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return "", err
		}
		return "", io.ErrUnexpectedEOF
	}
	return strings.TrimRight(sc.Text(), "\r"), nil
}

// Equal reports whether two graphs are identical: same vertex count and
// the same edge sequence (order-sensitive, as edge order is part of the
// evolving-model semantics).
func Equal(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for e := 0; e < a.NumEdges(); e++ {
		au, av := a.Endpoints(EdgeID(e))
		bu, bv := b.Endpoints(EdgeID(e))
		if au != bu || av != bv {
			return false
		}
	}
	return true
}
