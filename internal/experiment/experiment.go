// Package experiment is the harness that regenerates every quantitative
// claim of the paper (and of the related work it leans on) as a table:
// experiments E1–E13 of DESIGN.md, each with its workload generator,
// parameter sweep, baselines, and a renderer for the rows reported in
// EXPERIMENTS.md.
//
// # The Trial / Reduce contract
//
// Every experiment declares its workload as a Plan: a flat list of
// independent engine.Trials (each identifying a model, size,
// replication index, and derived seed), a pure Run function mapping one
// trial to its result, and a deterministic Reduce step that assembles
// the positional result slice into Tables. The engine executes the
// trials on a bounded worker pool (see internal/experiment/engine);
// because Run is a pure function of (Trial, RNG-from-Trial.Seed) and
// Reduce reads results by index, rendered output is bit-identical for
// every worker count, including -workers 1.
//
// # Adding a new experiment
//
// Write a PlanEn(cfg Config) (*Plan, error) constructor: create a
// planBuilder, append one trial per unit of independent work with
// builder.add (deriving each trial's seed from cfg.seed so experiments
// stay independent), capture the returned indices, and finish with
// builder.build(reduce) where reduce formats the tables from
// results-by-index. Scaling sweeps over (sizes × replications) should
// go through addScalingCell, which reproduces core.MeasureScaling's
// seed derivation trial by trial. Then register the constructor in
// Registry with the next ID. Rules: never touch shared mutable state
// inside a trial (shared read-only state built at plan time is fine),
// and never let the reduce's output depend on anything but the result
// values and plan order.
package experiment

import (
	"context"
	"fmt"
	"sort"

	"scalefree/internal/core"
	"scalefree/internal/engine"
	"scalefree/internal/rng"
)

// Config controls the execution scale of an experiment run.
type Config struct {
	// Seed derives all experiment randomness.
	Seed uint64
	// Scale multiplies workload sizes and replication counts. 1.0 runs
	// the full EXPERIMENTS.md workload; tests and benches use smaller
	// values. Values <= 0 default to 1.
	Scale float64
}

// scaleInt scales n, keeping at least min.
func (c Config) scaleInt(n, min int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n) * s)
	if v < min {
		return min
	}
	return v
}

// sizes returns a geometric size sweep {base, base·2, ...} of count
// points, scaled.
func (c Config) sizes(base, count int) []int {
	out := make([]int, count)
	n := c.scaleInt(base, 64)
	for i := range out {
		out[i] = n
		n *= 2
	}
	return out
}

// seed derives a named sub-seed so experiments stay independent.
func (c Config) seed(stream uint64) uint64 {
	return rng.DeriveSeed(c.Seed, stream)
}

// canonical renders the Config for plan fingerprinting. Trial keys and
// seeds alone do not pin the workload — plans capture Config-derived
// tunables (Monte-Carlo replication counts, query budgets) inside
// their closures — so the full canonical Config participates in every
// fingerprint, and artifacts from different seeds or scales can never
// be confused.
func (c Config) canonical() string {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	return fmt.Sprintf("seed=%d/scale=%g", c.Seed, s)
}

// Plan is the trial decomposition of one experiment at one Config:
// what to run (Trials + Run) and how to assemble the output (Reduce).
type Plan struct {
	// Trials lists the independent units of work, in plan order.
	Trials []engine.Trial
	// Run executes one trial. It must be a pure function of (t, r) —
	// and safe for concurrent invocation across trials. The scratch is
	// the executing worker's reusable buffer set (per-worker state from
	// engine.RunScratch, nil when executing scratch-free); it must
	// never affect the result value.
	Run func(ctx context.Context, t engine.Trial, r *rng.RNG, s *core.Scratch) (any, error)
	// Reduce assembles the positional trial results into tables. It
	// must be deterministic and order-independent: results[i] is the
	// output of Trials[i] regardless of completion order.
	Reduce func(results []any) ([]Table, error)
}

// planBuilder accumulates trials and their closures in lockstep, so
// experiment constructors can register work and remember where each
// result will land.
type planBuilder struct {
	trials []engine.Trial
	runs   []func(ctx context.Context, r *rng.RNG, s *core.Scratch) (any, error)
}

func newPlanBuilder() *planBuilder { return &planBuilder{} }

// add registers one scratch-oblivious trial and returns its index into
// the result slice.
func (b *planBuilder) add(key string, seed uint64, run func(ctx context.Context, r *rng.RNG) (any, error)) int {
	return b.addScratch(key, seed,
		func(ctx context.Context, r *rng.RNG, _ *core.Scratch) (any, error) {
			return run(ctx, r)
		})
}

// addScratch registers one trial that reuses the worker's scratch
// buffers and returns its index into the result slice.
func (b *planBuilder) addScratch(key string, seed uint64, run func(ctx context.Context, r *rng.RNG, s *core.Scratch) (any, error)) int {
	idx := len(b.trials)
	b.trials = append(b.trials, engine.Trial{Index: idx, Key: key, Seed: seed})
	b.runs = append(b.runs, run)
	return idx
}

// build finalizes the plan with the given reduce step.
func (b *planBuilder) build(reduce func(results []any) ([]Table, error)) *Plan {
	return &Plan{
		Trials: b.trials,
		Run: func(ctx context.Context, t engine.Trial, r *rng.RNG, s *core.Scratch) (any, error) {
			return b.runs[t.Index](ctx, r, s)
		},
		Reduce: reduce,
	}
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	ID    string
	Title string
	// Plan declares the experiment's workload at a given Config.
	Plan func(cfg Config) (*Plan, error)
}

// Run regenerates the experiment's tables on a single worker — the
// serial reference execution. Parallel runs (RunContext) produce
// bit-identical tables under the same Config.
func (e Experiment) Run(cfg Config) ([]Table, error) {
	return e.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
}

// RunContext plans the experiment, executes its trials on the engine
// with the given options (one reusable core.Scratch per worker), and
// reduces the results into tables. It is RunCached without a cache;
// see dispatch.go for the sharded and cached execution paths that
// produce byte-identical tables.
func (e Experiment) RunContext(ctx context.Context, cfg Config, opts engine.Options) ([]Table, error) {
	tables, _, err := e.RunCached(ctx, cfg, opts, nil)
	return tables, err
}

// Registry returns all experiments in ID order.
func Registry() []Experiment {
	exps := []Experiment{
		{ID: "E1", Title: "Theorem 1 (weak model): Ω(√n) search cost in Móri graphs", Plan: PlanE1},
		{ID: "E2", Title: "Theorem 1 (strong model): Ω(n^(1/2-p)) for p < 1/2", Plan: PlanE2},
		{ID: "E3", Title: "Theorem 2: Ω(√n) search cost in Cooper–Frieze graphs (weak model)", Plan: PlanE3},
		{ID: "E4", Title: "Lemmas 2-3: equivalence event probability, exact vs MC vs e^{-(1-p)}", Plan: PlanE4},
		{ID: "E5", Title: "Móri max degree ~ n^p (vs Barabási–Albert n^(1/2))", Plan: PlanE5},
		{ID: "E6", Title: "Degree distributions: power-law exponents per model", Plan: PlanE6},
		{ID: "E7", Title: "Logarithmic distances: mean distance and diameter vs log n", Plan: PlanE7},
		{ID: "E8", Title: "Adamic et al.: high-degree search vs random walk on power-law graphs", Plan: PlanE8},
		{ID: "E9", Title: "Kleinberg navigability: greedy routing r-sweep vs Móri id-greedy", Plan: PlanE9},
		{ID: "E10", Title: "Sarshar et al.: percolation search replication/broadcast sweep", Plan: PlanE10},
		{ID: "E11", Title: "Extension: non-searchability of uniform attachment (p = 0)", Plan: PlanE11},
		{ID: "E12", Title: "Extension: non-searchability of the Bianconi–Barabási fitness model", Plan: PlanE12},
		{ID: "E13", Title: "Extension: non-searchability of geometric preferential attachment", Plan: PlanE13},
	}
	sort.Slice(exps, func(i, j int) bool {
		// Numeric ID ordering: E2 before E10.
		return idNum(exps[i].ID) < idNum(exps[j].ID)
	})
	return exps
}

func idNum(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
