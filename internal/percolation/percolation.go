// Package percolation implements the percolation search protocol of
// Sarshar, Boykin and Roychowdhury (P2P'04), the related-work P2P
// lookup scheme the paper cites: contents are replicated along short
// random walks, and queries combine a random walk with probabilistic
// ("bond percolation") broadcast from every walk vertex. On power-law
// networks with exponent 2 < k < 3, a replication level polynomial in n
// yields sublinear lookup traffic with high hit rates (experiment E10).
package percolation

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

// Config tunes the protocol.
type Config struct {
	// ReplicationWalk is the length of the random walk along which a
	// content is cached (every visited vertex keeps a replica).
	ReplicationWalk int
	// QueryWalk is the length of the query's random walk.
	QueryWalk int
	// BroadcastProb is the bond-percolation probability: each edge
	// independently forwards the query with this probability.
	BroadcastProb float64
	// MaxMessages caps the total message count of one query
	// (0 = unlimited).
	MaxMessages int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.ReplicationWalk < 0 {
		return fmt.Errorf("percolation: ReplicationWalk = %d < 0", c.ReplicationWalk)
	}
	if c.QueryWalk < 0 {
		return fmt.Errorf("percolation: QueryWalk = %d < 0", c.QueryWalk)
	}
	if c.BroadcastProb < 0 || c.BroadcastProb > 1 {
		return fmt.Errorf("percolation: BroadcastProb = %v out of [0, 1]", c.BroadcastProb)
	}
	return nil
}

// Replicate caches a content along a random walk from origin and
// returns the replica set (origin always included).
func Replicate(g *graph.Graph, r *rng.RNG, origin graph.Vertex, walkLen int) map[graph.Vertex]bool {
	replicas := map[graph.Vertex]bool{origin: true}
	cur := origin
	for i := 0; i < walkLen; i++ {
		deg := g.Degree(cur)
		if deg == 0 {
			break
		}
		cur = g.HalfAt(cur, r.Intn(deg)).Other
		replicas[cur] = true
	}
	return replicas
}

// Result reports one percolation query.
type Result struct {
	Hit      bool
	Messages int // walk steps plus percolated edge traversals
	Reached  int // distinct vertices that saw the query
}

// Query runs one lookup from start against the given replica set: a
// random walk of QueryWalk steps, with a percolated broadcast started
// at every walk vertex. Each edge of the graph independently forwards
// the broadcast with probability BroadcastProb (the bond decision is
// sampled once per edge and reused, which is what makes the scheme a
// percolation rather than a branching process).
func Query(g *graph.Graph, r *rng.RNG, replicas map[graph.Vertex]bool, start graph.Vertex, cfg Config) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if start < 1 || int(start) > g.NumVertices() {
		return Result{}, fmt.Errorf("percolation: start vertex %d out of range", start)
	}

	res := Result{}
	seen := map[graph.Vertex]bool{}
	bond := map[graph.EdgeID]bool{} // lazily sampled open/closed state
	queue := make([]graph.Vertex, 0, 64)

	capped := func() bool {
		return cfg.MaxMessages > 0 && res.Messages >= cfg.MaxMessages
	}
	visit := func(v graph.Vertex) {
		if !seen[v] {
			seen[v] = true
			res.Reached++
			if replicas[v] {
				res.Hit = true
			}
		}
	}

	// Walk phase: each step is one message; every walk vertex seeds the
	// broadcast queue.
	cur := start
	visit(cur)
	queue = append(queue, cur)
	for i := 0; i < cfg.QueryWalk && !capped(); i++ {
		deg := g.Degree(cur)
		if deg == 0 {
			break
		}
		cur = g.HalfAt(cur, r.Intn(deg)).Other
		res.Messages++
		visit(cur)
		queue = append(queue, cur)
	}

	// Percolated broadcast from every seed: traverse each open edge
	// once.
	traversed := map[graph.EdgeID]bool{}
	for head := 0; head < len(queue) && !capped(); head++ {
		u := queue[head]
		for _, h := range g.Incident(u) {
			if capped() {
				break
			}
			if traversed[h.Edge] {
				continue
			}
			open, decided := bond[h.Edge]
			if !decided {
				open = r.Bernoulli(cfg.BroadcastProb)
				bond[h.Edge] = open
			}
			if !open {
				continue
			}
			traversed[h.Edge] = true
			res.Messages++
			if !seen[h.Other] {
				visit(h.Other)
				queue = append(queue, h.Other)
			}
		}
	}
	return res, nil
}
