// Package fitness implements the Bianconi–Barabási vertex-fitness
// model of growing scale-free graphs, the first of the two workloads
// the paper's closing remark invites ("the technique we used seems
// broad enough to be adapted to other models of growing random
// graphs") — experiment E12 runs the weak/strong search battery on it.
//
// Each vertex v draws a fitness η_v on arrival, uniform on [Eta0, 1];
// every later vertex t attaches M edges to existing vertices chosen
// with probability proportional to
//
//	η_u · d_t(u),
//
// where d_t(u) is the total degree of u. Fitness breaks the pure
// age/degree correlation of Barabási–Albert: a young, fit vertex can
// overtake old incumbents ("fit-get-richer"), and with uniform fitness
// the degree distribution keeps a power-law tail (exponent ≈ 2.25 with
// logarithmic corrections for Eta0 → 0; Eta0 = 1 degenerates to pure
// BA with exponent 3).
//
// The sampler stays on the O(1) endpoint array by rejection: a uniform
// draw from the array of all recorded edge endpoints is a draw
// proportional to degree, and accepting it with probability η_u makes
// the joint draw exactly proportional to η_u·d(u). Fitness is bounded
// below by Eta0 > 0, so each attempt accepts with probability at least
// Eta0 and generation costs O(n·M/Eta0) expected time with O(1)
// allocations (amortized zero with a Scratch). GenerateRef keeps an
// O(n) per-draw exact-inversion sampler as the reference
// implementation the rejection path is validated against (chi-square
// equivalence in the tests); the two consume RNG streams differently,
// so equal seeds yield different (identically distributed) graphs.
package fitness

import (
	"fmt"
	"math"

	"scalefree/internal/buf"
	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/weights"
)

// MinEta0 is the practical floor on Config.Eta0: the rejection
// sampler's expected attempts per edge are ~1/Eta0, so values below
// this would turn generation into an effectively unbounded busy-loop
// (the floor still allows 100 expected attempts per edge).
const MinEta0 = 0.01

// Config describes a Bianconi–Barabási fitness graph.
type Config struct {
	N    int     // number of vertices, >= 2
	M    int     // edges added per new vertex, >= 1
	Eta0 float64 // minimum fitness, in [MinEta0, 1]; fitness ~ U[Eta0, 1]
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("fitness: N = %d < 2", c.N)
	}
	if c.M < 1 {
		return fmt.Errorf("fitness: M = %d < 1", c.M)
	}
	if math.IsNaN(c.Eta0) || c.Eta0 <= 0 || c.Eta0 > 1 {
		return fmt.Errorf("fitness: Eta0 = %v out of (0, 1]", c.Eta0)
	}
	if c.Eta0 < MinEta0 {
		return fmt.Errorf("fitness: Eta0 = %v below the practical floor %v (expected rejection attempts per edge are ~1/Eta0)", c.Eta0, MinEta0)
	}
	return nil
}

// String implements fmt.Stringer for bench and log labels.
func (c Config) String() string {
	return fmt.Sprintf("fitness(n=%d,m=%d,eta0=%g)", c.N, c.M, c.Eta0)
}

// numEdges is the exact final edge count: the seed loop plus M edges
// per later vertex.
func (c Config) numEdges() int { return 1 + c.M*(c.N-1) }

// drawFitness samples one arrival fitness, uniform on [Eta0, 1].
func (c Config) drawFitness(r *rng.RNG) float64 {
	return c.Eta0 + (1-c.Eta0)*r.Float64()
}

// Scratch holds the reusable buffers of one generation worker: the
// edge-list builder, its CSR snapshot, the endpoint array, and the
// per-vertex fitness table. The zero value is ready to use; after a
// warm-up generation, repeated same-size GenerateScratch calls
// allocate nothing.
type Scratch struct {
	builder graph.Builder
	g       graph.Graph
	ends    weights.EndpointArray
	eta     []float64
}

// Generate draws a fitness graph: vertex 1 carries a seed self-loop
// (positive initial degree mass, as in the BA generator), and every
// later vertex t attaches M edges to existing vertices chosen
// proportionally to η·degree (multi-edges allowed). The result is
// connected with 1 + M·(N-1) edges, standalone — it pins none of the
// generation buffers.
func (c Config) Generate(r *rng.RNG) (*graph.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(c.N, c.numEdges())
	c.generate(r, b, weights.NewEndpointArray(2*c.numEdges()), make([]float64, c.N+1))
	return b.Freeze(), nil
}

// GenerateScratch is Generate drawing the identical distribution (and,
// for equal seeds, the identical graph) through s's reusable buffers.
// The returned graph aliases s and is valid until the next call with
// the same scratch; callers that outlive the scratch must use
// Generate.
func (c Config) GenerateScratch(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
	if s == nil {
		return c.Generate(r)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s.builder.Reset(c.N, c.numEdges())
	s.ends.Reset(2 * c.numEdges())
	s.eta = buf.Grow(s.eta, c.N+1)
	c.generate(r, &s.builder, &s.ends, s.eta)
	return s.builder.FreezeInto(&s.g), nil
}

// generate runs the attachment process into a freshly reset builder,
// endpoint array, and fitness table (length N+1).
func (c Config) generate(r *rng.RNG, b *graph.Builder, ends *weights.EndpointArray, eta []float64) {
	b.AddVertex()
	eta[1] = c.drawFitness(r)
	b.AddEdge(1, 1)
	ends.Record(1)
	ends.Record(1)

	for t := 2; t <= c.N; t++ {
		v := b.AddVertex()
		eta[v] = c.drawFitness(r)
		for i := 0; i < c.M; i++ {
			// Rejection: a degree-proportional endpoint draw accepted
			// with probability η makes the joint draw ∝ η·degree. The
			// array holds only vertices older than v, and η >= Eta0 > 0
			// bounds the expected attempts by 1/Eta0.
			var w graph.Vertex
			for {
				w = graph.Vertex(ends.Sample(r))
				if r.Bernoulli(eta[w]) {
					break
				}
			}
			b.AddEdge(v, w)
		}
		// Record after all M draws so one vertex's edges are
		// exchangeable, exactly as in the BA generator.
		for i := 0; i < c.M; i++ {
			e := graph.EdgeID(b.NumEdges() - c.M + i)
			from, to := b.Endpoints(e)
			ends.Record(int32(from))
			ends.Record(int32(to))
		}
	}
}

// GenerateRef is the reference generator: the same process drawing
// every attachment target by exact inversion over the weights η_u·d(u)
// with an O(n) linear scan per draw. It samples exactly the same
// distribution as Generate and is kept for the sampler ablation and
// the chi-square equivalence test; the two consume RNG streams
// differently, so equal seeds yield different (identically
// distributed) graphs.
func (c Config) GenerateRef(r *rng.RNG) (*graph.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(c.N, c.numEdges())
	eta := make([]float64, c.N+1)
	deg := make([]int, c.N+1)

	b.AddVertex()
	eta[1] = c.drawFitness(r)
	b.AddEdge(1, 1)
	deg[1] = 2
	total := 2 * eta[1] // running Σ η_u·d(u)

	for t := 2; t <= c.N; t++ {
		v := b.AddVertex()
		eta[v] = c.drawFitness(r)
		base := b.NumEdges()
		for i := 0; i < c.M; i++ {
			x := r.Float64() * total
			w := graph.Vertex(1)
			for u := 1; u < t; u++ {
				x -= eta[u] * float64(deg[u])
				if x < 0 {
					w = graph.Vertex(u)
					break
				}
				// Accumulated rounding can push x past every weight;
				// the last positive-degree vertex absorbs it.
				if deg[u] > 0 {
					w = graph.Vertex(u)
				}
			}
			b.AddEdge(v, w)
		}
		for i := 0; i < c.M; i++ {
			from, to := b.Endpoints(graph.EdgeID(base + i))
			deg[from]++
			deg[to]++
			total += eta[from] + eta[to]
		}
	}
	return b.Freeze(), nil
}
