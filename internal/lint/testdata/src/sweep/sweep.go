// Package sweep stubs the real codec registry for the codecreg
// fixture: the analyzer matches RegisterResult by package name and
// function name, so this stand-in exercises the same paths.
package sweep

func RegisterResult[T any](name string) bool { return true }
