// Package buf holds the slice-reuse helpers shared by every scratch
// path in the repository: resizing a slice while reusing its backing
// array whenever the capacity suffices, so steady-state reuse of
// same-size buffers allocates nothing.
package buf

// Grow returns s resized to length n, reusing the backing array when
// the capacity suffices. Contents are unspecified — callers must
// overwrite every entry.
func Grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// GrowClear is Grow with every entry zeroed.
func GrowClear[T any](s []T, n int) []T {
	if cap(s) >= n {
		s = s[:n]
		clear(s)
		return s
	}
	return make([]T, n)
}
