// Package staleignore carries an //sflint:ignore that suppresses
// nothing; the run must fail with a stale-ignore error.
package staleignore

//sflint:ignore determinism nothing here needs suppressing
func clean() int { return 1 }
