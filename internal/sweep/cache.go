package sweep

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"scalefree/internal/engine"
)

// cacheMagic heads every cache entry file, followed by the uvarint
// codec version and the EncodeResult payload.
const cacheMagic = "SFCACHE1"

// Cache is a content-addressed store of encoded trial results. Entries
// live at <dir>/<key[:2]>/<key> (two-level fan-out keeps directories
// small on full-scale sweeps); writes are atomic rename-into-place, so
// a cache shared by concurrent shard processes on one filesystem is
// safe — the worst race is both computing the same pure result and one
// rename winning.
//
// The cache is an optimization layer with a strict correctness rule:
// Get must only ever return a value that Put stored under the same
// content address. Unreadable or corrupt entries are treated as
// misses, never as errors — the trial simply re-executes and
// overwrites the entry.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a result cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("sweep: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key)
}

// Get looks a trial result up by content address. ok reports a hit;
// missing, truncated, version-skewed, or undecodable entries are
// misses.
func (c *Cache) Get(key string) (v any, ok bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	payload, err := checkEntryHeader(data)
	if err != nil {
		return nil, false
	}
	v, err = DecodeResult(payload)
	if err != nil {
		return nil, false
	}
	return v, true
}

// Put stores an encoded trial result under key, atomically. Errors are
// real (disk full, permissions): persistence was requested and did not
// happen, so callers must surface them rather than silently running an
// unresumable sweep.
func (c *Cache) Put(key string, v any) error {
	payload, err := EncodeResult(v)
	if err != nil {
		return err
	}
	data := append(entryHeader(), payload...)
	dst := c.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	return atomicWriteFile(dst, data)
}

// Len counts the entries currently in the cache (test and stats
// support; it walks the directory).
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			n++
		}
		return nil
	})
	return n, err
}

func entryHeader() []byte {
	return binary.AppendUvarint([]byte(cacheMagic), CodecVersion)
}

func checkEntryHeader(data []byte) (payload []byte, err error) {
	if len(data) < len(cacheMagic) || string(data[:len(cacheMagic)]) != cacheMagic {
		return nil, errors.New("sweep: not a cache entry")
	}
	d := &decoder{buf: data, pos: len(cacheMagic)}
	ver := d.uvarint()
	if d.err != nil {
		return nil, d.err
	}
	if ver != CodecVersion {
		return nil, fmt.Errorf("sweep: cache entry codec version %d, want %d", ver, CodecVersion)
	}
	return data[d.pos:], nil
}

// lookupTrial consults an optional cache for one trial; a nil cache
// always misses.
func lookupTrial(c *Cache, expID, fingerprint string, t engine.Trial) (any, bool) {
	if c == nil {
		return nil, false
	}
	return c.Get(CacheKey(expID, fingerprint, t))
}

// storeTrial persists one trial result to an optional cache; a nil
// cache stores nothing.
func storeTrial(c *Cache, expID, fingerprint string, t engine.Trial, v any) error {
	if c == nil {
		return nil
	}
	return c.Put(CacheKey(expID, fingerprint, t), v)
}

// atomicWriteFile writes data to path via a sibling temp file and
// rename, so readers never observe a partial file and concurrent
// writers of identical content race harmlessly. The temp name is
// dot-prefixed so a crashed writer's leftovers can never match the
// "<expID>.shard-*" glob a merge run sweeps up.
func atomicWriteFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-"+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("sweep: atomic write: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("sweep: atomic write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("sweep: atomic write: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("sweep: atomic write: %w", err)
	}
	return nil
}
