package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The annotation vocabulary (DESIGN.md §10):
//
//	//sf:wallclock        package- or function-level: this code is on
//	                      the nondeterministic side of the boundary.
//	//sf:hotpath          function-level: allocation-free hot loop.
//	//sf:mutex NAME       struct-field-level: names a sync.Mutex (or
//	                      RWMutex) field for the lockorder analyzer.
//	//sf:lockorder A B    package-level: A may be held when acquiring
//	                      B; the reverse nesting is an inversion.
//	//sf:locksequential   function-level: never holds two annotated
//	                      locks at once, in any order.
//	//sflint:ignore A R   suppresses analyzer A's diagnostics on this
//	                      or the next line, for reason R (mandatory).

// Notes is the parsed //sf: annotation set of one package.
type Notes struct {
	// PkgWallclock marks the whole package nondeterministic-side.
	PkgWallclock bool
	// WallclockFuncs holds //sf:wallclock-annotated declarations.
	WallclockFuncs map[*ast.FuncDecl]bool
	// HotpathFuncs holds //sf:hotpath-annotated declarations.
	HotpathFuncs map[*ast.FuncDecl]bool
	// SequentialFuncs holds //sf:locksequential declarations.
	SequentialFuncs map[*ast.FuncDecl]bool
	// Mutexes maps an annotated mutex field's object to its declared
	// lock name.
	Mutexes map[types.Object]string
	// LockOrder lists declared acquisition orders as [before, after]
	// pairs: holding pair[0] while acquiring pair[1] is sanctioned.
	LockOrder [][2]string
	// Ignores holds the package's //sflint:ignore directives.
	Ignores []*Ignore
}

// Ignore is one //sflint:ignore directive.
type Ignore struct {
	Position token.Position
	Analyzer string
	Reason   string
	// Used is set by ApplyIgnores when the directive suppresses at
	// least one diagnostic; a directive that stays unused is stale and
	// fails the run.
	Used bool
}

// annotation prefixes. A directive must occupy its own // comment
// line; anything after the keyword (and its arguments) is free text.
const (
	annWallclock  = "//sf:wallclock"
	annHotpath    = "//sf:hotpath"
	annMutex      = "//sf:mutex"
	annLockOrder  = "//sf:lockorder"
	annSequential = "//sf:locksequential"
	annIgnore     = "//sflint:ignore"
)

// parseNotes extracts the package's annotations. Malformed directives
// (a mutex without a name, a lock order without two names, an ignore
// without analyzer and reason) are errors — a directive that silently
// parses as a plain comment would disable the very check it names.
func parseNotes(pkg *Package) (*Notes, error) {
	n := &Notes{
		WallclockFuncs:  map[*ast.FuncDecl]bool{},
		HotpathFuncs:    map[*ast.FuncDecl]bool{},
		SequentialFuncs: map[*ast.FuncDecl]bool{},
		Mutexes:         map[types.Object]string{},
	}
	for _, f := range pkg.Files {
		// Package-level //sf:wallclock: any comment group that ends
		// before the package clause (the doc comment or a standalone
		// group above it).
		for _, cg := range f.Comments {
			if cg.End() >= f.Package {
				break
			}
			if hasDirective(cg, annWallclock) {
				n.PkgWallclock = true
			}
		}
		// Free-standing directives anywhere in the file.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				switch {
				case strings.HasPrefix(text, annLockOrder):
					fields := strings.Fields(strings.TrimPrefix(text, annLockOrder))
					if len(fields) != 2 {
						return nil, annErr(pkg, c.Pos(), "//sf:lockorder wants exactly two lock names (before after)")
					}
					n.LockOrder = append(n.LockOrder, [2]string{fields[0], fields[1]})
				case strings.HasPrefix(text, annIgnore):
					rest := strings.TrimPrefix(text, annIgnore)
					fields := strings.Fields(rest)
					if len(fields) < 2 {
						return nil, annErr(pkg, c.Pos(), "//sflint:ignore wants an analyzer name and a reason")
					}
					if _, ok := AnalyzerByName(fields[0]); !ok {
						return nil, annErr(pkg, c.Pos(), fmt.Sprintf("//sflint:ignore names unknown analyzer %q", fields[0]))
					}
					n.Ignores = append(n.Ignores, &Ignore{
						Position: pkg.Fset.Position(c.Pos()),
						Analyzer: fields[0],
						Reason:   strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0])),
					})
				}
			}
		}
		// Function- and field-level directives.
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if hasDirective(d.Doc, annWallclock) {
					n.WallclockFuncs[d] = true
				}
				if hasDirective(d.Doc, annHotpath) {
					n.HotpathFuncs[d] = true
				}
				if hasDirective(d.Doc, annSequential) {
					n.SequentialFuncs[d] = true
				}
			case *ast.GenDecl:
				if err := parseFieldMutexes(pkg, n, d); err != nil {
					return nil, err
				}
			}
		}
	}
	return n, nil
}

// parseFieldMutexes records //sf:mutex NAME annotations on struct
// fields of a type declaration.
func parseFieldMutexes(pkg *Package, n *Notes, d *ast.GenDecl) error {
	if d.Tok != token.TYPE {
		return nil
	}
	for _, spec := range d.Specs {
		ts, ok := spec.(*ast.TypeSpec)
		if !ok {
			continue
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			continue
		}
		for _, field := range st.Fields.List {
			name, found, err := mutexDirective(pkg, field)
			if err != nil {
				return err
			}
			if !found {
				continue
			}
			if len(field.Names) != 1 {
				return annErr(pkg, field.Pos(), "//sf:mutex wants a single named field")
			}
			obj := pkg.Info.Defs[field.Names[0]]
			if obj == nil {
				return annErr(pkg, field.Pos(), "//sf:mutex field has no type object")
			}
			n.Mutexes[obj] = name
		}
	}
	return nil
}

// mutexDirective looks for //sf:mutex NAME in a field's doc or line
// comment.
func mutexDirective(pkg *Package, field *ast.Field) (string, bool, error) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, annMutex+" ") && text != annMutex {
				continue
			}
			fields := strings.Fields(strings.TrimPrefix(text, annMutex))
			if len(fields) != 1 {
				return "", false, annErr(pkg, c.Pos(), "//sf:mutex wants exactly one lock name")
			}
			return fields[0], true, nil
		}
	}
	return "", false, nil
}

// hasDirective reports whether the comment group contains the bare
// directive as its own line (with optional trailing free text after a
// separating space for wallclock/hotpath, which take no arguments).
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

func annErr(pkg *Package, pos token.Pos, msg string) error {
	p := pkg.Fset.Position(pos)
	return fmt.Errorf("%s:%d:%d: %s", p.Filename, p.Line, p.Column, msg)
}

// wallclockExempt reports whether the function declaration enclosing
// pos is annotated //sf:wallclock (or the whole package is).
func (n *Notes) wallclockExempt(files []*ast.File, pos token.Pos) bool {
	if n.PkgWallclock {
		return true
	}
	fd := enclosingFunc(files, pos)
	return fd != nil && n.WallclockFuncs[fd]
}

// enclosingFunc finds the function declaration whose body spans pos.
func enclosingFunc(files []*ast.File, pos token.Pos) *ast.FuncDecl {
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos <= fd.End() {
				return fd
			}
		}
	}
	return nil
}
