package search

// heap is a minimal generic binary heap ordered by less (a "less wins"
// priority queue). It backs the greedy searchers, which need repeated
// extract-best over the knowledge frontier with lazy invalidation.
type heap[T any] struct {
	items []T
	less  func(a, b T) bool
}

func newHeap[T any](less func(a, b T) bool) *heap[T] {
	return &heap[T]{less: less}
}

func (h *heap[T]) Len() int { return len(h.items) }

func (h *heap[T]) Push(x T) {
	h.items = append(h.items, x)
	h.siftUp(len(h.items) - 1)
}

// Pop removes and returns the minimum element; ok is false when empty.
func (h *heap[T]) Pop() (x T, ok bool) {
	if len(h.items) == 0 {
		return x, false
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	var zero T
	h.items[last] = zero
	h.items = h.items[:last]
	if len(h.items) > 0 {
		h.siftDown(0)
	}
	return top, true
}

func (h *heap[T]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *heap[T]) siftDown(i int) {
	n := len(h.items)
	for {
		left, right := 2*i+1, 2*i+2
		best := i
		if left < n && h.less(h.items[left], h.items[best]) {
			best = left
		}
		if right < n && h.less(h.items[right], h.items[best]) {
			best = right
		}
		if best == i {
			return
		}
		h.items[i], h.items[best] = h.items[best], h.items[i]
		i = best
	}
}
