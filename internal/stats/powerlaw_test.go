package stats

import (
	"math"
	"testing"

	"scalefree/internal/rng"
)

// samplePowerLaw draws n values from a discrete bounded power law using
// the rng package's exact sampler.
func samplePowerLaw(t testing.TB, k float64, min, max, n int, seed uint64) []int {
	t.Helper()
	pl, err := rng.NewPowerLaw(k, min, max)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	xs := make([]int, n)
	for i := range xs {
		xs[i] = pl.Sample(r)
	}
	return xs
}

func TestFitPowerLawRecoversExponent(t *testing.T) {
	for _, k := range []float64{2.1, 2.5, 3.0} {
		xs := samplePowerLaw(t, k, 1, 100000, 60000, 42)
		fit, err := FitPowerLaw(xs, 5)
		if err != nil {
			t.Fatalf("k=%v: %v", k, err)
		}
		if math.Abs(fit.Alpha-k) > 0.1 {
			t.Errorf("k=%v: estimated alpha %v (se %v)", k, fit.Alpha, fit.StdErr)
		}
		if fit.StdErr <= 0 || fit.StdErr > 0.1 {
			t.Errorf("k=%v: implausible stderr %v", k, fit.StdErr)
		}
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLaw([]int{1, 2, 3}, 0); err == nil {
		t.Error("xmin 0 accepted")
	}
	if _, err := FitPowerLaw([]int{1}, 1); err == nil {
		t.Error("single observation accepted")
	}
	if _, err := FitPowerLaw([]int{5, 5, 5}, 5); err == nil {
		t.Error("degenerate all-equal tail accepted")
	}
	if _, err := FitPowerLaw([]int{1, 2}, 10); err == nil {
		t.Error("empty tail accepted")
	}
}

func TestFitPowerLawAuto(t *testing.T) {
	// Contaminate the head: values below 5 are uniform noise, the tail
	// is a clean power law. Auto xmin should land at a cutoff that
	// recovers the tail exponent.
	k := 2.5
	xs := samplePowerLaw(t, k, 5, 100000, 40000, 7)
	r := rng.New(8)
	for i := 0; i < 20000; i++ {
		xs = append(xs, r.IntRange(1, 4))
	}
	fit, err := FitPowerLawAuto(xs, 100)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Xmin < 4 {
		t.Errorf("auto xmin = %d; expected the noisy head to be excluded", fit.Xmin)
	}
	if math.Abs(fit.Alpha-k) > 0.15 {
		t.Errorf("alpha = %v, want ~%v", fit.Alpha, k)
	}
}

func TestFitPowerLawAutoNoData(t *testing.T) {
	if _, err := FitPowerLawAuto(nil, 10); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := FitPowerLawAuto([]int{0, -3}, 10); err == nil {
		t.Error("non-positive sample accepted")
	}
}

func TestFitPowerLawAutoShortSampleFallsBack(t *testing.T) {
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	fit, err := FitPowerLawAuto(xs, 1000)
	if err != nil {
		t.Fatalf("fallback failed: %v", err)
	}
	if fit.Xmin != 1 {
		t.Errorf("fallback xmin = %d, want 1", fit.Xmin)
	}
}

func TestCCDFLogLogSlope(t *testing.T) {
	// For a power law with density exponent alpha the CCDF decays with
	// exponent alpha-1.
	k := 2.5
	xs := samplePowerLaw(t, k, 1, 100000, 80000, 9)
	ccdf := HistogramOf(xs).CCDF()
	exp, r2, err := CCDFLogLogSlope(ccdf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exp-(k-1)) > 0.25 {
		t.Errorf("CCDF slope exponent = %v, want ~%v", exp, k-1)
	}
	if r2 < 0.95 {
		t.Errorf("log-log fit R² = %v; power-law CCDF should be near-linear", r2)
	}
}

func TestCCDFLogLogSlopeErrors(t *testing.T) {
	if _, _, err := CCDFLogLogSlope(nil, 1); err == nil {
		t.Error("empty CCDF accepted")
	}
	if _, _, err := CCDFLogLogSlope([]CCDFPoint{{X: 1, Frac: 1}}, 1); err == nil {
		t.Error("single point accepted")
	}
}
