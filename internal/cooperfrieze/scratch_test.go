package cooperfrieze

import (
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

func resultsEqual(a, b *Result) bool {
	if a.Steps != b.Steps || a.OldSteps != b.OldSteps {
		return false
	}
	if a.Graph.NumVertices() != b.Graph.NumVertices() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		return false
	}
	for e := 0; e < a.Graph.NumEdges(); e++ {
		af, at := a.Graph.Endpoints(graph.EdgeID(e))
		bf, bt := b.Graph.Endpoints(graph.EdgeID(e))
		if af != bf || at != bt {
			return false
		}
	}
	for v := range a.ArrivalOutDeg {
		if a.ArrivalOutDeg[v] != b.ArrivalOutDeg[v] {
			return false
		}
	}
	return true
}

// TestGenerateScratchMatchesGenerate pins Generate and GenerateScratch
// to the same RNG stream: equal seeds must yield identical results
// whether or not buffers are reused.
func TestGenerateScratchMatchesGenerate(t *testing.T) {
	cfg := defaultConfig(250)
	var s Scratch
	for seed := uint64(1); seed <= 5; seed++ {
		want, err := cfg.Generate(rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		got, err := cfg.GenerateScratch(rng.New(seed), &s)
		if err != nil {
			t.Fatal(err)
		}
		if !resultsEqual(want, got) {
			t.Fatalf("seed %d: scratch generation diverges from Generate", seed)
		}
	}
}

// TestGenerateScratchAllocsBounded pins the steady state of the
// scratch path: after warm-up, a repeated same-size generation only
// allocates the two small out-degree distribution tables — O(1) per
// graph, independent of N.
func TestGenerateScratchAllocsBounded(t *testing.T) {
	cfg := defaultConfig(500)
	var s Scratch
	r := rng.New(3)
	gen := func() {
		if _, err := cfg.GenerateScratch(r, &s); err != nil {
			t.Fatal(err)
		}
	}
	gen() // warm up the buffers
	allocs := testing.AllocsPerRun(10, gen)
	if allocs > 10 {
		t.Errorf("steady-state GenerateScratch allocates %v times per graph, want O(1) <= 10", allocs)
	}
}

// TestEndpointMatchesFenwickDistribution is the sampler-swap safety
// net for the Cooper–Frieze process: the O(1) endpoint-array generator
// and the O(N log N) Fenwick reference must draw total-degree
// distributions that a two-sample chi-square test cannot tell apart.
func TestEndpointMatchesFenwickDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution comparison is not short")
	}
	const (
		n    = 300
		reps = 200
		bins = 10 // degrees 0..8 and >= 9
	)
	cfg := defaultConfig(n)
	cfg.Alpha = 0.7
	histEndpoint := make([]int, bins)
	histFenwick := make([]int, bins)
	for rep := 0; rep < reps; rep++ {
		re, err := cfg.Generate(rng.New(rng.DeriveSeed(21, uint64(rep))))
		if err != nil {
			t.Fatal(err)
		}
		rf, err := cfg.GenerateFenwick(rng.New(rng.DeriveSeed(22, uint64(rep))))
		if err != nil {
			t.Fatal(err)
		}
		for v := graph.Vertex(1); int(v) <= n; v++ {
			histEndpoint[min(re.Graph.Degree(v), bins-1)]++
			histFenwick[min(rf.Graph.Degree(v), bins-1)]++
		}
	}
	res, err := stats.ChiSquareTwoSample(histEndpoint, histFenwick)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 1e-3 {
		t.Errorf("endpoint vs Fenwick degree distributions differ: chi2=%.2f df=%d p-value=%g\nendpoint: %v\nfenwick:  %v",
			res.Statistic, res.DF, res.PValue, histEndpoint, histFenwick)
	}
}
