package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// pairCheck walks one lane's records and verifies B/E events nest and
// match exactly, returning the number of complete spans.
func pairCheck(t *testing.T, recs []Record) int {
	t.Helper()
	depth, spans := 0, 0
	for i, rec := range recs {
		switch rec.Ph {
		case 'B':
			depth++
		case 'E':
			if depth == 0 {
				t.Fatalf("record %d: E with no open span", i)
			}
			depth--
			spans++
		}
	}
	if depth != 0 {
		t.Fatalf("%d spans left open", depth)
	}
	return spans
}

func TestWriterMatchedPairsUnderOverflow(t *testing.T) {
	r := New()
	r.WriterCap = 16 // force overflow fast
	w := r.Writer()
	// Deep nesting + wide fanout, far beyond capacity: every recorded
	// B must still get its E, and suppressed regions must absorb their
	// own Ends without stealing reserved slots.
	for i := 0; i < 10; i++ {
		w.Begin("outer", "t")
		for j := 0; j < 10; j++ {
			w.Begin("inner", "t")
			w.Instant("tick", "t", "")
			w.End()
		}
		w.End()
	}
	if w.reserved != 0 || w.suppress != 0 {
		t.Fatalf("writer not quiesced: reserved=%d suppress=%d", w.reserved, w.suppress)
	}
	if w.dropped == 0 {
		t.Fatal("overflow test never overflowed; shrink WriterCap")
	}
	r.Release(w)
	recs := r.Drain()
	if len(recs) == 0 {
		t.Fatal("nothing recorded")
	}
	if got := len(recs); got > 16 {
		t.Fatalf("recorded %d records into a 16-record writer", got)
	}
	pairCheck(t, recs)
}

func TestWriterReleaseClosesDangling(t *testing.T) {
	r := New()
	w := r.Writer()
	w.Begin("a", "t")
	w.Begin("b", "t")
	r.Release(w)
	if spans := pairCheck(t, r.Drain()); spans != 2 {
		t.Fatalf("got %d closed spans, want 2", spans)
	}
}

func TestWriterZeroAlloc(t *testing.T) {
	r := New()
	w := r.Writer()
	// Warm steady state: the recorded path and, after overflow, the
	// suppressed path must both be allocation-free.
	allocs := testing.AllocsPerRun(5000, func() {
		w.Begin("trial", "t")
		w.Instant("tick", "t", "tag")
		w.End()
	})
	if allocs != 0 {
		t.Fatalf("Begin/Instant/End allocated %.1f per op, want 0", allocs)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	var w *Writer
	w.Begin("a", "b")
	w.End()
	w.Instant("a", "b", "c")
	if w.SampleEvery() != 0 || w.TID() != 0 {
		t.Fatal("nil writer getters")
	}
	if r.Writer() != nil {
		t.Fatal("nil recorder handed out a writer")
	}
	r.Release(nil)
	r.Emit(Record{Ph: 'i'})
	r.Merge("w", []Record{{Ph: 'i'}})
	r.SetPending("k", 1)
	if _, ok := r.TakePending("k"); ok {
		t.Fatal("nil recorder stored a pending flow")
	}
	r.AbandonPending()
	if r.Drain() != nil || r.Dropped() != 0 {
		t.Fatal("nil recorder drained records")
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil WriteJSON output invalid: %v", err)
	}
}

func TestDisabledRecorderDropsEverything(t *testing.T) {
	r := New()
	r.SetEnabled(false)
	if r.Writer() != nil {
		t.Fatal("disabled recorder handed out a writer")
	}
	r.Emit(Record{Ph: 'i', Name: "x"})
	if len(r.Drain()) != 0 {
		t.Fatal("disabled recorder recorded")
	}
	r.SetEnabled(true)
	r.Emit(Record{Ph: 'i', Name: "x"})
	if len(r.Drain()) != 1 {
		t.Fatal("re-enabled recorder dropped")
	}
}

func TestIDsDeterministic(t *testing.T) {
	a := LeaseContext("E4", "fp", 0, 4)
	if a != LeaseContext("E4", "fp", 0, 4) {
		t.Fatal("LeaseContext not deterministic")
	}
	if a == LeaseContext("E4", "fp", 4, 8) || a == LeaseContext("E5", "fp", 0, 4) {
		t.Fatal("LeaseContext collides across chunks")
	}
	if RetryFlow("E4", "fp", 0, 4, 1) == RetryFlow("E4", "fp", 0, 4, 2) {
		t.Fatal("RetryFlow collides across attempts")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	in := []Record{
		{TS: 123456789, TID: 3, Ph: 'B', Name: "E4/n=512/rep=0", Cat: "trial"},
		{TS: 123456999, TID: 3, Ph: 'E'},
		{TS: 123457000, ID: 0xdeadbeef, TID: 0, Ph: 'f', Name: "retry", Cat: "flow", Arg: "attempt=2"},
	}
	buf, dropped := EncodeBatch(in, 1<<20)
	if dropped != 0 {
		t.Fatalf("dropped %d records under a huge budget", dropped)
	}
	out, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("got %d records, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestCodecTruncation(t *testing.T) {
	var in []Record
	for i := 0; i < 100; i++ {
		in = append(in, Record{TS: int64(i), TID: 1, Ph: 'i', Name: "instant-event", Cat: "t"})
	}
	full, _ := EncodeBatch(in, 1<<20)
	buf, dropped := EncodeBatch(in, len(full)/2)
	if dropped == 0 {
		t.Fatal("half budget dropped nothing")
	}
	out, err := DecodeBatch(buf)
	if err != nil {
		t.Fatalf("truncated batch failed to decode: %v", err)
	}
	if len(out)+dropped != len(in) {
		t.Fatalf("decoded %d + dropped %d != %d", len(out), dropped, len(in))
	}
	// Oldest-first: the surviving prefix is the oldest records.
	for i := range out {
		if out[i].TS != int64(i) {
			t.Fatalf("record %d has TS %d; truncation reordered", i, out[i].TS)
		}
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeBatch([]byte{99}); err == nil {
		t.Fatal("bad version accepted")
	}
	good, _ := EncodeBatch([]Record{{TS: 1, Ph: 'B', Name: "x"}}, 1<<20)
	if _, err := DecodeBatch(good[:len(good)-1]); err == nil {
		t.Fatal("torn record accepted")
	}
}

func TestWriteJSONStructure(t *testing.T) {
	r := New()
	r.ProcName = "coordinator"
	w := r.Writer()
	w.Begin("E4/n=512/rep=0", "trial")
	w.Begin("generate", "phase")
	w.End()
	w.End()
	r.Release(w)
	r.Emit(Record{Ph: 's', ID: 42, Name: "retry", Cat: "flow"})
	r.Emit(Record{Ph: 'f', ID: 42, Name: "retry", Cat: "flow"})
	r.Merge("worker-a", []Record{
		{TS: Now(), TID: 1, Ph: 'B', Name: "lease", Cat: "lease"},
		{TS: Now(), TID: 1, Ph: 'E'},
	})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
			TS   int64  `json:"ts"`
			ID   string `json:"id"`
			BP   string `json:"bp"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	var sawCoordMeta, sawWorkerMeta bool
	flows := map[string][2]int{}
	perLane := map[[2]int]int{} // (pid,tid) → B-E depth
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				if ev.PID == 0 {
					sawCoordMeta = true
				} else {
					sawWorkerMeta = true
				}
			}
		case "B":
			perLane[[2]int{ev.PID, ev.TID}]++
		case "E":
			key := [2]int{ev.PID, ev.TID}
			if perLane[key] == 0 {
				t.Fatalf("lane %v: E with no open B", key)
			}
			perLane[key]--
		case "s":
			c := flows[ev.ID]
			c[0]++
			flows[ev.ID] = c
		case "f":
			if ev.BP != "e" {
				t.Fatalf("flow f without bp=e: %+v", ev)
			}
			c := flows[ev.ID]
			c[1]++
			flows[ev.ID] = c
		}
		if ev.TS < 0 {
			t.Fatalf("negative normalized timestamp: %+v", ev)
		}
	}
	if !sawCoordMeta || !sawWorkerMeta {
		t.Fatal("missing process_name metadata for coordinator or worker")
	}
	for key, depth := range perLane {
		if depth != 0 {
			t.Fatalf("lane %v: %d spans left open", key, depth)
		}
	}
	for id, c := range flows {
		if c[0] != c[1] {
			t.Fatalf("flow %s: %d starts, %d finishes", id, c[0], c[1])
		}
	}
	if !strings.Contains(buf.String(), "coordinator") || !strings.Contains(buf.String(), "worker-a") {
		t.Fatal("process names missing from export")
	}
}

func TestPendingFlows(t *testing.T) {
	r := New()
	r.SetPending("E4:0:4", 99)
	if id, ok := r.TakePending("E4:0:4"); !ok || id != 99 {
		t.Fatalf("TakePending = %d,%v", id, ok)
	}
	if _, ok := r.TakePending("E4:0:4"); ok {
		t.Fatal("pending flow survived Take")
	}
	r.SetPending("E5:0:4", 7)
	r.AbandonPending()
	recs := r.Drain()
	if len(recs) != 1 || recs[0].Ph != 'f' || recs[0].ID != 7 {
		t.Fatalf("AbandonPending emitted %+v", recs)
	}
}

func TestWriterRecycling(t *testing.T) {
	r := New()
	w1 := r.Writer()
	tid := w1.TID()
	r.Release(w1)
	w2 := r.Writer()
	if w2.TID() != tid {
		t.Fatalf("freelist miss: tid %d then %d", tid, w2.TID())
	}
	w3 := r.Writer()
	if w3.TID() == w2.TID() {
		t.Fatal("two live writers share a tid")
	}
}
