// Package noreason omits the mandatory reason from an
// //sflint:ignore; loading it must fail.
package noreason

//sflint:ignore determinism
func f() int { return 1 }
