// Package experiment is the codecreg fixture for wire-result
// registration: exported *Result structs must be registered with
// sweep.RegisterResult.
package experiment

import "sweep"

// GoodResult is registered below.
type GoodResult struct{ X int }

// AlsoGoodResult is registered through a parenthesized instantiation.
type AlsoGoodResult struct{ Y float64 }

type ForgottenResult struct{ Z string } // want `exported wire result type ForgottenResult is not registered with sweep\.RegisterResult`

// internalResult is unexported: it never crosses the wire.
type internalResult struct{ w int }

// AliasResult ends in "Result" but is not a struct: not a wire type.
type AliasResult = int

var (
	_ = sweep.RegisterResult[GoodResult]("good")
	_ = (sweep.RegisterResult[AlsoGoodResult])("also-good")
)

var _ = internalResult{}
