package experiment

import (
	"context"
	"fmt"
	"strings"

	"scalefree/internal/cooperfrieze"
	"scalefree/internal/core"
	"scalefree/internal/equivalence"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
	"scalefree/internal/search"
)

// walkBudgetFactor caps walk-style algorithms at this multiple of n so
// that pathological walks terminate; the found-rate column records how
// often the cap bit. Non-walk algorithms run uncensored (they finish
// within m requests on connected graphs).
const walkBudgetFactor = 50

func isWalk(a search.Algorithm) bool {
	switch a.Name() {
	case "random-walk", "self-avoiding-walk", "random-walk-strong":
		return true
	default:
		return strings.HasPrefix(a.Name(), "biased-walk")
	}
}

// PlanE1 measures Theorem 1 in the weak model: for every weak algorithm
// and several (p, m), the expected number of requests to find vertex n
// grows at least like √n, and pointwise dominates the Lemma-1 bound
// |V|·P(E)/2.
func PlanE1(cfg Config) (*Plan, error) {
	sizes := cfg.sizes(512, 5)
	reps := cfg.scaleInt(24, 6)
	b := newPlanBuilder()
	type cell struct {
		p       float64
		m       int
		alg     search.Algorithm
		collect cellCollector
	}
	var cells []cell
	stream := uint64(0)
	for _, p := range []float64{0.25, 0.5, 0.75, 1.0} {
		for _, m := range []int{1, 2} {
			for _, alg := range search.WeakAlgorithms() {
				stream++
				spec := core.SearchSpec{
					Algorithm: alg,
					Reps:      reps,
					Seed:      cfg.seed(stream),
				}
				if isWalk(alg) {
					spec.Budget = walkBudgetFactor * sizes[len(sizes)-1]
				}
				collect := addScalingCell(b,
					fmt.Sprintf("E1/p=%v/m=%d/%s", p, m, alg.Name()), sizes,
					func(n int) core.GraphGen { return core.MoriGen(mori.Config{N: n, M: m, P: p}) },
					exactBound(func(n int) (float64, error) { return core.Theorem1Bound(n, p) }),
					spec)
				cells = append(cells, cell{p: p, m: m, alg: alg, collect: collect})
			}
		}
	}
	return b.build(func(results []any) ([]Table, error) {
		table := &Table{
			Title: "E1  Theorem 1 (weak model) — expected requests to find vertex n in Móri graphs",
			Columns: []string{"algorithm", "p", "m", "n(max)", "mean@max", "bound@max",
				"fit-exponent", "±se", "R2", "found-rate"},
			Notes: []string{
				"theorem: exponent >= 0.5 and mean >= bound at every n (bound = |V|·P(E)/2, exact)",
				fmt.Sprintf("sizes %v, %d reps per point; walks censored at %d·n requests", sizes, reps, walkBudgetFactor),
			},
		}
		for _, c := range cells {
			res, err := c.collect(results)
			if err != nil {
				return nil, fmt.Errorf("E1 p=%v m=%d %s: %w", c.p, c.m, c.alg.Name(), err)
			}
			last := res.Points[len(res.Points)-1]
			table.AddRow(c.alg.Name(), c.p, c.m, last.N,
				last.Measurement.Requests.Mean, last.Bound,
				res.Fit.Exponent, res.Fit.ExponentSE, res.Fit.R2,
				last.Measurement.FoundRate)
		}
		return []Table{*table}, nil
	}), nil
}

// PlanE2 measures Theorem 1 in the strong model for p < 1/2: the
// expected number of requests grows at least like n^(1/2-p).
func PlanE2(cfg Config) (*Plan, error) {
	sizes := cfg.sizes(512, 5)
	reps := cfg.scaleInt(24, 6)
	b := newPlanBuilder()
	type cell struct {
		p       float64
		alg     search.Algorithm
		collect cellCollector
	}
	var cells []cell
	stream := uint64(100)
	for _, p := range []float64{0.1, 0.25, 0.4} {
		for _, alg := range search.StrongAlgorithms() {
			stream++
			spec := core.SearchSpec{
				Algorithm: alg,
				Reps:      reps,
				Seed:      cfg.seed(stream),
			}
			if isWalk(alg) {
				spec.Budget = walkBudgetFactor * sizes[len(sizes)-1]
			}
			collect := addScalingCell(b,
				fmt.Sprintf("E2/p=%v/%s", p, alg.Name()), sizes,
				func(n int) core.GraphGen { return core.MoriGen(mori.Config{N: n, M: 1, P: p}) },
				nil, spec)
			cells = append(cells, cell{p: p, alg: alg, collect: collect})
		}
	}
	return b.build(func(results []any) ([]Table, error) {
		table := &Table{
			Title: "E2  Theorem 1 (strong model) — expected requests, Móri graphs with p < 1/2",
			Columns: []string{"algorithm", "p", "n(max)", "mean@max",
				"fit-exponent", "±se", "bound-exponent", "found-rate"},
			Notes: []string{
				"theorem: fitted exponent >= 1/2 - p for any strong-model algorithm",
				fmt.Sprintf("sizes %v, %d reps per point", sizes, reps),
			},
		}
		for _, c := range cells {
			res, err := c.collect(results)
			if err != nil {
				return nil, fmt.Errorf("E2 p=%v %s: %w", c.p, c.alg.Name(), err)
			}
			last := res.Points[len(res.Points)-1]
			table.AddRow(c.alg.Name(), c.p, last.N,
				last.Measurement.Requests.Mean,
				res.Fit.Exponent, res.Fit.ExponentSE,
				core.StrongModelExponent(c.p),
				last.Measurement.FoundRate)
		}
		return []Table{*table}, nil
	}), nil
}

// cfConfig is the Cooper–Frieze parameterization used by E3 and E6/E7.
func cfConfig(n int, alpha float64) cooperfrieze.Config {
	return cooperfrieze.Config{
		N:          n,
		Alpha:      alpha,
		Beta:       0.5,
		Gamma:      0.5,
		Delta:      0.5,
		AllowLoops: true,
	}
}

// PlanE3 measures Theorem 2: Ω(√n) weak-model search cost in
// Cooper–Frieze graphs, with the Lemma-1 bound estimated by Monte
// Carlo (each per-size bound is its own trial, driven by the trial's
// private RNG).
func PlanE3(cfg Config) (*Plan, error) {
	sizes := cfg.sizes(512, 4)
	reps := cfg.scaleInt(24, 6)
	mcReps := cfg.scaleInt(400, 100)
	b := newPlanBuilder()
	type cell struct {
		alpha   float64
		alg     search.Algorithm
		collect cellCollector
	}
	var cells []cell
	stream := uint64(200)
	for _, alpha := range []float64{0.5, 0.8} {
		for _, alg := range search.WeakAlgorithms() {
			stream++
			spec := core.SearchSpec{
				Algorithm: alg,
				Reps:      reps,
				Seed:      cfg.seed(stream),
			}
			if isWalk(alg) {
				spec.Budget = walkBudgetFactor * sizes[len(sizes)-1]
			}
			collect := addScalingCell(b,
				fmt.Sprintf("E3/alpha=%v/%s", alpha, alg.Name()), sizes,
				func(n int) core.GraphGen { return core.CooperFriezeGen(cfConfig(n, alpha)) },
				func(n int, r *rng.RNG) (float64, error) {
					bound, _, _, err := equivalence.Lemma1BoundCF(r, cfConfig(n, alpha), mcReps)
					return bound, err
				},
				spec)
			cells = append(cells, cell{alpha: alpha, alg: alg, collect: collect})
		}
	}
	return b.build(func(results []any) ([]Table, error) {
		table := &Table{
			Title: "E3  Theorem 2 — expected requests to find vertex n in Cooper–Frieze graphs (weak model)",
			Columns: []string{"algorithm", "alpha", "n(max)", "mean@max", "bound@max",
				"fit-exponent", "±se", "found-rate"},
			Notes: []string{
				"theorem: exponent >= 0.5; bound = |V|·P̂(E)/2 with P̂ estimated by Monte Carlo",
				fmt.Sprintf("sizes %v, %d reps per point, %d MC generations per bound", sizes, reps, mcReps),
			},
		}
		for _, c := range cells {
			res, err := c.collect(results)
			if err != nil {
				return nil, fmt.Errorf("E3 alpha=%v %s: %w", c.alpha, c.alg.Name(), err)
			}
			last := res.Points[len(res.Points)-1]
			table.AddRow(c.alg.Name(), c.alpha, last.N,
				last.Measurement.Requests.Mean, last.Bound,
				res.Fit.Exponent, res.Fit.ExponentSE,
				last.Measurement.FoundRate)
		}
		return []Table{*table}, nil
	}), nil
}

// PlanE4 reports the equivalence-event probabilities of Lemmas 2-3:
// exact product formula vs Monte Carlo vs the e^{-(1-p)} floor, plus
// the exhaustive Lemma-2 verification on small trees. Each (p, n)
// Monte-Carlo estimate and each Lemma-2 tree check is one trial.
func PlanE4(cfg Config) (*Plan, error) {
	mcReps := cfg.scaleInt(20000, 2000)
	b := newPlanBuilder()
	base := cfg.seed(300)

	type probCell struct {
		p   float64
		n   int
		idx int
	}
	var probCells []probCell
	stream := uint64(0)
	for _, p := range []float64{0.25, 0.5, 0.75, 1.0} {
		for _, n := range []int{1 << 8, 1 << 10, 1 << 12} {
			stream++
			idx := b.add(fmt.Sprintf("E4a/p=%v/n=%d", p, n), rng.DeriveSeed(base, stream),
				func(_ context.Context, r *rng.RNG) (any, error) {
					a, bw, err := equivalence.Window(n)
					if err != nil {
						return nil, err
					}
					exact, err := equivalence.ExactEventProb(p, a, bw)
					if err != nil {
						return nil, err
					}
					est, se, err := equivalence.MonteCarloEventProb(r, p, a, bw, mcReps)
					if err != nil {
						return nil, err
					}
					return EquivProbResult{A: a, B: bw, Exact: exact, Est: est, SE: se,
						Floor: equivalence.Lemma3Bound(p)}, nil
				})
			probCells = append(probCells, probCell{p: p, n: n, idx: idx})
		}
	}

	type l2Cell struct {
		size, a, b int
		p          float64
		idx        int
	}
	var l2Cells []l2Cell
	for _, tc := range []struct {
		size, a, b int
		p          float64
	}{
		{6, 2, 5, 0.5},
		{7, 3, 6, 0.5},
		{7, 3, 6, 0.25},
		{8, 4, 7, 0.75},
	} {
		stream++
		idx := b.add(fmt.Sprintf("E4b/size=%d/p=%v", tc.size, tc.p), rng.DeriveSeed(base, stream),
			func(_ context.Context, _ *rng.RNG) (any, error) {
				checked, err := equivalence.VerifyLemma2(tc.size, tc.a, tc.b, tc.p, 1e-12)
				result := "ok"
				if err != nil {
					result = err.Error()
				}
				return Lemma2Result{Checked: checked, Result: result}, nil
			})
		l2Cells = append(l2Cells, l2Cell{size: tc.size, a: tc.a, b: tc.b, p: tc.p, idx: idx})
	}

	return b.build(func(results []any) ([]Table, error) {
		probs := &Table{
			Title:   "E4a  P(E_{a,b}) for the canonical window b = a+⌊√(a-1)⌋ (Lemma 3)",
			Columns: []string{"p", "a", "b", "exact", "monte-carlo", "±se", "floor e^{-(1-p)}", "exact>=floor"},
			Notes:   []string{fmt.Sprintf("%d Monte-Carlo generations per estimate", mcReps)},
		}
		for _, c := range probCells {
			pr, ok := results[c.idx].(EquivProbResult)
			if !ok {
				return nil, fmt.Errorf("E4a p=%v n=%d: result type %T", c.p, c.n, results[c.idx])
			}
			probs.AddRow(c.p, pr.A, pr.B, pr.Exact, pr.Est, pr.SE, pr.Floor,
				fmt.Sprintf("%v", pr.Exact >= pr.Floor-1e-12))
		}
		lemma2 := &Table{
			Title:   "E4b  Exhaustive Lemma-2 verification: P(T) = P(σT) conditional on E_{a,b}",
			Columns: []string{"tree-size", "window", "p", "pairs-checked", "result"},
		}
		for _, c := range l2Cells {
			lr, ok := results[c.idx].(Lemma2Result)
			if !ok {
				return nil, fmt.Errorf("E4b size=%d: result type %T", c.size, results[c.idx])
			}
			lemma2.AddRow(c.size, fmt.Sprintf("(%d,%d]", c.a, c.b), c.p, lr.Checked, lr.Result)
		}
		return []Table{*probs, *lemma2}, nil
	}), nil
}
