// Package equivalence implements the probabilistic vertex-equivalence
// machinery at the heart of the paper's lower bounds (Section 2):
//
//   - the event E_{a,b} = ∩_{a<k<=b} {N_k <= a} — every vertex in the
//     window (a, b] attached to a vertex no younger than a (Lemma 2);
//
//   - its *exact* probability in the Móri tree. Conditional on the
//     event holding up to time k-1, the total indegree of [1, a] is
//     deterministic (k-2 — all edges so far point into [1, a]), so
//
//     P(E_{a,b}) = Π_{k=a+1}^{b} [p(k-2) + (1-p)a] / [p(k-2) + (1-p)(k-1)]
//
//     with the convention that the k = a+1 factor is 1 when a = 1;
//
//   - Lemma 3's closed-form floor: for b = a + ⌊√(a-1)⌋,
//     P(E_{a,b}) >= e^{-(1-p)};
//
//   - the permutation action σ(G) on trees and the exhaustive
//     verification that, conditional on E_{a,b}, window permutations
//     preserve the tree distribution (Lemma 2), by exact enumeration;
//
//   - the equivalence event for Cooper–Frieze graphs used by Theorem 2
//     (window vertices untouched except their own arrival edges into
//     [1, a]), checked on generation traces and estimated by Monte
//     Carlo.
package equivalence

import (
	"fmt"
	"math"

	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
)

// CheckEvent reports whether E_{a,b} holds in the tree: every vertex k
// in (a, b] has Father(k) <= a.
func CheckEvent(t *mori.Tree, a, b int) (bool, error) {
	if err := validateWindow(a, b, t.Size()); err != nil {
		return false, err
	}
	for k := a + 1; k <= b; k++ {
		if int(t.Father(graph.Vertex(k))) > a {
			return false, nil
		}
	}
	return true, nil
}

// ExactEventProb computes P(E_{a,b}) in the Móri tree with parameter p
// by the exact product formula. The value does not depend on the tree
// size (vertices after b cannot affect the event).
func ExactEventProb(p float64, a, b int) (float64, error) {
	if err := validateWindow(a, b, b); err != nil {
		return 0, err
	}
	// p = 0 (pure uniform attachment) is the extension boundary; the
	// product formula remains exact there.
	if math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("equivalence: p = %v out of [0, 1]", p)
	}
	logP := 0.0
	for k := a + 1; k <= b; k++ {
		if k == 2 {
			continue // vertex 2 always attaches to vertex 1 <= a
		}
		num := p*float64(k-2) + (1-p)*float64(a)
		den := p*float64(k-2) + (1-p)*float64(k-1)
		logP += math.Log(num / den)
	}
	return math.Exp(logP), nil
}

// Lemma3Bound returns the paper's closed-form floor e^{-(1-p)} on
// P(E_{a,b}) for the canonical window b = a + ⌊√(a-1)⌋.
func Lemma3Bound(p float64) float64 {
	return math.Exp(-(1 - p))
}

// Window returns the canonical equivalence window for target vertex n,
// as in the proof of Theorem 1: V = [[n, n+√n-1]] = [[a+1, b]] with
// a = n-1 and b = a + ⌊√(a-1)⌋. The tree must have at least b vertices
// for the window to exist.
func Window(n int) (a, b int, err error) {
	if n < 3 {
		return 0, 0, fmt.Errorf("equivalence: window needs target n >= 3, got %d", n)
	}
	a = n - 1
	b = a + isqrt(a-1)
	return a, b, nil
}

// WindowEndingAt returns the start a of an equivalence window (a, b]
// that ends at vertex b and holds ~√b vertices. It is the window shape
// used for Cooper–Frieze graphs, whose generation stops at the target
// vertex b = n.
func WindowEndingAt(b int) (a int, err error) {
	if b < 3 {
		return 0, fmt.Errorf("equivalence: window needs b >= 3, got %d", b)
	}
	a = b - isqrt(b-1)
	if a < 1 {
		a = 1
	}
	return a, nil
}

// isqrt returns ⌊√x⌋.
func isqrt(x int) int {
	if x < 0 {
		return 0
	}
	r := int(math.Sqrt(float64(x)))
	for r*r > x {
		r--
	}
	for (r+1)*(r+1) <= x {
		r++
	}
	return r
}

// MonteCarloEventProb estimates P(E_{a,b}) by generating trees of size
// b and counting. It returns the estimate and its standard error.
func MonteCarloEventProb(r *rng.RNG, p float64, a, b, reps int) (estimate, stderr float64, err error) {
	if reps < 1 {
		return 0, 0, fmt.Errorf("equivalence: reps = %d < 1", reps)
	}
	if err := validateWindow(a, b, b); err != nil {
		return 0, 0, err
	}
	hits := 0
	for i := 0; i < reps; i++ {
		t, err := mori.GenerateTree(r, b, p)
		if err != nil {
			return 0, 0, err
		}
		ok, err := CheckEvent(t, a, b)
		if err != nil {
			return 0, 0, err
		}
		if ok {
			hits++
		}
	}
	ph := float64(hits) / float64(reps)
	return ph, math.Sqrt(ph * (1 - ph) / float64(reps)), nil
}

// Lemma1Bound evaluates the paper's lower bound |V|·P(E)/2 on the
// expected number of weak-model requests to find target n in the Móri
// tree with parameter p, using the canonical window and the exact
// event probability.
func Lemma1Bound(n int, p float64) (float64, error) {
	a, b, err := Window(n)
	if err != nil {
		return 0, err
	}
	prob, err := ExactEventProb(p, a, b)
	if err != nil {
		return 0, err
	}
	return float64(b-a) * prob / 2, nil
}

func validateWindow(a, b, size int) error {
	if a < 1 {
		return fmt.Errorf("equivalence: window start a = %d < 1", a)
	}
	if b < a {
		return fmt.Errorf("equivalence: window [%d+1, %d] empty", a, b)
	}
	if b > size {
		return fmt.Errorf("equivalence: window end %d exceeds tree size %d", b, size)
	}
	return nil
}
