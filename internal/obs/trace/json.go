package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// jsonEvent is one Chrome trace-event. Field names follow the Trace
// Event Format; Perfetto and chrome://tracing both accept the
// {"traceEvents":[...]} envelope WriteJSON produces.
type jsonEvent struct {
	Name  string            `json:"name,omitempty"`
	Cat   string            `json:"cat,omitempty"`
	Ph    string            `json:"ph"`
	TS    int64             `json:"ts"` // microseconds from trace start
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	ID    string            `json:"id,omitempty"`
	Scope string            `json:"s,omitempty"`  // instant scope
	BP    string            `json:"bp,omitempty"` // flow binding point
	Args  map[string]string `json:"args,omitempty"`
}

// WriteJSON exports the merged timeline: process lane 0 is this
// process (ProcName), each merged worker gets its own process lane in
// first-arrival order. Timestamps are normalized to microseconds from
// the earliest record so the trace opens at t=0 in Perfetto.
//
// Callers must Release every Writer first; records still held by a
// live Writer are not exported.
func (r *Recorder) WriteJSON(w io.Writer) error {
	if r == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	r.mu.Lock()
	local := append([]Record(nil), r.spill...)
	workers := append([]string(nil), r.workers...)
	merged := make([][]Record, len(r.merged))
	for i, recs := range r.merged {
		merged[i] = append([]Record(nil), recs...)
	}
	dropped := r.dropped
	procName := r.ProcName
	r.mu.Unlock()
	if procName == "" {
		procName = "sweep"
	}

	min := int64(0)
	for _, rec := range local {
		if min == 0 || (rec.TS != 0 && rec.TS < min) {
			min = rec.TS
		}
	}
	for _, recs := range merged {
		for _, rec := range recs {
			if min == 0 || (rec.TS != 0 && rec.TS < min) {
				min = rec.TS
			}
		}
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev jsonEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		raw, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(raw)
		return err
	}
	meta := func(pid int, name string) error {
		return emit(jsonEvent{Name: "process_name", Ph: "M", PID: pid,
			Args: map[string]string{"name": name}})
	}
	if err := meta(0, procName); err != nil {
		return err
	}
	for i, name := range workers {
		if err := meta(i+1, name); err != nil {
			return err
		}
	}
	lane := func(pid int, recs []Record) error {
		// Name each thread lane once so Perfetto sorts them stably.
		seen := map[int32]bool{}
		for _, rec := range recs {
			if seen[rec.TID] {
				continue
			}
			seen[rec.TID] = true
		}
		tids := make([]int, 0, len(seen))
		for tid := range seen {
			tids = append(tids, int(tid))
		}
		sort.Ints(tids)
		for _, tid := range tids {
			name := "worker-" + strconv.Itoa(tid)
			if tid == 0 {
				name = "control"
			}
			if err := emit(jsonEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]string{"name": name}}); err != nil {
				return err
			}
		}
		for _, rec := range recs {
			ev := jsonEvent{
				Name: rec.Name,
				Cat:  rec.Cat,
				Ph:   string(rune(rec.Ph)),
				TS:   (rec.TS - min) / 1000,
				PID:  pid,
				TID:  int(rec.TID),
			}
			switch rec.Ph {
			case 'i':
				ev.Scope = "t"
			case 's':
				ev.ID = "0x" + strconv.FormatUint(rec.ID, 16)
			case 'f':
				ev.ID = "0x" + strconv.FormatUint(rec.ID, 16)
				ev.BP = "e"
			}
			if rec.Arg != "" {
				ev.Args = map[string]string{"detail": rec.Arg}
			}
			if err := emit(ev); err != nil {
				return err
			}
		}
		return nil
	}
	if err := lane(0, local); err != nil {
		return err
	}
	for i, recs := range merged {
		if err := lane(i+1, recs); err != nil {
			return err
		}
	}
	if dropped > 0 {
		if err := emit(jsonEvent{Name: "trace_dropped", Cat: "trace", Ph: "i", TS: 0, PID: 0, TID: 0,
			Scope: "t", Args: map[string]string{"detail": fmt.Sprintf("%d records lost to writer overflow", dropped)}}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
