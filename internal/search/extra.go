package search

import (
	"fmt"
	"math"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

// TwoPhase is Adamic et al.'s protocol sketch made concrete: phase one
// climbs the degree sequence (request the highest-degree visible vertex
// until the frontier stops improving on the best degree seen), phase
// two falls back to identity-greedy descent towards the target. On
// age-correlated graphs the hub neighborhood covers much of the old
// core, after which label descent probes the young periphery.
type TwoPhase struct{}

// NewTwoPhase returns the strong-model hub-then-label searcher.
func NewTwoPhase() *TwoPhase { return &TwoPhase{} }

// Name implements Algorithm.
func (*TwoPhase) Name() string { return "two-phase" }

// Knowledge implements Algorithm.
func (*TwoPhase) Knowledge() Knowledge { return Strong }

// Search implements Algorithm.
func (*TwoPhase) Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error) {
	if err := checkModel(NewTwoPhase(), o); err != nil {
		return Result{}, err
	}
	target := int64(o.Target())

	type entry struct {
		prio int64
		v    graph.Vertex
	}
	byDegree := newHeap(func(a, b entry) bool { return a.prio < b.prio })
	byLabel := newHeap(func(a, b entry) bool { return a.prio < b.prio })
	push := func(v graph.Vertex) {
		view, _ := o.ViewOf(v)
		byDegree.Push(entry{-int64(view.Degree)<<32 + int64(v), v})
		d := int64(v) - target
		if d < 0 {
			d = -d
		}
		byLabel.Push(entry{d<<32 + int64(v), v})
	}
	push(o.Start())

	bestDegree := 0
	climbing := true
	for !o.Found() && budgetLeft(o, maxRequests) {
		h := byLabel
		if climbing {
			h = byDegree
		}
		e, ok := h.Pop()
		if !ok {
			break
		}
		if !o.IsVisible(e.v) {
			continue
		}
		view, _ := o.ViewOf(e.v)
		if climbing {
			if view.Degree > bestDegree {
				bestDegree = view.Degree
			} else {
				// Frontier stopped improving: the hub has been reached;
				// switch to label descent for the rest of the search.
				climbing = false
			}
		}
		neighbors, _, err := o.RequestVertex(e.v)
		if err != nil {
			return Result{}, err
		}
		for _, w := range neighbors {
			if o.IsVisible(w) {
				push(w)
			}
		}
	}
	return Result{Found: o.Found(), Requests: o.Requests()}, nil
}

// BiasedWalk is a degree-biased random walk in the strong model: the
// next vertex is drawn from the current neighborhood with probability
// proportional to degree^bias. bias = 0 recovers the uniform walk;
// bias > 0 hugs the hubs (the "high-degree seeking" walk analysed in
// the P2P literature); bias < 0 explores the periphery.
type BiasedWalk struct {
	bias float64
}

// NewBiasedWalk returns a degree-biased strong-model walk.
func NewBiasedWalk(bias float64) *BiasedWalk { return &BiasedWalk{bias: bias} }

// Name implements Algorithm.
func (w *BiasedWalk) Name() string { return fmt.Sprintf("biased-walk(%+.1f)", w.bias) }

// Knowledge implements Algorithm.
func (*BiasedWalk) Knowledge() Knowledge { return Strong }

// Search implements Algorithm.
func (w *BiasedWalk) Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error) {
	if err := checkModel(w, o); err != nil {
		return Result{}, err
	}
	cur := o.Start()
	if _, _, err := o.RequestVertex(cur); err != nil {
		return Result{}, err
	}
	var weights []float64
	for steps := 0; !o.Found() && budgetLeft(o, maxRequests) && steps < stepCap(maxRequests); steps++ {
		view, ok := o.ViewOf(cur)
		if !ok || view.Resolved == nil {
			return Result{}, fmt.Errorf("search: biased walk standing on unrequested vertex %d", cur)
		}
		if view.Degree == 0 {
			break
		}
		weights = weights[:0]
		for _, nb := range view.Resolved {
			nv, _ := o.ViewOf(nb)
			weights = append(weights, powWeight(nv.Degree, w.bias))
		}
		next := view.Resolved[sampleIndex(r, weights)]
		if _, _, err := o.RequestVertex(next); err != nil {
			return Result{}, err
		}
		cur = next
	}
	return Result{Found: o.Found(), Requests: o.Requests()}, nil
}

// powWeight computes max(d, 1)^bias, the sampling weight of a
// neighbor with degree d.
func powWeight(d int, bias float64) float64 {
	x := float64(d)
	if x < 1 {
		x = 1
	}
	if bias == 0 {
		return 1
	}
	return math.Pow(x, bias)
}

// sampleIndex draws an index proportional to weights (all finite,
// at least one positive — guaranteed by powWeight >= 0 with max(d,1)).
func sampleIndex(r *rng.RNG, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// MixedGreedy is an ε-mixture of the two weak-model greedy priorities:
// with probability eps the next request goes to the degree-greedy
// choice, otherwise to the identity-greedy choice. It probes whether
// any blend of the two signals beats either alone (it does not — the
// equivalence argument kills every mixture).
type MixedGreedy struct {
	eps float64
}

// NewMixedGreedy returns the ε-mixed weak-model greedy searcher;
// eps is clamped to [0, 1].
func NewMixedGreedy(eps float64) *MixedGreedy {
	if eps < 0 {
		eps = 0
	}
	if eps > 1 {
		eps = 1
	}
	return &MixedGreedy{eps: eps}
}

// Name implements Algorithm.
func (m *MixedGreedy) Name() string { return fmt.Sprintf("mixed-greedy(%.2f)", m.eps) }

// Knowledge implements Algorithm.
func (*MixedGreedy) Knowledge() Knowledge { return Weak }

// Search implements Algorithm.
func (m *MixedGreedy) Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error) {
	if err := checkModel(m, o); err != nil {
		return Result{}, err
	}
	target := int64(o.Target())

	type entry struct {
		prio int64
		v    graph.Vertex
	}
	byDegree := newHeap(func(a, b entry) bool { return a.prio < b.prio })
	byLabel := newHeap(func(a, b entry) bool { return a.prio < b.prio })
	push := func(v graph.Vertex) {
		view, _ := o.ViewOf(v)
		byDegree.Push(entry{-int64(view.Degree)<<32 + int64(v), v})
		d := int64(v) - target
		if d < 0 {
			d = -d
		}
		byLabel.Push(entry{d<<32 + int64(v), v})
	}
	known := 0
	for !o.Found() && budgetLeft(o, maxRequests) {
		for ; known < len(o.Discovered()); known++ {
			push(o.Discovered()[known])
		}
		h := byLabel
		if r.Bernoulli(m.eps) {
			h = byDegree
		}
		// Pop until a vertex with an unresolved slot surfaces; push the
		// skipped, still-fresh entries back after the request.
		var e entry
		found := false
		for {
			var ok bool
			e, ok = h.Pop()
			if !ok {
				break
			}
			view, _ := o.ViewOf(e.v)
			if view.Unresolved > 0 {
				found = true
				break
			}
		}
		if !found {
			break
		}
		view, _ := o.ViewOf(e.v)
		slot := 0
		for ; slot < view.Degree; slot++ {
			if view.Resolved[slot] == graph.NoVertex {
				break
			}
		}
		if _, _, err := o.RequestEdge(e.v, slot); err != nil {
			return Result{}, err
		}
		if view.Unresolved > 0 {
			h.Push(e)
		}
	}
	return Result{Found: o.Found(), Requests: o.Requests()}, nil
}
