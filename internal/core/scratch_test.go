package core

import (
	"testing"

	"scalefree/internal/cooperfrieze"
	"scalefree/internal/mori"
	"scalefree/internal/search"
)

// TestMeasureOneScratchMatchesFresh pins the determinism contract of
// the scratch path: reusing one worker scratch across replications
// must reproduce the scratch-free outcomes bit for bit, for both graph
// models and both knowledge models.
func TestMeasureOneScratchMatchesFresh(t *testing.T) {
	gens := []struct {
		name string
		gen  GraphGen
	}{
		{"mori", MoriGen(mori.Config{N: 80, M: 2, P: 0.5})},
		{"cf", CooperFriezeGen(cooperfrieze.Config{
			N: 120, Alpha: 0.7, Beta: 0.5, Gamma: 0.5, Delta: 0.5, AllowLoops: true})},
	}
	algos := []struct {
		name string
		alg  search.Algorithm
	}{
		{"weak", search.NewDegreeGreedyWeak()},
		{"strong", search.NewDegreeGreedyStrong()},
	}
	for _, g := range gens {
		for _, a := range algos {
			spec := SearchSpec{Algorithm: a.alg, Reps: 6, Seed: 99, Budget: 5000}
			s := NewScratch()
			for rep := 0; rep < spec.Reps; rep++ {
				want, err := MeasureOne(g.gen, spec, rep)
				if err != nil {
					t.Fatalf("%s/%s rep %d: %v", g.name, a.name, rep, err)
				}
				got, err := MeasureOneScratch(g.gen, spec, rep, s)
				if err != nil {
					t.Fatalf("%s/%s rep %d (scratch): %v", g.name, a.name, rep, err)
				}
				if want != got {
					t.Errorf("%s/%s rep %d: fresh %+v != scratch %+v", g.name, a.name, rep, want, got)
				}
			}
		}
	}
}

// TestMeasureOneScratchAllocsBounded pins the trial hot path to O(1)
// allocations: a repeated fixed-size Móri trial through one scratch
// must stay under a small constant, independent of graph size (the
// residue is the search algorithm's own working state, not the
// generator, oracle, or RNGs).
func TestMeasureOneScratchAllocsBounded(t *testing.T) {
	gen := MoriGen(mori.Config{N: 400, M: 1, P: 0.5})
	spec := SearchSpec{Algorithm: search.NewDegreeGreedyWeak(), Reps: 1, Seed: 7}
	s := NewScratch()
	run := func() {
		if _, err := MeasureOneScratch(gen, spec, 0, s); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		run() // converge the arenas
	}
	allocs := testing.AllocsPerRun(10, run)
	t.Logf("allocs per trial: %v", allocs)
	if allocs > 32 {
		t.Errorf("scratch trial allocates %v times per replication, want O(1) <= 32", allocs)
	}
}
