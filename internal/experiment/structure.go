package experiment

import (
	"fmt"
	"math"

	"scalefree/internal/ba"
	"scalefree/internal/configmodel"
	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

// RunE5 fits the growth exponent of the maximum indegree: Móri's
// theorem gives Δ(n) ~ n^p for the Móri tree, versus n^(1/2) for
// Barabási–Albert — the contrast that decides whether the strong-model
// reduction is non-trivial.
func RunE5(cfg Config) ([]Table, error) {
	sizes := cfg.sizes(2048, 5)
	reps := cfg.scaleInt(10, 3)
	table := &Table{
		Title:   "E5  Maximum-degree growth Δ(n) ~ n^β",
		Columns: []string{"model", "expected β", "fitted β", "±se", "R2", "Δ at n(max)"},
		Notes: []string{
			"Móri strong-model bound needs β < 1/2, i.e. p < 1/2 (paper, Conclusion)",
			fmt.Sprintf("sizes %v, %d reps per point (mean of max indegree)", sizes, reps),
		},
	}
	measure := func(name string, expected float64, gen func(n int, r *rng.RNG) (int, error), stream uint64) error {
		var ns, maxes []float64
		for i, n := range sizes {
			total := 0.0
			for rep := 0; rep < reps; rep++ {
				r := rng.New(rng.DeriveSeed(cfg.seed(400+stream), uint64(i*1000+rep)))
				d, err := gen(n, r)
				if err != nil {
					return err
				}
				total += float64(d)
			}
			ns = append(ns, float64(n))
			maxes = append(maxes, total/float64(reps))
		}
		fit, err := stats.FitScaling(ns, maxes)
		if err != nil {
			return err
		}
		table.AddRow(name, expected, fit.Exponent, fit.ExponentSE, fit.R2, maxes[len(maxes)-1])
		return nil
	}

	for i, p := range []float64{0.25, 0.5, 0.75, 1.0} {
		p := p
		err := measure(fmt.Sprintf("mori p=%.2f", p), p, func(n int, r *rng.RNG) (int, error) {
			t, err := mori.GenerateTree(r, n, p)
			if err != nil {
				return 0, err
			}
			best := 0
			for _, d := range t.InDegrees() {
				if d > best {
					best = d
				}
			}
			return best, nil
		}, uint64(i))
		if err != nil {
			return nil, fmt.Errorf("E5 mori p=%v: %w", p, err)
		}
	}
	err := measure("barabasi-albert m=1", 0.5, func(n int, r *rng.RNG) (int, error) {
		g, err := ba.Config{N: n, M: 1}.Generate(r)
		if err != nil {
			return 0, err
		}
		return g.MaxDegree(), nil
	}, 50)
	if err != nil {
		return nil, fmt.Errorf("E5 ba: %w", err)
	}
	return []Table{*table}, nil
}

// RunE6 fits power-law exponents to the degree distributions of every
// model — the scale-free premise of the paper. For the indegree-based
// Móri tree (attachment weight p·d_in + (1-p), i.e. d_in + β with
// β = (1-p)/p after normalization) the degree exponent is 2 + β =
// 1 + 1/p; for BA (total degree) it is 3; the configuration model
// reproduces its input exponent by construction.
func RunE6(cfg Config) ([]Table, error) {
	n := cfg.scaleInt(1<<15, 2048)
	table := &Table{
		Title:   "E6  Degree distributions (total degree, MLE tail fit)",
		Columns: []string{"model", "n", "expected α", "fitted α", "±se", "xmin", "ccdf-slope+1", "max-degree"},
		Notes: []string{
			"expected: Móri tree 1+1/p (indegree attachment); BA 3; config model its input k; CF depends on (α,β,γ,δ)",
			"ccdf-slope+1 is the log-log CCDF regression estimate of α (CCDF decays with α-1)",
		},
	}
	addFit := func(name string, expected float64, g *graph.Graph) error {
		degs := g.Degrees()[1:]
		fit, err := stats.FitPowerLawAuto(degs, 50)
		if err != nil {
			return err
		}
		ccdf := stats.HistogramOf(degs).CCDF()
		slope, _, err := stats.CCDFLogLogSlope(ccdf, fit.Xmin)
		if err != nil {
			return err
		}
		expectedCell := "-"
		if expected > 0 {
			expectedCell = formatFloat(expected)
		}
		table.AddRow(name, g.NumVertices(), expectedCell, fit.Alpha, fit.StdErr, fit.Xmin, slope+1, g.MaxDegree())
		return nil
	}

	for i, p := range []float64{0.5, 0.75, 1.0} {
		tree, err := mori.GenerateTree(rng.New(cfg.seed(500+uint64(i))), n, p)
		if err != nil {
			return nil, err
		}
		if err := addFit(fmt.Sprintf("mori tree p=%.2f", p), 1+1/p, tree.Graph()); err != nil {
			return nil, fmt.Errorf("E6 mori p=%v: %w", p, err)
		}
	}
	g, err := mori.Config{N: n / 4, M: 4, P: 0.75}.Generate(rng.New(cfg.seed(510)))
	if err != nil {
		return nil, err
	}
	if err := addFit("mori merged m=4 p=0.75", 1+1/0.75, g); err != nil {
		return nil, fmt.Errorf("E6 merged: %w", err)
	}
	bag, err := ba.Config{N: n, M: 2}.Generate(rng.New(cfg.seed(511)))
	if err != nil {
		return nil, err
	}
	if err := addFit("barabasi-albert m=2", 3, bag); err != nil {
		return nil, fmt.Errorf("E6 ba: %w", err)
	}
	for i, k := range []float64{2.1, 2.5} {
		cmg, err := configmodel.Config{N: n, Exponent: k}.Generate(rng.New(cfg.seed(512 + uint64(i))))
		if err != nil {
			return nil, err
		}
		if err := addFit(fmt.Sprintf("config-model k=%.1f", k), k, cmg); err != nil {
			return nil, fmt.Errorf("E6 config k=%v: %w", k, err)
		}
	}
	res, err := cfConfig(n, 0.7).Generate(rng.New(cfg.seed(514)))
	if err != nil {
		return nil, err
	}
	if err := addFit("cooper-frieze α=0.7", 0, res.Graph); err != nil {
		return nil, fmt.Errorf("E6 cf: %w", err)
	}
	return []Table{*table}, nil
}

// RunE7 measures distance growth: mean BFS distance and double-sweep
// diameter against log n — the "logarithmic diameter" the paper
// contrasts with its polynomial search bound.
func RunE7(cfg Config) ([]Table, error) {
	sizes := cfg.sizes(1024, 5)
	srcSamples := cfg.scaleInt(12, 4)
	table := &Table{
		Title:   "E7  Distance growth: logarithmic diameter vs polynomial search",
		Columns: []string{"model", "n", "mean-dist", "diam(lb)", "mean/ln(n)", "√n (contrast)"},
		Notes: []string{
			"mean/ln(n) stabilizing ⇒ logarithmic distances; the √n column is the search lower-bound scale",
		},
	}
	gens := []struct {
		name string
		gen  func(n int, r *rng.RNG) (*graph.Graph, error)
	}{
		{"mori p=0.5 m=2", func(n int, r *rng.RNG) (*graph.Graph, error) {
			return mori.Config{N: n, M: 2, P: 0.5}.Generate(r)
		}},
		{"cooper-frieze α=0.8", func(n int, r *rng.RNG) (*graph.Graph, error) {
			res, err := cfConfig(n, 0.8).Generate(r)
			if err != nil {
				return nil, err
			}
			return res.Graph, nil
		}},
		{"barabasi-albert m=2", func(n int, r *rng.RNG) (*graph.Graph, error) {
			return ba.Config{N: n, M: 2}.Generate(r)
		}},
	}
	for gi, gspec := range gens {
		for si, n := range sizes {
			r := rng.New(cfg.seed(600 + uint64(gi*100+si)))
			g, err := gspec.gen(n, r)
			if err != nil {
				return nil, fmt.Errorf("E7 %s n=%d: %w", gspec.name, n, err)
			}
			sources := make([]graph.Vertex, srcSamples)
			for i := range sources {
				sources[i] = graph.Vertex(r.IntRange(1, g.NumVertices()))
			}
			meanDist := graph.AverageDistanceSampled(g, sources)
			diam := graph.DoubleSweepLowerBound(g, sources[0])
			table.AddRow(gspec.name, n, meanDist, diam,
				meanDist/math.Log(float64(n)), math.Sqrt(float64(n)))
		}
	}
	return []Table{*table}, nil
}
