package sweep

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"scalefree/internal/engine"
)

// hashWriter length-prefixes everything it feeds into the digest, so
// adjacent fields can never alias (["ab","c"] vs ["a","bc"]) and both
// hash domains below share one prefixing convention.
type hashWriter struct {
	h hash.Hash
}

func newHashWriter() hashWriter { return hashWriter{h: sha256.New()} }

func (w hashWriter) uvarint(v uint64) {
	var scratch [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(scratch[:], v)
	w.h.Write(scratch[:n])
}

func (w hashWriter) string(s string) {
	w.uvarint(uint64(len(s)))
	w.h.Write([]byte(s))
}

func (w hashWriter) sum() string { return hex.EncodeToString(w.h.Sum(nil)) }

// Fingerprint canonically hashes a plan's identity: the experiment ID,
// a caller-supplied canonical parameter string, the codec version, and
// every trial's (index, key, seed) in plan order. Two plans with the
// same fingerprint decompose into the same positional trial list with
// the same seeds under the same parameters, so their per-trial results
// are interchangeable — this is what makes shard files from different
// machines safely mergeable and cached results safely reusable. Any
// change to the workload (scale, seed, trial decomposition, codec
// format) changes the fingerprint and orphans stale artifacts instead
// of merging them.
//
// params exists because trial keys and seeds do not always pin the
// whole workload: a plan may capture tunables (e.g. a Monte-Carlo
// replication count derived from the config) in its closures without
// surfacing them per trial. Callers must fold every such tunable into
// params — the experiment harness passes its canonical Config
// rendering.
func Fingerprint(expID, params string, trials []engine.Trial) string {
	w := newHashWriter()
	w.string("sweep-fingerprint")
	w.uvarint(CodecVersion)
	w.string(expID)
	w.string(params)
	w.uvarint(uint64(len(trials)))
	for _, t := range trials {
		w.uvarint(uint64(t.Index))
		w.string(t.Key)
		w.uvarint(t.Seed)
	}
	return w.sum()
}

// CacheKey derives the content address of one trial's result:
// (experiment ID, plan fingerprint, trial key, trial seed, codec
// version), hashed. The trial's plan position is deliberately absent —
// a result is addressed by what was computed, not where it sat — but
// the plan fingerprint pins the decomposition that produced it.
func CacheKey(expID, fingerprint string, t engine.Trial) string {
	w := newHashWriter()
	w.string("sweep-cache-key")
	w.uvarint(CodecVersion)
	w.string(expID)
	w.string(fingerprint)
	w.string(t.Key)
	w.uvarint(t.Seed)
	return w.sum()
}
