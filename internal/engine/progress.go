package engine

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// RateTracker aggregates Progress events into a sliding-window
// throughput estimate and an ETA — the progress hook for long
// multi-shard sweeps where per-trial lines alone don't say when the
// run will finish. Feed it every Progress event (Observe is safe from
// the engine's serialized progress callback and from concurrent
// readers) and render Snapshot wherever progress is displayed.
//
// The rate is measured over a trailing window rather than the whole
// run, so it tracks the current trial mix: scaling sweeps interleave
// cheap small-n and expensive large-n trials, and a whole-run average
// would over-promise exactly when the expensive tail begins.
type RateTracker struct {
	mu     sync.Mutex
	window time.Duration
	times  []time.Time // completion timestamps, pruned to the window
	done   int
	total  int
	start  time.Time
	now    func() time.Time // injectable clock for tests
}

// NewRateTracker builds a tracker measuring throughput over the given
// trailing window; window <= 0 defaults to 30 seconds.
func NewRateTracker(window time.Duration) *RateTracker {
	if window <= 0 {
		window = 30 * time.Second
	}
	return &RateTracker{window: window, now: time.Now}
}

// Observe records one completed trial.
func (rt *RateTracker) Observe(p Progress) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	t := rt.now()
	if rt.start.IsZero() {
		rt.start = t
	}
	rt.done = p.Done
	rt.total = p.Total
	rt.times = append(rt.times, t)
	rt.prune(t)
}

// prune drops timestamps older than the window. Called with mu held.
func (rt *RateTracker) prune(now time.Time) {
	cut := now.Add(-rt.window)
	i := 0
	for i < len(rt.times) && rt.times[i].Before(cut) {
		i++
	}
	if i > 0 {
		rt.times = append(rt.times[:0], rt.times[i:]...)
	}
}

// RateSnapshot is a point-in-time view of aggregate sweep progress.
type RateSnapshot struct {
	Done  int
	Total int
	// Rate is the completion throughput in trials per second over the
	// trailing window (falling back to the whole-run average while the
	// window holds fewer than two samples). Zero means unknown.
	Rate float64
	// ETA estimates the time to finish the remaining trials — computed
	// only from the windowed rate, never the whole-run fallback. Zero
	// means unknown (no current-throughput signal: fewer than two
	// completions in the window) or already done; String renders the
	// unknown-with-work-remaining case as "ETA ∞".
	ETA time.Duration
}

// String renders the snapshot for progress lines, e.g.
// "12.3 trials/s, ETA 1m40s" — or "ETA ∞" when trials remain but the
// window holds no throughput signal to estimate from.
func (s RateSnapshot) String() string {
	if s.Rate <= 0 {
		return "rate n/a"
	}
	out := fmt.Sprintf("%.1f trials/s", s.Rate)
	switch {
	case s.ETA > 0:
		out += fmt.Sprintf(", ETA %s", s.ETA.Round(time.Second))
	case s.Done < s.Total:
		out += ", ETA ∞"
	}
	return out
}

// Snapshot computes the current windowed rate and ETA.
func (rt *RateTracker) Snapshot() RateSnapshot {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	now := rt.now()
	rt.prune(now)
	snap := RateSnapshot{Done: rt.done, Total: rt.total}
	switch {
	case len(rt.times) >= 2:
		// Unbiased windowed estimator: conditioning on the oldest
		// retained completion at times[0], the observation interval
		// (times[0], now] contains N−1 completions, not N — counting
		// all N over that span is a fencepost error that overestimates
		// the rate by N/(N−1), worst exactly when few samples remain.
		span := now.Sub(rt.times[0])
		if span > 0 {
			snap.Rate = float64(len(rt.times)-1) / span.Seconds()
		}
		if remaining := rt.total - rt.done; remaining > 0 && snap.Rate > 0 {
			snap.ETA = time.Duration(float64(remaining) / snap.Rate * float64(time.Second))
		}
	case rt.done > 0 && now.After(rt.start):
		// Whole-run fallback: a rough rate is still worth showing, but
		// no ETA comes from it — after a stall long enough to empty the
		// window, the whole-run average says nothing about current
		// throughput, and an ETA extrapolated from it is garbage. The
		// ETA stays zero (rendered as ∞) until the window refills.
		snap.Rate = float64(rt.done) / now.Sub(rt.start).Seconds()
	}
	return snap
}

// Aggregator merges trial completions reported by several concurrent
// sources — the pools of a multi-process sweep's workers, as seen by
// its coordinator — into one monotonic completion count feeding a
// shared RateTracker. The local engine reports Progress.Done as a
// run-global counter; across processes no such counter exists, so the
// aggregator owns it and attributes each completion to the source
// that delivered it.
type Aggregator struct {
	mu       sync.Mutex
	tracker  *RateTracker
	total    int
	done     int
	bySource map[string]int
}

// NewAggregator builds an aggregator over a sweep of total trials,
// feeding rt (which must be non-nil).
func NewAggregator(total int, rt *RateTracker) *Aggregator {
	return &Aggregator{tracker: rt, total: total, bySource: map[string]int{}}
}

// Add records one completed trial delivered by source and feeds the
// tracker. Safe for concurrent use.
func (a *Aggregator) Add(source string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.done++
	a.bySource[source]++
	a.tracker.Observe(Progress{Done: a.done, Total: a.total})
}

// Snapshot returns the aggregate rate/ETA view plus per-source
// completion counts (a copy, safe to retain).
func (a *Aggregator) Snapshot() (RateSnapshot, map[string]int) {
	a.mu.Lock()
	bySource := make(map[string]int, len(a.bySource))
	for s, n := range a.bySource {
		bySource[s] = n
	}
	a.mu.Unlock()
	return a.tracker.Snapshot(), bySource
}

// SourceCount is one source's completion count in the deterministic
// per-source breakdown SnapshotSorted returns.
type SourceCount struct {
	Source string `json:"source"`
	Done   int    `json:"done"`
}

// SnapshotSorted is Snapshot with the per-source counts sorted by
// source name — the single deterministic ordering both the stderr
// progress line and the /status payload render, so the two always
// agree.
func (a *Aggregator) SnapshotSorted() (RateSnapshot, []SourceCount) {
	snap, bySource := a.Snapshot()
	out := make([]SourceCount, 0, len(bySource))
	for s, n := range bySource {
		out = append(out, SourceCount{Source: s, Done: n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return snap, out
}
