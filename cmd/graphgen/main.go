// Command graphgen generates a random graph from any model registered
// in the model registry (internal/model) and writes it as a portable
// edge list (see graph.WriteEdgeList for the format), so external
// tooling can consume the exact instances the experiments measure.
//
// Usage:
//
//	graphgen -model mori -params n=4096,p=0.5,m=2 -o mori.edges
//	graphgen -model kleinberg -params l=64,r=2 -o grid.edges
//	graphgen -model config -params n=10000,k=2.3,giant=true -o overlay.edges
//	graphgen -model fitness -params n=10000,m=2 -seed 7
//	graphgen -list
//
// -params is a comma-separated name=value list validated against the
// chosen model's parameter table (missing parameters take their
// defaults); -list prints every registered model with its parameters
// and defaults. Adding a model to the registry makes it available here
// with no CLI changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"scalefree/internal/graph"
	"scalefree/internal/model"
	"scalefree/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

// options is the parsed command line, separated from execution so the
// CLI test covers flag validation and model resolution without
// exec'ing the binary.
type options struct {
	model  string
	params string
	seed   uint64
	out    string
	list   bool
}

func parseOptions(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	fs.StringVar(&o.model, "model", "mori", "registered model name (see -list)")
	fs.StringVar(&o.params, "params", "", "comma-separated name=value model parameters (defaults otherwise)")
	fs.Uint64Var(&o.seed, "seed", 1, "seed")
	fs.StringVar(&o.out, "o", "", "output file (default stdout)")
	fs.BoolVar(&o.list, "list", false, "list registered models and their parameters, then exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.list && (o.params != "" || o.out != "") {
		return nil, fmt.Errorf("-list only prints the registry; it takes no -params or -o")
	}
	return o, nil
}

// resolve instantiates the selected model, surfacing unknown names,
// unknown parameters, and out-of-range values as CLI errors.
func (o *options) resolve() (model.Model, error) {
	return model.New(o.model, o.params)
}

// listModels renders the registry: one line per model, one indented
// line per parameter, defaults in the same canonical form Params()
// encodes.
func listModels(w io.Writer) {
	for _, f := range model.Families() {
		fmt.Fprintf(w, "%s — %s\n", f.Name, f.Doc)
		for _, p := range f.Params {
			fmt.Fprintf(w, "  %-8s %s (default %s)\n", p.Name, p.Doc, p.DefaultString())
		}
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	if o.list {
		listModels(stdout)
		return nil
	}
	m, err := o.resolve()
	if err != nil {
		return err
	}
	g, err := m.Generate(rng.New(o.seed), nil)
	if err != nil {
		return err
	}

	w := stdout
	if o.out != "" {
		f, err := os.Create(o.out)
		if err != nil {
			return fmt.Errorf("creating %s: %w", o.out, err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "graphgen: %s(%s): wrote %d vertices, %d edges\n",
		m.Name(), m.Params(), g.NumVertices(), g.NumEdges())
	return nil
}
