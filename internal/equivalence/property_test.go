package equivalence

import (
	"math"
	"testing"
	"testing/quick"

	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
)

// randomEWindowTree draws a Móri tree of the given size conditioned on
// E_{a,b} by rejection.
func randomEWindowTree(t *testing.T, r *rng.RNG, size, a, b int, p float64) *mori.Tree {
	t.Helper()
	for i := 0; i < 100000; i++ {
		tree, err := mori.GenerateTree(r, size, p)
		if err != nil {
			t.Fatal(err)
		}
		ok, err := CheckEvent(tree, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			return tree
		}
	}
	t.Fatal("rejection sampling starved")
	return nil
}

func TestPermutationCompositionLaw(t *testing.T) {
	// σ(τ(T)) must equal (σ∘τ)(T) for window permutations acting on
	// E-conditioned trees.
	const size, a, b = 20, 12, 16
	const p = 0.5
	r := rng.New(71)
	for trial := 0; trial < 30; trial++ {
		tree := randomEWindowTree(t, r, size, a, b, p)
		permA := r.Perm(b - a)
		permB := r.Perm(b - a)
		sigma, err := WindowPermutation(size, a, b, permA)
		if err != nil {
			t.Fatal(err)
		}
		tau, err := WindowPermutation(size, a, b, permB)
		if err != nil {
			t.Fatal(err)
		}
		// Compose: (σ∘τ)(v) = σ(τ(v)).
		comp := make([]graph.Vertex, size+1)
		for v := 1; v <= size; v++ {
			comp[v] = sigma[tau[v]]
		}
		viaTau, err := PermuteTree(tree, tau)
		if err != nil {
			t.Fatal(err)
		}
		twoStep, err := PermuteTree(viaTau, sigma)
		if err != nil {
			t.Fatal(err)
		}
		oneStep, err := PermuteTree(tree, comp)
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= size; k++ {
			if twoStep.Fathers[k] != oneStep.Fathers[k] {
				t.Fatalf("composition law broken at vertex %d: %v vs %v", k, twoStep.Fathers, oneStep.Fathers)
			}
		}
	}
}

func TestPermutationPreservesEventAndProbability(t *testing.T) {
	// Randomized version of Lemma 2 on trees too large to enumerate.
	const size, a, b = 40, 30, 35
	const p = 0.6
	r := rng.New(73)
	for trial := 0; trial < 25; trial++ {
		tree := randomEWindowTree(t, r, size, a, b, p)
		perm := r.Perm(b - a)
		sigma, err := WindowPermutation(size, a, b, perm)
		if err != nil {
			t.Fatal(err)
		}
		image, err := PermuteTree(tree, sigma)
		if err != nil {
			t.Fatalf("σ broke an E-tree: %v", err)
		}
		ok, err := CheckEvent(image, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("σ image left the event set")
		}
		lp1, err := mori.TreeLogProb(tree.Fathers, p)
		if err != nil {
			t.Fatal(err)
		}
		lp2, err := mori.TreeLogProb(image.Fathers, p)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(lp1-lp2) > 1e-9 {
			t.Fatalf("log-probabilities differ: %v vs %v", lp1, lp2)
		}
	}
}

func TestEventProbIndependentOfFutureGrowth(t *testing.T) {
	// E_{a,b} only involves vertices up to b, so the Monte-Carlo
	// estimate must not shift when the generated tree keeps growing
	// past b.
	const a, b = 30, 35
	const p = 0.5
	exact, err := ExactEventProb(p, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(79)
	const reps = 4000
	for _, size := range []int{b, b + 30} {
		hits := 0
		for i := 0; i < reps; i++ {
			tree, err := mori.GenerateTree(r, size, p)
			if err != nil {
				t.Fatal(err)
			}
			ok, err := CheckEvent(tree, a, b)
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				hits++
			}
		}
		got := float64(hits) / reps
		if math.Abs(got-exact) > 0.03 {
			t.Errorf("size %d: P̂(E) = %v vs exact %v", size, got, exact)
		}
	}
}

func TestWindowPermutationIsBijection(t *testing.T) {
	check := func(seed uint64, sizeRaw, winRaw uint8) bool {
		size := int(sizeRaw%30) + 10
		win := int(winRaw%5) + 2
		a := size - win - 1
		if a < 1 {
			return true
		}
		b := a + win
		r := rng.New(seed)
		sigma, err := WindowPermutation(size, a, b, r.Perm(win))
		if err != nil {
			return false
		}
		seen := make(map[graph.Vertex]bool, size)
		for v := 1; v <= size; v++ {
			img := sigma[v]
			if img < 1 || int(img) > size || seen[img] {
				return false
			}
			seen[img] = true
			// Identity outside the window.
			if (v <= a || v > b) && img != graph.Vertex(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
