package experiment

import (
	"context"

	"scalefree/internal/cooperfrieze"
	"scalefree/internal/core"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
)

// cellCollector reassembles one scaling cell — a full
// (sizes × replications) sweep of a single algorithm/model pairing —
// from the flat trial-result slice of the plan it was added to.
type cellCollector func(results []any) (core.ScalingResult, error)

// addScalingCell registers the trials of one scaling cell on the
// builder: one trial per (size, replication) running core.MeasureOne,
// plus one trial per size evaluating boundFor when it is non-nil. The
// decomposition and seed scheme are core.ScalingSweep's — the single
// source of truth shared with core.MeasureScalingContext — so the
// *search measurements* reproduce the serial harness (-workers 1) bit
// for bit. Monte-Carlo bounds (an RNG-consuming boundFor, as in E3)
// are deterministic per (seed, size) but reseeded per size, unlike the
// pre-engine harness which reused one bound stream across sizes; exact
// bounds ignore the RNG and are unchanged.
//
// The returned collector assembles the cell's core.ScalingResult from
// the plan's positional results.
func addScalingCell(b *planBuilder, key string, sizes []int,
	genFor func(n int) core.GraphGen,
	boundFor func(n int, r *rng.RNG) (float64, error),
	spec core.SearchSpec) cellCollector {

	sweep, err := core.NewScalingSweep(sizes, genFor, boundFor, spec)
	if err != nil {
		// Plan-construction bugs (too few sizes, invalid spec) surface
		// at reduce time with the cell's context attached.
		return func([]any) (core.ScalingResult, error) { return core.ScalingResult{}, err }
	}
	st := sweep.Trials()
	idx := make([]int, len(st))
	for i, t := range st {
		idx[i] = b.addScratch(key+"/"+t.Key, t.Seed,
			func(_ context.Context, r *rng.RNG, s *core.Scratch) (any, error) { return t.Run(r, s) })
	}
	return func(results []any) (core.ScalingResult, error) {
		sub := make([]any, len(idx))
		for i, j := range idx {
			sub[i] = results[j]
		}
		return sweep.Collect(sub)
	}
}

// exactBound adapts an RNG-free theorem bound to the addScalingCell
// bound signature.
func exactBound(f func(n int) (float64, error)) func(n int, r *rng.RNG) (float64, error) {
	return func(n int, _ *rng.RNG) (float64, error) { return f(n) }
}

// moriScratch projects a worker scratch onto its Móri generation
// buffers; nil stays nil (fresh allocation).
func moriScratch(s *core.Scratch) *mori.Scratch {
	if s == nil {
		return nil
	}
	return &s.Model.Mori
}

// cfScratch projects a worker scratch onto its Cooper–Frieze
// generation buffers; nil stays nil.
func cfScratch(s *core.Scratch) *cooperfrieze.Scratch {
	if s == nil {
		return nil
	}
	return &s.Model.CF
}
