package core

import (
	"context"
	"reflect"
	"testing"

	"scalefree/internal/engine"
	"scalefree/internal/mori"
	"scalefree/internal/search"
)

// TestMeasureScalingContextMatchesSerial verifies the parallel scaling
// sweep reproduces the serial MeasureScaling result exactly — same
// summaries, same samples, same fit — for several worker counts.
func TestMeasureScalingContextMatchesSerial(t *testing.T) {
	sizes := []int{64, 128, 256}
	spec := SearchSpec{
		Algorithm: search.NewDegreeGreedyWeak(),
		Reps:      8,
		Seed:      1234,
	}
	genFor := func(n int) GraphGen { return MoriGen(mori.Config{N: n, M: 1, P: 0.5}) }
	boundFor := func(n int) (float64, error) { return Theorem1Bound(n, 0.5) }

	serial, err := MeasureScaling(sizes, genFor, boundFor, spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 32} {
		parallel, err := MeasureScalingContext(context.Background(), sizes, genFor, boundFor, spec,
			engine.Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("workers=%d result differs from serial:\nserial:   %+v\nparallel: %+v",
				workers, serial, parallel)
		}
	}
}

// TestMeasureOneMatchesMeasureSearch pins the per-replication
// decomposition: MeasureSearch must be exactly the ordered sequence of
// MeasureOne outcomes.
func TestMeasureOneMatchesMeasureSearch(t *testing.T) {
	spec := SearchSpec{
		Algorithm: search.NewDegreeGreedyWeak(),
		Reps:      6,
		Seed:      99,
	}
	gen := MoriGen(mori.Config{N: 128, M: 1, P: 0.5})
	m, err := MeasureSearch(gen, spec)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < spec.Reps; rep++ {
		o, err := MeasureOne(gen, spec, rep)
		if err != nil {
			t.Fatal(err)
		}
		if o.Requests != m.Samples[rep] {
			t.Errorf("rep %d: MeasureOne requests %v != MeasureSearch sample %v",
				rep, o.Requests, m.Samples[rep])
		}
	}
}
