package equivalence

import (
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

func TestWindowPermutationValidation(t *testing.T) {
	if _, err := WindowPermutation(5, 2, 4, []int{0}); err == nil {
		t.Error("wrong perm length accepted")
	}
	if _, err := WindowPermutation(5, 2, 4, []int{0, 0}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := WindowPermutation(5, 2, 4, []int{0, 5}); err == nil {
		t.Error("out-of-range perm accepted")
	}
	if _, err := WindowPermutation(3, 2, 4, []int{0, 1}); err == nil {
		t.Error("window past size accepted")
	}
}

func TestWindowPermutationIdentityOutside(t *testing.T) {
	sigma, err := WindowPermutation(6, 2, 4, []int{1, 0}) // swap 3 and 4
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Vertex{0, 1, 2, 4, 3, 5, 6}
	for v := 1; v <= 6; v++ {
		if sigma[v] != want[v] {
			t.Errorf("sigma[%d] = %d, want %d", v, sigma[v], want[v])
		}
	}
}

func TestPermuteTreeSwapsWindowLabels(t *testing.T) {
	// Tree: 2→1, 3→1, 4→2; swap 3 and 4 (window (2,4], both fathers <= 2).
	tree := &mori.Tree{P: 0.5, Fathers: []graph.Vertex{0, 0, 1, 1, 2}}
	sigma, err := WindowPermutation(4, 2, 4, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	image, err := PermuteTree(tree, sigma)
	if err != nil {
		t.Fatal(err)
	}
	// New tree: σ(3)=4 keeps father 1 → 4→1; σ(4)=3 keeps father 2 → 3→2.
	if image.Father(3) != 2 || image.Father(4) != 1 {
		t.Errorf("image fathers = %v", image.Fathers)
	}
}

func TestPermuteTreeRejectsNonIncreasingImage(t *testing.T) {
	// Tree 2→1, 3→1, 4→3: father of 4 is inside the window (2,4], so
	// swapping 3 and 4 maps edge 4→3 to 3→4, which is not increasing.
	tree := &mori.Tree{P: 0.5, Fathers: []graph.Vertex{0, 0, 1, 1, 3}}
	sigma, err := WindowPermutation(4, 2, 4, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PermuteTree(tree, sigma); err == nil {
		t.Error("non-increasing image accepted")
	}
}

func TestPermuteTreeIdentity(t *testing.T) {
	tree, err := mori.GenerateTree(rng.New(5), 30, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	sigma := make([]graph.Vertex, 31)
	for v := 1; v <= 30; v++ {
		sigma[v] = graph.Vertex(v)
	}
	image, err := PermuteTree(tree, sigma)
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 30; k++ {
		if image.Father(graph.Vertex(k)) != tree.Father(graph.Vertex(k)) {
			t.Fatalf("identity permutation changed father of %d", k)
		}
	}
}

func TestForEachPermutationCounts(t *testing.T) {
	for k, want := range map[int]int{0: 1, 1: 1, 2: 2, 3: 6, 4: 24} {
		count := 0
		seen := map[[4]int]bool{}
		ForEachPermutation(k, func(perm []int) {
			count++
			var key [4]int
			copy(key[:], perm)
			seen[key] = true
		})
		if count != want {
			t.Errorf("k=%d: %d permutations, want %d", k, count, want)
		}
		if k >= 1 && len(seen) != want {
			t.Errorf("k=%d: %d distinct permutations, want %d", k, len(seen), want)
		}
	}
}

func TestVerifyLemma2Exhaustive(t *testing.T) {
	// The core correctness theorem of the equivalence machinery,
	// verified exactly on all trees of sizes 5-7 for several windows
	// and mixing parameters.
	cases := []struct {
		size, a, b int
		p          float64
	}{
		{5, 2, 4, 0.5},
		{6, 2, 5, 0.5},
		{6, 3, 5, 0.3},
		{7, 3, 6, 0.7},
		{7, 4, 6, 1.0},
	}
	for _, tc := range cases {
		checked, err := VerifyLemma2(tc.size, tc.a, tc.b, tc.p, 1e-12)
		if err != nil {
			t.Errorf("size=%d window (%d,%d] p=%v: %v", tc.size, tc.a, tc.b, tc.p, err)
			continue
		}
		if checked == 0 {
			t.Errorf("size=%d window (%d,%d]: nothing checked", tc.size, tc.a, tc.b)
		}
	}
}

func TestVerifyLemma2CatchesBrokenWindow(t *testing.T) {
	// Permuting a window that includes vertex 2 with a=1 must still
	// work (E forces fathers to vertex 1)... but a window whose event
	// does not actually confer symmetry would fail. Use an intentionally
	// wrong "event": here we simulate it by checking a window where the
	// tree probabilities genuinely differ — permuting (1, 3] without
	// conditioning. VerifyLemma2 conditions correctly, so instead we
	// check the validation path.
	if _, err := VerifyLemma2(5, 0, 3, 0.5, 1e-12); err == nil {
		t.Error("invalid window accepted")
	}
}

func TestConditionalExchangeabilityEmpirical(t *testing.T) {
	// Monte-Carlo version of Lemma 2 on a larger tree than enumeration
	// can reach: conditional on E_{a,b}, the indegree samples of the
	// first and last window vertices must be statistically
	// indistinguishable (KS test), while unconditionally the older
	// vertex has strictly more expected indegree.
	const (
		size = 64
		a    = 57 // window (57, 64], 7 = isqrt(56) vertices
		b    = 64
		p    = 0.5
	)
	r := rng.New(99)
	var condFirst, condLast []float64
	var uncondFirst, uncondLast float64
	total := 0
	for len(condFirst) < 400 && total < 200000 {
		total++
		tree, err := mori.GenerateTree(r, size, p)
		if err != nil {
			t.Fatal(err)
		}
		degs := tree.InDegrees()
		uncondFirst += float64(degs[a+1])
		uncondLast += float64(degs[b])
		ok, err := CheckEvent(tree, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			condFirst = append(condFirst, float64(degs[a+1]))
			condLast = append(condLast, float64(degs[b]))
		}
	}
	if len(condFirst) < 400 {
		t.Fatalf("only %d conditioned samples in %d draws", len(condFirst), total)
	}
	ks, err := stats.KSTwoSample(condFirst, condLast)
	if err != nil {
		t.Fatal(err)
	}
	if ks.PValue < 0.001 {
		t.Errorf("conditional indegree distributions differ: D=%v p=%v", ks.Statistic, ks.PValue)
	}
	// Sanity on the unconditional asymmetry (age bias): vertex a+1 is
	// older and should collect more indegree on average.
	if uncondFirst <= uncondLast {
		t.Errorf("unconditional age bias missing: first %v, last %v", uncondFirst, uncondLast)
	}
}
