// Package configmodel implements the Molloy–Reed configuration model
// with power-law degree sequences — the "pure random graph" family the
// paper discusses under related work, and the substrate on which Adamic
// et al. analyse high-degree search (experiment E8).
//
// Unlike the evolving models, degrees of neighbors here are independent
// (no age/degree correlation), which is exactly the structural
// difference the paper highlights: mean-field analyses that work on
// configuration-model graphs break on preferential-attachment graphs.
//
// Generation: sample a degree sequence from a discrete bounded power
// law P(δ) ∝ δ^(−k), fix parity, then pair half-edge stubs uniformly at
// random. The Simple option erases self-loops and duplicate edges
// afterwards (the "erased configuration model"), which distorts the
// degree sequence only at the extreme tail.
package configmodel

import (
	"fmt"
	"math"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

// Config describes a power-law configuration-model graph.
type Config struct {
	N        int     // number of vertices, >= 2
	Exponent float64 // power-law exponent k > 1 (papers of interest use 2 < k < 3)
	MinDeg   int     // minimum degree, >= 1 (default 1)
	MaxDeg   int     // maximum degree; 0 selects the natural cutoff n^(1/(k-1))
	Simple   bool    // erase self-loops and duplicate edges
}

// Validate checks the configuration and returns the effective degree
// cutoff.
func (c Config) Validate() (maxDeg int, err error) {
	if c.N < 2 {
		return 0, fmt.Errorf("configmodel: N = %d < 2", c.N)
	}
	if !(c.Exponent > 1) {
		return 0, fmt.Errorf("configmodel: exponent %v must exceed 1", c.Exponent)
	}
	minDeg := c.MinDeg
	if minDeg == 0 {
		minDeg = 1
	}
	if minDeg < 1 {
		return 0, fmt.Errorf("configmodel: MinDeg = %d < 1", c.MinDeg)
	}
	maxDeg = c.MaxDeg
	if maxDeg == 0 {
		maxDeg = int(math.Pow(float64(c.N), 1/(c.Exponent-1)))
	}
	if maxDeg > c.N-1 {
		maxDeg = c.N - 1
	}
	if maxDeg < minDeg {
		return 0, fmt.Errorf("configmodel: effective degree range [%d, %d] is empty", minDeg, maxDeg)
	}
	return maxDeg, nil
}

// Generate draws a configuration-model graph. Every edge is recorded
// once with an arbitrary orientation; searching uses the undirected
// view. The graph may be disconnected; use GiantComponent for search
// workloads.
func (c Config) Generate(r *rng.RNG) (*graph.Graph, error) {
	maxDeg, err := c.Validate()
	if err != nil {
		return nil, err
	}
	minDeg := c.MinDeg
	if minDeg == 0 {
		minDeg = 1
	}
	pl, err := rng.NewPowerLaw(c.Exponent, minDeg, maxDeg)
	if err != nil {
		return nil, fmt.Errorf("configmodel: building degree sampler: %w", err)
	}
	degs := make([]int, c.N+1)
	total := 0
	for v := 1; v <= c.N; v++ {
		degs[v] = pl.Sample(r)
		total += degs[v]
	}
	if total%2 == 1 {
		// Fix parity by granting one extra stub to a uniform vertex.
		v := r.IntRange(1, c.N)
		degs[v]++
		total++
	}

	stubs := make([]graph.Vertex, 0, total)
	for v := 1; v <= c.N; v++ {
		for i := 0; i < degs[v]; i++ {
			stubs = append(stubs, graph.Vertex(v))
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })

	b := graph.NewBuilder(c.N, total/2)
	b.AddVertices(c.N)
	if c.Simple {
		seen := make(map[[2]graph.Vertex]bool, total/2)
		for i := 0; i+1 < len(stubs); i += 2 {
			u, v := stubs[i], stubs[i+1]
			if u == v {
				continue
			}
			key := [2]graph.Vertex{u, v}
			if u > v {
				key = [2]graph.Vertex{v, u}
			}
			if seen[key] {
				continue
			}
			seen[key] = true
			b.AddEdge(u, v)
		}
	} else {
		for i := 0; i+1 < len(stubs); i += 2 {
			b.AddEdge(stubs[i], stubs[i+1])
		}
	}
	return b.Freeze(), nil
}

// GenerateGiant draws a configuration-model graph and extracts its
// largest connected component, relabelled 1..size. It returns the
// component and the original identities (origID[newID]).
func (c Config) GenerateGiant(r *rng.RNG) (*graph.Graph, []graph.Vertex, error) {
	g, err := c.Generate(r)
	if err != nil {
		return nil, nil, err
	}
	sub, orig := graph.LargestComponent(g)
	return sub, orig, nil
}
