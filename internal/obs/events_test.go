package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestEventLogSchema pins the JSONL schema: fixed field order, absent
// fields omitted, seq monotonic from 1, RFC3339Nano UTC timestamps.
func TestEventLogSchema(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb)
	fixed := time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC)
	l.now = func() time.Time { return fixed }

	l.Emit(Event{Event: "worker_join", Worker: "w1", Conn: 3})
	l.Emit(Event{Event: "lease_grant", Worker: "w1", Exp: "E4", Lease: 9, Chunk: ChunkRange(0, 8)})
	l.Emit(Event{Event: "cache_evict", N: 4096, Msg: "evicted 2 entries"})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	want := `{"seq":1,"ts":"2026-08-08T12:00:00.123456789Z","event":"worker_join","worker":"w1","conn":3}
{"seq":2,"ts":"2026-08-08T12:00:00.123456789Z","event":"lease_grant","worker":"w1","exp":"E4","lease":9,"chunk":"[0,8)"}
{"seq":3,"ts":"2026-08-08T12:00:00.123456789Z","event":"cache_evict","n":4096,"msg":"evicted 2 entries"}
`
	if sb.String() != want {
		t.Errorf("event log:\n--- got ---\n%s\n--- want ---\n%s", sb.String(), want)
	}
}

// TestEventLogRoundTrip: every line re-parses into an equal Event —
// the schema is machine-consumable, not just printable.
func TestEventLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	l, err := OpenEventLog(path)
	if err != nil {
		t.Fatal(err)
	}
	in := []Event{
		{Event: "worker_join", Worker: "host:1"},
		{Event: "fault_injected", Op: "reset", Conn: 2, N: 17},
		{Event: "sweep_abort", Msg: `worker said "no" \o/`},
	}
	for _, e := range in {
		l.Emit(e)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != len(in) {
		t.Fatalf("wrote %d lines, want %d", len(lines), len(in))
	}
	for i, line := range lines {
		var got Event
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
		if got.Seq != uint64(i+1) {
			t.Errorf("line %d seq = %d, want %d", i, got.Seq, i+1)
		}
		if _, err := time.Parse(time.RFC3339Nano, got.TS); err != nil {
			t.Errorf("line %d ts %q: %v", i, got.TS, err)
		}
		want := in[i]
		want.Seq, want.TS = got.Seq, got.TS
		if got != want {
			t.Errorf("line %d round-trip = %+v, want %+v", i, got, want)
		}
	}
}

// TestEventLogStickyError: a failed write latches, later emits no-op,
// Err and Close both report the first failure, and the error never
// resets or gets replaced by a later one.
func TestEventLogStickyError(t *testing.T) {
	l := NewEventLog(failWriter{})
	l.Emit(Event{Event: "x"})
	first := l.Err()
	if first == nil {
		t.Fatal("write error not latched")
	}
	l.Emit(Event{Event: "y"}) // must not panic or reset the error
	if got := l.Err(); got != first {
		t.Errorf("Err() changed after later emit: %v -> %v", first, got)
	}
	if l.Close() == nil {
		t.Error("Close did not report the write error")
	}
	if got := l.Err(); got != first {
		t.Errorf("Close replaced the first error: %v -> %v", first, got)
	}
}

// TestEventLogRotationFailureSticky: a rotation that cannot rename
// (the live file was moved out from under the log) latches like any
// write error instead of wedging or silently dropping events.
func TestEventLogRotationFailureSticky(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	l, err := OpenEventLogRotating(path, 80)
	if err != nil {
		t.Fatal(err)
	}
	l.Emit(Event{Event: "first"})
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	// Sabotage the rotation: the rename source vanishes.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Emit(Event{Event: "overflow", Msg: strings.Repeat("x", 64)})
	}
	if l.Err() == nil {
		t.Fatal("failed rotation did not latch an error")
	}
	if l.Close() == nil {
		t.Error("Close did not report the rotation error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, os.ErrClosed }

// TestEventLogRotation: a size-limited log rolls events.jsonl into
// events.1.jsonl, events.2.jsonl, ... (lowest suffix oldest), keeps
// every rotated file within the byte limit, and numbers events
// monotonically across the whole sequence of files.
func TestEventLogRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	const maxBytes = 256
	l, err := OpenEventLogRotating(path, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	fixed := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	l.now = func() time.Time { return fixed }
	const total = 40
	for i := 0; i < total; i++ {
		l.Emit(Event{Event: "lease_grant", Worker: "w1", Exp: "E4", Lease: uint64(i + 1)})
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Collect rotated files in suffix order, then the live file.
	var paths []string
	for k := 1; ; k++ {
		p := rotationName(path, k)
		if _, err := os.Stat(p); err != nil {
			break
		}
		paths = append(paths, p)
	}
	if len(paths) == 0 {
		t.Fatalf("no rotated files for %d events at %d max bytes", total, maxBytes)
	}
	paths = append(paths, path)

	var seq uint64
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) > maxBytes {
			t.Errorf("%s holds %d bytes, limit %d", filepath.Base(p), len(data), maxBytes)
		}
		for _, line := range strings.Split(strings.TrimSuffix(string(data), "\n"), "\n") {
			var ev Event
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				t.Fatalf("%s: %v\n%s", filepath.Base(p), err, line)
			}
			if ev.Seq != seq+1 {
				t.Fatalf("%s: seq %d after %d, want monotonic across rotations", filepath.Base(p), ev.Seq, seq)
			}
			seq = ev.Seq
		}
	}
	if seq != total {
		t.Errorf("replayed %d events across %d files, want %d", seq, len(paths), total)
	}
}

// TestRotationName pins the suffix-before-extension derivation.
func TestRotationName(t *testing.T) {
	for _, tc := range []struct {
		path, want string
		k          int
	}{
		{"events.jsonl", "events.1.jsonl", 1},
		{"events.jsonl", "events.12.jsonl", 12},
		{"/var/log/sweep.jsonl", "/var/log/sweep.3.jsonl", 3},
		{"events", "events.1", 1},
	} {
		if got := rotationName(tc.path, tc.k); got != tc.want {
			t.Errorf("rotationName(%q, %d) = %q, want %q", tc.path, tc.k, got, tc.want)
		}
	}
}
