// Package obs is the fleet observability layer: a zero-dependency
// metrics registry (counters, gauges, fixed-bucket histograms) with
// Prometheus text-format exposition, a structured JSONL sweep event
// log, and the HTTP ops plane (/metrics, /status, /healthz, pprof)
// the coordinator and worker processes serve under -status-addr.
//
// Design constraints, in order:
//
//  1. Determinism boundary. Metrics observe the computation; they never
//     feed it. Nothing in this package produces a value that flows into
//     trial results, trial scheduling, or RNG streams, so a sweep with
//     observability fully enabled renders tables byte-identical to one
//     without (pinned by golden tests in internal/experiment).
//  2. Hot-path cost. Counter.Add, Gauge.Set, and Histogram.Observe are
//     single atomic operations (Observe adds one CAS loop for the sum)
//     with zero steady-state allocations — AllocsPerRun-pinned — and no
//     locks. Registration takes a lock but happens once, at wire-up.
//  3. Nil safety. Every metric method is a no-op on a nil receiver, so
//     instrumented code paths need no "is observability on" branches:
//     unwired metrics simply do nothing.
//
// Registration is get-or-create: asking a registry for a name it
// already holds returns the existing metric (the first help string
// wins), and only a kind mismatch panics — so package-level metric
// variables, tests, and repeated wire-ups coexist on the process-global
// Default() registry.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefLatencyBuckets is the default histogram bucketing for trial and
// lease latencies, in seconds: roughly logarithmic from 100µs (cheap
// small-n trials) to two minutes (full-scale giant-graph trials).
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// desc is a metric's exposition identity.
type desc struct {
	name string
	help string
}

// metric is anything a registry can expose.
type metric interface {
	appendText(b []byte) []byte
}

// Registry holds named metrics and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry or Default.
type Registry struct {
	mu     sync.Mutex
	byName map[string]metric
}

// NewRegistry returns an empty registry. Most code should use
// Default(); fresh registries are for tests and embedded scopes.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]metric{}}
}

var defaultRegistry = NewRegistry()

// Default returns the process-global registry — the one package-level
// metrics register on and -status-addr serves at /metrics.
func Default() *Registry { return defaultRegistry }

// mustValidName panics on names outside the Prometheus grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* — registration happens at init/wire-up, so
// a bad name is a programming error, not a runtime condition.
func mustValidName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// register is the get-or-create core: it returns the existing metric
// under name if one exists (panicking when its kind differs), or
// installs the one built by mk.
func (r *Registry) register(name string, want string, mk func(d desc) metric, help string) metric {
	mustValidName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if kindOf(m) != want {
			panic(fmt.Sprintf("obs: metric %q already registered as a %s, requested as a %s", name, kindOf(m), want))
		}
		return m
	}
	m := mk(desc{name: name, help: help})
	r.byName[name] = m
	return m
}

func kindOf(m metric) string {
	switch m.(type) {
	case *Counter:
		return "counter"
	case *Gauge:
		return "gauge"
	case *gaugeFunc:
		return "gauge func"
	case *Histogram:
		return "histogram"
	case *CounterVec:
		return "counter vec"
	case *HistogramVec:
		return "histogram vec"
	case *infoMetric:
		return "info"
	default:
		return fmt.Sprintf("%T", m)
	}
}

// Counter registers (or returns the existing) monotonically increasing
// counter under name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, "counter", func(d desc) metric { return &Counter{d: d} }, help).(*Counter)
}

// Gauge registers (or returns the existing) integer gauge under name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, "gauge", func(d desc) metric { return &Gauge{d: d} }, help).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for cheap point-in-time reads (queue depths, table sizes)
// where updating a gauge on every transition would be invasive. fn
// must be safe for concurrent use. Re-registering a name keeps the
// first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, "gauge func", func(d desc) metric { return &gaugeFunc{d: d, fn: fn} }, help)
}

// Histogram registers (or returns the existing) fixed-bucket histogram
// under name. buckets are the inclusive upper bounds in increasing
// order, excluding +Inf (an overflow bucket is implicit); nil uses
// DefLatencyBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, "histogram", func(d desc) metric { return newHistogram(d, buckets) }, help).(*Histogram)
}

// CounterVec registers (or returns the existing) family of counters
// distinguished by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return r.register(name, "counter vec", func(d desc) metric {
		return &CounterVec{d: d, label: label, children: map[string]*Counter{}}
	}, help).(*CounterVec)
}

// HistogramVec registers (or returns the existing) family of
// histograms distinguished by one label. Bucket semantics follow
// Histogram.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	return r.register(name, "histogram vec", func(d desc) metric {
		return &HistogramVec{d: d, label: label, buckets: buckets, children: map[string]*Histogram{}}
	}, help).(*HistogramVec)
}

// Info registers (or returns) a constant info-pattern metric: a gauge
// fixed at 1 whose ordered label pairs carry identity (build revision,
// version) that belongs in labels, not in a value. Re-registering a
// name keeps the first labels.
func (r *Registry) Info(name, help string, labels [][2]string) {
	r.register(name, "info", func(d desc) metric { return &infoMetric{d: d, labels: labels} }, help)
}

// infoMetric is the constant gauge behind Registry.Info.
type infoMetric struct {
	d      desc
	labels [][2]string
}

// Counter is a monotonically increasing count. All methods are
// atomic, allocation-free, and nil-safe.
type Counter struct {
	d desc
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n; negative n panics (counters only go up).
//
//sf:hotpath
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	if n < 0 {
		panic("obs: counter decrement")
	}
	c.v.Add(n)
}

// Value reads the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer value that can go up and down. All methods are
// atomic, allocation-free, and nil-safe.
type Gauge struct {
	d desc
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds n (negative allowed).
//
//sf:hotpath
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value reads the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// gaugeFunc is a scrape-time computed gauge.
type gaugeFunc struct {
	d  desc
	fn func() float64
}

// Histogram counts observations into fixed buckets. Observe is
// lock-free: one atomic add for the bucket, one for the count, and a
// CAS loop for the float64 sum; zero allocations.
type Histogram struct {
	d      desc
	upper  []float64      // sorted upper bounds, +Inf excluded
	counts []atomic.Int64 // len(upper)+1; last is the overflow (+Inf) bucket
	count  atomic.Int64
	sum    atomicFloat
}

func newHistogram(d desc, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	upper := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if math.IsInf(b, +1) {
			continue // the overflow bucket is implicit
		}
		if len(upper) > 0 && b <= upper[len(upper)-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not strictly increasing", d.name))
		}
		upper = append(upper, b)
	}
	return &Histogram{d: d, upper: upper, counts: make([]atomic.Int64, len(upper)+1)}
}

// Observe records one value. Nil-safe.
//
//sf:hotpath
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket lists are short (~20) and the scan is
	// branch-predictable; a binary search saves nothing measurable and
	// costs clarity.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
}

// ObserveDuration records d in seconds — the Prometheus base unit for
// latency series.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count reads the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// atomicFloat is a float64 updated by CAS on its bit pattern.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// CounterVec is a family of counters keyed by one label value. With
// takes the vec's mutex for the child lookup — callers on hot paths
// should resolve their child once and hold on to it.
type CounterVec struct {
	d        desc
	label    string
	mu       sync.Mutex
	children map[string]*Counter
}

// With returns the child counter for the label value, creating it on
// first use. Nil-safe (returns a nil *Counter, whose methods no-op).
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[value]
	if !ok {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

// HistogramVec is a family of histograms keyed by one label value.
type HistogramVec struct {
	d        desc
	label    string
	buckets  []float64
	mu       sync.Mutex
	children map[string]*Histogram
}

// With returns the child histogram for the label value, creating it on
// first use. Nil-safe.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[value]
	if !ok {
		h = newHistogram(desc{}, v.buckets)
		v.children[value] = h
	}
	return h
}

// sortedNames snapshots the registry's metric names in exposition
// order.
func (r *Registry) sortedNames() ([]string, []metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	ms := make([]metric, len(names))
	for i, n := range names {
		ms[i] = r.byName[n]
	}
	return names, ms
}
