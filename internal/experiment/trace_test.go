package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/faultnet"
	"scalefree/internal/obs/trace"
	"scalefree/internal/sweep"
)

// traceEvent mirrors the exported Chrome trace-event fields the
// structural checks below care about.
type traceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Ph    string            `json:"ph"`
	TS    int64             `json:"ts"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	ID    string            `json:"id"`
	Scope string            `json:"s"`
	BP    string            `json:"bp"`
	Args  map[string]string `json:"args"`
}

// TestGoldenTracedChaosSweep is the determinism-boundary guarantee for
// the tracing layer: a coordinated chaos sweep with full tracing on —
// coordinator recorder, wire-propagated contexts, worker span batches
// riding COMPLETE lines — still renders tables byte-identical to the
// untraced single-process run, and the merged timeline it exports is
// structurally sound Chrome trace JSON: every B has its E in stack
// order per (pid,tid) lane, and every flow 'f' terminates a flow 's'.
func TestGoldenTracedChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	// E4 (pure probability trials) plus E12 (graph generate/freeze/
	// search trials through the scratch path), so the timeline carries
	// both plain trial spans and the phase spans inside them.
	var selected []Experiment
	for _, id := range []string{"E4", "E12"} {
		exp, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		selected = append(selected, exp)
	}
	cfg := Config{Seed: 2024, Scale: 0.05}
	goldens := make([]string, len(selected))
	for i, exp := range selected {
		serial, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		goldens[i] = renderAll(t, serial)
	}

	rec := trace.New()
	rec.ProcName = "coordinator"

	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	faults := faultnet.Default()
	faults.DelayMax = 5 * time.Millisecond
	flis := faultnet.Listen(inner, 1889, faults)

	outcome := make(chan struct {
		tables [][]Table
		err    error
	}, 1)
	go func() {
		tables, err := CoordinateSweep(context.Background(), selected, cfg, flis,
			sweep.CoordOptions{ChunkSize: 3, LeaseTTL: 2 * time.Second, Linger: time.Second,
				Trace: rec})
		outcome <- struct {
			tables [][]Table
			err    error
		}{tables, err}
	}()

	// Workers wire one recorder into both the engine (trial and phase
	// spans) and the sweep client (lease spans, COMPLETE batches),
	// created disabled exactly as cmd/experiments does: the traced
	// LEASE line is what turns recording on.
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wrec := trace.New()
			wrec.SetEnabled(false)
			wopts := sweep.WorkerOptions{
				Name:          fmt.Sprintf("trace-chaos-%d", w),
				DialRetries:   60,
				ReconnectBase: 5 * time.Millisecond,
				ReconnectMax:  100 * time.Millisecond,
				IOTimeout:     time.Second,
				Trace:         wrec,
			}
			if _, err := SweepWorker(context.Background(), selected, cfg, flis.Addr().String(),
				engine.Options{Workers: 2, Trace: wrec}, nil, wopts); err != nil {
				t.Logf("worker %d exited: %v", w, err)
			}
		}(w)
	}
	out := <-outcome
	wg.Wait()
	if out.err != nil {
		t.Fatalf("traced chaos sweep failed: %v (injected %d faults)", out.err, flis.Injected())
	}

	// The determinism boundary: fully traced output is byte-identical
	// to the bare single-process run.
	for i := range selected {
		if got := renderAll(t, out.tables[i]); got != goldens[i] {
			t.Errorf("traced chaos sweep diverges from single-process run for %s:\n--- traced ---\n%s\n--- single ---\n%s",
				selected[i].ID, got, goldens[i])
		}
	}
	if flis.Injected() == 0 {
		t.Error("fault profile injected nothing; the chaos run degenerated to the clean path")
	}

	var buf bytes.Buffer
	if err := rec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var envelope struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &envelope); err != nil {
		t.Fatalf("trace export is not well-formed JSON: %v", err)
	}
	events := envelope.TraceEvents
	if len(events) == 0 {
		t.Fatal("trace export is empty")
	}

	// Matched B/E pairs: within each (pid,tid) lane, events appear in
	// emission order, so a simple depth counter must never go negative
	// and must end at zero.
	type laneKey struct{ pid, tid int }
	depth := map[laneKey]int{}
	sIDs := map[string]int{}
	fIDs := map[string]int{}
	procs := map[int]string{}
	cats := map[string]int{}
	for i, ev := range events {
		if ev.Ph == "M" {
			if ev.Name == "process_name" {
				procs[ev.PID] = ev.Args["name"]
			}
			continue
		}
		cats[ev.Cat]++
		switch ev.Ph {
		case "B":
			depth[laneKey{ev.PID, ev.TID}]++
		case "E":
			k := laneKey{ev.PID, ev.TID}
			depth[k]--
			if depth[k] < 0 {
				t.Fatalf("event %d: unmatched E on pid=%d tid=%d", i, ev.PID, ev.TID)
			}
		case "s":
			if ev.ID == "" {
				t.Errorf("event %d: flow 's' without id", i)
			}
			sIDs[ev.ID]++
		case "f":
			if ev.ID == "" {
				t.Errorf("event %d: flow 'f' without id", i)
			}
			if ev.BP != "e" {
				t.Errorf("event %d: flow 'f' without bp=e", i)
			}
			fIDs[ev.ID]++
		case "i":
			if ev.Scope != "t" {
				t.Errorf("event %d: instant without thread scope", i)
			}
		default:
			t.Errorf("event %d: unexpected phase %q", i, ev.Ph)
		}
	}
	for k, d := range depth {
		if d != 0 {
			t.Errorf("lane pid=%d tid=%d ends at depth %d, want 0 (unmatched B)", k.pid, k.tid, d)
		}
	}

	// Every flow 'f' terminates a flow 's' someone emitted; the reverse
	// need not hold (a worker's terminating 'f' for the final lease can
	// be lost with the connection), but at least one grant arrow must
	// have landed for the merged timeline to mean anything.
	matched := 0
	for id := range fIDs {
		if sIDs[id] == 0 {
			t.Errorf("flow 'f' id %s has no originating 's'", id)
		} else {
			matched++
		}
	}
	if matched == 0 {
		t.Error("no matched s→f flow pair; wire propagation recorded nothing")
	}

	// The merged timeline spans the fleet: the coordinator lane plus at
	// least one worker process, with lease spans on the coordinator and
	// trial spans shipped back from workers.
	if procs[0] != "coordinator" {
		t.Errorf("process 0 is %q, want coordinator", procs[0])
	}
	if len(procs) < 2 {
		t.Errorf("export names %d processes, want coordinator plus at least one worker", len(procs))
	}
	for _, cat := range []string{"lease", "trial", "phase", "reduce"} {
		if cats[cat] == 0 {
			t.Errorf("export holds no %q-category events (got %v)", cat, cats)
		}
	}
}
