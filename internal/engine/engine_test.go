package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"scalefree/internal/rng"
)

func makeTrials(n int) []Trial {
	trials := make([]Trial, n)
	for i := range trials {
		trials[i] = Trial{
			Index: i,
			Key:   fmt.Sprintf("trial-%d", i),
			Seed:  rng.DeriveSeed(99, uint64(i)),
		}
	}
	return trials
}

// run one deterministic "workload": a few draws from the per-trial RNG
// mixed with the trial identity.
func workload(_ context.Context, t Trial, r *rng.RNG) (uint64, error) {
	sum := uint64(t.Index)
	for i := 0; i < 100; i++ {
		sum += r.Uint64()
	}
	return sum, nil
}

func TestRunResultsInTrialOrder(t *testing.T) {
	trials := makeTrials(50)
	got, err := Run(context.Background(), trials, Options{Workers: 1}, workload)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want, _ := workload(context.Background(), trials[i], rng.New(trials[i].Seed))
		if v != want {
			t.Errorf("result[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestRunWorkerCountInvariance(t *testing.T) {
	trials := makeTrials(97)
	serial, err := Run(context.Background(), trials, Options{Workers: 1}, workload)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 200} {
		parallel, err := Run(context.Background(), trials, Options{Workers: workers}, workload)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				t.Fatalf("workers=%d diverged at trial %d: %d != %d",
					workers, i, parallel[i], serial[i])
			}
		}
	}
}

func TestRunPerTrialRNGSeededFromTrialSeed(t *testing.T) {
	trials := makeTrials(8)
	got, err := Run(context.Background(), trials, Options{Workers: 4},
		func(_ context.Context, _ Trial, r *rng.RNG) (uint64, error) {
			return r.Uint64(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trials {
		if want := rng.New(tr.Seed).Uint64(); got[i] != want {
			t.Errorf("trial %d RNG not seeded from Trial.Seed: %d != %d", i, got[i], want)
		}
	}
}

func TestRunErrorCarriesTrialKey(t *testing.T) {
	trials := makeTrials(10)
	boom := errors.New("boom")
	_, err := Run(context.Background(), trials, Options{Workers: 1},
		func(_ context.Context, t Trial, _ *rng.RNG) (int, error) {
			if t.Index == 3 {
				return 0, boom
			}
			return t.Index, nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("error chain lost the cause: %v", err)
	}
	if want := "trial-3"; err == nil || !contains(err.Error(), want) {
		t.Fatalf("error %q does not name the failing trial %q", err, want)
	}
}

func TestRunErrorCancelsRemainingTrials(t *testing.T) {
	trials := makeTrials(100)
	var ran sync.Map
	_, err := Run(context.Background(), trials, Options{Workers: 2},
		func(_ context.Context, t Trial, _ *rng.RNG) (int, error) {
			ran.Store(t.Index, true)
			if t.Index == 0 {
				return 0, errors.New("early failure")
			}
			return t.Index, nil
		})
	if err == nil {
		t.Fatal("expected error")
	}
	count := 0
	ran.Range(func(_, _ any) bool { count++; return true })
	if count == len(trials) {
		t.Error("failure did not stop trial scheduling: every trial still ran")
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	trials := makeTrials(20)
	ran := 0
	_, err := Run(ctx, trials, Options{Workers: 1},
		func(_ context.Context, t Trial, _ *rng.RNG) (int, error) {
			ran++
			if t.Index == 2 {
				cancel()
			}
			return t.Index, nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran >= len(trials) {
		t.Error("cancellation did not stop trial scheduling")
	}
}

// TestRunPrefersRealErrorOverCancellationEcho pins the root-cause
// reporting rule: a context-aware trial that returns ctx.Err() after
// another trial's failure cancelled the run must not mask that failure,
// even when it sits at a lower index.
func TestRunPrefersRealErrorOverCancellationEcho(t *testing.T) {
	trials := makeTrials(2)
	boom := errors.New("root cause")
	_, err := Run(context.Background(), trials, Options{Workers: 2},
		func(ctx context.Context, tr Trial, _ *rng.RNG) (int, error) {
			if tr.Index == 0 {
				// Context-aware trial: blocks until the run is cancelled,
				// then echoes the cancellation.
				<-ctx.Done()
				return 0, ctx.Err()
			}
			return 0, boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("cancellation echo masked the root cause: %v", err)
	}
}

func TestRunPanicBecomesError(t *testing.T) {
	trials := makeTrials(4)
	_, err := Run(context.Background(), trials, Options{Workers: 2},
		func(_ context.Context, t Trial, _ *rng.RNG) (int, error) {
			if t.Index == 1 {
				panic("kaboom")
			}
			return t.Index, nil
		})
	if err == nil || !contains(err.Error(), "kaboom") {
		t.Fatalf("panic not converted to error: %v", err)
	}
}

func TestRunProgressStream(t *testing.T) {
	trials := makeTrials(30)
	var events []Progress
	_, err := Run(context.Background(), trials, Options{
		Workers:  4,
		Progress: func(p Progress) { events = append(events, p) },
	}, workload)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(trials) {
		t.Fatalf("got %d progress events, want %d", len(events), len(trials))
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(trials) {
			t.Errorf("event %d: Done=%d Total=%d, want Done=%d Total=%d",
				i, ev.Done, ev.Total, i+1, len(trials))
		}
	}
}

func TestRunEmptyPlan(t *testing.T) {
	got, err := Run(context.Background(), nil, Options{}, workload)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty plan: got %v, %v", got, err)
	}
}

func TestEffectiveWorkers(t *testing.T) {
	if w := (Options{Workers: 8}).effectiveWorkers(3); w != 3 {
		t.Errorf("workers capped at trials: got %d, want 3", w)
	}
	if w := (Options{Workers: 2}).effectiveWorkers(100); w != 2 {
		t.Errorf("explicit workers: got %d, want 2", w)
	}
	if w := (Options{}).effectiveWorkers(100); w < 1 {
		t.Errorf("default workers: got %d, want >= 1", w)
	}
}

func contains(s, sub string) bool { return strings.Contains(s, sub) }

// TestRunScratchPerWorkerScratch verifies the scratch contract: the
// factory runs once per worker goroutine, every trial receives a
// non-nil scratch, and results match the scratch-free path.
func TestRunScratchPerWorkerScratch(t *testing.T) {
	type scratch struct{ uses int }
	trials := make([]Trial, 64)
	for i := range trials {
		trials[i] = Trial{Index: i, Key: "t", Seed: rng.DeriveSeed(9, uint64(i))}
	}
	const workers = 4
	var mu sync.Mutex
	made := 0
	results, err := RunScratch(context.Background(), trials, Options{Workers: workers},
		func() *scratch {
			mu.Lock()
			made++
			mu.Unlock()
			return &scratch{}
		},
		func(_ context.Context, tr Trial, r *rng.RNG, s *scratch) (uint64, error) {
			if s == nil {
				t.Error("trial received nil scratch")
				return 0, nil
			}
			s.uses++
			return r.Uint64(), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if made != workers {
		t.Errorf("scratch factory ran %d times, want one per worker (%d)", made, workers)
	}
	want, err := Run(context.Background(), trials, Options{Workers: 1},
		func(_ context.Context, tr Trial, r *rng.RNG) (uint64, error) { return r.Uint64(), nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("trial %d: scratch path %d != scratch-free path %d", i, results[i], want[i])
		}
	}
}
