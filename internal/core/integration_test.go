package core

import (
	"testing"

	"scalefree/internal/ba"
	"scalefree/internal/configmodel"
	"scalefree/internal/cooperfrieze"
	"scalefree/internal/equivalence"
	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
	"scalefree/internal/search"
)

// TestEveryAlgorithmOnEveryModel is the cross-product integration test:
// all algorithms × all connected evolving models, through the shuffled
// oracle, with invariants checked on every run.
func TestEveryAlgorithmOnEveryModel(t *testing.T) {
	models := []struct {
		name string
		gen  GraphGen
	}{
		{"mori-tree", MoriGen(mori.Config{N: 150, M: 1, P: 0.5})},
		{"mori-merged", MoriGen(mori.Config{N: 75, M: 2, P: 0.75})},
		{"mori-uniform", MoriGen(mori.Config{N: 150, M: 1, P: 0})},
		{"cooper-frieze", CooperFriezeGen(cooperfrieze.Config{
			N: 150, Alpha: 0.7, Beta: 0.5, Gamma: 0.5, Delta: 0.5, AllowLoops: true})},
		{"barabasi-albert", func(r *rng.RNG, _ *Scratch) (*graph.Graph, error) {
			return ba.Config{N: 150, M: 2}.Generate(r)
		}},
	}
	algorithms := append(search.WeakAlgorithms(), search.StrongAlgorithms()...)
	for _, m := range models {
		for _, alg := range algorithms {
			m, alg := m, alg
			t.Run(m.name+"/"+alg.Name(), func(t *testing.T) {
				t.Parallel()
				meas, err := MeasureSearch(m.gen, SearchSpec{
					Algorithm: alg,
					Reps:      4,
					Seed:      rng.DeriveSeed(7, uint64(len(m.name)+len(alg.Name()))),
					Budget:    500000,
				})
				if err != nil {
					t.Fatal(err)
				}
				if meas.FoundRate != 1 {
					t.Errorf("found rate %v on a connected graph with huge budget", meas.FoundRate)
				}
				if meas.Requests.Min < 1 {
					t.Errorf("found a non-start target with %v requests", meas.Requests.Min)
				}
			})
		}
	}
}

// TestBudgetNeverExceeded is the harness-level budget property across
// algorithms, models and budgets.
func TestBudgetNeverExceeded(t *testing.T) {
	gen := MoriGen(mori.Config{N: 400, M: 1, P: 0.5})
	for _, alg := range append(search.WeakAlgorithms(), search.StrongAlgorithms()...) {
		for _, budget := range []int{1, 7, 50} {
			meas, err := MeasureSearch(gen, SearchSpec{
				Algorithm: alg,
				Reps:      3,
				Seed:      11,
				Budget:    budget,
			})
			if err != nil {
				t.Fatalf("%s: %v", alg.Name(), err)
			}
			if int(meas.Requests.Max) > budget {
				t.Errorf("%s exceeded budget %d: max %v", alg.Name(), budget, meas.Requests.Max)
			}
		}
	}
}

// TestMeasuredMeansDominateTheorem1Bound is the headline invariant of
// the reproduction, checked across p and every weak algorithm at small
// scale: E[requests] >= |V|·P(E)/2.
func TestMeasuredMeansDominateTheorem1Bound(t *testing.T) {
	for _, p := range []float64{0, 0.25, 0.5, 1.0} {
		bound, err := Theorem1Bound(512, p)
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range search.WeakAlgorithms() {
			meas, err := MeasureSearch(MoriGen(mori.Config{N: 512, M: 1, P: p}), SearchSpec{
				Algorithm: alg,
				Reps:      10,
				Seed:      rng.DeriveSeed(13, uint64(p*100)),
			})
			if err != nil {
				t.Fatalf("p=%v %s: %v", p, alg.Name(), err)
			}
			if meas.Requests.Mean < bound {
				t.Errorf("p=%v: %s mean %.1f below Theorem-1 bound %.1f",
					p, alg.Name(), meas.Requests.Mean, bound)
			}
		}
	}
}

// TestRandomTargetDistinctFromStart checks the random-workload path of
// the harness.
func TestRandomTargetDistinctFromStart(t *testing.T) {
	gen := func(r *rng.RNG, _ *Scratch) (*graph.Graph, error) {
		g, _, err := configmodel.Config{N: 500, Exponent: 2.3, MinDeg: 2}.GenerateGiant(r)
		return g, err
	}
	meas, err := MeasureSearch(gen, SearchSpec{
		Algorithm:    search.NewDegreeGreedyStrong(),
		Reps:         20,
		Seed:         17,
		RandomStart:  true,
		RandomTarget: true,
		Budget:       100000,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct start/target on a connected component: never a free find.
	if meas.Requests.Min < 1 {
		t.Errorf("random target coincided with start: min requests %v", meas.Requests.Min)
	}
	if meas.FoundRate != 1 {
		t.Errorf("found rate %v", meas.FoundRate)
	}
}

// TestBoundConsistencyAcrossPackages pins core.Theorem1Bound to the
// equivalence-package primitives it wraps.
func TestBoundConsistencyAcrossPackages(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		for _, p := range []float64{0.25, 0.75} {
			got, err := Theorem1Bound(n, p)
			if err != nil {
				t.Fatal(err)
			}
			want, err := equivalence.Lemma1Bound(n, p)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("n=%d p=%v: core %v != equivalence %v", n, p, got, want)
			}
		}
	}
}
