// Navigability contrasts the two worlds the paper bridges:
//
//   - Kleinberg's grid, where labels are coordinates and greedy routing
//     with local knowledge delivers in O(log² n) steps at r = 2;
//   - random scale-free graphs, where labels are ages and the paper
//     proves NO local algorithm — greedy-on-labels included — can beat
//     Ω(√n).
//
// Run with: go run ./examples/navigability
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"scalefree/internal/core"
	"scalefree/internal/experiment"
	"scalefree/internal/graph"
	"scalefree/internal/kleinberg"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
	"scalefree/internal/search"
)

func main() {
	const seed = 7
	const trials = 400

	grid := &experiment.Table{
		Title:   "Kleinberg grids: mean greedy-routing steps (navigable world)",
		Columns: []string{"n", "r=0", "r=1", "r=2", "r=3", "ln²n"},
		Notes:   []string{"r = 2 tracks ln²n; other exponents drift polynomial (r<2 separates slowly at these sizes)"},
	}
	for _, L := range []int{32, 64, 128} {
		n := L * L
		row := []interface{}{n}
		for _, rExp := range []float64{0, 1, 2, 3} {
			g, err := kleinberg.Config{L: L, R: rExp}.Generate(rng.New(seed))
			if err != nil {
				log.Fatal(err)
			}
			src := rng.New(seed + 1)
			total := 0
			for i := 0; i < trials; i++ {
				s := graph.Vertex(src.IntRange(1, n))
				t := graph.Vertex(src.IntRange(1, n))
				total += g.GreedyRoute(s, t, 0).Steps
			}
			row = append(row, float64(total)/trials)
		}
		ln := math.Log(float64(n))
		row = append(row, ln*ln)
		grid.AddRow(row...)
	}
	if err := grid.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	scaleFree := &experiment.Table{
		Title:   "Scale-free world: label-greedy search on Móri graphs (weak model)",
		Columns: []string{"n", "id-greedy mean", "degree-greedy mean", "Ω bound", "√n"},
		Notes:   []string{"labels are insertion times — the closest analogue of coordinates — yet cost grows like √n"},
	}
	for _, n := range []int{1024, 4096, 16384} {
		row := []interface{}{n}
		for _, alg := range []search.Algorithm{search.NewIDGreedyWeak(), search.NewDegreeGreedyWeak()} {
			m, err := core.MeasureSearch(
				core.MoriGen(mori.Config{N: n, M: 1, P: 0.5}),
				core.SearchSpec{Algorithm: alg, Reps: 16, Seed: seed})
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, m.Requests.Mean)
		}
		bound, err := core.Theorem1Bound(n, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		row = append(row, bound, math.Sqrt(float64(n)))
		scaleFree.AddRow(row...)
	}
	if err := scaleFree.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println("The asymmetry is the paper's point: navigability is a property of the")
	fmt.Println("label structure, not of short diameters. Kleinberg lattices embed a")
	fmt.Println("metric into labels; evolving scale-free graphs make the youngest √n")
	fmt.Println("labels statistically interchangeable, so no local rule can home in.")
}
