package search

import (
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
)

func TestShuffledOracleProtocolInvariants(t *testing.T) {
	// Every weak-model invariant must survive slot shuffling: degrees
	// unchanged, each slot resolves to a real neighbor, the multiset of
	// resolved endpoints equals the true neighbor multiset.
	tree, err := mori.GenerateTree(rng.New(3), 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	o, err := NewOracleShuffled(g, 1, 60, Weak, 77)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&Flood{}).Search(o, rng.New(1), 0); err != nil {
		t.Fatal(err)
	}
	if !o.Found() {
		t.Fatal("flood failed")
	}
	for _, v := range o.Discovered() {
		view, _ := o.ViewOf(v)
		if view.Degree != g.Degree(v) {
			t.Fatalf("vertex %d: visible degree %d != %d", v, view.Degree, g.Degree(v))
		}
		if view.Unresolved != 0 {
			continue // flood may stop early once the target is revealed
		}
		want := map[graph.Vertex]int{}
		for _, h := range g.Incident(v) {
			want[h.Other]++
		}
		got := map[graph.Vertex]int{}
		for _, w := range view.Resolved {
			got[w]++
		}
		for w, c := range want {
			if got[w] != c {
				t.Fatalf("vertex %d: neighbor %d resolved %d times, want %d", v, w, got[w], c)
			}
		}
	}
	path, err := o.FoundPath()
	if err != nil {
		t.Fatal(err)
	}
	assertValidPath(t, g, path, 1, 60)
}

func TestShuffledOracleSelfLoopAndParallelEdges(t *testing.T) {
	b := graph.NewBuilder(2, 3)
	b.AddVertices(2)
	b.AddEdge(1, 1)
	b.AddEdge(2, 1)
	b.AddEdge(2, 1)
	g := b.Freeze()
	for seed := uint64(0); seed < 20; seed++ {
		o, err := NewOracleShuffled(g, 1, 2, Weak, seed)
		if err != nil {
			t.Fatal(err)
		}
		view, _ := o.ViewOf(1)
		// Resolve every slot of vertex 1; each answer must be legal and
		// the loop halves must resolve in pairs.
		for slot := 0; slot < view.Degree; slot++ {
			v, _, err := o.RequestEdge(1, slot)
			if err != nil {
				t.Fatalf("seed %d slot %d: %v", seed, slot, err)
			}
			if v != 1 && v != 2 {
				t.Fatalf("seed %d: revealed %d", seed, v)
			}
		}
		selfCount := 0
		for _, w := range view.Resolved {
			if w == 1 {
				selfCount++
			}
		}
		if selfCount != 2 {
			t.Fatalf("seed %d: loop resolved %d halves, want 2 (%v)", seed, selfCount, view.Resolved)
		}
	}
}

func TestShuffledOracleCensorsSlotAge(t *testing.T) {
	// On a star (Móri p=1), the youngest vertex owns the hub's last
	// physical slot. With the plain oracle, resolving hub slots in
	// increasing order finds it deterministically at request n-1; the
	// shuffled oracle must spread it uniformly — its mean position over
	// seeds should be near (n-1)/2, and it must sometimes appear early.
	const n = 200
	tree, err := mori.GenerateTree(rng.New(9), n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	if g.Degree(1) != n-1 {
		t.Fatalf("p=1 tree is not a star (hub degree %d)", g.Degree(1))
	}

	plain, err := NewOracle(g, 1, n, Weak)
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Flood{}).Search(plain, rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != n-1 {
		t.Fatalf("plain oracle: flood found the youngest at request %d, want %d (age leak)", res.Requests, n-1)
	}

	total, early := 0, 0
	const seeds = 60
	for seed := uint64(0); seed < seeds; seed++ {
		o, err := NewOracleShuffled(g, 1, n, Weak, seed)
		if err != nil {
			t.Fatal(err)
		}
		r, err := (&Flood{}).Search(o, rng.New(1), 0)
		if err != nil {
			t.Fatal(err)
		}
		total += r.Requests
		if r.Requests < n/2 {
			early++
		}
	}
	mean := float64(total) / seeds
	if mean > 0.75*float64(n) || mean < 0.25*float64(n) {
		t.Errorf("shuffled mean position %.1f, want ≈%d", mean, n/2)
	}
	if early == 0 {
		t.Error("target never found early across 60 shuffles; slot order still leaks age")
	}
}

func TestShuffledOracleDeterministicPerSeed(t *testing.T) {
	tree, err := mori.GenerateTree(rng.New(5), 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	run := func(seed uint64) int {
		o, err := NewOracleShuffled(g, 1, 100, Weak, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := NewDegreeGreedyWeak().Search(o, rng.New(1), 0)
		if err != nil {
			t.Fatal(err)
		}
		return res.Requests
	}
	if run(42) != run(42) {
		t.Error("same shuffle seed gave different results")
	}
	diff := false
	for seed := uint64(0); seed < 10; seed++ {
		if run(seed) != run(seed+100) {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("10 different shuffle seeds all gave identical request counts; shuffling inert?")
	}
}

func TestShuffledOracleStrongModel(t *testing.T) {
	tree, err := mori.GenerateTree(rng.New(7), 80, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	o, err := NewOracleShuffled(g, 1, 80, Strong, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewDegreeGreedyStrong().Search(o, rng.New(1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("strong search failed under shuffling")
	}
	// Every requested vertex's neighbor multiset must match the graph.
	for _, v := range o.Discovered() {
		view, _ := o.ViewOf(v)
		if view.Resolved == nil {
			continue
		}
		want := map[graph.Vertex]int{}
		for _, h := range g.Incident(v) {
			want[h.Other]++
		}
		got := map[graph.Vertex]int{}
		for _, w := range view.Resolved {
			got[w]++
		}
		for w, c := range want {
			if got[w] != c {
				t.Fatalf("vertex %d: neighbor %d seen %d times, want %d", v, w, got[w], c)
			}
		}
	}
}
