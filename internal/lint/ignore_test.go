package lint

import (
	"strings"
	"testing"
)

// TestIgnoreSuppresses: a reasoned //sflint:ignore on the flagged line
// or the line above removes the diagnostic and the run is clean.
func TestIgnoreSuppresses(t *testing.T) {
	res := RunFixture(t, "ignored", Determinism)
	if !res.Clean() {
		t.Errorf("expected a clean run, got %v", res.All())
	}
}

// TestStaleIgnoreFails: a directive that suppresses nothing is itself
// a finding, so the ignore list can only shrink.
func TestStaleIgnoreFails(t *testing.T) {
	loader := NewLoader("testdata/src", "")
	pkg, err := loader.LoadPackage("staleignore")
	if err != nil {
		t.Fatalf("loading staleignore: %v", err)
	}
	res, err := Run([]*Package{pkg}, Analyzers)
	if err != nil {
		t.Fatalf("running staleignore: %v", err)
	}
	if res.Clean() {
		t.Fatal("stale //sflint:ignore must fail the run")
	}
	if len(res.IgnoreErrors) != 1 {
		t.Fatalf("expected exactly one stale-ignore error, got %v", res.All())
	}
	msg := res.IgnoreErrors[0].Message
	if !strings.Contains(msg, "stale //sflint:ignore determinism") || !strings.Contains(msg, "delete it") {
		t.Errorf("stale-ignore message should name the analyzer and demand deletion, got %q", msg)
	}
}

// TestUnknownAnalyzerIgnoreFails: naming a nonexistent analyzer is a
// load-time error — the directive would otherwise silently never
// match.
func TestUnknownAnalyzerIgnoreFails(t *testing.T) {
	err := fixtureError(t, "badignore")
	if !strings.Contains(err.Error(), `unknown analyzer "nosuch"`) {
		t.Errorf("expected unknown-analyzer error, got %v", err)
	}
}

// TestMissingReasonIgnoreFails: the reason is mandatory.
func TestMissingReasonIgnoreFails(t *testing.T) {
	err := fixtureError(t, "noreason")
	if !strings.Contains(err.Error(), "analyzer name and a reason") {
		t.Errorf("expected missing-reason error, got %v", err)
	}
}
