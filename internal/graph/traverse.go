package graph

import (
	"sync"
	"sync/atomic"

	"scalefree/internal/obs/trace"
)

// Unreachable is the distance reported by BFS for vertices not connected
// to the source.
const Unreachable int32 = -1

// BFS returns undirected hop distances from src to every vertex.
// The result is indexed 1..n; unreachable vertices get Unreachable.
func BFS(g *Graph, src Vertex) []int32 {
	dist := make([]int32, g.NumVertices()+1)
	queue := make([]Vertex, 0, g.NumVertices())
	BFSInto(g, src, dist, queue)
	return dist
}

// BFSInto is BFS with caller-provided buffers for allocation-free reuse
// across many sources. dist must have length n+1; queue is a scratch
// buffer whose contents are overwritten.
//
//sf:hotpath
func BFSInto(g *Graph, src Vertex, dist []int32, queue []Vertex) {
	if src <= 0 || int(src) > g.NumVertices() {
		panic("graph: BFS source out of range")
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	queue = queue[:0]
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, h := range g.Incident(u) {
			if dist[h.Other] == Unreachable {
				dist[h.Other] = du + 1
				queue = append(queue, h.Other)
			}
		}
	}
}

// bfsSerialFrontier is the frontier size below which a level is
// expanded inline rather than fanned out to workers: small levels
// (BFS warm-up, the tail of a component, whole tiny components) cost
// more in goroutine handoff than in work, and processing them serially
// keeps the output contract trivially intact because only one
// goroutine touches the arrays.
const bfsSerialFrontier = 256

// BFSScratch holds the reusable state of frontier-parallel traversal:
// the current/next frontier buffers and one record per worker. The
// zero value is ready to use; after a warm-up call at a given size and
// worker count, subsequent traversals allocate nothing. A scratch
// belongs to one traversal at a time (one goroutine calls in; the
// workers it fans out to are internal).
type BFSScratch struct {
	// Trace, when non-nil, records sampled frontier-level spans
	// ("bfs_level") on the traversing goroutine's trace writer;
	// TraceSample k records every k-th level (0 disables). Level spans
	// are emitted only from the barrier goroutine, never from the
	// fanned-out workers, so the writer's single-goroutine contract
	// holds.
	Trace       *trace.Writer
	TraceSample int

	frontier []Vertex
	next     []Vertex
	workers  []bfsWorker
	wg       sync.WaitGroup
	cursor   atomic.Int64

	// Per-level state read by the worker goroutines; written only
	// between level barriers.
	g        *Graph
	target   []int32
	writeVal int32
	frontLen int
	chunk    int
}

// bfsWorker is one worker's slot: its owning scratch, its private
// next-frontier buffer, and a pre-bound spawn func. Spawning `go w.run()`
// directly would allocate a fresh closure per level per worker (the
// compiler wraps the receiver for newproc); binding the method value
// once and spawning `go w.spawn()` keeps steady-state traversal
// allocation-free. The padding keeps the hot, constantly-updated slice
// headers of different workers on different cache lines.
type bfsWorker struct {
	s     *BFSScratch
	next  []Vertex
	spawn func()
	_     [32]byte
}

// run claims chunks of the current frontier until none remain,
// expanding each vertex's incidence list. Discovery is settled by a
// compare-and-swap from Unreachable, so exactly one worker wins each
// newly reached vertex and appends it to its private buffer; the value
// written (the BFS level or a component label) is the same whichever
// worker wins, which is what makes the merged output independent of
// scheduling.
func (w *bfsWorker) run() {
	s := w.s
	g, target, val := s.g, s.target, s.writeVal
	w.next = w.next[:0]
	chunk := s.chunk
	for {
		hi := int(s.cursor.Add(int64(chunk)))
		lo := hi - chunk
		if lo >= s.frontLen {
			break
		}
		if hi > s.frontLen {
			hi = s.frontLen
		}
		for _, u := range s.frontier[lo:hi] {
			for _, h := range g.Incident(u) {
				o := h.Other
				if atomic.LoadInt32(&target[o]) == Unreachable &&
					atomic.CompareAndSwapInt32(&target[o], Unreachable, val) {
					w.next = append(w.next, o)
				}
			}
		}
	}
	s.wg.Done()
}

func (s *BFSScratch) ensureWorkers(workers int) {
	if cap(s.workers) >= workers {
		s.workers = s.workers[:workers]
	} else {
		nw := make([]bfsWorker, workers)
		copy(nw, s.workers)
		for i := range nw {
			// Old spawn closures point at the old array's elements.
			nw[i].spawn = nil
		}
		s.workers = nw
	}
	for i := range s.workers {
		w := &s.workers[i]
		w.s = s
		if w.spawn == nil {
			w.spawn = w.run
		}
	}
}

// flood runs one level-synchronous flood over the undirected view,
// starting from the seeds already in s.frontier (whose target entries
// the caller has set). When levelValues is true each discovered vertex
// receives its BFS level (seed level + 1, + 2, ...); otherwise every
// vertex receives the constant val (component labelling). Levels at or
// above bfsSerialFrontier are fanned out to the workers; smaller ones
// are expanded inline.
func (s *BFSScratch) flood(g *Graph, target []int32, workers int, levelValues bool, val int32) {
	level := int32(0)
	for len(s.frontier) > 0 {
		if levelValues {
			val = level + 1
		}
		sampled := s.TraceSample > 0 && int(level)%s.TraceSample == 0
		if sampled {
			s.Trace.Begin("bfs_level", "bfs")
		}
		if workers <= 1 || len(s.frontier) < bfsSerialFrontier {
			s.next = s.next[:0]
			for _, u := range s.frontier {
				for _, h := range g.Incident(u) {
					if target[h.Other] == Unreachable {
						target[h.Other] = val
						s.next = append(s.next, h.Other)
					}
				}
			}
		} else {
			s.ensureWorkers(workers)
			s.g, s.target, s.writeVal = g, target, val
			s.frontLen = len(s.frontier)
			s.chunk = frontierChunk(len(s.frontier), workers)
			s.cursor.Store(0)
			s.wg.Add(workers)
			for i := range s.workers {
				go s.workers[i].spawn()
			}
			s.wg.Wait()
			s.next = s.next[:0]
			for i := range s.workers {
				s.next = append(s.next, s.workers[i].next...)
			}
		}
		if sampled {
			s.Trace.End()
		}
		s.frontier, s.next = s.next, s.frontier
		level++
	}
}

// frontierChunk picks the grain workers claim from the frontier: small
// enough that skewed degree sums balance, large enough that the atomic
// claim is amortized.
func frontierChunk(frontier, workers int) int {
	c := frontier / (workers * 8)
	if c < 64 {
		c = 64
	}
	return c
}

// BFSParallel is BFSParallelInto with fresh buffers.
func BFSParallel(g *Graph, src Vertex, workers int) []int32 {
	dist := make([]int32, g.NumVertices()+1)
	BFSParallelInto(g, src, dist, workers, nil)
	return dist
}

// BFSParallelInto computes undirected hop distances from src exactly
// like BFSInto, but expands each BFS level with up to workers
// goroutines: the frontier is claimed in chunks, newly discovered
// vertices are settled by compare-and-swap, and per-worker
// next-frontier buffers are merged at the level barrier. Because a
// vertex's distance is its BFS level — a property of the graph, not of
// visit order — the dist array is byte-identical to serial BFSInto
// output for every worker count and schedule.
//
// dist must have length >= n+1 (every entry is overwritten, matching
// BFSInto). s may be nil (fresh buffers); passing a reused *BFSScratch
// makes steady-state traversal allocation-free. workers <= 1 runs
// serially.
//
//sf:hotpath
func BFSParallelInto(g *Graph, src Vertex, dist []int32, workers int, s *BFSScratch) {
	if src <= 0 || int(src) > g.NumVertices() {
		panic("graph: BFS source out of range")
	}
	if s == nil {
		s = &BFSScratch{}
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	dist[src] = 0
	s.frontier = append(s.frontier[:0], src)
	s.flood(g, dist, workers, true, 0)
}

// Eccentricity returns the maximum finite BFS distance from src, i.e.
// the eccentricity of src within its connected component.
func Eccentricity(g *Graph, src Vertex) int {
	dist := BFS(g, src)
	ecc := int32(0)
	for v := 1; v <= g.NumVertices(); v++ {
		if dist[v] > ecc {
			ecc = dist[v]
		}
	}
	return int(ecc)
}

// DoubleSweepLowerBound returns a lower bound on the diameter of src's
// component using the classic double-sweep heuristic: BFS from src,
// then BFS again from the farthest vertex found.
func DoubleSweepLowerBound(g *Graph, src Vertex) int {
	n := g.NumVertices()
	return DoubleSweepLowerBoundInto(g, src, make([]int32, n+1), make([]Vertex, 0, n))
}

// DoubleSweepLowerBoundInto is DoubleSweepLowerBound with caller-
// provided BFS buffers (BFSInto conventions) for allocation-free reuse.
//
//sf:hotpath
func DoubleSweepLowerBoundInto(g *Graph, src Vertex, dist []int32, queue []Vertex) int {
	BFSInto(g, src, dist, queue)
	far := src
	best := int32(0)
	for v := Vertex(1); v <= Vertex(g.NumVertices()); v++ {
		if dist[v] > best {
			best = dist[v]
			far = v
		}
	}
	BFSInto(g, far, dist, queue)
	ecc := int32(0)
	for v := 1; v <= g.NumVertices(); v++ {
		if dist[v] > ecc {
			ecc = dist[v]
		}
	}
	return int(ecc)
}

// ExactDiameter computes the exact diameter of a connected graph by
// all-pairs BFS. It is O(n·(n+m)) and intended for small graphs and
// tests; it returns the largest finite pairwise distance.
func ExactDiameter(g *Graph) int {
	n := g.NumVertices()
	dist := make([]int32, n+1)
	queue := make([]Vertex, 0, n)
	diam := int32(0)
	for src := Vertex(1); src <= Vertex(n); src++ {
		BFSInto(g, src, dist, queue)
		for v := 1; v <= n; v++ {
			if dist[v] > diam {
				diam = dist[v]
			}
		}
	}
	return int(diam)
}

// AverageDistanceSampled estimates the mean pairwise distance within
// src's component by running BFS from sources and averaging finite
// distances. sources must be non-empty.
func AverageDistanceSampled(g *Graph, sources []Vertex) float64 {
	n := g.NumVertices()
	return AverageDistanceSampledInto(g, sources, make([]int32, n+1), make([]Vertex, 0, n))
}

// AverageDistanceSampledInto is AverageDistanceSampled with caller-
// provided BFS buffers (BFSInto conventions) for allocation-free reuse.
func AverageDistanceSampledInto(g *Graph, sources []Vertex, dist []int32, queue []Vertex) float64 {
	if len(sources) == 0 {
		panic("graph: AverageDistanceSampled needs at least one source")
	}
	n := g.NumVertices()
	var sum float64
	var count int64
	for _, src := range sources {
		BFSInto(g, src, dist, queue)
		for v := 1; v <= n; v++ {
			if dist[v] > 0 {
				sum += float64(dist[v])
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}

// DoubleSweepLowerBoundParallelInto is DoubleSweepLowerBoundInto with
// both sweeps running on the frontier-parallel BFS. The dist contract
// matches BFSParallelInto; the result equals the serial double sweep
// because each sweep's dist array does.
func DoubleSweepLowerBoundParallelInto(g *Graph, src Vertex, dist []int32, workers int, s *BFSScratch) int {
	BFSParallelInto(g, src, dist, workers, s)
	far := src
	best := int32(0)
	for v := Vertex(1); v <= Vertex(g.NumVertices()); v++ {
		if dist[v] > best {
			best = dist[v]
			far = v
		}
	}
	BFSParallelInto(g, far, dist, workers, s)
	ecc := int32(0)
	for v := 1; v <= g.NumVertices(); v++ {
		if dist[v] > ecc {
			ecc = dist[v]
		}
	}
	return int(ecc)
}

// AverageDistanceSampledParallelInto is AverageDistanceSampledInto on
// the frontier-parallel BFS: identical estimate (each source's dist
// array is byte-identical to the serial one), one graph pass per
// source spread over workers goroutines.
func AverageDistanceSampledParallelInto(g *Graph, sources []Vertex, dist []int32, workers int, s *BFSScratch) float64 {
	if len(sources) == 0 {
		panic("graph: AverageDistanceSampled needs at least one source")
	}
	n := g.NumVertices()
	var sum float64
	var count int64
	for _, src := range sources {
		BFSParallelInto(g, src, dist, workers, s)
		for v := 1; v <= n; v++ {
			if dist[v] > 0 {
				sum += float64(dist[v])
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
