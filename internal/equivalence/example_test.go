package equivalence_test

import (
	"fmt"

	"scalefree/internal/equivalence"
)

// The canonical Theorem-1 window for target n = 10001 holds ~√n
// vertices, and its event probability is computed exactly — no
// simulation involved.
func ExampleExactEventProb() {
	a, b, _ := equivalence.Window(10001)
	prob, _ := equivalence.ExactEventProb(0.5, a, b)
	floor := equivalence.Lemma3Bound(0.5)
	fmt.Printf("window (%d, %d], |V| = %d\n", a, b, b-a)
	fmt.Printf("P(E) = %.4f >= floor %.4f: %v\n", prob, floor, prob >= floor)
	// Output:
	// window (10000, 10099], |V| = 99
	// P(E) = 0.7855 >= floor 0.6065: true
}

// Lemma 1 turns the window into a lower bound on expected requests.
func ExampleLemma1Bound() {
	bound, _ := equivalence.Lemma1Bound(10001, 0.5)
	fmt.Printf("any weak-model searcher needs >= %.1f expected requests\n", bound)
	// Output:
	// any weak-model searcher needs >= 38.9 expected requests
}
