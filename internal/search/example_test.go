package search_test

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/search"
)

// A weak-model search on the path 1-2-3: every paid request reveals one
// far endpoint; reading cached answers is free.
func ExampleOracle() {
	b := graph.NewBuilder(3, 2)
	b.AddVertices(3)
	b.AddEdge(2, 1)
	b.AddEdge(3, 2)
	g := b.Freeze()

	o, _ := search.NewOracle(g, 1, 3, search.Weak)
	v, _, _ := o.RequestEdge(1, 0) // vertex 1's only incident edge
	fmt.Printf("request 1 revealed vertex %d (found: %v)\n", v, o.Found())

	// Vertex 2's slot towards 1 is already known from the answer, so
	// its other slot must lead onward.
	view, _ := o.ViewOf(2)
	for slot, w := range view.Resolved {
		if w == graph.NoVertex {
			v, _, _ = o.RequestEdge(2, slot)
		}
	}
	fmt.Printf("request 2 revealed vertex %d (found: %v)\n", v, o.Found())
	path, _ := o.FoundPath()
	fmt.Printf("requests: %d, witness path: %v\n", o.Requests(), path)
	// Output:
	// request 1 revealed vertex 2 (found: false)
	// request 2 revealed vertex 3 (found: true)
	// requests: 2, witness path: [1 2 3]
}
