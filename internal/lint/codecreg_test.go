package lint

import "testing"

func TestCodecRegResultRegistration(t *testing.T) {
	RunFixture(t, "experiment", CodecReg)
}

func TestCodecRegFamilyParams(t *testing.T) {
	RunFixture(t, "families", CodecReg)
}
