package experiment

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"testing"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/sweep"
)

// startSweepCoordinator serves the selected experiments on loopback
// and returns the dial address plus the eventual outcome.
func startSweepCoordinator(t *testing.T, selected []Experiment, cfg Config, opts sweep.CoordOptions) (string, chan struct {
	tables [][]Table
	err    error
}) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	outcome := make(chan struct {
		tables [][]Table
		err    error
	}, 1)
	go func() {
		tables, err := CoordinateSweep(context.Background(), selected, cfg, lis, opts)
		outcome <- struct {
			tables [][]Table
			err    error
		}{tables, err}
	}()
	return lis.Addr().String(), outcome
}

// TestGoldenCoordinatorKillReassign is the tentpole guarantee: a
// coordinator-driven sweep in which a worker dies mid-run — its chunk
// leased, partially executed, never delivered — renders tables
// byte-identical to the single-process -workers 1 run, and the only
// re-executed trials are the dead worker's unpersisted chunk. E4
// exercises the historical plans; E12 and E13 extend the same
// guarantee to the registry-driven model batteries.
func TestGoldenCoordinatorKillReassign(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	for _, id := range []string{"E4", "E12", "E13"} {
		t.Run(id, func(t *testing.T) {
			exp, _ := ByID(id)
			cfg := Config{Seed: 2024, Scale: 0.05}
			plan, err := exp.Plan(cfg)
			if err != nil {
				t.Fatal(err)
			}
			total := len(plan.Trials)
			if total < 6 {
				t.Fatalf("%s plan too small to kill meaningfully: %d trials", id, total)
			}

			serial, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			golden := renderAll(t, serial)

			const chunkSize = 2
			addr, outcome := startSweepCoordinator(t, []Experiment{exp}, cfg,
				sweep.CoordOptions{ChunkSize: chunkSize, LeaseTTL: time.Minute, Linger: time.Second})

			// The doomed worker: executes its first chunk, then its
			// context is cancelled before any result is streamed — the
			// process equivalent of a kill -9 between computation and
			// delivery. Its connection drop revokes the lease
			// immediately.
			dieCtx, die := context.WithCancel(context.Background())
			defer die()
			deadExecuted := 0
			deadOpts := engine.Options{Workers: 1, Progress: func(p engine.Progress) {
				deadExecuted++
				if deadExecuted == chunkSize {
					die()
				}
			}}
			_, err = SweepWorker(dieCtx, []Experiment{exp}, cfg, addr, deadOpts, nil, sweep.WorkerOptions{Name: "doomed"})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("doomed worker: err = %v, want context.Canceled", err)
			}
			if deadExecuted != chunkSize {
				t.Fatalf("doomed worker executed %d trials, want %d", deadExecuted, chunkSize)
			}

			// The surviving worker steals the forfeited chunk and
			// finishes the sweep.
			stats, err := SweepWorker(context.Background(), []Experiment{exp}, cfg, addr,
				engine.Options{Workers: 2}, nil, sweep.WorkerOptions{Name: "survivor"})
			if err != nil {
				t.Fatal(err)
			}
			out := <-outcome
			if out.err != nil {
				t.Fatal(out.err)
			}
			if got := renderAll(t, out.tables[0]); got != golden {
				t.Errorf("coordinated output diverges from single-process run:\n--- coordinated ---\n%s\n--- single ---\n%s", got, golden)
			}
			// The survivor runs every trial exactly once — total work
			// across both workers exceeds the plan by exactly the dead
			// worker's undelivered chunk, never more.
			if stats.Executed != total {
				t.Errorf("survivor executed %d trials, want %d (stolen chunk re-runs, nothing else repeats)", stats.Executed, total)
			}
		})
	}
}

// TestCoordinatorSharedCacheBoundsLostWork: with a shared trial cache,
// even the dead worker's executed-but-undelivered chunk is not
// recomputed — the thief's cache lookup satisfies it, so the sweep
// re-executes zero trials.
func TestCoordinatorSharedCacheBoundsLostWork(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	exp, _ := ByID("E4")
	cfg := Config{Seed: 2024, Scale: 0.05}
	plan, err := exp.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := len(plan.Trials)

	serial, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	golden := renderAll(t, serial)

	cache, err := sweep.OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	const chunkSize = 2
	addr, outcome := startSweepCoordinator(t, []Experiment{exp}, cfg,
		sweep.CoordOptions{ChunkSize: chunkSize, LeaseTTL: time.Minute, Linger: time.Second})

	dieCtx, die := context.WithCancel(context.Background())
	defer die()
	deadExecuted := 0
	deadOpts := engine.Options{Workers: 1, Progress: func(p engine.Progress) {
		deadExecuted++
		if deadExecuted == chunkSize {
			die()
		}
	}}
	if _, err := SweepWorker(dieCtx, []Experiment{exp}, cfg, addr, deadOpts, cache, sweep.WorkerOptions{Name: "doomed"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("doomed worker: err = %v, want context.Canceled", err)
	}

	stats, err := SweepWorker(context.Background(), []Experiment{exp}, cfg, addr,
		engine.Options{Workers: 2}, cache, sweep.WorkerOptions{Name: "survivor"})
	if err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	if got := renderAll(t, out.tables[0]); got != golden {
		t.Error("coordinated+cached output diverges from single-process run")
	}
	// The doomed worker persisted its chunk before dying, so the
	// survivor cache-hits those trials instead of re-running them:
	// zero trials execute twice anywhere in the sweep.
	if stats.Executed != total-deadExecuted || stats.CacheHits != deadExecuted {
		t.Errorf("survivor stats %+v, want %d executed / %d cache hits", stats, total-deadExecuted, deadExecuted)
	}
}

// TestCoordinatorMultiExperimentGolden: several experiments and
// several concurrent workers through the coordinator still render
// byte-identically, per experiment, to the serial reference.
func TestCoordinatorMultiExperimentGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	cfg := Config{Seed: 2024, Scale: 0.05}
	var selected []Experiment
	for _, id := range []string{"E4", "E5"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		selected = append(selected, e)
	}
	goldens := make([]string, len(selected))
	for i, e := range selected {
		tables, err := e.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		goldens[i] = renderAll(t, tables)
	}

	addr, outcome := startSweepCoordinator(t, selected, cfg,
		sweep.CoordOptions{ChunkSize: 3, LeaseTTL: time.Minute, Linger: time.Second})
	errs := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			_, err := SweepWorker(context.Background(), selected, cfg, addr,
				engine.Options{Workers: 2}, nil, sweep.WorkerOptions{Name: fmt.Sprintf("w%d", w)})
			errs <- err
		}(w)
	}
	for w := 0; w < 2; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	for i := range selected {
		if got := renderAll(t, out.tables[i]); got != goldens[i] {
			t.Errorf("%s: coordinated output diverges from serial run", selected[i].ID)
		}
	}
}
