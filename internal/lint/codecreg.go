package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// CodecReg proves the two registration contracts the sweep layer's
// runtime panics only catch when a test happens to exercise them:
//
//  1. Every exported wire result type in package experiment (the
//     *Result structs trial functions return across the codec) must
//     be registered with sweep.RegisterResult — an unregistered type
//     fails at EncodeResult, mid-sweep, on the first trial that
//     returns it.
//  2. Every model Family's declared Params must be read by its Build
//     hook, and every parameter Build reads must be declared. A
//     declared-but-unread parameter silently widens the canonical
//     encoding (and therefore every trial key and plan fingerprint)
//     without affecting generation; an undeclared read silently takes
//     the zero value.
var CodecReg = &Analyzer{
	Name: "codecreg",
	Doc: "require sweep.RegisterResult for exported experiment *Result types and " +
		"exact Param coverage in model Family Build hooks",
	Run: runCodecReg,
}

func runCodecReg(pass *Pass) error {
	if pass.Pkg.Name() == "experiment" {
		checkResultRegistration(pass)
	}
	checkFamilyParams(pass)
	return nil
}

// checkResultRegistration verifies every exported …Result struct type
// is a type argument of some sweep.RegisterResult call.
func checkResultRegistration(pass *Pass) {
	registered := map[types.Object]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var index ast.Expr
			var funExpr ast.Expr
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.IndexExpr:
				index, funExpr = fun.Index, fun.X
			default:
				return true
			}
			sel, ok := ast.Unparen(funExpr).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
			if fn == nil || fn.Name() != "RegisterResult" || fn.Pkg() == nil || fn.Pkg().Name() != "sweep" {
				return true
			}
			tv, ok := pass.Info.Types[index]
			if !ok || !tv.IsType() {
				return true
			}
			if named, ok := tv.Type.(*types.Named); ok {
				registered[named.Obj()] = true
			}
			return true
		})
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !ts.Name.IsExported() || !strings.HasSuffix(ts.Name.Name, "Result") {
					continue
				}
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
					continue
				}
				obj := pass.Info.Defs[ts.Name]
				if obj == nil || registered[obj] {
					continue
				}
				pass.Reportf(ts.Pos(), "exported wire result type %s is not registered with sweep.RegisterResult: the first trial returning it fails at EncodeResult mid-sweep", ts.Name.Name)
			}
		}
	}
}

// checkFamilyParams verifies declared-vs-read parameter coverage for
// every model.Family composite literal in the package.
func checkFamilyParams(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok || !isNamedStruct(pass, cl, "Family") {
				return true
			}
			checkOneFamily(pass, cl)
			return true
		})
	}
}

// isNamedStruct reports whether the composite literal's type is a
// struct type named name (in any package — the fixture stubs and the
// real internal/model both match).
func isNamedStruct(pass *Pass, cl *ast.CompositeLit, name string) bool {
	tv, ok := pass.Info.Types[cl]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != name {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}

func checkOneFamily(pass *Pass, family *ast.CompositeLit) {
	familyName := "(unnamed)"
	var paramsLit *ast.CompositeLit
	var build *ast.FuncLit
	for _, elt := range family.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			return // positional Family literals are not used; skip
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Name":
			if s, ok := stringLit(kv.Value); ok {
				familyName = s
			}
		case "Params":
			paramsLit, _ = ast.Unparen(kv.Value).(*ast.CompositeLit)
		case "Build":
			build, _ = ast.Unparen(kv.Value).(*ast.FuncLit)
		}
	}
	if paramsLit == nil || build == nil {
		return // dynamically built declarations are out of scope
	}
	declared := map[string]ast.Expr{}
	var declOrder []string
	for _, elt := range paramsLit.Elts {
		pl, ok := ast.Unparen(elt).(*ast.CompositeLit)
		if !ok {
			continue
		}
		name, pos := paramLitName(pl)
		if name == "" {
			continue
		}
		if _, dup := declared[name]; !dup {
			declared[name] = pos
			declOrder = append(declOrder, name)
		}
	}
	used, escapes := buildParamReads(pass, build)
	for _, name := range declOrder {
		if !used[name] && !escapes {
			pass.Reportf(declared[name].Pos(), "family %q declares parameter %q but its Build hook never reads it: the canonical encoding (and every plan fingerprint) would vary on a value generation ignores", familyName, name)
		}
	}
	names := make([]string, 0, len(used))
	for n := range used {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := declared[name]; !ok {
			pass.Reportf(usePos(pass, build, name).Pos(), "Build of family %q reads parameter %q, which the family does not declare: the lookup silently yields the zero value", familyName, name)
		}
	}
}

// paramLitName extracts the Name of one Param composite literal,
// keyed or positional.
func paramLitName(pl *ast.CompositeLit) (string, ast.Expr) {
	for i, elt := range pl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Name" {
				if s, ok := stringLit(kv.Value); ok {
					return s, kv.Value
				}
			}
			continue
		}
		if i == 0 { // positional: Name is the first field
			if s, ok := stringLit(elt); ok {
				return s, elt
			}
		}
	}
	return "", nil
}

// buildParamReads collects the string-literal parameter names the
// Build hook reads from its Values argument (v.Int("n"), v.Bool("b"),
// v["p"], …). escapes reports that the Values variable is also used
// some other way (passed along, ranged over), in which case
// declared-but-unread coverage cannot be proven and is not reported.
func buildParamReads(pass *Pass, build *ast.FuncLit) (used map[string]bool, escapes bool) {
	used = map[string]bool{}
	params := build.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return used, true
	}
	vObj := pass.Info.Defs[params.List[0].Names[0]]
	if vObj == nil {
		return used, true
	}
	ast.Inspect(build.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || pass.Info.Uses[id] != vObj {
			return true
		}
		key, ok := paramReadKey(pass, build, id)
		if !ok {
			escapes = true
			return true
		}
		if key != "" {
			used[key] = true
		}
		return true
	})
	return used, escapes
}

// paramReadKey classifies one use of the Values variable: a read with
// a string-literal key returns the key; non-literal keys and any
// other use (passing v along, ranging over it) report !ok — an
// escape, which disables the declared-but-unread half of the check.
func paramReadKey(pass *Pass, build *ast.FuncLit, id *ast.Ident) (string, bool) {
	path := enclosingPath(build, id.Pos())
	// path ends at id; look outward (toward smaller indexes),
	// skipping parentheses.
	for i := len(path) - 2; i >= 0; i-- {
		switch parent := path[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.IndexExpr:
			if ast.Unparen(parent.X) != ast.Expr(id) {
				return "", false
			}
			s, ok := stringLit(parent.Index)
			if !ok {
				return "", false
			}
			return s, true
		case *ast.SelectorExpr:
			// v.Int / v.Bool — must be immediately called with a
			// string literal.
			if i == 0 {
				return "", false
			}
			call, ok := path[i-1].(*ast.CallExpr)
			if !ok || ast.Unparen(call.Fun) != ast.Expr(parent) || len(call.Args) != 1 {
				return "", false
			}
			s, ok := stringLit(call.Args[0])
			if !ok {
				return "", false
			}
			return s, true
		default:
			return "", false
		}
	}
	return "", false
}

// usePos finds the position of the first read of name inside the
// Build hook for diagnostics.
func usePos(pass *Pass, build *ast.FuncLit, name string) ast.Expr {
	var found ast.Expr
	ast.Inspect(build.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if lit, ok := n.(*ast.BasicLit); ok {
			if s, ok := stringLit(lit); ok && s == name {
				found = lit
				return false
			}
		}
		return true
	})
	if found == nil {
		return build
	}
	return found
}

// enclosingPath returns the node path from build down to the node at
// pos (outermost first, the node starting at pos last).
func enclosingPath(build *ast.FuncLit, pos token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(build, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if pos < n.Pos() || pos >= n.End() {
			return false
		}
		path = append(path, n)
		return true
	})
	return path
}

func stringLit(e ast.Expr) (string, bool) {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || bl.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
