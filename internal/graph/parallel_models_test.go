// Equality of the frontier-parallel passes with their serial
// counterparts on every registered model family. This lives in an
// external test package so it can import internal/model (which itself
// imports internal/graph) without a cycle.
package graph_test

import (
	"fmt"
	"runtime"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/model"
	"scalefree/internal/rng"
)

// familyParams builds a small- and a medium-sized parameter set for
// each registered family, covering connected trees (mori m=1),
// multi-edge substrates (cf), and genuinely disconnected graphs
// (config without giant extraction shatters into many components).
func familyParams(t *testing.T) map[string][]string {
	t.Helper()
	params := map[string][]string{
		"mori":      {"n=200,m=1,p=0.5", "n=3000,m=2,p=0.75"},
		"cf":        {"n=200,alpha=0.8", "n=3000,alpha=0.6,loops=false"},
		"ba":        {"n=200,m=1", "n=3000,m=3"},
		"config":    {"n=200,k=2.3", "n=3000,k=2.1,simple=true"},
		"fitness":   {"n=200,m=1,eta0=0.3", "n=3000,m=2,eta0=0.1"},
		"geopa":     {"n=200,m=1,r=0.4", "n=3000,m=2,r=0.25"},
		"kleinberg": {"l=10,r=2,q=1", "l=48,r=2,q=2"},
	}
	for _, f := range model.Families() {
		if _, ok := params[f.Name]; !ok {
			t.Fatalf("registered family %q has no parameter sets in this test; add one", f.Name)
		}
	}
	return params
}

// TestParallelPassesMatchSerialOnAllModels is the registry-wide sweep
// the giant-graph mode rests on: for every model family, at two sizes,
// for worker counts 1, 2, and NumCPU, the parallel BFS dist array and
// the parallel component labels are entry-for-entry identical to the
// serial passes.
func TestParallelPassesMatchSerialOnAllModels(t *testing.T) {
	workerCounts := []int{1, 2, runtime.NumCPU()}
	var s graph.BFSScratch
	for name, paramSets := range familyParams(t) {
		for _, params := range paramSets {
			t.Run(fmt.Sprintf("%s/%s", name, params), func(t *testing.T) {
				m, err := model.New(name, params)
				if err != nil {
					t.Fatal(err)
				}
				g, err := m.Generate(rng.New(42), nil)
				if err != nil {
					t.Fatal(err)
				}
				n := g.NumVertices()

				wantLabels, wantCount := graph.Components(g)
				dist := make([]int32, n+1)
				queue := make([]graph.Vertex, 0, n)
				sources := []graph.Vertex{1, graph.Vertex(n), graph.Vertex(n/2 + 1)}
				wantDist := make(map[graph.Vertex][]int32, len(sources))
				for _, src := range sources {
					d := make([]int32, n+1)
					graph.BFSInto(g, src, d, queue)
					wantDist[src] = d
				}

				for _, workers := range workerCounts {
					for _, src := range sources {
						graph.BFSParallelInto(g, src, dist, workers, &s)
						for v := range dist {
							if dist[v] != wantDist[src][v] {
								t.Fatalf("workers=%d src=%d: dist[%d] = %d, want %d",
									workers, src, v, dist[v], wantDist[src][v])
							}
						}
					}
					labels := make([]int32, n+1)
					count := graph.ComponentsParallelInto(g, labels, workers, &s)
					if count != wantCount {
						t.Fatalf("workers=%d: %d components, want %d", workers, count, wantCount)
					}
					for v := range wantLabels {
						if labels[v] != wantLabels[v] {
							t.Fatalf("workers=%d: label[%d] = %d, want %d",
								workers, v, labels[v], wantLabels[v])
						}
					}
				}
			})
		}
	}
}

// TestSnapshotRoundTripAllModels freezes one instance of every family
// to a snapshot file and confirms the mmap'd graph is Equal — the
// generate→freeze→measure pipeline works for the whole registry.
func TestSnapshotRoundTripAllModels(t *testing.T) {
	for name, paramSets := range familyParams(t) {
		m, err := model.New(name, paramSets[0])
		if err != nil {
			t.Fatal(err)
		}
		g, err := m.Generate(rng.New(7), nil)
		if err != nil {
			t.Fatal(err)
		}
		path := t.TempDir() + "/" + name + ".csr"
		if err := graph.WriteSnapshotFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		snap, err := graph.OpenSnapshot(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !graph.Equal(g, snap.Graph()) {
			t.Errorf("%s: snapshot round trip changed the graph", name)
		}
		if err := snap.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		snap.Close()
	}
}
