package graph

import "testing"

// buildSample fills b (which must be freshly Reset) with a small
// multigraph exercising self-loops and parallel edges.
func buildSample(b *Builder, n int) {
	b.AddVertices(n)
	b.AddEdge(1, 1) // self-loop
	for v := 2; v <= n; v++ {
		b.AddEdge(Vertex(v), Vertex(v/2+1))
	}
	b.AddEdge(2, 3)
	b.AddEdge(2, 3) // parallel edge
}

// TestFreezeIntoMatchesFreeze pins the reuse path to the allocating
// path: same builder, same snapshot.
func TestFreezeIntoMatchesFreeze(t *testing.T) {
	b := NewBuilder(8, 12)
	buildSample(b, 8)
	want := b.Freeze()
	var g Graph
	got := b.FreezeInto(&g)
	if got != &g {
		t.Fatal("FreezeInto did not return its argument")
	}
	if want.NumVertices() != got.NumVertices() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)",
			want.NumVertices(), want.NumEdges(), got.NumVertices(), got.NumEdges())
	}
	for v := Vertex(1); int(v) <= want.NumVertices(); v++ {
		wi, gi := want.Incident(v), got.Incident(v)
		if len(wi) != len(gi) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(wi), len(gi))
		}
		for i := range wi {
			if wi[i] != gi[i] {
				t.Fatalf("vertex %d slot %d: %+v vs %+v", v, i, wi[i], gi[i])
			}
		}
		if want.InDegree(v) != got.InDegree(v) || want.OutDegree(v) != got.OutDegree(v) {
			t.Fatalf("vertex %d: directed degrees diverge", v)
		}
	}
}

// TestFreezeIntoReuseIsAllocFree pins the tentpole contract: a Reset
// builder plus FreezeInto rebuilds a same-size graph with zero
// allocations.
func TestFreezeIntoReuseIsAllocFree(t *testing.T) {
	const n = 256
	b := NewBuilder(n, n+2)
	var g Graph
	build := func() {
		b.Reset(n, n+2)
		buildSample(b, n)
		b.FreezeInto(&g)
	}
	build() // warm up
	if allocs := testing.AllocsPerRun(20, build); allocs > 0 {
		t.Errorf("steady-state Reset+FreezeInto allocates %v times per graph, want 0", allocs)
	}
}

// TestBuilderResetClearsState guards against stale degrees or edges
// leaking across reuse.
func TestBuilderResetClearsState(t *testing.T) {
	b := NewBuilder(4, 4)
	b.AddVertices(4)
	b.AddEdge(1, 2)
	b.AddEdge(3, 3)
	b.Reset(4, 4)
	if b.NumVertices() != 0 || b.NumEdges() != 0 {
		t.Fatalf("after Reset: %d vertices, %d edges", b.NumVertices(), b.NumEdges())
	}
	b.AddVertices(2)
	if b.Degree(1) != 0 || b.InDegree(2) != 0 || b.OutDegree(1) != 0 {
		t.Fatal("degrees survived Reset")
	}
	b.AddEdge(1, 2)
	g := b.Freeze()
	if g.NumVertices() != 2 || g.NumEdges() != 1 || g.Degree(1) != 1 {
		t.Fatalf("rebuilt graph wrong: n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}
