package graph

// Unreachable is the distance reported by BFS for vertices not connected
// to the source.
const Unreachable int32 = -1

// BFS returns undirected hop distances from src to every vertex.
// The result is indexed 1..n; unreachable vertices get Unreachable.
func BFS(g *Graph, src Vertex) []int32 {
	dist := make([]int32, g.NumVertices()+1)
	queue := make([]Vertex, 0, g.NumVertices())
	BFSInto(g, src, dist, queue)
	return dist
}

// BFSInto is BFS with caller-provided buffers for allocation-free reuse
// across many sources. dist must have length n+1; queue is a scratch
// buffer whose contents are overwritten.
func BFSInto(g *Graph, src Vertex, dist []int32, queue []Vertex) {
	if src <= 0 || int(src) > g.NumVertices() {
		panic("graph: BFS source out of range")
	}
	for i := range dist {
		dist[i] = Unreachable
	}
	queue = queue[:0]
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, h := range g.Incident(u) {
			if dist[h.Other] == Unreachable {
				dist[h.Other] = du + 1
				queue = append(queue, h.Other)
			}
		}
	}
}

// Eccentricity returns the maximum finite BFS distance from src, i.e.
// the eccentricity of src within its connected component.
func Eccentricity(g *Graph, src Vertex) int {
	dist := BFS(g, src)
	ecc := int32(0)
	for v := 1; v <= g.NumVertices(); v++ {
		if dist[v] > ecc {
			ecc = dist[v]
		}
	}
	return int(ecc)
}

// DoubleSweepLowerBound returns a lower bound on the diameter of src's
// component using the classic double-sweep heuristic: BFS from src,
// then BFS again from the farthest vertex found.
func DoubleSweepLowerBound(g *Graph, src Vertex) int {
	n := g.NumVertices()
	return DoubleSweepLowerBoundInto(g, src, make([]int32, n+1), make([]Vertex, 0, n))
}

// DoubleSweepLowerBoundInto is DoubleSweepLowerBound with caller-
// provided BFS buffers (BFSInto conventions) for allocation-free reuse.
func DoubleSweepLowerBoundInto(g *Graph, src Vertex, dist []int32, queue []Vertex) int {
	BFSInto(g, src, dist, queue)
	far := src
	best := int32(0)
	for v := Vertex(1); v <= Vertex(g.NumVertices()); v++ {
		if dist[v] > best {
			best = dist[v]
			far = v
		}
	}
	BFSInto(g, far, dist, queue)
	ecc := int32(0)
	for v := 1; v <= g.NumVertices(); v++ {
		if dist[v] > ecc {
			ecc = dist[v]
		}
	}
	return int(ecc)
}

// ExactDiameter computes the exact diameter of a connected graph by
// all-pairs BFS. It is O(n·(n+m)) and intended for small graphs and
// tests; it returns the largest finite pairwise distance.
func ExactDiameter(g *Graph) int {
	n := g.NumVertices()
	dist := make([]int32, n+1)
	queue := make([]Vertex, 0, n)
	diam := int32(0)
	for src := Vertex(1); src <= Vertex(n); src++ {
		BFSInto(g, src, dist, queue)
		for v := 1; v <= n; v++ {
			if dist[v] > diam {
				diam = dist[v]
			}
		}
	}
	return int(diam)
}

// AverageDistanceSampled estimates the mean pairwise distance within
// src's component by running BFS from sources and averaging finite
// distances. sources must be non-empty.
func AverageDistanceSampled(g *Graph, sources []Vertex) float64 {
	n := g.NumVertices()
	return AverageDistanceSampledInto(g, sources, make([]int32, n+1), make([]Vertex, 0, n))
}

// AverageDistanceSampledInto is AverageDistanceSampled with caller-
// provided BFS buffers (BFSInto conventions) for allocation-free reuse.
func AverageDistanceSampledInto(g *Graph, sources []Vertex, dist []int32, queue []Vertex) float64 {
	if len(sources) == 0 {
		panic("graph: AverageDistanceSampled needs at least one source")
	}
	n := g.NumVertices()
	var sum float64
	var count int64
	for _, src := range sources {
		BFSInto(g, src, dist, queue)
		for v := 1; v <= n; v++ {
			if dist[v] > 0 {
				sum += float64(dist[v])
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return sum / float64(count)
}
