package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath checks //sf:hotpath functions — the zero-steady-state-
// allocation loops the AllocsPerRun benchmarks pin. Instead of a
// brittle allocation count, each allocation source gets a named,
// source-located diagnostic:
//
//   - append to a local slice that was not preallocated (declared
//     empty or made without capacity) — growth allocates; appends to
//     parameters, fields, and reslices of scratch buffers are the
//     sanctioned amortized pattern;
//   - function literals — closures capture their environment on the
//     heap;
//   - any call into package fmt — formatting allocates and boxes;
//   - interface-boxing conversions: passing, assigning, returning, or
//     converting a concrete value to an interface type allocates the
//     box.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "forbid unpreallocated appends, closures, fmt calls, and interface boxing " +
		"in //sf:hotpath functions",
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.Notes.HotpathFuncs[fd] {
				continue
			}
			h := &hotpathChecker{pass: pass, fn: fd}
			h.check(fd.Body)
		}
	}
	return nil
}

type hotpathChecker struct {
	pass *Pass
	fn   *ast.FuncDecl
}

func (h *hotpathChecker) check(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			h.pass.Reportf(n.Pos(), "closure allocation in //sf:hotpath %s: function literals capture their environment on the heap; hoist the closure out of the hot path or pre-bind it on the scratch", h.fn.Name.Name)
			return false
		case *ast.CallExpr:
			h.call(n)
		case *ast.AssignStmt:
			h.assign(n)
		case *ast.ReturnStmt:
			h.returnStmt(n)
		}
		return true
	})
}

func (h *hotpathChecker) call(call *ast.CallExpr) {
	// Explicit conversion to an interface type: T(x) where T is an
	// interface and x concrete.
	if tv, ok := h.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) {
			h.boxing(call.Args[0], tv.Type, "conversion to")
		}
		return
	}
	if name, ok := builtinName(h.pass, call); ok {
		if name == "append" {
			h.append(call)
		}
		return
	}
	fn := calleeFunc(h.pass, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		h.pass.Reportf(call.Pos(), "fmt.%s call in //sf:hotpath %s: formatting allocates; use strconv.Append* into a reused buffer", fn.Name(), h.fn.Name.Name)
		return
	}
	// Interface-typed parameters box concrete arguments.
	sig := h.callSignature(call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // passing an existing slice, no per-arg boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(pt) {
			h.boxing(arg, pt, "argument passed as")
		}
	}
}

// callSignature resolves the signature of a (non-builtin, non-
// conversion) call.
func (h *hotpathChecker) callSignature(call *ast.CallExpr) *types.Signature {
	tv, ok := h.pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// append flags appends whose target is a local slice that was not
// preallocated with capacity.
func (h *hotpathChecker) append(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return // fields, index exprs: assume caller-managed backing
	}
	obj, ok := h.pass.Info.Uses[id].(*types.Var)
	if !ok || obj.IsField() {
		return
	}
	// Parameters and results are caller-preallocated by contract.
	if h.isParamOrResult(obj) {
		return
	}
	// Local: find its declaration and check the initializer.
	decl := h.localDeclValue(obj)
	switch d := decl.(type) {
	case nil:
		// var s []T with no initializer — nil slice, every growth
		// allocates.
		h.pass.Reportf(call.Pos(), "append to unpreallocated local slice %s in //sf:hotpath %s: declare it with capacity (make, or reslice a scratch buffer to [:0])", id.Name, h.fn.Name.Name)
	case *ast.CompositeLit:
		if len(d.Elts) == 0 {
			h.pass.Reportf(call.Pos(), "append to unpreallocated local slice %s in //sf:hotpath %s: the empty literal has no capacity; make it with one or reslice a scratch buffer", id.Name, h.fn.Name.Name)
		}
	case *ast.CallExpr:
		if name, ok := builtinName(h.pass, d); ok && name == "make" && len(d.Args) < 3 {
			if len(d.Args) == 2 && !isZeroLiteral(d.Args[1]) {
				return // make([]T, n): len doubles as capacity
			}
			h.pass.Reportf(call.Pos(), "append to local slice %s made without capacity in //sf:hotpath %s: give make a capacity argument", id.Name, h.fn.Name.Name)
		}
	}
}

// isParamOrResult reports whether the variable is one of the
// function's parameters or named results.
func (h *hotpathChecker) isParamOrResult(v *types.Var) bool {
	ft := h.fn.Type
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				if h.pass.Info.Defs[n] == v {
					return true
				}
			}
		}
		return false
	}
	if check(ft.Params) || check(ft.Results) {
		return true
	}
	if h.fn.Recv != nil && check(h.fn.Recv) {
		return true
	}
	return false
}

// localDeclValue finds the initializer expression of a local
// variable, or nil when declared without one. Unresolvable
// declarations return a non-nil sentinel so they are not flagged.
func (h *hotpathChecker) localDeclValue(v *types.Var) ast.Expr {
	var init ast.Expr
	declared := false
	ast.Inspect(h.fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || h.pass.Info.Defs[id] != v {
					continue
				}
				declared = true
				if len(n.Rhs) == len(n.Lhs) {
					init = ast.Unparen(n.Rhs[i])
				} else {
					init = n.Rhs[0] // multi-value: unknown shape, don't flag
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if h.pass.Info.Defs[name] != v {
					continue
				}
				declared = true
				if i < len(n.Values) {
					init = ast.Unparen(n.Values[i])
				}
			}
		}
		return true
	})
	if !declared {
		return &ast.BadExpr{} // not found: assume managed elsewhere
	}
	return init
}

func isZeroLiteral(e ast.Expr) bool {
	bl, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && bl.Value == "0"
}

func (h *hotpathChecker) assign(s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN {
		return
	}
	for i, lhs := range s.Lhs {
		if i >= len(s.Rhs) {
			break
		}
		tv, ok := h.pass.Info.Types[lhs]
		if !ok || tv.Type == nil || !types.IsInterface(tv.Type) {
			continue
		}
		h.boxing(s.Rhs[i], tv.Type, "assignment to")
	}
}

func (h *hotpathChecker) returnStmt(s *ast.ReturnStmt) {
	results := h.fn.Type.Results
	if results == nil || len(s.Results) == 0 {
		return
	}
	var resultTypes []types.Type
	for _, f := range results.List {
		tv, ok := h.pass.Info.Types[f.Type]
		if !ok {
			return
		}
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, tv.Type)
		}
	}
	if len(s.Results) != len(resultTypes) {
		return // returning a multi-value call; boxing happens there
	}
	for i, r := range s.Results {
		if types.IsInterface(resultTypes[i]) {
			h.boxing(r, resultTypes[i], "return value of")
		}
	}
}

// boxing reports when expr's concrete value would be boxed into the
// interface type target.
func (h *hotpathChecker) boxing(expr ast.Expr, target types.Type, context string) {
	tv, ok := h.pass.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if tv.IsNil() || types.IsInterface(tv.Type) {
		return // nil and interface-to-interface don't box a new value
	}
	// Untyped constants stored in interfaces still box, but the
	// canonical offenders here are runtime values.
	h.pass.Reportf(expr.Pos(), "interface boxing in //sf:hotpath %s: %s interface type %s wraps concrete %s in a heap box", h.fn.Name.Name, context, target.String(), tv.Type.String())
}
