package cooperfrieze

import (
	"math"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

func defaultConfig(n int) Config {
	return Config{
		N:          n,
		Alpha:      0.7,
		Beta:       0.6,
		Gamma:      0.5,
		Delta:      0.3,
		AllowLoops: true,
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{N: 1, Alpha: 0.5},
		{N: 10, Alpha: 0},
		{N: 10, Alpha: 1.1},
		{N: 10, Alpha: 0.5, Beta: -0.1},
		{N: 10, Alpha: 0.5, Gamma: 1.2},
		{N: 10, Alpha: 0.5, Delta: math.NaN()},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v validated", i, c)
		}
	}
	if err := defaultConfig(10).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestGenerateBasicInvariants(t *testing.T) {
	res, err := defaultConfig(500).Generate(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	if g.NumVertices() != 500 {
		t.Fatalf("vertices = %d, want 500", g.NumVertices())
	}
	if !graph.IsConnected(g) {
		t.Fatal("Cooper-Frieze graph disconnected")
	}
	if res.Steps < 499 {
		t.Errorf("steps = %d; at least 499 New steps are needed", res.Steps)
	}
	if res.OldSteps != res.Steps-499 {
		t.Errorf("OldSteps = %d inconsistent with Steps = %d", res.OldSteps, res.Steps)
	}
	// Every edge must point to an existing vertex (tail arrived first
	// or it is an Old edge, but both endpoints are <= current count by
	// construction).
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.Endpoints(graph.EdgeID(e))
		if u < 1 || v < 1 || int(u) > 500 || int(v) > 500 {
			t.Fatalf("edge %d has endpoints (%d, %d)", e, u, v)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := defaultConfig(300).Generate(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := defaultConfig(300).Generate(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(a.Graph, b.Graph) {
		t.Fatal("same seed produced different graphs")
	}
}

func TestAlphaOneIsAllNew(t *testing.T) {
	cfg := defaultConfig(200)
	cfg.Alpha = 1
	res, err := cfg.Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.OldSteps != 0 {
		t.Errorf("alpha=1 ran %d Old steps", res.OldSteps)
	}
	if res.Steps != 199 {
		t.Errorf("alpha=1 took %d steps, want 199", res.Steps)
	}
	// With q = {1}: exactly one edge per new vertex plus the seed loop.
	if got := res.Graph.NumEdges(); got != 200 {
		t.Errorf("edges = %d, want 200", got)
	}
}

func TestOutDegreeDistributions(t *testing.T) {
	cfg := defaultConfig(400)
	cfg.QWeights = []float64{0, 0, 1} // every New vertex emits exactly 3 edges
	cfg.Alpha = 1
	res, err := cfg.Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	for v := graph.Vertex(2); v <= 400; v++ {
		if got := g.OutDegree(v); got != 3 {
			t.Fatalf("vertex %d out-degree = %d, want 3", v, got)
		}
	}
}

func TestInvalidOutDegreeWeights(t *testing.T) {
	cfg := defaultConfig(10)
	cfg.QWeights = []float64{-1}
	if _, err := cfg.Generate(rng.New(1)); err == nil {
		t.Error("negative QWeights accepted")
	}
	cfg = defaultConfig(10)
	cfg.PWeights = []float64{0}
	if _, err := cfg.Generate(rng.New(1)); err == nil {
		t.Error("zero-total PWeights accepted")
	}
}

func TestNoLoopsWhenDisallowed(t *testing.T) {
	cfg := defaultConfig(300)
	cfg.AllowLoops = false
	res, err := cfg.Generate(rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	// The seed loop on vertex 1 is structural; no other loop may exist.
	if got := res.Graph.NumSelfLoops(); got != 1 {
		t.Errorf("self-loops = %d, want only the seed loop", got)
	}
}

func TestOldStepsAddEdgesNotVertices(t *testing.T) {
	cfg := defaultConfig(100)
	cfg.Alpha = 0.3 // ~70% Old steps
	res, err := cfg.Generate(rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	if res.OldSteps == 0 {
		t.Fatal("expected Old steps at alpha=0.3")
	}
	// Edges: seed loop + one per step (all distributions are {1}).
	want := 1 + res.Steps
	if got := res.Graph.NumEdges(); got != want {
		t.Errorf("edges = %d, want %d", got, want)
	}
}

func TestYoungVerticesHaveLowInDegree(t *testing.T) {
	// The age/degree correlation that drives the paper: the last
	// vertices should have much lower indegree than the first ones on
	// average.
	res, err := defaultConfig(2000).Generate(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	oldSum, youngSum := 0, 0
	for v := graph.Vertex(1); v <= 100; v++ {
		oldSum += g.InDegree(v)
	}
	for v := graph.Vertex(1901); v <= 2000; v++ {
		youngSum += g.InDegree(v)
	}
	if oldSum <= 3*youngSum {
		t.Errorf("oldest 100 vertices indegree %d vs youngest 100 %d; expected strong age bias", oldSum, youngSum)
	}
}

func TestDegreeDistributionHeavyTail(t *testing.T) {
	// Power-law sanity: the CF degree distribution should be heavy
	// tailed — a hub far above the mean and a near-linear log-log CCDF.
	res, err := defaultConfig(8000).Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	g := res.Graph
	degs := g.Degrees()[1:]
	mean := stats.Mean(stats.IntsToFloats(degs))
	if max := g.MaxDegree(); float64(max) < 10*mean {
		t.Errorf("max degree %d vs mean %.2f; expected a heavy tail", max, mean)
	}
	ccdf := stats.HistogramOf(degs).CCDF()
	_, r2, err := stats.CCDFLogLogSlope(ccdf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if r2 < 0.85 {
		t.Errorf("log-log CCDF R² = %v; expected near power law", r2)
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := defaultConfig(1 << 13)
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Generate(r); err != nil {
			b.Fatal(err)
		}
	}
}
