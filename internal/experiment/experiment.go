package experiment

import (
	"fmt"
	"sort"

	"scalefree/internal/rng"
)

// Config controls the execution scale of an experiment run.
type Config struct {
	// Seed derives all experiment randomness.
	Seed uint64
	// Scale multiplies workload sizes and replication counts. 1.0 runs
	// the full EXPERIMENTS.md workload; tests and benches use smaller
	// values. Values <= 0 default to 1.
	Scale float64
}

// scaleInt scales n, keeping at least min.
func (c Config) scaleInt(n, min int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n) * s)
	if v < min {
		return min
	}
	return v
}

// sizes returns a geometric size sweep {base, base·2, ...} of count
// points, scaled.
func (c Config) sizes(base, count int) []int {
	out := make([]int, count)
	n := c.scaleInt(base, 64)
	for i := range out {
		out[i] = n
		n *= 2
	}
	return out
}

// seed derives a named sub-seed so experiments stay independent.
func (c Config) seed(stream uint64) uint64 {
	return rng.DeriveSeed(c.Seed, stream)
}

// Experiment is one reproducible unit of the evaluation.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]Table, error)
}

// Registry returns all experiments in ID order.
func Registry() []Experiment {
	exps := []Experiment{
		{ID: "E1", Title: "Theorem 1 (weak model): Ω(√n) search cost in Móri graphs", Run: RunE1},
		{ID: "E2", Title: "Theorem 1 (strong model): Ω(n^(1/2-p)) for p < 1/2", Run: RunE2},
		{ID: "E3", Title: "Theorem 2: Ω(√n) search cost in Cooper–Frieze graphs (weak model)", Run: RunE3},
		{ID: "E4", Title: "Lemmas 2-3: equivalence event probability, exact vs MC vs e^{-(1-p)}", Run: RunE4},
		{ID: "E5", Title: "Móri max degree ~ n^p (vs Barabási–Albert n^(1/2))", Run: RunE5},
		{ID: "E6", Title: "Degree distributions: power-law exponents per model", Run: RunE6},
		{ID: "E7", Title: "Logarithmic distances: mean distance and diameter vs log n", Run: RunE7},
		{ID: "E8", Title: "Adamic et al.: high-degree search vs random walk on power-law graphs", Run: RunE8},
		{ID: "E9", Title: "Kleinberg navigability: greedy routing r-sweep vs Móri id-greedy", Run: RunE9},
		{ID: "E10", Title: "Sarshar et al.: percolation search replication/broadcast sweep", Run: RunE10},
		{ID: "E11", Title: "Extension: non-searchability of uniform attachment (p = 0)", Run: RunE11},
	}
	sort.Slice(exps, func(i, j int) bool {
		// Numeric ID ordering: E2 before E10.
		return idNum(exps[i].ID) < idNum(exps[j].ID)
	})
	return exps
}

func idNum(id string) int {
	n := 0
	fmt.Sscanf(id, "E%d", &n)
	return n
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
