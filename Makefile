GO ?= go

.PHONY: all build test test-short vet lint bench bench-json bench-smoke ci

all: ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

vet:
	$(GO) vet ./...

# lint runs the full static suite: go vet, the repo's own invariant
# analyzers (cmd/sflint: determinism, lockorder, hotpath, codecreg —
# see DESIGN.md §10), and, when installed, staticcheck and govulncheck.
# The external tools are gated on availability so offline checkouts
# still get vet + sflint; CI installs them and runs the same target.
lint: vet
	$(GO) run ./cmd/sflint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipping"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipping"; \
	fi

# bench compiles and runs every benchmark once; use
#   go test -bench ExperimentWorkers -benchtime 5x .
# for stable parallel-speedup numbers on a multi-core machine.
bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

# bench-json records the speedup trajectory: the parallel-engine bench,
# the generator ablations (endpoint array vs Fenwick reference; the
# fitness/geopa rejection samplers), the per-model registry generation
# sweep (every registered family), the distribution layer (shard
# merge, warm-cache re-reduce, coordinator dispatch overhead), and the
# observability tax (instrumented vs bare trial loop), in
# `go test -json` event format, one JSON object per line. Commit the
# refreshed BENCH_gen.json whenever a PR moves these numbers.
bench-json:
	$(GO) test -run '^$$' \
		-bench 'BenchmarkExperimentWorkers|BenchmarkGenerateMori|BenchmarkGenerateCooperFrieze|BenchmarkGenerateFitness|BenchmarkGenerateGeoPA|BenchmarkGenerateModels|BenchmarkBFSParallel|BenchmarkSnapshotOpen|BenchmarkShardMerge|BenchmarkCacheHit|BenchmarkCoordinatorDispatch|BenchmarkMetricsOverhead|BenchmarkTraceOverhead' \
		-benchtime 3x -json . > BENCH_gen.json

# bench-smoke is the CI-sized benchmark pass: every benchmark once at
# -short sizes, output discarded — it only has to not crash.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short ./...

ci: build lint test
