//go:build !unix

package graph

import (
	"fmt"
	"io"
	"os"
)

// mapFile on platforms without mmap support reads the file into
// memory. Snapshots still open correctly, just not zero-copy.
func mapFile(f *os.File, size int) (data []byte, release func() error, err error) {
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	if len(b) != size {
		return nil, nil, fmt.Errorf("read %d bytes, want %d", len(b), size)
	}
	return b, func() error { return nil }, nil
}
