package graph

import (
	"testing"

	"scalefree/internal/rng"
)

func TestBFSPath(t *testing.T) {
	g := buildPath(6)
	dist := BFS(g, 1)
	for v := 1; v <= 6; v++ {
		if got, want := dist[v], int32(v-1); got != want {
			t.Errorf("dist[%d] = %d, want %d", v, got, want)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	b := NewBuilder(4, 1)
	b.AddVertices(4)
	b.AddEdge(1, 2)
	g := b.Freeze()
	dist := BFS(g, 1)
	if dist[2] != 1 {
		t.Errorf("dist[2] = %d, want 1", dist[2])
	}
	if dist[3] != Unreachable || dist[4] != Unreachable {
		t.Errorf("unreachable vertices got distances %d, %d", dist[3], dist[4])
	}
}

func TestBFSIgnoresDirection(t *testing.T) {
	// Edges all point towards vertex 1, but searching is undirected.
	b := NewBuilder(3, 2)
	b.AddVertices(3)
	b.AddEdge(2, 1)
	b.AddEdge(3, 2)
	g := b.Freeze()
	dist := BFS(g, 1)
	if dist[2] != 1 || dist[3] != 2 {
		t.Errorf("dist = %v, want [_, 0, 1, 2]", dist)
	}
}

func TestBFSSelfLoopAndMultiEdge(t *testing.T) {
	b := NewBuilder(2, 3)
	b.AddVertices(2)
	b.AddEdge(1, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 1)
	g := b.Freeze()
	dist := BFS(g, 1)
	if dist[1] != 0 || dist[2] != 1 {
		t.Errorf("dist = %v", dist)
	}
}

func TestBFSPanicsOnBadSource(t *testing.T) {
	g := buildPath(3)
	for _, src := range []Vertex{0, -1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BFS(src=%d) did not panic", src)
				}
			}()
			BFS(g, src)
		}()
	}
}

func TestEccentricityAndDiameterOnPath(t *testing.T) {
	g := buildPath(10)
	if got := Eccentricity(g, 1); got != 9 {
		t.Errorf("Eccentricity(end) = %d, want 9", got)
	}
	if got := Eccentricity(g, 5); got != 5 {
		t.Errorf("Eccentricity(middle) = %d, want 5", got)
	}
	if got := ExactDiameter(g); got != 9 {
		t.Errorf("ExactDiameter = %d, want 9", got)
	}
	if got := DoubleSweepLowerBound(g, 5); got != 9 {
		t.Errorf("DoubleSweepLowerBound = %d, want 9 on a path", got)
	}
}

func TestExactDiameterCycle(t *testing.T) {
	n := 8
	b := NewBuilder(n, n)
	b.AddVertices(n)
	for v := 1; v < n; v++ {
		b.AddEdge(Vertex(v), Vertex(v+1))
	}
	b.AddEdge(Vertex(n), 1)
	g := b.Freeze()
	if got := ExactDiameter(g); got != n/2 {
		t.Errorf("cycle diameter = %d, want %d", got, n/2)
	}
}

func TestDoubleSweepNeverExceedsDiameter(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 30; trial++ {
		n := r.IntRange(2, 40)
		b := NewBuilder(n, 2*n)
		b.AddVertices(n)
		// Random connected graph: spanning path plus random extras.
		for v := 1; v < n; v++ {
			b.AddEdge(Vertex(v), Vertex(v+1))
		}
		extra := r.Intn(n)
		for i := 0; i < extra; i++ {
			b.AddEdge(Vertex(r.IntRange(1, n)), Vertex(r.IntRange(1, n)))
		}
		g := b.Freeze()
		diam := ExactDiameter(g)
		lb := DoubleSweepLowerBound(g, Vertex(r.IntRange(1, n)))
		if lb > diam {
			t.Fatalf("double sweep %d exceeds exact diameter %d", lb, diam)
		}
	}
}

func TestAverageDistanceSampledPath(t *testing.T) {
	g := buildPath(3)
	// From source 1: distances 1 and 2 -> mean 1.5.
	got := AverageDistanceSampled(g, []Vertex{1})
	if got != 1.5 {
		t.Errorf("AverageDistanceSampled = %v, want 1.5", got)
	}
}

func TestAverageDistancePanicsWithoutSources(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty source list")
		}
	}()
	AverageDistanceSampled(buildPath(3), nil)
}

func BenchmarkBFS(b *testing.B) {
	r := rng.New(1)
	n := 1 << 14
	bld := NewBuilder(n, 2*n)
	bld.AddVertices(n)
	for v := 2; v <= n; v++ {
		bld.AddEdge(Vertex(v), Vertex(r.IntRange(1, v-1)))
	}
	g := bld.Freeze()
	dist := make([]int32, n+1)
	queue := make([]Vertex, 0, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BFSInto(g, 1, dist, queue)
	}
}
