// Benchmarks regenerating every experiment of the evaluation (DESIGN.md
// E1–E10). Each bench runs its experiment at a reduced scale so the
// full suite stays laptop-sized; use cmd/experiments -scale 1.0 for the
// EXPERIMENTS.md workloads. b.N loops re-run the full experiment, so
// per-op time is the cost of regenerating the table.
package scalefree_test

import (
	"testing"

	"scalefree/internal/experiment"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
	"scalefree/internal/weights"
)

// benchScale keeps every experiment bench in the hundreds-of-
// milliseconds range.
const benchScale = 0.05

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := experiment.Config{Seed: 2024, Scale: benchScale}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE1Theorem1Weak(b *testing.B)           { benchmarkExperiment(b, "E1") }
func BenchmarkE2Theorem1Strong(b *testing.B)         { benchmarkExperiment(b, "E2") }
func BenchmarkE3Theorem2CF(b *testing.B)             { benchmarkExperiment(b, "E3") }
func BenchmarkE4EquivalenceProbability(b *testing.B) { benchmarkExperiment(b, "E4") }
func BenchmarkE5MaxDegree(b *testing.B)              { benchmarkExperiment(b, "E5") }
func BenchmarkE6DegreeDistributions(b *testing.B)    { benchmarkExperiment(b, "E6") }
func BenchmarkE7Diameter(b *testing.B)               { benchmarkExperiment(b, "E7") }
func BenchmarkE8AdamicSearch(b *testing.B)           { benchmarkExperiment(b, "E8") }
func BenchmarkE9KleinbergRouting(b *testing.B)       { benchmarkExperiment(b, "E9") }
func BenchmarkE10PercolationSearch(b *testing.B)     { benchmarkExperiment(b, "E10") }
func BenchmarkE11UniformAttachment(b *testing.B)     { benchmarkExperiment(b, "E11") }

// BenchmarkAblationFenwickVsEndpointArray quantifies the design choice
// called out in DESIGN.md §5.2: exact mixed-weight sampling via a
// Fenwick tree versus the O(1) endpoint-array trick that only supports
// pure hit-count weights. Run with -bench Ablation to compare.
func BenchmarkAblationFenwickVsEndpointArray(b *testing.B) {
	const n = 1 << 15
	b.Run("fenwick", func(b *testing.B) {
		f := weights.NewFenwick(n)
		r := rng.New(1)
		for i := 1; i <= n; i++ {
			f.Add(i, 1)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Add(f.Sample(r), 1)
		}
	})
	b.Run("endpoint-array", func(b *testing.B) {
		e := weights.NewEndpointArray(n + 1)
		r := rng.New(1)
		for i := 1; i <= n; i++ {
			e.Record(int32(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Record(e.Sample(r))
		}
	})
}

// BenchmarkAblationMergeFactor measures how the merge factor m affects
// merged-Móri generation cost (the tree underneath has N·m vertices).
func BenchmarkAblationMergeFactor(b *testing.B) {
	for _, m := range []int{1, 2, 4, 8} {
		cfg := mori.Config{N: 1 << 11, M: m, P: 0.5}
		b.Run(cfg.String(), func(b *testing.B) {
			r := rng.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cfg.Generate(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
