// Benchmarks regenerating every experiment of the evaluation (DESIGN.md
// E1–E11). Each bench runs its experiment at a reduced scale so the
// full suite stays laptop-sized; use cmd/experiments -scale 1.0 for the
// EXPERIMENTS.md workloads. b.N loops re-run the full experiment, so
// per-op time is the cost of regenerating the table.
package scalefree_test

import (
	"context"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"scalefree/internal/cooperfrieze"
	"scalefree/internal/engine"
	"scalefree/internal/experiment"
	"scalefree/internal/fitness"
	"scalefree/internal/geopa"
	"scalefree/internal/graph"
	"scalefree/internal/model"
	"scalefree/internal/mori"
	"scalefree/internal/obs"
	"scalefree/internal/obs/trace"
	"scalefree/internal/rng"
	"scalefree/internal/sweep"
	"scalefree/internal/weights"
)

// benchScale keeps every experiment bench in the hundreds-of-
// milliseconds range.
const benchScale = 0.05

func benchmarkExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiment.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	cfg := experiment.Config{Seed: 2024, Scale: benchScale}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

func BenchmarkE1Theorem1Weak(b *testing.B)           { benchmarkExperiment(b, "E1") }
func BenchmarkE2Theorem1Strong(b *testing.B)         { benchmarkExperiment(b, "E2") }
func BenchmarkE3Theorem2CF(b *testing.B)             { benchmarkExperiment(b, "E3") }
func BenchmarkE4EquivalenceProbability(b *testing.B) { benchmarkExperiment(b, "E4") }
func BenchmarkE5MaxDegree(b *testing.B)              { benchmarkExperiment(b, "E5") }
func BenchmarkE6DegreeDistributions(b *testing.B)    { benchmarkExperiment(b, "E6") }
func BenchmarkE7Diameter(b *testing.B)               { benchmarkExperiment(b, "E7") }
func BenchmarkE8AdamicSearch(b *testing.B)           { benchmarkExperiment(b, "E8") }
func BenchmarkE9KleinbergRouting(b *testing.B)       { benchmarkExperiment(b, "E9") }
func BenchmarkE10PercolationSearch(b *testing.B)     { benchmarkExperiment(b, "E10") }
func BenchmarkE11UniformAttachment(b *testing.B)     { benchmarkExperiment(b, "E11") }
func BenchmarkE12FitnessModel(b *testing.B)          { benchmarkExperiment(b, "E12") }
func BenchmarkE13GeometricPA(b *testing.B)           { benchmarkExperiment(b, "E13") }

// BenchmarkExperimentWorkers measures the wall-clock speedup of the
// trial engine: the same experiment, same seed, same (bit-identical)
// tables, across worker counts. E1 is replication-heavy search
// measurement; E5 is generation-bound with uniform trial sizes. On a
// machine with GOMAXPROCS >= 4, workers=4 should beat workers=1 by >=2×
// per op. Run with -bench ExperimentWorkers to compare.
func BenchmarkExperimentWorkers(b *testing.B) {
	for _, id := range []string{"E1", "E5"} {
		exp, ok := experiment.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/workers=%d", id, workers), func(b *testing.B) {
				cfg := experiment.Config{Seed: 2024, Scale: benchScale}
				opts := engine.Options{Workers: workers}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tables, err := exp.RunContext(context.Background(), cfg, opts)
					if err != nil {
						b.Fatal(err)
					}
					if len(tables) == 0 {
						b.Fatal("no tables")
					}
				}
			})
		}
	}
}

// BenchmarkEngineOverhead isolates the engine's scheduling cost: trials
// that do almost no work, so per-op time is dominated by goroutine
// handoff and per-trial RNG construction.
func BenchmarkEngineOverhead(b *testing.B) {
	trials := make([]engine.Trial, 1024)
	for i := range trials {
		trials[i] = engine.Trial{Index: i, Key: "noop", Seed: rng.DeriveSeed(1, uint64(i))}
	}
	noop := func(_ context.Context, t engine.Trial, r *rng.RNG) (uint64, error) {
		return r.Uint64(), nil
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(context.Background(), trials, engine.Options{Workers: workers}, noop); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetricsOverhead prices the observability layer (DESIGN.md
// §9): the same no-op trial loop as BenchmarkEngineOverhead, bare
// versus carrying the exact per-trial instrumentation sweep.Execute
// adds (a timed histogram observation and a counter increment,
// resolved once outside the loop). On no-op trials the tax is
// visible — two clock reads plus a few atomic adds, order 100–200
// ns/trial next to the engine's ~250 ns/trial scheduling cost — which
// is exactly the point of the ns/trial metric: real trials run
// milliseconds, so the same absolute cost is under 0.1% there, an
// order of magnitude inside the <1% acceptance target. Zero extra
// allocations is the hard assertion; compare the ns/trial columns for
// the absolute tax.
func BenchmarkMetricsOverhead(b *testing.B) {
	trials := make([]engine.Trial, 1024)
	for i := range trials {
		trials[i] = engine.Trial{Index: i, Key: "noop", Seed: rng.DeriveSeed(1, uint64(i))}
	}
	reg := obs.NewRegistry()
	ctr := reg.CounterVec("bench_trials_completed_total", "bench", "exp").With("BENCH")
	hist := reg.HistogramVec("bench_trial_seconds", "bench", "exp", nil).With("BENCH")
	variants := []struct {
		name string
		fn   func(context.Context, engine.Trial, *rng.RNG) (uint64, error)
	}{
		{"bare", func(_ context.Context, t engine.Trial, r *rng.RNG) (uint64, error) {
			return r.Uint64(), nil
		}},
		{"instrumented", func(_ context.Context, t engine.Trial, r *rng.RNG) (uint64, error) {
			t0 := time.Now()
			v := r.Uint64()
			hist.ObserveDuration(time.Since(t0))
			ctr.Inc()
			return v, nil
		}},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(context.Background(), trials, engine.Options{Workers: 4}, v.fn); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(trials)), "ns/trial")
		})
	}
}

// BenchmarkTraceOverhead prices the tracing layer (DESIGN.md §11) the
// same way BenchmarkMetricsOverhead prices metrics: the identical
// no-op trial loop, bare versus running under a live trace.Recorder.
// Each traced trial records one span — two clock reads and two
// appends into the worker's preallocated buffer, no locks, no
// allocations — so the tax must land in the same order as the metrics
// instrumentation (the acceptance bound is ~2× of that pair's delta,
// i.e. a few hundred ns/trial on no-op trials, invisible on real
// millisecond trials). Identical allocs/op between the two variants is
// the hard assertion; compare the ns/trial columns for the absolute
// tax. Reset between iterations keeps the recorder's spill buffer at
// steady-state capacity, so the traced variant measures recording, not
// buffer growth.
func BenchmarkTraceOverhead(b *testing.B) {
	trials := make([]engine.Trial, 1024)
	for i := range trials {
		trials[i] = engine.Trial{Index: i, Key: "noop", Seed: rng.DeriveSeed(1, uint64(i))}
	}
	noop := func(_ context.Context, t engine.Trial, r *rng.RNG) (uint64, error) {
		return r.Uint64(), nil
	}
	for _, v := range []struct {
		name string
		rec  *trace.Recorder
	}{
		{"bare", nil},
		{"traced", trace.New()},
	} {
		b.Run(v.name, func(b *testing.B) {
			opts := engine.Options{Workers: 4, Trace: v.rec}
			if _, err := engine.Run(context.Background(), trials, opts, noop); err != nil {
				b.Fatal(err) // warm the writer pool and spill capacity
			}
			v.rec.Reset()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(context.Background(), trials, opts, noop); err != nil {
					b.Fatal(err)
				}
				v.rec.Reset() // nil-safe no-op on the bare variant
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(trials)), "ns/trial")
		})
	}
}

// BenchmarkGenerateMori is the sampler ablation at generator level
// (DESIGN.md §5.2): the O(n) endpoint-array production path (with and
// without scratch reuse) against the O(n log n) Fenwick reference. At
// n = 2^20 the production path must win by >= 2×; -short drops to a
// smoke size for CI.
func BenchmarkGenerateMori(b *testing.B) {
	n := 1 << 20
	if testing.Short() {
		n = 1 << 14
	}
	b.Run(fmt.Sprintf("endpoint/n=%d", n), func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mori.GenerateTree(r, n, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("endpoint-scratch/n=%d", n), func(b *testing.B) {
		r := rng.New(1)
		var s mori.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mori.GenerateTreeScratch(r, n, 0.5, &s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("fenwick/n=%d", n), func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mori.GenerateTreeFenwick(r, n, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenerateCooperFrieze is the Cooper–Frieze half of the
// generator ablation; see BenchmarkGenerateMori.
func BenchmarkGenerateCooperFrieze(b *testing.B) {
	n := 1 << 20
	if testing.Short() {
		n = 1 << 14
	}
	cfg := cooperfrieze.Config{N: n, Alpha: 0.75, Beta: 0.5, Gamma: 0.5,
		Delta: 0.5, AllowLoops: true}
	b.Run(fmt.Sprintf("endpoint/n=%d", n), func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cfg.Generate(r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("endpoint-scratch/n=%d", n), func(b *testing.B) {
		r := rng.New(1)
		var s cooperfrieze.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cfg.GenerateScratch(r, &s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("fenwick/n=%d", n), func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cfg.GenerateFenwick(r); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenerateFitness measures the Bianconi–Barabási production
// path: the O(1) endpoint-array rejection sampler, with and without
// scratch reuse (the O(n)-per-draw exact-inversion reference is
// validated by chi-square in the package tests but is quadratic, so it
// stays out of the benchmark). -short drops to a smoke size for CI.
func BenchmarkGenerateFitness(b *testing.B) {
	n := 1 << 18
	if testing.Short() {
		n = 1 << 13
	}
	cfg := fitness.Config{N: n, M: 2, Eta0: 0.1}
	b.Run(fmt.Sprintf("endpoint/n=%d", n), func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cfg.Generate(r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("endpoint-scratch/n=%d", n), func(b *testing.B) {
		r := rng.New(1)
		var s fitness.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cfg.GenerateScratch(r, &s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenerateGeoPA is the geometric-PA half of the new-model
// generator benchmarks; see BenchmarkGenerateFitness.
func BenchmarkGenerateGeoPA(b *testing.B) {
	n := 1 << 18
	if testing.Short() {
		n = 1 << 13
	}
	cfg := geopa.Config{N: n, M: 2, R: 0.25}
	b.Run(fmt.Sprintf("endpoint/n=%d", n), func(b *testing.B) {
		r := rng.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cfg.Generate(r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run(fmt.Sprintf("endpoint-scratch/n=%d", n), func(b *testing.B) {
		r := rng.New(1)
		var s geopa.Scratch
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := cfg.GenerateScratch(r, &s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenerateModels sweeps every registered model family
// through the registry (model.New → Generate with a shared
// model.Scratch) at comparable sizes, recording the per-model
// generation throughput BENCH_gen.json promises: a newly registered
// family shows up here with no benchmark changes (the bench fails
// loudly if its parameter entry is missing). -short drops to smoke
// sizes for CI.
func BenchmarkGenerateModels(b *testing.B) {
	n := 1 << 16
	if testing.Short() {
		n = 1 << 12
	}
	l := 1 << 8 // kleinberg: l² = n vertices
	if testing.Short() {
		l = 1 << 6
	}
	params := map[string]string{
		"mori":      fmt.Sprintf("n=%d,m=1,p=0.5", n),
		"cf":        fmt.Sprintf("n=%d,alpha=0.8", n),
		"ba":        fmt.Sprintf("n=%d,m=2", n),
		"config":    fmt.Sprintf("n=%d,k=2.3", n),
		"kleinberg": fmt.Sprintf("l=%d,r=2", l),
		"fitness":   fmt.Sprintf("n=%d,m=1,eta0=0.1", n),
		"geopa":     fmt.Sprintf("n=%d,m=1,r=0.25", n),
	}
	for _, f := range model.Families() {
		p, ok := params[f.Name]
		if !ok {
			b.Fatalf("no benchmark parameters for registered model %s — add an entry", f.Name)
		}
		m, err := model.New(f.Name, p)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/%s", f.Name, p), func(b *testing.B) {
			r := rng.New(1)
			var s model.Scratch
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := m.Generate(r, &s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationFenwickVsEndpointArray quantifies the sampler-level
// half of the design choice in DESIGN.md §5.2 — the O(log n) Fenwick
// *reference* sampler versus the O(1) endpoint-array *production*
// sampler that now drives every generator hot loop (the array supports
// only pure hit-count weights, which is exactly what the generators
// need after their mixture coin flip). Run with -bench Ablation to
// compare; BenchmarkGenerateMori/BenchmarkGenerateCooperFrieze show
// the end-to-end effect.
func BenchmarkAblationFenwickVsEndpointArray(b *testing.B) {
	const n = 1 << 15
	b.Run("fenwick", func(b *testing.B) {
		f := weights.NewFenwick(n)
		r := rng.New(1)
		for i := 1; i <= n; i++ {
			f.Add(i, 1)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f.Add(f.Sample(r), 1)
		}
	})
	b.Run("endpoint-array", func(b *testing.B) {
		e := weights.NewEndpointArray(n + 1)
		r := rng.New(1)
		for i := 1; i <= n; i++ {
			e.Record(int32(i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Record(e.Sample(r))
		}
	})
}

// BenchmarkAblationMergeFactor measures how the merge factor m affects
// merged-Móri generation cost (the tree underneath has N·m vertices).
func BenchmarkAblationMergeFactor(b *testing.B) {
	for _, m := range []int{1, 2, 4, 8} {
		cfg := mori.Config{N: 1 << 11, M: m, P: 0.5}
		b.Run(cfg.String(), func(b *testing.B) {
			r := rng.New(1)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cfg.Generate(r); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBFSParallel measures the frontier-parallel BFS (DESIGN.md
// §8) against the serial baseline on a single giant-component Móri
// graph: same dist output (byte-identical by construction), per-op time
// is one full-graph traversal. The acceptance target is >= 3× for
// workers=8 over workers=1 on a machine with >= 8 cores; workers=1
// takes the serial inline path, so it doubles as the baseline.
// -short drops to a smoke size for CI.
func BenchmarkBFSParallel(b *testing.B) {
	n := 1 << 22
	if testing.Short() {
		n = 1 << 16
	}
	cfg := mori.Config{N: n, M: 2, P: 0.5}
	g, err := cfg.Generate(rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	dist := make([]int32, g.NumVertices()+1)
	b.Run(fmt.Sprintf("serial/n=%d", n), func(b *testing.B) {
		queue := make([]graph.Vertex, 0, n)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			graph.BFSInto(g, 1, dist, queue)
		}
	})
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d/n=%d", workers, n), func(b *testing.B) {
			var s graph.BFSScratch
			graph.BFSParallelInto(g, 1, dist, workers, &s) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				graph.BFSParallelInto(g, 1, dist, workers, &s)
			}
		})
	}
}

// BenchmarkSnapshotOpen is the snapshot format's reason to exist in
// numbers: opening a frozen binary CSR snapshot (header validation +
// mmap, O(1) in the graph size) versus re-parsing the equivalent text
// edge list (O(m) with integer parsing and CSR reconstruction). The
// acceptance target at 2^24 edges is >= 100×. The write half is also
// benchmarked so BENCH_gen.json records the freeze cost a pipeline
// pays once per graph. -short drops to a smoke size for CI.
func BenchmarkSnapshotOpen(b *testing.B) {
	n := 1 << 22 // m = 4·n = 2^24 edges
	if testing.Short() {
		n = 1 << 14
	}
	cfg := mori.Config{N: n, M: 4, P: 0.5}
	g, err := cfg.Generate(rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	snapPath := filepath.Join(dir, "g.csr")
	edgePath := filepath.Join(dir, "g.edges")
	if err := graph.WriteSnapshotFile(snapPath, g); err != nil {
		b.Fatal(err)
	}
	ef, err := os.Create(edgePath)
	if err != nil {
		b.Fatal(err)
	}
	if err := graph.WriteEdgeList(ef, g); err != nil {
		b.Fatal(err)
	}
	if err := ef.Close(); err != nil {
		b.Fatal(err)
	}
	m := g.NumEdges()

	b.Run(fmt.Sprintf("open-snapshot/m=%d", m), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap, err := graph.OpenSnapshot(snapPath)
			if err != nil {
				b.Fatal(err)
			}
			if snap.Graph().NumEdges() != m {
				b.Fatal("wrong edge count")
			}
			snap.Close()
		}
	})
	b.Run(fmt.Sprintf("read-edgelist/m=%d", m), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := os.Open(edgePath)
			if err != nil {
				b.Fatal(err)
			}
			parsed, err := graph.ReadEdgeList(f)
			f.Close()
			if err != nil {
				b.Fatal(err)
			}
			if parsed.NumEdges() != m {
				b.Fatal("wrong edge count")
			}
		}
	})
	b.Run(fmt.Sprintf("write-snapshot/m=%d", m), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := graph.WriteSnapshotFile(snapPath, g); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardMerge measures the distribution layer's reassembly
// path (DESIGN.md §6): reading k shard files, decoding every trial
// result, validating coverage, and running the single Reduce. Setup
// (executing the shards) is outside the timer, so per-op time is the
// pure merge cost a coordinator pays after gathering files from k
// machines.
func BenchmarkShardMerge(b *testing.B) {
	exp, ok := experiment.ByID("E4")
	if !ok {
		b.Fatal("unknown experiment E4")
	}
	cfg := experiment.Config{Seed: 2024, Scale: benchScale}
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", k), func(b *testing.B) {
			dir := b.TempDir()
			var paths []string
			for i := 0; i < k; i++ {
				spec := sweep.ShardSpec{Index: i, Count: k}
				path := filepath.Join(dir, exp.ShardFileName(spec))
				if _, err := exp.RunShard(context.Background(), cfg, spec, engine.Options{}, nil, path, false); err != nil {
					b.Fatal(err)
				}
				paths = append(paths, path)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tables, err := exp.MergeShardFiles(cfg, paths)
				if err != nil {
					b.Fatal(err)
				}
				if len(tables) == 0 {
					b.Fatal("no tables")
				}
			}
		})
	}
}

// BenchmarkCacheHit measures a fully warm sweep: every trial satisfied
// from the content-addressed cache, so per-op time is plan
// construction + cache lookups + decode + Reduce — the cost of
// re-rendering an unchanged experiment's tables without recomputing
// anything. Compare against BenchmarkE5MaxDegree (the uncached run of
// the same plan).
func BenchmarkCacheHit(b *testing.B) {
	exp, ok := experiment.ByID("E5")
	if !ok {
		b.Fatal("unknown experiment E5")
	}
	cfg := experiment.Config{Seed: 2024, Scale: benchScale}
	cache, err := sweep.OpenCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	if _, _, err := exp.RunCached(context.Background(), cfg, engine.Options{}, cache); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, stats, err := exp.RunCached(context.Background(), cfg, engine.Options{}, cache)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || stats.Executed != 0 {
			b.Fatalf("cache miss during warm run: %+v", stats)
		}
	}
}

// BenchmarkCoordinatorDispatch measures the work-stealing layer's pure
// scheduling overhead (DESIGN.md §6.4): a loopback coordinator leasing
// 256 no-op trials to one in-process worker, chunk by chunk, results
// streamed back and assembled. Trial execution is free here, so per-op
// time is protocol round trips + lease bookkeeping + encode/decode —
// the toll the coordinator adds on top of the trials themselves. The
// ns/trial metric is the per-trial dispatch cost to compare against
// real trial runtimes (milliseconds and up).
func BenchmarkCoordinatorDispatch(b *testing.B) {
	const nTrials = 256
	trials := make([]engine.Trial, nTrials)
	for i := range trials {
		trials[i] = engine.Trial{Index: i, Key: fmt.Sprintf("bench/%d", i), Seed: uint64(i)}
	}
	job := sweep.Job{ExpID: "BENCH", Fingerprint: "benchmark-fingerprint"}
	resolve := func(expID, fingerprint string) (*sweep.WorkerJob, error) {
		return &sweep.WorkerJob{
			Trials: trials,
			Execute: func(_ context.Context, sub []engine.Trial) (map[int]any, sweep.Stats, error) {
				out := make(map[int]any, len(sub))
				for _, t := range sub {
					out[t.Index] = float64(t.Seed)
				}
				return out, sweep.Stats{Executed: len(sub)}, nil
			},
		}, nil
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		outcome := make(chan error, 1)
		go func() {
			results, err := sweep.Coordinate(context.Background(), lis,
				[]sweep.CoordJob{{Job: job, Trials: trials}},
				sweep.CoordOptions{ChunkSize: 8, Linger: time.Millisecond})
			if err == nil && len(results[0]) != nTrials {
				err = fmt.Errorf("assembled %d of %d results", len(results[0]), nTrials)
			}
			outcome <- err
		}()
		if _, err := sweep.RunWorker(context.Background(), lis.Addr().String(), resolve,
			sweep.WorkerOptions{Name: "bench"}); err != nil {
			b.Fatal(err)
		}
		if err := <-outcome; err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*nTrials), "ns/trial")
}
