package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Dir   string // absolute directory
	Path  string // import path ("scalefree/internal/sweep")
	Name  string // package name ("sweep")
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Notes *Notes
}

// Loader type-checks a tree of Go packages using only the standard
// library: module-internal import paths resolve to directories under
// Root and are checked from source in dependency order; everything
// else (the standard library) goes through the source importer, so no
// pre-compiled export data is required.
type Loader struct {
	// Root is the directory tree to load.
	Root string
	// ModulePath maps Root to an import-path prefix ("scalefree").
	// When empty, each immediate subdirectory of Root is a package
	// whose import path is its directory name — the GOPATH-style
	// layout the analysistest fixtures use.
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	parsed  map[string]*parsedPkg // import path -> parsed files
	checked map[string]*Package   // import path -> completed package
	loading map[string]bool       // import-cycle guard
	scanned bool
}

type parsedPkg struct {
	dir   string
	files []*ast.File
}

// NewLoader returns a loader rooted at root. modulePath may be empty
// for the fixture layout (see Loader.ModulePath).
func NewLoader(root, modulePath string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:       root,
		ModulePath: modulePath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		parsed:     map[string]*parsedPkg{},
		checked:    map[string]*Package{},
		loading:    map[string]bool{},
	}
}

// ModulePathOf reads the module path out of the go.mod at root.
func ModulePathOf(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// Load parses and type-checks every package under Root (skipping
// testdata, hidden directories, and _test.go files) and returns them
// in import-path order. Dependencies load on demand, so the slice is
// closed under module-internal imports.
func (l *Loader) Load() ([]*Package, error) {
	if err := l.scan(); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(l.parsed))
	for p := range l.parsed {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadPackage scans Root and type-checks the single package at
// importPath (plus, recursively, its dependencies).
func (l *Loader) LoadPackage(importPath string) (*Package, error) {
	if err := l.scan(); err != nil {
		return nil, err
	}
	return l.load(importPath)
}

// scan discovers and parses every package directory under Root. It
// runs once per loader.
func (l *Loader) scan() error {
	if l.scanned {
		return nil
	}
	l.scanned = true
	return filepath.Walk(l.Root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			return nil
		}
		base := info.Name()
		if p != l.Root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
			return filepath.SkipDir
		}
		pkg, err := l.parseDir(p)
		if err != nil {
			return err
		}
		if pkg != nil {
			path, ok := l.importPathFor(p)
			if ok {
				l.parsed[path] = pkg
			}
		}
		return nil
	})
}

// importPathFor maps a directory under Root to its import path.
func (l *Loader) importPathFor(dir string) (string, bool) {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil {
		return "", false
	}
	rel = filepath.ToSlash(rel)
	if l.ModulePath == "" {
		// Fixture layout: packages are the subdirectories themselves.
		if rel == "." {
			return "", false
		}
		return rel, true
	}
	if rel == "." {
		return l.ModulePath, true
	}
	return l.ModulePath + "/" + rel, true
}

// parseDir parses the non-test Go files of one directory, honouring
// build constraints so mutually exclusive files (mmap_unix.go /
// mmap_other.go) do not collide. Returns nil when the directory holds
// no Go package.
func (l *Loader) parseDir(dir string) (*parsedPkg, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	var files []*ast.File
	for _, f := range matches {
		name := filepath.Base(f)
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		af, err := parser.ParseFile(l.fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, af)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &parsedPkg{dir: dir, files: files}, nil
}

// load type-checks one scanned package (and, recursively, its
// module-internal dependencies).
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	pp := l.parsed[path]
	if pp == nil {
		return nil, fmt.Errorf("lint: package %s not found under %s", path, l.Root)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(func(dep string) (*types.Package, error) {
		if _, ours := l.parsed[dep]; ours {
			pkg, err := l.load(dep)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
		return l.std.Import(dep)
	})}
	tpkg, err := conf.Check(path, l.fset, pp.files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	pkg := &Package{
		Dir:   pp.dir,
		Path:  path,
		Name:  tpkg.Name(),
		Fset:  l.fset,
		Files: pp.files,
		Types: tpkg,
		Info:  info,
	}
	notes, err := parseNotes(pkg)
	if err != nil {
		return nil, err
	}
	pkg.Notes = notes
	l.checked[path] = pkg
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
