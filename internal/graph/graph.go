// Package graph provides the graph substrate shared by every model and
// algorithm in the repository: a growable directed multigraph builder
// for the evolving random-graph models, an immutable CSR snapshot for
// searching and measurement, traversal (BFS, eccentricity, diameter),
// connected components, and edge-list serialization.
//
// Conventions, chosen to match the paper:
//
//   - Vertex identities are 1-based and range over [1, n]; 0 (NoVertex)
//     means "none". In the evolving models the identity of a vertex
//     equals its insertion time, which is exactly the age/label
//     correlation the paper's lower bounds exploit.
//   - Graphs are directed multigraphs: parallel edges and self-loops are
//     both legal, as produced by merged Móri graphs and Cooper–Frieze
//     processes. Searching always uses the underlying undirected view.
//   - The undirected degree of a vertex is its number of incident
//     half-edges, so a self-loop contributes two.
package graph

import (
	"sync"

	"scalefree/internal/buf"
)

// Vertex identifies a vertex; identities are 1-based.
type Vertex int32

// NoVertex is the zero Vertex, used as an explicit "none".
const NoVertex Vertex = 0

// EdgeID identifies an edge as an index into the edge arrays.
type EdgeID int32

// NoEdge is the EdgeID used as an explicit "none".
const NoEdge EdgeID = -1

// Half is one half-edge: an edge seen from one of its endpoints.
// A vertex's incidence list is a slice of halves; a self-loop appears
// twice (once with Out true, once with Out false), so len(incidence)
// is the undirected degree.
type Half struct {
	Edge  EdgeID
	Other Vertex // the far endpoint; equals the owner for self-loops
	Out   bool   // true when the owner is the tail (edge points away)
}

// Builder is a growable directed multigraph under construction by one
// of the evolving models. The zero value is an empty graph ready to
// use; NewBuilder pre-allocates capacity.
//
// The builder stores only the flat edge list plus per-vertex degree
// counters; per-vertex incidence is materialized once, at Freeze time,
// by a two-pass counting build (degree count → prefix sum → fill). That
// keeps AddEdge O(1) with no per-vertex slice allocations, so building
// an n-vertex, m-edge graph costs O(n + m) time and O(1) allocations
// beyond the four flat arrays.
type Builder struct {
	from, to []Vertex
	indeg    []int32 // 1-based: indeg[0] is unused padding
	outdeg   []int32
}

// NewBuilder returns a Builder with capacity hints for the final vertex
// and edge counts. Hints only affect allocation, not semantics.
func NewBuilder(vertexCap, edgeCap int) *Builder {
	b := &Builder{}
	b.Reset(vertexCap, edgeCap)
	return b
}

// Reset empties the builder for reuse, keeping (and, when the hints ask
// for more, growing) the backing arrays. A Reset builder plus
// FreezeInto makes repeated same-size graph construction allocation-
// free.
func (b *Builder) Reset(vertexCap, edgeCap int) {
	if cap(b.indeg) < vertexCap+1 {
		b.indeg = make([]int32, 1, vertexCap+1)
		b.outdeg = make([]int32, 1, vertexCap+1)
	} else {
		b.indeg = b.indeg[:1]
		b.outdeg = b.outdeg[:1]
		b.indeg[0], b.outdeg[0] = 0, 0
	}
	if cap(b.from) < edgeCap {
		b.from = make([]Vertex, 0, edgeCap)
		b.to = make([]Vertex, 0, edgeCap)
	} else {
		b.from = b.from[:0]
		b.to = b.to[:0]
	}
}

// AddVertex appends a new vertex and returns its identity, which is
// always the current vertex count plus one.
func (b *Builder) AddVertex() Vertex {
	b.ensureInit()
	b.indeg = append(b.indeg, 0)
	b.outdeg = append(b.outdeg, 0)
	return Vertex(len(b.indeg) - 1)
}

// AddVertices appends k new vertices.
func (b *Builder) AddVertices(k int) {
	for i := 0; i < k; i++ {
		b.AddVertex()
	}
}

func (b *Builder) ensureInit() {
	if len(b.indeg) == 0 {
		b.indeg = make([]int32, 1)
		b.outdeg = make([]int32, 1)
	}
}

// AddEdge appends the directed edge u -> v and returns its EdgeID.
// Both endpoints must already exist. Self-loops and parallel edges are
// legal; a self-loop adds two halves to the owner's incidence list.
func (b *Builder) AddEdge(u, v Vertex) EdgeID {
	if u <= 0 || int(u) >= len(b.indeg) || v <= 0 || int(v) >= len(b.indeg) {
		panic("graph: AddEdge endpoint out of range")
	}
	e := EdgeID(len(b.from))
	b.from = append(b.from, u)
	b.to = append(b.to, v)
	b.outdeg[u]++
	b.indeg[v]++
	return e
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int {
	if len(b.indeg) == 0 {
		return 0
	}
	return len(b.indeg) - 1
}

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.from) }

// InDegree returns the number of edges pointing into v.
func (b *Builder) InDegree(v Vertex) int { return int(b.indeg[v]) }

// OutDegree returns the number of edges leaving v.
func (b *Builder) OutDegree(v Vertex) int { return int(b.outdeg[v]) }

// Degree returns the undirected degree of v (self-loops count twice).
func (b *Builder) Degree(v Vertex) int { return int(b.indeg[v] + b.outdeg[v]) }

// Endpoints returns the tail and head of edge e.
func (b *Builder) Endpoints(e EdgeID) (from, to Vertex) {
	return b.from[e], b.to[e]
}

// Freeze converts the builder into an immutable CSR Graph. The builder
// remains usable afterwards; the snapshot copies all state.
func (b *Builder) Freeze() *Graph {
	return b.FreezeInto(new(Graph))
}

// FreezeInto is Freeze writing into a caller-owned Graph whose backing
// arrays are reused when large enough, so repeated same-size snapshots
// allocate nothing. The previous contents of g are overwritten; the
// returned pointer is g. The snapshot is a copy — mutating the builder
// afterwards does not affect it (the next FreezeInto does).
//
// Incidence order matches the historical per-vertex append order: each
// vertex's halves appear in edge-insertion order, with a self-loop
// contributing its Out half before its In half.
func (b *Builder) FreezeInto(g *Graph) *Graph {
	b.ensureInit()
	n := b.NumVertices()
	m := len(b.from)
	g.n = n
	g.from = buf.Grow(g.from, m)
	copy(g.from, b.from)
	g.to = buf.Grow(g.to, m)
	copy(g.to, b.to)
	g.indeg = buf.Grow(g.indeg, n+1)
	copy(g.indeg, b.indeg)
	g.outdeg = buf.Grow(g.outdeg, n+1)
	copy(g.outdeg, b.outdeg)

	// Counting build: off[v] starts as the first half slot of v
	// (prefix sums of undirected degrees) and doubles as the fill
	// cursor; a final shift restores the CSR convention off[v] =
	// start(v), off[n+1] = 2m.
	g.off = buf.Grow(g.off, n+2)
	g.off[0], g.off[1] = 0, 0
	for v := 1; v <= n; v++ {
		g.off[v+1] = g.off[v] + b.indeg[v] + b.outdeg[v]
	}
	g.halves = buf.Grow(g.halves, 2*m)
	for e := 0; e < m; e++ {
		u, v := b.from[e], b.to[e]
		g.halves[g.off[u]] = Half{Edge: EdgeID(e), Other: v, Out: true}
		g.off[u]++
		g.halves[g.off[v]] = Half{Edge: EdgeID(e), Other: u, Out: false}
		g.off[v]++
	}
	for v := n + 1; v >= 2; v-- {
		g.off[v] = g.off[v-1]
	}
	g.off[1] = 0
	return g
}

// Graph is an immutable directed multigraph in CSR layout. Build one
// with Builder.Freeze or the package constructors. All per-vertex
// queries are O(1); incidence iteration is cache-friendly.
type Graph struct {
	n        int
	from, to []Vertex
	off      []int32 // off[v]..off[v+1] indexes halves; off[0] unused
	halves   []Half
	indeg    []int32
	outdeg   []int32
}

// NumVertices returns the vertex count n; identities are 1..n.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.from) }

// Degree returns the undirected degree of v (self-loops count twice).
func (g *Graph) Degree(v Vertex) int {
	return int(g.off[v+1] - g.off[v])
}

// InDegree returns the number of edges pointing into v.
func (g *Graph) InDegree(v Vertex) int { return int(g.indeg[v]) }

// OutDegree returns the number of edges leaving v.
func (g *Graph) OutDegree(v Vertex) int { return int(g.outdeg[v]) }

// Incident returns v's half-edges. The returned slice aliases internal
// storage and must not be modified.
func (g *Graph) Incident(v Vertex) []Half {
	return g.halves[g.off[v]:g.off[v+1]]
}

// HalfAt returns v's incident half-edge in the given slot,
// 0 <= slot < Degree(v).
func (g *Graph) HalfAt(v Vertex, slot int) Half {
	return g.halves[int(g.off[v])+slot]
}

// Endpoints returns the tail and head of edge e.
func (g *Graph) Endpoints(e EdgeID) (from, to Vertex) {
	return g.from[e], g.to[e]
}

// AppendNeighbors appends the multiset of v's neighbors (one entry per
// half-edge, so parallel edges repeat and a self-loop contributes v
// twice) to dst and returns the extended slice.
func (g *Graph) AppendNeighbors(dst []Vertex, v Vertex) []Vertex {
	for _, h := range g.Incident(v) {
		dst = append(dst, h.Other)
	}
	return dst
}

// Degrees returns the undirected degree of every vertex, indexed 1..n
// (entry 0 is zero padding).
func (g *Graph) Degrees() []int {
	ds := make([]int, g.n+1)
	for v := Vertex(1); v <= Vertex(g.n); v++ {
		ds[v] = g.Degree(v)
	}
	return ds
}

// InDegrees returns the indegree of every vertex, indexed 1..n.
func (g *Graph) InDegrees() []int {
	ds := make([]int, g.n+1)
	for v := Vertex(1); v <= Vertex(g.n); v++ {
		ds[v] = g.InDegree(v)
	}
	return ds
}

// AppendDegrees appends the undirected degree of every vertex 1..n to
// dst (n entries, no padding slot) and returns the extended slice —
// the allocation-free counterpart of Degrees()[1:] for callers with a
// reusable buffer.
func (g *Graph) AppendDegrees(dst []int) []int {
	for v := Vertex(1); v <= Vertex(g.n); v++ {
		dst = append(dst, g.Degree(v))
	}
	return dst
}

// AppendInDegrees appends the indegree of every vertex 1..n to dst;
// see AppendDegrees.
func (g *Graph) AppendInDegrees(dst []int) []int {
	for v := Vertex(1); v <= Vertex(g.n); v++ {
		dst = append(dst, g.InDegree(v))
	}
	return dst
}

// MaxDegree returns the maximum undirected degree, or 0 for an empty
// graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := Vertex(1); v <= Vertex(g.n); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// MaxInDegree returns the maximum indegree, or 0 for an empty graph.
func (g *Graph) MaxInDegree() int {
	max := 0
	for v := Vertex(1); v <= Vertex(g.n); v++ {
		if d := g.InDegree(v); d > max {
			max = d
		}
	}
	return max
}

// MaxDegreeParallel is MaxDegree with the vertex range partitioned
// over up to workers goroutines, per-worker partial maxima merged at
// the end. Identical result for every worker count.
func (g *Graph) MaxDegreeParallel(workers int) int {
	return maxOverVertices(g.n, workers, func(v Vertex) int { return g.Degree(v) })
}

// MaxInDegreeParallel is MaxInDegree partitioned like MaxDegreeParallel.
func (g *Graph) MaxInDegreeParallel(workers int) int {
	return maxOverVertices(g.n, workers, func(v Vertex) int { return g.InDegree(v) })
}

// maxOverVertices partitions 1..n into contiguous worker ranges and
// merges the per-range maxima.
func maxOverVertices(n, workers int, f func(Vertex) int) int {
	if workers <= 1 || n < 1<<14 {
		max := 0
		for v := Vertex(1); v <= Vertex(n); v++ {
			if d := f(v); d > max {
				max = d
			}
		}
		return max
	}
	partial := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := 1 + n*w/workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			max := 0
			for v := Vertex(lo); v <= Vertex(hi); v++ {
				if d := f(v); d > max {
					max = d
				}
			}
			partial[w] = max
		}(w, lo, hi)
	}
	wg.Wait()
	max := 0
	for _, d := range partial {
		if d > max {
			max = d
		}
	}
	return max
}

// NumSelfLoops counts edges whose endpoints coincide.
func (g *Graph) NumSelfLoops() int {
	count := 0
	for e := range g.from {
		if g.from[e] == g.to[e] {
			count++
		}
	}
	return count
}
