package sweep

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"scalefree/internal/engine"
)

// cacheMagic heads every cache entry file, followed by the uvarint
// codec version, the plan fingerprint, and the EncodeResult payload.
// The fingerprint is not consulted on Get (the content address already
// pins it) — it exists so GC can attribute every entry to the run that
// produced it.
const cacheMagic = "SFCACHE1"

// tempPrefix marks in-flight atomic writes. Anything carrying it is
// never a cache entry: Len skips it, GC reaps it, and OpenCache reaps
// stale ones a crashed writer left behind.
const tempPrefix = ".tmp-"

// tempReapAge is how old an orphaned temp file must be before
// OpenCache deletes it. The age gate keeps a concurrent writer's
// in-flight temp safe: a healthy atomic write lives milliseconds, not
// minutes.
const tempReapAge = 10 * time.Minute

// Cache is a content-addressed store of encoded trial results. Entries
// live at <dir>/<key[:2]>/<key> (two-level fan-out keeps directories
// small on full-scale sweeps); writes are atomic rename-into-place, so
// a cache shared by concurrent shard processes on one filesystem is
// safe — the worst race is both computing the same pure result and one
// rename winning.
//
// The cache is an optimization layer with a strict correctness rule:
// Get must only ever return a value that Put stored under the same
// content address. Unreadable or corrupt entries are treated as
// misses, never as errors — the trial simply re-executes and
// overwrites the entry. Keys that cannot address an entry at all
// (shorter than the fan-out prefix, or not lowercase hex) are a Get
// miss and a Put error: they cannot come from CacheKey, so storing
// under one would write an unfindable file.
type Cache struct {
	dir string
	// openedAt is the eviction watermark: entries written or touched at
	// or after it belong to the current run and EvictTo never removes
	// them (see EvictTo).
	openedAt time.Time
}

// OpenCache opens (creating if needed) a result cache rooted at dir,
// and sweeps out temp files old enough to be orphans of crashed
// writers.
//
//sf:wallclock — the reap watermark is a real filesystem timestamp.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("sweep: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: opening cache: %w", err)
	}
	// Back the watermark off by a second so filesystems with coarse
	// timestamp granularity cannot round an entry this run just touched
	// to "before open".
	c := &Cache{dir: dir, openedAt: time.Now().Add(-time.Second)}
	if err := c.reapTemps(time.Now().Add(-tempReapAge)); err != nil {
		return nil, fmt.Errorf("sweep: opening cache: %w", err)
	}
	return c, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// validKey reports whether key can address a cache entry: long enough
// for the two-character fan-out prefix and lowercase hex, the only
// form CacheKey produces. Everything else would panic the path split
// or escape the cache directory.
func validKey(key string) bool {
	if len(key) < 3 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key)
}

// Get looks a trial result up by content address. ok reports a hit;
// malformed keys and missing, truncated, version-skewed, or
// undecodable entries are misses.
//
//sf:wallclock — hit-recency touches use real mtimes for eviction.
func (c *Cache) Get(key string) (v any, ok bool) {
	if !validKey(key) {
		mCacheMisses.Inc()
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		mCacheMisses.Inc()
		return nil, false
	}
	_, payload, err := parseEntry(data)
	if err != nil {
		mCacheMisses.Inc()
		return nil, false
	}
	v, err = DecodeResult(payload)
	if err != nil {
		mCacheMisses.Inc()
		return nil, false
	}
	mCacheHits.Inc()
	// Touch the entry so eviction order tracks use, not just writes —
	// atime is unreliable (noatime mounts), so the mtime doubles as the
	// recency signal. Best-effort: a failed touch only ages the entry.
	now := time.Now()
	os.Chtimes(c.path(key), now, now)
	return v, true
}

// Put stores an encoded trial result under key, atomically, tagged
// with the plan fingerprint that produced it (see GC). Errors are
// real (malformed key, disk full, permissions): persistence was
// requested and did not happen, so callers must surface them rather
// than silently running an unresumable sweep.
func (c *Cache) Put(key, fingerprint string, v any) error {
	if !validKey(key) {
		return fmt.Errorf("sweep: cache put: malformed key %q (want lowercase hex, >= 3 chars)", key)
	}
	payload, err := EncodeResult(v)
	if err != nil {
		return err
	}
	data := append(entryHeader(fingerprint), payload...)
	dst := c.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	if err := atomicWriteFile(dst, data); err != nil {
		return err
	}
	mCachePutBytes.Add(int64(len(data)))
	return nil
}

// Len counts the entries currently in the cache (test and stats
// support; it walks the directory). In-flight or orphaned temp files
// are not entries and are not counted.
func (c *Cache) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(c.dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && !strings.HasPrefix(d.Name(), tempPrefix) {
			n++
		}
		return nil
	})
	return n, err
}

// GCStats reports what one GC pass removed.
type GCStats struct {
	// Entries counts removed cache entries carrying the target
	// fingerprint.
	Entries int
	// Corrupt counts removed files that were not parseable cache
	// entries; they could never be hits, only waste scans.
	Corrupt int
	// Temps counts removed temp files (crashed writers' leftovers).
	Temps int
	// Bytes totals the sizes of everything removed.
	Bytes int64
}

func (s GCStats) String() string {
	return fmt.Sprintf("%d entries, %d corrupt, %d temp files (%d bytes)", s.Entries, s.Corrupt, s.Temps, s.Bytes)
}

// GC removes every cache entry written under the given plan
// fingerprint — the artifacts of a finished or abandoned run, which
// nothing can address once its workload changed — plus all temp files
// and any corrupt entries it encounters. Entries of other fingerprints
// are untouched, so a shared cache directory survives the GC of one
// run. Run it when no sweep is writing the same fingerprint.
func (c *Cache) GC(fingerprint string) (GCStats, error) {
	var stats GCStats
	if fingerprint == "" {
		return stats, errors.New("sweep: cache gc: empty fingerprint")
	}
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		remove := false
		switch data, rerr := os.ReadFile(path); {
		case strings.HasPrefix(d.Name(), tempPrefix):
			stats.Temps++
			remove = true
		case rerr != nil:
			return rerr
		default:
			fp, _, perr := parseEntry(data)
			switch {
			case perr != nil:
				stats.Corrupt++
				remove = true
			case fp == fingerprint:
				stats.Entries++
				remove = true
			}
		}
		if remove {
			if info, err := d.Info(); err == nil {
				stats.Bytes += info.Size()
			}
			// Tolerate losing the removal race: another process's
			// OpenCache may reap the same temp file concurrently.
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return stats, fmt.Errorf("sweep: cache gc: %w", err)
	}
	mCacheGCRemoved.Add(int64(stats.Entries + stats.Corrupt + stats.Temps))
	c.pruneEmptyDirs()
	return stats, nil
}

// EvictStats reports what one EvictTo pass did.
type EvictStats struct {
	// Entries and Bytes count what was removed.
	Entries int
	Bytes   int64
	// Kept is the total size of entries left in the cache, including
	// protected ones — so Kept may exceed the requested bound when the
	// current run's own entries alone are over it.
	Kept int64
}

func (s EvictStats) String() string {
	return fmt.Sprintf("evicted %d entries (%d bytes), %d bytes kept", s.Entries, s.Bytes, s.Kept)
}

// EvictTo removes least-recently-used cache entries until the cache's
// total size is at most maxBytes. Recency is the entry's mtime: Put
// writes it and Get refreshes it, so the eviction order is true LRU
// on noatime filesystems too. Entries written or touched since this
// Cache was opened are never removed regardless of the bound — the
// current run's working set must survive its own eviction pass, or a
// bounded cache would silently un-persist a sweep in progress. Temp
// files are ignored (reapTemps and GC own them).
func (c *Cache) EvictTo(maxBytes int64) (EvictStats, error) {
	var stats EvictStats
	if maxBytes < 0 {
		return stats, fmt.Errorf("sweep: cache evict: negative size bound %d", maxBytes)
	}
	type entry struct {
		path string
		size int64
		mod  time.Time
	}
	var entries []entry
	var total int64
	err := filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasPrefix(d.Name(), tempPrefix) {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return nil // raced with a concurrent removal; not ours
		}
		total += info.Size()
		entries = append(entries, entry{path: path, size: info.Size(), mod: info.ModTime()})
		return nil
	})
	if err != nil {
		return stats, fmt.Errorf("sweep: cache evict: %w", err)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mod.Before(entries[j].mod) })
	for _, e := range entries {
		if total <= maxBytes {
			break
		}
		if !e.mod.Before(c.openedAt) {
			// Current-run entry: protected. Entries are mtime-sorted, so
			// everything after this one is protected too.
			break
		}
		if err := os.Remove(e.path); err != nil {
			if os.IsNotExist(err) {
				continue // lost a race with GC or another evictor
			}
			return stats, fmt.Errorf("sweep: cache evict: %w", err)
		}
		total -= e.size
		stats.Entries++
		stats.Bytes += e.size
	}
	stats.Kept = total
	mCacheEvictedEntries.Add(int64(stats.Entries))
	mCacheEvictedBytes.Add(stats.Bytes)
	c.pruneEmptyDirs()
	return stats, nil
}

// reapTemps removes temp files last modified before cutoff.
func (c *Cache) reapTemps(cutoff time.Time) error {
	return filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasPrefix(d.Name(), tempPrefix) {
			return err
		}
		info, err := d.Info()
		if err != nil {
			// Raced with another process's rename or cleanup: not ours
			// to report.
			return nil
		}
		if info.ModTime().Before(cutoff) {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		return nil
	})
}

// pruneEmptyDirs drops fan-out directories GC emptied; best-effort,
// since a concurrent Put may legitimately repopulate one mid-scan.
func (c *Cache) pruneEmptyDirs() {
	dirs, err := os.ReadDir(c.dir)
	if err != nil {
		return
	}
	for _, d := range dirs {
		if d.IsDir() {
			os.Remove(filepath.Join(c.dir, d.Name())) // fails unless empty
		}
	}
}

func entryHeader(fingerprint string) []byte {
	buf := binary.AppendUvarint([]byte(cacheMagic), CodecVersion)
	return appendString(buf, fingerprint)
}

// parseEntry splits a cache entry file into the fingerprint it was
// written under and the encoded result payload.
func parseEntry(data []byte) (fingerprint string, payload []byte, err error) {
	if len(data) < len(cacheMagic) || string(data[:len(cacheMagic)]) != cacheMagic {
		return "", nil, errors.New("sweep: not a cache entry")
	}
	d := &decoder{buf: data, pos: len(cacheMagic)}
	ver := d.uvarint()
	if d.err == nil && ver != CodecVersion {
		return "", nil, fmt.Errorf("sweep: cache entry codec version %d, want %d", ver, CodecVersion)
	}
	fingerprint = d.string()
	if d.err != nil {
		return "", nil, d.err
	}
	return fingerprint, data[d.pos:], nil
}

// lookupTrial consults an optional cache for one trial; a nil cache
// always misses.
func lookupTrial(c *Cache, expID, fingerprint string, t engine.Trial) (any, bool) {
	if c == nil {
		return nil, false
	}
	return c.Get(CacheKey(expID, fingerprint, t))
}

// storeTrial persists one trial result to an optional cache; a nil
// cache stores nothing.
func storeTrial(c *Cache, expID, fingerprint string, t engine.Trial, v any) error {
	if c == nil {
		return nil
	}
	return c.Put(CacheKey(expID, fingerprint, t), fingerprint, v)
}

// atomicWriteFile writes data to path via a sibling temp file and
// rename, so readers never observe a partial file and concurrent
// writers of identical content race harmlessly. The temp name is
// dot-prefixed so a crashed writer's leftovers can never match the
// "<expID>.shard-*" glob a merge run sweeps up, and carries tempPrefix
// so cache maintenance recognizes it.
func atomicWriteFile(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), tempPrefix+filepath.Base(path)+"-*")
	if err != nil {
		return fmt.Errorf("sweep: atomic write: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("sweep: atomic write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("sweep: atomic write: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("sweep: atomic write: %w", err)
	}
	return nil
}
