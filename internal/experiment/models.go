package experiment

import (
	"context"
	"fmt"
	"math"

	"scalefree/internal/core"
	"scalefree/internal/model"
	"scalefree/internal/rng"
	"scalefree/internal/search"
	"scalefree/internal/stats"
)

// E12 and E13 answer the paper's closing remark through the model
// registry: the full weak/strong search battery of E1/E2, run on two
// workloads the paper never measured — the Bianconi–Barabási fitness
// model and geometric preferential attachment. Both plans are built
// entirely against internal/model: the graphs come from registry
// instances via core.ModelGen, the trial keys embed the instances'
// canonical parameter encodings (so plan fingerprints pin the model
// parameters), and adding the next workload is one more
// planRegistryBattery call with a family name.

// PlanE12 runs the battery on the fitness model: fitness breaks the
// strict age/degree correlation (a young, fit vertex can overtake old
// hubs), probing whether the Ω(√n) non-searchability survives when age
// no longer determines degree.
func PlanE12(cfg Config) (*Plan, error) {
	return planRegistryBattery(cfg, "E12", "fitness", "m=1,eta0=0.1", 1200)
}

// PlanE13 runs the battery on geometric preferential attachment:
// spatially damped degrees make hubs local, probing non-searchability
// when the graph carries a hidden geometry no local algorithm sees.
func PlanE13(cfg Config) (*Plan, error) {
	return planRegistryBattery(cfg, "E13", "geopa", "m=1,r=0.25", 1300)
}

// planRegistryBattery assembles the weak/strong battery for one
// registered model family: per-size structure cells (degree statistics
// and power-law tail fit), a weak-model scaling cell per weak
// algorithm, and a strong-model scaling cell per strong algorithm. The
// target is the youngest vertex n, the paper's hard target — both
// families number vertices by arrival. tag is the family's non-size
// parameter string ("m=1,eta0=0.1"); it lands in every trial key, so
// the plan fingerprint pins the model parameters the way it pins seed
// and scale. base spaces the experiment's seed streams away from
// E1–E11's.
func planRegistryBattery(cfg Config, id, family, tag string, base uint64) (*Plan, error) {
	sizes := cfg.sizes(512, 5)
	reps := cfg.scaleInt(24, 6)
	b := newPlanBuilder()

	// Instantiate the registry models once at plan time so parameter
	// errors surface before any trial runs.
	models := make([]model.Model, len(sizes))
	for i, n := range sizes {
		m, err := model.New(family, fmt.Sprintf("n=%d,%s", n, tag))
		if err != nil {
			return nil, fmt.Errorf("%s: instantiating %s at n=%d: %w", id, family, n, err)
		}
		models[i] = m
	}
	genFor := func(n int) core.GraphGen {
		for i, sz := range sizes {
			if sz == n {
				return core.ModelGen(models[i])
			}
		}
		// Unreachable: addScalingCell only asks for the plan's sizes.
		panic(fmt.Sprintf("%s: no model instantiated for n=%d", id, n))
	}

	// Structure cells: one generation per size, reporting the degree
	// statistics that situate the battery (is the workload scale-free,
	// how large are its hubs).
	structIdx := make([]int, len(sizes))
	for i := range sizes {
		m := models[i]
		n := sizes[i]
		structIdx[i] = b.addScratch(
			fmt.Sprintf("%s/struct/%s", id, m.Params()),
			cfg.seed(base+90+uint64(i)),
			func(_ context.Context, r *rng.RNG, s *core.Scratch) (any, error) {
				g, err := core.ModelGen(m)(r, s)
				if err != nil {
					return nil, err
				}
				res := ModelStructResult{N: n, MaxDeg: g.MaxDegree(), MaxIn: g.MaxInDegree()}
				degs := g.Degrees()[1:]
				if s != nil {
					degs = s.DegreesOf(g)
				}
				// Small graphs (smoke scales) can lack a fittable tail;
				// the zero fit renders as "-" rather than failing the
				// sweep.
				if fit, err := stats.FitPowerLawAuto(degs, 50); err == nil {
					res.Alpha, res.StdErr, res.Xmin = fit.Alpha, fit.StdErr, fit.Xmin
				}
				return res, nil
			})
	}

	// Battery cells: every weak and every strong algorithm over the
	// same size sweep, exactly the E1/E2 measurement shape.
	type cell struct {
		kind    string
		alg     search.Algorithm
		collect cellCollector
	}
	var cells []cell
	stream := base
	addBattery := func(kind string, algs []search.Algorithm) {
		for _, alg := range algs {
			stream++
			spec := core.SearchSpec{
				Algorithm: alg,
				Reps:      reps,
				Seed:      cfg.seed(stream),
			}
			if isWalk(alg) {
				spec.Budget = walkBudgetFactor * sizes[len(sizes)-1]
			}
			collect := addScalingCell(b,
				fmt.Sprintf("%s/%s/%s/%s", id, kind, tag, alg.Name()), sizes,
				genFor, nil, spec)
			cells = append(cells, cell{kind: kind, alg: alg, collect: collect})
		}
	}
	addBattery("weak", search.WeakAlgorithms())
	addBattery("strong", search.StrongAlgorithms())

	title := map[string]string{
		"fitness": "Bianconi–Barabási fitness model",
		"geopa":   "geometric preferential attachment",
	}[family]

	return b.build(func(results []any) ([]Table, error) {
		structure := &Table{
			Title:   fmt.Sprintf("%sa  %s — structure (%s)", id, title, models[len(models)-1].Params()),
			Columns: []string{"n", "max-degree", "max-indegree", "tail α", "±se", "xmin"},
			Notes: []string{
				"generated through the model registry: model.New(" + family + ", …) → core.ModelGen",
			},
		}
		for i, n := range sizes {
			sr, ok := results[structIdx[i]].(ModelStructResult)
			if !ok {
				return nil, fmt.Errorf("%s struct n=%d: result type %T", id, n, results[structIdx[i]])
			}
			alpha, se, xmin := "-", "-", "-"
			if sr.Alpha > 0 {
				alpha, se, xmin = formatFloat(sr.Alpha), formatFloat(sr.StdErr), fmt.Sprint(sr.Xmin)
			}
			structure.AddRow(sr.N, sr.MaxDeg, sr.MaxIn, alpha, se, xmin)
		}

		battery := func(kind string) (*Table, error) {
			table := &Table{
				Title: fmt.Sprintf("%s%s  %s — expected requests to find vertex n (%s model)", id,
					map[string]string{"weak": "b", "strong": "c"}[kind], title, kind),
				Columns: []string{"algorithm", "n(max)", "mean@max", "√n(max)",
					"fit-exponent", "±se", "found-rate"},
				Notes: []string{
					"conjecture (paper's closing remark): the Ω(√n) technique extends to other growing models",
					fmt.Sprintf("sizes %v, %d reps per point; walks censored at %d·n requests",
						sizes, reps, walkBudgetFactor),
				},
			}
			for _, c := range cells {
				if c.kind != kind {
					continue
				}
				res, err := c.collect(results)
				if err != nil {
					return nil, fmt.Errorf("%s %s %s: %w", id, kind, c.alg.Name(), err)
				}
				last := res.Points[len(res.Points)-1]
				table.AddRow(c.alg.Name(), last.N,
					last.Measurement.Requests.Mean, math.Sqrt(float64(last.N)),
					res.Fit.Exponent, res.Fit.ExponentSE,
					last.Measurement.FoundRate)
			}
			return table, nil
		}
		weak, err := battery("weak")
		if err != nil {
			return nil, err
		}
		strong, err := battery("strong")
		if err != nil {
			return nil, err
		}
		return []Table{*structure, *weak, *strong}, nil
	}), nil
}
