package stats

import (
	"fmt"
	"math"
	"sort"
)

// PowerLawFit is the result of fitting P(X = d) ∝ d^(-alpha) to the
// tail {x : x >= Xmin} of an integer sample.
type PowerLawFit struct {
	Alpha  float64 // estimated exponent
	StdErr float64 // asymptotic standard error of Alpha
	Xmin   int     // tail cutoff used
	NTail  int     // observations in the tail
	KS     float64 // KS distance between tail and fitted model
}

// FitPowerLaw estimates the exponent of a discrete power law on the
// tail x >= xmin by the Clauset–Shalizi–Newman continuous approximation
// to the discrete MLE:
//
//	alpha = 1 + n / Σ ln(x_i / (xmin - 1/2))
//
// which is accurate for xmin ≳ 2 and is the standard estimator for
// degree sequences. It returns an error when fewer than two tail
// observations are available.
func FitPowerLaw(xs []int, xmin int) (PowerLawFit, error) {
	if xmin < 1 {
		return PowerLawFit{}, fmt.Errorf("stats: power-law xmin %d < 1", xmin)
	}
	sumLog := 0.0
	n := 0
	aboveMin := false
	tail := make([]int, 0, len(xs))
	shift := float64(xmin) - 0.5
	for _, x := range xs {
		if x >= xmin {
			sumLog += math.Log(float64(x) / shift)
			n++
			tail = append(tail, x)
			if x > xmin {
				aboveMin = true
			}
		}
	}
	if n < 2 {
		return PowerLawFit{}, fmt.Errorf("stats: only %d observations >= xmin %d; need at least 2", n, xmin)
	}
	if !aboveMin {
		return PowerLawFit{}, fmt.Errorf("stats: degenerate tail (all observations equal xmin %d)", xmin)
	}
	alpha := 1 + float64(n)/sumLog
	fit := PowerLawFit{
		Alpha:  alpha,
		StdErr: (alpha - 1) / math.Sqrt(float64(n)),
		Xmin:   xmin,
		NTail:  n,
	}
	fit.KS = powerLawKS(tail, alpha, xmin)
	return fit, nil
}

// FitPowerLawAuto selects xmin by scanning candidate cutoffs and
// keeping the fit with the smallest KS distance, following Clauset et
// al. The scan considers every distinct sample value as a cutoff while
// at least minTail observations remain in the tail (minTail <= 0
// defaults to 50).
func FitPowerLawAuto(xs []int, minTail int) (PowerLawFit, error) {
	if minTail <= 0 {
		minTail = 50
	}
	distinct := map[int]bool{}
	for _, x := range xs {
		if x >= 1 {
			distinct[x] = true
		}
	}
	if len(distinct) == 0 {
		return PowerLawFit{}, fmt.Errorf("stats: no positive observations to fit")
	}
	candidates := make([]int, 0, len(distinct))
	for x := range distinct {
		candidates = append(candidates, x)
	}
	sort.Ints(candidates)

	best := PowerLawFit{KS: math.Inf(1)}
	found := false
	for _, xmin := range candidates {
		fit, err := FitPowerLaw(xs, xmin)
		if err != nil || fit.NTail < minTail {
			continue
		}
		if fit.KS < best.KS {
			best = fit
			found = true
		}
	}
	if !found {
		// Fall back to the smallest value so the caller still gets an
		// estimate on short samples.
		return FitPowerLaw(xs, candidates[0])
	}
	return best, nil
}

// powerLawKS computes the KS distance between the empirical CDF of the
// tail sample and the fitted continuous power-law CDF with the given
// alpha and xmin.
func powerLawKS(tail []int, alpha float64, xmin int) float64 {
	sorted := append([]int(nil), tail...)
	sort.Ints(sorted)
	n := float64(len(sorted))
	shift := float64(xmin) - 0.5
	maxDist := 0.0
	for i, x := range sorted {
		model := 1 - math.Pow(float64(x)/shift, 1-alpha)
		empLo := float64(i) / n
		empHi := float64(i+1) / n
		if d := math.Abs(model - empLo); d > maxDist {
			maxDist = d
		}
		if d := math.Abs(model - empHi); d > maxDist {
			maxDist = d
		}
	}
	return maxDist
}

// CCDFLogLogSlope fits a straight line to (log x, log CCDF(x)) and
// returns the estimated tail exponent, which for a power law with
// density exponent alpha is alpha - 1. Points with x < xmin are
// ignored. It is the quick-look regression estimator reported next to
// the MLE in the experiment tables.
func CCDFLogLogSlope(points []CCDFPoint, xmin int) (exponent float64, r2 float64, err error) {
	var lx, ly []float64
	for _, p := range points {
		if p.X >= xmin && p.X > 0 && p.Frac > 0 {
			lx = append(lx, math.Log(float64(p.X)))
			ly = append(ly, math.Log(p.Frac))
		}
	}
	if len(lx) < 2 {
		return 0, 0, fmt.Errorf("stats: %d usable CCDF points; need at least 2", len(lx))
	}
	fit := FitLine(lx, ly)
	return -fit.Slope, fit.R2, nil
}
