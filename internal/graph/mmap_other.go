//go:build !unix

package graph

import "os"

// mapFile on platforms without mmap support reads the file into
// memory (snapshot.go's readFileFallback). Snapshots still open
// correctly, just not zero-copy.
func mapFile(f *os.File, size int) (data []byte, release func() error, err error) {
	return readFileFallback(f, size)
}
