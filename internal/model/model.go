// Package model is the pluggable graph-model registry: the single
// place where every growing-graph generator of the repository is
// published under a stable name with a declared parameter table, so
// the measurement stack (core), the experiment harness, and the CLIs
// (cmd/graphgen, cmd/genstats) can instantiate any model uniformly —
// adding a workload means registering one Family, not editing every
// layer by hand (DESIGN.md §7).
//
// A registered Family declares its name, its ordered parameters
// (name, kind, default, doc), and a Build hook that validates a parsed
// parameter set and returns the generation closure. model.New parses a
// "k=v,k=v" parameter string against the table (unknown keys and
// malformed or out-of-range values are errors, missing keys take
// defaults) and wraps the closure into a Model whose Params method
// renders the *canonical* parameter encoding — every parameter, in
// declaration order, with its effective value. That string is stable
// across processes and feeds experiment trial keys, so it participates
// in the sweep layer's plan fingerprints; New(m.Name(), m.Params())
// round-trips to an identical model.
//
// Generation goes through a shared Scratch bundling the per-family
// reusable buffers: models with scratch-backed generators (Móri,
// Cooper–Frieze, BA, fitness, geopa) reuse them for zero
// steady-state-allocation generation on the weights.EndpointArray hot
// path; the others ignore the scratch. A nil scratch always falls back
// to fresh allocation, and scratch reuse never affects the generated
// graph (the registry conformance test pins both properties).
package model

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"scalefree/internal/ba"
	"scalefree/internal/cooperfrieze"
	"scalefree/internal/fitness"
	"scalefree/internal/geopa"
	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
)

// Scratch bundles the reusable generation buffers of every registered
// model family; each generator reaches its own sub-scratch through it,
// so one worker-owned Scratch serves any model the worker's trials
// draw from. The zero value is ready to use.
type Scratch struct {
	Mori    mori.Scratch
	CF      cooperfrieze.Scratch
	BA      ba.Scratch
	Fitness fitness.Scratch
	Geo     geopa.Scratch
}

// Model is one instantiated graph model: a stable family name, the
// canonical parameter encoding (stable across processes — it feeds
// trial keys and therefore plan fingerprints), and the generator.
type Model interface {
	// Name returns the registered family name, e.g. "mori".
	Name() string
	// Params returns the canonical parameter encoding: every declared
	// parameter in declaration order with its effective value, e.g.
	// "n=4096,m=1,p=0.5". New(Name(), Params()) reconstructs an
	// identical model.
	Params() string
	// Generate draws one graph. The scratch may be nil (fresh
	// allocation); when non-nil the generator may reuse its buffers,
	// in which case the returned graph is only valid until the
	// scratch's next use. Scratch reuse never affects the result:
	// equal seeds yield identical graphs either way.
	Generate(r *rng.RNG, s *Scratch) (*graph.Graph, error)
}

// GenerateFunc is the generation closure a Family's Build returns.
type GenerateFunc func(r *rng.RNG, s *Scratch) (*graph.Graph, error)

// Kind is the type of one model parameter.
type Kind int

const (
	Int Kind = iota
	Float
	Bool
)

// Param declares one model parameter.
type Param struct {
	Name    string
	Kind    Kind
	Default float64 // Int params store the integer, Bool params 0/1
	Doc     string
}

// DefaultString renders the parameter's default in the same canonical
// form Params() uses, so listings and encodings cannot drift apart.
func (p Param) DefaultString() string { return formatValue(p.Kind, p.Default) }

// formatValue renders one parameter value in its canonical form.
func formatValue(k Kind, x float64) string {
	switch k {
	case Int:
		return strconv.Itoa(int(x))
	case Bool:
		return strconv.FormatBool(x != 0)
	default:
		return strconv.FormatFloat(x, 'g', -1, 64)
	}
}

// Values is a parsed parameter set, keyed by parameter name. Int and
// Bool values are stored as float64 (Bool as 0/1); the accessors
// convert.
type Values map[string]float64

// Int returns the named parameter as an integer.
func (v Values) Int(name string) int { return int(v[name]) }

// Bool returns the named parameter as a boolean.
func (v Values) Bool(name string) bool { return v[name] != 0 }

// Family is one registered model family.
type Family struct {
	Name   string
	Doc    string
	Params []Param
	// Build validates a complete parameter set (every declared
	// parameter present) and returns the generation closure. Range
	// errors surface here, at instantiation time, never mid-sweep.
	Build func(v Values) (GenerateFunc, error)
}

func (f Family) param(name string) (Param, bool) {
	for _, p := range f.Params {
		if p.Name == name {
			return p, true
		}
	}
	return Param{}, false
}

// paramNames renders the declared parameter list for diagnostics.
func (f Family) paramNames() string {
	names := make([]string, len(f.Params))
	for i, p := range f.Params {
		names[i] = p.Name
	}
	return strings.Join(names, ", ")
}

var families = map[string]Family{}

// Register publishes a family. It is called from init and panics on a
// duplicate or malformed declaration — a broken registry is a
// programming error, not a runtime condition.
func Register(f Family) {
	if f.Name == "" {
		panic("model: Register with empty family name")
	}
	if f.Build == nil {
		panic(fmt.Sprintf("model: family %s has no Build hook", f.Name))
	}
	if _, dup := families[f.Name]; dup {
		panic(fmt.Sprintf("model: family %s registered twice", f.Name))
	}
	seen := map[string]bool{}
	for _, p := range f.Params {
		if p.Name == "" || seen[p.Name] {
			panic(fmt.Sprintf("model: family %s declares empty or duplicate parameter %q", f.Name, p.Name))
		}
		seen[p.Name] = true
	}
	families[f.Name] = f
}

// Families returns every registered family in name order.
func Families() []Family {
	out := make([]Family, 0, len(families))
	for _, f := range families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the registered family names in sorted order.
func Names() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ByName looks a family up.
func ByName(name string) (Family, bool) {
	f, ok := families[name]
	return f, ok
}

// New instantiates a model: params is a comma-separated "name=value"
// list validated against the family's parameter table (missing
// parameters take their defaults; unknown names, malformed values, and
// out-of-range configurations are errors). The empty string selects
// all defaults.
func New(name, params string) (Model, error) {
	f, ok := families[name]
	if !ok {
		return nil, fmt.Errorf("model: unknown model %q (registered: %s)", name, strings.Join(Names(), ", "))
	}
	v, err := f.parse(params)
	if err != nil {
		return nil, err
	}
	gen, err := f.Build(v)
	if err != nil {
		return nil, err
	}
	return &instance{name: f.Name, params: f.canonical(v), gen: gen}, nil
}

// parse fills defaults and overlays the "k=v,k=v" parameter string.
func (f Family) parse(params string) (Values, error) {
	v := Values{}
	for _, p := range f.Params {
		v[p.Name] = p.Default
	}
	if strings.TrimSpace(params) == "" {
		return v, nil
	}
	for _, kv := range strings.Split(params, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		name, raw, ok := strings.Cut(kv, "=")
		name, raw = strings.TrimSpace(name), strings.TrimSpace(raw)
		if !ok || name == "" || raw == "" {
			return nil, fmt.Errorf("model: %s: malformed parameter %q (want name=value)", f.Name, kv)
		}
		p, known := f.param(name)
		if !known {
			return nil, fmt.Errorf("model: %s has no parameter %q (parameters: %s)", f.Name, name, f.paramNames())
		}
		switch p.Kind {
		case Int:
			x, err := strconv.Atoi(raw)
			if err != nil {
				return nil, fmt.Errorf("model: %s: parameter %s = %q is not an integer", f.Name, name, raw)
			}
			v[name] = float64(x)
		case Float:
			x, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("model: %s: parameter %s = %q is not a number", f.Name, name, raw)
			}
			v[name] = x
		case Bool:
			x, err := strconv.ParseBool(raw)
			if err != nil {
				return nil, fmt.Errorf("model: %s: parameter %s = %q is not a boolean", f.Name, name, raw)
			}
			v[name] = 0
			if x {
				v[name] = 1
			}
		}
	}
	return v, nil
}

// canonical renders a complete parameter set in declaration order —
// the stable encoding Params exposes and fingerprints consume.
func (f Family) canonical(v Values) string {
	parts := make([]string, len(f.Params))
	for i, p := range f.Params {
		parts[i] = p.Name + "=" + formatValue(p.Kind, v[p.Name])
	}
	return strings.Join(parts, ",")
}

// instance is the Model wrapper New returns.
type instance struct {
	name   string
	params string
	gen    GenerateFunc
}

func (m *instance) Name() string   { return m.name }
func (m *instance) Params() string { return m.params }
func (m *instance) Generate(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
	return m.gen(r, s)
}

// String renders the full model identity, e.g. "mori(n=4096,m=1,p=0.5)".
func (m *instance) String() string { return m.name + "(" + m.params + ")" }
