package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Sample variance with n-1 denominator: sum of squares = 32, /7.
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if got := StdErr(xs); !almostEqual(got, math.Sqrt(32.0/7/8), 1e-12) {
		t.Errorf("StdErr = %v", got)
	}
}

func TestMeanEmptyAndSingle(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Error("Variance of single element != 0")
	}
	if StdErr(nil) != 0 {
		t.Error("StdErr(nil) != 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.125, 1.5},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); !almostEqual(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("Quantile single = %v", got)
	}
}

func TestQuantilePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { Quantile(nil, 0.5) },
		func() { Quantile([]float64{1}, -0.1) },
		func() { Quantile([]float64{1}, 1.1) },
		func() { Quantile([]float64{1}, math.NaN()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated input: %v", xs)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Min != 1 || s.Max != 100 || s.Median != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if !almostEqual(s.Mean, 22, 1e-12) {
		t.Errorf("Summary.Mean = %v", s.Mean)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	check := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.3, 0.5, 0.7, 0.9, 1} {
			v := Quantile(xs, q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestIntsToFloats(t *testing.T) {
	got := IntsToFloats([]int{1, -2, 3})
	want := []float64{1, -2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("IntsToFloats[%d] = %v", i, got[i])
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	h := HistogramOf([]int{1, 1, 2, 5, 5, 5})
	if h.Total() != 6 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Count(5) != 3 || h.Count(3) != 0 {
		t.Errorf("counts wrong: %d, %d", h.Count(5), h.Count(3))
	}
	support := h.Support()
	want := []int{1, 2, 5}
	if len(support) != 3 {
		t.Fatalf("Support = %v", support)
	}
	for i := range want {
		if support[i] != want[i] {
			t.Errorf("Support[%d] = %d", i, support[i])
		}
	}
}

func TestHistogramCCDF(t *testing.T) {
	h := HistogramOf([]int{1, 1, 2, 4})
	ccdf := h.CCDF()
	want := []CCDFPoint{{1, 1}, {2, 0.5}, {4, 0.25}}
	if len(ccdf) != len(want) {
		t.Fatalf("CCDF = %v", ccdf)
	}
	for i := range want {
		if ccdf[i].X != want[i].X || !almostEqual(ccdf[i].Frac, want[i].Frac, 1e-12) {
			t.Errorf("CCDF[%d] = %+v, want %+v", i, ccdf[i], want[i])
		}
	}
	if NewHistogram().CCDF() != nil {
		t.Error("empty CCDF should be nil")
	}
}

func TestTailFraction(t *testing.T) {
	h := HistogramOf([]int{1, 2, 3, 4})
	if got := h.TailFraction(3); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("TailFraction(3) = %v", got)
	}
	if got := h.TailFraction(99); got != 0 {
		t.Errorf("TailFraction(99) = %v", got)
	}
	if got := NewHistogram().TailFraction(0); got != 0 {
		t.Errorf("empty TailFraction = %v", got)
	}
}
