// Command graphgen generates a random graph from any of the repo's
// models and writes it as a portable edge list (see graph.WriteEdgeList
// for the format), so external tooling can consume the exact instances
// the experiments measure.
//
// Usage:
//
//	graphgen -model mori -n 4096 -p 0.5 -m 2 -o mori.edges
//	graphgen -model kleinberg -l 64 -r 2 -o grid.edges
//	graphgen -model config -n 10000 -k 2.3 -giant -o overlay.edges
package main

import (
	"flag"
	"fmt"
	"os"

	"scalefree/internal/ba"
	"scalefree/internal/configmodel"
	"scalefree/internal/cooperfrieze"
	"scalefree/internal/graph"
	"scalefree/internal/kleinberg"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		model = flag.String("model", "mori", "model: mori, cf, ba, config, kleinberg")
		n     = flag.Int("n", 4096, "vertices (mori/cf/ba/config)")
		p     = flag.Float64("p", 0.5, "mori: preferential mixing")
		m     = flag.Int("m", 1, "mori merge factor / ba edges per vertex")
		alpha = flag.Float64("alpha", 0.8, "cf: P(New)")
		k     = flag.Float64("k", 2.3, "config: power-law exponent")
		l     = flag.Int("l", 64, "kleinberg: grid side")
		rr    = flag.Float64("r", 2, "kleinberg: long-range exponent")
		giant = flag.Bool("giant", false, "config: extract the giant component")
		seed  = flag.Uint64("seed", 1, "seed")
		out   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	r := rng.New(*seed)
	var g *graph.Graph
	var err error
	switch *model {
	case "mori":
		g, err = mori.Config{N: *n, M: *m, P: *p}.Generate(r)
	case "cf":
		var res *cooperfrieze.Result
		res, err = cooperfrieze.Config{N: *n, Alpha: *alpha, Beta: 0.5, Gamma: 0.5,
			Delta: 0.5, AllowLoops: true}.Generate(r)
		if err == nil {
			g = res.Graph
		}
	case "ba":
		g, err = ba.Config{N: *n, M: *m}.Generate(r)
	case "config":
		cfg := configmodel.Config{N: *n, Exponent: *k}
		if *giant {
			g, _, err = cfg.GenerateGiant(r)
		} else {
			g, err = cfg.Generate(r)
		}
	case "kleinberg":
		var grid *kleinberg.Grid
		grid, err = kleinberg.Config{L: *l, R: *rr}.Generate(r)
		if err == nil {
			g = grid.Graph
		}
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return fmt.Errorf("creating %s: %w", *out, err)
		}
		defer f.Close()
		w = f
	}
	if err := graph.WriteEdgeList(w, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "graphgen: wrote %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	return nil
}
