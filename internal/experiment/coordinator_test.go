package experiment

import (
	"context"
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/faultnet"
	"scalefree/internal/sweep"
)

// startSweepCoordinator serves the selected experiments on loopback
// and returns the dial address plus the eventual outcome.
func startSweepCoordinator(t *testing.T, selected []Experiment, cfg Config, opts sweep.CoordOptions) (string, chan struct {
	tables [][]Table
	err    error
}) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	outcome := make(chan struct {
		tables [][]Table
		err    error
	}, 1)
	go func() {
		tables, err := CoordinateSweep(context.Background(), selected, cfg, lis, opts)
		outcome <- struct {
			tables [][]Table
			err    error
		}{tables, err}
	}()
	return lis.Addr().String(), outcome
}

// TestGoldenCoordinatorKillReassign is the tentpole guarantee: a
// coordinator-driven sweep in which a worker dies mid-run — its chunk
// leased, partially executed, never delivered — renders tables
// byte-identical to the single-process -workers 1 run, and the only
// re-executed trials are the dead worker's unpersisted chunk. E4
// exercises the historical plans; E12 and E13 extend the same
// guarantee to the registry-driven model batteries.
func TestGoldenCoordinatorKillReassign(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	for _, id := range []string{"E4", "E12", "E13"} {
		t.Run(id, func(t *testing.T) {
			exp, _ := ByID(id)
			cfg := Config{Seed: 2024, Scale: 0.05}
			plan, err := exp.Plan(cfg)
			if err != nil {
				t.Fatal(err)
			}
			total := len(plan.Trials)
			if total < 6 {
				t.Fatalf("%s plan too small to kill meaningfully: %d trials", id, total)
			}

			serial, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			golden := renderAll(t, serial)

			const chunkSize = 2
			addr, outcome := startSweepCoordinator(t, []Experiment{exp}, cfg,
				sweep.CoordOptions{ChunkSize: chunkSize, LeaseTTL: time.Minute, Linger: time.Second})

			// The doomed worker: executes its first chunk, then its
			// context is cancelled before any result is streamed — the
			// process equivalent of a kill -9 between computation and
			// delivery. Its connection drop revokes the lease
			// immediately.
			dieCtx, die := context.WithCancel(context.Background())
			defer die()
			deadExecuted := 0
			deadOpts := engine.Options{Workers: 1, Progress: func(p engine.Progress) {
				deadExecuted++
				if deadExecuted == chunkSize {
					die()
				}
			}}
			_, err = SweepWorker(dieCtx, []Experiment{exp}, cfg, addr, deadOpts, nil, sweep.WorkerOptions{Name: "doomed"})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("doomed worker: err = %v, want context.Canceled", err)
			}
			if deadExecuted != chunkSize {
				t.Fatalf("doomed worker executed %d trials, want %d", deadExecuted, chunkSize)
			}

			// The surviving worker steals the forfeited chunk and
			// finishes the sweep.
			stats, err := SweepWorker(context.Background(), []Experiment{exp}, cfg, addr,
				engine.Options{Workers: 2}, nil, sweep.WorkerOptions{Name: "survivor"})
			if err != nil {
				t.Fatal(err)
			}
			out := <-outcome
			if out.err != nil {
				t.Fatal(out.err)
			}
			if got := renderAll(t, out.tables[0]); got != golden {
				t.Errorf("coordinated output diverges from single-process run:\n--- coordinated ---\n%s\n--- single ---\n%s", got, golden)
			}
			// The survivor runs every trial exactly once — total work
			// across both workers exceeds the plan by exactly the dead
			// worker's undelivered chunk, never more.
			if stats.Executed != total {
				t.Errorf("survivor executed %d trials, want %d (stolen chunk re-runs, nothing else repeats)", stats.Executed, total)
			}
		})
	}
}

// TestCoordinatorSharedCacheBoundsLostWork: with a shared trial cache,
// even the dead worker's executed-but-undelivered chunk is not
// recomputed — the thief's cache lookup satisfies it, so the sweep
// re-executes zero trials.
func TestCoordinatorSharedCacheBoundsLostWork(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	exp, _ := ByID("E4")
	cfg := Config{Seed: 2024, Scale: 0.05}
	plan, err := exp.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := len(plan.Trials)

	serial, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	golden := renderAll(t, serial)

	cache, err := sweep.OpenCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	const chunkSize = 2
	addr, outcome := startSweepCoordinator(t, []Experiment{exp}, cfg,
		sweep.CoordOptions{ChunkSize: chunkSize, LeaseTTL: time.Minute, Linger: time.Second})

	dieCtx, die := context.WithCancel(context.Background())
	defer die()
	deadExecuted := 0
	deadOpts := engine.Options{Workers: 1, Progress: func(p engine.Progress) {
		deadExecuted++
		if deadExecuted == chunkSize {
			die()
		}
	}}
	if _, err := SweepWorker(dieCtx, []Experiment{exp}, cfg, addr, deadOpts, cache, sweep.WorkerOptions{Name: "doomed"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("doomed worker: err = %v, want context.Canceled", err)
	}

	stats, err := SweepWorker(context.Background(), []Experiment{exp}, cfg, addr,
		engine.Options{Workers: 2}, cache, sweep.WorkerOptions{Name: "survivor"})
	if err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	if got := renderAll(t, out.tables[0]); got != golden {
		t.Error("coordinated+cached output diverges from single-process run")
	}
	// The doomed worker persisted its chunk before dying, so the
	// survivor cache-hits those trials instead of re-running them:
	// zero trials execute twice anywhere in the sweep.
	if stats.Executed != total-deadExecuted || stats.CacheHits != deadExecuted {
		t.Errorf("survivor stats %+v, want %d executed / %d cache hits", stats, total-deadExecuted, deadExecuted)
	}
}

// TestCoordinatorMultiExperimentGolden: several experiments and
// several concurrent workers through the coordinator still render
// byte-identically, per experiment, to the serial reference.
func TestCoordinatorMultiExperimentGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	cfg := Config{Seed: 2024, Scale: 0.05}
	var selected []Experiment
	for _, id := range []string{"E4", "E5"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("unknown experiment %s", id)
		}
		selected = append(selected, e)
	}
	goldens := make([]string, len(selected))
	for i, e := range selected {
		tables, err := e.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		goldens[i] = renderAll(t, tables)
	}

	addr, outcome := startSweepCoordinator(t, selected, cfg,
		sweep.CoordOptions{ChunkSize: 3, LeaseTTL: time.Minute, Linger: time.Second})
	errs := make(chan error, 2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			_, err := SweepWorker(context.Background(), selected, cfg, addr,
				engine.Options{Workers: 2}, nil, sweep.WorkerOptions{Name: fmt.Sprintf("w%d", w)})
			errs <- err
		}(w)
	}
	for w := 0; w < 2; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	for i := range selected {
		if got := renderAll(t, out.tables[i]); got != goldens[i] {
			t.Errorf("%s: coordinated output diverges from serial run", selected[i].ID)
		}
	}
}

// TestGoldenChaosSweep is the tentpole guarantee end to end at the
// experiment layer: a coordinated run whose every connection suffers
// injected delays, resets, truncations, split writes, and partitions
// still renders tables byte-identical to the single-process run. The
// Injected assertion keeps the chaos honest.
func TestGoldenChaosSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	exp, _ := ByID("E4")
	cfg := Config{Seed: 2024, Scale: 0.05}
	serial, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	golden := renderAll(t, serial)

	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	faults := faultnet.Default()
	faults.DelayMax = 5 * time.Millisecond
	flis := faultnet.Listen(inner, 1889, faults)
	outcome := make(chan struct {
		tables [][]Table
		err    error
	}, 1)
	go func() {
		tables, err := CoordinateSweep(context.Background(), []Experiment{exp}, cfg, flis,
			sweep.CoordOptions{ChunkSize: 3, LeaseTTL: 2 * time.Second, Linger: time.Second})
		outcome <- struct {
			tables [][]Table
			err    error
		}{tables, err}
	}()

	wopts := sweep.WorkerOptions{
		DialRetries:   60,
		ReconnectBase: 5 * time.Millisecond,
		ReconnectMax:  100 * time.Millisecond,
		IOTimeout:     time.Second,
	}
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			opts := wopts
			opts.Name = fmt.Sprintf("chaos-%d", w)
			// A worker may exhaust its retries against the closed
			// listener after the sweep completes; the outcome check is
			// the correctness assertion.
			if _, err := SweepWorker(context.Background(), []Experiment{exp}, cfg, flis.Addr().String(),
				engine.Options{Workers: 2}, nil, opts); err != nil {
				t.Logf("worker %d exited: %v", w, err)
			}
		}(w)
	}
	out := <-outcome
	wg.Wait()
	if out.err != nil {
		t.Fatalf("chaos sweep failed: %v (injected %d faults)", out.err, flis.Injected())
	}
	if got := renderAll(t, out.tables[0]); got != golden {
		t.Errorf("chaos-coordinated output diverges from single-process run:\n--- chaos ---\n%s\n--- single ---\n%s", got, golden)
	}
	if flis.Injected() == 0 {
		t.Error("fault profile injected nothing; the chaos run degenerated to the clean path")
	}
}

// TestDrainedSweepResumesWithZeroReexecution closes the crash-recovery
// loop: a cancelled coordinator drains its in-flight chunk, persists
// completed results as a 1-of-1 shard file via DrainToDir, and the
// follow-up `-shard 1/1 -resume` run reuses every drained trial as a
// cache hit — executing only the missing remainder — before the merged
// tables come out byte-identical to the serial run.
func TestDrainedSweepResumesWithZeroReexecution(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	exp, _ := ByID("E4")
	cfg := Config{Seed: 2024, Scale: 0.05}
	plan, err := exp.Plan(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := len(plan.Trials)
	serial, err := exp.RunContext(context.Background(), cfg, engine.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	golden := renderAll(t, serial)

	dir := t.TempDir()
	drain, err := DrainToDir([]Experiment{exp}, cfg, dir, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	outcome := make(chan error, 1)
	go func() {
		_, err := CoordinateSweep(ctx, []Experiment{exp}, cfg, lis,
			sweep.CoordOptions{ChunkSize: 2, LeaseTTL: time.Minute, Linger: 200 * time.Millisecond,
				DrainTimeout: 30 * time.Second, Drain: drain, Log: t.Logf})
		outcome <- err
	}()

	// Cancel the coordinator after the worker's first trial: the chunk
	// in flight lands during the drain, everything after it never
	// leases.
	fired := false
	wopts := engine.Options{Workers: 1, Progress: func(p engine.Progress) {
		if !fired {
			fired = true
			cancel()
		}
	}}
	if _, err := SweepWorker(context.Background(), []Experiment{exp}, cfg, lis.Addr().String(),
		wopts, nil, sweep.WorkerOptions{Name: "drained", DialRetries: -1}); err == nil {
		t.Error("worker reported success for a cancelled sweep")
	}
	if err := <-outcome; !errors.Is(err, context.Canceled) {
		t.Fatalf("drained coordinator err = %v, want context.Canceled", err)
	}

	shardPath := filepath.Join(dir, exp.ShardFileName(sweep.ShardSpec{Index: 0, Count: 1}))
	_, entries, err := sweep.ReadShardFile(shardPath)
	if err != nil {
		t.Fatalf("drain left no readable shard file: %v", err)
	}
	drained := len(entries)
	if drained == 0 || drained >= total {
		t.Fatalf("drain persisted %d of %d trials; the cancellation must land mid-sweep", drained, total)
	}

	// The resume run executes exactly the missing trials; every drained
	// trial is a cache hit, none re-executes.
	stats, err := exp.RunShard(context.Background(), cfg, sweep.ShardSpec{Index: 0, Count: 1},
		engine.Options{Workers: 2}, nil, shardPath, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != drained || stats.Executed != total-drained {
		t.Errorf("resume stats %+v, want %d cache hits / %d executed", stats, drained, total-drained)
	}
	tables, err := exp.MergeShardFiles(cfg, []string{shardPath})
	if err != nil {
		t.Fatal(err)
	}
	if got := renderAll(t, tables); got != golden {
		t.Errorf("drain+resume output diverges from single-process run:\n--- resumed ---\n%s\n--- single ---\n%s", got, golden)
	}
}
