package kleinberg

import (
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

func TestValidate(t *testing.T) {
	bad := []Config{
		{L: 1, R: 2},
		{L: 10, R: -1},
		{L: 10, R: 2, Q: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: config %+v validated", i, c)
		}
	}
}

func TestCoordVertexRoundTrip(t *testing.T) {
	g := &Grid{L: 7}
	for v := graph.Vertex(1); v <= 49; v++ {
		x, y := g.Coord(v)
		if x < 0 || x >= 7 || y < 0 || y >= 7 {
			t.Fatalf("Coord(%d) = (%d, %d) out of range", v, x, y)
		}
		if got := g.VertexAt(x, y); got != v {
			t.Fatalf("VertexAt(Coord(%d)) = %d", v, got)
		}
	}
}

func TestTorusDistance(t *testing.T) {
	g := &Grid{L: 8}
	cases := []struct {
		a, b graph.Vertex
		want int
	}{
		{g.VertexAt(0, 0), g.VertexAt(0, 0), 0},
		{g.VertexAt(0, 0), g.VertexAt(1, 0), 1},
		{g.VertexAt(0, 0), g.VertexAt(7, 0), 1},  // wraps
		{g.VertexAt(0, 0), g.VertexAt(4, 4), 8},  // antipode
		{g.VertexAt(1, 1), g.VertexAt(6, 6), 10}, // 5+5 via wrap? min(5,3)+min(5,3)=6
	}
	// Correct the last case: |1-6| = 5, wrap = 3, so axis distance 3.
	cases[4].want = 6
	for _, tc := range cases {
		if got := g.Dist(tc.a, tc.b); got != tc.want {
			ax, ay := g.Coord(tc.a)
			bx, by := g.Coord(tc.b)
			t.Errorf("Dist((%d,%d), (%d,%d)) = %d, want %d", ax, ay, bx, by, got, tc.want)
		}
	}
}

func TestGenerateStructure(t *testing.T) {
	grid, err := Config{L: 16, R: 2, Q: 1}.Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	g := grid.Graph
	n := 16 * 16
	if g.NumVertices() != n {
		t.Fatalf("vertices = %d, want %d", g.NumVertices(), n)
	}
	// 2 local edges per vertex + 1 long link per vertex.
	if g.NumEdges() != 3*n {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), 3*n)
	}
	if !graph.IsConnected(g) {
		t.Fatal("grid disconnected")
	}
	// Every vertex sees its full 4-neighborhood in the undirected view.
	for v := graph.Vertex(1); v <= graph.Vertex(n); v++ {
		x, y := grid.Coord(v)
		want := map[graph.Vertex]bool{
			grid.VertexAt((x+1)%16, y):  false,
			grid.VertexAt((x+15)%16, y): false,
			grid.VertexAt(x, (y+1)%16):  false,
			grid.VertexAt(x, (y+15)%16): false,
		}
		for _, h := range g.Incident(v) {
			if _, ok := want[h.Other]; ok {
				want[h.Other] = true
			}
		}
		for w, seen := range want {
			if !seen {
				t.Fatalf("vertex %d missing grid neighbor %d", v, w)
			}
		}
	}
}

func TestLongLinksNeverSelf(t *testing.T) {
	grid, err := Config{L: 10, R: 1, Q: 2}.Generate(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if grid.Graph.NumSelfLoops() != 0 {
		t.Fatalf("grid has %d self-loops", grid.Graph.NumSelfLoops())
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := Config{L: 12, R: 2}.Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Config{L: 12, R: 2}.Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(a.Graph, b.Graph) {
		t.Fatal("same seed produced different grids")
	}
}

func TestGreedyRouteDelivers(t *testing.T) {
	grid, err := Config{L: 20, R: 2}.Generate(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(12)
	n := 20 * 20
	for trial := 0; trial < 50; trial++ {
		s := graph.Vertex(r.IntRange(1, n))
		t2 := graph.Vertex(r.IntRange(1, n))
		res := grid.GreedyRoute(s, t2, 0)
		if !res.Delivered {
			t.Fatalf("routing from %d to %d did not deliver", s, t2)
		}
		if res.Steps > grid.Dist(s, t2)*20+1 {
			t.Fatalf("routing took %d steps for distance %d", res.Steps, grid.Dist(s, t2))
		}
	}
	if res := grid.GreedyRoute(5, 5, 0); res.Steps != 0 || !res.Delivered {
		t.Errorf("self-route = %+v", res)
	}
}

func TestGreedyRouteRespectsCap(t *testing.T) {
	grid, err := Config{L: 30, R: 0}.Generate(rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	res := grid.GreedyRoute(1, grid.VertexAt(15, 15), 2)
	if res.Delivered {
		t.Fatal("capped route claims delivery")
	}
	if res.Steps != 2 {
		t.Fatalf("capped route took %d steps, want 2", res.Steps)
	}
}

func TestGreedyNeverExceedsGridDistanceWithoutLinks(t *testing.T) {
	// With Q = 0... Q defaults to 1, so use R very large instead: long
	// links become nearest-neighbor hops and greedy approximates pure
	// grid routing; steps must equal the torus distance.
	grid, err := Config{L: 9, R: 50}.Generate(rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	s, t2 := grid.VertexAt(0, 0), grid.VertexAt(4, 3)
	res := grid.GreedyRoute(s, t2, 0)
	if res.Steps != grid.Dist(s, t2) {
		t.Errorf("steps = %d, want exactly the distance %d", res.Steps, grid.Dist(s, t2))
	}
}

// meanRouteSteps measures mean greedy delivery time over random pairs.
func meanRouteSteps(t *testing.T, L int, r float64, trials int) float64 {
	t.Helper()
	grid, err := Config{L: L, R: r}.Generate(rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(23)
	total := 0
	n := L * L
	for i := 0; i < trials; i++ {
		s := graph.Vertex(src.IntRange(1, n))
		d := graph.Vertex(src.IntRange(1, n))
		total += grid.GreedyRoute(s, d, 0).Steps
	}
	return float64(total) / float64(trials)
}

func TestRTwoBeatsRThree(t *testing.T) {
	// Too-local long links (r = 3) are robustly worse than r = 2 even
	// at moderate scale, and the gap widens with L. (The r < 2 side of
	// Kleinberg's U-shape needs very large grids to separate — a known
	// finite-size effect — so it is exercised by experiment E9 rather
	// than asserted here.)
	fast64, slow64 := meanRouteSteps(t, 64, 2, 300), meanRouteSteps(t, 64, 3, 300)
	if slow64 < 1.3*fast64 {
		t.Errorf("L=64: r=3 mean %.1f not clearly worse than r=2 mean %.1f", slow64, fast64)
	}
	fast128, slow128 := meanRouteSteps(t, 128, 2, 300), meanRouteSteps(t, 128, 3, 300)
	if slow128/fast128 <= slow64/fast64 {
		t.Errorf("r=3/r=2 gap did not widen: L=64 ratio %.2f, L=128 ratio %.2f",
			slow64/fast64, slow128/fast128)
	}
}

func TestRZeroGrowsPolynomially(t *testing.T) {
	// For r = 0, greedy delivery grows like L^(2/3) (Kleinberg's
	// Θ(n^((2-r)/3)) with n the side length). Fit the growth exponent
	// over a sweep of L and check it sits in a band around 2/3.
	var ls, ys []float64
	for _, L := range []int{24, 48, 96, 192} {
		ls = append(ls, float64(L))
		ys = append(ys, meanRouteSteps(t, L, 0, 400))
	}
	fit, err := stats.FitScaling(ls, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Exponent < 0.4 || fit.Exponent > 0.95 {
		t.Errorf("r=0 growth exponent vs L = %.2f (R²=%.2f), want ≈2/3", fit.Exponent, fit.R2)
	}
}

func BenchmarkGenerate(b *testing.B) {
	cfg := Config{L: 64, R: 2}
	r := rng.New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Generate(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedyRoute(b *testing.B) {
	grid, err := Config{L: 64, R: 2}.Generate(rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	n := 64 * 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := graph.Vertex(r.IntRange(1, n))
		t := graph.Vertex(r.IntRange(1, n))
		grid.GreedyRoute(s, t, 0)
	}
}
