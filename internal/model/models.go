package model

import (
	"scalefree/internal/ba"
	"scalefree/internal/configmodel"
	"scalefree/internal/cooperfrieze"
	"scalefree/internal/fitness"
	"scalefree/internal/geopa"
	"scalefree/internal/graph"
	"scalefree/internal/kleinberg"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
)

// The seven registered families: the five historical model packages
// plus the two E12/E13 workloads. Every Build validates eagerly (CLI
// and plan construction see range errors immediately) and routes
// generation through the family's sub-scratch when it has one.

func init() {
	Register(Family{
		Name: "mori",
		Doc:  "Móri mixed uniform/preferential attachment (merged m-out variant; the paper's Theorem 1 substrate)",
		Params: []Param{
			{Name: "n", Kind: Int, Default: 4096, Doc: "vertices (merged graph size)"},
			{Name: "m", Kind: Int, Default: 1, Doc: "merge factor (1 = plain tree)"},
			{Name: "p", Kind: Float, Default: 0.5, Doc: "preferential mixing in [0, 1]"},
		},
		Build: func(v Values) (GenerateFunc, error) {
			cfg := mori.Config{N: v.Int("n"), M: v.Int("m"), P: v["p"]}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			return func(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
				return cfg.GenerateScratch(r, moriScratch(s))
			}, nil
		},
	})

	Register(Family{
		Name: "cf",
		Doc:  "Cooper–Frieze general model of evolving web graphs (the paper's Theorem 2 substrate)",
		Params: []Param{
			{Name: "n", Kind: Int, Default: 4096, Doc: "vertices"},
			{Name: "alpha", Kind: Float, Default: 0.8, Doc: "P(procedure New) in (0, 1]"},
			{Name: "beta", Kind: Float, Default: 0.5, Doc: "P(New-edge terminal is preferential)"},
			{Name: "gamma", Kind: Float, Default: 0.5, Doc: "P(Old-edge terminal is preferential)"},
			{Name: "delta", Kind: Float, Default: 0.5, Doc: "P(Old source is chosen uniformly)"},
			{Name: "loops", Kind: Bool, Default: 1, Doc: "allow self-loops in Old steps"},
		},
		Build: func(v Values) (GenerateFunc, error) {
			cfg := cooperfrieze.Config{
				N: v.Int("n"), Alpha: v["alpha"], Beta: v["beta"],
				Gamma: v["gamma"], Delta: v["delta"], AllowLoops: v.Bool("loops"),
			}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			return func(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
				res, err := cfg.GenerateScratch(r, cfScratch(s))
				if err != nil {
					return nil, err
				}
				return res.Graph, nil
			}, nil
		},
	})

	Register(Family{
		Name: "ba",
		Doc:  "Barabási–Albert total-degree preferential attachment (related-work baseline)",
		Params: []Param{
			{Name: "n", Kind: Int, Default: 4096, Doc: "vertices"},
			{Name: "m", Kind: Int, Default: 1, Doc: "edges per new vertex"},
		},
		Build: func(v Values) (GenerateFunc, error) {
			cfg := ba.Config{N: v.Int("n"), M: v.Int("m")}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			return func(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
				return cfg.GenerateScratch(r, baScratch(s))
			}, nil
		},
	})

	Register(Family{
		Name: "config",
		Doc:  "Molloy–Reed power-law configuration model (Adamic et al. substrate)",
		Params: []Param{
			{Name: "n", Kind: Int, Default: 4096, Doc: "vertices (before giant extraction)"},
			{Name: "k", Kind: Float, Default: 2.3, Doc: "power-law exponent, > 1"},
			{Name: "mindeg", Kind: Int, Default: 1, Doc: "minimum degree"},
			{Name: "maxdeg", Kind: Int, Default: 0, Doc: "maximum degree (0 = natural cutoff n^(1/(k-1)))"},
			{Name: "simple", Kind: Bool, Default: 0, Doc: "erase self-loops and duplicate edges"},
			{Name: "giant", Kind: Bool, Default: 0, Doc: "extract the largest component, relabelled 1..size"},
		},
		Build: func(v Values) (GenerateFunc, error) {
			cfg := configmodel.Config{
				N: v.Int("n"), Exponent: v["k"], MinDeg: v.Int("mindeg"),
				MaxDeg: v.Int("maxdeg"), Simple: v.Bool("simple"),
			}
			if _, err := cfg.Validate(); err != nil {
				return nil, err
			}
			giant := v.Bool("giant")
			return func(r *rng.RNG, _ *Scratch) (*graph.Graph, error) {
				if giant {
					g, _, err := cfg.GenerateGiant(r)
					return g, err
				}
				return cfg.Generate(r)
			}, nil
		},
	})

	Register(Family{
		Name: "kleinberg",
		Doc:  "Kleinberg navigable small-world grid (navigability contrast)",
		Params: []Param{
			{Name: "l", Kind: Int, Default: 64, Doc: "grid side (l² vertices)"},
			{Name: "r", Kind: Float, Default: 2, Doc: "long-range exponent, >= 0"},
			{Name: "q", Kind: Int, Default: 1, Doc: "long-range links per vertex"},
		},
		Build: func(v Values) (GenerateFunc, error) {
			cfg := kleinberg.Config{L: v.Int("l"), R: v["r"], Q: v.Int("q")}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			return func(r *rng.RNG, _ *Scratch) (*graph.Graph, error) {
				grid, err := cfg.Generate(r)
				if err != nil {
					return nil, err
				}
				return grid.Graph, nil
			}, nil
		},
	})

	Register(Family{
		Name: "fitness",
		Doc:  "Bianconi–Barabási vertex-fitness preferential attachment (experiment E12)",
		Params: []Param{
			{Name: "n", Kind: Int, Default: 4096, Doc: "vertices"},
			{Name: "m", Kind: Int, Default: 1, Doc: "edges per new vertex"},
			{Name: "eta0", Kind: Float, Default: 0.1, Doc: "minimum fitness in [0.01, 1]; fitness ~ U[eta0, 1]"},
		},
		Build: func(v Values) (GenerateFunc, error) {
			cfg := fitness.Config{N: v.Int("n"), M: v.Int("m"), Eta0: v["eta0"]}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			return func(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
				return cfg.GenerateScratch(r, fitnessScratch(s))
			}, nil
		},
	})

	Register(Family{
		Name: "geopa",
		Doc:  "geometric (spatial) preferential attachment with an exponential proximity kernel (experiment E13)",
		Params: []Param{
			{Name: "n", Kind: Int, Default: 4096, Doc: "vertices"},
			{Name: "m", Kind: Int, Default: 1, Doc: "edges per new vertex"},
			{Name: "r", Kind: Float, Default: 0.25, Doc: "proximity kernel range, >= 0.05"},
		},
		Build: func(v Values) (GenerateFunc, error) {
			cfg := geopa.Config{N: v.Int("n"), M: v.Int("m"), R: v["r"]}
			if err := cfg.Validate(); err != nil {
				return nil, err
			}
			return func(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
				return cfg.GenerateScratch(r, geoScratch(s))
			}, nil
		},
	})
}

// The scratch projections: nil stays nil (fresh allocation).

func moriScratch(s *Scratch) *mori.Scratch {
	if s == nil {
		return nil
	}
	return &s.Mori
}

func cfScratch(s *Scratch) *cooperfrieze.Scratch {
	if s == nil {
		return nil
	}
	return &s.CF
}

func baScratch(s *Scratch) *ba.Scratch {
	if s == nil {
		return nil
	}
	return &s.BA
}

func fitnessScratch(s *Scratch) *fitness.Scratch {
	if s == nil {
		return nil
	}
	return &s.Fitness
}

func geoScratch(s *Scratch) *geopa.Scratch {
	if s == nil {
		return nil
	}
	return &s.Geo
}
