package rng

import (
	"math"
	"testing"
)

func TestNewPowerLawValidation(t *testing.T) {
	cases := []struct {
		name     string
		k        float64
		min, max int
	}{
		{"min below one", 2.5, 0, 10},
		{"empty range", 2.5, 5, 4},
		{"exponent at one", 1.0, 1, 10},
		{"exponent below one", 0.5, 1, 10},
		{"nan exponent", math.NaN(), 1, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewPowerLaw(tc.k, tc.min, tc.max); err == nil {
				t.Fatalf("NewPowerLaw(%v, %d, %d) succeeded, want error", tc.k, tc.min, tc.max)
			}
		})
	}
}

func TestPowerLawSupport(t *testing.T) {
	pl, err := NewPowerLaw(2.3, 2, 50)
	if err != nil {
		t.Fatal(err)
	}
	r := New(1)
	for i := 0; i < 20000; i++ {
		d := pl.Sample(r)
		if d < 2 || d > 50 {
			t.Fatalf("sample %d out of [2, 50]", d)
		}
	}
	if lo, hi := pl.Bounds(); lo != 2 || hi != 50 {
		t.Fatalf("Bounds() = (%d, %d)", lo, hi)
	}
	if pl.Exponent() != 2.3 {
		t.Fatalf("Exponent() = %v", pl.Exponent())
	}
}

func TestPowerLawSingleton(t *testing.T) {
	pl, err := NewPowerLaw(3, 7, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := New(2)
	for i := 0; i < 100; i++ {
		if d := pl.Sample(r); d != 7 {
			t.Fatalf("singleton support sampled %d", d)
		}
	}
	if math.Abs(pl.Mean()-7) > 1e-9 {
		t.Fatalf("Mean() = %v, want 7", pl.Mean())
	}
}

func TestPowerLawFrequencies(t *testing.T) {
	// With k = 2 on {1..4}, P(d) ∝ 1/d²: weights 1, 1/4, 1/9, 1/16.
	pl, err := NewPowerLaw(2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 1 + 0.25 + 1.0/9 + 1.0/16
	want := []float64{1 / total, 0.25 / total, (1.0 / 9) / total, (1.0 / 16) / total}
	r := New(3)
	const draws = 400000
	counts := make([]int, 5)
	for i := 0; i < draws; i++ {
		counts[pl.Sample(r)]++
	}
	for d := 1; d <= 4; d++ {
		got := float64(counts[d]) / draws
		if math.Abs(got-want[d-1]) > 0.005 {
			t.Errorf("P(%d) = %v, want %v", d, got, want[d-1])
		}
	}
}

func TestPowerLawMeanMatchesEmpirical(t *testing.T) {
	pl, err := NewPowerLaw(2.5, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	r := New(4)
	const draws = 300000
	sum := 0.0
	for i := 0; i < draws; i++ {
		sum += float64(pl.Sample(r))
	}
	got := sum / draws
	if math.Abs(got-pl.Mean()) > 0.05*pl.Mean() {
		t.Errorf("empirical mean %v vs exact %v", got, pl.Mean())
	}
}

func TestNewDiscreteValidation(t *testing.T) {
	cases := []struct {
		name    string
		weights []float64
	}{
		{"empty", nil},
		{"all zero", []float64{0, 0}},
		{"negative", []float64{1, -1}},
		{"nan", []float64{math.NaN()}},
		{"inf", []float64{math.Inf(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewDiscrete(tc.weights); err == nil {
				t.Fatalf("NewDiscrete(%v) succeeded, want error", tc.weights)
			}
		})
	}
}

func TestDiscreteProbabilities(t *testing.T) {
	d, err := NewDiscrete([]float64{1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len() = %d", d.Len())
	}
	wants := []float64{0.25, 0, 0.75}
	for i, want := range wants {
		if got := d.Prob(i); math.Abs(got-want) > 1e-12 {
			t.Errorf("Prob(%d) = %v, want %v", i, got, want)
		}
	}
	if d.Prob(-1) != 0 || d.Prob(3) != 0 {
		t.Error("out-of-range Prob should be 0")
	}

	r := New(5)
	counts := make([]int, 3)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[d.Sample(r)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight index sampled %d times", counts[1])
	}
	for i, want := range wants {
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.005 {
			t.Errorf("empirical P(%d) = %v, want %v", i, got, want)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkPowerLawSample(b *testing.B) {
	pl, err := NewPowerLaw(2.3, 1, 1<<16)
	if err != nil {
		b.Fatal(err)
	}
	r := New(1)
	for i := 0; i < b.N; i++ {
		pl.Sample(r)
	}
}
