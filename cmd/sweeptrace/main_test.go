package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// mkTrace assembles a trace file from events, in the envelope
// `experiments -trace` writes.
func mkTrace(t *testing.T, evs []event) []byte {
	t.Helper()
	data, err := json.Marshal(struct {
		TraceEvents []event `json:"traceEvents"`
	}{evs})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func b(name, cat string, ts int64, pid, tid int) event {
	return event{Name: name, Cat: cat, Ph: "B", TS: ts, PID: pid, TID: tid}
}
func e(ts int64, pid, tid int) event { return event{Ph: "E", TS: ts, PID: pid, TID: tid} }

// fixture: a 100ms sweep with two worker lanes. Lane (1,1) runs trials
// back to back with phases; lane (1,2) runs one trial then idles.
//
//	control (0,0): sweep [0, 100000]
//	lane (1,1): trial A [0, 40000] {generate [0,10000], search [10000,40000]},
//	            trial B [50000, 100000]
//	lane (1,2): trial C [0, 30000]
func fixture() []event {
	return []event{
		{Name: "process_name", Ph: "M", PID: 0, Args: map[string]string{"name": "coordinator"}},
		{Name: "process_name", Ph: "M", PID: 1, Args: map[string]string{"name": "w1"}},
		b("sweep", "sweep", 0, 0, 0),
		b("trial A", "trial", 0, 1, 1),
		b("generate", "phase", 0, 1, 1),
		e(10000, 1, 1),
		b("search", "phase", 10000, 1, 1),
		e(40000, 1, 1),
		e(40000, 1, 1),
		b("trial C", "trial", 0, 1, 2),
		e(30000, 1, 2),
		b("trial B", "trial", 50000, 1, 1),
		e(100000, 1, 1),
		e(100000, 0, 0),
		{Name: "lease", Ph: "s", TS: 0, PID: 0, TID: 1, ID: "0xabc", Cat: "flow"},
		{Name: "lease", Ph: "f", TS: 1, PID: 1, TID: 0, ID: "0xabc", Cat: "flow"},
		{Name: "retry", Ph: "s", TS: 2, PID: 0, TID: 0, ID: "0xdef", Cat: "flow"},
		{Name: "lease_steal", Ph: "i", TS: 3, PID: 0, TID: 1, Cat: "lease"},
	}
}

// TestCriticalPathPartition pins the core invariant: the critical-path
// segments partition the sweep window exactly, so work + idle equals
// the wall clock, and the walk picks the last finisher at each step.
func TestCriticalPathPartition(t *testing.T) {
	a, err := analyze(mkTrace(t, fixture()))
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.report(10)
	if err != nil {
		t.Fatal(err)
	}
	if r.WallClockUS != 100000 {
		t.Fatalf("wall clock = %dµs, want 100000", r.WallClockUS)
	}
	if r.PathWorkUS+r.PathIdleUS != r.WallClockUS {
		t.Errorf("work %d + idle %d != wall clock %d", r.PathWorkUS, r.PathIdleUS, r.WallClockUS)
	}
	// Contiguity: each segment starts where the previous ended, from
	// the root's start to its end.
	var cur int64
	for i, s := range r.CriticalPath {
		if s.Start != cur {
			t.Errorf("segment %d starts at %d, want %d", i, s.Start, cur)
		}
		cur = s.End
	}
	if cur != 100000 {
		t.Errorf("path ends at %d, want 100000", cur)
	}
	// The walk: trial B [50000,100000] is the last finisher; before it,
	// the last finisher at 50000 is trial A's search phase ending 40000
	// (leaving a 10ms idle gap); then search [10000,40000]; then
	// generate [0,10000]. Trial C never dominates.
	var names []string
	for _, s := range r.CriticalPath {
		names = append(names, s.Name)
	}
	want := []string{"generate", "search", "(idle)", "trial B"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("critical path = %v, want %v", names, want)
	}
	if r.PathIdleUS != 10000 {
		t.Errorf("idle = %dµs, want 10000", r.PathIdleUS)
	}
}

// TestUtilization pins the per-lane busy fraction (interval union,
// clipped to the sweep window) and the idle-gap histogram.
func TestUtilization(t *testing.T) {
	a, err := analyze(mkTrace(t, fixture()))
	if err != nil {
		t.Fatal(err)
	}
	lanes, err := a.utilization()
	if err != nil {
		t.Fatal(err)
	}
	byLane := map[laneKey]laneStats{}
	for _, l := range lanes {
		byLane[laneKey{l.PID, l.TID}] = l
	}
	// Lane (1,1): [0,40000] + [50000,100000] = 90% busy, one gap of
	// exactly 10ms — bucket bounds are inclusive, so it lands in 1-10ms.
	l := byLane[laneKey{1, 1}]
	if l.BusyUS != 90000 || l.Utilization != 90.0 {
		t.Errorf("lane (1,1): busy %dµs at %.1f%%, want 90000 at 90.0", l.BusyUS, l.Utilization)
	}
	if l.Gaps["1-10ms"] != 1 || len(l.Gaps) != 1 {
		t.Errorf("lane (1,1) gaps = %v, want one 1-10ms gap", l.Gaps)
	}
	// Lane (1,2): [0,30000] = 30% busy, no gaps.
	l = byLane[laneKey{1, 2}]
	if l.BusyUS != 30000 || len(l.Gaps) != 0 {
		t.Errorf("lane (1,2): busy %dµs gaps %v, want 30000 and none", l.BusyUS, l.Gaps)
	}
	// Control lane: the sweep span itself, 100%.
	if l = byLane[laneKey{0, 0}]; l.Utilization != 100.0 {
		t.Errorf("control lane %.1f%% busy, want 100.0", l.Utilization)
	}
}

// TestSlowestTrials pins ordering and the phase breakdown.
func TestSlowestTrials(t *testing.T) {
	a, err := analyze(mkTrace(t, fixture()))
	if err != nil {
		t.Fatal(err)
	}
	got := a.slowestTrials(2)
	if len(got) != 2 || got[0].Name != "trial B" || got[1].Name != "trial A" {
		t.Fatalf("slowest = %+v, want trial B then trial A", got)
	}
	ph := got[1].Phases
	if ph["generate"] != 10000 || ph["search"] != 30000 {
		t.Errorf("trial A phases = %v, want generate 10000, search 30000", ph)
	}
	if _, ok := ph["other"]; ok {
		t.Errorf("trial A has no uncovered time, got other=%d", ph["other"])
	}
}

// TestFlowsAndInstants pins the lineage summary.
func TestFlowsAndInstants(t *testing.T) {
	a, err := analyze(mkTrace(t, fixture()))
	if err != nil {
		t.Fatal(err)
	}
	f := a.flows()
	if f["lease"].Starts != 1 || f["lease"].Ends != 1 || f["lease"].Matched != 1 {
		t.Errorf("lease flow = %+v, want 1/1/1", f["lease"])
	}
	// A start the finish never reached is legal (worker tail loss).
	if f["retry"].Starts != 1 || f["retry"].Ends != 0 {
		t.Errorf("retry flow = %+v, want 1 start, 0 ends", f["retry"])
	}
	if a.instants["lease_steal"] != 1 {
		t.Errorf("instants = %v, want one lease_steal", a.instants)
	}
}

// TestRejectsBrokenTraces pins every structural gate.
func TestRejectsBrokenTraces(t *testing.T) {
	cases := []struct {
		name string
		evs  []event
		want string
	}{
		{"empty", []event{}, "empty trace"},
		{"metadata only", []event{{Name: "process_name", Ph: "M", PID: 0}}, "empty trace"},
		{"dangling begin", []event{b("x", "trial", 0, 0, 0)}, "never ended"},
		{"end without begin", []event{e(5, 0, 0)}, "no open span"},
		{"orphan flow finish", []event{
			b("x", "trial", 0, 0, 0), e(5, 0, 0),
			{Name: "lease", Ph: "f", TS: 1, PID: 1, TID: 0, ID: "0x99", Cat: "flow"},
		}, "no matching start"},
		{"not json", nil, "parsing trace"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := mkTrace(t, tc.evs)
			if tc.evs == nil {
				data = []byte("not a trace")
			}
			_, err := analyze(data)
			if err == nil {
				t.Fatal("analyze accepted a broken trace")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("diagnostic %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestEmptyCriticalPathRejected: a trace whose spans all have zero
// duration yields no work segments — the gate CI relies on.
func TestEmptyCriticalPathRejected(t *testing.T) {
	a, err := analyze(mkTrace(t, []event{
		b("sweep", "sweep", 0, 0, 0),
		b("x", "trial", 3, 0, 0), e(3, 0, 0),
		e(10, 0, 0),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.report(10); err == nil || !strings.Contains(err.Error(), "critical path is empty") {
		t.Errorf("report err = %v, want empty-critical-path rejection", err)
	}
}

// TestSyntheticRoot: a trace without a root sweep span gets one
// covering every span, so hand-built fixtures still analyze.
func TestSyntheticRoot(t *testing.T) {
	a, err := analyze(mkTrace(t, []event{
		b("trial A", "trial", 100, 1, 1), e(400, 1, 1),
		b("trial B", "trial", 300, 2, 1), e(900, 2, 1),
	}))
	if err != nil {
		t.Fatal(err)
	}
	if a.root.Start != 100 || a.root.End != 900 {
		t.Fatalf("synthetic root [%d,%d], want [100,900]", a.root.Start, a.root.End)
	}
	r, err := a.report(10)
	if err != nil {
		t.Fatal(err)
	}
	if r.PathWorkUS+r.PathIdleUS != 800 {
		t.Errorf("path total = %d, want 800", r.PathWorkUS+r.PathIdleUS)
	}
}

// TestParseOptions pins the CLI contract.
func TestParseOptions(t *testing.T) {
	if _, err := parseOptions([]string{}); err == nil {
		t.Error("no trace file argument accepted")
	}
	if _, err := parseOptions([]string{"a.json", "b.json"}); err == nil {
		t.Error("two trace file arguments accepted")
	}
	if _, err := parseOptions([]string{"-top", "0", "t.json"}); err == nil {
		t.Error("-top 0 accepted")
	}
	o, err := parseOptions([]string{"-top", "3", "-json", "t.json"})
	if err != nil {
		t.Fatal(err)
	}
	if o.topK != 3 || !o.jsonOut || o.tracePath != "t.json" {
		t.Errorf("parsed options = %+v", o)
	}
}

// TestTextReport smoke-checks the renderer on the fixture.
func TestTextReport(t *testing.T) {
	a, err := analyze(mkTrace(t, fixture()))
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.report(10)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := renderText(&sb, a, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"critical path:", "lane utilization", "slowest trials:", "trial B", "lease_steal", "coordinator"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
