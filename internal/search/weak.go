package search

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

// RandomWalk is the pure random walk in the weak model: at every step
// it picks a uniformly random incident edge slot of the current vertex
// and moves across it. Traversing an already-revealed slot is free;
// only first-time revelations cost a request.
type RandomWalk struct{}

// NewRandomWalk returns the weak-model pure random walk.
func NewRandomWalk() *RandomWalk { return &RandomWalk{} }

// Name implements Algorithm.
func (*RandomWalk) Name() string { return "random-walk" }

// Knowledge implements Algorithm.
func (*RandomWalk) Knowledge() Knowledge { return Weak }

// Search implements Algorithm.
func (*RandomWalk) Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error) {
	if err := checkModel(NewRandomWalk(), o); err != nil {
		return Result{}, err
	}
	cur := o.Start()
	for steps := 0; !o.Found() && budgetLeft(o, maxRequests) && steps < stepCap(maxRequests); steps++ {
		view, ok := o.ViewOf(cur)
		if !ok {
			return Result{}, fmt.Errorf("search: random walk standing on unknown vertex %d", cur)
		}
		if view.Degree == 0 {
			break // isolated start: nowhere to go
		}
		slot := r.Intn(view.Degree)
		next, _, err := o.RequestEdge(cur, slot)
		if err != nil {
			return Result{}, err
		}
		cur = next
	}
	return Result{Found: o.Found(), Requests: o.Requests()}, nil
}

// SelfAvoidingWalk is a random walk that prefers unrevealed slots of
// the current vertex, falling back to a uniform move when every slot
// is known. It models a slightly smarter crawler with the same local
// knowledge.
type SelfAvoidingWalk struct{}

// NewSelfAvoidingWalk returns the exploration-biased weak-model walk.
func NewSelfAvoidingWalk() *SelfAvoidingWalk { return &SelfAvoidingWalk{} }

// Name implements Algorithm.
func (*SelfAvoidingWalk) Name() string { return "self-avoiding-walk" }

// Knowledge implements Algorithm.
func (*SelfAvoidingWalk) Knowledge() Knowledge { return Weak }

// Search implements Algorithm.
func (*SelfAvoidingWalk) Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error) {
	if err := checkModel(NewSelfAvoidingWalk(), o); err != nil {
		return Result{}, err
	}
	cur := o.Start()
	var fresh []int
	for steps := 0; !o.Found() && budgetLeft(o, maxRequests) && steps < stepCap(maxRequests); steps++ {
		view, ok := o.ViewOf(cur)
		if !ok {
			return Result{}, fmt.Errorf("search: walk standing on unknown vertex %d", cur)
		}
		if view.Degree == 0 {
			break
		}
		fresh = fresh[:0]
		for slot, w := range view.Resolved {
			if w == graph.NoVertex {
				fresh = append(fresh, slot)
			}
		}
		var slot int
		if len(fresh) > 0 {
			slot = fresh[r.Intn(len(fresh))]
		} else {
			slot = r.Intn(view.Degree)
		}
		next, _, err := o.RequestEdge(cur, slot)
		if err != nil {
			return Result{}, err
		}
		cur = next
	}
	return Result{Found: o.Found(), Requests: o.Requests()}, nil
}

// Flood explores in breadth-first order: it resolves every slot of
// every discovered vertex in discovery order. It is the weak-model
// analogue of flooding a query and an upper-bound baseline — it visits
// everything, so it always finds a connected target within a budget of
// m requests.
type Flood struct{}

// NewFlood returns the weak-model BFS/flooding searcher.
func NewFlood() *Flood { return &Flood{} }

// Name implements Algorithm.
func (*Flood) Name() string { return "flood" }

// Knowledge implements Algorithm.
func (*Flood) Knowledge() Knowledge { return Weak }

// Search implements Algorithm.
func (*Flood) Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error) {
	if err := checkModel(NewFlood(), o); err != nil {
		return Result{}, err
	}
	for i := 0; i < len(o.Discovered()); i++ {
		u := o.Discovered()[i]
		view, _ := o.ViewOf(u)
		for slot := 0; slot < view.Degree; slot++ {
			if o.Found() || !budgetLeft(o, maxRequests) {
				return Result{Found: o.Found(), Requests: o.Requests()}, nil
			}
			if view.Resolved[slot] != graph.NoVertex {
				continue
			}
			if _, _, err := o.RequestEdge(u, slot); err != nil {
				return Result{}, err
			}
		}
	}
	return Result{Found: o.Found(), Requests: o.Requests()}, nil
}

// RandomEdge resolves a uniformly random unresolved slot over the whole
// discovered set at every step — an unfocused crawler that spreads
// requests rather than walking.
type RandomEdge struct{}

// NewRandomEdge returns the uniform-frontier weak-model searcher.
func NewRandomEdge() *RandomEdge { return &RandomEdge{} }

// Name implements Algorithm.
func (*RandomEdge) Name() string { return "random-edge" }

// Knowledge implements Algorithm.
func (*RandomEdge) Knowledge() Knowledge { return Weak }

// Search implements Algorithm.
func (*RandomEdge) Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error) {
	if err := checkModel(NewRandomEdge(), o); err != nil {
		return Result{}, err
	}
	type slotRef struct {
		v    graph.Vertex
		slot int
	}
	var pool []slotRef
	addVertex := func(v graph.Vertex) {
		view, _ := o.ViewOf(v)
		for slot, w := range view.Resolved {
			if w == graph.NoVertex {
				pool = append(pool, slotRef{v, slot})
			}
		}
	}
	known := 0
	for !o.Found() && budgetLeft(o, maxRequests) {
		for ; known < len(o.Discovered()); known++ {
			addVertex(o.Discovered()[known])
		}
		// Lazy deletion: drop stale references (slots resolved from the
		// far side) as they surface.
		found := false
		for len(pool) > 0 {
			i := r.Intn(len(pool))
			ref := pool[i]
			pool[i] = pool[len(pool)-1]
			pool = pool[:len(pool)-1]
			view, _ := o.ViewOf(ref.v)
			if view.Resolved[ref.slot] != graph.NoVertex {
				continue
			}
			if _, _, err := o.RequestEdge(ref.v, ref.slot); err != nil {
				return Result{}, err
			}
			found = true
			break
		}
		if !found {
			break // frontier exhausted: component fully explored
		}
	}
	return Result{Found: o.Found(), Requests: o.Requests()}, nil
}

// DegreeGreedyWeak is the weak-model degree-driven searcher: it always
// spends its next request on an unresolved slot of the highest-degree
// discovered vertex (ties broken towards older identities). It is the
// closest weak-model analogue of Adamic et al.'s high-degree strategy,
// which needs neighbor degrees and therefore lives in the strong model.
type DegreeGreedyWeak struct{}

// NewDegreeGreedyWeak returns the weak-model degree-greedy searcher.
func NewDegreeGreedyWeak() *DegreeGreedyWeak { return &DegreeGreedyWeak{} }

// Name implements Algorithm.
func (*DegreeGreedyWeak) Name() string { return "degree-greedy-weak" }

// Knowledge implements Algorithm.
func (*DegreeGreedyWeak) Knowledge() Knowledge { return Weak }

// Search implements Algorithm.
func (*DegreeGreedyWeak) Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error) {
	if err := checkModel(NewDegreeGreedyWeak(), o); err != nil {
		return Result{}, err
	}
	return greedyWeak(o, maxRequests, func(v graph.Vertex, deg int) int64 {
		// Max degree first; ties to older (smaller) identities.
		return -int64(deg)<<32 + int64(v)
	})
}

// IDGreedyWeak spends its next request on the discovered vertex whose
// identity is closest to the target's. In evolving models identity
// equals age, so this strategy exploits exactly the label/age
// correlation the paper's equivalence argument shows to be useless
// near the target.
type IDGreedyWeak struct{}

// NewIDGreedyWeak returns the weak-model identity-greedy searcher.
func NewIDGreedyWeak() *IDGreedyWeak { return &IDGreedyWeak{} }

// Name implements Algorithm.
func (*IDGreedyWeak) Name() string { return "id-greedy-weak" }

// Knowledge implements Algorithm.
func (*IDGreedyWeak) Knowledge() Knowledge { return Weak }

// Search implements Algorithm.
func (*IDGreedyWeak) Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error) {
	if err := checkModel(NewIDGreedyWeak(), o); err != nil {
		return Result{}, err
	}
	target := int64(o.Target())
	return greedyWeak(o, maxRequests, func(v graph.Vertex, deg int) int64 {
		d := int64(v) - target
		if d < 0 {
			d = -d
		}
		return d<<32 + int64(v)
	})
}

// greedyWeak is the shared engine of the weak-model greedy searchers:
// repeatedly pick the discovered vertex minimizing priority among those
// with unresolved slots, and resolve its first unresolved slot.
func greedyWeak(o *Oracle, maxRequests int, priority func(v graph.Vertex, deg int) int64) (Result, error) {
	type entry struct {
		prio int64
		v    graph.Vertex
	}
	h := newHeap(func(a, b entry) bool { return a.prio < b.prio })
	known := 0
	for !o.Found() && budgetLeft(o, maxRequests) {
		for ; known < len(o.Discovered()); known++ {
			v := o.Discovered()[known]
			view, _ := o.ViewOf(v)
			h.Push(entry{priority(v, view.Degree), v})
		}
		e, ok := h.Pop()
		if !ok {
			break // everything resolved: component exhausted
		}
		view, _ := o.ViewOf(e.v)
		if view.Unresolved == 0 {
			continue // stale entry
		}
		slot := 0
		for ; slot < view.Degree; slot++ {
			if view.Resolved[slot] == graph.NoVertex {
				break
			}
		}
		if _, _, err := o.RequestEdge(e.v, slot); err != nil {
			return Result{}, err
		}
		if view.Unresolved > 0 {
			h.Push(e) // still has slots: stays a candidate
		}
	}
	return Result{Found: o.Found(), Requests: o.Requests()}, nil
}
