package geopa

import (
	"math"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

func TestValidate(t *testing.T) {
	for _, bad := range []Config{
		{N: 1, M: 1, R: 0.25},
		{N: 100, M: 0, R: 0.25},
		{N: 100, M: 1, R: 0},
		{N: 100, M: 1, R: -1},
		{N: 100, M: 1, R: 0.01}, // below the busy-loop floor
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v validated", bad)
		}
		if _, err := bad.Generate(rng.New(1)); err == nil {
			t.Errorf("%+v generated", bad)
		}
	}
}

func TestTorusDist(t *testing.T) {
	cases := []struct {
		x1, y1, x2, y2, want float64
	}{
		{0, 0, 0, 0, 0},
		{0.1, 0, 0.4, 0, 0.3},
		{0.05, 0, 0.95, 0, 0.1}, // wraps around
		{0, 0.05, 0, 0.95, 0.1},
		{0, 0, 0.5, 0.5, math.Sqrt(0.5)}, // the torus diameter
	}
	for _, c := range cases {
		if got := torusDist(c.x1, c.y1, c.x2, c.y2); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("torusDist(%v,%v,%v,%v) = %v, want %v", c.x1, c.y1, c.x2, c.y2, got, c.want)
		}
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := Config{N: 400, M: 2, R: 0.25}
	g, err := cfg.Generate(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 400 || g.NumEdges() != 1+2*399 {
		t.Fatalf("got %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if _, comps := graph.Components(g); comps != 1 {
		t.Errorf("geopa graph has %d components, want 1", comps)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{N: 300, M: 1, R: 0.25}
	a, err := cfg.Generate(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfg.Generate(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if !graph.Equal(a, b) {
		t.Error("equal seeds yield different graphs")
	}
}

func TestGenerateScratchMatchesGenerate(t *testing.T) {
	cfg := Config{N: 200, M: 2, R: 0.3}
	var s Scratch
	for seed := uint64(1); seed <= 5; seed++ {
		want, err := cfg.Generate(rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		got, err := cfg.GenerateScratch(rng.New(seed), &s)
		if err != nil {
			t.Fatal(err)
		}
		if !graph.Equal(want, got) {
			t.Fatalf("seed %d: scratch generation diverges from Generate", seed)
		}
	}
}

// TestGenerateScratchAllocFree pins the steady state of the scratch
// path: after a warm-up generation, repeated same-size draws perform
// zero allocations.
func TestGenerateScratchAllocFree(t *testing.T) {
	cfg := Config{N: 500, M: 2, R: 0.25}
	var s Scratch
	r := rng.New(3)
	gen := func() {
		if _, err := cfg.GenerateScratch(r, &s); err != nil {
			t.Fatal(err)
		}
	}
	gen() // warm up the buffers
	if allocs := testing.AllocsPerRun(10, gen); allocs > 0 {
		t.Errorf("steady-state GenerateScratch allocates %v times per graph, want 0", allocs)
	}
}

// TestRejectionMatchesRefDistribution is the sampler safety net: the
// O(1) rejection sampler on the endpoint array and the O(n) exact-
// inversion reference must draw degree distributions that a two-sample
// chi-square test cannot tell apart.
func TestRejectionMatchesRefDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution comparison is not short")
	}
	const (
		size = 400
		reps = 250
		bins = 9 // degrees 1..7 and >= 8 (index 0 unused: min degree is 1)
	)
	for _, r := range []float64{0.15, 0.4} {
		cfg := Config{N: size, M: 1, R: r}
		histProd := make([]int, bins)
		histRef := make([]int, bins)
		for rep := 0; rep < reps; rep++ {
			gp, err := cfg.Generate(rng.New(rng.DeriveSeed(31, uint64(rep))))
			if err != nil {
				t.Fatal(err)
			}
			gr, err := cfg.GenerateRef(rng.New(rng.DeriveSeed(32, uint64(rep))))
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range gp.Degrees()[1:] {
				histProd[min(d, bins-1)]++
			}
			for _, d := range gr.Degrees()[1:] {
				histRef[min(d, bins-1)]++
			}
		}
		res, err := stats.ChiSquareTwoSample(histProd, histRef)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 1e-3 {
			t.Errorf("r=%v: rejection vs reference degree distributions differ: chi2=%.2f df=%d p-value=%g\nproduction: %v\nreference:  %v",
				r, res.Statistic, res.DF, res.PValue, histProd, histRef)
		}
	}
}
