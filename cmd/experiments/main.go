// Command experiments runs the paper-reproduction experiment suite
// (E1–E11, see DESIGN.md) and prints the EXPERIMENTS.md tables.
//
// Usage:
//
//	experiments [-run E1,E4] [-scale 1.0] [-seed 2024] [-workers 0]
//	            [-progress] [-csv dir] [-cache dir]
//	            [-shard i/k -out dir [-resume]] [-merge dir]
//
// -scale shrinks workload sizes and replication counts proportionally
// (0.1 gives a quick smoke run); -workers bounds the trial worker pool
// (0 uses every core; output is bit-identical for every worker count
// under the same seed); -progress streams per-trial completions plus
// an aggregate rate/ETA to stderr; -csv additionally writes every
// table as a CSV file into the given directory. Ctrl-C cancels the run
// between trials.
//
// Distribution (DESIGN.md §6): -cache dir keeps a content-addressed
// per-trial result cache, so interrupted sweeps resume where they
// stopped and unchanged experiments re-reduce without recomputing.
// -shard i/k (1-based, with -out dir) executes only the i-th of k
// disjoint slices of each selected experiment's trials and writes a
// shard file instead of tables — run the k shards on any machines,
// gather the files into one directory, and -merge dir reassembles them
// and prints tables byte-identical to a single-process run of the same
// seed and scale. -resume lets a -shard run reuse a matching existing
// shard file. Tables go to stdout; all status goes to stderr, so
// single-process and merged outputs diff cleanly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/experiment"
	"scalefree/internal/sweep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		runList  = flag.String("run", "all", "comma-separated experiment IDs (e.g. E1,E4) or 'all'")
		scale    = flag.Float64("scale", 1.0, "workload scale factor (1.0 = full EXPERIMENTS.md workload)")
		seed     = flag.Uint64("seed", 2024, "master seed")
		workers  = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		progress = flag.Bool("progress", false, "stream per-trial completions and aggregate rate/ETA to stderr")
		csvDir   = flag.String("csv", "", "directory to also write per-table CSV files (optional)")
		cacheDir = flag.String("cache", "", "content-addressed per-trial result cache directory (optional)")
		shardStr = flag.String("shard", "", "execute one shard i/k (1-based, e.g. 2/5) and write a shard file instead of tables; requires -out")
		outDir   = flag.String("out", "", "directory for shard files written by -shard")
		mergeDir = flag.String("merge", "", "merge shard files from this directory and print tables (instead of executing trials)")
		resume   = flag.Bool("resume", false, "with -shard: reuse a matching existing shard file's results")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var selected []experiment.Experiment
	if *runList == "all" {
		selected = experiment.Registry()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiment.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (known: E1..E11)", id)
			}
			selected = append(selected, e)
		}
	}
	// Reject meaningless flag combinations up front — a silently
	// ignored flag reads as accepted and misleads the operator.
	workersSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workers" {
			workersSet = true
		}
	})
	switch {
	case *mergeDir != "" && *shardStr != "":
		return fmt.Errorf("-merge and -shard are mutually exclusive: merging reads shard files, sharding writes them")
	case *mergeDir != "" && *cacheDir != "":
		return fmt.Errorf("-cache applies to runs that execute trials; -merge only reads shard files")
	case *mergeDir != "" && *resume:
		return fmt.Errorf("-resume applies to -shard runs; -merge re-reads shard files every time")
	case *mergeDir != "" && (workersSet || *progress):
		return fmt.Errorf("-workers and -progress apply to runs that execute trials; -merge only reads shard files")
	case *shardStr != "" && *outDir == "":
		return fmt.Errorf("-shard requires -out: shard runs write result files, not tables")
	case *shardStr != "" && *csvDir != "":
		return fmt.Errorf("-csv applies to runs that print tables; shard runs write result files (use -csv with -merge)")
	case *shardStr == "" && *outDir != "":
		return fmt.Errorf("-out is the shard file directory; it requires -shard i/k")
	case *shardStr == "" && *resume:
		return fmt.Errorf("-resume applies to -shard runs; plain runs resume via -cache")
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return fmt.Errorf("creating CSV directory: %w", err)
		}
	}

	var cache *sweep.Cache
	if *cacheDir != "" {
		var err error
		if cache, err = sweep.OpenCache(*cacheDir); err != nil {
			return err
		}
	}

	cfg := experiment.Config{Seed: *seed, Scale: *scale}
	switch {
	case *mergeDir != "":
		return mergeShards(selected, cfg, *mergeDir, *csvDir)
	case *shardStr != "":
		spec, err := sweep.ParseShardSpec(*shardStr)
		if err != nil {
			return err
		}
		return runShards(ctx, selected, cfg, spec, *workers, *progress, cache, *outDir, *resume)
	default:
		return runAll(ctx, selected, cfg, *workers, *progress, cache, *csvDir)
	}
}

// progressHook builds the -progress stderr stream: per-trial lines
// with the aggregate sliding-window rate and ETA appended.
func progressHook(tracker *engine.RateTracker) func(engine.Progress) {
	return func(p engine.Progress) {
		tracker.Observe(p)
		status := "ok"
		if p.Err != nil {
			status = "FAIL: " + p.Err.Error()
		}
		fmt.Fprintf(os.Stderr, "  [%d/%d] %s (%v) %s | %s\n",
			p.Done, p.Total, p.Trial.Key, p.Elapsed.Round(time.Millisecond), status,
			tracker.Snapshot())
	}
}

// runAll is the classic mode: execute every selected experiment in
// this process (optionally through the result cache) and print tables.
func runAll(ctx context.Context, selected []experiment.Experiment, cfg experiment.Config, workers int, progress bool, cache *sweep.Cache, csvDir string) error {
	for _, e := range selected {
		fmt.Fprintf(os.Stderr, "=== %s: %s (scale %.2f, seed %d, workers %d)\n",
			e.ID, e.Title, cfg.Scale, cfg.Seed, workers)
		opts := engine.Options{Workers: workers}
		if progress {
			opts.Progress = progressHook(engine.NewRateTracker(0))
		}
		start := time.Now()
		tables, stats, err := e.RunCached(ctx, cfg, opts, cache)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "    completed in %v (%s)\n\n",
			time.Since(start).Round(time.Millisecond), stats)
		if err := emit(e, tables, csvDir); err != nil {
			return err
		}
	}
	return nil
}

// runShards executes one shard of every selected experiment, writing
// one shard file per experiment into outDir.
func runShards(ctx context.Context, selected []experiment.Experiment, cfg experiment.Config, spec sweep.ShardSpec, workers int, progress bool, cache *sweep.Cache, outDir string, resume bool) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return fmt.Errorf("creating shard output directory: %w", err)
	}
	for _, e := range selected {
		path := filepath.Join(outDir, e.ShardFileName(spec))
		fmt.Fprintf(os.Stderr, "=== %s shard %s: %s (scale %.2f, seed %d) -> %s\n",
			e.ID, spec, e.Title, cfg.Scale, cfg.Seed, path)
		opts := engine.Options{Workers: workers}
		if progress {
			opts.Progress = progressHook(engine.NewRateTracker(0))
		}
		start := time.Now()
		stats, err := e.RunShard(ctx, cfg, spec, opts, cache, path, resume)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "    completed in %v (%s)\n",
			time.Since(start).Round(time.Millisecond), stats)
	}
	return nil
}

// mergeShards reassembles shard files from dir for every selected
// experiment and prints the reduced tables.
func mergeShards(selected []experiment.Experiment, cfg experiment.Config, dir, csvDir string) error {
	for _, e := range selected {
		paths, err := filepath.Glob(filepath.Join(dir, e.ID+".shard-*of*"))
		if err != nil {
			return err
		}
		if len(paths) == 0 {
			return fmt.Errorf("%s: no shard files named %s.shard-*of* in %s", e.ID, e.ID, dir)
		}
		sort.Strings(paths)
		fmt.Fprintf(os.Stderr, "=== %s: merging %d shard files (scale %.2f, seed %d)\n",
			e.ID, len(paths), cfg.Scale, cfg.Seed)
		tables, err := e.MergeShardFiles(cfg, paths)
		if err != nil {
			return err
		}
		if err := emit(e, tables, csvDir); err != nil {
			return err
		}
	}
	return nil
}

// emit renders tables to stdout and, when csvDir is set, as CSV files.
func emit(e experiment.Experiment, tables []experiment.Table, csvDir string) error {
	for ti, tab := range tables {
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		if csvDir != "" {
			name := fmt.Sprintf("%s_%d.csv", strings.ToLower(e.ID), ti)
			f, err := os.Create(filepath.Join(csvDir, name))
			if err != nil {
				return fmt.Errorf("creating %s: %w", name, err)
			}
			if err := tab.CSV(f); err != nil {
				f.Close()
				return fmt.Errorf("writing %s: %w", name, err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("closing %s: %w", name, err)
			}
		}
	}
	return nil
}
