package equivalence

import (
	"fmt"
	"math"

	"scalefree/internal/cooperfrieze"
	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

// CheckEventCF reports whether the Theorem-2 equivalence event holds
// for the window (a, b] in a generated Cooper–Frieze graph whose
// generation stopped at vertex b (b = number of vertices). The event
// requires every window vertex v to be untouched apart from its own
// arrival edges into the old part:
//
//  1. v received no incoming edges,
//  2. v was never selected as an Old-step source (its final out-degree
//     equals its arrival out-degree), and
//  3. all of v's out-edges target vertices <= a.
//
// Conditional on this event the window labels are exchangeable: each
// window vertex interacts with the rest of the graph only through an
// i.i.d. arrival-edge profile into [1, a].
func CheckEventCF(res *cooperfrieze.Result, a, b int) (bool, error) {
	g := res.Graph
	if b != g.NumVertices() {
		return false, fmt.Errorf("equivalence: CF event needs b = NumVertices (%d), got %d", g.NumVertices(), b)
	}
	if err := validateWindow(a, b, b); err != nil {
		return false, err
	}
	for v := graph.Vertex(a + 1); int(v) <= b; v++ {
		if g.InDegree(v) != 0 {
			return false, nil
		}
		if g.OutDegree(v) != res.ArrivalOutDeg[v] {
			return false, nil
		}
		for _, h := range g.Incident(v) {
			if h.Out && int(h.Other) > a {
				return false, nil
			}
		}
	}
	return true, nil
}

// MonteCarloEventProbCF estimates the probability of the Theorem-2
// equivalence event for the window (a, cfg.N] by repeated generation.
// It returns the estimate and its standard error.
func MonteCarloEventProbCF(r *rng.RNG, cfg cooperfrieze.Config, a, reps int) (estimate, stderr float64, err error) {
	if reps < 1 {
		return 0, 0, fmt.Errorf("equivalence: reps = %d < 1", reps)
	}
	if err := validateWindow(a, cfg.N, cfg.N); err != nil {
		return 0, 0, err
	}
	hits := 0
	for i := 0; i < reps; i++ {
		res, err := cfg.Generate(r)
		if err != nil {
			return 0, 0, err
		}
		ok, err := CheckEventCF(res, a, cfg.N)
		if err != nil {
			return 0, 0, err
		}
		if ok {
			hits++
		}
	}
	ph := float64(hits) / float64(reps)
	return ph, math.Sqrt(ph * (1 - ph) / float64(reps)), nil
}

// Lemma1BoundCF evaluates the Theorem-2 style lower bound |V|·P(E)/2
// for a Cooper–Frieze configuration, using the canonical window ending
// at the youngest vertex and a Monte-Carlo estimate of the event
// probability. It returns the bound together with the window and the
// estimated probability.
func Lemma1BoundCF(r *rng.RNG, cfg cooperfrieze.Config, reps int) (bound float64, a int, prob float64, err error) {
	a, err = WindowEndingAt(cfg.N)
	if err != nil {
		return 0, 0, 0, err
	}
	prob, _, err = MonteCarloEventProbCF(r, cfg, a, reps)
	if err != nil {
		return 0, 0, 0, err
	}
	return float64(cfg.N-a) * prob / 2, a, prob, nil
}
