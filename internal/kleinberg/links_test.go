package kleinberg

import (
	"math"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

func TestQControlsLongLinkCount(t *testing.T) {
	for _, q := range []int{1, 2, 3} {
		grid, err := Config{L: 12, R: 2, Q: q}.Generate(rng.New(3))
		if err != nil {
			t.Fatal(err)
		}
		n := 12 * 12
		want := 2*n + q*n
		if got := grid.Graph.NumEdges(); got != want {
			t.Errorf("q=%d: edges = %d, want %d", q, got, want)
		}
		// Each vertex emits exactly 2 local + q long out-edges.
		for v := graph.Vertex(1); v <= graph.Vertex(n); v++ {
			if got := grid.Graph.OutDegree(v); got != 2+q {
				t.Fatalf("q=%d vertex %d out-degree %d, want %d", q, v, got, 2+q)
			}
		}
	}
}

func TestLongLinkDistanceBias(t *testing.T) {
	// At large r, long links concentrate on distance 1; at r = 0 the
	// mean long-link distance approaches the mean torus distance (~L/2).
	meanLinkDist := func(r float64) float64 {
		grid, err := Config{L: 20, R: r}.Generate(rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		g := grid.Graph
		n := 20 * 20
		total, count := 0, 0
		// Long links are the third out-edge of each vertex (edges are
		// appended local-first, then long links).
		for e := 2 * n; e < g.NumEdges(); e++ {
			u, v := g.Endpoints(graph.EdgeID(e))
			total += grid.Dist(u, v)
			count++
		}
		return float64(total) / float64(count)
	}
	local := meanLinkDist(6)
	uniform := meanLinkDist(0)
	if local > 2.5 {
		t.Errorf("r=6 mean long-link distance %.2f; should hug distance 1", local)
	}
	if uniform < 5 {
		t.Errorf("r=0 mean long-link distance %.2f; should approach the mean torus distance", uniform)
	}
	if uniform <= local {
		t.Error("distance bias ordering broken")
	}
}

func TestRouteResultStepsMatchPathLength(t *testing.T) {
	// Greedy steps can never beat the torus distance (each hop moves
	// closer by at least 1, long links possibly much more, but the
	// count is at least ceil over the largest single improvement)...
	// the robust invariant: steps >= 1 for distinct endpoints and
	// steps <= distance when every hop improves by at least one.
	grid, err := Config{L: 16, R: 2}.Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(10)
	n := 16 * 16
	for i := 0; i < 100; i++ {
		s := graph.Vertex(r.IntRange(1, n))
		d := graph.Vertex(r.IntRange(1, n))
		if s == d {
			continue
		}
		res := grid.GreedyRoute(s, d, 0)
		if res.Steps < 1 {
			t.Fatalf("distinct endpoints routed in %d steps", res.Steps)
		}
		if res.Steps > grid.Dist(s, d) {
			t.Fatalf("greedy took %d steps for distance %d; it must improve every hop",
				res.Steps, grid.Dist(s, d))
		}
	}
}

func TestOffsetBucketWeights(t *testing.T) {
	// The distance-class construction must cover all L²-1 offsets.
	buckets, _, err := offsetBuckets(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	if total != 9*9-1 {
		t.Errorf("offset buckets cover %d offsets, want %d", total, 9*9-1)
	}
}

func TestPowNeg(t *testing.T) {
	if powNeg(5, 0) != 1 {
		t.Error("r=0 weight should be 1")
	}
	if math.Abs(powNeg(2, 2)-0.25) > 1e-12 {
		t.Errorf("powNeg(2,2) = %v", powNeg(2, 2))
	}
}
