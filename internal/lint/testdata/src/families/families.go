// Package families is the codecreg fixture for Family parameter
// coverage: every declared Param must be read by Build, every read
// must be declared, and passing the Values along disables the
// unread-parameter half (coverage can no longer be proven).
package families

import "model"

var covered = model.Family{
	Name:   "covered",
	Params: []model.Param{{Name: "n"}, {Name: "p"}, {Name: "loops"}},
	Build: func(v model.Values) (*model.Graph, error) {
		_ = v.Int("n")
		_ = v["p"]
		_ = v.Bool("loops")
		return nil, nil
	},
}

var unread = model.Family{
	Name: "unread",
	Params: []model.Param{
		{Name: "n"},
		{Name: "ghost"}, // want `family "unread" declares parameter "ghost" but its Build hook never reads it`
	},
	Build: func(v model.Values) (*model.Graph, error) {
		_ = v.Int("n")
		return nil, nil
	},
}

var undeclared = model.Family{
	Name:   "undeclared",
	Params: []model.Param{{Name: "n"}},
	Build: func(v model.Values) (*model.Graph, error) {
		_ = v.Int("n")
		_ = v.Bool("loops") // want `Build of family "undeclared" reads parameter "loops", which the family does not declare`
		return nil, nil
	},
}

func helper(v model.Values) {}

// escaped passes its Values along: the declared-but-unread half is
// disabled (no diagnostics for "alpha"), but a literal undeclared read
// is still caught.
var escaped = model.Family{
	Name:   "escaped",
	Params: []model.Param{{Name: "n"}, {Name: "alpha"}},
	Build: func(v model.Values) (*model.Graph, error) {
		helper(v)
		return nil, nil
	},
}

// positional Param literals also declare names.
var positional = model.Family{
	Name: "positional",
	Params: []model.Param{
		{"n", 1, 10},
		{"phantom", 0, 1}, // want `family "positional" declares parameter "phantom" but its Build hook never reads it`
	},
	Build: func(v model.Values) (*model.Graph, error) {
		_ = v.Int("n")
		return nil, nil
	},
}
