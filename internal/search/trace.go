package search

import (
	"fmt"
	"io"

	"scalefree/internal/graph"
)

// TraceKind distinguishes the two request types in a trace.
type TraceKind int

// Trace event kinds.
const (
	TraceEdgeRequest TraceKind = iota + 1
	TraceVertexRequest
)

// String implements fmt.Stringer.
func (k TraceKind) String() string {
	switch k {
	case TraceEdgeRequest:
		return "edge"
	case TraceVertexRequest:
		return "vertex"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent records one paid oracle request.
type TraceEvent struct {
	Seq      int          // 1-based request number
	Kind     TraceKind    // edge (weak) or vertex (strong)
	Subject  graph.Vertex // the requested vertex
	Slot     int          // edge slot for weak requests, -1 for strong
	Revealed graph.Vertex // far endpoint (weak); NoVertex for strong
	Found    bool         // whether this request revealed the target
}

// EnableTrace switches on request recording. Call before searching;
// tracing costs one append per paid request.
func (o *Oracle) EnableTrace() { o.tracing = true }

// Trace returns the recorded request sequence (nil unless EnableTrace
// was called). The slice is owned by the oracle; treat it as read-only.
func (o *Oracle) Trace() []TraceEvent { return o.trace }

func (o *Oracle) record(ev TraceEvent) {
	if !o.tracing {
		return
	}
	ev.Seq = o.requests
	ev.Found = o.found
	o.trace = append(o.trace, ev)
}

// WriteTrace renders a recorded trace, one request per line, in the
// order the requests were paid for.
func WriteTrace(w io.Writer, events []TraceEvent) error {
	for _, ev := range events {
		var line string
		switch ev.Kind {
		case TraceEdgeRequest:
			line = fmt.Sprintf("#%d edge (%d, slot %d) -> %d", ev.Seq, ev.Subject, ev.Slot, ev.Revealed)
		case TraceVertexRequest:
			line = fmt.Sprintf("#%d vertex %d", ev.Seq, ev.Subject)
		default:
			line = fmt.Sprintf("#%d unknown", ev.Seq)
		}
		if ev.Found {
			line += "  [target revealed]"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return fmt.Errorf("search: writing trace: %w", err)
		}
	}
	return nil
}
