package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the DESIGN.md §9 boundary: code on the
// deterministic side (everything not annotated //sf:wallclock) may
// not read the wall clock, the process environment, or the global
// math/rand stream, and may not let map iteration order leak into
// values that feed return statements, output writers, or the sweep
// codec. The sanctioned map pattern is order-insensitive accumulation
// or sorted-key extraction: append the keys to a slice, sort, then
// iterate the slice.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, global math/rand, env reads, and order-leaking " +
		"map iteration outside //sf:wallclock code",
	Run: runDeterminism,
}

// forbiddenCalls maps package path -> function name -> diagnostic
// fragment. Only package-level functions are matched; methods (e.g.
// (*rand.Rand).Intn on a seeded generator) stay legal.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read time.Now",
		"Since": "wall-clock read time.Since",
		"Until": "wall-clock read time.Until",
	},
	"os": {
		"Getenv":    "environment read os.Getenv",
		"LookupEnv": "environment read os.LookupEnv",
		"Environ":   "environment read os.Environ",
	},
}

// randConstructors are the math/rand package-level functions that
// build seeded, locally-owned generators — the sanctioned entry
// points. Every other package-level function draws from the global
// source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

func runDeterminism(pass *Pass) error {
	if pass.Notes.PkgWallclock {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if pass.Notes.WallclockFuncs[fd] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkForbiddenCall(pass, n)
				case *ast.RangeStmt:
					checkMapRange(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// checkForbiddenCall flags calls to wall-clock, environment, and
// global math/rand functions.
func checkForbiddenCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods are fine; the rules target package-level funcs
	}
	path, name := fn.Pkg().Path(), fn.Name()
	if msg, ok := forbiddenCalls[path][name]; ok {
		pass.Reportf(call.Pos(), "%s on the deterministic side of the boundary (annotate the enclosing function or package //sf:wallclock if this is progress/ops code)", msg)
		return
	}
	if (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name] {
		pass.Reportf(call.Pos(), "global math/rand call rand.%s draws from the process-wide stream; use a seeded generator (internal/rng or rand.New) threaded through the trial", name)
	}
}

// calleeFunc resolves a call's callee to a types.Func, if it is a
// statically known function or method.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Info.Uses[id].(*types.Func)
	return fn
}

// checkMapRange classifies the body of a range-over-map loop. The
// loop is sanctioned when every statement is order-insensitive:
// key/value extraction into a slice (to be sorted), commutative
// accumulation (x++, x += v), map writes, deletes, and guarded
// updates (if v > best { best = v }). Anything that can observe the
// iteration order — calls, sends, returns mentioning the loop
// variables, unguarded overwrites — is reported: those are exactly
// the paths that leak map order into returns, writers, or the codec.
func checkMapRange(pass *Pass, rs *ast.RangeStmt) {
	tv, ok := pass.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	c := &mapRangeChecker{pass: pass, body: rs.Body}
	c.loopVar(rs.Key)
	c.loopVar(rs.Value)
	c.stmts(rs.Body.List, false)
	if c.bad != nil {
		pass.Reportf(c.bad.Pos(), "map iteration order can reach %s; extract and sort the keys first (or make the loop body order-insensitive)", c.detail)
	}
}

type mapRangeChecker struct {
	pass     *Pass
	body     *ast.BlockStmt
	loopVars map[types.Object]bool
	bad      ast.Node
	detail   string
}

func (c *mapRangeChecker) loopVar(e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if c.loopVars == nil {
		c.loopVars = map[types.Object]bool{}
	}
	if obj := c.pass.Info.Defs[id]; obj != nil {
		c.loopVars[obj] = true
	}
	if obj := c.pass.Info.Uses[id]; obj != nil {
		c.loopVars[obj] = true
	}
}

func (c *mapRangeChecker) flag(n ast.Node, detail string) {
	if c.bad == nil {
		c.bad = n
		c.detail = detail
	}
}

// stmts classifies a statement list; guarded is true inside
// conditional constructs, where single overwrites (min/max tracking)
// are order-insensitive by convention.
func (c *mapRangeChecker) stmts(list []ast.Stmt, guarded bool) {
	for _, s := range list {
		c.stmt(s, guarded)
	}
}

func (c *mapRangeChecker) stmt(s ast.Stmt, guarded bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.assign(s, guarded)
	case *ast.IncDecStmt:
		// Commutative accumulation.
	case *ast.DeclStmt:
		// Loop-local declaration.
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		if !ok {
			return
		}
		if name, builtin := builtinName(c.pass, call); builtin && (name == "delete" || name == "copy" || name == "clear") {
			return
		}
		c.flag(s, "a function call (calls can write output or observe order)")
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, true)
		}
		c.stmts(s.Body.List, true)
		if s.Else != nil {
			c.stmt(s.Else, true)
		}
	case *ast.BlockStmt:
		c.stmts(s.List, guarded)
	case *ast.ForStmt:
		c.stmts(s.Body.List, guarded)
	case *ast.RangeStmt:
		// A nested range over a map gets its own diagnostic; its body
		// still must not leak the outer loop's order.
		c.stmts(s.Body.List, guarded)
	case *ast.SwitchStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cc.Body, true)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.stmts(cc.Body, true)
			}
		}
	case *ast.BranchStmt:
		// break/continue/goto choose *whether* to keep iterating, not
		// what order delivers; fine.
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if c.mentionsLoopVar(r) {
				c.flag(s, "a return value built from the loop variables (which iteration returns depends on map order)")
				return
			}
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, guarded)
	default:
		c.flag(s, "a statement that can observe iteration order")
	}
}

// assign classifies one assignment inside the loop.
func (c *mapRangeChecker) assign(s *ast.AssignStmt, guarded bool) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
	default:
		return // compound ops (+=, |=, …) accumulate commutatively
	}
	// s = append(s, …) is the sanctioned extraction pattern.
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
			if name, builtin := builtinName(c.pass, call); builtin && name == "append" && len(call.Args) > 0 && sameExpr(s.Lhs[0], call.Args[0]) {
				return
			}
		}
	}
	for _, lhs := range s.Lhs {
		switch lhs := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			// m2[k] = v: map stores are order-insensitive (set
			// semantics); slice stores at a loop-dependent index are
			// too (each index written once).
		case *ast.Ident:
			if lhs.Name == "_" {
				continue
			}
			if s.Tok == token.DEFINE || c.isLoopLocal(lhs) {
				continue // loop-local temp, dies with the iteration
			}
			if guarded {
				continue // conditional update: min/max tracking
			}
			// Unconditional overwrite of an outer variable: the last
			// iteration wins, and which one is last is map order.
			rhsDependsOnLoop := false
			for _, r := range s.Rhs {
				if c.mentionsLoopVar(r) {
					rhsDependsOnLoop = true
				}
			}
			if rhsDependsOnLoop {
				c.flag(s, "an unguarded overwrite of an outer variable with a loop-dependent value (last writer wins by map order)")
				return
			}
		default:
			c.flag(s, "an assignment through a non-local target")
			return
		}
	}
}

// isLoopLocal reports whether the identifier's object is declared
// inside the loop body.
func (c *mapRangeChecker) isLoopLocal(id *ast.Ident) bool {
	obj := c.pass.Info.Uses[id]
	if obj == nil {
		obj = c.pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= c.body.Pos() && obj.Pos() <= c.body.End()
}

// mentionsLoopVar reports whether the expression reads a loop
// variable (directly or through a loop-local temp — temps count as
// loop-dependent because they are assigned per iteration).
func (c *mapRangeChecker) mentionsLoopVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := c.pass.Info.Uses[id]; obj != nil {
			if c.loopVars[obj] || (obj.Pos() >= c.body.Pos() && obj.Pos() <= c.body.End()) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// builtinName reports the name of a builtin call (append, delete, …).
func builtinName(pass *Pass, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}

// sameExpr reports whether two expressions are syntactically
// identical simple references (x, x.y) — enough to recognise
// s = append(s, …).
func sameExpr(a, b ast.Expr) bool {
	switch a := ast.Unparen(a).(type) {
	case *ast.Ident:
		bID, ok := ast.Unparen(b).(*ast.Ident)
		return ok && a.Name == bID.Name
	case *ast.SelectorExpr:
		bSel, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && a.Sel.Name == bSel.Sel.Name && sameExpr(a.X, bSel.X)
	case *ast.IndexExpr:
		bIdx, ok := ast.Unparen(b).(*ast.IndexExpr)
		return ok && sameExpr(a.X, bIdx.X) && sameExpr(a.Index, bIdx.Index)
	}
	return false
}
