package stats

import (
	"math"
	"testing"

	"scalefree/internal/rng"
)

func TestFitLineExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{3, 5, 7, 9} // y = 1 + 2x
	fit := FitLine(x, y)
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R² = %v, want 1", fit.R2)
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := rng.New(3)
	var x, y []float64
	for i := 0; i < 500; i++ {
		xi := float64(i) / 10
		x = append(x, xi)
		y = append(y, 4-3*xi+(r.Float64()-0.5))
	}
	fit := FitLine(x, y)
	if math.Abs(fit.Slope+3) > 0.05 {
		t.Errorf("slope = %v, want ~-3", fit.Slope)
	}
	if math.Abs(fit.Intercept-4) > 0.2 {
		t.Errorf("intercept = %v, want ~4", fit.Intercept)
	}
	if fit.SlopeSE <= 0 || fit.SlopeSE > 0.05 {
		t.Errorf("slope SE = %v", fit.SlopeSE)
	}
}

func TestFitLineConstantY(t *testing.T) {
	fit := FitLine([]float64{1, 2, 3}, []float64{5, 5, 5})
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("constant fit = %+v", fit)
	}
}

func TestFitLinePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { FitLine([]float64{1}, []float64{1, 2}) },
		func() { FitLine([]float64{1}, []float64{1}) },
		func() { FitLine([]float64{2, 2}, []float64{1, 5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestFitScalingRecoversExponent(t *testing.T) {
	// y = 3·n^0.5 exactly.
	ns := []float64{100, 200, 400, 800, 1600}
	ys := make([]float64, len(ns))
	for i, n := range ns {
		ys[i] = 3 * math.Sqrt(n)
	}
	fit, err := FitScaling(ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Exponent, 0.5, 1e-9) {
		t.Errorf("exponent = %v, want 0.5", fit.Exponent)
	}
	if !almostEqual(fit.Coeff, 3, 1e-9) {
		t.Errorf("coeff = %v, want 3", fit.Coeff)
	}
	if !almostEqual(fit.R2, 1, 1e-9) {
		t.Errorf("R² = %v", fit.R2)
	}
}

func TestFitScalingSkipsNonPositive(t *testing.T) {
	ns := []float64{0, -1, 10, 100, 1000}
	ys := []float64{5, 5, 1, 10, 100}
	fit, err := FitScaling(ns, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Exponent, 1, 1e-9) {
		t.Errorf("exponent = %v, want 1", fit.Exponent)
	}
}

func TestFitScalingErrors(t *testing.T) {
	if _, err := FitScaling([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitScaling([]float64{1, -2}, []float64{1, 1}); err == nil {
		t.Error("single usable pair accepted")
	}
}
