// Command sweeptrace analyzes a sweep trace file written by
// `experiments -trace` (Chrome trace-event JSON, the format Perfetto
// and chrome://tracing open directly) and answers the scheduling
// questions a timeline view makes you eyeball: where did the wall-clock
// time actually go, which lanes sat idle, which trials dominated, and
// how often did leases get stolen or retried.
//
// Usage:
//
//	sweeptrace [-top n] [-json] trace.json
//
// The report sections:
//
//   - Critical path: a backward last-finisher walk over the leaf work
//     spans inside the root sweep span. Starting from the sweep's end,
//     each step jumps to the last-finishing span at or before the
//     cursor; uncovered stretches become explicit "(idle)" segments, so
//     the segment durations sum exactly to the sweep's wall-clock time.
//     The top contributors aggregate path time by span name.
//   - Lane utilization: per (process, thread) lane, the fraction of the
//     sweep window covered by the union of that lane's spans, plus a
//     histogram of the idle gaps between them.
//   - Slowest trials: the top -top trial spans by duration, each broken
//     down into its generate/freeze/search phase children.
//   - Steals and retries: flow-event lineage (lease grants attached by
//     workers, chunk retries re-granted or abandoned) and the instant
//     markers (lease_steal, chunk_retry, reconnect, ...).
//
// Structural validation runs before any report: unbalanced begin/end
// nesting, a flow finish without a matching start, an empty trace, a
// critical path with no work segments, or a lane busier than its own
// window all exit nonzero — a trace that fails here indicates a
// recording bug, and CI runs this tool against a chaos sweep's trace to
// pin exactly that.
//
// -json emits the full analysis as one JSON object instead of text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sweeptrace:", err)
		os.Exit(1)
	}
}

// options is the parsed command line.
type options struct {
	topK      int
	jsonOut   bool
	tracePath string
}

func parseOptions(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("sweeptrace", flag.ContinueOnError)
	fs.IntVar(&o.topK, "top", 10, "how many slowest trials and critical-path contributors to list")
	fs.BoolVar(&o.jsonOut, "json", false, "emit the analysis as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one trace file argument, got %d", fs.NArg())
	}
	if o.topK < 1 {
		return nil, fmt.Errorf("-top must be >= 1")
	}
	o.tracePath = fs.Arg(0)
	return o, nil
}

func run(args []string) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(o.tracePath)
	if err != nil {
		return err
	}
	a, err := analyze(data)
	if err != nil {
		return err
	}
	r, err := a.report(o.topK)
	if err != nil {
		return err
	}
	if o.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	}
	return renderText(os.Stdout, a, r)
}

// event is one Chrome trace-event, as `experiments -trace` writes them.
type event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   int64             `json:"ts"` // microseconds from trace start
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	ID   string            `json:"id"`
	Args map[string]string `json:"args"`
}

// span is one reconstructed begin/end pair.
type span struct {
	Name     string
	Cat      string
	PID, TID int
	Start    int64 // µs
	End      int64 // µs
	Children []*span
}

func (s *span) dur() int64 { return s.End - s.Start }

// laneKey identifies one (process, thread) timeline lane.
type laneKey struct{ PID, TID int }

// analysis is the reconstructed trace: span forests per lane, flow
// lineage, instant markers, and the process/thread naming metadata.
type analysis struct {
	lanes     map[laneKey][]*span // top-level spans, in emission order
	procNames map[int]string
	laneNames map[laneKey]string
	flowStart map[string][]event // 's' events by flow name
	flowEnd   map[string][]event // 'f' events by flow name
	instants  map[string]int
	spanCount int
	root      *span
}

// analyze parses and structurally validates a trace file.
func analyze(data []byte) (*analysis, error) {
	var tf struct {
		TraceEvents []event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		return nil, fmt.Errorf("parsing trace: %w", err)
	}
	a := &analysis{
		lanes:     map[laneKey][]*span{},
		procNames: map[int]string{},
		laneNames: map[laneKey]string{},
		flowStart: map[string][]event{},
		flowEnd:   map[string][]event{},
		instants:  map[string]int{},
	}
	stacks := map[laneKey][]*span{}
	startIDs := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		k := laneKey{ev.PID, ev.TID}
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				a.procNames[ev.PID] = ev.Args["name"]
			case "thread_name":
				a.laneNames[k] = ev.Args["name"]
			}
		case "B":
			stacks[k] = append(stacks[k], &span{Name: ev.Name, Cat: ev.Cat, PID: ev.PID, TID: ev.TID, Start: ev.TS})
		case "E":
			st := stacks[k]
			if len(st) == 0 {
				return nil, fmt.Errorf("unbalanced trace: end event at %dµs on pid %d tid %d with no open span", ev.TS, ev.PID, ev.TID)
			}
			s := st[len(st)-1]
			stacks[k] = st[:len(st)-1]
			s.End = ev.TS
			a.spanCount++
			if len(stacks[k]) > 0 {
				parent := stacks[k][len(stacks[k])-1]
				parent.Children = append(parent.Children, s)
			} else {
				a.lanes[k] = append(a.lanes[k], s)
			}
		case "s":
			a.flowStart[ev.Name] = append(a.flowStart[ev.Name], ev)
			startIDs[ev.ID] = true
		case "f":
			a.flowEnd[ev.Name] = append(a.flowEnd[ev.Name], ev)
		case "i":
			a.instants[ev.Name]++
		}
	}
	for _, k := range sortedKeys(stacks) {
		if st := stacks[k]; len(st) > 0 {
			return nil, fmt.Errorf("unbalanced trace: %d span(s) never ended on pid %d tid %d (first: %q)", len(st), k.PID, k.TID, st[0].Name)
		}
	}
	if a.spanCount == 0 {
		return nil, fmt.Errorf("empty trace: no complete spans")
	}
	// Flow invariant: every finish must bind to an emitted start. The
	// reverse (a start the finish never reached) is legal — a worker's
	// final batch can be lost to a fault — but a finish id nobody
	// started cannot happen in a correct recording.
	flowNames := make([]string, 0, len(a.flowEnd))
	for name := range a.flowEnd {
		flowNames = append(flowNames, name)
	}
	sort.Strings(flowNames)
	for _, name := range flowNames {
		for _, ev := range a.flowEnd[name] {
			if !startIDs[ev.ID] {
				return nil, fmt.Errorf("flow %q finish id %s has no matching start", name, ev.ID)
			}
		}
	}
	a.root = a.findRoot()
	return a, nil
}

// findRoot locates the root sweep span (the control lane's outermost
// "sweep" span); traces without one — e.g. hand-assembled fixtures —
// get a synthetic root covering every span.
func (a *analysis) findRoot() *span {
	for _, s := range a.lanes[laneKey{0, 0}] {
		if s.Cat == "sweep" && s.Name == "sweep" {
			return s
		}
	}
	root := &span{Name: "sweep", Cat: "sweep"}
	first := true
	for _, k := range sortedKeys(a.lanes) {
		for _, s := range a.lanes[k] {
			if first || s.Start < root.Start {
				root.Start = s.Start
			}
			if first || s.End > root.End {
				root.End = s.End
			}
			first = false
		}
	}
	return root
}

// sortedKeys returns a lane-keyed map's keys in (pid, tid) order, so
// every walk over per-lane state is independent of map iteration order.
func sortedKeys[V any](m map[laneKey]V) []laneKey {
	keys := make([]laneKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].PID != keys[j].PID {
			return keys[i].PID < keys[j].PID
		}
		return keys[i].TID < keys[j].TID
	})
	return keys
}

// leaves collects every childless span, the units of actual work the
// critical path walks over.
func (a *analysis) leaves() []*span {
	var out []*span
	var walk func(*span)
	walk = func(s *span) {
		if len(s.Children) == 0 {
			out = append(out, s)
			return
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, k := range sortedKeys(a.lanes) {
		for _, s := range a.lanes[k] {
			walk(s)
		}
	}
	return out
}

// segment is one stretch of the critical path.
type segment struct {
	Name  string `json:"name"`
	Cat   string `json:"cat,omitempty"`
	PID   int    `json:"pid"`
	TID   int    `json:"tid"`
	Start int64  `json:"start_us"`
	End   int64  `json:"end_us"`
	Idle  bool   `json:"idle,omitempty"`
}

// criticalPath runs the backward last-finisher walk: from the root's
// end, repeatedly jump to the leaf span with the latest end at or
// before the cursor (ties broken by latest start), emitting "(idle)"
// segments for uncovered stretches. The segments partition the root
// window exactly, so their durations sum to the sweep's wall clock.
func (a *analysis) criticalPath() []segment {
	root := a.root
	if root.dur() <= 0 {
		return nil
	}
	cands := a.leaves()
	// Sort by (End, Start) so a binary search finds the last finisher
	// with the latest start among equal ends.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].End != cands[j].End {
			return cands[i].End < cands[j].End
		}
		return cands[i].Start < cands[j].Start
	})
	var rev []segment
	cur := root.End
	for cur > root.Start {
		// Last candidate with End <= cur that makes progress (Start < cur).
		i := sort.Search(len(cands), func(i int) bool { return cands[i].End > cur })
		var pick *span
		for i--; i >= 0; i-- {
			if cands[i].Start < cur && cands[i].End > root.Start {
				pick = cands[i]
				break
			}
		}
		if pick == nil {
			rev = append(rev, segment{Name: "(idle)", Start: root.Start, End: cur, Idle: true})
			break
		}
		if pick.End < cur {
			rev = append(rev, segment{Name: "(idle)", Start: pick.End, End: cur, Idle: true})
		}
		start := pick.Start
		if start < root.Start {
			start = root.Start
		}
		end := pick.End
		if end > cur {
			end = cur
		}
		rev = append(rev, segment{Name: pick.Name, Cat: pick.Cat, PID: pick.PID, TID: pick.TID, Start: start, End: end})
		cur = start
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// gapBuckets are the idle-gap histogram bounds, in µs.
var gapBuckets = []struct {
	label string
	upper int64
}{
	{"<1ms", 1_000},
	{"1-10ms", 10_000},
	{"10-100ms", 100_000},
	{">100ms", 1 << 62},
}

// laneStats is one lane's utilization summary.
type laneStats struct {
	Process     string         `json:"process"`
	Lane        string         `json:"lane"`
	PID         int            `json:"pid"`
	TID         int            `json:"tid"`
	BusyUS      int64          `json:"busy_us"`
	Utilization float64        `json:"utilization_pct"`
	Gaps        map[string]int `json:"idle_gaps"`
}

// utilization computes, per lane, the busy fraction of the sweep
// window (union of the lane's top-level spans, clipped to the window)
// and the idle-gap histogram. A lane busier than the window itself is a
// recording bug and returns an error.
func (a *analysis) utilization() ([]laneStats, error) {
	root := a.root
	window := root.dur()
	var out []laneStats
	for _, k := range sortedKeys(a.lanes) {
		type iv struct{ lo, hi int64 }
		var ivs []iv
		for _, s := range a.lanes[k] {
			lo, hi := s.Start, s.End
			if lo < root.Start {
				lo = root.Start
			}
			if hi > root.End {
				hi = root.End
			}
			if hi > lo {
				ivs = append(ivs, iv{lo, hi})
			}
		}
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
		var busy int64
		gaps := map[string]int{}
		bucket := func(gap int64) {
			for _, b := range gapBuckets {
				if gap <= b.upper {
					gaps[b.label]++
					return
				}
			}
		}
		var curLo, curHi int64 = -1, -1
		for _, v := range ivs {
			if curHi < 0 {
				curLo, curHi = v.lo, v.hi
				continue
			}
			if v.lo > curHi {
				bucket(v.lo - curHi)
				busy += curHi - curLo
				curLo, curHi = v.lo, v.hi
				continue
			}
			if v.hi > curHi {
				curHi = v.hi
			}
		}
		if curHi >= 0 {
			busy += curHi - curLo
		}
		ls := laneStats{
			Process: a.procNames[k.PID],
			Lane:    a.laneNames[k],
			PID:     k.PID, TID: k.TID,
			BusyUS: busy,
			Gaps:   gaps,
		}
		if window > 0 {
			ls.Utilization = 100 * float64(busy) / float64(window)
		}
		if busy > window {
			return nil, fmt.Errorf("lane pid %d tid %d busy %dµs exceeds the %dµs sweep window — overlapping or unclipped spans", k.PID, k.TID, busy, window)
		}
		out = append(out, ls)
	}
	return out, nil
}

// trialStats is one slow trial with its phase breakdown.
type trialStats struct {
	Name    string           `json:"name"`
	Process string           `json:"process"`
	Lane    string           `json:"lane"`
	DurUS   int64            `json:"dur_us"`
	Phases  map[string]int64 `json:"phases_us,omitempty"`
}

// slowestTrials returns the top-k trial spans by duration.
func (a *analysis) slowestTrials(k int) []trialStats {
	var trials []*span
	var walk func(*span)
	walk = func(s *span) {
		if s.Cat == "trial" {
			trials = append(trials, s)
		}
		for _, c := range s.Children {
			walk(c)
		}
	}
	for _, key := range sortedKeys(a.lanes) {
		for _, s := range a.lanes[key] {
			walk(s)
		}
	}
	sort.Slice(trials, func(i, j int) bool {
		if trials[i].dur() != trials[j].dur() {
			return trials[i].dur() > trials[j].dur()
		}
		return trials[i].Name < trials[j].Name
	})
	if len(trials) > k {
		trials = trials[:k]
	}
	out := make([]trialStats, 0, len(trials))
	for _, t := range trials {
		ts := trialStats{
			Name:    t.Name,
			Process: a.procNames[t.PID],
			Lane:    a.laneNames[laneKey{t.PID, t.TID}],
			DurUS:   t.dur(),
		}
		if len(t.Children) > 0 {
			ts.Phases = map[string]int64{}
			var covered int64
			for _, c := range t.Children {
				ts.Phases[c.Name] += c.dur()
				covered += c.dur()
			}
			if rest := t.dur() - covered; rest > 0 {
				ts.Phases["other"] = rest
			}
		}
		out = append(out, ts)
	}
	return out
}

// flowSummary is one flow family's lineage counts.
type flowSummary struct {
	Starts  int `json:"starts"`
	Ends    int `json:"ends"`
	Matched int `json:"matched"`
}

// flows summarizes each flow family: how many starts, how many ends,
// and how many distinct ids appear on both sides.
func (a *analysis) flows() map[string]flowSummary {
	names := map[string]bool{}
	for n := range a.flowStart {
		names[n] = true
	}
	for n := range a.flowEnd {
		names[n] = true
	}
	out := map[string]flowSummary{}
	for n := range names {
		ids := map[string]bool{}
		for _, ev := range a.flowStart[n] {
			ids[ev.ID] = true
		}
		matched := map[string]bool{}
		ends := 0
		for _, ev := range a.flowEnd[n] {
			ends++
			if ids[ev.ID] {
				matched[ev.ID] = true
			}
		}
		out[n] = flowSummary{Starts: len(a.flowStart[n]), Ends: ends, Matched: len(matched)}
	}
	return out
}

// contributor aggregates critical-path time by span name.
type contributor struct {
	Name  string  `json:"name"`
	US    int64   `json:"us"`
	Share float64 `json:"share_pct"`
}

// reportData is the full -json payload.
type reportData struct {
	WallClockUS  int64                  `json:"wall_clock_us"`
	Processes    map[string]string      `json:"processes"`
	SpanCount    int                    `json:"span_count"`
	CriticalPath []segment              `json:"critical_path"`
	PathWorkUS   int64                  `json:"critical_path_work_us"`
	PathIdleUS   int64                  `json:"critical_path_idle_us"`
	Contributors []contributor          `json:"top_contributors"`
	Lanes        []laneStats            `json:"lanes"`
	Slowest      []trialStats           `json:"slowest_trials"`
	Flows        map[string]flowSummary `json:"flows"`
	Instants     map[string]int         `json:"instants"`
}

// report assembles the full analysis, failing on the structural gates:
// a lane busier than the sweep window, or a critical path with no work.
func (a *analysis) report(topK int) (*reportData, error) {
	path := a.criticalPath()
	var work, idle int64
	byName := map[string]int64{}
	for _, s := range path {
		if s.Idle {
			idle += s.End - s.Start
			continue
		}
		work += s.End - s.Start
		byName[s.Name] += s.End - s.Start
	}
	contribNames := make([]string, 0, len(byName))
	for n := range byName {
		contribNames = append(contribNames, n)
	}
	sort.Strings(contribNames)
	contribs := make([]contributor, 0, len(byName))
	for _, n := range contribNames {
		c := contributor{Name: n, US: byName[n]}
		if total := work + idle; total > 0 {
			c.Share = 100 * float64(byName[n]) / float64(total)
		}
		contribs = append(contribs, c)
	}
	sort.Slice(contribs, func(i, j int) bool {
		if contribs[i].US != contribs[j].US {
			return contribs[i].US > contribs[j].US
		}
		return contribs[i].Name < contribs[j].Name
	})
	if len(contribs) > topK {
		contribs = contribs[:topK]
	}
	lanes, err := a.utilization()
	if err != nil {
		return nil, err
	}
	if work == 0 {
		return nil, fmt.Errorf("critical path is empty: no timed work spans inside the %s sweep window", us(a.root.dur()))
	}
	procNames := map[string]string{}
	for pid, name := range a.procNames {
		procNames[fmt.Sprintf("%d", pid)] = name
	}
	return &reportData{
		WallClockUS:  a.root.dur(),
		Processes:    procNames,
		SpanCount:    a.spanCount,
		CriticalPath: path,
		PathWorkUS:   work,
		PathIdleUS:   idle,
		Contributors: contribs,
		Lanes:        lanes,
		Slowest:      a.slowestTrials(topK),
		Flows:        a.flows(),
		Instants:     a.instants,
	}, nil
}

func us(v int64) string {
	return (time.Duration(v) * time.Microsecond).Round(10 * time.Microsecond).String()
}

// renderText writes the human report.
func renderText(w io.Writer, a *analysis, r *reportData) error {
	var b strings.Builder
	pids := make([]int, 0, len(a.procNames))
	for pid := range a.procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	names := make([]string, 0, len(pids))
	for _, pid := range pids {
		names = append(names, a.procNames[pid])
	}
	fmt.Fprintf(&b, "sweep: %s wall clock, %d spans across %d process(es): %s\n\n",
		us(r.WallClockUS), r.SpanCount, len(pids), strings.Join(names, ", "))

	fmt.Fprintf(&b, "critical path: %d segments, %s work (%.1f%%), %s idle (%.1f%%)\n",
		len(r.CriticalPath), us(r.PathWorkUS), 100*float64(r.PathWorkUS)/float64(r.WallClockUS),
		us(r.PathIdleUS), 100*float64(r.PathIdleUS)/float64(r.WallClockUS))
	for _, c := range r.Contributors {
		fmt.Fprintf(&b, "  %8s  %5.1f%%  %s\n", us(c.US), c.Share, c.Name)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "lane utilization (of the %s sweep window):\n", us(r.WallClockUS))
	for _, l := range r.Lanes {
		var gaps []string
		for _, bk := range gapBuckets {
			if n := l.Gaps[bk.label]; n > 0 {
				gaps = append(gaps, fmt.Sprintf("%s: %d", bk.label, n))
			}
		}
		gapStr := "no idle gaps"
		if len(gaps) > 0 {
			gapStr = "gaps " + strings.Join(gaps, ", ")
		}
		fmt.Fprintf(&b, "  %-12s %-10s %5.1f%% busy (%s), %s\n", l.Process, l.Lane, l.Utilization, us(l.BusyUS), gapStr)
	}
	b.WriteByte('\n')

	if len(r.Slowest) > 0 {
		fmt.Fprintf(&b, "slowest trials:\n")
		for i, t := range r.Slowest {
			fmt.Fprintf(&b, "  %2d. %8s  %s (%s/%s)", i+1, us(t.DurUS), t.Name, t.Process, t.Lane)
			if len(t.Phases) > 0 {
				phases := make([]string, 0, len(t.Phases))
				for _, ph := range []string{"generate", "freeze", "search", "other"} {
					if v, ok := t.Phases[ph]; ok {
						phases = append(phases, fmt.Sprintf("%s %s", ph, us(v)))
					}
				}
				// Any phases outside the canonical set, alphabetically.
				var extra []string
				for ph, v := range t.Phases {
					switch ph {
					case "generate", "freeze", "search", "other":
					default:
						extra = append(extra, fmt.Sprintf("%s %s", ph, us(v)))
					}
				}
				sort.Strings(extra)
				phases = append(phases, extra...)
				fmt.Fprintf(&b, " — %s", strings.Join(phases, ", "))
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}

	if len(r.Flows) > 0 || len(r.Instants) > 0 {
		fmt.Fprintf(&b, "steals and retries:\n")
		flowNames := make([]string, 0, len(r.Flows))
		for n := range r.Flows {
			flowNames = append(flowNames, n)
		}
		sort.Strings(flowNames)
		for _, n := range flowNames {
			f := r.Flows[n]
			fmt.Fprintf(&b, "  flow %-16s %d started, %d finished, %d matched\n", n+":", f.Starts, f.Ends, f.Matched)
		}
		instNames := make([]string, 0, len(r.Instants))
		for n := range r.Instants {
			instNames = append(instNames, n)
		}
		sort.Strings(instNames)
		for _, n := range instNames {
			fmt.Fprintf(&b, "  %-21s %d\n", n+":", r.Instants[n])
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
