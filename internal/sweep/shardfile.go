package sweep

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"
)

// shardMagic heads every shard-result file.
const shardMagic = "SFSHARD1"

// ShardHeader identifies which slice of which plan a shard file holds.
// Merging validates every field, so files from different plans,
// configs, codec versions, or partitionings can never be silently
// combined.
type ShardHeader struct {
	ExpID       string
	Fingerprint string
	ShardIndex  int // 0-based
	ShardCount  int
	TotalTrials int // trials in the whole plan, not this shard
}

func (h ShardHeader) validate() error {
	if err := (ShardSpec{Index: h.ShardIndex, Count: h.ShardCount}).validate(); err != nil {
		return err
	}
	if h.ExpID == "" || h.Fingerprint == "" || h.TotalTrials < 0 {
		return fmt.Errorf("sweep: invalid shard header %+v", h)
	}
	return nil
}

// WriteShardFile persists one shard's positional results atomically:
// the header, then (trial index, encoded result) entries in ascending
// index order. results maps plan trial index -> result value; every
// value's dynamic type must be registered with the codec.
func WriteShardFile(path string, h ShardHeader, results map[int]any) error {
	if err := h.validate(); err != nil {
		return err
	}
	idxs := make([]int, 0, len(results))
	for i := range results {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	// Validate after sorting so the reported index is the smallest
	// offender, not whichever one map iteration yields first.
	for _, i := range idxs {
		if i < 0 || i >= h.TotalTrials {
			return fmt.Errorf("sweep: shard entry index %d outside plan of %d trials", i, h.TotalTrials)
		}
	}

	buf := []byte(shardMagic)
	buf = binary.AppendUvarint(buf, CodecVersion)
	buf = appendString(buf, h.ExpID)
	buf = appendString(buf, h.Fingerprint)
	buf = binary.AppendUvarint(buf, uint64(h.ShardIndex))
	buf = binary.AppendUvarint(buf, uint64(h.ShardCount))
	buf = binary.AppendUvarint(buf, uint64(h.TotalTrials))
	buf = binary.AppendUvarint(buf, uint64(len(idxs)))
	for _, i := range idxs {
		payload, err := EncodeResult(results[i])
		if err != nil {
			return fmt.Errorf("sweep: shard entry %d: %w", i, err)
		}
		buf = binary.AppendUvarint(buf, uint64(i))
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		buf = append(buf, payload...)
	}
	return atomicWriteFile(path, buf)
}

// ReadShardFile parses a shard file back into its header and positional
// results.
func ReadShardFile(path string) (ShardHeader, map[int]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return ShardHeader{}, nil, fmt.Errorf("sweep: reading shard file: %w", err)
	}
	if len(data) < len(shardMagic) || string(data[:len(shardMagic)]) != shardMagic {
		return ShardHeader{}, nil, fmt.Errorf("sweep: %s is not a shard file", path)
	}
	d := &decoder{buf: data, pos: len(shardMagic)}
	ver := d.uvarint()
	if d.err == nil && ver != CodecVersion {
		return ShardHeader{}, nil, fmt.Errorf("sweep: %s: codec version %d, want %d", path, ver, CodecVersion)
	}
	h := ShardHeader{
		ExpID:       d.string(),
		Fingerprint: d.string(),
		ShardIndex:  int(d.uvarint()),
		ShardCount:  int(d.uvarint()),
		TotalTrials: int(d.uvarint()),
	}
	n64 := d.uvarint()
	// Every entry costs at least 3 bytes (index, payload length, one
	// payload byte), so a corrupt count fails here instead of sizing a
	// wild map allocation.
	if d.err == nil && n64 > uint64(len(d.buf)-d.pos) {
		d.fail("entry count %d exceeds remaining %d bytes", n64, len(d.buf)-d.pos)
	}
	if d.err != nil {
		return ShardHeader{}, nil, fmt.Errorf("sweep: %s: %w", path, d.err)
	}
	if err := h.validate(); err != nil {
		return ShardHeader{}, nil, fmt.Errorf("sweep: %s: %w", path, err)
	}
	n := int(n64)
	results := make(map[int]any, n)
	for e := 0; e < n; e++ {
		idx := int(d.uvarint())
		plen := d.uvarint()
		if d.err == nil && plen > uint64(len(d.buf)-d.pos) {
			d.fail("entry payload length %d exceeds remaining %d bytes", plen, len(d.buf)-d.pos)
		}
		payload := d.bytes(int(plen))
		if d.err != nil {
			return ShardHeader{}, nil, fmt.Errorf("sweep: %s entry %d: %w", path, e, d.err)
		}
		if idx < 0 || idx >= h.TotalTrials {
			return ShardHeader{}, nil, fmt.Errorf("sweep: %s: entry index %d outside plan of %d trials", path, idx, h.TotalTrials)
		}
		if _, dup := results[idx]; dup {
			return ShardHeader{}, nil, fmt.Errorf("sweep: %s: duplicate entry for trial %d", path, idx)
		}
		v, err := DecodeResult(payload)
		if err != nil {
			return ShardHeader{}, nil, fmt.Errorf("sweep: %s entry for trial %d: %w", path, idx, err)
		}
		results[idx] = v
	}
	if d.pos != len(d.buf) {
		return ShardHeader{}, nil, fmt.Errorf("sweep: %s: %d trailing bytes", path, len(d.buf)-d.pos)
	}
	return h, results, nil
}

// Merge reassembles the full positional result slice of one plan from
// a set of shard files. It requires the files to agree on (experiment,
// fingerprint, shard count, total trials), to be pairwise disjoint,
// and to jointly cover every trial — exactly the guarantee needed for
// the caller to run Reduce once and obtain output bit-identical to a
// single-process run.
func Merge(paths []string) (ShardHeader, []any, error) {
	if len(paths) == 0 {
		return ShardHeader{}, nil, fmt.Errorf("sweep: merge of zero shard files")
	}
	var ref ShardHeader
	var results []any
	filled := 0
	seen := map[int]string{} // shard index -> path
	for i, path := range paths {
		h, entries, err := ReadShardFile(path)
		if err != nil {
			return ShardHeader{}, nil, err
		}
		if i == 0 {
			ref = h
			results = make([]any, h.TotalTrials)
		} else if h.ExpID != ref.ExpID || h.Fingerprint != ref.Fingerprint ||
			h.ShardCount != ref.ShardCount || h.TotalTrials != ref.TotalTrials {
			return ShardHeader{}, nil, fmt.Errorf(
				"sweep: shard file %s (%s shard %d/%d, %d trials, fp %.12s) does not match %s (%s shard count %d, %d trials, fp %.12s)",
				path, h.ExpID, h.ShardIndex+1, h.ShardCount, h.TotalTrials, h.Fingerprint,
				paths[0], ref.ExpID, ref.ShardCount, ref.TotalTrials, ref.Fingerprint)
		}
		if prev, dup := seen[h.ShardIndex]; dup {
			return ShardHeader{}, nil, fmt.Errorf("sweep: shard %d/%d appears in both %s and %s",
				h.ShardIndex+1, h.ShardCount, prev, path)
		}
		seen[h.ShardIndex] = path
		merged := make([]int, 0, len(entries))
		for idx := range entries {
			merged = append(merged, idx)
		}
		sort.Ints(merged)
		for _, idx := range merged {
			if results[idx] != nil {
				return ShardHeader{}, nil, fmt.Errorf("sweep: trial %d present in more than one shard file", idx)
			}
			results[idx] = entries[idx]
			filled++
		}
	}
	if filled != ref.TotalTrials {
		missing := make([]int, 0, 8)
		for i, v := range results {
			if v == nil {
				missing = append(missing, i)
				if len(missing) == 8 {
					break
				}
			}
		}
		return ShardHeader{}, nil, fmt.Errorf(
			"sweep: merge covers %d of %d trials from %d shard files (first missing: %v) — run the remaining shards first",
			filled, ref.TotalTrials, len(paths), missing)
	}
	return ref, results, nil
}
