// Package sweep is the distribution and persistence layer over the
// trial engine: it turns a plan's flat trial list into work that can be
// split across processes or machines, persisted trial-by-trial, and
// reassembled into the exact positional result slice a single-process
// run would have produced.
//
// Four cooperating parts:
//
//   - A trial-result codec (codec.go): a versioned, deterministic
//     binary encoding for the `any`-typed values trial functions
//     return. Experiments register their concrete result types once
//     (RegisterResult) under stable wire names; encoding is then exact
//     — every float crosses the wire as its IEEE-754 bits, so decoded
//     results are bit-identical to in-memory ones and reductions over
//     them render byte-identical tables.
//
//   - A content-addressed result cache (cache.go): completed trial
//     results stored on disk under a key derived from (experiment ID,
//     plan fingerprint, trial key, trial seed, codec version). Trials
//     are pure functions of their seeds, so a cache hit is always
//     valid; interrupted sweeps resume trial-by-trial and unchanged
//     experiments re-reduce without re-executing anything.
//
//   - A shard dispatcher (shard.go, shardfile.go, exec.go): a
//     ShardSpec deterministically partitions a plan's trials into k
//     disjoint strided subsets, Execute runs one subset on the engine
//     (consulting the cache per trial), WriteShardFile persists the
//     positional results of a shard, and Merge reassembles the full
//     result slice from any complete set of shard files so the plan's
//     Reduce runs exactly once.
//
//   - A work-stealing coordinator (coordinator.go, worker.go, lease.go,
//     wire.go): instead of the static i-mod-k partition, Coordinate
//     serves a plan's trials to live RunWorker processes as small
//     leased chunks over a line-oriented TCP protocol. Leases carry
//     heartbeat deadlines; a dead worker's chunk is reassigned, a
//     dropped connection's chunks return immediately, and duplicate
//     completions are resolved by comparing encoded bytes — so uneven
//     trial mixes balance themselves and a machine loss costs at most
//     one undelivered chunk (zero, when workers share a cache).
//
// The invariant the whole package is built around: for a fixed
// (experiment, Config), any execution strategy — one process, k
// processes, k machines, interrupted and resumed, fully cached — must
// yield the same positional result slice, and therefore byte-identical
// rendered tables. The engine already guarantees this across worker
// counts; sweep extends the guarantee across process boundaries and
// time.
package sweep
