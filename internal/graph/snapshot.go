package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"unsafe"
)

// Binary CSR snapshot format (version 1).
//
// A snapshot freezes one Graph into a single self-describing file that
// OpenSnapshot can serve back as a read-only *Graph without parsing:
// the file holds the exact arrays of the in-memory CSR, so on a
// little-endian host the mmap'd bytes ARE the graph and opening a
// 10^8-edge snapshot costs a handful of page faults instead of a
// multi-gigabyte text parse.
//
// Wire layout, all fields little-endian (DESIGN.md §8):
//
//	offset  0: magic      [8]byte  "SFCSRB01"
//	offset  8: version    uint32   1
//	offset 12: halfSize   uint32   12 (bytes per half record)
//	offset 16: n          uint64   vertex count
//	offset 24: m          uint64   directed edge count
//	offset 32: headerSum  uint64   FNV-1a over bytes [0, 32)
//
// followed by six sections, each beginning at the next 8-byte-aligned
// offset (zero padding in between):
//
//	from   [m]int32        edge tails, in edge order
//	to     [m]int32        edge heads
//	off    [n+2]int32      CSR offsets: off[v]..off[v+1] indexes halves
//	indeg  [n+1]int32      indegrees (entry 0 is padding)
//	outdeg [n+1]int32      outdegrees
//	halves [2m]halfRecord  incidence lists in CSR order
//
// where one halfRecord is 12 bytes: edge int32, other int32, out
// uint8, then 3 zero bytes. That coincides with Go's in-memory layout
// of Half on every supported platform, which is what makes the
// zero-copy cast possible; writers nevertheless encode records field
// by field so the padding bytes are deterministically zero and the
// file never leaks heap contents.
//
// The file size is fully determined by (n, m); OpenSnapshot rejects
// any size mismatch, so truncated or padded files fail fast instead of
// serving garbage slices.
const (
	snapshotMagic      = "SFCSRB01"
	snapshotVersion    = 1
	snapshotHalfSize   = 12
	snapshotHeaderSize = 40
)

// snapshotMaxCount bounds n and 2m: every index in the format is an
// int32 and off must reach 2m, so counts beyond int32 range cannot be
// represented (that caps a snapshot at ~1.07e9 edges).
const snapshotMaxCount = 1<<31 - 2

// hostLittleEndian reports whether the running machine stores integers
// little-endian, the precondition for the zero-copy open path.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// snapshotForceCopy disables every zero-copy fast path (the casts, the
// bulk int32 write, and the mmap open), forcing the portable
// decode-copy code instead — the behaviour of a big-endian or !unix
// host. Tests flip it (see export_test.go) so the fallback paths get
// CI coverage on the little-endian unix machines that never take them
// naturally.
var snapshotForceCopy bool

// zeroCopyOK gates the unsafe reinterpret paths.
func zeroCopyOK() bool { return hostLittleEndian && !snapshotForceCopy }

// halfLayoutOK confirms at init time that Half's in-memory layout
// matches the wire record, the other zero-copy precondition. On an
// exotic compiler that lays Half out differently the open path falls
// back to a decoding copy and stays correct.
var halfLayoutOK = unsafe.Sizeof(Half{}) == snapshotHalfSize &&
	unsafe.Offsetof(Half{}.Edge) == 0 &&
	unsafe.Offsetof(Half{}.Other) == 4 &&
	unsafe.Offsetof(Half{}.Out) == 8

// snapshotLayout is the byte layout of one snapshot: the absolute
// offset of every section plus the exact total size.
type snapshotLayout struct {
	n, m                                                   int
	fromOff, toOff, offOff, indegOff, outdegOff, halvesOff int64
	size                                                   int64
}

func computeLayout(n, m int) snapshotLayout {
	l := snapshotLayout{n: n, m: m}
	pos := int64(snapshotHeaderSize)
	section := func(bytes int64) int64 {
		start := pos
		pos = (pos + bytes + 7) &^ 7
		return start
	}
	l.fromOff = section(4 * int64(m))
	l.toOff = section(4 * int64(m))
	l.offOff = section(4 * int64(n+2))
	l.indegOff = section(4 * int64(n+1))
	l.outdegOff = section(4 * int64(n+1))
	l.halvesOff = section(snapshotHalfSize * 2 * int64(m))
	l.size = pos
	return l
}

// fnv1a is the checksum the header carries; it only has to catch
// accidental corruption of the size fields, not adversaries.
func fnv1a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func encodeHeader(n, m int) [snapshotHeaderSize]byte {
	var h [snapshotHeaderSize]byte
	copy(h[:8], snapshotMagic)
	binary.LittleEndian.PutUint32(h[8:], snapshotVersion)
	binary.LittleEndian.PutUint32(h[12:], snapshotHalfSize)
	binary.LittleEndian.PutUint64(h[16:], uint64(n))
	binary.LittleEndian.PutUint64(h[24:], uint64(m))
	binary.LittleEndian.PutUint64(h[32:], fnv1a(h[:32]))
	return h
}

func decodeHeader(b []byte) (n, m int, err error) {
	if len(b) < snapshotHeaderSize {
		return 0, 0, fmt.Errorf("graph: snapshot truncated: %d bytes, header needs %d", len(b), snapshotHeaderSize)
	}
	if string(b[:8]) != snapshotMagic {
		return 0, 0, fmt.Errorf("graph: bad snapshot magic %q", b[:8])
	}
	if v := binary.LittleEndian.Uint32(b[8:]); v != snapshotVersion {
		return 0, 0, fmt.Errorf("graph: unsupported snapshot version %d (want %d)", v, snapshotVersion)
	}
	if hs := binary.LittleEndian.Uint32(b[12:]); hs != snapshotHalfSize {
		return 0, 0, fmt.Errorf("graph: snapshot half record size %d (want %d)", hs, snapshotHalfSize)
	}
	if sum := binary.LittleEndian.Uint64(b[32:]); sum != fnv1a(b[:32]) {
		return 0, 0, fmt.Errorf("graph: snapshot header checksum mismatch")
	}
	un, um := binary.LittleEndian.Uint64(b[16:]), binary.LittleEndian.Uint64(b[24:])
	if un > snapshotMaxCount || 2*um > snapshotMaxCount {
		return 0, 0, fmt.Errorf("graph: snapshot sizes n=%d m=%d exceed int32 index range", un, um)
	}
	return int(un), int(um), nil
}

// WriteSnapshot serializes g in the binary CSR snapshot format. The
// writer receives exactly computeLayout(n, m).size bytes; wrap the
// call in WriteSnapshotFile to produce an OpenSnapshot-able file.
func WriteSnapshot(w io.Writer, g *Graph) error {
	n, m := g.NumVertices(), g.NumEdges()
	if n > snapshotMaxCount || 2*m > snapshotMaxCount {
		return fmt.Errorf("graph: snapshot sizes n=%d m=%d exceed int32 index range", n, m)
	}
	l := computeLayout(n, m)
	bw := bufio.NewWriterSize(w, 1<<20)
	header := encodeHeader(n, m)
	if _, err := bw.Write(header[:]); err != nil {
		return fmt.Errorf("graph: writing snapshot header: %w", err)
	}
	pos := int64(snapshotHeaderSize)
	pad := func(to int64) error {
		for ; pos < to; pos++ {
			if err := bw.WriteByte(0); err != nil {
				return err
			}
		}
		return nil
	}
	writeVertices := func(name string, at int64, xs []Vertex) error {
		if err := pad(at); err != nil {
			return fmt.Errorf("graph: padding snapshot %s section: %w", name, err)
		}
		if err := writeInt32s(bw, vertexInt32s(xs)); err != nil {
			return fmt.Errorf("graph: writing snapshot %s section: %w", name, err)
		}
		pos += 4 * int64(len(xs))
		return nil
	}
	writeInts := func(name string, at int64, xs []int32) error {
		if err := pad(at); err != nil {
			return fmt.Errorf("graph: padding snapshot %s section: %w", name, err)
		}
		if err := writeInt32s(bw, xs); err != nil {
			return fmt.Errorf("graph: writing snapshot %s section: %w", name, err)
		}
		pos += 4 * int64(len(xs))
		return nil
	}
	if err := writeVertices("from", l.fromOff, g.from[:m]); err != nil {
		return err
	}
	if err := writeVertices("to", l.toOff, g.to[:m]); err != nil {
		return err
	}
	if err := writeInts("off", l.offOff, g.off[:n+2]); err != nil {
		return err
	}
	if err := writeInts("indeg", l.indegOff, g.indeg[:n+1]); err != nil {
		return err
	}
	if err := writeInts("outdeg", l.outdegOff, g.outdeg[:n+1]); err != nil {
		return err
	}
	if err := pad(l.halvesOff); err != nil {
		return fmt.Errorf("graph: padding snapshot halves section: %w", err)
	}
	var rec [snapshotHalfSize]byte
	for _, h := range g.halves[:2*m] {
		binary.LittleEndian.PutUint32(rec[0:], uint32(h.Edge))
		binary.LittleEndian.PutUint32(rec[4:], uint32(h.Other))
		rec[8] = 0
		if h.Out {
			rec[8] = 1
		}
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("graph: writing snapshot halves section: %w", err)
		}
	}
	pos += snapshotHalfSize * 2 * int64(m)
	if err := pad(l.size); err != nil {
		return fmt.Errorf("graph: padding snapshot tail: %w", err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing snapshot: %w", err)
	}
	return nil
}

// WriteSnapshotFile writes g's snapshot to path (created or truncated).
func WriteSnapshotFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: creating snapshot %s: %w", path, err)
	}
	if err := WriteSnapshot(f, g); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("graph: closing snapshot %s: %w", path, err)
	}
	return nil
}

// writeInt32s writes xs little-endian. On a little-endian host the
// slice's backing bytes are written directly (one memcpy into the
// buffered writer); elsewhere it encodes element by element.
func writeInt32s(bw *bufio.Writer, xs []int32) error {
	if len(xs) == 0 {
		return nil
	}
	if zeroCopyOK() {
		_, err := bw.Write(unsafe.Slice((*byte)(unsafe.Pointer(&xs[0])), 4*len(xs)))
		return err
	}
	var buf [4]byte
	for _, x := range xs {
		binary.LittleEndian.PutUint32(buf[:], uint32(x))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return nil
}

// vertexInt32s reinterprets a []Vertex as []int32 (same underlying
// type) without copying.
func vertexInt32s(xs []Vertex) []int32 {
	if len(xs) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&xs[0])), len(xs))
}

// Snapshot is an open snapshot file: a read-only *Graph whose arrays
// alias the mmap'd file. Close releases the mapping; the Graph (and
// every slice obtained from it, e.g. Incident results) must not be
// used afterwards. The Graph must never be written through — in
// particular it must not be passed to Builder.FreezeInto.
type Snapshot struct {
	g     *Graph
	unmap func() error
}

// Graph returns the snapshot's read-only graph. It stays valid until
// Close.
func (s *Snapshot) Graph() *Graph { return s.g }

// Close releases the file mapping. The snapshot's Graph becomes
// invalid; Close is idempotent.
func (s *Snapshot) Close() error {
	if s.unmap == nil {
		return nil
	}
	u := s.unmap
	s.unmap = nil
	s.g = nil
	return u()
}

// OpenSnapshot maps the snapshot at path and serves it as a read-only
// *Graph. On a little-endian host (every supported production target)
// the graph's arrays alias the mapping directly — no bytes are copied
// or parsed, so opening is O(1) in the graph size and the OS pages
// data in lazily as traversals touch it. On other hosts the file is
// decoded into fresh arrays and the result is identical, just not
// zero-copy.
//
// Only the header and the total file size are validated here; call
// (*Snapshot).Validate for a full O(n+m) structural check of
// untrusted files.
func OpenSnapshot(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: opening snapshot %s: %w", path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("graph: stat snapshot %s: %w", path, err)
	}
	if st.Size() < snapshotHeaderSize {
		return nil, fmt.Errorf("graph: snapshot %s truncated: %d bytes, header needs %d", path, st.Size(), snapshotHeaderSize)
	}
	if st.Size() > int64(int(^uint(0)>>1)) {
		return nil, fmt.Errorf("graph: snapshot %s too large to map: %d bytes", path, st.Size())
	}
	data, unmap, err := openSnapshotBytes(f, int(st.Size()))
	if err != nil {
		return nil, fmt.Errorf("graph: mapping snapshot %s: %w", path, err)
	}
	s, err := snapshotFromBytes(data, unmap)
	if err != nil {
		unmap()
		return nil, fmt.Errorf("graph: snapshot %s: %w", path, err)
	}
	return s, nil
}

// openSnapshotBytes yields the snapshot's bytes: mmap'd where the
// platform supports it, read into memory otherwise. A map failure
// (filesystems and FUSE mounts that reject MAP_SHARED, locked-down
// containers) degrades to the read path instead of failing the open —
// slower and memory-resident, but correct.
func openSnapshotBytes(f *os.File, size int) (data []byte, release func() error, err error) {
	if !snapshotForceCopy {
		if data, release, err = mapFile(f, size); err == nil {
			return data, release, nil
		}
	}
	return readFileFallback(f, size)
}

// readFileFallback reads the whole file into memory — the open path
// for !unix builds (see mmap_other.go) and the fallback when mapping
// fails.
func readFileFallback(f *os.File, size int) (data []byte, release func() error, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, err
	}
	b, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, err
	}
	if len(b) != size {
		return nil, nil, fmt.Errorf("read %d bytes, want %d", len(b), size)
	}
	return b, func() error { return nil }, nil
}

// snapshotFromBytes builds the graph view over one snapshot's bytes.
// On the zero-copy path the returned graph aliases data; the caller
// keeps the mapping alive through the returned Snapshot.
func snapshotFromBytes(data []byte, unmap func() error) (*Snapshot, error) {
	n, m, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	l := computeLayout(n, m)
	if int64(len(data)) != l.size {
		return nil, fmt.Errorf("snapshot size %d bytes, n=%d m=%d needs exactly %d", len(data), n, m, l.size)
	}
	g := &Graph{
		n:      n,
		from:   castVertices(data[l.fromOff:], m),
		to:     castVertices(data[l.toOff:], m),
		off:    castInt32s(data[l.offOff:], n+2),
		indeg:  castInt32s(data[l.indegOff:], n+1),
		outdeg: castInt32s(data[l.outdegOff:], n+1),
		halves: castHalves(data[l.halvesOff:], 2*m),
	}
	if unmap == nil {
		unmap = func() error { return nil }
	}
	return &Snapshot{g: g, unmap: unmap}, nil
}

func castInt32s(b []byte, count int) []int32 {
	if count == 0 {
		return nil
	}
	if zeroCopyOK() {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), count)
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func castVertices(b []byte, count int) []Vertex {
	if count == 0 {
		return nil
	}
	if zeroCopyOK() {
		return unsafe.Slice((*Vertex)(unsafe.Pointer(&b[0])), count)
	}
	xs := castInt32s(b, count)
	out := make([]Vertex, count)
	for i, x := range xs {
		out[i] = Vertex(x)
	}
	return out
}

func castHalves(b []byte, count int) []Half {
	if count == 0 {
		return nil
	}
	if zeroCopyOK() && halfLayoutOK {
		return unsafe.Slice((*Half)(unsafe.Pointer(&b[0])), count)
	}
	out := make([]Half, count)
	for i := range out {
		rec := b[snapshotHalfSize*i:]
		out[i] = Half{
			Edge:  EdgeID(binary.LittleEndian.Uint32(rec[0:])),
			Other: Vertex(binary.LittleEndian.Uint32(rec[4:])),
			Out:   rec[8] != 0,
		}
	}
	return out
}

// Validate runs the full O(n+m) structural check of the snapshot's
// graph: offsets monotone and spanning exactly 2m halves, every half
// consistent with its edge's endpoints, every endpoint in range, and
// the degree counters matching the edge list. WriteSnapshot output
// always validates; use this before traversing a file from an
// untrusted source, where OpenSnapshot's header checks are not enough.
func (s *Snapshot) Validate() error {
	g := s.g
	if g == nil {
		return fmt.Errorf("graph: Validate on closed snapshot")
	}
	n, m := g.n, len(g.from)
	if g.off[1] != 0 {
		return fmt.Errorf("graph: snapshot off[1] = %d, want 0", g.off[1])
	}
	for v := 1; v <= n; v++ {
		if g.off[v+1] < g.off[v] {
			return fmt.Errorf("graph: snapshot off not monotone at vertex %d", v)
		}
	}
	if int(g.off[n+1]) != 2*m {
		return fmt.Errorf("graph: snapshot off[n+1] = %d, want 2m = %d", g.off[n+1], 2*m)
	}
	for e := 0; e < m; e++ {
		u, v := g.from[e], g.to[e]
		if u < 1 || int(u) > n || v < 1 || int(v) > n {
			return fmt.Errorf("graph: snapshot edge %d endpoints (%d, %d) out of range 1..%d", e, u, v, n)
		}
	}
	var inSum, outSum int64
	for v := 1; v <= n; v++ {
		if g.indeg[v] < 0 || g.outdeg[v] < 0 {
			return fmt.Errorf("graph: snapshot vertex %d has negative degree counters", v)
		}
		inSum += int64(g.indeg[v])
		outSum += int64(g.outdeg[v])
		if int(g.off[v+1]-g.off[v]) != int(g.indeg[v]+g.outdeg[v]) {
			return fmt.Errorf("graph: snapshot vertex %d incidence length %d != indeg+outdeg %d",
				v, g.off[v+1]-g.off[v], g.indeg[v]+g.outdeg[v])
		}
	}
	if inSum != int64(m) || outSum != int64(m) {
		return fmt.Errorf("graph: snapshot degree sums (in %d, out %d) != m = %d", inSum, outSum, m)
	}
	for v := 1; v <= n; v++ {
		for _, h := range g.halves[g.off[v]:g.off[v+1]] {
			if h.Edge < 0 || int(h.Edge) >= m {
				return fmt.Errorf("graph: snapshot vertex %d references edge %d out of range", v, h.Edge)
			}
			u, w := g.from[h.Edge], g.to[h.Edge]
			if h.Out {
				if u != Vertex(v) || h.Other != w {
					return fmt.Errorf("graph: snapshot vertex %d out-half of edge %d inconsistent", v, h.Edge)
				}
			} else if w != Vertex(v) || h.Other != u {
				return fmt.Errorf("graph: snapshot vertex %d in-half of edge %d inconsistent", v, h.Edge)
			}
		}
	}
	return nil
}
