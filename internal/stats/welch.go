package stats

import (
	"fmt"
	"math"
)

// WelchResult reports a two-sample Welch t-test (unequal variances).
type WelchResult struct {
	T      float64 // t statistic (mean(a) - mean(b), studentized)
	DF     float64 // Welch–Satterthwaite degrees of freedom
	PValue float64 // two-sided p-value
}

// WelchTTest tests whether two independent samples share a mean,
// without assuming equal variances. It returns an error when either
// sample has fewer than two observations or when both variances vanish.
func WelchTTest(a, b []float64) (WelchResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return WelchResult{}, fmt.Errorf("stats: Welch test needs >= 2 observations per sample (%d, %d)", len(a), len(b))
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se2 := sa + sb
	if se2 == 0 {
		if ma == mb {
			return WelchResult{T: 0, DF: na + nb - 2, PValue: 1}, nil
		}
		return WelchResult{}, fmt.Errorf("stats: Welch test with zero variance and unequal means")
	}
	t := (ma - mb) / math.Sqrt(se2)
	df := se2 * se2 / (sa*sa/(na-1) + sb*sb/(nb-1))
	return WelchResult{T: t, DF: df, PValue: studentTwoSided(math.Abs(t), df)}, nil
}

// studentTwoSided computes P(|T| >= t) for Student's t with df degrees
// of freedom, via the regularized incomplete beta function
// I_{df/(df+t²)}(df/2, 1/2).
func studentTwoSided(t, df float64) float64 {
	if t <= 0 {
		return 1
	}
	x := df / (df + t*t)
	p := regularizedBeta(x, df/2, 0.5)
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// regularizedBeta computes I_x(a, b) by the continued-fraction
// expansion (Numerical Recipes betacf construction).
func regularizedBeta(x, a, b float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lgA, _ := math.Lgamma(a)
	lgB, _ := math.Lgamma(b)
	lgAB, _ := math.Lgamma(a + b)
	front := math.Exp(lgAB - lgA - lgB + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(x, a, b) / a
	}
	return 1 - front*betaCF(1-x, b, a)/b
}

func betaCF(x, a, b float64) float64 {
	const itmax = 500
	const eps = 1e-14
	const fpmin = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= itmax; m++ {
		m2 := float64(2 * m)
		mf := float64(m)
		aa := mf * (b - mf) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + mf) * (qab + mf) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
