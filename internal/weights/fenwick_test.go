package weights

import (
	"math"
	"testing"
	"testing/quick"

	"scalefree/internal/rng"
)

func TestFenwickPrefixSums(t *testing.T) {
	f := NewFenwick(10)
	for i := 1; i <= 10; i++ {
		f.Add(i, int64(i))
	}
	for i := 0; i <= 10; i++ {
		want := int64(i * (i + 1) / 2)
		if got := f.PrefixSum(i); got != want {
			t.Errorf("PrefixSum(%d) = %d, want %d", i, got, want)
		}
	}
	if got := f.Total(); got != 55 {
		t.Errorf("Total = %d, want 55", got)
	}
	if got := f.PrefixSum(99); got != 55 {
		t.Errorf("PrefixSum past end = %d, want 55", got)
	}
}

func TestFenwickWeight(t *testing.T) {
	f := NewFenwick(5)
	f.Add(2, 7)
	f.Add(4, 3)
	f.Add(2, -2)
	wants := []int64{0, 5, 0, 3, 0}
	for i, want := range wants {
		if got := f.Weight(i + 1); got != want {
			t.Errorf("Weight(%d) = %d, want %d", i+1, got, want)
		}
	}
}

func TestFenwickMatchesLinearScan(t *testing.T) {
	// Property: Fenwick prefix sums equal a naive accumulation for
	// arbitrary update sequences.
	check := func(seed uint64, nRaw uint8, ops uint8) bool {
		n := int(nRaw%30) + 1
		r := rng.New(seed)
		f := NewFenwick(n)
		naive := make([]int64, n+1)
		for k := 0; k < int(ops); k++ {
			i := r.IntRange(1, n)
			delta := int64(r.IntRange(0, 9))
			f.Add(i, delta)
			naive[i] += delta
		}
		sum := int64(0)
		for i := 1; i <= n; i++ {
			sum += naive[i]
			if f.PrefixSum(i) != sum {
				return false
			}
			if f.Weight(i) != naive[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFenwickSampleProportions(t *testing.T) {
	f := NewFenwick(4)
	f.Add(1, 1)
	f.Add(2, 2)
	f.Add(3, 3)
	f.Add(4, 4)
	r := rng.New(42)
	const draws = 200000
	counts := make([]int, 5)
	for i := 0; i < draws; i++ {
		counts[f.Sample(r)]++
	}
	for i := 1; i <= 4; i++ {
		want := float64(i) / 10
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.005 {
			t.Errorf("P(item %d) = %v, want %v", i, got, want)
		}
	}
}

func TestFenwickSampleSkipsZeroWeights(t *testing.T) {
	f := NewFenwick(5)
	f.Add(3, 10)
	r := rng.New(7)
	for i := 0; i < 1000; i++ {
		if got := f.Sample(r); got != 3 {
			t.Fatalf("sampled zero-weight item %d", got)
		}
	}
}

func TestFenwickSampleNonPowerOfTwo(t *testing.T) {
	// Sampling descent must stay in range for n that is not a power of
	// two, including weight on the final item.
	f := NewFenwick(13)
	f.Add(13, 5)
	f.Add(1, 5)
	r := rng.New(9)
	for i := 0; i < 2000; i++ {
		got := f.Sample(r)
		if got != 1 && got != 13 {
			t.Fatalf("sampled %d; only items 1 and 13 have weight", got)
		}
	}
}

func TestFenwickSamplePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample on zero-total tree did not panic")
		}
	}()
	NewFenwick(3).Sample(rng.New(1))
}

func TestFenwickIndexPanics(t *testing.T) {
	f := NewFenwick(3)
	for _, fn := range []func(){
		func() { f.Add(0, 1) },
		func() { f.Add(4, 1) },
		func() { f.Weight(0) },
		func() { f.Weight(4) },
		func() { NewFenwick(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestAliasValidation(t *testing.T) {
	if _, err := NewAlias(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewAlias([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewAlias([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestAliasProportions(t *testing.T) {
	a, err := NewAlias([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 4 {
		t.Fatalf("Len = %d", a.Len())
	}
	r := rng.New(11)
	const draws = 200000
	counts := make([]int, 4)
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	for i, c := range counts {
		want := float64(i+1) / 10
		got := float64(c) / draws
		if math.Abs(got-want) > 0.005 {
			t.Errorf("P(%d) = %v, want %v", i, got, want)
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a, err := NewAlias([]float64{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(13)
	for i := 0; i < 20000; i++ {
		got := a.Sample(r)
		if got == 0 || got == 2 {
			t.Fatalf("sampled zero-weight index %d", got)
		}
	}
}

func TestAliasSingleton(t *testing.T) {
	a, err := NewAlias([]float64{5})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("singleton alias sampled nonzero index")
		}
	}
}

func TestEndpointArrayProportions(t *testing.T) {
	e := NewEndpointArray(10)
	e.Record(1)
	e.Record(2)
	e.Record(2)
	e.Record(2)
	if e.Total() != 4 {
		t.Fatalf("Total = %d, want 4", e.Total())
	}
	r := rng.New(19)
	const draws = 100000
	twos := 0
	for i := 0; i < draws; i++ {
		if e.Sample(r) == 2 {
			twos++
		}
	}
	got := float64(twos) / draws
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("P(2) = %v, want 0.75", got)
	}
}

func TestEndpointArrayPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample on empty endpoint array did not panic")
		}
	}()
	NewEndpointArray(0).Sample(rng.New(1))
}

func BenchmarkFenwickSample(b *testing.B) {
	n := 1 << 16
	f := NewFenwick(n)
	r := rng.New(1)
	for i := 1; i <= n; i++ {
		f.Add(i, int64(r.IntRange(1, 10)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Sample(r)
	}
}

func BenchmarkEndpointArraySample(b *testing.B) {
	n := 1 << 16
	e := NewEndpointArray(n)
	r := rng.New(1)
	for i := 0; i < n; i++ {
		e.Record(int32(r.IntRange(1, n)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Sample(r)
	}
}

func BenchmarkAliasSample(b *testing.B) {
	n := 1 << 16
	ws := make([]float64, n)
	r := rng.New(1)
	for i := range ws {
		ws[i] = r.Float64() + 0.01
	}
	a, err := NewAlias(ws)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(r)
	}
}
