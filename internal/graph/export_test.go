package graph

// SetSnapshotForceCopy flips the decode-copy gate (snapshot.go) and
// returns the previous value, so tests can exercise the portable
// fallback paths — big-endian casts, element-wise writes, read-instead-
// of-mmap opens — on the little-endian unix hosts CI runs on.
func SetSnapshotForceCopy(v bool) bool {
	old := snapshotForceCopy
	snapshotForceCopy = v
	return old
}
