package main

import (
	"strings"
	"testing"
)

// TestFlagValidation pins the CLI's rejection of meaningless flag
// combinations: every mode must either honour a flag or refuse it
// loudly — a silently ignored flag reads as accepted and misleads the
// operator (the -merge -cache case shipped that way once).
func TestFlagValidation(t *testing.T) {
	reject := []struct {
		name string
		args []string
		want string // substring of the diagnostic
	}{
		// Mode exclusivity.
		{"merge+shard", []string{"-merge", "d", "-shard", "1/2"}, "mutually exclusive"},
		{"merge+coordinate", []string{"-merge", "d", "-coordinate", ":0"}, "mutually exclusive"},
		{"shard+worker", []string{"-shard", "1/2", "-out", "d", "-worker", ":0"}, "mutually exclusive"},
		{"coordinate+worker", []string{"-coordinate", ":0", "-worker", ":0"}, "mutually exclusive"},
		{"worker+cache-gc", []string{"-worker", ":0", "-cache-gc", "abc"}, "mutually exclusive"},

		// -merge executes nothing.
		{"merge+cache", []string{"-merge", "d", "-cache", "c"}, "-cache"},
		{"merge+resume", []string{"-merge", "d", "-resume"}, "-resume"},
		{"merge+workers", []string{"-merge", "d", "-workers", "4"}, "-workers"},
		{"merge+progress", []string{"-merge", "d", "-progress"}, "-progress"},
		{"merge+out", []string{"-merge", "d", "-out", "o"}, "-out"},

		// -shard writes files, not tables.
		{"shard without out", []string{"-shard", "1/2"}, "-out"},
		{"shard+csv", []string{"-shard", "1/2", "-out", "d", "-csv", "c"}, "-csv"},

		// The coordinator schedules; it executes no trials. (-out is
		// legal here: it names the graceful-drain shard directory.)
		{"coordinate+workers", []string{"-coordinate", ":0", "-workers", "4"}, "-workers"},
		{"coordinate+cache", []string{"-coordinate", ":0", "-cache", "c"}, "-cache"},
		{"coordinate+resume", []string{"-coordinate", ":0", "-resume"}, "-resume"},

		// Workers stream results; they print no tables.
		{"worker+csv", []string{"-worker", ":0", "-csv", "c"}, "-csv"},
		{"worker+resume", []string{"-worker", ":0", "-resume"}, "-resume"},
		{"worker+out", []string{"-worker", ":0", "-out", "d"}, "-out"},

		// -cache-gc is pure maintenance.
		{"cache-gc without cache", []string{"-cache-gc", "abc"}, "-cache"},
		{"cache-gc+workers", []string{"-cache-gc", "abc", "-cache", "c", "-workers", "2"}, "no trials"},
		{"cache-gc+progress", []string{"-cache-gc", "abc", "-cache", "c", "-progress"}, "no trials"},
		{"cache-gc+csv", []string{"-cache-gc", "abc", "-cache", "c", "-csv", "x"}, "no trials"},

		// Plain runs.
		{"out without shard", []string{"-out", "d"}, "-shard"},
		{"resume without shard", []string{"-resume"}, "-shard"},

		// Coordinator tunables outside -coordinate.
		{"chunk without coordinate", []string{"-chunk", "4"}, "-coordinate"},
		{"lease-ttl without coordinate", []string{"-lease-ttl", "5s"}, "-coordinate"},
		{"chunk on worker", []string{"-worker", ":0", "-chunk", "4"}, "-coordinate"},
		{"zero chunk", []string{"-coordinate", ":0", "-chunk", "0"}, "-chunk"},
		{"negative lease", []string{"-coordinate", ":0", "-lease-ttl", "-1s"}, "-lease-ttl"},

		// Robustness tunables outside their modes.
		{"auth-key on run", []string{"-auth-key", "k"}, "-coordinate or -worker"},
		{"auth-key on shard", []string{"-shard", "1/2", "-out", "d", "-auth-key", "k"}, "-coordinate or -worker"},
		{"dial-retries on run", []string{"-dial-retries", "5"}, "-worker"},
		{"dial-retries on coordinator", []string{"-coordinate", ":0", "-dial-retries", "5"}, "-worker"},
		{"drain-timeout on worker", []string{"-worker", ":0", "-drain-timeout", "5s"}, "-coordinate"},
		{"drain-timeout without out", []string{"-coordinate", ":0", "-drain-timeout", "5s"}, "-out"},
		{"negative drain-timeout", []string{"-coordinate", ":0", "-out", "d", "-drain-timeout", "-1s"}, "-drain-timeout"},
		{"chaos on worker", []string{"-worker", ":0", "-chaos", "7"}, "-coordinate"},
		{"chaos on run", []string{"-chaos", "7"}, "-coordinate"},
		{"cache-max-bytes without cache", []string{"-cache-max-bytes", "1024"}, "-cache"},
		{"negative cache-max-bytes", []string{"-cache", "c", "-cache-max-bytes", "-1"}, ">= 0"},
		{"cache-max-bytes on cache-gc", []string{"-cache-gc", "abc", "-cache", "c", "-cache-max-bytes", "1024"}, "-cache-max-bytes"},

		// Observability flags outside their modes.
		{"status-addr on run", []string{"-status-addr", ":0"}, "-coordinate or -worker"},
		{"status-addr on shard", []string{"-shard", "1/2", "-out", "d", "-status-addr", ":0"}, "-coordinate or -worker"},
		{"status-addr on merge", []string{"-merge", "d", "-status-addr", ":0"}, "-coordinate or -worker"},
		{"pprof without status-addr", []string{"-coordinate", ":0", "-pprof"}, "-status-addr"},
		{"pprof on run", []string{"-pprof"}, "-status-addr"},
		{"events on run", []string{"-events", "f"}, "-coordinate, -worker, or -cache-gc"},
		{"events on merge", []string{"-merge", "d", "-events", "f"}, "-coordinate, -worker, or -cache-gc"},
		{"events on shard", []string{"-shard", "1/2", "-out", "d", "-events", "f"}, "-coordinate, -worker, or -cache-gc"},
		{"dump-metrics on merge", []string{"-merge", "d", "-dump-metrics"}, "-dump-metrics"},
		{"events-max-bytes without events", []string{"-coordinate", ":0", "-events-max-bytes", "1024"}, "-events"},
		{"zero events-max-bytes", []string{"-coordinate", ":0", "-events", "f", "-events-max-bytes", "0"}, "positive"},

		// Tracing: the trace file belongs to a plain run or the
		// coordinator; workers are enabled over the wire.
		{"trace on worker", []string{"-worker", ":0", "-trace", "t.json"}, "-trace"},
		{"trace on merge", []string{"-merge", "d", "-trace", "t.json"}, "-trace"},
		{"trace on shard", []string{"-shard", "1/2", "-out", "d", "-trace", "t.json"}, "-trace"},
		{"trace on cache-gc", []string{"-cache-gc", "abc", "-cache", "c", "-trace", "t.json"}, "-trace"},
		{"trace-bfs without trace", []string{"-trace-bfs", "4"}, "-trace"},
		{"trace-bfs on coordinator without trace", []string{"-coordinate", ":0", "-trace-bfs", "4"}, "-trace"},
		{"negative trace-bfs", []string{"-trace", "t.json", "-trace-bfs", "-1"}, ">= 0"},
	}
	for _, tc := range reject {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseOptions(tc.args)
			if err == nil {
				t.Fatalf("parseOptions(%v) accepted a meaningless combination", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("diagnostic %q does not mention %q", err, tc.want)
			}
		})
	}

	accept := [][]string{
		{},
		{"-run", "E1,E4", "-scale", "0.1", "-seed", "7", "-workers", "4", "-progress", "-csv", "c", "-cache", "d"},
		{"-shard", "2/5", "-out", "d", "-cache", "c", "-resume", "-progress", "-workers", "2"},
		{"-merge", "d", "-csv", "c"},
		{"-coordinate", ":9131", "-chunk", "16", "-lease-ttl", "30s", "-progress", "-csv", "c"},
		{"-worker", "host:9131", "-workers", "8", "-cache", "c", "-progress"},
		{"-cache-gc", "abc123", "-cache", "c"},
		{"-coordinate", ":9131", "-auth-key", "s3cret", "-out", "drain", "-drain-timeout", "30s"},
		{"-coordinate", ":9131", "-chaos", "1889"},
		{"-worker", "host:9131", "-auth-key", "s3cret", "-dial-retries", "-1"},
		{"-run", "E4", "-cache", "c", "-cache-max-bytes", "1048576"},
		{"-shard", "1/1", "-out", "d", "-cache", "c", "-cache-max-bytes", "0"},
		{"-coordinate", ":9131", "-status-addr", ":9200", "-pprof", "-events", "f", "-dump-metrics"},
		{"-worker", "host:9131", "-status-addr", ":9201", "-events", "f", "-dump-metrics"},
		{"-cache-gc", "abc123", "-cache", "c", "-events", "f", "-dump-metrics"},
		{"-run", "E4", "-dump-metrics"},
		{"-run", "E4", "-trace", "t.json", "-trace-bfs", "4"},
		{"-coordinate", ":9131", "-trace", "t.json"},
		{"-worker", "host:9131", "-trace-bfs", "8"},
		{"-coordinate", ":9131", "-events", "f", "-events-max-bytes", "1048576"},
	}
	for _, args := range accept {
		if _, err := parseOptions(args); err != nil {
			t.Errorf("parseOptions(%v) rejected a valid combination: %v", args, err)
		}
	}
}

// TestFlagModeSelection pins the flag → mode mapping.
func TestFlagModeSelection(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{}, "run"},
		{[]string{"-shard", "1/2", "-out", "d"}, "shard"},
		{[]string{"-merge", "d"}, "merge"},
		{[]string{"-coordinate", ":0"}, "coordinate"},
		{[]string{"-worker", ":0"}, "worker"},
		{[]string{"-cache-gc", "abc", "-cache", "c"}, "cache-gc"},
	}
	for _, tc := range cases {
		o, err := parseOptions(tc.args)
		if err != nil {
			t.Errorf("parseOptions(%v): %v", tc.args, err)
			continue
		}
		if got := o.mode(); got != tc.want {
			t.Errorf("mode(%v) = %q, want %q", tc.args, got, tc.want)
		}
	}
}
