package weights

import "scalefree/internal/rng"

// EndpointArray implements pure preferential attachment by the
// append-only endpoint-array trick: every time an edge touches a
// vertex, the vertex is appended; a uniform draw from the array is then
// a draw proportional to hit counts. It is O(1) per draw but, unlike
// Fenwick, supports only integer hit-count weights.
//
// It is the production sampler for every preferential draw in the
// repository: the Barabási–Albert model (weights are exactly total
// degrees) and — because the Móri and Cooper–Frieze generators flip
// their uniform-vs-preferential mixture coin exactly *before* drawing —
// the indegree-proportional draws of both evolving models, making graph
// generation O(n). The Fenwick tree remains as the O(log n) reference
// implementation (see the package comment and
// BenchmarkAblationFenwickVsEndpointArray).
type EndpointArray struct {
	hits []int32
}

// NewEndpointArray returns an empty sampler with a capacity hint.
func NewEndpointArray(capHint int) *EndpointArray {
	e := &EndpointArray{}
	e.Reset(capHint)
	return e
}

// Reset empties the sampler for reuse, keeping the backing array (and
// growing it when the hint asks for more), so repeated same-size
// generation allocates nothing.
func (e *EndpointArray) Reset(capHint int) {
	if cap(e.hits) < capHint {
		e.hits = make([]int32, 0, capHint)
		return
	}
	e.hits = e.hits[:0]
}

// Record appends one hit for item (so its weight increases by one).
func (e *EndpointArray) Record(item int32) {
	e.hits = append(e.hits, item)
}

// Sample draws an item with probability proportional to its hit count.
// It panics when nothing has been recorded.
func (e *EndpointArray) Sample(r *rng.RNG) int32 {
	if len(e.hits) == 0 {
		panic("weights: EndpointArray.Sample with no recorded hits")
	}
	return e.hits[r.Intn(len(e.hits))]
}

// Total returns the total number of recorded hits.
func (e *EndpointArray) Total() int { return len(e.hits) }
