package lint

import "testing"

func TestDeterminismFixture(t *testing.T) {
	RunFixture(t, "determinism", Determinism)
}

func TestDeterminismPackageWallclock(t *testing.T) {
	res := RunFixture(t, "wallclockpkg", Determinism)
	if !res.Clean() {
		t.Errorf("package-level //sf:wallclock should exempt everything, got %v", res.All())
	}
}
