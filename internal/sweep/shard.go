package sweep

import (
	"fmt"
	"strconv"
	"strings"

	"scalefree/internal/engine"
)

// ShardSpec identifies one shard of a k-way partition. Index is
// 0-based internally; the operator-facing form ("1/4" … "4/4", parsed
// by ParseShardSpec) is 1-based.
type ShardSpec struct {
	Index int // 0-based shard number, 0 <= Index < Count
	Count int // total shards, >= 1
}

// ParseShardSpec parses the -shard flag form "i/k" with 1-based i,
// e.g. "2/5" is the second of five shards.
func ParseShardSpec(s string) (ShardSpec, error) {
	i, k, ok := strings.Cut(s, "/")
	if !ok {
		return ShardSpec{}, fmt.Errorf("sweep: shard spec %q: want i/k, e.g. 2/5", s)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(i))
	if err != nil {
		return ShardSpec{}, fmt.Errorf("sweep: shard spec %q: bad shard number: %v", s, err)
	}
	cnt, err := strconv.Atoi(strings.TrimSpace(k))
	if err != nil {
		return ShardSpec{}, fmt.Errorf("sweep: shard spec %q: bad shard count: %v", s, err)
	}
	if cnt < 1 || idx < 1 || idx > cnt {
		return ShardSpec{}, fmt.Errorf("sweep: shard spec %q: want 1 <= i <= k", s)
	}
	return ShardSpec{Index: idx - 1, Count: cnt}, nil
}

// String renders the 1-based operator form.
func (s ShardSpec) String() string { return fmt.Sprintf("%d/%d", s.Index+1, s.Count) }

func (s ShardSpec) validate() error {
	if s.Count < 1 || s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("sweep: invalid shard spec %d/%d (0-based)", s.Index, s.Count)
	}
	return nil
}

// Filter returns the trials this shard owns: plan index i goes to
// shard i mod k. The strided assignment interleaves sizes and
// replications across shards, so the heavy large-n trials of a scaling
// sweep spread evenly instead of all landing on the last shard. The
// partition is a pure function of (plan order, k): every shard of the
// same plan computes a disjoint subset and the union over shards
// 0..k-1 is exactly the plan.
func (s ShardSpec) Filter(trials []engine.Trial) []engine.Trial {
	if s.Count == 1 {
		return trials
	}
	var out []engine.Trial
	for _, t := range trials {
		if t.Index%s.Count == s.Index {
			out = append(out, t)
		}
	}
	return out
}
