package graph

// Components labels every vertex with a connected-component id in
// [0, count) over the undirected view, returning the labels (indexed
// 1..n) and the number of components.
func Components(g *Graph) (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n+1)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]Vertex, 0, n)
	next := int32(0)
	for s := Vertex(1); s <= Vertex(n); s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = next
		queue = append(queue[:0], s)
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, h := range g.Incident(u) {
				if labels[h.Other] == -1 {
					labels[h.Other] = next
					queue = append(queue, h.Other)
				}
			}
		}
		next++
	}
	return labels, int(next)
}

// ComponentsParallel is Components with each component flood expanded
// by the frontier-parallel machinery of BFSParallelInto. Seeds are
// still scanned in increasing vertex order and labels assigned in seed
// order, so the (labels, count) output is byte-identical to serial
// Components for every worker count; only the within-flood work is
// parallel, which is where all the time goes on graphs dominated by a
// giant component.
func ComponentsParallel(g *Graph, workers int) (labels []int32, count int) {
	labels = make([]int32, g.NumVertices()+1)
	count = ComponentsParallelInto(g, labels, workers, nil)
	return labels, count
}

// ComponentsParallelInto is ComponentsParallel writing labels into a
// caller buffer of length >= n+1 (every entry is overwritten) with a
// reusable traversal scratch; nil s falls back to fresh buffers. It
// returns the component count.
func ComponentsParallelInto(g *Graph, labels []int32, workers int, s *BFSScratch) int {
	if s == nil {
		s = &BFSScratch{}
	}
	for i := range labels {
		labels[i] = -1
	}
	next := int32(0)
	for v := Vertex(1); v <= Vertex(g.NumVertices()); v++ {
		if labels[v] != -1 {
			continue
		}
		labels[v] = next
		s.frontier = append(s.frontier[:0], v)
		s.flood(g, labels, workers, false, next)
		next++
	}
	return int(next)
}

// ComponentSizesFrom tallies component sizes from a Components (or
// ComponentsParallelInto) labelling of g without materializing any
// subgraph — the giant-graph substitute for LargestComponent when only
// sizes are needed. sizes[c] is the vertex count of component c.
func ComponentSizesFrom(g *Graph, labels []int32, count int) []int {
	sizes := make([]int, count)
	for v := 1; v <= g.NumVertices(); v++ {
		sizes[labels[v]]++
	}
	return sizes
}

// IsConnected reports whether the undirected view of g is connected.
// The empty graph is considered connected.
func IsConnected(g *Graph) bool {
	if g.NumVertices() == 0 {
		return true
	}
	_, count := Components(g)
	return count == 1
}

// LargestComponent extracts the induced subgraph of the largest
// connected component, relabelled with contiguous identities 1..size in
// increasing order of original identity. It returns the subgraph and
// origID, where origID[newID] is the original identity (indexed 1..size).
// Multi-edges and self-loops are preserved.
func LargestComponent(g *Graph) (sub *Graph, origID []Vertex) {
	n := g.NumVertices()
	if n == 0 {
		return (&Builder{}).Freeze(), nil
	}
	labels, count := Components(g)
	sizes := make([]int, count)
	for v := 1; v <= n; v++ {
		sizes[labels[v]]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	newID := make([]Vertex, n+1)
	origID = make([]Vertex, 1, sizes[best]+1)
	b := NewBuilder(sizes[best], g.NumEdges())
	for v := Vertex(1); v <= Vertex(n); v++ {
		if labels[v] == int32(best) {
			newID[v] = b.AddVertex()
			origID = append(origID, v)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		u, v := g.Endpoints(EdgeID(e))
		if labels[u] == int32(best) && labels[v] == int32(best) {
			b.AddEdge(newID[u], newID[v])
		}
	}
	return b.Freeze(), origID
}
