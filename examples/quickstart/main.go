// Quickstart: generate a Móri scale-free graph, search for its youngest
// vertex under the weak model of local knowledge, and compare the
// measured cost against the paper's Ω(√n) lower bound.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"scalefree/internal/core"
	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
	"scalefree/internal/search"
)

func main() {
	const (
		n    = 8192
		p    = 0.5
		seed = 42
	)

	// 1. Generate one merged Móri graph (m = 2 out-edges per vertex).
	cfg := mori.Config{N: n, M: 2, P: p}
	g, err := cfg.Generate(rng.New(seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated Móri graph: n=%d, m=%d edges, max degree %d\n",
		g.NumVertices(), g.NumEdges(), g.MaxDegree())

	// 2. Search for the youngest vertex n from vertex 1, through the
	// weak-model oracle (the algorithm never touches the graph
	// directly; the shuffled variant hides edge insertion order, per
	// the paper's model).
	oracle, err := search.NewOracleShuffled(g, 1, graph.Vertex(n), search.Weak, seed)
	if err != nil {
		log.Fatal(err)
	}
	algo := search.NewDegreeGreedyWeak()
	res, err := algo.Search(oracle, rng.New(seed+1), 0)
	if err != nil {
		log.Fatal(err)
	}
	path, err := oracle.FoundPath()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s found vertex %d after %d requests (witness path length %d)\n",
		algo.Name(), n, res.Requests, len(path)-1)

	// 3. The paper's lower bound: no algorithm can beat |V|·P(E)/2.
	bound, err := core.Theorem1Bound(n, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 1 bound: any weak-model algorithm needs >= %.1f expected requests (≈ e^{-(1-p)}·√n/2; √n = %.0f)\n",
		bound, math.Sqrt(n))

	// 4. Replicated measurement: the expectation, not one lucky run.
	m, err := core.MeasureSearch(core.MoriGen(cfg), core.SearchSpec{
		Algorithm: algo,
		Reps:      20,
		Seed:      seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("over %d fresh graphs: mean %.1f ± %.1f requests (median %.0f) — above the bound: %v\n",
		m.Requests.N, m.Requests.Mean, m.Requests.StdErr, m.Requests.Median,
		m.Requests.Mean >= bound)
}
