// Command genstats measures the structural statistics of one graph —
// degree distribution with power-law fit, maximum degree, distances,
// and connectivity — for either a freshly generated instance of any
// registered model (internal/model) or a frozen binary CSR snapshot
// served zero-copy via mmap (graphgen -snapshot), which is how the
// n=10^8 giant-graph tables are produced without ever re-parsing a
// multi-gigabyte edge list.
//
// Usage:
//
//	genstats -model mori -params n=16384,p=0.5,m=1 [-seed 1]
//	genstats -model cf -params n=16384,alpha=0.8
//	genstats -model fitness -params n=16384,m=2,eta0=0.1
//	genstats -snapshot mori.csr -threads 16
//	genstats -snapshot mori.csr -verify
//
// -params is a comma-separated name=value list validated against the
// chosen model's parameter table (missing parameters take their
// defaults; run `graphgen -list` for the registry). Defaults are the
// registry's — e.g. bare genstats now measures the registry default
// n=4096, where the pre-registry CLI defaulted to 16384 — so pass
// -params n=… when comparing against older baselines. Adding a model
// to the registry makes it available here with no CLI changes.
//
// -snapshot bypasses generation and mmaps the given snapshot file;
// -seed then only drives the distance-sampling sources. -verify runs
// the full O(n+m) structural validation before measuring (for
// snapshots from untrusted sources). -threads sets how many goroutines
// the within-trial passes use: frontier-parallel BFS for distances,
// partitioned component labelling, and partitioned degree
// histogram/maximum accumulation (0 = all cores). Every statistic is
// byte-identical across thread counts.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"scalefree/internal/graph"
	"scalefree/internal/model"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "genstats:", err)
		os.Exit(1)
	}
}

// options is the parsed command line, separated from execution so the
// CLI test covers flag validation and model resolution without
// exec'ing the binary (the cmd/graphgen idiom).
type options struct {
	model    string
	params   string
	seed     uint64
	snapshot string
	verify   bool
	threads  int
}

func parseOptions(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("genstats", flag.ContinueOnError)
	fs.StringVar(&o.model, "model", "mori", "registered model name (see graphgen -list)")
	fs.StringVar(&o.params, "params", "", "comma-separated name=value model parameters (defaults otherwise)")
	fs.Uint64Var(&o.seed, "seed", 1, "seed (drives generation and distance-sampling sources)")
	fs.StringVar(&o.snapshot, "snapshot", "", "measure this binary CSR snapshot (mmap, zero-copy) instead of generating")
	fs.BoolVar(&o.verify, "verify", false, "with -snapshot: run the full structural validation before measuring")
	fs.IntVar(&o.threads, "threads", 0, "goroutines for the parallel passes (0 = all cores)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	return o, nil
}

func (o *options) validate() error {
	if o.verify && o.snapshot == "" {
		return fmt.Errorf("-verify only applies to -snapshot runs")
	}
	if o.snapshot != "" && o.params != "" {
		return fmt.Errorf("-snapshot measures an existing file; it takes no -params (the model ran at graphgen time)")
	}
	if o.threads < 0 {
		return fmt.Errorf("-threads %d is negative", o.threads)
	}
	return nil
}

// resolve instantiates the selected model, surfacing unknown names,
// unknown parameters, and out-of-range values as CLI errors.
func (o *options) resolve() (model.Model, error) {
	return model.New(o.model, o.params)
}

// run generates the requested graph and prints its statistics; the
// elapsed-time line on stderr is the only nondeterministic output.
//
//sf:wallclock — generation timing is reported to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	workers := o.threads
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	r := rng.New(o.seed)
	var g *graph.Graph
	if o.snapshot != "" {
		start := time.Now()
		snap, err := graph.OpenSnapshot(o.snapshot)
		if err != nil {
			return err
		}
		defer snap.Close()
		if o.verify {
			if err := snap.Validate(); err != nil {
				return err
			}
		}
		g = snap.Graph()
		fmt.Fprintf(stdout, "snapshot %s: %d vertices, %d edges, %d self-loops (opened in %v)\n",
			o.snapshot, g.NumVertices(), g.NumEdges(), g.NumSelfLoops(), time.Since(start).Round(time.Microsecond))
	} else {
		m, err := o.resolve()
		if err != nil {
			return err
		}
		g, err = m.Generate(r, nil)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "model %s(%s): %d vertices, %d edges, %d self-loops\n",
			m.Name(), m.Params(), g.NumVertices(), g.NumEdges(), g.NumSelfLoops())
	}
	return printStats(stdout, g, workers, r)
}

// printStats runs the measurement battery: every pass uses the
// partitioned/parallel accumulators, whose outputs are identical to
// the serial ones for any worker count.
func printStats(w io.Writer, g *graph.Graph, workers int, r *rng.RNG) error {
	n := g.NumVertices()
	if n == 0 {
		fmt.Fprintln(w, "empty graph")
		return nil
	}
	var par graph.BFSScratch

	labels := make([]int32, n+1)
	comps := graph.ComponentsParallelInto(g, labels, workers, &par)
	fmt.Fprintf(w, "connected components: %d\n", comps)

	degs := g.AppendDegrees(make([]int, 0, n))
	sum := stats.Summarize(stats.IntsToFloats(degs))
	fmt.Fprintf(w, "degree: mean %.2f  median %.0f  max %d\n", sum.Mean, sum.Median, g.MaxDegreeParallel(workers))
	maxIn := g.MaxInDegreeParallel(workers)
	fmt.Fprintf(w, "max indegree: %d (n^%.3f)\n", maxIn,
		math.Log(float64(maxIn))/math.Log(float64(n)))

	if fit, err := stats.FitPowerLawAuto(degs, 50); err == nil {
		fmt.Fprintf(w, "power-law tail fit: alpha %.3f ± %.3f (xmin %d, %d tail points, KS %.3f)\n",
			fit.Alpha, fit.StdErr, fit.Xmin, fit.NTail, fit.KS)
	} else {
		fmt.Fprintf(w, "power-law tail fit unavailable: %v\n", err)
	}

	dist := make([]int32, n+1)
	if comps == 1 {
		sources := make([]graph.Vertex, 8)
		for i := range sources {
			sources[i] = graph.Vertex(r.IntRange(1, n))
		}
		mean := graph.AverageDistanceSampledParallelInto(g, sources, dist, workers, &par)
		diam := graph.DoubleSweepLowerBoundParallelInto(g, sources[0], dist, workers, &par)
		fmt.Fprintf(w, "mean distance %.2f (%.2f·ln n), diameter >= %d\n",
			mean, mean/math.Log(float64(n)), diam)
	} else {
		sizes := graph.ComponentSizesFrom(g, labels, comps)
		giant := 0
		for _, s := range sizes {
			if s > giant {
				giant = s
			}
		}
		fmt.Fprintf(w, "giant component: %d vertices (%.1f%%)\n",
			giant, 100*float64(giant)/float64(n))
	}

	ccdf := stats.HistogramOfParallel(degs, workers).CCDF()
	fmt.Fprintln(w, "degree CCDF (value: fraction >= value):")
	step := len(ccdf)/10 + 1
	for i := 0; i < len(ccdf); i += step {
		fmt.Fprintf(w, "  %6d: %.5f\n", ccdf[i].X, ccdf[i].Frac)
	}
	return nil
}
