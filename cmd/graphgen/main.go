// Command graphgen generates a random graph from any model registered
// in the model registry (internal/model) and writes it as a portable
// edge list (see graph.WriteEdgeList for the format) and/or a binary
// CSR snapshot (see internal/graph snapshot format, DESIGN.md §8), so
// external tooling can consume the exact instances the experiments
// measure and genstats can measure giant graphs without re-parsing
// them.
//
// Usage:
//
//	graphgen -model mori -params n=4096,p=0.5,m=2 -o mori.edges
//	graphgen -model kleinberg -params l=64,r=2 -o grid.edges
//	graphgen -model config -params n=10000,k=2.3,giant=true -o overlay.edges
//	graphgen -model fitness -params n=10000,m=2 -seed 7
//	graphgen -model mori -params n=100000000,m=1 -snapshot mori.csr -threads 8
//	graphgen -list
//
// -params is a comma-separated name=value list validated against the
// chosen model's parameter table (missing parameters take their
// defaults); -list prints every registered model with its parameters
// and defaults. Adding a model to the registry makes it available here
// with no CLI changes.
//
// -snapshot freezes the generated graph straight into a binary CSR
// snapshot that graph.OpenSnapshot (and genstats -snapshot) serves
// back via mmap without parsing — the generate→freeze→measure pipeline
// never holds two graph copies. -threads bounds the process's CPU use
// (GOMAXPROCS); generation itself is inherently sequential for the
// evolving models, so the flag mostly matters when graphgen is one
// stage of a pipeline sharing a machine. Generation throughput
// (edges/sec) is reported on stderr for BENCH bookkeeping.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"scalefree/internal/graph"
	"scalefree/internal/model"
	"scalefree/internal/rng"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

// options is the parsed command line, separated from execution so the
// CLI test covers flag validation and model resolution without
// exec'ing the binary.
type options struct {
	model    string
	params   string
	seed     uint64
	out      string
	snapshot string
	threads  int
	list     bool
}

func parseOptions(args []string) (*options, error) {
	o := &options{}
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	fs.StringVar(&o.model, "model", "mori", "registered model name (see -list)")
	fs.StringVar(&o.params, "params", "", "comma-separated name=value model parameters (defaults otherwise)")
	fs.Uint64Var(&o.seed, "seed", 1, "seed")
	fs.StringVar(&o.out, "o", "", "text edge-list output file (default stdout unless -snapshot is given)")
	fs.StringVar(&o.snapshot, "snapshot", "", "binary CSR snapshot output file (mmap-able by genstats -snapshot)")
	fs.IntVar(&o.threads, "threads", 0, "GOMAXPROCS for this run (0 = all cores)")
	fs.BoolVar(&o.list, "list", false, "list registered models and their parameters, then exit")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if o.list && (o.params != "" || o.out != "" || o.snapshot != "") {
		return nil, fmt.Errorf("-list only prints the registry; it takes no -params, -o, or -snapshot")
	}
	if o.threads < 0 {
		return nil, fmt.Errorf("-threads %d is negative", o.threads)
	}
	return o, nil
}

// resolve instantiates the selected model, surfacing unknown names,
// unknown parameters, and out-of-range values as CLI errors.
func (o *options) resolve() (model.Model, error) {
	return model.New(o.model, o.params)
}

// listModels renders the registry: one line per model, one indented
// line per parameter, defaults in the same canonical form Params()
// encodes.
func listModels(w io.Writer) {
	for _, f := range model.Families() {
		fmt.Fprintf(w, "%s — %s\n", f.Name, f.Doc)
		for _, p := range f.Params {
			fmt.Fprintf(w, "  %-8s %s (default %s)\n", p.Name, p.Doc, p.DefaultString())
		}
	}
}

// run generates and emits the requested graph; the elapsed-time line
// on stderr is the only nondeterministic output.
//
//sf:wallclock — generation timing is reported to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	o, err := parseOptions(args)
	if err != nil {
		return err
	}
	if o.list {
		listModels(stdout)
		return nil
	}
	if o.threads > 0 {
		runtime.GOMAXPROCS(o.threads)
	}
	m, err := o.resolve()
	if err != nil {
		return err
	}
	start := time.Now()
	g, err := m.Generate(rng.New(o.seed), nil)
	if err != nil {
		return err
	}
	genTime := time.Since(start)

	if o.snapshot != "" {
		if err := graph.WriteSnapshotFile(o.snapshot, g); err != nil {
			return err
		}
	}
	// The text edge list goes to -o when asked for, to stdout only when
	// no snapshot was requested — a giant-graph run should not dump
	// hundreds of millions of text lines nobody asked for.
	if o.out != "" || o.snapshot == "" {
		w := stdout
		if o.out != "" {
			f, err := os.Create(o.out)
			if err != nil {
				return fmt.Errorf("creating %s: %w", o.out, err)
			}
			defer f.Close()
			w = f
		}
		if err := graph.WriteEdgeList(w, g); err != nil {
			return err
		}
	}
	eps := float64(g.NumEdges()) / genTime.Seconds()
	fmt.Fprintf(stderr, "graphgen: %s(%s): wrote %d vertices, %d edges (generated in %v, %.3g edges/sec)\n",
		m.Name(), m.Params(), g.NumVertices(), g.NumEdges(), genTime.Round(time.Millisecond), eps)
	return nil
}
