package model

import (
	"strings"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

// smallParams instantiates each family at a test-sized workload; every
// registered family must have an entry (the conformance test fails
// loudly otherwise, so adding a model forces a conformance row).
var smallParams = map[string]string{
	"mori":      "n=300,m=2,p=0.5",
	"cf":        "n=300,alpha=0.7",
	"ba":        "n=300,m=2",
	"config":    "n=300,k=2.3",
	"kleinberg": "l=16,r=2",
	"fitness":   "n=300,m=2,eta0=0.2",
	"geopa":     "n=300,m=2,r=0.25",
}

// steadyAllocBound pins each family's steady-state allocations per
// scratch-backed generation at the smallParams size. The evolving
// models with scratch generators are zero (cf pays an O(1) handful for
// its out-degree distribution tables); config and kleinberg have no
// scratch path yet, so their pins record the full per-generation cost
// — a regression doubling them should trip the bound.
var steadyAllocBound = map[string]float64{
	"mori":      0,
	"cf":        12,
	"ba":        0,
	"config":    64,
	"kleinberg": 1200,
	"fitness":   0,
	"geopa":     0,
}

// TestRegistryConformance is the registry's contract, checked for
// every registered family: deterministic generation (same seed →
// identical edge list, with and without scratch), scratch reuse within
// the family's allocation pin, and a canonical parameter encoding that
// round-trips through model.New.
func TestRegistryConformance(t *testing.T) {
	fams := Families()
	if len(fams) != 7 {
		t.Fatalf("registry has %d families, want 7 (five historical models + fitness + geopa)", len(fams))
	}
	for _, f := range fams {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			params, ok := smallParams[f.Name]
			if !ok {
				t.Fatalf("no smallParams entry for %s — add one (and a steadyAllocBound) when registering a model", f.Name)
			}
			bound, ok := steadyAllocBound[f.Name]
			if !ok {
				t.Fatalf("no steadyAllocBound entry for %s", f.Name)
			}
			m, err := New(f.Name, params)
			if err != nil {
				t.Fatal(err)
			}

			// Determinism: equal seeds yield identical edge lists,
			// scratch-free and scratch-backed alike.
			fresh, err := m.Generate(rng.New(42), nil)
			if err != nil {
				t.Fatal(err)
			}
			again, err := m.Generate(rng.New(42), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !graph.Equal(fresh, again) {
				t.Error("equal seeds yield different graphs")
			}
			var s Scratch
			scratched, err := m.Generate(rng.New(42), &s)
			if err != nil {
				t.Fatal(err)
			}
			if !graph.Equal(fresh, scratched) {
				t.Error("scratch-backed generation diverges from scratch-free")
			}

			// Scratch reuse: the steady state stays within the
			// family's allocation pin.
			r := rng.New(7)
			gen := func() {
				if _, err := m.Generate(r, &s); err != nil {
					t.Fatal(err)
				}
			}
			gen() // warm up
			if allocs := testing.AllocsPerRun(5, gen); allocs > bound {
				t.Errorf("steady-state generation allocates %v times per graph, pin is %v", allocs, bound)
			}

			// Canonical parameter encoding round-trips: parsing a
			// model's own Params reproduces it exactly.
			if m.Name() != f.Name {
				t.Errorf("Name() = %q, want %q", m.Name(), f.Name)
			}
			back, err := New(m.Name(), m.Params())
			if err != nil {
				t.Fatalf("canonical encoding %q does not re-parse: %v", m.Params(), err)
			}
			if back.Params() != m.Params() {
				t.Errorf("canonical encoding does not round-trip: %q -> %q", m.Params(), back.Params())
			}
			// And the round-tripped instance generates the same graph.
			rt, err := back.Generate(rng.New(42), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !graph.Equal(fresh, rt) {
				t.Error("round-tripped model generates a different graph")
			}

			// Defaults alone must build a valid model (the CLIs rely
			// on it).
			if _, err := New(f.Name, ""); err != nil {
				t.Errorf("defaults do not build: %v", err)
			}
		})
	}
}

// TestNewRejectsBadInput pins the parse/validation diagnostics the
// CLIs surface.
func TestNewRejectsBadInput(t *testing.T) {
	cases := []struct {
		name, params string
		want         string // substring of the diagnostic
	}{
		{"nosuch", "", "unknown model"},
		{"mori", "bogus=1", "no parameter"},
		{"mori", "p", "malformed"},
		{"mori", "p=", "malformed"},
		{"mori", "p=high", "not a number"},
		{"mori", "n=many", "not an integer"},
		{"mori", "n=2.5", "not an integer"},
		{"cf", "loops=maybe", "not a boolean"},
		{"mori", "p=2", "out of"},
		{"mori", "n=1", "< 2"},
		{"fitness", "eta0=0", "out of"},
		{"fitness", "eta0=1e-9", "floor"},
		{"geopa", "r=-1", "positive"},
		{"geopa", "r=0.001", "floor"},
		{"config", "k=0.5", "exceed 1"},
		{"kleinberg", "l=1", "< 2"},
	}
	for _, tc := range cases {
		_, err := New(tc.name, tc.params)
		if err == nil {
			t.Errorf("New(%q, %q) accepted invalid input", tc.name, tc.params)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("New(%q, %q) diagnostic %q does not mention %q", tc.name, tc.params, err, tc.want)
		}
	}

	// Unknown-model diagnostics list the registry so the operator can
	// self-serve.
	_, err := New("nosuch", "")
	if err == nil || !strings.Contains(err.Error(), "mori") || !strings.Contains(err.Error(), "fitness") {
		t.Errorf("unknown-model diagnostic %v does not list registered names", err)
	}
}

// TestParseNormalization: whitespace and empty segments are tolerated,
// defaults fill unset parameters, and canonical output is declaration-
// ordered regardless of input order.
func TestParseNormalization(t *testing.T) {
	a, err := New("mori", " p=0.25 , n=128 ")
	if err != nil {
		t.Fatal(err)
	}
	b, err := New("mori", "n=128,p=0.25")
	if err != nil {
		t.Fatal(err)
	}
	if a.Params() != b.Params() {
		t.Errorf("parameter order leaks into the canonical encoding: %q vs %q", a.Params(), b.Params())
	}
	if want := "n=128,m=1,p=0.25"; a.Params() != want {
		t.Errorf("canonical encoding = %q, want %q", a.Params(), want)
	}
}
