package search

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

// DegreeGreedyStrong is Adamic et al.'s high-degree search: at every
// step it requests the highest-degree vertex of the visible frontier
// (degrees of frontier vertices are known in the strong model). On
// power-law graphs with exponent 2 < k < 3 its expected cost scales as
// O(n^(2(1-2/k))), versus O(n^(3(1-2/k))) for the random walk —
// experiment E8 reproduces that separation.
type DegreeGreedyStrong struct{}

// NewDegreeGreedyStrong returns the strong-model high-degree searcher.
func NewDegreeGreedyStrong() *DegreeGreedyStrong { return &DegreeGreedyStrong{} }

// Name implements Algorithm.
func (*DegreeGreedyStrong) Name() string { return "degree-greedy-strong" }

// Knowledge implements Algorithm.
func (*DegreeGreedyStrong) Knowledge() Knowledge { return Strong }

// Search implements Algorithm.
func (*DegreeGreedyStrong) Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error) {
	if err := checkModel(NewDegreeGreedyStrong(), o); err != nil {
		return Result{}, err
	}
	return greedyStrong(o, maxRequests, func(v graph.Vertex, deg int) int64 {
		return -int64(deg)<<32 + int64(v)
	})
}

// IDGreedyStrong requests the visible vertex whose identity is closest
// to the target's — greedy routing on labels, the strong-model
// strategy that the paper's equivalence argument defeats.
type IDGreedyStrong struct{}

// NewIDGreedyStrong returns the strong-model identity-greedy searcher.
func NewIDGreedyStrong() *IDGreedyStrong { return &IDGreedyStrong{} }

// Name implements Algorithm.
func (*IDGreedyStrong) Name() string { return "id-greedy-strong" }

// Knowledge implements Algorithm.
func (*IDGreedyStrong) Knowledge() Knowledge { return Strong }

// Search implements Algorithm.
func (*IDGreedyStrong) Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error) {
	if err := checkModel(NewIDGreedyStrong(), o); err != nil {
		return Result{}, err
	}
	target := int64(o.Target())
	return greedyStrong(o, maxRequests, func(v graph.Vertex, deg int) int64 {
		d := int64(v) - target
		if d < 0 {
			d = -d
		}
		return d<<32 + int64(v)
	})
}

// greedyStrong repeatedly requests the visible vertex minimizing
// priority, with lazy invalidation of frontier entries that were
// requested meanwhile.
func greedyStrong(o *Oracle, maxRequests int, priority func(v graph.Vertex, deg int) int64) (Result, error) {
	type entry struct {
		prio int64
		v    graph.Vertex
	}
	h := newHeap(func(a, b entry) bool { return a.prio < b.prio })
	push := func(v graph.Vertex) {
		view, _ := o.ViewOf(v)
		h.Push(entry{priority(v, view.Degree), v})
	}
	push(o.Start())
	for !o.Found() && budgetLeft(o, maxRequests) {
		e, ok := h.Pop()
		if !ok {
			break // frontier empty: component exhausted
		}
		if !o.IsVisible(e.v) {
			continue // stale: already requested
		}
		neighbors, _, err := o.RequestVertex(e.v)
		if err != nil {
			return Result{}, err
		}
		for _, w := range neighbors {
			if o.IsVisible(w) {
				push(w)
			}
		}
	}
	return Result{Found: o.Found(), Requests: o.Requests()}, nil
}

// RandomWalkStrong is the random-walk baseline in the strong model: the
// walk moves to a uniformly random neighbor of the current vertex and
// requests it (for free when it was already discovered). It is the
// baseline strategy of Adamic et al.'s analysis.
type RandomWalkStrong struct{}

// NewRandomWalkStrong returns the strong-model random walk.
func NewRandomWalkStrong() *RandomWalkStrong { return &RandomWalkStrong{} }

// Name implements Algorithm.
func (*RandomWalkStrong) Name() string { return "random-walk-strong" }

// Knowledge implements Algorithm.
func (*RandomWalkStrong) Knowledge() Knowledge { return Strong }

// Search implements Algorithm.
func (*RandomWalkStrong) Search(o *Oracle, r *rng.RNG, maxRequests int) (Result, error) {
	if err := checkModel(NewRandomWalkStrong(), o); err != nil {
		return Result{}, err
	}
	cur := o.Start()
	if _, _, err := o.RequestVertex(cur); err != nil {
		return Result{}, err
	}
	for steps := 0; !o.Found() && budgetLeft(o, maxRequests) && steps < stepCap(maxRequests); steps++ {
		view, ok := o.ViewOf(cur)
		if !ok || view.Resolved == nil {
			return Result{}, fmt.Errorf("search: strong walk standing on unrequested vertex %d", cur)
		}
		if view.Degree == 0 {
			break
		}
		next := view.Resolved[r.Intn(view.Degree)]
		if _, _, err := o.RequestVertex(next); err != nil {
			return Result{}, err
		}
		cur = next
	}
	return Result{Found: o.Found(), Requests: o.Requests()}, nil
}
