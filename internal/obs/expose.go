// Prometheus text-format exposition (version 0.0.4). The format
// guarantees this file upholds:
//
//   - Stable ordering: metrics sort by name, vec children by label
//     value, so two scrapes of the same state are byte-identical —
//     what the golden test pins.
//   - Escaping: HELP strings escape backslash and newline; label
//     values additionally escape double quotes.
//   - Histogram semantics: _bucket series are cumulative over
//     increasing le, the +Inf bucket equals _count, and _sum carries
//     the running total of observed values.
package obs

import (
	"io"
	"math"
	"sort"
	"strconv"
)

// TextContentType is the Content-Type for /metrics responses.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WriteText renders every registered metric in Prometheus text format.
// The output is assembled in memory first (scrapes may allocate; hot
// paths never do) and written in one call.
func (r *Registry) WriteText(w io.Writer) error {
	_, ms := r.sortedNames()
	var b []byte
	for _, m := range ms {
		b = m.appendText(b)
	}
	_, err := w.Write(b)
	return err
}

func appendHeader(b []byte, d desc, typ string) []byte {
	b = append(b, "# HELP "...)
	b = append(b, d.name...)
	b = append(b, ' ')
	b = appendEscapedHelp(b, d.help)
	b = append(b, "\n# TYPE "...)
	b = append(b, d.name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	return b
}

// appendEscapedHelp escapes backslash and newline per the exposition
// grammar for HELP lines.
func appendEscapedHelp(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendEscapedLabel escapes backslash, newline, and double quote per
// the exposition grammar for label values.
func appendEscapedLabel(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		case '"':
			b = append(b, `\"`...)
		default:
			b = append(b, s[i])
		}
	}
	return b
}

// appendFloat renders a sample value the way Prometheus expects:
// shortest round-trip decimal, with +Inf/-Inf/NaN spelled out.
func appendFloat(b []byte, v float64) []byte {
	switch {
	case math.IsInf(v, +1):
		return append(b, "+Inf"...)
	case math.IsInf(v, -1):
		return append(b, "-Inf"...)
	case math.IsNaN(v):
		return append(b, "NaN"...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

func appendLabeledSample(b []byte, name, suffix, label, value string, renderVal func([]byte) []byte) []byte {
	b = append(b, name...)
	b = append(b, suffix...)
	if label != "" {
		b = append(b, '{')
		b = append(b, label...)
		b = append(b, `="`...)
		b = appendEscapedLabel(b, value)
		b = append(b, `"}`...)
	}
	b = append(b, ' ')
	b = renderVal(b)
	b = append(b, '\n')
	return b
}

func appendIntSample(b []byte, name, label, value string, v int64) []byte {
	return appendLabeledSample(b, name, "", label, value, func(b []byte) []byte {
		return strconv.AppendInt(b, v, 10)
	})
}

func (c *Counter) appendText(b []byte) []byte {
	b = appendHeader(b, c.d, "counter")
	return appendIntSample(b, c.d.name, "", "", c.v.Load())
}

func (g *Gauge) appendText(b []byte) []byte {
	b = appendHeader(b, g.d, "gauge")
	return appendIntSample(b, g.d.name, "", "", g.v.Load())
}

func (g *gaugeFunc) appendText(b []byte) []byte {
	b = appendHeader(b, g.d, "gauge")
	return appendLabeledSample(b, g.d.name, "", "", "", func(b []byte) []byte {
		return appendFloat(b, g.fn())
	})
}

func (m *infoMetric) appendText(b []byte) []byte {
	b = appendHeader(b, m.d, "gauge")
	b = append(b, m.d.name...)
	b = append(b, '{')
	for i, lv := range m.labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, lv[0]...)
		b = append(b, `="`...)
		b = appendEscapedLabel(b, lv[1])
		b = append(b, '"')
	}
	b = append(b, "} 1\n"...)
	return b
}

func (v *CounterVec) appendText(b []byte) []byte {
	b = appendHeader(b, v.d, "counter")
	for _, lv := range v.sortedValues() {
		v.mu.Lock()
		c := v.children[lv]
		v.mu.Unlock()
		b = appendIntSample(b, v.d.name, v.label, lv, c.Value())
	}
	return b
}

func (v *CounterVec) sortedValues() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.children))
	for lv := range v.children {
		vals = append(vals, lv)
	}
	sort.Strings(vals)
	return vals
}

func (h *Histogram) appendText(b []byte) []byte {
	b = appendHeader(b, h.d, "histogram")
	return h.appendSeries(b, h.d.name, "", "")
}

// appendSeries renders the _bucket/_sum/_count triplet, cumulative
// over increasing le, optionally tagged with one extra label.
func (h *Histogram) appendSeries(b []byte, name, label, value string) []byte {
	appendBucket := func(b []byte, le string, cum int64) []byte {
		b = append(b, name...)
		b = append(b, "_bucket{"...)
		if label != "" {
			b = append(b, label...)
			b = append(b, `="`...)
			b = appendEscapedLabel(b, value)
			b = append(b, `",`...)
		}
		b = append(b, `le="`...)
		b = append(b, le...)
		b = append(b, `"} `...)
		b = strconv.AppendInt(b, cum, 10)
		b = append(b, '\n')
		return b
	}
	var cum int64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		b = appendBucket(b, string(appendFloat(nil, ub)), cum)
	}
	cum += h.counts[len(h.upper)].Load()
	b = appendBucket(b, "+Inf", cum)
	b = appendLabeledSample(b, name, "_sum", label, value, func(b []byte) []byte {
		return appendFloat(b, h.sum.load())
	})
	// _count is rendered from the same bucket loads as +Inf, so the
	// "+Inf bucket == count" invariant holds even when observations
	// land mid-scrape.
	b = appendLabeledSample(b, name, "_count", label, value, func(b []byte) []byte {
		return strconv.AppendInt(b, cum, 10)
	})
	return b
}

func (v *HistogramVec) appendText(b []byte) []byte {
	b = appendHeader(b, v.d, "histogram")
	v.mu.Lock()
	vals := make([]string, 0, len(v.children))
	for lv := range v.children {
		vals = append(vals, lv)
	}
	sort.Strings(vals)
	hs := make([]*Histogram, len(vals))
	for i, lv := range vals {
		hs[i] = v.children[lv]
	}
	v.mu.Unlock()
	for i, lv := range vals {
		b = hs[i].appendSeries(b, v.d.name, v.label, lv)
	}
	return b
}
