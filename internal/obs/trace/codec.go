package trace

import (
	"encoding/binary"
	"fmt"
)

// Wire batch codec: the worker ships its span records to the
// coordinator hex-encoded on the COMPLETE line, so the format must be
// compact, line-safe, and truncatable without corruption. Layout:
//
//	byte 0        codec version (1)
//	per record    ph(1) tid(4 LE) ts(8 LE) id(8 LE)
//	              nameLen(2 LE) name  catLen(2 LE) cat  argLen(2 LE) arg
//
// Records are encoded oldest-first and truncated newest-first when the
// batch would exceed the wire budget; a truncated batch is a valid
// shorter batch (each record is self-delimiting), so decode never sees
// a torn record.

const codecVersion = 1

// recordOverhead is the fixed per-record encoding size.
const recordOverhead = 1 + 4 + 8 + 8 + 2 + 2 + 2

// EncodeBatch encodes records into at most max bytes, dropping the
// newest records that do not fit. It returns the encoding and the
// number of records dropped.
func EncodeBatch(recs []Record, max int) ([]byte, int) {
	if len(recs) == 0 || max < 1 {
		return nil, len(recs)
	}
	buf := make([]byte, 1, min(max, len(recs)*(recordOverhead+24)+1))
	buf[0] = codecVersion
	encoded := 0
	for _, rec := range recs {
		name, cat, arg := clip(rec.Name), clip(rec.Cat), clip(rec.Arg)
		need := recordOverhead + len(name) + len(cat) + len(arg)
		if len(buf)+need > max {
			break
		}
		buf = append(buf, rec.Ph)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(rec.TID))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rec.TS))
		buf = binary.LittleEndian.AppendUint64(buf, rec.ID)
		buf = appendString(buf, name)
		buf = appendString(buf, cat)
		buf = appendString(buf, arg)
		encoded++
	}
	return buf, len(recs) - encoded
}

// DecodeBatch parses an EncodeBatch payload.
func DecodeBatch(b []byte) ([]Record, error) {
	if len(b) == 0 {
		return nil, nil
	}
	if b[0] != codecVersion {
		return nil, fmt.Errorf("trace: batch codec version %d, want %d", b[0], codecVersion)
	}
	b = b[1:]
	var recs []Record
	for len(b) > 0 {
		if len(b) < recordOverhead-6 { // fixed header before the strings
			return nil, fmt.Errorf("trace: truncated record header (%d bytes left)", len(b))
		}
		var rec Record
		rec.Ph = b[0]
		rec.TID = int32(binary.LittleEndian.Uint32(b[1:5]))
		rec.TS = int64(binary.LittleEndian.Uint64(b[5:13]))
		rec.ID = binary.LittleEndian.Uint64(b[13:21])
		b = b[21:]
		var err error
		if rec.Name, b, err = takeString(b); err != nil {
			return nil, err
		}
		if rec.Cat, b, err = takeString(b); err != nil {
			return nil, err
		}
		if rec.Arg, b, err = takeString(b); err != nil {
			return nil, err
		}
		recs = append(recs, rec)
	}
	return recs, nil
}

func clip(s string) string {
	if len(s) > 0xffff {
		return s[:0xffff]
	}
	return s
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func takeString(b []byte) (string, []byte, error) {
	if len(b) < 2 {
		return "", nil, fmt.Errorf("trace: truncated string length")
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, fmt.Errorf("trace: truncated string (%d of %d bytes)", len(b), n)
	}
	return string(b[:n]), b[n:], nil
}
