package mori

import (
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

// graphsEqual compares two graphs edge by edge (same builder insertion
// order implies same EdgeIDs).
func graphsEqual(a, b *graph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for e := 0; e < a.NumEdges(); e++ {
		af, at := a.Endpoints(graph.EdgeID(e))
		bf, bt := b.Endpoints(graph.EdgeID(e))
		if af != bf || at != bt {
			return false
		}
	}
	return true
}

func TestGenerateScratchMatchesGenerate(t *testing.T) {
	cfg := Config{N: 150, M: 2, P: 0.6}
	var s Scratch
	for seed := uint64(1); seed <= 5; seed++ {
		want, err := cfg.Generate(rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		got, err := cfg.GenerateScratch(rng.New(seed), &s)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(want, got) {
			t.Fatalf("seed %d: scratch generation diverges from Generate", seed)
		}
	}
}

func TestGenerateTreeScratchMatchesGenerateTree(t *testing.T) {
	var s Scratch
	for seed := uint64(1); seed <= 5; seed++ {
		want, err := GenerateTree(rng.New(seed), 200, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GenerateTreeScratch(rng.New(seed), 200, 0.4, &s)
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= 200; k++ {
			if want.Fathers[k] != got.Fathers[k] {
				t.Fatalf("seed %d: fathers diverge at vertex %d", seed, k)
			}
		}
	}
}

// TestGenerateScratchAllocFree pins the steady state of the scratch
// path: after a warm-up generation, repeated same-size draws perform
// zero allocations.
func TestGenerateScratchAllocFree(t *testing.T) {
	cfg := Config{N: 500, M: 2, P: 0.5}
	var s Scratch
	r := rng.New(3)
	gen := func() {
		if _, err := cfg.GenerateScratch(r, &s); err != nil {
			t.Fatal(err)
		}
	}
	gen() // warm up the buffers
	if allocs := testing.AllocsPerRun(10, gen); allocs > 0 {
		t.Errorf("steady-state GenerateScratch allocates %v times per graph, want 0", allocs)
	}
}

// TestEndpointMatchesFenwickDistribution is the sampler-swap safety
// net: the O(1) endpoint-array generator and the O(log n) Fenwick
// reference must draw indegree distributions that a two-sample
// chi-square test cannot tell apart.
func TestEndpointMatchesFenwickDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution comparison is not short")
	}
	const (
		size = 400
		reps = 300
		bins = 7 // indegrees 0..5 and >= 6
	)
	for _, p := range []float64{0.3, 0.75, 1.0} {
		histEndpoint := make([]int, bins)
		histFenwick := make([]int, bins)
		for rep := 0; rep < reps; rep++ {
			te, err := GenerateTree(rng.New(rng.DeriveSeed(11, uint64(rep))), size, p)
			if err != nil {
				t.Fatal(err)
			}
			tf, err := GenerateTreeFenwick(rng.New(rng.DeriveSeed(12, uint64(rep))), size, p)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range te.InDegrees()[1:] {
				histEndpoint[min(d, bins-1)]++
			}
			for _, d := range tf.InDegrees()[1:] {
				histFenwick[min(d, bins-1)]++
			}
		}
		res, err := stats.ChiSquareTwoSample(histEndpoint, histFenwick)
		if err != nil {
			t.Fatal(err)
		}
		if res.PValue < 1e-3 {
			t.Errorf("p=%v: endpoint vs Fenwick indegree distributions differ: chi2=%.2f df=%d p-value=%g\nendpoint: %v\nfenwick:  %v",
				p, res.Statistic, res.DF, res.PValue, histEndpoint, histFenwick)
		}
	}
}
