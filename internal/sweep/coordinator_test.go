package sweep

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/rng"
)

func TestChunked(t *testing.T) {
	jobs := []CoordJob{
		{Job: Job{ExpID: "A", Fingerprint: "fa"}, Trials: makeTrials(10)},
		{Job: Job{ExpID: "B", Fingerprint: "fb"}, Trials: makeTrials(3)},
	}
	cs := chunked(jobs, 4)
	want := []chunk{{0, 0, 4}, {0, 4, 8}, {0, 8, 10}, {1, 0, 3}}
	if len(cs) != len(want) {
		t.Fatalf("chunked = %v, want %v", cs, want)
	}
	for i := range cs {
		if cs[i] != want[i] {
			t.Errorf("chunk %d = %v, want %v", i, cs[i], want[i])
		}
	}
	// Coverage: every trial of every job in exactly one chunk.
	seen := map[[2]int]int{}
	for _, c := range cs {
		for i := c.Lo; i < c.Hi; i++ {
			seen[[2]int{c.JobIdx, i}]++
		}
	}
	if len(seen) != 13 {
		t.Errorf("chunks cover %d trial slots, want 13", len(seen))
	}
}

func TestLeaseTableLifecycle(t *testing.T) {
	clock := time.Unix(5000, 0)
	lt := newLeaseTable([]chunk{{0, 0, 4}, {0, 4, 8}}, 10*time.Second)
	lt.now = func() time.Time { return clock }

	l1, ok := lt.Acquire("w1", 1)
	if !ok || l1.Chunk != (chunk{0, 0, 4}) {
		t.Fatalf("first acquire = %+v, %v", l1, ok)
	}
	l2, ok := lt.Acquire("w2", 2)
	if !ok || l2.Chunk != (chunk{0, 4, 8}) {
		t.Fatalf("second acquire = %+v, %v", l2, ok)
	}
	if _, ok := lt.Acquire("w3", 3); ok {
		t.Fatal("acquire succeeded with nothing pending")
	}

	// Heartbeats extend; an extended lease survives the original TTL.
	clock = clock.Add(8 * time.Second)
	if !lt.Heartbeat(l1.ID) {
		t.Fatal("heartbeat on a live lease failed")
	}
	clock = clock.Add(8 * time.Second) // l1 extended to 5016+10; l2 expired at 5010
	l3, ok := lt.Acquire("w3", 3)
	if !ok || l3.Chunk != l2.Chunk {
		t.Fatalf("expired lease not stolen: %+v, %v", l3, ok)
	}
	// The dead worker's late heartbeat reports the revocation.
	if lt.Heartbeat(l2.ID) {
		t.Error("heartbeat on a revoked lease succeeded")
	}

	if l, ok := lt.Complete(l1.ID); !ok || l.Chunk != l1.Chunk {
		t.Errorf("completing a live lease = %v, %v", l, ok)
	}
	if _, ok := lt.Complete(l1.ID); ok {
		t.Error("double-complete succeeded")
	}

	// A dropped connection returns its leases immediately.
	if n := lt.RevokeConn(3); n != 1 {
		t.Errorf("RevokeConn revoked %d leases, want 1", n)
	}
	l4, ok := lt.Acquire("w4", 4)
	if !ok || l4.Chunk != l2.Chunk {
		t.Fatalf("revoked chunk not reassigned: %+v, %v", l4, ok)
	}
	if lt.Idle() {
		t.Error("table idle with an active lease")
	}
	lt.Complete(l4.ID)
	if !lt.Idle() {
		t.Error("table not idle after all chunks completed")
	}
	// Requeue resurrects a chunk whose COMPLETE lacked coverage.
	lt.Requeue(l4.Chunk)
	if l5, ok := lt.Acquire("w5", 5); !ok || l5.Chunk != l4.Chunk {
		t.Errorf("requeued chunk not reacquirable: %+v, %v", l5, ok)
	}
}

// TestLeaseTableAvoidPreference: a chunk requeued after a worker's
// FAIL is withheld from that worker for one TTL — any other worker
// takes it immediately, and after the hold expires the failer itself
// gets it back (liveness for lone workers, without letting an idle
// faulty host outrace healthy-but-busy ones).
func TestLeaseTableAvoidPreference(t *testing.T) {
	clock := time.Unix(9000, 0)
	c1, c2 := chunk{0, 0, 4}, chunk{0, 4, 8}
	lt := newLeaseTable(nil, 10*time.Second)
	lt.now = func() time.Time { return clock }
	lt.RequeueAvoiding(c1, "w1")
	lt.Requeue(c2)

	// w1 skips its own failed chunk while an alternative is pending.
	l, ok := lt.Acquire("w1", 1)
	if !ok || l.Chunk != c2 {
		t.Fatalf("w1 acquired %+v, %v; want the non-avoided chunk %v", l.Chunk, ok, c2)
	}
	// With only its own failed chunk pending and the hold still live,
	// w1 waits instead of taking the retry back.
	if l, ok := lt.Acquire("w1", 1); ok {
		t.Fatalf("w1 acquired withheld chunk %+v", l.Chunk)
	}
	// A different worker takes the failed chunk without ceremony.
	l, ok = lt.Acquire("w2", 2)
	if !ok || l.Chunk != c1 {
		t.Fatalf("w2 acquired %+v, %v; want the avoided chunk %v", l.Chunk, ok, c1)
	}

	// Liveness: once the hold expires, a lone failer gets its chunk
	// back and can drive the retry to the second-failure verdict.
	lt2 := newLeaseTable(nil, 10*time.Second)
	lt2.now = func() time.Time { return clock }
	lt2.RequeueAvoiding(c1, "w1")
	if l, ok := lt2.Acquire("w1", 1); ok {
		t.Fatalf("w1 acquired withheld chunk %+v before the hold expired", l.Chunk)
	}
	clock = clock.Add(11 * time.Second)
	l, ok = lt2.Acquire("w1", 1)
	if !ok || l.Chunk != c1 {
		t.Fatalf("lone w1 acquired %+v, %v after the hold; want %v", l.Chunk, ok, c1)
	}
}

func TestWireMessages(t *testing.T) {
	lm := leaseMsg{ID: 7, ExpID: "E4", Fingerprint: "abc123", Lo: 8, Hi: 16}
	verb, fields := splitMsg(formatLease(lm))
	if verb != "LEASE" {
		t.Fatalf("verb = %q", verb)
	}
	got, err := parseLease(fields)
	if err != nil || got != lm {
		t.Fatalf("lease round trip = %+v, %v", got, err)
	}

	payload := []byte{0x00, 0xfe, 0x10}
	verb, fields = splitMsg(formatResult(9, "E2", 42, payload))
	if verb != "RESULT" {
		t.Fatalf("verb = %q", verb)
	}
	rm, err := parseResult(fields)
	if err != nil || rm.LeaseID != 9 || rm.ExpID != "E2" || rm.Index != 42 || string(rm.Payload) != string(payload) {
		t.Fatalf("result round trip = %+v, %v", rm, err)
	}

	msg := `a "quoted" message with spaces`
	_, fields = splitMsg("FAIL 3 " + quoteMsg(msg))
	if got := unquoteMsg(fields[1:]); got != msg {
		t.Errorf("unquoteMsg = %q, want %q", got, msg)
	}

	for _, bad := range [][]string{nil, {"x", "E1", "1", "00"}, {"1", "E1", "x", "00"}, {"1", "E1", "1", "zz"}, {"1", "2"}} {
		if _, err := parseResult(bad); err == nil {
			t.Errorf("parseResult(%v) succeeded", bad)
		}
	}
	if _, err := parseLease([]string{"1", "E1", "fp", "4", "2"}); err == nil {
		t.Error("parseLease accepted hi < lo")
	}
}

// coordFixture runs a coordinator over loopback for a single synthetic
// job and returns the address plus a channel carrying Coordinate's
// outcome.
type coordOutcome struct {
	results []map[int]any
	err     error
}

func startCoordinator(t *testing.T, jobs []CoordJob, opts CoordOptions) (addr string, outcome chan coordOutcome, cancel context.CancelFunc) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	outcome = make(chan coordOutcome, 1)
	go func() {
		res, err := Coordinate(ctx, lis, jobs, opts)
		outcome <- coordOutcome{res, err}
	}()
	return lis.Addr().String(), outcome, cancel
}

// countingResolver resolves the synthetic job and counts executed
// trials across all chunks.
func countingResolver(job Job, trials []engine.Trial, executed *atomic.Int64) WorkerJobResolver {
	return func(expID, fingerprint string) (*WorkerJob, error) {
		if expID != job.ExpID || fingerprint != job.Fingerprint {
			return nil, fmt.Errorf("unknown job %s/%s", expID, fingerprint)
		}
		return &WorkerJob{
			Trials: trials,
			Execute: func(ctx context.Context, sub []engine.Trial) (map[int]any, Stats, error) {
				return Execute(ctx, job, sub, engine.Options{Workers: 2}, nil, noScratch,
					func(ctx context.Context, tr engine.Trial, r *rng.RNG, s struct{}) (any, error) {
						executed.Add(1)
						return trialFn(ctx, tr, r, s)
					})
			},
		}, nil
	}
}

func checkResults(t *testing.T, trials []engine.Trial, results []map[int]any) {
	t.Helper()
	if len(results) != 1 {
		t.Fatalf("coordinator returned %d jobs", len(results))
	}
	if len(results[0]) != len(trials) {
		t.Fatalf("coordinator assembled %d of %d results", len(results[0]), len(trials))
	}
	for _, tr := range trials {
		if results[0][tr.Index] != float64(tr.Seed)*1.5 {
			t.Fatalf("trial %d: result %v", tr.Index, results[0][tr.Index])
		}
	}
}

func TestCoordinateSingleWorker(t *testing.T) {
	trials := makeTrials(21)
	job := testJob(trials)
	var completions atomic.Int64
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: 2 * time.Second,
			OnResult: func(worker, expID string, tr engine.Trial) { completions.Add(1) }})
	defer cancel()

	var executed atomic.Int64
	stats, err := RunWorker(context.Background(), addr, countingResolver(job, trials, &executed), WorkerOptions{Name: "solo"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Executed != 21 || executed.Load() != 21 {
		t.Errorf("worker stats %+v, executed %d; want 21", stats, executed.Load())
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)
	if completions.Load() != 21 {
		t.Errorf("OnResult fired %d times, want 21", completions.Load())
	}
}

func TestCoordinateManyWorkers(t *testing.T) {
	trials := makeTrials(60)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 5, LeaseTTL: 2 * time.Second})
	defer cancel()

	var executed atomic.Int64
	errs := make(chan error, 3)
	for w := 0; w < 3; w++ {
		go func(w int) {
			_, err := RunWorker(context.Background(), addr, countingResolver(job, trials, &executed),
				WorkerOptions{Name: fmt.Sprintf("w%d", w)})
			errs <- err
		}(w)
	}
	for w := 0; w < 3; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)
	// Live workers never contend for the same chunk, so nothing
	// re-executes.
	if executed.Load() != 60 {
		t.Errorf("3 live workers executed %d trials, want exactly 60", executed.Load())
	}
}

// deadWorker takes one lease by hand and then goes silent. close()
// simulates a crash the coordinator can observe as an EOF.
type deadWorker struct {
	t  *testing.T
	wc *wireConn
}

func dialDeadWorker(t *testing.T, addr, name string) *deadWorker {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wc := newWireConn(conn, 0)
	if err := wc.send("HELLO " + protoVersion + " " + name); err != nil {
		t.Fatal(err)
	}
	if line, err := wc.recv(); err != nil || !strings.HasPrefix(line, "OK") {
		t.Fatalf("handshake: %q, %v", line, err)
	}
	return &deadWorker{t: t, wc: wc}
}

func (d *deadWorker) takeLease() leaseMsg {
	d.t.Helper()
	if err := d.wc.send("NEXT"); err != nil {
		d.t.Fatal(err)
	}
	line, err := d.wc.recv()
	if err != nil {
		d.t.Fatal(err)
	}
	verb, fields := splitMsg(line)
	if verb != "LEASE" {
		d.t.Fatalf("NEXT reply = %q, want a lease", line)
	}
	m, err := parseLease(fields)
	if err != nil {
		d.t.Fatal(err)
	}
	return m
}

// TestCoordinateWorkerDisconnectReassigns: a worker that takes a chunk
// and drops its connection loses the lease immediately; a live worker
// steals the chunk and the sweep still assembles every result.
func TestCoordinateWorkerDisconnectReassigns(t *testing.T) {
	trials := makeTrials(24)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 6, LeaseTTL: time.Minute}) // TTL far longer than the test: only the EOF path can reassign
	defer cancel()

	dead := dialDeadWorker(t, addr, "doomed")
	m := dead.takeLease()
	if m.Hi-m.Lo != 6 {
		t.Fatalf("lease %+v, want a 6-trial chunk", m)
	}
	dead.wc.close() // crash: lease must return to the queue without waiting for the TTL

	var executed atomic.Int64
	stats, err := RunWorker(context.Background(), addr, countingResolver(job, trials, &executed), WorkerOptions{Name: "live"})
	if err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)
	// The dead worker executed nothing, so the live worker runs every
	// trial exactly once — the forfeited chunk is re-leased, not lost.
	if stats.Executed != 24 || executed.Load() != 24 {
		t.Errorf("live worker executed %d (stats %+v), want 24", executed.Load(), stats)
	}
}

// TestCoordinateLeaseExpiryStealsChunk: a worker that hangs without
// disconnecting (no heartbeats) forfeits its chunk after the TTL.
func TestCoordinateLeaseExpiryStealsChunk(t *testing.T) {
	trials := makeTrials(12)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: 150 * time.Millisecond, Linger: 100 * time.Millisecond})
	defer cancel()

	hung := dialDeadWorker(t, addr, "hung")
	defer hung.wc.close()
	m := hung.takeLease() // never pinged, never completed

	var executed atomic.Int64
	stats, err := RunWorker(context.Background(), addr, countingResolver(job, trials, &executed), WorkerOptions{Name: "live"})
	if err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)
	if executed.Load() != 12 {
		t.Errorf("executed %d trials, want 12 (stolen chunk [%d,%d) runs once)", executed.Load(), m.Lo, m.Hi)
	}
	_ = stats
}

// TestCoordinateLateDuplicateAccepted: a revoked worker that finishes
// anyway delivers results the coordinator accepts (content-addressed,
// byte-identical) without double-counting completions.
func TestCoordinateLateDuplicateAccepted(t *testing.T) {
	trials := makeTrials(8)
	job := testJob(trials)
	var completions atomic.Int64
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: 100 * time.Millisecond, Linger: time.Second,
			// The hand-driven slow worker goes silent past the default
			// wire deadline; keep its connection alive for the late
			// delivery under test.
			IOTimeout: time.Minute,
			OnResult:  func(worker, expID string, tr engine.Trial) { completions.Add(1) }})
	defer cancel()

	slow := dialDeadWorker(t, addr, "slow")
	defer slow.wc.close()
	m := slow.takeLease()
	time.Sleep(250 * time.Millisecond) // lease expires; chunk becomes stealable

	// The live worker completes the whole sweep, including the stolen
	// chunk.
	var executed atomic.Int64
	if _, err := RunWorker(context.Background(), addr, countingResolver(job, trials, &executed), WorkerOptions{Name: "live"}); err != nil {
		t.Fatal(err)
	}

	// Now the slow worker wakes up and delivers its (identical)
	// results late. The coordinator accepts the bytes and stays
	// converged.
	for i := m.Lo; i < m.Hi; i++ {
		payload, err := EncodeResult(float64(trials[i].Seed) * 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if err := slow.wc.buffer(formatResult(m.ID, job.ExpID, trials[i].Index, payload)); err != nil {
			t.Fatal(err)
		}
	}
	if err := slow.wc.send(fmt.Sprintf("COMPLETE %d", m.ID)); err != nil {
		t.Fatal(err)
	}
	if line, err := slow.wc.recv(); err != nil || line != "GONE" {
		t.Fatalf("late COMPLETE reply = %q, %v; want GONE", line, err)
	}

	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)
	if completions.Load() != 8 {
		t.Errorf("OnResult fired %d times, want 8 (duplicates must not re-fire)", completions.Load())
	}
}

// TestCoordinatePartialCompleteRequeues: a COMPLETE whose results did
// not all arrive (a worker violating the Execute contract) must not
// strand the chunk's undelivered trials — they return to the queue
// and the sweep still converges instead of hanging forever.
func TestCoordinatePartialCompleteRequeues(t *testing.T) {
	trials := makeTrials(8)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: time.Minute, Linger: time.Second})
	defer cancel()

	// A buggy worker: takes the first chunk, delivers only half of it,
	// then claims COMPLETE and disconnects.
	buggy := dialDeadWorker(t, addr, "buggy")
	m := buggy.takeLease()
	for i := m.Lo; i < m.Lo+2; i++ {
		payload, err := EncodeResult(float64(trials[i].Seed) * 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if err := buggy.wc.buffer(formatResult(m.ID, job.ExpID, trials[i].Index, payload)); err != nil {
			t.Fatal(err)
		}
	}
	if err := buggy.wc.send(fmt.Sprintf("COMPLETE %d", m.ID)); err != nil {
		t.Fatal(err)
	}
	if line, err := buggy.wc.recv(); err != nil || line != "OK" {
		t.Fatalf("COMPLETE reply = %q, %v", line, err)
	}
	buggy.wc.close()

	// An honest worker finishes the sweep, including the requeued
	// remainder of the buggy chunk.
	var executed atomic.Int64
	if _, err := RunWorker(context.Background(), addr, countingResolver(job, trials, &executed), WorkerOptions{Name: "honest"}); err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)
}

// TestCoordinateAbortReachesIdleWorkers: when a chunk's second failure
// aborts the sweep, a worker that contributed nothing to the failure
// must also exit with an error — not report success for a failed
// sweep.
func TestCoordinateAbortReachesIdleWorkers(t *testing.T) {
	trials := makeTrials(4)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: time.Minute, Linger: time.Second})
	defer cancel()

	// The first doomed worker takes the only chunk, so the bystander
	// worker that joins next idles in the WAIT/NEXT poll loop. The
	// bystander shares the failer's name, so after the FAIL below the
	// avoidance hold (one TTL = a minute here) deterministically keeps
	// it waiting instead of letting it race doomed2 for the re-queued
	// chunk.
	w := dialDeadWorker(t, addr, "doomed")
	defer w.wc.close()
	m := w.takeLease()
	innocent := make(chan error, 1)
	go func() {
		_, err := RunWorker(context.Background(), addr,
			countingResolver(job, trials, new(atomic.Int64)), WorkerOptions{Name: "doomed"})
		innocent <- err
	}()
	time.Sleep(100 * time.Millisecond) // let it connect and start polling

	if err := w.wc.send(fmt.Sprintf("FAIL %d %s", m.ID, quoteMsg("trial exploded"))); err != nil {
		t.Fatal(err)
	}
	if line, err := w.wc.recv(); err != nil || line != "OK" {
		t.Fatalf("FAIL reply = %q, %v", line, err)
	}
	// First failure re-leases instead of aborting; a second doomed
	// worker burns the retry and aborts the sweep.
	w2 := dialDeadWorker(t, addr, "doomed2")
	defer w2.wc.close()
	m2 := w2.takeLease()
	if err := w2.wc.send(fmt.Sprintf("FAIL %d %s", m2.ID, quoteMsg("trial exploded"))); err != nil {
		t.Fatal(err)
	}
	if line, err := w2.wc.recv(); err != nil || line != "OK" {
		t.Fatalf("second FAIL reply = %q, %v", line, err)
	}

	// The idle worker's next poll sees ABORT, not DONE: it must exit
	// with the sweep's failure, not report success.
	if err := <-innocent; err == nil || !strings.Contains(err.Error(), "trial exploded") {
		t.Fatalf("innocent worker err = %v, want the sweep's abort cause", err)
	}
	out := <-outcome
	if out.err == nil || !strings.Contains(out.err.Error(), "trial exploded") {
		t.Fatalf("coordinator err = %v", out.err)
	}
}

// TestCoordinateLateFailureAfterSuccess: once the sweep has finished
// with every trial's result in hand, a straggler's FAIL or REFUSE
// (e.g. the live holder of a stolen chunk erroring during the linger
// window) must not flip the outcome to an error — the result set is
// complete and content-verified.
func TestCoordinateLateFailureAfterSuccess(t *testing.T) {
	trials := makeTrials(4)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: 150 * time.Millisecond, Linger: time.Second})
	defer cancel()

	// The slow worker takes the only chunk and lets its lease expire.
	slow := dialDeadWorker(t, addr, "slow")
	defer slow.wc.close()
	m := slow.takeLease()
	time.Sleep(250 * time.Millisecond)

	// The thief takes the stolen chunk but the slow worker delivers
	// everything first: the sweep completes successfully.
	thief := dialDeadWorker(t, addr, "thief")
	defer thief.wc.close()
	m2 := thief.takeLease()
	if m2.Lo != m.Lo || m2.Hi != m.Hi {
		t.Fatalf("thief leased %+v, want the stolen chunk %+v", m2, m)
	}
	for i := m.Lo; i < m.Hi; i++ {
		payload, err := EncodeResult(float64(trials[i].Seed) * 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if err := slow.wc.buffer(formatResult(m.ID, job.ExpID, trials[i].Index, payload)); err != nil {
			t.Fatal(err)
		}
	}
	if err := slow.wc.send(fmt.Sprintf("COMPLETE %d", m.ID)); err != nil {
		t.Fatal(err)
	}
	if line, err := slow.wc.recv(); err != nil || line != "GONE" {
		t.Fatalf("late COMPLETE reply = %q, %v; want GONE", line, err)
	}

	// Now the thief fails its (pointless) lease. The sweep is already
	// done; the failure must be ignored on the coordinator side.
	if err := thief.wc.send(fmt.Sprintf("REFUSE %d %s", m2.ID, quoteMsg("too late to matter"))); err != nil {
		t.Fatal(err)
	}
	if line, err := thief.wc.recv(); err != nil || line != "OK" {
		t.Fatalf("late REFUSE reply = %q, %v", line, err)
	}

	out := <-outcome
	if out.err != nil {
		t.Fatalf("late failure flipped a completed sweep to error: %v", out.err)
	}
	checkResults(t, trials, out.results)
}

// TestCoordinateFailOnCoveredChunkIgnored: a FAIL for a chunk whose
// trials all hold results already (delivered late by the presumed-dead
// original holder) must neither requeue the chunk — that would
// guarantee duplicate re-execution — nor count toward its abort
// budget.
func TestCoordinateFailOnCoveredChunkIgnored(t *testing.T) {
	trials := makeTrials(8)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: 150 * time.Millisecond, Linger: time.Second})
	defer cancel()

	// The slow worker takes the first chunk and lets the lease expire;
	// the thief re-leases it.
	slow := dialDeadWorker(t, addr, "slow")
	defer slow.wc.close()
	m := slow.takeLease()
	time.Sleep(250 * time.Millisecond)
	thief := dialDeadWorker(t, addr, "thief")
	defer thief.wc.close()
	// The reclaimed chunk lands behind the never-leased one in the
	// queue, so the thief drains leases until it holds the stolen one
	// (its other lease is left to expire for the healthy worker).
	m2 := thief.takeLease()
	if m2.Lo != m.Lo || m2.Hi != m.Hi {
		m2 = thief.takeLease()
	}
	if m2.Lo != m.Lo || m2.Hi != m.Hi {
		t.Fatalf("thief leased %+v, want the stolen chunk %+v", m2, m)
	}

	// The slow worker delivers the whole chunk late — accepted by
	// content address — and then the thief's execution fails.
	for i := m.Lo; i < m.Hi; i++ {
		payload, err := EncodeResult(float64(trials[i].Seed) * 1.5)
		if err != nil {
			t.Fatal(err)
		}
		if err := slow.wc.buffer(formatResult(m.ID, job.ExpID, trials[i].Index, payload)); err != nil {
			t.Fatal(err)
		}
	}
	if err := slow.wc.send(fmt.Sprintf("COMPLETE %d", m.ID)); err != nil {
		t.Fatal(err)
	}
	if line, err := slow.wc.recv(); err != nil || line != "GONE" {
		t.Fatalf("late COMPLETE reply = %q, %v; want GONE", line, err)
	}
	if err := thief.wc.send(fmt.Sprintf("FAIL %d %s", m2.ID, quoteMsg("host fault on covered work"))); err != nil {
		t.Fatal(err)
	}
	if line, err := thief.wc.recv(); err != nil || line != "OK" {
		t.Fatalf("FAIL reply = %q, %v", line, err)
	}

	// A healthy worker finishes the sweep: only the second chunk's 4
	// trials execute — the covered chunk was not requeued.
	var executed atomic.Int64
	if _, err := RunWorker(context.Background(), addr, countingResolver(job, trials, &executed),
		WorkerOptions{Name: "healthy"}); err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatalf("sweep aborted on a covered chunk's failure: %v", out.err)
	}
	checkResults(t, trials, out.results)
	if executed.Load() != 4 {
		t.Errorf("executed %d trials, want 4 (the covered chunk must not re-run)", executed.Load())
	}
}

// TestWorkerHeartbeatLossIsFatalNotChunkFail: a connection loss during
// chunk execution is a transport fault, not a trial fault — with
// reconnection disabled (DialRetries < 0) the worker exits with the
// heartbeat cause and records no local chunk failure, leaving the
// chunk's retry budget untouched (the coordinator's disconnect
// reclaim requeues it).
func TestWorkerHeartbeatLossIsFatalNotChunkFail(t *testing.T) {
	trials := makeTrials(4)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: 200 * time.Millisecond, Linger: 10 * time.Millisecond})
	defer cancel()

	resolver := func(expID, fingerprint string) (*WorkerJob, error) {
		return &WorkerJob{
			Trials: trials,
			Execute: func(ctx context.Context, sub []engine.Trial) (map[int]any, Stats, error) {
				// Kill the coordinator mid-execution; once its linger
				// passes it closes the connection, the heartbeat errors,
				// and the execution context is cancelled with the
				// transport cause.
				cancel()
				<-ctx.Done()
				return nil, Stats{}, ctx.Err()
			},
		}, nil
	}
	_, err := RunWorker(context.Background(), addr, resolver,
		WorkerOptions{Name: "w", Heartbeat: 30 * time.Millisecond, DialRetries: -1})
	if err == nil || !strings.Contains(err.Error(), "heartbeat connection to coordinator lost") {
		t.Fatalf("worker err = %v, want the heartbeat transport cause", err)
	}
	if strings.Contains(err.Error(), "failed") {
		t.Fatalf("worker err %v misreports a transport loss as a chunk failure", err)
	}
	<-outcome // the cancelled coordinator's error is not under test
}

// TestCoordinateLateNondeterminismStillAborts: unlike a straggler's
// FAIL/REFUSE (ignored once the sweep has finished), a byte-mismatched
// duplicate arriving after completion must still abort — it proves a
// worker computed divergent results, casting doubt on everything it
// delivered first earlier in the sweep.
func TestCoordinateLateNondeterminismStillAborts(t *testing.T) {
	trials := makeTrials(4)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		// IOTimeout keeps the deliberately-silent worker's connection
		// alive past the default wire deadline for the late delivery.
		CoordOptions{ChunkSize: 4, LeaseTTL: 100 * time.Millisecond, Linger: time.Second, IOTimeout: time.Minute})
	defer cancel()

	slow := dialDeadWorker(t, addr, "slow")
	defer slow.wc.close()
	m := slow.takeLease()
	time.Sleep(200 * time.Millisecond) // lease expires; chunk becomes stealable

	// The live worker completes the whole sweep.
	if _, err := RunWorker(context.Background(), addr,
		countingResolver(job, trials, new(atomic.Int64)), WorkerOptions{Name: "live"}); err != nil {
		t.Fatal(err)
	}

	// The slow worker wakes up and delivers a divergent encoding for a
	// trial that already has a result.
	bad, err := EncodeResult(999.25)
	if err != nil {
		t.Fatal(err)
	}
	if err := slow.wc.send(formatResult(m.ID, job.ExpID, trials[0].Index, bad)); err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	if out.err == nil || !strings.Contains(out.err.Error(), "not deterministic") {
		t.Fatalf("coordinator err = %v, want the determinism violation even after completion", out.err)
	}
}

// TestCoordinateDetectsNondeterminism: two deliveries for one trial
// that disagree byte-for-byte abort the sweep — silent table
// corruption is the one unacceptable outcome.
func TestCoordinateDetectsNondeterminism(t *testing.T) {
	trials := makeTrials(4)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: time.Minute, Linger: 50 * time.Millisecond})
	defer cancel()

	w := dialDeadWorker(t, addr, "doomed")
	defer w.wc.close()
	m := w.takeLease()
	good, _ := EncodeResult(float64(trials[0].Seed) * 1.5)
	bad, _ := EncodeResult(999.25)
	if err := w.wc.send(formatResult(m.ID, job.ExpID, 0, good)); err != nil {
		t.Fatal(err)
	}
	if err := w.wc.send(formatResult(m.ID, job.ExpID, 0, bad)); err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	if out.err == nil || !strings.Contains(out.err.Error(), "not deterministic") {
		t.Fatalf("coordinator err = %v, want determinism violation", out.err)
	}
}

// TestCoordinateWorkerFailAborts: a deterministic trial error still
// kills the sweep with a single worker — the worker reports the
// chunk's failure, keeps serving, takes its own retry back once the
// avoidance hold (one TTL) expires, fails it again, and the second
// failure aborts. No operator intervention, no hang.
func TestCoordinateWorkerFailAborts(t *testing.T) {
	trials := makeTrials(10)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 10, LeaseTTL: 200 * time.Millisecond, Linger: 50 * time.Millisecond})
	defer cancel()

	attempts := 0
	resolver := func(expID, fingerprint string) (*WorkerJob, error) {
		return &WorkerJob{
			Trials: trials,
			Execute: func(ctx context.Context, sub []engine.Trial) (map[int]any, Stats, error) {
				attempts++
				return nil, Stats{}, fmt.Errorf("disk on fire")
			},
		}, nil
	}
	if _, err := RunWorker(context.Background(), addr, resolver, WorkerOptions{Name: "broken"}); err == nil ||
		!strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("failing worker err = %v, want the abort cause", err)
	}
	if attempts != 2 {
		t.Errorf("chunk executed %d times, want 2 (original + one retry)", attempts)
	}
	out := <-outcome
	if out.err == nil || !strings.Contains(out.err.Error(), "disk on fire") ||
		!strings.Contains(out.err.Error(), "already failed once") {
		t.Fatalf("coordinator err = %v, want the worker's failure after the burned retry", out.err)
	}
}

// TestWorkerContinuesAfterChunkFailure: a transient, host-local fault
// (first execution attempt fails, later ones succeed) costs one chunk
// retry: the worker reports FAIL, keeps serving the remaining chunks,
// takes the failed chunk back, completes it, and the sweep converges —
// while the worker itself exits nonzero so the flaky host is visible.
func TestWorkerContinuesAfterChunkFailure(t *testing.T) {
	trials := makeTrials(12)
	job := testJob(trials)
	// The short TTL lets the lone worker reclaim its failed chunk
	// quickly once the avoidance hold lapses.
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: 200 * time.Millisecond, Linger: time.Second})
	defer cancel()

	var executed atomic.Int64
	failedOnce := false
	resolver := func(expID, fingerprint string) (*WorkerJob, error) {
		return &WorkerJob{
			Trials: trials,
			Execute: func(ctx context.Context, sub []engine.Trial) (map[int]any, Stats, error) {
				if !failedOnce {
					failedOnce = true
					return nil, Stats{}, fmt.Errorf("transient host fault")
				}
				return Execute(ctx, job, sub, engine.Options{Workers: 2}, nil, noScratch,
					func(ctx context.Context, tr engine.Trial, r *rng.RNG, s struct{}) (any, error) {
						executed.Add(1)
						return trialFn(ctx, tr, r, s)
					})
			},
		}, nil
	}
	_, err := RunWorker(context.Background(), addr, resolver, WorkerOptions{Name: "flaky"})
	if err == nil || !strings.Contains(err.Error(), "failed 1 chunk") {
		t.Fatalf("flaky worker err = %v, want a completed-with-local-failures report", err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatalf("sweep aborted despite the successful retry: %v", out.err)
	}
	checkResults(t, trials, out.results)
	if executed.Load() != 12 {
		t.Errorf("executed %d trials, want 12 (the failed attempt ran none)", executed.Load())
	}
}

// TestCoordinateFailRetryDifferentWorker: one worker's trial failure
// does not abort the sweep — the chunk is re-leased, lands on the
// healthy worker (Acquire avoids the failer), and the sweep completes
// with every result intact.
func TestCoordinateFailRetryDifferentWorker(t *testing.T) {
	trials := makeTrials(8)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: time.Minute, Linger: time.Second})
	defer cancel()

	// The flaky worker takes the first chunk and reports a failure.
	flaky := dialDeadWorker(t, addr, "flaky")
	defer flaky.wc.close()
	m := flaky.takeLease()
	if err := flaky.wc.send(fmt.Sprintf("FAIL %d %s", m.ID, quoteMsg("transient host fault"))); err != nil {
		t.Fatal(err)
	}
	if line, err := flaky.wc.recv(); err != nil || line != "OK" {
		t.Fatalf("FAIL reply = %q, %v", line, err)
	}

	// The healthy worker finishes the sweep, including the re-leased
	// chunk, and the coordinator converges without an abort.
	var executed atomic.Int64
	stats, err := RunWorker(context.Background(), addr, countingResolver(job, trials, &executed),
		WorkerOptions{Name: "healthy"})
	if err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatalf("sweep aborted despite the retry: %v", out.err)
	}
	checkResults(t, trials, out.results)
	if stats.Executed != 8 || executed.Load() != 8 {
		t.Errorf("healthy worker executed %d trials (stats %+v), want all 8", executed.Load(), stats)
	}
}

// TestCoordinateMisconfiguredWorkerAborts: a worker planned under a
// different config cannot resolve the fingerprint; the REFUSE aborts
// the sweep immediately — configuration skew is systematic, so it
// burns no chunk retries and wastes no TTLs.
func TestCoordinateMisconfiguredWorkerAborts(t *testing.T) {
	trials := makeTrials(6)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 3, LeaseTTL: time.Minute, Linger: 50 * time.Millisecond})
	defer cancel()

	resolver := func(expID, fingerprint string) (*WorkerJob, error) {
		return nil, fmt.Errorf("plan fingerprint mismatch: ran with -scale 0.5")
	}
	if _, err := RunWorker(context.Background(), addr, resolver, WorkerOptions{Name: "skewed"}); err == nil {
		t.Fatal("misconfigured worker returned nil error")
	}
	out := <-outcome
	if out.err == nil || !strings.Contains(out.err.Error(), "fingerprint mismatch") {
		t.Fatalf("coordinator err = %v, want the mismatch", out.err)
	}
}

// TestCoordinateEmptyAndCancelled covers the degenerate edges.
func TestCoordinateEmptyAndCancelled(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Coordinate(context.Background(), lis,
		[]CoordJob{{Job: Job{ExpID: "A", Fingerprint: "f"}, Trials: nil}}, CoordOptions{})
	if err != nil || len(res) != 1 || len(res[0]) != 0 {
		t.Fatalf("empty sweep: %v, %v", res, err)
	}

	lis, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	trials := makeTrials(5)
	if _, err := Coordinate(ctx, lis, []CoordJob{{Job: testJob(trials), Trials: trials}},
		CoordOptions{Linger: 10 * time.Millisecond}); err == nil {
		t.Fatal("cancelled coordinate returned nil error")
	}

	// Malformed jobs are rejected up front.
	lis, err = net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	badTrials := makeTrials(3)
	badTrials[1].Index = 7
	if _, err := Coordinate(context.Background(), lis,
		[]CoordJob{{Job: Job{ExpID: "A", Fingerprint: "f"}, Trials: badTrials}}, CoordOptions{}); err == nil {
		t.Fatal("job with non-positional trials accepted")
	}
}
