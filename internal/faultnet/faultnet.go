// Package faultnet wraps net.Listener and net.Conn with deterministic,
// seed-scripted fault injection: delays, split ("partial") writes,
// connection resets, byte truncation, and one-way partitions. It
// exists to prove the sweep layer's robustness claims (DESIGN.md §6.6)
// under messy network conditions without flaky, timing-dependent
// tests: every fault a wrapped connection injects is drawn from an
// internal/rng stream derived from (seed, connection index, op
// counter), so a chaos run is reproducible from its seed alone — the
// same seed, protocol exchange, and fault profile yield the same
// injected fault schedule.
//
// The wrappers sit on the accept side (the coordinator's listener in
// the sweep tests and the -chaos CLI flag), where each connection is
// served by a single goroutine, so the per-connection draw order is
// exactly the protocol's request/response order. WrapConn serves
// dial-side or hand-built scenarios.
package faultnet

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"scalefree/internal/rng"
)

// Faults is one fault profile: per-operation probabilities plus the
// knobs that bound the chaos. The zero value injects nothing.
type Faults struct {
	// DelayProb is the chance each Read/Write sleeps first, for a
	// uniform duration in [0, DelayMax].
	DelayProb float64
	DelayMax  time.Duration
	// ResetProb is the chance each Read/Write instead closes the
	// connection and returns an error — the peer observes an abrupt
	// EOF/reset between messages.
	ResetProb float64
	// TruncateProb is the chance a Write delivers only a strict prefix
	// of its bytes before the connection dies — the peer's framing sees
	// a line cut mid-byte-stream.
	TruncateProb float64
	// PartitionProb is the chance a Read flips the connection into a
	// one-way partition: inbound data is consumed and discarded forever
	// (the peer's writes keep succeeding into the void) while this
	// side's own writes still flow. Only a read deadline or closing the
	// connection gets the reader back.
	PartitionProb float64
	// SplitWrites delivers every Write as several small underlying
	// writes, stressing the peer's reassembly of protocol lines. Splits
	// are not counted as injected faults — they are legal TCP behaviour
	// that a correct peer must absorb.
	SplitWrites bool
	// SkipOps exempts each connection's first SkipOps operations from
	// fault draws (splits and delays excepted), so a test can script
	// "partition mid-sweep, not at the handshake".
	SkipOps int
	// MaxFaults caps the total faults injected across the wrapper
	// (listener-wide); 0 means unlimited. A capped run eventually goes
	// quiet, guaranteeing a retrying peer converges.
	MaxFaults int64
}

// Default is the moderate profile the CI chaos-smoke job and the
// -chaos CLI flag use: frequent small delays, occasional resets and
// truncations, a rare one-way partition, and always-split writes,
// capped so the sweep converges.
func Default() Faults {
	return Faults{
		DelayProb:     0.10,
		DelayMax:      25 * time.Millisecond,
		ResetProb:     0.03,
		TruncateProb:  0.02,
		PartitionProb: 0.01,
		SplitWrites:   true,
		MaxFaults:     25,
	}
}

// Event describes one injected fault, structured for machine
// consumers (the -events JSONL log, fault counters). The printf Log
// hook remains the human-readable adapter over the same stream.
type Event struct {
	// Op is the fault kind: "reset", "truncation", or "partition".
	Op string
	// Conn is the connection's 1-based accept order (or 1 for
	// WrapConn).
	Conn uint64
	// Seq is the fault's 1-based position in the wrapper-wide injected
	// budget — chaos runs with the same seed replay the same sequence.
	Seq int64
}

// Listener wraps an inner listener so every accepted connection
// injects faults on the profile's schedule. Connection i (1-based
// accept order) draws from rng.New(rng.DeriveSeed(seed, i)), so the
// schedule is independent of accept timing.
type Listener struct {
	inner    net.Listener
	seed     uint64
	faults   Faults
	accepted atomic.Uint64
	injected atomic.Int64
	// Log, if set before serving, receives one line per injected fault.
	Log func(format string, args ...any)
	// OnEvent, if set before serving, receives one structured Event per
	// injected fault. Called from the faulting connection's goroutine —
	// keep it fast and never call back into the connection.
	OnEvent func(Event)
}

// Listen wraps lis with the fault profile, scripted from seed.
func Listen(lis net.Listener, seed uint64, f Faults) *Listener {
	return &Listener{inner: lis, seed: seed, faults: f}
}

// Accept wraps the next inner connection with its own fault schedule.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	idx := l.accepted.Add(1)
	return l.wrap(c, idx), nil
}

func (l *Listener) Addr() net.Addr { return l.inner.Addr() }
func (l *Listener) Close() error   { return l.inner.Close() }

// Injected reports how many faults the wrapper has injected so far —
// chaos tests assert it is nonzero, so a quiet profile cannot
// silently pass as a chaos run.
func (l *Listener) Injected() int64 { return l.injected.Load() }

func (l *Listener) wrap(c net.Conn, idx uint64) *Conn {
	fc := &Conn{
		Conn:   c,
		r:      rng.New(rng.DeriveSeed(l.seed, idx)),
		faults: l.faults,
		budget: &l.injected,
		max:    l.faults.MaxFaults,
	}
	fc.emit = func(op, detail string, seq int64) {
		if l.OnEvent != nil {
			l.OnEvent(Event{Op: op, Conn: idx, Seq: seq})
		}
		if l.Log != nil {
			l.Log("faultnet: conn %d: %s", idx, detail)
		}
	}
	return fc
}

// Conn is one fault-injecting connection. All fault draws come from
// its own RNG stream under a mutex, so concurrent Read/Write (legal on
// net.Conn) stay race-free; with the single-goroutine usage of the
// sweep protocol the draw order is fully deterministic.
type Conn struct {
	net.Conn
	mu          sync.Mutex
	r           *rng.RNG
	faults      Faults
	ops         int
	partitioned bool
	budget      *atomic.Int64 // shared injected-fault counter
	max         int64         // 0 = unlimited
	emit        func(op, detail string, seq int64)
}

// WrapConn wraps a single connection with its own fault schedule; conn
// index 1 of a fresh schedule seeded with seed.
func WrapConn(c net.Conn, seed uint64, f Faults) *Conn {
	return &Conn{
		Conn:   c,
		r:      rng.New(rng.DeriveSeed(seed, 1)),
		faults: f,
		budget: new(atomic.Int64),
		max:    f.MaxFaults,
		emit:   func(string, string, int64) {},
	}
}

// OnFault registers fn to receive each injected fault on this
// connection — the WrapConn counterpart of Listener.OnEvent (accepted
// connections report Conn index 1). Set before serving traffic.
func (c *Conn) OnFault(fn func(Event)) {
	prev := c.emit
	c.emit = func(op, detail string, seq int64) {
		fn(Event{Op: op, Conn: 1, Seq: seq})
		prev(op, detail, seq)
	}
}

// Injected reports the faults this connection's budget counter has
// recorded (shared across the listener for accepted connections).
func (c *Conn) Injected() int64 { return c.budget.Load() }

// spend claims one unit of the fault budget, returning the claimed
// sequence number; ok is false when the cap is exhausted and the fault
// must not fire.
func (c *Conn) spend() (seq int64, ok bool) {
	if c.max <= 0 {
		return c.budget.Add(1), true
	}
	for {
		cur := c.budget.Load()
		if cur >= c.max {
			return 0, false
		}
		if c.budget.CompareAndSwap(cur, cur+1) {
			return cur + 1, true
		}
	}
}

// plan draws this operation's fault decisions. Draw order is fixed
// (delay, then the op-specific faults) so the schedule depends only on
// the op sequence, not on which faults previously fired.
type opPlan struct {
	delay    time.Duration
	reset    bool
	truncate int // bytes to keep, -1 = no truncation
	part     bool
}

func (c *Conn) plan(write bool, n int) opPlan {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	p := opPlan{truncate: -1}
	if c.faults.DelayProb > 0 && c.r.Bernoulli(c.faults.DelayProb) {
		p.delay = time.Duration(c.r.Float64() * float64(c.faults.DelayMax))
	}
	if c.ops <= c.faults.SkipOps {
		return p
	}
	if c.faults.ResetProb > 0 && c.r.Bernoulli(c.faults.ResetProb) {
		p.reset = true
		return p
	}
	if write {
		if c.faults.TruncateProb > 0 && n > 1 && c.r.Bernoulli(c.faults.TruncateProb) {
			p.truncate = c.r.IntRange(0, n-1)
		}
	} else {
		if c.faults.PartitionProb > 0 && c.r.Bernoulli(c.faults.PartitionProb) {
			p.part = true
		}
	}
	return p
}

// errInjected is the error surfaced by an injected reset/truncation —
// a plain connection failure, deliberately not a timeout, so peers
// classify it like any peer-vanished error.
type errInjected struct{ what string }

func (e *errInjected) Error() string { return "faultnet: injected " + e.what }

func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	part := c.partitioned
	c.mu.Unlock()
	if part {
		return c.discard(p)
	}
	pl := c.plan(false, len(p))
	if pl.delay > 0 {
		time.Sleep(pl.delay)
	}
	if pl.reset {
		if seq, ok := c.spend(); ok {
			c.emit("reset", "read reset", seq)
			c.Conn.Close()
			return 0, &errInjected{what: "reset"}
		}
	}
	if pl.part {
		if seq, ok := c.spend(); ok {
			c.emit("partition", "one-way partition (inbound blackholed)", seq)
			c.mu.Lock()
			c.partitioned = true
			c.mu.Unlock()
			return c.discard(p)
		}
	}
	return c.Conn.Read(p)
}

// discard consumes and drops inbound data forever: the peer's writes
// succeed (TCP keeps ACKing) but nothing is ever delivered. The only
// exits are the connection closing or a read deadline expiring —
// exactly the hang a hung-peer deadline must bound.
func (c *Conn) discard(p []byte) (int, error) {
	buf := make([]byte, 4096)
	for {
		if _, err := c.Conn.Read(buf); err != nil {
			return 0, err
		}
	}
}

func (c *Conn) Write(p []byte) (int, error) {
	pl := c.plan(true, len(p))
	if pl.delay > 0 {
		time.Sleep(pl.delay)
	}
	if pl.reset {
		if seq, ok := c.spend(); ok {
			c.emit("reset", "write reset", seq)
			c.Conn.Close()
			return 0, &errInjected{what: "reset"}
		}
	}
	if pl.truncate >= 0 {
		if seq, ok := c.spend(); ok {
			c.emit("truncation", fmt.Sprintf("write truncated to %d of %d bytes", pl.truncate, len(p)), seq)
			n, _ := c.Conn.Write(p[:pl.truncate])
			c.Conn.Close()
			return n, &errInjected{what: "truncation"}
		}
	}
	if !c.faults.SplitWrites || len(p) <= 1 {
		return c.Conn.Write(p)
	}
	// Split the write into small chunks (sizes drawn from the same
	// stream), so one protocol line arrives as several TCP segments.
	written := 0
	for written < len(p) {
		c.mu.Lock()
		size := c.r.IntRange(1, 16)
		c.mu.Unlock()
		if size > len(p)-written {
			size = len(p) - written
		}
		n, err := c.Conn.Write(p[written : written+size])
		written += n
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
