package search

import (
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
)

// runOn builds an oracle for a's model and runs a on it.
func runOn(t *testing.T, a Algorithm, g *graph.Graph, start, target graph.Vertex, seed uint64, budget int) Result {
	t.Helper()
	o, err := NewOracle(g, start, target, a.Knowledge())
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Search(o, rng.New(seed), budget)
	if err != nil {
		t.Fatalf("%s: %v", a.Name(), err)
	}
	if res.Requests != o.Requests() {
		t.Fatalf("%s: result requests %d != oracle count %d", a.Name(), res.Requests, o.Requests())
	}
	if res.Found != o.Found() {
		t.Fatalf("%s: result found %v != oracle %v", a.Name(), res.Found, o.Found())
	}
	if res.Found {
		path, err := o.FoundPath()
		if err != nil {
			t.Fatalf("%s: FoundPath: %v", a.Name(), err)
		}
		assertValidPath(t, g, path, start, target)
	}
	return res
}

// assertValidPath checks that path is a genuine start→target walk in g.
func assertValidPath(t *testing.T, g *graph.Graph, path []graph.Vertex, start, target graph.Vertex) {
	t.Helper()
	if len(path) == 0 || path[0] != start || path[len(path)-1] != target {
		t.Fatalf("path %v does not link %d to %d", path, start, target)
	}
	for i := 1; i < len(path); i++ {
		adjacent := false
		for _, h := range g.Incident(path[i-1]) {
			if h.Other == path[i] {
				adjacent = true
				break
			}
		}
		if !adjacent {
			t.Fatalf("path %v has a non-edge %d-%d", path, path[i-1], path[i])
		}
	}
}

func allAlgorithms() []Algorithm {
	return append(WeakAlgorithms(), StrongAlgorithms()...)
}

func TestAllAlgorithmsFindTargetOnPath(t *testing.T) {
	g := pathGraph(12)
	for _, a := range allAlgorithms() {
		t.Run(a.Name(), func(t *testing.T) {
			res := runOn(t, a, g, 1, 12, 42, 0)
			if !res.Found {
				t.Fatalf("%s did not find the end of a 12-path", a.Name())
			}
			if res.Requests < 1 {
				t.Fatalf("%s found without requests", a.Name())
			}
		})
	}
}

func TestAllAlgorithmsFindTargetOnMoriGraph(t *testing.T) {
	tree, err := mori.GenerateTree(rng.New(5), 400, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	for _, a := range allAlgorithms() {
		t.Run(a.Name(), func(t *testing.T) {
			res := runOn(t, a, g, 1, 400, 7, 0)
			if !res.Found {
				t.Fatalf("%s failed on a connected Móri tree with unlimited budget", a.Name())
			}
		})
	}
}

func TestBudgetExhaustion(t *testing.T) {
	g := pathGraph(100)
	for _, a := range allAlgorithms() {
		t.Run(a.Name(), func(t *testing.T) {
			res := runOn(t, a, g, 1, 100, 3, 5)
			if res.Found {
				t.Fatalf("%s found target 99 hops away within 5 requests", a.Name())
			}
			if res.Requests > 5 {
				t.Fatalf("%s overspent: %d requests on budget 5", a.Name(), res.Requests)
			}
		})
	}
}

func TestWrongModelPairingErrors(t *testing.T) {
	g := pathGraph(4)
	weakOracle, err := NewOracle(g, 1, 4, Weak)
	if err != nil {
		t.Fatal(err)
	}
	strongOracle, err := NewOracle(g, 1, 4, Strong)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDegreeGreedyStrong().Search(weakOracle, rng.New(1), 10); err == nil {
		t.Error("strong algorithm accepted weak oracle")
	}
	if _, err := NewRandomWalk().Search(strongOracle, rng.New(1), 10); err == nil {
		t.Error("weak algorithm accepted strong oracle")
	}
}

func TestAlgorithmDeterminism(t *testing.T) {
	tree, err := mori.GenerateTree(rng.New(11), 300, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	for _, a := range allAlgorithms() {
		r1 := runOn(t, a, g, 1, 300, 99, 0)
		r2 := runOn(t, a, g, 1, 300, 99, 0)
		if r1 != r2 {
			t.Errorf("%s: same seed gave %+v then %+v", a.Name(), r1, r2)
		}
	}
}

func TestFloodCostEqualsEdgesOnPath(t *testing.T) {
	// Flood from one end of a path discovers the far end after exactly
	// n-1 requests (each edge revealed once).
	g := pathGraph(30)
	res := runOn(t, NewFlood(), g, 1, 30, 1, 0)
	if res.Requests != 29 {
		t.Errorf("flood requests = %d, want 29", res.Requests)
	}
}

func TestDegreeGreedyStrongOnStarIsInstant(t *testing.T) {
	// Start at a leaf: request it (1), request the hub (2) — target
	// visible. Adamic's strategy is optimal on stars.
	g := starGraph(50)
	res := runOn(t, NewDegreeGreedyStrong(), g, 2, 37, 3, 0)
	if res.Requests != 2 {
		t.Errorf("degree-greedy-strong on star took %d requests, want 2", res.Requests)
	}
}

func TestIDGreedyStrongPrefersCloseIDs(t *testing.T) {
	// Star where the target 37 is a leaf: after the hub is revealed,
	// id-greedy requests vertices by |id-37|, so it still finds it in 2
	// requests (target becomes visible with the hub's answer).
	g := starGraph(50)
	res := runOn(t, NewIDGreedyStrong(), g, 2, 37, 3, 0)
	if res.Requests != 2 {
		t.Errorf("id-greedy-strong on star took %d requests, want 2", res.Requests)
	}
}

func TestRandomWalkMakesProgressOnCycle(t *testing.T) {
	n := 20
	b := graph.NewBuilder(n, n)
	b.AddVertices(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.Vertex(v), graph.Vertex(v+1))
	}
	b.AddEdge(graph.Vertex(n), 1)
	g := b.Freeze()
	res := runOn(t, NewRandomWalk(), g, 1, 11, 13, 0)
	if !res.Found {
		t.Fatal("walk failed on a cycle with unlimited budget")
	}
}

func TestSelfAvoidingWalkBeatsPureWalkOnAverage(t *testing.T) {
	// Exploration bias should not be worse than the pure walk on a
	// fixed tree (averaged over seeds). This is a sanity check, not a
	// theorem, so the margin is generous.
	tree, err := mori.GenerateTree(rng.New(3), 600, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g := tree.Graph()
	var pure, avoiding int
	const reps = 40
	for i := uint64(0); i < reps; i++ {
		pure += runOn(t, NewRandomWalk(), g, 1, 600, 1000+i, 0).Requests
		avoiding += runOn(t, NewSelfAvoidingWalk(), g, 1, 600, 1000+i, 0).Requests
	}
	if float64(avoiding) > 1.5*float64(pure) {
		t.Errorf("self-avoiding walk (%d) much worse than pure walk (%d)", avoiding, pure)
	}
}

func TestHeapOrdering(t *testing.T) {
	h := newHeap(func(a, b int) bool { return a < b })
	for _, x := range []int{5, 1, 4, 1, 3, 9, 2} {
		h.Push(x)
	}
	want := []int{1, 1, 2, 3, 4, 5, 9}
	for _, w := range want {
		got, ok := h.Pop()
		if !ok || got != w {
			t.Fatalf("Pop = (%d, %v), want %d", got, ok, w)
		}
	}
	if _, ok := h.Pop(); ok {
		t.Fatal("Pop on empty heap reported ok")
	}
	if h.Len() != 0 {
		t.Fatalf("Len = %d", h.Len())
	}
}

func TestKnowledgeString(t *testing.T) {
	if Weak.String() != "weak" || Strong.String() != "strong" {
		t.Error("Knowledge.String names wrong")
	}
	if Knowledge(9).String() == "" {
		t.Error("unknown knowledge stringer empty")
	}
}
