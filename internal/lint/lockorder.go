package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder checks the package's declared mutex discipline. Mutex
// fields are named with //sf:mutex NAME; //sf:lockorder A B declares
// that A may be held when acquiring B (and therefore that acquiring A
// while holding B is an inversion). The analyzer walks every function
// with a held-lock set, resolves calls through the package-internal
// call graph — including indirect calls through func-typed struct
// fields, which is how the coordinator's onDrop callback runs under
// leases.mu — and reports: re-acquisition of a held lock
// (sync.Mutex self-deadlock), nesting against the declared order, and
// nesting of any pair with no declared order at all. Functions
// annotated //sf:locksequential may never hold two annotated locks
// simultaneously, by any order — the discipline CoordObserver.Snapshot
// documents.
//
// The walk is source-ordered and intraprocedural with transitive
// may-acquire summaries: a branch that unlocks and returns restores
// the held set for the code after it, deferred unlocks hold to the
// end of the function, and goroutine bodies are analyzed as separate
// roots (their locks are concurrent, not nested).
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "enforce //sf:lockorder declarations over //sf:mutex fields, through the " +
		"package call graph including func-field callbacks",
	Run: runLockOrder,
}

func runLockOrder(pass *Pass) error {
	if len(pass.Notes.Mutexes) == 0 {
		return nil
	}
	lo := &lockAnalysis{pass: pass}
	lo.collect()
	lo.summarize()
	for _, root := range lo.roots {
		w := &lockWalker{lo: lo, sequential: root.sequential, held: nil}
		w.block(root.body)
	}
	return nil
}

// lockAnalysis is the per-package state of one lockorder run.
type lockAnalysis struct {
	pass *Pass
	// decls maps a package function/method object to its body.
	decls map[*types.Func]*ast.BlockStmt
	// fieldFuncs maps a func-typed struct field to the bodies of every
	// function value assigned to it anywhere in the package.
	fieldFuncs map[types.Object][]*ast.BlockStmt
	// mayAcquire is the transitive lock summary per body.
	mayAcquire map[*ast.BlockStmt]map[string]bool
	// calls lists the bodies each body may invoke (same package).
	calls map[*ast.BlockStmt]map[*ast.BlockStmt]bool
	// roots are the independently walked units: every declared
	// function plus every function literal.
	roots []lockRoot
}

type lockRoot struct {
	body       *ast.BlockStmt
	sequential bool
}

// collect builds the call-graph inputs: declared bodies, func-field
// assignments, and the walk roots.
func (lo *lockAnalysis) collect() {
	lo.decls = map[*types.Func]*ast.BlockStmt{}
	lo.fieldFuncs = map[types.Object][]*ast.BlockStmt{}
	for _, file := range lo.pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := lo.pass.Info.Defs[fd.Name].(*types.Func); ok {
				lo.decls[fn] = fd.Body
			}
			lo.roots = append(lo.roots, lockRoot{body: fd.Body, sequential: lo.pass.Notes.SequentialFuncs[fd]})
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				lo.roots = append(lo.roots, lockRoot{body: n.Body})
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					lo.recordFieldFunc(lhs, n.Rhs[i])
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						lo.recordFieldFunc(kv.Key, kv.Value)
					}
				}
			}
			return true
		})
	}
}

// recordFieldFunc records rhs as a possible dynamic callee of the
// func-typed struct field lhs refers to.
func (lo *lockAnalysis) recordFieldFunc(lhs, rhs ast.Expr) {
	var fieldID *ast.Ident
	switch l := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		fieldID = l.Sel
	case *ast.Ident:
		fieldID = l
	default:
		return
	}
	obj := lo.pass.Info.Uses[fieldID]
	if obj == nil {
		obj = lo.pass.Info.Defs[fieldID]
	}
	v, ok := obj.(*types.Var)
	if !ok || !v.IsField() {
		return
	}
	if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
		return
	}
	switch r := ast.Unparen(rhs).(type) {
	case *ast.FuncLit:
		lo.fieldFuncs[v] = append(lo.fieldFuncs[v], r.Body)
	case *ast.Ident, *ast.SelectorExpr:
		if fn := lo.resolveFunc(r); fn != nil {
			if body, ok := lo.decls[fn]; ok {
				lo.fieldFuncs[v] = append(lo.fieldFuncs[v], body)
			}
		}
	}
}

func (lo *lockAnalysis) resolveFunc(e ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, _ := lo.pass.Info.Uses[id].(*types.Func)
	return fn
}

// mutexName resolves call to an annotated-mutex method; op is "Lock",
// "RLock", "Unlock", or "RUnlock".
func (lo *lockAnalysis) mutexName(call *ast.CallExpr) (name, op string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	inner, isSel := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj := lo.pass.Info.Uses[inner.Sel]
	if obj == nil {
		return "", "", false
	}
	n, annotated := lo.pass.Notes.Mutexes[obj]
	if !annotated {
		return "", "", false
	}
	return n, sel.Sel.Name, true
}

// summarize computes the transitive may-acquire sets by fixpoint over
// the package call graph.
func (lo *lockAnalysis) summarize() {
	lo.mayAcquire = map[*ast.BlockStmt]map[string]bool{}
	lo.calls = map[*ast.BlockStmt]map[*ast.BlockStmt]bool{}
	for _, root := range lo.roots {
		body := root.body
		acquires := map[string]bool{}
		callees := map[*ast.BlockStmt]bool{}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				// Goroutine locks run concurrently with the caller, not
				// nested under its held set; the goroutine body is its
				// own root.
				return false
			case *ast.FuncLit:
				if n.Body != body {
					// Nested literal: its locks surface at its own call
					// sites (or, when deferred/immediately invoked,
					// within this body's dynamic extent — still an
					// acquisition this call may perform, so include it).
					// Being stored for later is over-approximated the
					// same way; conservative for the checks we make.
					return true
				}
			case *ast.CallExpr:
				if name, op, ok := lo.mutexName(n); ok {
					if op == "Lock" || op == "RLock" {
						acquires[name] = true
					}
					return true
				}
				if fn := lo.resolveFunc(n.Fun); fn != nil {
					if calleeBody, ok := lo.decls[fn]; ok {
						callees[calleeBody] = true
					}
					return true
				}
				if bodies := lo.fieldCallees(n); bodies != nil {
					for _, b := range bodies {
						callees[b] = true
					}
				}
			}
			return true
		})
		lo.mayAcquire[body] = acquires
		lo.calls[body] = callees
	}
	for changed := true; changed; {
		changed = false
		for body, callees := range lo.calls {
			for callee := range callees {
				for name := range lo.mayAcquire[callee] {
					if !lo.mayAcquire[body][name] {
						lo.mayAcquire[body][name] = true
						changed = true
					}
				}
			}
		}
	}
}

// fieldCallees resolves an indirect call through a func-typed struct
// field to the function values assigned to that field in this package.
func (lo *lockAnalysis) fieldCallees(call *ast.CallExpr) []*ast.BlockStmt {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	obj := lo.pass.Info.Uses[sel.Sel]
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return lo.fieldFuncs[v]
	}
	return nil
}

// ordered reports whether holding `before` while acquiring `after` is
// a declared order.
func (lo *lockAnalysis) ordered(before, after string) bool {
	for _, p := range lo.pass.Notes.LockOrder {
		if p[0] == before && p[1] == after {
			return true
		}
	}
	return false
}

// lockWalker walks one function body in source order with a held set.
type lockWalker struct {
	lo         *lockAnalysis
	sequential bool
	held       []string
}

func (w *lockWalker) holds(name string) bool {
	for _, h := range w.held {
		if h == name {
			return true
		}
	}
	return false
}

func (w *lockWalker) release(name string) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == name {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

// checkAcquire validates taking lock `name` at pos against the held
// set; via describes an indirect acquisition ("via call to f").
func (w *lockWalker) checkAcquire(name string, pos token.Pos, via string) {
	pass := w.lo.pass
	if w.sequential && len(w.held) > 0 {
		pass.Reportf(pos, "//sf:locksequential function acquires %s%s while holding %s; this function must take its locks sequentially, never nested", name, via, w.held[len(w.held)-1])
		return
	}
	if w.holds(name) {
		pass.Reportf(pos, "%s acquired%s while already held (sync mutexes are not reentrant: self-deadlock)", name, via)
		return
	}
	for _, h := range w.held {
		if w.lo.ordered(h, name) {
			continue
		}
		if w.lo.ordered(name, h) {
			pass.Reportf(pos, "%s acquired%s while holding %s, inverting the declared //sf:lockorder %s %s", name, via, h, name, h)
		} else {
			pass.Reportf(pos, "%s acquired%s while holding %s with no declared //sf:lockorder between them", name, via, h)
		}
	}
}

func (w *lockWalker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		for _, e := range s.Lhs {
			w.expr(e)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.expr(s.Cond)
		w.branch(s.Body)
		if s.Else != nil {
			before := append([]string(nil), w.held...)
			w.stmt(s.Else)
			w.held = before
		}
	case *ast.BlockStmt:
		w.block(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.block(s.Body)
		if s.Post != nil {
			w.stmt(s.Post)
		}
	case *ast.RangeStmt:
		w.expr(s.X)
		w.block(s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		w.caseBodies(s.Body)
	case *ast.TypeSwitchStmt:
		w.caseBodies(s.Body)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				before := append([]string(nil), w.held...)
				for _, bs := range cc.Body {
					w.stmt(bs)
				}
				w.held = before
			}
		}
	case *ast.DeferStmt:
		// A deferred unlock releases at return: the lock stays held
		// for the remainder of the walk, which is exactly the deferred
		// semantics for nesting checks. Other deferred calls run
		// within this call's dynamic extent with whatever is still
		// held at return — conservatively checked against the current
		// held set.
		if name, op, ok := w.lo.mutexName(s.Call); ok {
			if op == "Lock" || op == "RLock" {
				w.checkAcquire(name, s.Call.Pos(), " (deferred)")
				w.held = append(w.held, name)
			}
			return
		}
		w.call(s.Call)
	case *ast.GoStmt:
		// The goroutine body runs concurrently; its locks are not
		// nested under ours. Its body is walked as an independent
		// root. Arguments are evaluated here, though.
		for _, a := range s.Call.Args {
			w.expr(a)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	}
}

// branch walks an if-body; when the branch terminates (return, panic,
// break, continue), the held set is restored afterwards — the code
// after the if only runs when the branch was not taken, so the
// early-exit `if bad { mu.Unlock(); return }` pattern keeps the lock
// held for the fallthrough path.
func (w *lockWalker) branch(b *ast.BlockStmt) {
	before := append([]string(nil), w.held...)
	w.block(b)
	if terminates(b) {
		w.held = before
	}
}

func (w *lockWalker) caseBodies(b *ast.BlockStmt) {
	for _, cc := range b.List {
		if cc, ok := cc.(*ast.CaseClause); ok {
			before := append([]string(nil), w.held...)
			for _, bs := range cc.Body {
				w.stmt(bs)
			}
			w.held = before
		}
	}
}

// terminates reports whether a block's last statement leaves the
// enclosing function or loop.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// expr walks an expression for calls, in source order, without
// descending into function literals (they are independent roots).
func (w *lockWalker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// Arguments and nested calls are visited by the ongoing
			// inspection; handle this call's lock effects.
			w.call(n)
		}
		return true
	})
}

// call applies one call's lock effects against the held set.
func (w *lockWalker) call(call *ast.CallExpr) {
	if name, op, ok := w.lo.mutexName(call); ok {
		switch op {
		case "Lock", "RLock":
			w.checkAcquire(name, call.Pos(), "")
			w.held = append(w.held, name)
		case "Unlock", "RUnlock":
			w.release(name)
		}
		return
	}
	var callees []*ast.BlockStmt
	if fn := w.lo.resolveFunc(call.Fun); fn != nil {
		if body, ok := w.lo.decls[fn]; ok {
			callees = append(callees, body)
		}
	} else if bodies := w.lo.fieldCallees(call); bodies != nil {
		callees = bodies
	}
	if len(w.held) == 0 && !w.sequential {
		return
	}
	for _, callee := range callees {
		for _, name := range sortedNames(w.lo.mayAcquire[callee]) {
			if w.sequential && len(w.held) == 0 {
				continue
			}
			w.checkAcquire(name, call.Pos(), " via "+calleeLabel(call))
		}
	}
}

func calleeLabel(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return "call to " + fun.Name
	case *ast.SelectorExpr:
		return "call to " + fun.Sel.Name
	}
	return "indirect call"
}

func sortedNames(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	// Deterministic reporting order: sflint's own output must honour
	// the invariants it checks.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
