package main

import (
	"path/filepath"
	"strings"
	"testing"

	"scalefree/internal/graph"
	"scalefree/internal/model"
	"scalefree/internal/rng"
)

// TestFlagValidation pins the CLI's rejection of bad flag combinations
// and model selections, mirroring cmd/graphgen's suite: every
// diagnostic must name the offending piece so the operator can
// self-serve from the error alone.
func TestFlagValidation(t *testing.T) {
	reject := []struct {
		name string
		args []string
		want string // substring of the diagnostic
	}{
		// -verify and -params only make sense against the right source.
		{"verify without snapshot", []string{"-verify"}, "-snapshot"},
		{"params with snapshot", []string{"-snapshot", "g.csr", "-params", "n=10"}, "-params"},

		// Unknown model names and bad parameters surface the registry's
		// own diagnostics.
		{"unknown model", []string{"-model", "watts-strogatz"}, "unknown model"},
		{"unknown param", []string{"-model", "mori", "-params", "alpha=0.5"}, "no parameter"},
		{"malformed pair", []string{"-model", "mori", "-params", "p"}, "malformed"},
		{"non-numeric float", []string{"-model", "mori", "-params", "p=high"}, "not a number"},
		{"mori p out of range", []string{"-model", "mori", "-params", "p=2"}, "out of"},
		{"fitness eta0 zero", []string{"-model", "fitness", "-params", "eta0=0"}, "out of"},

		// Thread counts must be sane.
		{"negative threads", []string{"-threads", "-4"}, "negative"},
	}
	for _, tc := range reject {
		t.Run(tc.name, func(t *testing.T) {
			o, err := parseOptions(tc.args)
			if err == nil && o.snapshot == "" {
				_, err = o.resolve()
			}
			if err == nil {
				t.Fatalf("args %v accepted", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("diagnostic %q does not mention %q", err, tc.want)
			}
		})
	}

	accept := [][]string{
		{},
		{"-model", "mori", "-params", "n=128,m=2,p=0.75", "-seed", "9"},
		{"-model", "fitness", "-params", "n=128,m=2,eta0=0.3", "-threads", "4"},
		{"-snapshot", "g.csr"},
		{"-snapshot", "g.csr", "-verify", "-threads", "2"},
	}
	for _, args := range accept {
		o, err := parseOptions(args)
		if err == nil && o.snapshot == "" {
			_, err = o.resolve()
		}
		if err != nil {
			t.Errorf("args %v rejected: %v", args, err)
		}
	}
}

// TestRunOnGeneratedModel runs the CLI end to end on a small generated
// instance: the report must carry the model banner and the full
// statistics battery.
func TestRunOnGeneratedModel(t *testing.T) {
	var stdout, stderr strings.Builder
	args := []string{"-model", "mori", "-params", "n=256,m=2,p=0.5", "-seed", "3"}
	if err := run(args, &stdout, &stderr); err != nil {
		t.Fatal(err)
	}
	out := stdout.String()
	for _, want := range []string{"model mori(", "256 vertices", "connected components:", "degree:", "max indegree:", "degree CCDF"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}

// TestRunOnSnapshot: measuring a snapshot must report the same
// statistics as measuring the generated graph directly — the mmap'd
// file stands in for the in-memory instance, statistic for statistic.
func TestRunOnSnapshot(t *testing.T) {
	m, err := model.New("mori", "n=256,m=2,p=0.5")
	if err != nil {
		t.Fatal(err)
	}
	g, err := m.Generate(rng.New(11), nil)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := graph.WriteSnapshotFile(path, g); err != nil {
		t.Fatal(err)
	}

	var direct, snapped strings.Builder
	if err := run([]string{"-model", "mori", "-params", "n=256,m=2,p=0.5", "-seed", "11"}, &direct, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-snapshot", path, "-seed", "11", "-verify"}, &snapped, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	// Drop the source banners (model vs snapshot line) and the sampled
	// distance line — its BFS sources come from the RNG stream, which
	// generation has already advanced in the direct run — and everything
	// left, the structural statistics, must match line for line.
	tail := func(s string) string {
		var keep []string
		for i, line := range strings.Split(s, "\n") {
			if i == 0 || strings.HasPrefix(line, "mean distance") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	if tail(direct.String()) != tail(snapped.String()) {
		t.Errorf("snapshot statistics diverge from direct generation:\n--- direct ---\n%s\n--- snapshot ---\n%s",
			tail(direct.String()), tail(snapped.String()))
	}

	// A missing snapshot is a run error, not a panic.
	if err := run([]string{"-snapshot", filepath.Join(t.TempDir(), "absent.csr")}, &strings.Builder{}, &strings.Builder{}); err == nil {
		t.Error("missing snapshot file accepted")
	}
}
