package sweep

import (
	"bufio"
	"encoding/hex"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"
)

// The coordinator wire protocol (DESIGN.md §6.4): a line-oriented
// exchange over one TCP connection per worker. Every message is a
// single '\n'-terminated line of space-separated fields; binary result
// payloads travel hex-encoded on the line, so the protocol stays
// printable end to end and a sweep can be debugged with netcat.
//
// Client (worker) lines:
//
//	HELLO SFCOORD4 <name> [<nonce-hex>]       open the session (nonce iff keyed)
//	AUTH <proof-hex>                          answer a CHAL challenge
//	NEXT                                      request a chunk lease
//	PING <leaseID>                            heartbeat while executing
//	RESULT <leaseID> <expID> <trialIdx> <hex> one trial's encoded result
//	COMPLETE <leaseID> [<trace-hex>]          all of the lease's results sent (+ the worker's span batch when traced)
//	FAIL <leaseID> <quoted-msg>               the chunk's execution failed (retriable: the chunk is re-leased once)
//	REFUSE <leaseID> <quoted-msg>             this worker cannot run the sweep at all (plan mismatch, codec failure — aborts immediately)
//
// Server (coordinator) lines:
//
//	OK [<heartbeat-millis>]           HELLO/AUTH/COMPLETE acknowledgement
//	CHAL <nonce-hex> <proof-hex>      auth challenge + coordinator's own proof
//	LEASE <id> <expID> <fp> <lo> <hi> [<trace-ctx>] a chunk: trials [lo,hi) of expID
//	WAIT <millis>                     nothing leasable now; poll again
//	DONE                              the sweep succeeded; disconnect
//	ABORT <quoted-msg>                the sweep failed; exit nonzero
//	GONE                              the lease was revoked (PING/COMPLETE)
//	ERR <quoted-msg>                  protocol failure; connection closes
//
// Exchange discipline: HELLO, AUTH, NEXT, PING, COMPLETE, FAIL and
// REFUSE are request/response (exactly one reply line each); RESULT
// lines are fire-and-forget so a worker streams a chunk's results
// without a round trip per trial — the COMPLETE that follows them is
// the synchronization point. Results are valid even when their lease
// was revoked: trials are pure and content-addressed, so the
// coordinator accepts the value and resolves the duplicate by
// comparing encoded bytes.
//
// Authentication (optional, shared-key HMAC, DESIGN.md §6.6): a keyed
// worker appends a random nonce to HELLO; a keyed coordinator answers
// CHAL carrying its own nonce plus HMAC(key, coordinator-label ‖
// worker-nonce) — proving it holds the key before the worker reveals
// anything — and the worker replies AUTH HMAC(key, worker-label ‖
// coordinator-nonce), acknowledged by the usual OK. Either side
// missing or failing its proof is rejected at the handshake with ERR,
// so mixed keyed/keyless fleets and wrong-key workers die loudly
// instead of running unauthenticated or hanging.
//
// SFCOORD1 → SFCOORD2: REFUSE was added and FAIL became retriable
// (re-lease once) instead of abort-the-sweep; mixed-version fleets
// must die at the handshake, not hang on an unknown verb or retry a
// systematic failure. SFCOORD2 → SFCOORD3: the CHAL/AUTH handshake
// extension and the HELLO nonce field (the handshake *sequence* is
// unchanged for keyless fleets, but deadline-hardened peers are not
// interoperable with SFCOORD2's unbounded blocking reads, so the
// version gate keeps mixed fleets out). SFCOORD3 → SFCOORD4: trace
// propagation — LEASE grew an optional trailing trace-context field
// (a hex span id; its presence is also the worker's signal that the
// sweep is traced, so workers need no tracing flag of their own) and
// COMPLETE grew an optional hex-encoded span batch
// (internal/obs/trace codec) carrying the worker's child spans back
// for the merged timeline. Old peers would reject the extra LEASE
// field, so the version gate bumps.
const protoVersion = "SFCOORD4"

// wireMaxLine bounds one protocol line. Encoded trial results are
// small (tens of bytes of struct fields, doubled by hex), so 1 MiB is
// generous headroom rather than a practical limit.
const wireMaxLine = 1 << 20

// wireConn frames a TCP connection into protocol lines. A nonzero
// timeout arms a fresh read/write deadline before every operation, so
// a hung peer (one-way partition, stalled TCP window) surfaces as a
// timeout error within one timeout period instead of blocking the
// handler goroutine forever — the bound that keeps a hung worker from
// outliving its lease TTL and a hung coordinator from pinning a
// worker.
type wireConn struct {
	conn    net.Conn
	r       *bufio.Scanner
	w       *bufio.Writer
	timeout time.Duration // per-operation deadline; 0 = block forever
}

func newWireConn(conn net.Conn, ioTimeout time.Duration) *wireConn {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), wireMaxLine)
	return &wireConn{conn: conn, r: sc, w: bufio.NewWriter(conn), timeout: ioTimeout}
}

// armWrite/armRead push the deadline forward before an operation; each
// message restarts the clock, so only a genuinely stalled peer trips
// it.
//
//sf:wallclock — connection deadlines are inherently wall-clock.
func (c *wireConn) armWrite() {
	if c.timeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	}
}

//sf:wallclock — connection deadlines are inherently wall-clock.
func (c *wireConn) armRead() {
	if c.timeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(c.timeout))
	}
}

// send writes one line and flushes it.
func (c *wireConn) send(line string) error {
	c.armWrite()
	if _, err := c.w.WriteString(line); err != nil {
		return err
	}
	if err := c.w.WriteByte('\n'); err != nil {
		return err
	}
	return c.w.Flush()
}

// buffer queues one line without flushing — used for RESULT streams,
// flushed by the COMPLETE that follows. The write deadline is armed
// anyway: a full bufio buffer flushes implicitly, and that hidden
// write must be bounded too.
func (c *wireConn) buffer(line string) error {
	c.armWrite()
	if _, err := c.w.WriteString(line); err != nil {
		return err
	}
	return c.w.WriteByte('\n')
}

// recv reads one line. An EOF or read error surfaces as-is; the
// caller decides whether a vanished peer is fatal.
func (c *wireConn) recv() (string, error) {
	c.armRead()
	if !c.r.Scan() {
		if err := c.r.Err(); err != nil {
			return "", err
		}
		return "", fmt.Errorf("sweep: connection closed")
	}
	return c.r.Text(), nil
}

func (c *wireConn) close() error { return c.conn.Close() }

// leaseMsg is the parsed form of a LEASE line.
type leaseMsg struct {
	ID          uint64
	ExpID       string
	Fingerprint string
	Lo, Hi      int // trial slice range [Lo,Hi) into the job's plan
	// Trace is the optional hex trace-context id (SFCOORD4): non-empty
	// iff the coordinator is tracing the sweep, in which case the
	// worker records its own spans and ships them on COMPLETE.
	Trace string
}

func formatLease(m leaseMsg) string {
	s := fmt.Sprintf("LEASE %d %s %s %d %d", m.ID, m.ExpID, m.Fingerprint, m.Lo, m.Hi)
	if m.Trace != "" {
		s += " " + m.Trace
	}
	return s
}

// resultMsg is the parsed form of a RESULT line. The experiment ID
// travels on every line (not just the lease) so a result from an
// already-revoked lease can still be routed to its job.
type resultMsg struct {
	LeaseID uint64
	ExpID   string
	Index   int
	Payload []byte
}

func formatResult(leaseID uint64, expID string, index int, payload []byte) string {
	return fmt.Sprintf("RESULT %d %s %d %s", leaseID, expID, index, hex.EncodeToString(payload))
}

// splitMsg splits a protocol line into its verb and fields.
func splitMsg(line string) (verb string, fields []string) {
	parts := strings.Fields(line)
	if len(parts) == 0 {
		return "", nil
	}
	return parts[0], parts[1:]
}

func parseLease(fields []string) (leaseMsg, error) {
	if len(fields) != 5 && len(fields) != 6 {
		return leaseMsg{}, fmt.Errorf("sweep: LEASE wants 5 or 6 fields, got %d", len(fields))
	}
	id, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return leaseMsg{}, fmt.Errorf("sweep: LEASE id: %v", err)
	}
	lo, err := strconv.Atoi(fields[3])
	if err != nil {
		return leaseMsg{}, fmt.Errorf("sweep: LEASE lo: %v", err)
	}
	hi, err := strconv.Atoi(fields[4])
	if err != nil {
		return leaseMsg{}, fmt.Errorf("sweep: LEASE hi: %v", err)
	}
	if lo < 0 || hi < lo {
		return leaseMsg{}, fmt.Errorf("sweep: LEASE range [%d,%d) invalid", lo, hi)
	}
	m := leaseMsg{ID: id, ExpID: fields[1], Fingerprint: fields[2], Lo: lo, Hi: hi}
	if len(fields) == 6 {
		m.Trace = fields[5]
	}
	return m, nil
}

func parseResult(fields []string) (resultMsg, error) {
	if len(fields) != 4 {
		return resultMsg{}, fmt.Errorf("sweep: RESULT wants 4 fields, got %d", len(fields))
	}
	id, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return resultMsg{}, fmt.Errorf("sweep: RESULT lease id: %v", err)
	}
	idx, err := strconv.Atoi(fields[2])
	if err != nil {
		return resultMsg{}, fmt.Errorf("sweep: RESULT trial index: %v", err)
	}
	payload, err := hex.DecodeString(fields[3])
	if err != nil {
		return resultMsg{}, fmt.Errorf("sweep: RESULT payload: %v", err)
	}
	return resultMsg{LeaseID: id, ExpID: fields[1], Index: idx, Payload: payload}, nil
}

// parseMillis parses the numeric field of WAIT and the optional
// heartbeat field of OK.
func parseMillis(field string) (time.Duration, error) {
	ms, err := strconv.Atoi(field)
	if err != nil || ms < 0 {
		return 0, fmt.Errorf("sweep: bad millisecond count %q", field)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// quoteMsg folds an error message onto one protocol line; unquoteMsg
// inverts it.
func quoteMsg(msg string) string { return strconv.Quote(msg) }

func unquoteMsg(fields []string) string {
	joined := strings.Join(fields, " ")
	if s, err := strconv.Unquote(joined); err == nil {
		return s
	}
	return joined
}

// parseID parses the lease-id field shared by PING/COMPLETE/FAIL/REFUSE.
func parseID(fields []string) (uint64, error) {
	if len(fields) < 1 {
		return 0, fmt.Errorf("sweep: missing lease id")
	}
	return strconv.ParseUint(fields[0], 10, 64)
}
