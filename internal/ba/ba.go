// Package ba implements the classic Barabási–Albert preferential
// attachment model with attachment proportional to total degree.
//
// The paper uses BA-style models as the contrast case for its strong-
// model bound: preferential attachment by total degree yields a maximum
// degree of order n^(1/2), which is *too large* for the strong-model
// reduction to bite (the paper's Conclusion), whereas the Móri model's
// maximum degree of order n^p (p < 1/2) keeps the bound non-trivial.
// Experiment E5 measures exactly this contrast.
//
// The generator uses the append-only endpoint-array trick: because BA
// attachment weights are exact degree counts, a uniform draw from the
// array of all edge endpoints is a draw proportional to total degree,
// giving O(1) per edge.
package ba

import (
	"fmt"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/weights"
)

// Config describes a Barabási–Albert graph.
type Config struct {
	N int // number of vertices, >= 2
	M int // edges added per new vertex, >= 1
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("ba: N = %d < 2", c.N)
	}
	if c.M < 1 {
		return fmt.Errorf("ba: M = %d < 1", c.M)
	}
	return nil
}

// numEdges is the exact final edge count: the seed loop plus M edges
// per later vertex.
func (c Config) numEdges() int { return 1 + c.M*(c.N-1) }

// Generate draws a BA graph: vertex 1 carries a seed self-loop, and
// every later vertex t attaches M edges to existing vertices chosen
// proportionally to total degree (multi-edges allowed, matching the
// Bollobás–Riordan formalization). The result is connected with
// 1 + M·(N-1) edges.
func (c Config) Generate(r *rng.RNG) (*graph.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(c.N, c.numEdges())
	c.generate(r, b, weights.NewEndpointArray(2*c.numEdges()))
	return b.Freeze(), nil
}

// Scratch holds the reusable buffers of one generation worker: the
// edge-list builder, its CSR snapshot, and the endpoint array. The
// zero value is ready to use; after a warm-up generation, repeated
// same-size GenerateScratch calls allocate nothing.
type Scratch struct {
	builder graph.Builder
	g       graph.Graph
	ends    weights.EndpointArray
}

// GenerateScratch is Generate drawing the identical distribution (and,
// for equal seeds, the identical graph) through s's reusable buffers.
// The returned graph aliases s and is valid until the next call with
// the same scratch; callers that outlive the scratch must use
// Generate.
func (c Config) GenerateScratch(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
	if s == nil {
		return c.Generate(r)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s.builder.Reset(c.N, c.numEdges())
	s.ends.Reset(2 * c.numEdges())
	c.generate(r, &s.builder, &s.ends)
	return s.builder.FreezeInto(&s.g), nil
}

// generate runs the attachment process into a freshly reset builder
// and endpoint array.
func (c Config) generate(r *rng.RNG, b *graph.Builder, ends *weights.EndpointArray) {
	b.AddVertex()
	b.AddEdge(1, 1)
	ends.Record(1)
	ends.Record(1)

	for t := 2; t <= c.N; t++ {
		v := b.AddVertex()
		for i := 0; i < c.M; i++ {
			// Sampling from the endpoint array *before* recording this
			// edge's own endpoints implements attachment proportional
			// to the degrees at the start of the step.
			w := graph.Vertex(ends.Sample(r))
			b.AddEdge(v, w)
		}
		// Record after all M draws so the M edges of one vertex are
		// exchangeable.
		for i := 0; i < c.M; i++ {
			e := graph.EdgeID(b.NumEdges() - c.M + i)
			from, to := b.Endpoints(e)
			ends.Record(int32(from))
			ends.Record(int32(to))
		}
	}
}
