package sweep

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/obs/trace"
	"scalefree/internal/rng"
)

// Job names the plan slice an execution belongs to: the experiment and
// the fingerprint of the full plan the trials were drawn from. Cache
// addressing and shard-file headers both derive from it.
type Job struct {
	ExpID       string
	Fingerprint string
}

// Stats summarizes one Execute call. Executed + CacheHits equals the
// number of trials requested when the run completes; on error or
// cancellation it counts what actually happened, which is what resume
// tests assert on.
type Stats struct {
	// Executed counts trials that ran to completion: their function
	// returned a result and, when a cache is attached, the result was
	// persisted. Trials skipped by cancellation or aborted by the
	// failing trial are not counted.
	Executed int
	// CacheHits counts trials satisfied from the cache without running.
	CacheHits int
}

func (s Stats) String() string {
	return fmt.Sprintf("%d executed, %d cached", s.Executed, s.CacheHits)
}

// Execute runs a subset of a plan's trials — possibly all of them, or
// one shard's Filter output — on the engine, consulting an optional
// content-addressed cache per trial. Results come back keyed by plan
// trial index, so callers reassemble positional slices regardless of
// which subset ran where.
//
// Cache reads happen before the engine starts: hits never occupy a
// worker and never appear in progress reporting (Progress.Total counts
// only trials that will actually run, keeping rate and ETA estimates
// honest). Cache writes happen inside the trial function, immediately
// after each trial completes — not after the run — so a cancelled
// sweep has persisted every finished trial and resumes exactly where
// it stopped. A failed cache write fails the trial: the caller asked
// for persistence, and a sweep that silently cannot resume is worse
// than a loud disk error.
//
// newScratch and fn follow engine.RunScratch's contract; fn's result
// must be a registered codec type whenever cache is non-nil.
//
//sf:wallclock — per-trial timing feeds the metrics registry only.
func Execute[S any](
	ctx context.Context,
	job Job,
	trials []engine.Trial,
	opts engine.Options,
	cache *Cache,
	newScratch func() S,
	fn func(ctx context.Context, t engine.Trial, r *rng.RNG, scratch S) (any, error),
) (map[int]any, Stats, error) {
	results := make(map[int]any, len(trials))
	var stats Stats

	run := trials
	if cache != nil {
		run = make([]engine.Trial, 0, len(trials))
		for _, t := range trials {
			if v, ok := lookupTrial(cache, job.ExpID, job.Fingerprint, t); ok {
				results[t.Index] = v
				stats.CacheHits++
				continue
			}
			run = append(run, t)
		}
		// Tag the timeline with the cache outcome for this batch: a
		// lease that resolved mostly from cache explains a short lease
		// span without guessing.
		if opts.Trace.Enabled() {
			opts.Trace.Emit(trace.Record{Ph: 'i', Name: "cache", Cat: "sweep",
				Arg: fmt.Sprintf("%s hits=%d misses=%d", job.ExpID, stats.CacheHits, len(run))})
		}
	}

	// Per-experiment instrumentation, resolved once per Execute call so
	// the hot path is a pure atomic add. Timing wraps only fn — the
	// latency histogram measures trial work, not cache persistence.
	var (
		trialsDone   = mTrialsCompleted.With(job.ExpID)
		trialsFailed = mTrialFailures.With(job.ExpID)
		trialSecs    = mTrialSeconds.With(job.ExpID)
	)
	var executed atomic.Int64
	wrapped := func(ctx context.Context, t engine.Trial, r *rng.RNG, scratch S) (any, error) {
		t0 := time.Now()
		v, err := fn(ctx, t, r, scratch)
		if err != nil {
			trialsFailed.Inc()
			return nil, err
		}
		trialSecs.ObserveDuration(time.Since(t0))
		if err := storeTrial(cache, job.ExpID, job.Fingerprint, t, v); err != nil {
			return nil, fmt.Errorf("caching result: %w", err)
		}
		executed.Add(1)
		trialsDone.Inc()
		return v, nil
	}
	ran, err := engine.RunScratch(ctx, run, opts, newScratch, wrapped)
	stats.Executed = int(executed.Load())
	if err != nil {
		// The engine returns no results on failure, but every trial
		// counted here completed (and, with a cache, was persisted)
		// before the cancellation — interruption tests assert on it.
		return nil, stats, err
	}
	for i, t := range run {
		results[t.Index] = ran[i]
	}
	return results, stats, nil
}
