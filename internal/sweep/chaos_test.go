package sweep

import (
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"scalefree/internal/engine"
	"scalefree/internal/faultnet"
)

// The chaos battery: the coordinator protocol under seed-scripted
// network faults. Every test here drives real TCP over loopback with
// internal/faultnet wrapping the coordinator's listener, and asserts
// the tentpole guarantee — the assembled result set is exactly what a
// clean run produces, because every fault is absorbed by one of the
// recovery layers (worker reconnect+backoff, wire deadlines,
// disconnect revoke, TTL steal, content-addressed duplicate
// resolution).

// startCoordinatorOn is startCoordinator over a caller-built listener
// (a faultnet wrapper in these tests).
func startCoordinatorOn(t *testing.T, lis net.Listener, jobs []CoordJob, opts CoordOptions) (outcome chan coordOutcome, cancel context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	outcome = make(chan coordOutcome, 1)
	go func() {
		res, err := Coordinate(ctx, lis, jobs, opts)
		outcome <- coordOutcome{res, err}
	}()
	return outcome, cancel
}

// chaosWorkerOptions is tuned for fault-heavy loopback tests: fast
// reconnects, a deep retry budget, and a tight wire deadline so a
// blackholed read resolves in tens of milliseconds instead of seconds.
func chaosWorkerOptions(name string) WorkerOptions {
	return WorkerOptions{
		Name:          name,
		DialRetries:   60,
		ReconnectBase: 5 * time.Millisecond,
		ReconnectMax:  100 * time.Millisecond,
		IOTimeout:     300 * time.Millisecond,
	}
}

// TestChaosSweepConverges: three workers under sustained injected
// resets, delays, truncations, split writes, and partitions still
// assemble the exact result set. The fault budget caps the chaos so
// the run converges; the Injected assertion keeps the test honest — a
// profile that fired nothing would be testing the clean path.
func TestChaosSweepConverges(t *testing.T) {
	trials := makeTrials(40)
	job := testJob(trials)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flis := faultnet.Listen(inner, 20260808, faultnet.Faults{
		DelayProb:     0.15,
		DelayMax:      5 * time.Millisecond,
		ResetProb:     0.08,
		TruncateProb:  0.05,
		PartitionProb: 0.02,
		SplitWrites:   true,
		MaxFaults:     30,
	})
	outcome, cancel := startCoordinatorOn(t, flis,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 3, LeaseTTL: 300 * time.Millisecond, Linger: 500 * time.Millisecond})
	defer cancel()

	var executed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Individual workers may exhaust their retry budget against
			// a listener that closed after the sweep finished; the
			// outcome check below is the correctness assertion.
			_, err := RunWorker(context.Background(), addrOf(flis), countingResolver(job, trials, &executed),
				chaosWorkerOptions(fmt.Sprintf("chaos-%d", w)))
			if err != nil {
				t.Logf("worker %d exited: %v", w, err)
			}
		}(w)
	}

	out := <-outcome
	wg.Wait()
	if out.err != nil {
		t.Fatalf("sweep under chaos failed: %v (injected %d faults)", out.err, flis.Injected())
	}
	checkResults(t, trials, out.results)
	if flis.Injected() == 0 {
		t.Error("fault profile injected nothing; the chaos run degenerated to the clean path")
	}
	if executed.Load() < int64(len(trials)) {
		t.Errorf("executed %d < %d trials yet the sweep converged", executed.Load(), len(trials))
	}
}

func addrOf(l net.Listener) string { return l.Addr().String() }

// TestChaosScriptedMidSweepPartition: exactly one fault — a one-way
// partition scripted to fire after the handshake, i.e. mid-sweep. The
// worker's wire deadline detects the blackhole, the session tears
// down and reconnects, the coordinator's TTL steal requeues the
// partitioned chunk, and the sweep converges with re-execution
// bounded to that single chunk.
func TestChaosScriptedMidSweepPartition(t *testing.T) {
	trials := makeTrials(12)
	job := testJob(trials)
	const chunkSize = 4
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	flis := faultnet.Listen(inner, 7, faultnet.Faults{
		PartitionProb: 1,
		SkipOps:       6, // let HELLO/OK/NEXT/LEASE through; partition mid-sweep
		MaxFaults:     1,
	})
	outcome, cancel := startCoordinatorOn(t, flis,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: chunkSize, LeaseTTL: 200 * time.Millisecond, Linger: 300 * time.Millisecond})
	defer cancel()

	var executed atomic.Int64
	stats, err := RunWorker(context.Background(), addrOf(flis),
		countingResolver(job, trials, &executed), chaosWorkerOptions("partitioned"))
	if err != nil {
		t.Fatalf("worker did not survive the partition: %v", err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)
	if flis.Injected() != 1 {
		t.Errorf("injected %d faults, want exactly the scripted partition", flis.Injected())
	}
	// Re-execution is bounded exactly as in the kill test: at most the
	// chunk in flight when the partition swallowed its delivery.
	if got := executed.Load(); got < int64(len(trials)) || got > int64(len(trials)+chunkSize) {
		t.Errorf("executed %d trials, want within [%d,%d]", got, len(trials), len(trials)+chunkSize)
	}
	_ = stats
}

// TestWorkerStartsBeforeCoordinator is the satellite regression: a
// worker whose first DialContext fails (the coordinator is merely
// slow to start) must keep retrying with backoff instead of exiting —
// the historical behaviour was an immediate fatal return.
func TestWorkerStartsBeforeCoordinator(t *testing.T) {
	trials := makeTrials(8)
	job := testJob(trials)

	// Reserve an address, then free it so the worker's first dials
	// fail against nothing listening.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()

	var executed atomic.Int64
	workerErr := make(chan error, 1)
	go func() {
		_, err := RunWorker(context.Background(), addr, countingResolver(job, trials, &executed),
			chaosWorkerOptions("early-bird"))
		workerErr <- err
	}()

	// Give the worker time to fail at least one dial, then bring the
	// coordinator up on the reserved address.
	time.Sleep(50 * time.Millisecond)
	var lis net.Listener
	for deadline := time.Now().Add(2 * time.Second); ; {
		lis, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	outcome, cancel := startCoordinatorOn(t, lis,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: time.Second})
	defer cancel()

	if err := <-workerErr; err != nil {
		t.Fatalf("early worker err = %v, want a finished sweep after reconnecting", err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)
	if executed.Load() != int64(len(trials)) {
		t.Errorf("executed %d trials, want %d", executed.Load(), len(trials))
	}
}

// TestWorkerReconnectsAfterCoordinatorRestart: the coordinator dies
// mid-sweep (cancelled abruptly, connections reset) and comes back on
// the same address; the worker rides its backoff loop through the
// outage and finishes the restarted sweep.
func TestWorkerReconnectsAfterCoordinatorRestart(t *testing.T) {
	trials := makeTrials(8)
	job := testJob(trials)
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis1.Addr().String()
	outcome1, cancel1 := startCoordinatorOn(t, lis1,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: 300 * time.Millisecond, Linger: 10 * time.Millisecond})
	defer cancel1()

	// The first chunk's execution parks until its context dies — which
	// happens when coordinator #1 is cancelled and the heartbeat
	// connection drops. Later chunks (after the restart) run normally.
	var parked atomic.Bool
	var executed atomic.Int64
	parkedOnce := make(chan struct{}, 1)
	resolver := func(expID, fingerprint string) (*WorkerJob, error) {
		return &WorkerJob{
			Trials: trials,
			Execute: func(ctx context.Context, sub []engine.Trial) (map[int]any, Stats, error) {
				if parked.CompareAndSwap(false, true) {
					parkedOnce <- struct{}{}
					<-ctx.Done()
					return nil, Stats{}, ctx.Err()
				}
				res := map[int]any{}
				for _, tr := range sub {
					executed.Add(1)
					res[tr.Index] = float64(tr.Seed) * 1.5
				}
				return res, Stats{Executed: len(sub)}, nil
			},
		}, nil
	}
	workerErr := make(chan error, 1)
	go func() {
		opts := chaosWorkerOptions("phoenix")
		opts.Heartbeat = 50 * time.Millisecond
		_, err := RunWorker(context.Background(), addr, resolver, opts)
		workerErr <- err
	}()

	<-parkedOnce // the worker holds a lease and is executing
	cancel1()    // coordinator #1 dies abruptly (no drain configured)
	if out := <-outcome1; out.err == nil {
		t.Fatal("cancelled coordinator #1 reported success")
	}

	// Restart on the same address while the worker is backing off.
	var lis2 net.Listener
	for deadline := time.Now().Add(2 * time.Second); ; {
		lis2, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	outcome2, cancel2 := startCoordinatorOn(t, lis2,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: time.Second})
	defer cancel2()

	if err := <-workerErr; err != nil {
		t.Fatalf("worker err = %v, want a finished sweep after the coordinator restart", err)
	}
	out := <-outcome2
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)
}

// Auth matrix: matched keys run; every mismatched configuration dies
// at the handshake with a diagnosable error on both ends, without
// burning reconnect retries on a failure that cannot heal.
func TestAuthMatchedKeysSweepCompletes(t *testing.T) {
	trials := makeTrials(8)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: time.Second, AuthKey: "correct horse"})
	defer cancel()

	var executed atomic.Int64
	opts := WorkerOptions{Name: "keyed", AuthKey: "correct horse"}
	if _, err := RunWorker(context.Background(), addr, countingResolver(job, trials, &executed), opts); err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)
}

func TestAuthRejectionMatrix(t *testing.T) {
	cases := []struct {
		name       string
		coordKey   string
		workerKey  string
		wantWorker string // substring of the worker's fatal error
		wantLog    string // substring of a coordinator log line ("" = none expected)
	}{
		{"wrong key", "correct horse", "battery staple",
			"shared-key proof", "proof mismatch"},
		{"keyless worker", "correct horse", "",
			"coordinator rejected handshake", "no nonce offered"},
		{"keyless coordinator", "", "correct horse",
			"coordinator has no key", "coordinator has no key"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trials := makeTrials(4)
			job := testJob(trials)
			var logMu sync.Mutex
			var logs []string
			addr, outcome, cancel := startCoordinator(t,
				[]CoordJob{{Job: job, Trials: trials}},
				CoordOptions{ChunkSize: 4, LeaseTTL: time.Second, AuthKey: tc.coordKey,
					Log: func(format string, args ...any) {
						logMu.Lock()
						logs = append(logs, fmt.Sprintf(format, args...))
						logMu.Unlock()
					}})
			defer cancel()

			start := time.Now()
			_, err := RunWorker(context.Background(), addr, countingResolver(job, trials, new(atomic.Int64)),
				WorkerOptions{Name: "mismatched", AuthKey: tc.workerKey})
			if err == nil || !strings.Contains(err.Error(), tc.wantWorker) {
				t.Fatalf("worker err = %v, want %q", err, tc.wantWorker)
			}
			// Handshake rejection is fatal, not retriable: no backoff
			// loop means the worker fails fast.
			if elapsed := time.Since(start); elapsed > 2*time.Second {
				t.Errorf("rejected worker took %v; a handshake rejection must not burn reconnect retries", elapsed)
			}
			if tc.wantLog != "" {
				logMu.Lock()
				joined := strings.Join(logs, "\n")
				logMu.Unlock()
				if !strings.Contains(joined, tc.wantLog) {
					t.Errorf("coordinator logs %q lack %q — the rejection must be diagnosable on the coordinator too", joined, tc.wantLog)
				}
			}

			// The coordinator survives the rejection; a correctly
			// configured worker still completes the sweep (keyed only
			// when the coordinator holds a key).
			if _, err := RunWorker(context.Background(), addr, countingResolver(job, trials, new(atomic.Int64)),
				WorkerOptions{Name: "healthy", AuthKey: tc.coordKey}); err != nil {
				t.Fatalf("healthy worker after rejection: %v", err)
			}
			out := <-outcome
			if out.err != nil {
				t.Fatal(out.err)
			}
			checkResults(t, trials, out.results)
		})
	}
}

// TestMixedVersionRejectedAtHandshake: an SFCOORD2-speaking worker
// dies at HELLO with the version named, not on a confusing later verb.
func TestMixedVersionRejectedAtHandshake(t *testing.T) {
	trials := makeTrials(4)
	job := testJob(trials)
	addr, outcome, cancel := startCoordinator(t,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: 4, LeaseTTL: time.Second})
	defer cancel()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wc := newWireConn(conn, 0)
	if err := wc.send("HELLO SFCOORD2 old-binary"); err != nil {
		t.Fatal(err)
	}
	line, err := wc.recv()
	if err != nil || !strings.HasPrefix(line, "ERR") || !strings.Contains(line, protoVersion) {
		t.Fatalf("old-version HELLO reply = %q, %v; want ERR naming %s", line, err, protoVersion)
	}
	wc.close()

	// And a verb before HELLO is refused — the handshake (and with it
	// authentication) cannot be skipped.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wc2 := newWireConn(conn2, 0)
	if err := wc2.send("NEXT"); err != nil {
		t.Fatal(err)
	}
	if line, err := wc2.recv(); err != nil || !strings.HasPrefix(line, "ERR") {
		t.Fatalf("pre-HELLO NEXT reply = %q, %v; want ERR", line, err)
	}
	wc2.close()

	if _, err := RunWorker(context.Background(), addr,
		countingResolver(job, trials, new(atomic.Int64)), WorkerOptions{Name: "current"}); err != nil {
		t.Fatal(err)
	}
	out := <-outcome
	if out.err != nil {
		t.Fatal(out.err)
	}
	checkResults(t, trials, out.results)
}

// TestCoordinateGracefulDrain: cancelling a draining coordinator lets
// the in-flight chunk land, passes everything completed to the Drain
// hook, and never issues a new lease after the cancellation.
func TestCoordinateGracefulDrain(t *testing.T) {
	trials := makeTrials(12)
	job := testJob(trials)
	const chunkSize = 4

	var drainMu sync.Mutex
	drained := map[int]any{}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	outcome, cancel := startCoordinatorOn(t, lis,
		[]CoordJob{{Job: job, Trials: trials}},
		CoordOptions{ChunkSize: chunkSize, LeaseTTL: 5 * time.Second, Linger: 100 * time.Millisecond,
			DrainTimeout: 5 * time.Second,
			Drain: func(jobIdx int, results map[int]any) {
				drainMu.Lock()
				defer drainMu.Unlock()
				if jobIdx != 0 {
					t.Errorf("Drain for job %d, want 0", jobIdx)
				}
				for i, v := range results {
					drained[i] = v
				}
			}})
	defer cancel()

	// The worker signals each chunk's start, then executes slowly
	// enough that the cancellation demonstrably lands mid-chunk.
	chunkStarted := make(chan struct{}, 8)
	resolver := func(expID, fingerprint string) (*WorkerJob, error) {
		return &WorkerJob{
			Trials: trials,
			Execute: func(ctx context.Context, sub []engine.Trial) (map[int]any, Stats, error) {
				chunkStarted <- struct{}{}
				select {
				case <-time.After(150 * time.Millisecond):
				case <-ctx.Done():
					return nil, Stats{}, ctx.Err()
				}
				res := map[int]any{}
				for _, tr := range sub {
					res[tr.Index] = float64(tr.Seed) * 1.5
				}
				return res, Stats{Executed: len(sub)}, nil
			},
		}, nil
	}
	workerErr := make(chan error, 1)
	go func() {
		_, err := RunWorker(context.Background(), addrOf(lis), resolver, WorkerOptions{Name: "drainee", DialRetries: -1})
		workerErr <- err
	}()

	<-chunkStarted // chunk 1 in flight
	<-chunkStarted // chunk 1 landed, chunk 2 in flight
	cancel()       // drain: chunk 2 may land, chunk 3 must never lease

	out := <-outcome
	if out.err == nil || out.err != context.Canceled {
		t.Fatalf("drained coordinator err = %v, want context.Canceled", out.err)
	}
	// The worker sees the post-drain ABORT (or the teardown); either
	// way it must not report success.
	if err := <-workerErr; err == nil {
		t.Error("worker reported success for a cancelled sweep")
	}

	drainMu.Lock()
	defer drainMu.Unlock()
	if len(drained) < chunkSize || len(drained) > 2*chunkSize {
		t.Fatalf("drain persisted %d results, want the landed chunks (between %d and %d)", len(drained), chunkSize, 2*chunkSize)
	}
	for i, v := range drained {
		if v != float64(trials[i].Seed)*1.5 {
			t.Errorf("drained trial %d = %v, want %v", i, v, float64(trials[i].Seed)*1.5)
		}
	}
}
