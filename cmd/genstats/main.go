// Command genstats generates one graph from a chosen model and prints
// its structural statistics: degree distribution with power-law fit,
// maximum degree, distances, and connectivity.
//
// Usage:
//
//	genstats -model mori -n 16384 -p 0.5 -m 1 [-seed 1]
//	genstats -model cf -n 16384 -alpha 0.8
//	genstats -model ba -n 16384 -m 2
//	genstats -model config -n 16384 -k 2.3
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"scalefree/internal/ba"
	"scalefree/internal/configmodel"
	"scalefree/internal/cooperfrieze"
	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "genstats:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		model = flag.String("model", "mori", "graph model: mori, cf, ba, config")
		n     = flag.Int("n", 16384, "number of vertices")
		p     = flag.Float64("p", 0.5, "mori: preferential mixing")
		m     = flag.Int("m", 1, "mori/ba: merge factor / edges per vertex")
		alpha = flag.Float64("alpha", 0.8, "cf: probability of procedure New")
		k     = flag.Float64("k", 2.3, "config: power-law exponent")
		seed  = flag.Uint64("seed", 1, "seed")
	)
	flag.Parse()

	r := rng.New(*seed)
	var g *graph.Graph
	var err error
	switch *model {
	case "mori":
		g, err = mori.Config{N: *n, M: *m, P: *p}.Generate(r)
	case "cf":
		var res *cooperfrieze.Result
		res, err = cooperfrieze.Config{N: *n, Alpha: *alpha, Beta: 0.5, Gamma: 0.5,
			Delta: 0.5, AllowLoops: true}.Generate(r)
		if err == nil {
			g = res.Graph
		}
	case "ba":
		g, err = ba.Config{N: *n, M: *m}.Generate(r)
	case "config":
		g, err = configmodel.Config{N: *n, Exponent: *k}.Generate(r)
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	if err != nil {
		return err
	}

	fmt.Printf("model %s: %d vertices, %d edges, %d self-loops\n",
		*model, g.NumVertices(), g.NumEdges(), g.NumSelfLoops())
	_, comps := graph.Components(g)
	fmt.Printf("connected components: %d\n", comps)

	degs := g.Degrees()[1:]
	sum := stats.Summarize(stats.IntsToFloats(degs))
	fmt.Printf("degree: mean %.2f  median %.0f  max %d\n", sum.Mean, sum.Median, g.MaxDegree())
	fmt.Printf("max indegree: %d (n^%.3f)\n", g.MaxInDegree(),
		math.Log(float64(g.MaxInDegree()))/math.Log(float64(g.NumVertices())))

	if fit, err := stats.FitPowerLawAuto(degs, 50); err == nil {
		fmt.Printf("power-law tail fit: alpha %.3f ± %.3f (xmin %d, %d tail points, KS %.3f)\n",
			fit.Alpha, fit.StdErr, fit.Xmin, fit.NTail, fit.KS)
	} else {
		fmt.Printf("power-law tail fit unavailable: %v\n", err)
	}

	if comps == 1 {
		sources := make([]graph.Vertex, 8)
		for i := range sources {
			sources[i] = graph.Vertex(r.IntRange(1, g.NumVertices()))
		}
		mean := graph.AverageDistanceSampled(g, sources)
		diam := graph.DoubleSweepLowerBound(g, sources[0])
		fmt.Printf("mean distance %.2f (%.2f·ln n), diameter >= %d\n",
			mean, mean/math.Log(float64(g.NumVertices())), diam)
	} else {
		sub, _ := graph.LargestComponent(g)
		fmt.Printf("giant component: %d vertices (%.1f%%)\n",
			sub.NumVertices(), 100*float64(sub.NumVertices())/float64(g.NumVertices()))
	}

	ccdf := stats.HistogramOf(degs).CCDF()
	fmt.Println("degree CCDF (value: fraction >= value):")
	step := len(ccdf)/10 + 1
	for i := 0; i < len(ccdf); i += step {
		fmt.Printf("  %6d: %.5f\n", ccdf[i].X, ccdf[i].Frac)
	}
	return nil
}
