package sweep

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"scalefree/internal/engine"
)

// WorkerJob is the worker-local counterpart of a CoordJob: the plan's
// trials plus an Execute closure that runs a subset of them through
// the caller's execution stack (engine options, scratch factory,
// result cache). Execute must honour sweep.Execute's semantics:
// results keyed by plan trial index, context cancellation respected.
type WorkerJob struct {
	Trials  []engine.Trial
	Execute func(ctx context.Context, trials []engine.Trial) (map[int]any, Stats, error)
}

// WorkerJobResolver maps a leased (experiment ID, plan fingerprint)
// onto the worker's local plan. Returning an error means the worker
// cannot run this sweep at all — wrong experiment selection, seed,
// scale, or binary revision — and aborts the sweep loudly on both
// sides rather than letting a misconfigured worker spin or, worse,
// compute under different parameters.
type WorkerJobResolver func(expID, fingerprint string) (*WorkerJob, error)

// WorkerOptions configures one RunWorker call.
type WorkerOptions struct {
	// Name identifies the worker in coordinator-side progress and
	// error messages; empty defaults to host:pid.
	Name string
	// Heartbeat overrides the coordinator-announced PING interval
	// (tests); <= 0 uses the announced value.
	Heartbeat time.Duration
	// Log, if non-nil, receives one line per lease processed.
	Log func(format string, args ...any)
}

// RunWorker connects to a coordinator, pulls chunk leases until the
// coordinator reports the sweep done, executes each chunk via the
// resolver's Execute closure, and streams encoded results back. While
// a chunk executes, a background heartbeat keeps its lease alive; if
// the coordinator reports the lease revoked (this worker was presumed
// dead and its chunk stolen), the chunk's execution is cancelled and
// abandoned without error — the thief delivers the results. The
// returned stats aggregate what this worker executed and what its
// local cache satisfied.
//
// A chunk whose execution fails is reported to the coordinator as
// FAIL (which re-leases it once, see Coordinate) and the worker keeps
// pulling further chunks — the retry needs a live worker to land on,
// and with a single worker that is this one. If the sweep still
// completes, RunWorker returns a non-nil error recording the local
// failures so the host shows up unhealthy; a resolver error (plan
// mismatch — this worker cannot run the sweep at all) is reported as
// REFUSE, which aborts the sweep immediately on both sides.
func RunWorker(ctx context.Context, addr string, resolve WorkerJobResolver, opts WorkerOptions) (Stats, error) {
	var stats Stats
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return stats, fmt.Errorf("sweep: worker connecting to %s: %w", addr, err)
	}
	wc := newWireConn(conn)
	defer wc.close()
	// Unblock any in-flight read when the caller cancels.
	stopWatch := context.AfterFunc(ctx, func() { conn.Close() })
	defer stopWatch()

	name := opts.Name
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if err := wc.send(fmt.Sprintf("HELLO %s %s", protoVersion, name)); err != nil {
		return stats, fmt.Errorf("sweep: worker handshake: %w", err)
	}
	line, err := wc.recv()
	if err != nil {
		return stats, fmt.Errorf("sweep: worker handshake: %w", err)
	}
	verb, fields := splitMsg(line)
	if verb != "OK" {
		return stats, fmt.Errorf("sweep: coordinator rejected handshake: %s", line)
	}
	heartbeat := opts.Heartbeat
	if heartbeat <= 0 && len(fields) > 0 {
		if hb, err := parseMillis(fields[0]); err == nil && hb > 0 {
			heartbeat = hb
		}
	}
	if heartbeat <= 0 {
		heartbeat = 3 * time.Second
	}

	var failed []*chunkFailure
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		if err := wc.send("NEXT"); err != nil {
			return stats, fmt.Errorf("sweep: worker requesting chunk: %w", err)
		}
		line, err := wc.recv()
		if err != nil {
			return stats, fmt.Errorf("sweep: worker requesting chunk: %w", err)
		}
		verb, fields := splitMsg(line)
		switch verb {
		case "DONE":
			if len(failed) > 0 {
				// The sweep converged (retries landed elsewhere, or a
				// later attempt here succeeded), but this host failed
				// chunks — exit nonzero so the machine gets looked at.
				return stats, fmt.Errorf("sweep: completed, but this worker failed %d chunk(s) locally (first: %v)",
					len(failed), failed[0])
			}
			return stats, nil
		case "ABORT":
			// The sweep failed elsewhere (another worker's trial error
			// or config skew); exit nonzero so this worker's machine
			// also shows the failure.
			return stats, fmt.Errorf("sweep: aborted: %s", unquoteMsg(fields))
		case "WAIT":
			if len(fields) != 1 {
				return stats, fmt.Errorf("sweep: malformed WAIT %q", line)
			}
			d, err := parseMillis(fields[0])
			if err != nil {
				return stats, err
			}
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(d):
			}
		case "LEASE":
			m, err := parseLease(fields)
			if err != nil {
				return stats, err
			}
			chunkStats, err := runLease(ctx, wc, m, resolve, heartbeat, opts.Log)
			stats.Executed += chunkStats.Executed
			stats.CacheHits += chunkStats.CacheHits
			if err != nil {
				var cf *chunkFailure
				if errors.As(err, &cf) {
					// The chunk's failure went to the coordinator as
					// FAIL; keep serving — the sweep continues until
					// the chunk's second failure, and the re-lease
					// needs a live worker.
					failed = append(failed, cf)
					continue
				}
				return stats, err
			}
		case "ERR":
			return stats, fmt.Errorf("sweep: coordinator: %s", unquoteMsg(fields))
		default:
			return stats, fmt.Errorf("sweep: unexpected coordinator reply %q", line)
		}
	}
}

// transportError marks a heartbeat send/recv failure: the connection
// to the coordinator is gone, which is fatal to this worker but must
// not be reported — or counted — as a chunk failure. The
// coordinator's disconnect/TTL reclaim requeues the chunk without
// debiting its one-retry budget; a network blip is not a trial fault.
type transportError struct{ err error }

func (e *transportError) Error() string { return e.err.Error() }
func (e *transportError) Unwrap() error { return e.err }

// chunkFailure is the worker-local record of one chunk whose
// execution failed: already reported to the coordinator as a
// retriable FAIL, and kept distinct from fatal errors so RunWorker
// continues serving other chunks.
type chunkFailure struct {
	expID  string
	lo, hi int
	err    error
}

func (c *chunkFailure) Error() string {
	return fmt.Sprintf("sweep: executing %s trials [%d,%d): %v", c.expID, c.lo, c.hi, c.err)
}

func (c *chunkFailure) Unwrap() error { return c.err }

// runLease executes one leased chunk and streams its results. A
// revoked lease (stolen chunk) is not an error: the work is abandoned
// and the caller polls for the next chunk. An execution failure comes
// back as a *chunkFailure (reported to the coordinator as FAIL,
// retriable); every other error is fatal to this worker.
func runLease(ctx context.Context, wc *wireConn, m leaseMsg, resolve WorkerJobResolver, heartbeat time.Duration, logf func(string, ...any)) (Stats, error) {
	job, err := resolve(m.ExpID, m.Fingerprint)
	if err == nil && m.Hi > len(job.Trials) {
		err = fmt.Errorf("lease range [%d,%d) exceeds local plan of %d trials", m.Lo, m.Hi, len(job.Trials))
	}
	if err != nil {
		// The coordinator must learn this worker cannot participate
		// at all — a plan mismatch is systematic, never chunk-local,
		// so REFUSE aborts the sweep instead of burning retries (a
		// silent exit would look like a death and waste a TTL).
		sendFail(wc, "REFUSE", m.ID, err)
		return Stats{}, fmt.Errorf("sweep: lease for %s: %w", m.ExpID, err)
	}
	trials := job.Trials[m.Lo:m.Hi]
	if logf != nil {
		logf("lease %d: %s trials [%d,%d)", m.ID, m.ExpID, m.Lo, m.Hi)
	}

	results, stats, err := executeWithHeartbeat(ctx, wc, m.ID, job, trials, heartbeat)
	if err != nil {
		if errors.Is(err, errLeaseRevoked) {
			if logf != nil {
				logf("lease %d revoked, chunk stolen", m.ID)
			}
			return stats, nil
		}
		if ctx.Err() != nil {
			return stats, ctx.Err()
		}
		var te *transportError
		if errors.As(err, &te) {
			// The connection broke mid-chunk: worker-fatal, but not a
			// chunk failure — the coordinator's disconnect/TTL reclaim
			// requeues the work without touching its retry budget, and
			// a FAIL could not be delivered anyway.
			return stats, fmt.Errorf("sweep: lease %d: heartbeat connection to coordinator lost: %w", m.ID, te.Unwrap())
		}
		sendFail(wc, "FAIL", m.ID, err)
		if logf != nil {
			logf("lease %d: %s trials [%d,%d) failed: %v", m.ID, m.ExpID, m.Lo, m.Hi, err)
		}
		return stats, &chunkFailure{expID: m.ExpID, lo: m.Lo, hi: m.Hi, err: err}
	}

	// Stream the chunk's results in index order (determinism of the
	// wire stream itself is not required — results land positionally —
	// but ordered streams make captures diffable), then synchronize on
	// COMPLETE's acknowledgement.
	idxs := make([]int, 0, len(results))
	for i := range results {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		payload, err := EncodeResult(results[i])
		if err != nil {
			// An unencodable result is a binary-level bug (unregistered
			// type), identical on every worker — abort, don't retry.
			sendFail(wc, "REFUSE", m.ID, err)
			return stats, fmt.Errorf("sweep: encoding %s trial %d: %w", m.ExpID, i, err)
		}
		if err := wc.buffer(formatResult(m.ID, m.ExpID, i, payload)); err != nil {
			return stats, fmt.Errorf("sweep: streaming results: %w", err)
		}
	}
	if err := wc.send(fmt.Sprintf("COMPLETE %d", m.ID)); err != nil {
		return stats, fmt.Errorf("sweep: completing lease: %w", err)
	}
	line, err := wc.recv()
	if err != nil {
		return stats, fmt.Errorf("sweep: completing lease: %w", err)
	}
	switch verb, fields := splitMsg(line); verb {
	case "OK", "GONE": // GONE: lease was stolen but the results were accepted
		return stats, nil
	case "ERR":
		return stats, fmt.Errorf("sweep: coordinator: %s", unquoteMsg(fields))
	default:
		return stats, fmt.Errorf("sweep: unexpected COMPLETE reply %q", line)
	}
}

// executeWithHeartbeat runs the chunk while a background goroutine
// owns the connection, pinging the lease every interval. The two
// goroutines never touch the connection concurrently: the main
// goroutine is inside Execute for exactly the period the heartbeater
// runs, and resumes only after the heartbeater has fully stopped.
func executeWithHeartbeat(ctx context.Context, wc *wireConn, leaseID uint64, job *WorkerJob, trials []engine.Trial, interval time.Duration) (map[int]any, Stats, error) {
	hbCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	stop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-hbCtx.Done():
				return
			case <-ticker.C:
				if err := wc.send(fmt.Sprintf("PING %d", leaseID)); err != nil {
					cancel(&transportError{err: err})
					return
				}
				line, err := wc.recv()
				if err != nil {
					cancel(&transportError{err: err})
					return
				}
				if verb, _ := splitMsg(line); verb == "GONE" {
					cancel(errLeaseRevoked)
					return
				}
			}
		}
	}()
	results, stats, err := job.Execute(hbCtx, trials)
	close(stop)
	<-hbDone
	if err != nil {
		// Surface the cancellation's cause: a revoked lease or a
		// heartbeat transport failure explains the abort better than
		// the bare context.Canceled the engine reports.
		if cause := context.Cause(hbCtx); cause != nil && !errors.Is(err, cause) && errors.Is(err, context.Canceled) {
			err = cause
		}
	}
	return results, stats, err
}

// sendFail reports a failure under the given verb: "FAIL" (chunk
// execution failed; the coordinator re-leases it once) or "REFUSE"
// (this worker cannot run the sweep; the coordinator aborts).
func sendFail(wc *wireConn, verb string, leaseID uint64, failure error) {
	if err := wc.send(fmt.Sprintf("%s %d %s", verb, leaseID, quoteMsg(failure.Error()))); err != nil {
		return
	}
	wc.recv() // the OK acknowledgement; errors are moot at this point
}
