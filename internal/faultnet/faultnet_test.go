package faultnet

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

// pipePair returns two ends of a real TCP connection on loopback, the
// accept side wrapped by a fault listener with the given profile.
func pipePair(t *testing.T, seed uint64, f Faults) (wrapped net.Conn, peer net.Conn, lis *Listener) {
	t.Helper()
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis = Listen(inner, seed, f)
	t.Cleanup(func() { lis.Close() })
	type accepted struct {
		c   net.Conn
		err error
	}
	ch := make(chan accepted, 1)
	go func() {
		c, err := lis.Accept()
		ch <- accepted{c, err}
	}()
	peer, err = net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peer.Close() })
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { a.c.Close() })
	return a.c, peer, lis
}

// TestQuietProfilePassesThrough: the zero profile must be a perfectly
// transparent pipe — bytes through, no faults counted.
func TestQuietProfilePassesThrough(t *testing.T) {
	wrapped, peer, lis := pipePair(t, 1, Faults{})
	msg := []byte("HELLO SFCOORD3 worker\n")
	if _, err := peer.Write(msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(wrapped, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("read %q, want %q", buf, msg)
	}
	if _, err := wrapped.Write([]byte("OK\n")); err != nil {
		t.Fatal(err)
	}
	reply := make([]byte, 3)
	if _, err := io.ReadFull(peer, reply); err != nil {
		t.Fatal(err)
	}
	if lis.Injected() != 0 {
		t.Errorf("quiet profile injected %d faults", lis.Injected())
	}
}

// TestSplitWritesReassemble: a split write must deliver every byte in
// order, just in more segments.
func TestSplitWritesReassemble(t *testing.T) {
	wrapped, peer, lis := pipePair(t, 7, Faults{SplitWrites: true})
	msg := bytes.Repeat([]byte("RESULT 1 E4 0 deadbeef\n"), 20)
	done := make(chan error, 1)
	go func() {
		_, err := wrapped.Write(msg)
		done <- err
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(peer, buf); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("split write corrupted the byte stream")
	}
	if lis.Injected() != 0 {
		t.Errorf("splits counted as faults: %d", lis.Injected())
	}
}

// TestInjectedReset: a reset-certain profile kills the connection on
// the first eligible op, and the peer observes EOF.
func TestInjectedReset(t *testing.T) {
	wrapped, peer, lis := pipePair(t, 3, Faults{ResetProb: 1})
	_, err := wrapped.Write([]byte("OK\n"))
	if err == nil {
		t.Fatal("reset-certain write succeeded")
	}
	if !strings.Contains(err.Error(), "injected reset") {
		t.Fatalf("err = %v, want injected reset", err)
	}
	if lis.Injected() != 1 {
		t.Errorf("Injected() = %d, want 1", lis.Injected())
	}
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Error("peer still readable after injected reset")
	}
}

// TestInjectedTruncation: the peer receives a strict prefix, then the
// stream ends — the framing-level fault a line protocol must absorb.
func TestInjectedTruncation(t *testing.T) {
	wrapped, peer, _ := pipePair(t, 5, Faults{TruncateProb: 1})
	msg := []byte("LEASE 1 E4 fingerprint 0 8\n")
	_, err := wrapped.Write(msg)
	if err == nil || !strings.Contains(err.Error(), "truncation") {
		t.Fatalf("err = %v, want injected truncation", err)
	}
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(peer)
	if len(got) >= len(msg) {
		t.Fatalf("peer received %d bytes, want a strict prefix of %d", len(got), len(msg))
	}
	if !bytes.HasPrefix(msg, got) {
		t.Fatal("truncated bytes are not a prefix of the write")
	}
}

// TestOneWayPartition: after the partition fires, the peer's writes
// keep succeeding but the wrapped side's reads deliver nothing; a read
// deadline is the only way out, and the wrapped side's own writes
// still flow — the asymmetry that distinguishes a partition from a
// reset.
func TestOneWayPartition(t *testing.T) {
	wrapped, peer, lis := pipePair(t, 11, Faults{PartitionProb: 1})
	if _, err := peer.Write([]byte("PING 1\n")); err != nil {
		t.Fatal(err)
	}
	wrapped.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	n, err := wrapped.Read(make([]byte, 64))
	if n != 0 || err == nil {
		t.Fatalf("partitioned read returned (%d, %v), want deadline error", n, err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("partitioned read error %v is not a timeout", err)
	}
	if lis.Injected() == 0 {
		t.Error("partition not counted as injected")
	}
	// The wrapped side still writes through.
	if _, err := wrapped.Write([]byte("GONE\n")); err != nil {
		t.Fatal(err)
	}
	reply := make([]byte, 5)
	peer.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := io.ReadFull(peer, reply); err != nil {
		t.Fatalf("peer could not read through the one-way partition: %v", err)
	}
	// Subsequent peer writes keep succeeding into the void.
	if _, err := peer.Write([]byte("PING 1\n")); err != nil {
		t.Errorf("peer write through partition failed: %v", err)
	}
}

// TestSkipOpsExemptsHandshake: with SkipOps set, the first ops pass
// untouched and the fault fires exactly on the first eligible op —
// the scripted "mid-sweep, not at the handshake" control.
func TestSkipOpsExemptsHandshake(t *testing.T) {
	wrapped, _, lis := pipePair(t, 13, Faults{ResetProb: 1, SkipOps: 3})
	for i := 0; i < 3; i++ {
		if _, err := wrapped.Write([]byte("OK\n")); err != nil {
			t.Fatalf("exempt op %d failed: %v", i, err)
		}
	}
	if lis.Injected() != 0 {
		t.Fatalf("faults fired during SkipOps window: %d", lis.Injected())
	}
	if _, err := wrapped.Write([]byte("OK\n")); err == nil {
		t.Fatal("first eligible op not reset")
	}
}

// TestMaxFaultsQuiesces: once the budget is spent, the schedule goes
// quiet and traffic flows — the convergence guarantee chaos sweeps
// lean on.
func TestMaxFaultsQuiesces(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis := Listen(inner, 17, Faults{ResetProb: 1, MaxFaults: 2})
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 64)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	// Echo until two connections died, then a third must run clean.
	deaths := 0
	for attempt := 0; attempt < 10 && deaths < 3; attempt++ {
		c, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c.SetDeadline(time.Now().Add(2 * time.Second))
		_, werr := c.Write([]byte("ping\n"))
		buf := make([]byte, 5)
		_, rerr := io.ReadFull(c, buf)
		c.Close()
		if werr != nil || rerr != nil {
			deaths++
			continue
		}
		if lis.Injected() >= 2 {
			// Budget exhausted and this exchange ran clean: done.
			return
		}
	}
	if lis.Injected() > 2 {
		t.Fatalf("injected %d faults past MaxFaults=2", lis.Injected())
	}
	t.Fatalf("no clean exchange after budget exhaustion (injected %d)", lis.Injected())
}

// TestScheduleIsDeterministic: two runs of the same seed, profile, and
// op sequence inject byte-identical event logs; a different seed
// diverges. This is the reproducible-from-a-seed contract.
func TestScheduleIsDeterministic(t *testing.T) {
	script := func(seed uint64) string {
		var mu sync.Mutex
		var events []string
		inner, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lis := Listen(inner, seed, Faults{ResetProb: 0.3, TruncateProb: 0.3, DelayProb: 0.2, DelayMax: time.Millisecond})
		defer lis.Close()
		lis.Log = func(format string, args ...any) {
			mu.Lock()
			events = append(events, strings.Split(format, ":")[0]+describe(args))
			mu.Unlock()
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			c, err := lis.Accept()
			if err != nil {
				return
			}
			defer c.Close()
			for i := 0; i < 30; i++ {
				if _, err := c.Write([]byte("a line of protocol traffic\n")); err != nil {
					return
				}
			}
		}()
		peer, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, peer)
		peer.Close()
		<-done
		mu.Lock()
		defer mu.Unlock()
		return strings.Join(events, "|")
	}
	a, b := script(42), script(42)
	if a != b {
		t.Fatalf("same seed produced different fault schedules:\n%s\n%s", a, b)
	}
	if c := script(43); c == a && a != "" {
		t.Logf("note: seeds 42 and 43 coincided (possible but unlikely): %q", a)
	}
	if a == "" {
		t.Fatal("profile injected nothing; the determinism check is vacuous")
	}
}

// TestStructuredEvents: OnEvent reports each injected fault with its
// op, connection index, and a monotonically increasing budget sequence
// — the machine-readable stream the CLI bridges into counters and the
// JSONL event log — and agrees with the printf Log adapter.
func TestStructuredEvents(t *testing.T) {
	var mu sync.Mutex
	var events []Event
	var logLines int
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis := Listen(inner, 19, Faults{ResetProb: 1, MaxFaults: 3})
	defer lis.Close()
	lis.OnEvent = func(ev Event) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	lis.Log = func(string, ...any) {
		mu.Lock()
		logLines++
		mu.Unlock()
	}
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				c.Write([]byte("OK\n"))
				io.Copy(io.Discard, c)
			}(c)
		}
	}()
	for i := 0; i < 5; i++ {
		c, err := net.Dial("tcp", lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		c.SetDeadline(time.Now().Add(2 * time.Second))
		io.Copy(io.Discard, c)
		c.Close()
		if lis.Injected() >= 3 {
			break
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3 (budget-capped)", len(events))
	}
	if logLines != len(events) {
		t.Errorf("Log fired %d times, OnEvent %d — the adapters diverged", logLines, len(events))
	}
	for i, ev := range events {
		if ev.Op != "reset" {
			t.Errorf("events[%d].Op = %q, want reset", i, ev.Op)
		}
		if ev.Seq != int64(i+1) {
			t.Errorf("events[%d].Seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Conn == 0 {
			t.Errorf("events[%d].Conn = 0, want 1-based accept index", i)
		}
	}
}

// TestWrapConnOnFault: the dial-side wrapper reports faults through
// OnFault with connection index 1.
func TestWrapConnOnFault(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wrapped := WrapConn(a, 23, Faults{ResetProb: 1, MaxFaults: 1})
	var got []Event
	wrapped.OnFault(func(ev Event) { got = append(got, ev) })
	if _, err := wrapped.Write([]byte("OK\n")); err == nil {
		t.Fatal("reset-certain write succeeded")
	}
	if len(got) != 1 || got[0].Op != "reset" || got[0].Conn != 1 || got[0].Seq != 1 {
		t.Fatalf("OnFault events = %+v, want one {reset 1 1}", got)
	}
}

func describe(args []any) string {
	var sb strings.Builder
	for _, a := range args {
		sb.WriteString("/")
		switch v := a.(type) {
		case string:
			sb.WriteString(v)
		default:
			sb.WriteString("x")
		}
	}
	return sb.String()
}

func TestMain(m *testing.M) { os.Exit(m.Run()) }
