package sweep

import (
	"slices"
	"sync"
	"time"
)

// chunk is the unit of lease-based scheduling: a contiguous slice
// [Lo,Hi) of one job's plan trials. Chunks are small (CoordOptions.
// ChunkSize trials) so a dead worker forfeits little work and a slow
// worker cannot strand the sweep's tail.
type chunk struct {
	JobIdx int // index into the coordinator's job list
	Lo, Hi int // trial slice range [Lo,Hi)
}

// lease is one chunk checked out to one worker with a heartbeat
// deadline. A lease past its deadline is forfeit: the next worker
// asking for work steals the chunk, and any results the original
// worker still delivers are resolved by content address.
type lease struct {
	ID       uint64
	Chunk    chunk
	Worker   string
	ConnID   uint64
	Granted  time.Time
	Deadline time.Time
}

// leaseTable is the coordinator's scheduling state: a FIFO queue of
// unassigned chunks plus the active leases. All methods are safe for
// concurrent use by connection handlers; time is injectable so expiry
// logic is unit-testable without sleeping.
type leaseTable struct {
	mu      sync.Mutex //sf:mutex leases.mu
	pending []chunk
	active  map[uint64]*lease
	nextID  uint64
	ttl     time.Duration
	now     func() time.Time
	// avoid maps a chunk requeued after a worker's FAIL to the failing
	// worker and a hold deadline: until the deadline passes, Acquire
	// refuses to hand the chunk back to its failer, so a host-local
	// fault is retried on a different host whenever one frees up
	// within a TTL. After the deadline anyone may take it — the time
	// gate, not a connection census, provides lone-worker liveness
	// (a zombie connection that never asks for work cannot starve the
	// retry).
	avoid map[chunk]avoidEntry
	// onDrop, if set, is notified of steals and revocations (see
	// dropFunc). Observation only — it never affects scheduling.
	onDrop dropFunc
}

// avoidEntry records who failed a chunk and until when the chunk is
// withheld from them.
type avoidEntry struct {
	worker string
	until  time.Time
}

// dropFunc observes the lease losses the table decides internally: how
// is "steal" (heartbeat deadline missed, chunk reclaimed) or "revoke"
// (connection death). Called with the table lock held — the observer
// must not re-enter the table.
type dropFunc func(l lease, how string)

func newLeaseTable(chunks []chunk, ttl time.Duration) *leaseTable {
	return &leaseTable{
		pending: append([]chunk(nil), chunks...),
		active:  map[uint64]*lease{},
		ttl:     ttl,
		now:     time.Now,
	}
}

// Acquire hands the next available chunk to a worker, reclaiming
// expired leases first (the work-stealing step). ok is false when
// nothing is assignable right now — either the sweep's chunks are all
// leased out and alive (poll again) or truly done (the caller knows
// which from its result bookkeeping).
func (lt *leaseTable) Acquire(worker string, connID uint64) (lease, bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.reclaimExpiredLocked()
	if len(lt.pending) == 0 {
		return lease{}, false
	}
	// Take the first chunk this worker may have: one it did not fail,
	// or one whose avoidance hold has expired (a healthy worker had a
	// full TTL to steal the retry; past that, liveness beats
	// preference — a lone worker must still drive its own retry to
	// the second-failure abort).
	now := lt.now()
	pick := -1
	for i, c := range lt.pending {
		if a, held := lt.avoid[c]; held && a.worker == worker && now.Before(a.until) {
			continue
		}
		pick = i
		break
	}
	if pick == -1 {
		// Everything pending is withheld from this worker for now;
		// poll again (WAIT) — another worker will take it, or the
		// hold expires.
		return lease{}, false
	}
	c := lt.pending[pick]
	lt.pending = append(lt.pending[:pick], lt.pending[pick+1:]...)
	lt.nextID++
	l := &lease{ID: lt.nextID, Chunk: c, Worker: worker, ConnID: connID, Granted: now, Deadline: lt.now().Add(lt.ttl)}
	lt.active[l.ID] = l
	return *l, true
}

// reclaimExpiredLocked moves every overdue lease's chunk back onto the
// pending queue. Called with mu held.
func (lt *leaseTable) reclaimExpiredLocked() {
	now := lt.now()
	// Reclaim in lease-ID order so the requeued chunk order (and the
	// onDrop event stream) is a function of grant order, not of map
	// iteration order.
	var expired []uint64
	for id, l := range lt.active {
		if now.After(l.Deadline) {
			expired = append(expired, id)
		}
	}
	slices.Sort(expired)
	for _, id := range expired {
		l := lt.active[id]
		lt.pending = append(lt.pending, l.Chunk)
		delete(lt.active, id)
		if lt.onDrop != nil {
			lt.onDrop(*l, "steal")
		}
	}
}

// Heartbeat extends a live lease's deadline; false means the lease was
// revoked (expired and reassigned) or already completed, telling the
// worker its chunk now belongs to someone else.
func (lt *leaseTable) Heartbeat(id uint64) bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	l, ok := lt.active[id]
	if !ok {
		return false
	}
	if lt.now().After(l.Deadline) {
		// Expired but not yet reclaimed: treat the late heartbeat as
		// lost — the chunk must become stealable, not quietly revived.
		lt.pending = append(lt.pending, l.Chunk)
		delete(lt.active, id)
		if lt.onDrop != nil {
			lt.onDrop(*l, "steal")
		}
		return false
	}
	l.Deadline = lt.now().Add(lt.ttl)
	return true
}

// Complete retires a lease, returning it so the caller can verify
// result coverage (and attribute the lease's lifetime); ok is false
// when the lease had already been revoked (harmless — the results were
// still accepted by content address).
func (lt *leaseTable) Complete(id uint64) (lease, bool) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	l, ok := lt.active[id]
	if !ok {
		return lease{}, false
	}
	delete(lt.active, id)
	return *l, true
}

// ActiveAfterReclaim reports how many leases remain live after
// reclaiming expired ones — the drain loop polls it to decide when
// every in-flight chunk has either landed or timed out.
func (lt *leaseTable) ActiveAfterReclaim() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.reclaimExpiredLocked()
	return len(lt.active)
}

// Requeue returns a chunk to the pending queue — the coverage
// backstop for a COMPLETE whose results did not all arrive.
func (lt *leaseTable) Requeue(c chunk) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	lt.pending = append(lt.pending, c)
}

// RequeueAvoiding returns a failed chunk to the pending queue,
// withholding it from the failing worker for one TTL so the retry
// lands on a different host whenever one frees up in time.
func (lt *leaseTable) RequeueAvoiding(c chunk, worker string) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if lt.avoid == nil {
		lt.avoid = map[chunk]avoidEntry{}
	}
	lt.avoid[c] = avoidEntry{worker: worker, until: lt.now().Add(lt.ttl)}
	lt.pending = append(lt.pending, c)
}

// RevokeConn returns every lease held by a disconnected worker's
// connection to the pending queue — immediate reassignment instead of
// waiting out the TTL when the death is observable as an EOF.
func (lt *leaseTable) RevokeConn(connID uint64) int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	var revoked []uint64
	for id, l := range lt.active {
		if l.ConnID == connID {
			revoked = append(revoked, id)
		}
	}
	slices.Sort(revoked)
	for _, id := range revoked {
		l := lt.active[id]
		lt.pending = append(lt.pending, l.Chunk)
		delete(lt.active, id)
		if lt.onDrop != nil {
			lt.onDrop(*l, "revoke")
		}
	}
	return len(revoked)
}

// Outstanding removes and returns every still-active lease in grant
// order — the coordinator's teardown uses it to close the trace spans
// of stragglers whose chunks completed through another lease.
func (lt *leaseTable) Outstanding() []lease {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	ids := make([]uint64, 0, len(lt.active))
	for id := range lt.active {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	out := make([]lease, 0, len(ids))
	for _, id := range ids {
		out = append(out, *lt.active[id])
		delete(lt.active, id)
	}
	return out
}

// Counts reports the pending-chunk and active-lease totals — the
// scheduling summary /status renders. Expired leases are not reclaimed
// here: a status read must never perturb scheduling.
func (lt *leaseTable) Counts() (pending, active int) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return len(lt.pending), len(lt.active)
}

// Idle reports whether nothing is pending or leased — combined with
// the coordinator's result count, the sweep-completion condition.
func (lt *leaseTable) Idle() bool {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return len(lt.pending) == 0 && len(lt.active) == 0
}

// chunked splits each job's trial list into ≤ size chunks, in job
// order then index order. The chunking affects only scheduling
// granularity, never results: every trial of every job appears in
// exactly one chunk.
func chunked(jobs []CoordJob, size int) []chunk {
	if size < 1 {
		size = 1
	}
	var out []chunk
	for j, job := range jobs {
		for lo := 0; lo < len(job.Trials); lo += size {
			hi := lo + size
			if hi > len(job.Trials) {
				hi = len(job.Trials)
			}
			out = append(out, chunk{JobIdx: j, Lo: lo, Hi: hi})
		}
	}
	return out
}
