package search

import (
	"bytes"
	"strings"
	"testing"

	"scalefree/internal/rng"
)

func TestTraceRecordsPaidRequestsOnly(t *testing.T) {
	g := pathGraph(4)
	o, err := NewOracle(g, 1, 4, Weak)
	if err != nil {
		t.Fatal(err)
	}
	o.EnableTrace()
	if _, _, err := o.RequestEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.RequestEdge(1, 0); err != nil { // cached: free
		t.Fatal(err)
	}
	if _, _, err := o.RequestEdge(2, 1); err != nil {
		t.Fatal(err)
	}
	trace := o.Trace()
	if len(trace) != 2 {
		t.Fatalf("trace has %d events, want 2 (cached re-read must not record)", len(trace))
	}
	if trace[0].Seq != 1 || trace[1].Seq != 2 {
		t.Errorf("trace sequence numbers: %+v", trace)
	}
	if trace[0].Kind != TraceEdgeRequest || trace[0].Subject != 1 || trace[0].Revealed != 2 {
		t.Errorf("first event = %+v", trace[0])
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	g := pathGraph(3)
	o, err := NewOracle(g, 1, 3, Weak)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.RequestEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if o.Trace() != nil {
		t.Error("trace recorded without EnableTrace")
	}
}

func TestTraceMarksTargetReveal(t *testing.T) {
	g := pathGraph(3)
	o, err := NewOracle(g, 1, 3, Weak)
	if err != nil {
		t.Fatal(err)
	}
	o.EnableTrace()
	if _, err := (&Flood{}).Search(o, rng.New(1), 0); err != nil {
		t.Fatal(err)
	}
	trace := o.Trace()
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	last := trace[len(trace)-1]
	if !last.Found {
		t.Errorf("last event should mark the target reveal: %+v", last)
	}
	for _, ev := range trace[:len(trace)-1] {
		if ev.Found {
			t.Errorf("premature found flag: %+v", ev)
		}
	}
}

func TestTraceStrongModel(t *testing.T) {
	g := starGraph(5)
	o, err := NewOracle(g, 2, 4, Strong)
	if err != nil {
		t.Fatal(err)
	}
	o.EnableTrace()
	if _, _, err := o.RequestVertex(2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.RequestVertex(1); err != nil {
		t.Fatal(err)
	}
	trace := o.Trace()
	if len(trace) != 2 {
		t.Fatalf("trace = %+v", trace)
	}
	if trace[0].Kind != TraceVertexRequest || trace[0].Slot != -1 {
		t.Errorf("strong event malformed: %+v", trace[0])
	}
	if !trace[1].Found {
		t.Error("hub request should reveal the target")
	}
}

func TestWriteTrace(t *testing.T) {
	events := []TraceEvent{
		{Seq: 1, Kind: TraceEdgeRequest, Subject: 3, Slot: 0, Revealed: 7},
		{Seq: 2, Kind: TraceVertexRequest, Subject: 7, Slot: -1, Found: true},
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"#1 edge (3, slot 0) -> 7", "#2 vertex 7", "[target revealed]"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceEdgeRequest.String() != "edge" || TraceVertexRequest.String() != "vertex" {
		t.Error("trace kind names wrong")
	}
	if TraceKind(9).String() == "" {
		t.Error("unknown kind stringer empty")
	}
}
