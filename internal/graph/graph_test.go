package graph

import (
	"testing"
	"testing/quick"

	"scalefree/internal/rng"
)

// buildPath returns the path 1-2-3-...-n as a frozen graph.
func buildPath(n int) *Graph {
	b := NewBuilder(n, n-1)
	b.AddVertices(n)
	for v := 1; v < n; v++ {
		b.AddEdge(Vertex(v), Vertex(v+1))
	}
	return b.Freeze()
}

func TestBuilderVertexIdentities(t *testing.T) {
	b := NewBuilder(0, 0)
	for want := Vertex(1); want <= 5; want++ {
		if got := b.AddVertex(); got != want {
			t.Fatalf("AddVertex returned %d, want %d", got, want)
		}
	}
	if b.NumVertices() != 5 {
		t.Fatalf("NumVertices = %d, want 5", b.NumVertices())
	}
}

func TestZeroValueBuilder(t *testing.T) {
	var b Builder
	v := b.AddVertex()
	if v != 1 {
		t.Fatalf("zero-value builder first vertex = %d, want 1", v)
	}
	g := b.Freeze()
	if g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Fatalf("unexpected snapshot: %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
}

func TestAddEdgeDegrees(t *testing.T) {
	b := NewBuilder(3, 3)
	b.AddVertices(3)
	b.AddEdge(2, 1)
	b.AddEdge(3, 1)
	b.AddEdge(3, 2)
	if got := b.InDegree(1); got != 2 {
		t.Errorf("InDegree(1) = %d, want 2", got)
	}
	if got := b.OutDegree(3); got != 2 {
		t.Errorf("OutDegree(3) = %d, want 2", got)
	}
	if got := b.Degree(2); got != 2 {
		t.Errorf("Degree(2) = %d, want 2", got)
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	b := NewBuilder(2, 1)
	b.AddVertices(2)
	cases := []struct{ u, v Vertex }{{0, 1}, {1, 0}, {3, 1}, {1, 3}, {-1, 1}}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AddEdge(%d, %d) did not panic", tc.u, tc.v)
				}
			}()
			b.AddEdge(tc.u, tc.v)
		}()
	}
}

func TestSelfLoopCountsTwice(t *testing.T) {
	b := NewBuilder(1, 1)
	b.AddVertex()
	b.AddEdge(1, 1)
	g := b.Freeze()
	if got := g.Degree(1); got != 2 {
		t.Errorf("Degree with self-loop = %d, want 2", got)
	}
	if got := g.InDegree(1); got != 1 {
		t.Errorf("InDegree with self-loop = %d, want 1", got)
	}
	if got := g.OutDegree(1); got != 1 {
		t.Errorf("OutDegree with self-loop = %d, want 1", got)
	}
	if got := g.NumSelfLoops(); got != 1 {
		t.Errorf("NumSelfLoops = %d, want 1", got)
	}
	inc := g.Incident(1)
	if len(inc) != 2 || inc[0].Other != 1 || inc[1].Other != 1 {
		t.Errorf("self-loop incidence = %+v", inc)
	}
	if inc[0].Out == inc[1].Out {
		t.Errorf("self-loop halves should have opposite Out flags: %+v", inc)
	}
}

func TestParallelEdges(t *testing.T) {
	b := NewBuilder(2, 3)
	b.AddVertices(2)
	b.AddEdge(1, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 1)
	g := b.Freeze()
	if got := g.Degree(1); got != 3 {
		t.Errorf("Degree(1) = %d, want 3", got)
	}
	if got := g.NumEdges(); got != 3 {
		t.Errorf("NumEdges = %d, want 3", got)
	}
	ns := g.AppendNeighbors(nil, 1)
	if len(ns) != 3 {
		t.Fatalf("neighbors of 1 = %v, want 3 entries", ns)
	}
	for _, w := range ns {
		if w != 2 {
			t.Errorf("unexpected neighbor %d", w)
		}
	}
}

func TestFreezeIsSnapshot(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddVertices(2)
	b.AddEdge(1, 2)
	g1 := b.Freeze()
	b.AddVertex()
	b.AddEdge(3, 1)
	g2 := b.Freeze()
	if g1.NumVertices() != 2 || g1.NumEdges() != 1 {
		t.Errorf("first snapshot mutated: %d vertices, %d edges", g1.NumVertices(), g1.NumEdges())
	}
	if g2.NumVertices() != 3 || g2.NumEdges() != 2 {
		t.Errorf("second snapshot wrong: %d vertices, %d edges", g2.NumVertices(), g2.NumEdges())
	}
}

func TestHalfAtMatchesIncident(t *testing.T) {
	g := buildPath(5)
	for v := Vertex(1); v <= 5; v++ {
		inc := g.Incident(v)
		for slot := range inc {
			if got := g.HalfAt(v, slot); got != inc[slot] {
				t.Errorf("HalfAt(%d, %d) = %+v, want %+v", v, slot, got, inc[slot])
			}
		}
	}
}

func TestEndpointsRoundTrip(t *testing.T) {
	b := NewBuilder(4, 4)
	b.AddVertices(4)
	pairs := [][2]Vertex{{2, 1}, {3, 2}, {4, 4}, {1, 4}}
	for _, p := range pairs {
		b.AddEdge(p[0], p[1])
	}
	g := b.Freeze()
	for e, p := range pairs {
		u, v := g.Endpoints(EdgeID(e))
		if u != p[0] || v != p[1] {
			t.Errorf("Endpoints(%d) = (%d, %d), want (%d, %d)", e, u, v, p[0], p[1])
		}
	}
}

func TestDegreeSumInvariant(t *testing.T) {
	// Sum of undirected degrees equals twice the edge count on random
	// multigraphs, including loops.
	check := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw%20) + 1
		m := int(mRaw % 50)
		r := rng.New(seed)
		b := NewBuilder(n, m)
		b.AddVertices(n)
		for i := 0; i < m; i++ {
			b.AddEdge(Vertex(r.IntRange(1, n)), Vertex(r.IntRange(1, n)))
		}
		g := b.Freeze()
		sum := 0
		inSum, outSum := 0, 0
		for v := Vertex(1); v <= Vertex(n); v++ {
			sum += g.Degree(v)
			inSum += g.InDegree(v)
			outSum += g.OutDegree(v)
		}
		return sum == 2*m && inSum == m && outSum == m
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDegreesAndMaxDegree(t *testing.T) {
	b := NewBuilder(3, 3)
	b.AddVertices(3)
	b.AddEdge(2, 1)
	b.AddEdge(3, 1)
	b.AddEdge(1, 1)
	g := b.Freeze()
	ds := g.Degrees()
	want := []int{0, 4, 1, 1}
	for i := range want {
		if ds[i] != want[i] {
			t.Errorf("Degrees()[%d] = %d, want %d", i, ds[i], want[i])
		}
	}
	if got := g.MaxDegree(); got != 4 {
		t.Errorf("MaxDegree = %d, want 4", got)
	}
	if got := g.MaxInDegree(); got != 3 {
		t.Errorf("MaxInDegree = %d, want 3", got)
	}
	ins := g.InDegrees()
	if ins[1] != 3 || ins[2] != 0 || ins[3] != 0 {
		t.Errorf("InDegrees = %v", ins)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0, 0).Freeze()
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.MaxDegree() != 0 || g.MaxInDegree() != 0 {
		t.Fatal("empty graph max degrees should be 0")
	}
	if !IsConnected(g) {
		t.Fatal("empty graph should count as connected")
	}
}
