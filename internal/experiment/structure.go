package experiment

import (
	"context"
	"fmt"
	"math"

	"scalefree/internal/ba"
	"scalefree/internal/configmodel"
	"scalefree/internal/core"
	"scalefree/internal/graph"
	"scalefree/internal/mori"
	"scalefree/internal/rng"
	"scalefree/internal/stats"
)

// PlanE5 fits the growth exponent of the maximum indegree: Móri's
// theorem gives Δ(n) ~ n^p for the Móri tree, versus n^(1/2) for
// Barabási–Albert — the contrast that decides whether the strong-model
// reduction is non-trivial. Every (model, size, replication) generation
// is one trial.
func PlanE5(cfg Config) (*Plan, error) {
	sizes := cfg.sizes(2048, 5)
	reps := cfg.scaleInt(10, 3)
	b := newPlanBuilder()

	type cell struct {
		name     string
		expected float64
		idx      [][]int // [size][rep] -> trial index
	}
	var cells []cell
	addCell := func(name string, expected float64, gen func(n int, r *rng.RNG, s *core.Scratch) (int, error), stream uint64) {
		c := cell{name: name, expected: expected, idx: make([][]int, len(sizes))}
		cellSeed := cfg.seed(400 + stream)
		for i, n := range sizes {
			c.idx[i] = make([]int, reps)
			for rep := 0; rep < reps; rep++ {
				// Seed derivation matches the historical serial harness:
				// one stream per (size, replication) pair.
				c.idx[i][rep] = b.addScratch(
					fmt.Sprintf("E5/%s/n=%d/rep=%d", name, n, rep),
					rng.DeriveSeed(cellSeed, uint64(i*1000+rep)),
					func(_ context.Context, r *rng.RNG, s *core.Scratch) (any, error) {
						d, err := gen(n, r, s)
						return float64(d), err
					})
			}
		}
		cells = append(cells, c)
	}

	for i, p := range []float64{0.25, 0.5, 0.75, 1.0} {
		addCell(fmt.Sprintf("mori p=%.2f", p), p, func(n int, r *rng.RNG, s *core.Scratch) (int, error) {
			t, err := mori.GenerateTreeScratch(r, n, p, moriScratch(s))
			if err != nil {
				return 0, err
			}
			best := 0
			for _, d := range t.InDegrees() {
				if d > best {
					best = d
				}
			}
			return best, nil
		}, uint64(i))
	}
	addCell("barabasi-albert m=1", 0.5, func(n int, r *rng.RNG, _ *core.Scratch) (int, error) {
		g, err := ba.Config{N: n, M: 1}.Generate(r)
		if err != nil {
			return 0, err
		}
		return g.MaxDegree(), nil
	}, 50)

	return b.build(func(results []any) ([]Table, error) {
		table := &Table{
			Title:   "E5  Maximum-degree growth Δ(n) ~ n^β",
			Columns: []string{"model", "expected β", "fitted β", "±se", "R2", "Δ at n(max)"},
			Notes: []string{
				"Móri strong-model bound needs β < 1/2, i.e. p < 1/2 (paper, Conclusion)",
				fmt.Sprintf("sizes %v, %d reps per point (mean of max indegree)", sizes, reps),
			},
		}
		for _, c := range cells {
			var ns, maxes []float64
			for i, n := range sizes {
				total := 0.0
				for _, idx := range c.idx[i] {
					d, ok := results[idx].(float64)
					if !ok {
						return nil, fmt.Errorf("E5 %s n=%d: result type %T", c.name, n, results[idx])
					}
					total += d
				}
				ns = append(ns, float64(n))
				maxes = append(maxes, total/float64(reps))
			}
			fit, err := stats.FitScaling(ns, maxes)
			if err != nil {
				return nil, fmt.Errorf("E5 %s: %w", c.name, err)
			}
			table.AddRow(c.name, c.expected, fit.Exponent, fit.ExponentSE, fit.R2, maxes[len(maxes)-1])
		}
		return []Table{*table}, nil
	}), nil
}

// PlanE6 fits power-law exponents to the degree distributions of every
// model — the scale-free premise of the paper. For the indegree-based
// Móri tree (attachment weight p·d_in + (1-p), i.e. d_in + β with
// β = (1-p)/p after normalization) the degree exponent is 2 + β =
// 1 + 1/p; for BA (total degree) it is 3; the configuration model
// reproduces its input exponent by construction. One trial per model:
// generate the graph and fit its tail.
func PlanE6(cfg Config) (*Plan, error) {
	n := cfg.scaleInt(1<<15, 2048)
	b := newPlanBuilder()

	fitGraph := func(g *graph.Graph, s *core.Scratch) (any, error) {
		degs := g.Degrees()[1:]
		if s != nil {
			degs = s.DegreesOf(g)
		}
		fit, err := stats.FitPowerLawAuto(degs, 50)
		if err != nil {
			return nil, err
		}
		ccdf := stats.HistogramOf(degs).CCDF()
		slope, _, err := stats.CCDFLogLogSlope(ccdf, fit.Xmin)
		if err != nil {
			return nil, err
		}
		return PowerLawFitResult{N: g.NumVertices(), Alpha: fit.Alpha, StdErr: fit.StdErr,
			Xmin: fit.Xmin, SlopePlus1: slope + 1, MaxDeg: g.MaxDegree()}, nil
	}

	type cell struct {
		name     string
		expected float64
		idx      int
	}
	var cells []cell
	addCell := func(name string, expected float64, seed uint64, gen func(r *rng.RNG) (*graph.Graph, error)) {
		idx := b.addScratch("E6/"+name, seed, func(_ context.Context, r *rng.RNG, s *core.Scratch) (any, error) {
			g, err := gen(r)
			if err != nil {
				return nil, err
			}
			return fitGraph(g, s)
		})
		cells = append(cells, cell{name: name, expected: expected, idx: idx})
	}

	for i, p := range []float64{0.5, 0.75, 1.0} {
		addCell(fmt.Sprintf("mori tree p=%.2f", p), 1+1/p, cfg.seed(500+uint64(i)),
			func(r *rng.RNG) (*graph.Graph, error) {
				t, err := mori.GenerateTree(r, n, p)
				if err != nil {
					return nil, err
				}
				return t.Graph(), nil
			})
	}
	addCell("mori merged m=4 p=0.75", 1+1/0.75, cfg.seed(510),
		func(r *rng.RNG) (*graph.Graph, error) {
			return mori.Config{N: n / 4, M: 4, P: 0.75}.Generate(r)
		})
	addCell("barabasi-albert m=2", 3, cfg.seed(511),
		func(r *rng.RNG) (*graph.Graph, error) {
			return ba.Config{N: n, M: 2}.Generate(r)
		})
	for i, k := range []float64{2.1, 2.5} {
		addCell(fmt.Sprintf("config-model k=%.1f", k), k, cfg.seed(512+uint64(i)),
			func(r *rng.RNG) (*graph.Graph, error) {
				return configmodel.Config{N: n, Exponent: k}.Generate(r)
			})
	}
	addCell("cooper-frieze α=0.7", 0, cfg.seed(514),
		func(r *rng.RNG) (*graph.Graph, error) {
			res, err := cfConfig(n, 0.7).Generate(r)
			if err != nil {
				return nil, err
			}
			return res.Graph, nil
		})

	return b.build(func(results []any) ([]Table, error) {
		table := &Table{
			Title:   "E6  Degree distributions (total degree, MLE tail fit)",
			Columns: []string{"model", "n", "expected α", "fitted α", "±se", "xmin", "ccdf-slope+1", "max-degree"},
			Notes: []string{
				"expected: Móri tree 1+1/p (indegree attachment); BA 3; config model its input k; CF depends on (α,β,γ,δ)",
				"ccdf-slope+1 is the log-log CCDF regression estimate of α (CCDF decays with α-1)",
			},
		}
		for _, c := range cells {
			fr, ok := results[c.idx].(PowerLawFitResult)
			if !ok {
				return nil, fmt.Errorf("E6 %s: result type %T", c.name, results[c.idx])
			}
			expectedCell := "-"
			if c.expected > 0 {
				expectedCell = formatFloat(c.expected)
			}
			table.AddRow(c.name, fr.N, expectedCell, fr.Alpha, fr.StdErr, fr.Xmin, fr.SlopePlus1, fr.MaxDeg)
		}
		return []Table{*table}, nil
	}), nil
}

// PlanE7 measures distance growth: mean BFS distance and double-sweep
// diameter against log n — the "logarithmic diameter" the paper
// contrasts with its polynomial search bound. One trial per
// (model, size): generate the graph and sample distances.
func PlanE7(cfg Config) (*Plan, error) {
	sizes := cfg.sizes(1024, 5)
	srcSamples := cfg.scaleInt(12, 4)
	b := newPlanBuilder()

	gens := []struct {
		name string
		gen  func(n int, r *rng.RNG, s *core.Scratch) (*graph.Graph, error)
	}{
		{"mori p=0.5 m=2", func(n int, r *rng.RNG, s *core.Scratch) (*graph.Graph, error) {
			return mori.Config{N: n, M: 2, P: 0.5}.GenerateScratch(r, moriScratch(s))
		}},
		{"cooper-frieze α=0.8", func(n int, r *rng.RNG, s *core.Scratch) (*graph.Graph, error) {
			res, err := cfConfig(n, 0.8).GenerateScratch(r, cfScratch(s))
			if err != nil {
				return nil, err
			}
			return res.Graph, nil
		}},
		{"barabasi-albert m=2", func(n int, r *rng.RNG, _ *core.Scratch) (*graph.Graph, error) {
			return ba.Config{N: n, M: 2}.Generate(r)
		}},
	}
	type cell struct {
		name string
		n    int
		idx  int
	}
	var cells []cell
	for gi, gspec := range gens {
		for si, n := range sizes {
			idx := b.addScratch(fmt.Sprintf("E7/%s/n=%d", gspec.name, n),
				cfg.seed(600+uint64(gi*100+si)),
				func(_ context.Context, r *rng.RNG, s *core.Scratch) (any, error) {
					g, err := gspec.gen(n, r, s)
					if err != nil {
						return nil, err
					}
					sources := make([]graph.Vertex, srcSamples)
					for i := range sources {
						sources[i] = graph.Vertex(r.IntRange(1, g.NumVertices()))
					}
					var dist []int32
					var queue []graph.Vertex
					if s != nil {
						dist, queue = s.BFSBuffers(g.NumVertices())
					} else {
						dist = make([]int32, g.NumVertices()+1)
						queue = make([]graph.Vertex, 0, g.NumVertices())
					}
					return DistanceResult{
						MeanDist: graph.AverageDistanceSampledInto(g, sources, dist, queue),
						Diam:     graph.DoubleSweepLowerBoundInto(g, sources[0], dist, queue),
					}, nil
				})
			cells = append(cells, cell{name: gspec.name, n: n, idx: idx})
		}
	}

	return b.build(func(results []any) ([]Table, error) {
		table := &Table{
			Title:   "E7  Distance growth: logarithmic diameter vs polynomial search",
			Columns: []string{"model", "n", "mean-dist", "diam(lb)", "mean/ln(n)", "√n (contrast)"},
			Notes: []string{
				"mean/ln(n) stabilizing ⇒ logarithmic distances; the √n column is the search lower-bound scale",
			},
		}
		for _, c := range cells {
			dr, ok := results[c.idx].(DistanceResult)
			if !ok {
				return nil, fmt.Errorf("E7 %s n=%d: result type %T", c.name, c.n, results[c.idx])
			}
			table.AddRow(c.name, c.n, dr.MeanDist, dr.Diam,
				dr.MeanDist/math.Log(float64(c.n)), math.Sqrt(float64(c.n)))
		}
		return []Table{*table}, nil
	}), nil
}
