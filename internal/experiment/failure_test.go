package experiment

import (
	"errors"
	"testing"
)

// failingWriter errors after a fixed number of writes, injecting
// downstream IO failures into the renderers.
type failingWriter struct {
	remaining int
}

var errDiskFull = errors.New("disk full")

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.remaining <= 0 {
		return 0, errDiskFull
	}
	w.remaining--
	return len(p), nil
}

func TestRenderPropagatesWriteErrors(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"a"}}
	tab.AddRow("x")
	if err := tab.Render(&failingWriter{remaining: 0}); err == nil {
		t.Error("Render swallowed a write error")
	}
}

func TestCSVPropagatesWriteErrors(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("x", "y")
	for _, remaining := range []int{0, 1, 2} {
		if err := tab.CSV(&failingWriter{remaining: remaining}); err == nil {
			t.Errorf("CSV swallowed a write error at remaining=%d", remaining)
		}
	}
}

func TestCSVEventuallySucceeds(t *testing.T) {
	tab := &Table{Columns: []string{"a"}}
	tab.AddRow("x")
	if err := tab.CSV(&failingWriter{remaining: 100}); err != nil {
		t.Errorf("CSV failed with ample writer budget: %v", err)
	}
}
