// Command searchbench measures the expected number of local-knowledge
// requests needed to find the youngest vertex in an evolving scale-free
// graph, for a chosen model and algorithm, across a size sweep.
//
// Usage:
//
//	searchbench -model mori -p 0.5 -m 1 -algo degree-greedy-weak \
//	            -sizes 512,1024,2048 -reps 24 [-budget 0] [-seed 1] [-workers 0]
//
// Models: mori (flags -p, -m) and cf (flags -alpha, -beta, -gamma,
// -delta). Algorithms: any name from the weak or strong suite; use
// -list to print them. Replications run on the trial engine's worker
// pool (-workers 0 uses every core); the measured table is bit-identical
// for every worker count under the same seed.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"scalefree/internal/cooperfrieze"
	"scalefree/internal/core"
	"scalefree/internal/engine"
	"scalefree/internal/experiment"
	"scalefree/internal/mori"
	"scalefree/internal/search"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "searchbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		model    = flag.String("model", "mori", "graph model: mori or cf")
		p        = flag.Float64("p", 0.5, "mori: preferential mixing (0 < p <= 1)")
		m        = flag.Int("m", 1, "mori: merge factor")
		alpha    = flag.Float64("alpha", 0.8, "cf: probability of procedure New")
		beta     = flag.Float64("beta", 0.5, "cf: P(New terminal preferential)")
		gamma    = flag.Float64("gamma", 0.5, "cf: P(Old terminal preferential)")
		delta    = flag.Float64("delta", 0.5, "cf: P(Old source uniform)")
		algoName = flag.String("algo", "degree-greedy-weak", "search algorithm name")
		sizesStr = flag.String("sizes", "512,1024,2048,4096", "comma-separated graph sizes")
		reps     = flag.Int("reps", 24, "replications per size")
		budget   = flag.Int("budget", 0, "request budget per run (0 = unlimited)")
		seed     = flag.Uint64("seed", 1, "master seed")
		workers  = flag.Int("workers", 0, "parallel trial workers (0 = GOMAXPROCS)")
		list     = flag.Bool("list", false, "list algorithms and exit")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *list {
		fmt.Println("weak model:")
		for _, a := range search.WeakAlgorithms() {
			fmt.Println("  ", a.Name())
		}
		fmt.Println("strong model:")
		for _, a := range search.StrongAlgorithms() {
			fmt.Println("  ", a.Name())
		}
		return nil
	}

	algo, err := findAlgorithm(*algoName)
	if err != nil {
		return err
	}
	sizes, err := parseSizes(*sizesStr)
	if err != nil {
		return err
	}

	var genFor func(n int) core.GraphGen
	var boundFor func(n int) (float64, error)
	switch *model {
	case "mori":
		genFor = func(n int) core.GraphGen {
			return core.MoriGen(mori.Config{N: n, M: *m, P: *p})
		}
		boundFor = func(n int) (float64, error) { return core.Theorem1Bound(n, *p) }
	case "cf":
		cf := func(n int) cooperfrieze.Config {
			return cooperfrieze.Config{N: n, Alpha: *alpha, Beta: *beta, Gamma: *gamma,
				Delta: *delta, AllowLoops: true}
		}
		genFor = func(n int) core.GraphGen { return core.CooperFriezeGen(cf(n)) }
		boundFor = func(n int) (float64, error) { return core.Theorem2Bound(cf(n), 300, *seed) }
	default:
		return fmt.Errorf("unknown model %q (mori or cf)", *model)
	}

	res, err := core.MeasureScalingContext(ctx, sizes, genFor, boundFor, core.SearchSpec{
		Algorithm: algo,
		Reps:      *reps,
		Budget:    *budget,
		Seed:      *seed,
	}, engine.Options{Workers: *workers})
	if err != nil {
		return err
	}

	tab := &experiment.Table{
		Title:   fmt.Sprintf("searchbench %s / %s (%v model)", *model, algo.Name(), algo.Knowledge()),
		Columns: []string{"n", "mean", "stderr", "median", "max", "bound", "found-rate"},
		Notes: []string{fmt.Sprintf("fitted exponent %.3f ± %.3f (R²=%.3f): E[requests] ≈ %.2f·n^%.3f",
			res.Fit.Exponent, res.Fit.ExponentSE, res.Fit.R2, res.Fit.Coeff, res.Fit.Exponent)},
	}
	for _, pt := range res.Points {
		s := pt.Measurement.Requests
		tab.AddRow(pt.N, s.Mean, s.StdErr, s.Median, s.Max, pt.Bound, pt.Measurement.FoundRate)
	}
	return tab.Render(os.Stdout)
}

func findAlgorithm(name string) (search.Algorithm, error) {
	for _, a := range append(search.WeakAlgorithms(), search.StrongAlgorithms()...) {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("unknown algorithm %q (use -list)", name)
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	sizes := make([]int, 0, len(parts))
	for _, part := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 8 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		sizes = append(sizes, n)
	}
	if len(sizes) < 2 {
		return nil, fmt.Errorf("need at least two sizes for a scaling fit")
	}
	return sizes, nil
}
