package experiment

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bee"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("x", 1.5)
	tab.AddRow(12345, "y")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "a", "bee", "1.500", "12345", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Columns: []string{"x", "y"}}
	tab.AddRow("plain", `with,comma "quoted"`)
	var buf bytes.Buffer
	if err := tab.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "x,y\nplain,\"with,comma \"\"quoted\"\"\"\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:      "3",
		3.5:    "3.500",
		1234.5: "1234.5",
		-0.25:  "-0.250",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 13 {
		t.Fatalf("registry has %d experiments, want 13", len(reg))
	}
	for i, e := range reg {
		if want := i + 1; idNum(e.ID) != want {
			t.Errorf("registry[%d] = %s, want E%d", i, e.ID, want)
		}
		if e.Title == "" || e.Plan == nil {
			t.Errorf("%s incomplete", e.ID)
		}
	}
	if _, ok := ByID("E7"); !ok {
		t.Error("ByID(E7) not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) found")
	}
}

func TestConfigScaling(t *testing.T) {
	c := Config{Scale: 0.1}
	if got := c.scaleInt(1000, 10); got != 100 {
		t.Errorf("scaleInt = %d, want 100", got)
	}
	if got := c.scaleInt(50, 10); got != 10 {
		t.Errorf("scaleInt floor = %d, want 10", got)
	}
	if got := (Config{}).scaleInt(70, 10); got != 70 {
		t.Errorf("unit scale = %d, want 70", got)
	}
	sizes := c.sizes(640, 3)
	if len(sizes) != 3 || sizes[0] != 64 || sizes[1] != 128 || sizes[2] != 256 {
		t.Errorf("sizes = %v", sizes)
	}
}

// TestAllExperimentsSmoke runs every experiment at a tiny scale: the
// integration test that the whole pipeline — models, oracles,
// algorithms, statistics, rendering — works end to end.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke tests are not short")
	}
	cfg := Config{Seed: 2024, Scale: 0.05}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: table %q is empty", e.ID, tab.Title)
				}
				var buf bytes.Buffer
				if err := tab.Render(&buf); err != nil {
					t.Errorf("%s: render: %v", e.ID, err)
				}
				if err := tab.CSV(&buf); err != nil {
					t.Errorf("%s: csv: %v", e.ID, err)
				}
			}
		})
	}
}
