package experiment

import (
	"context"
	"fmt"
	"math"

	"scalefree/internal/configmodel"
	"scalefree/internal/core"
	"scalefree/internal/graph"
	"scalefree/internal/kleinberg"
	"scalefree/internal/mori"
	"scalefree/internal/percolation"
	"scalefree/internal/rng"
	"scalefree/internal/search"
	"scalefree/internal/stats"
)

// PlanE8 reproduces Adamic et al.: on power-law configuration graphs
// with 2 < k < 3, high-degree (strong-model) search scales like
// n^(2(1-2/k)) while the random walk scales like n^(3(1-2/k)) — greedy
// wins, and both are sublinear. The Welch separation test runs in the
// reduce over the per-replication samples of the largest size.
func PlanE8(cfg Config) (*Plan, error) {
	sizes := cfg.sizes(1024, 4)
	reps := cfg.scaleInt(60, 8)
	b := newPlanBuilder()
	algos := []struct {
		alg    search.Algorithm
		theory func(k float64) float64
	}{
		{search.NewDegreeGreedyStrong(), core.AdamicGreedyExponent},
		{search.NewRandomWalkStrong(), core.AdamicWalkExponent},
	}
	type cell struct {
		k       float64
		ai      int
		collect cellCollector
	}
	var cells []cell
	stream := uint64(700)
	for _, k := range []float64{2.1, 2.3, 2.5} {
		for ai, a := range algos {
			stream++
			spec := core.SearchSpec{
				Algorithm:    a.alg,
				Reps:         reps,
				Seed:         cfg.seed(stream),
				RandomStart:  true,
				RandomTarget: true,
				Budget:       walkBudgetFactor * sizes[len(sizes)-1],
			}
			collect := addScalingCell(b,
				fmt.Sprintf("E8/k=%v/%s", k, a.alg.Name()), sizes,
				func(n int) core.GraphGen {
					return func(r *rng.RNG, _ *core.Scratch) (*graph.Graph, error) {
						g, _, err := configmodel.Config{N: n, Exponent: k, MinDeg: 2}.GenerateGiant(r)
						return g, err
					}
				},
				nil, spec)
			cells = append(cells, cell{k: k, ai: ai, collect: collect})
		}
	}
	return b.build(func(results []any) ([]Table, error) {
		table := &Table{
			Title: "E8  Adamic et al. — search on power-law configuration graphs (giant component)",
			Columns: []string{"algorithm", "k", "n(max)", "mean@max",
				"fit-exponent", "±se", "theory-exponent", "found-rate"},
			Notes: []string{
				"theory: greedy 2(1-2/k), walk 3(1-2/k); mean-field, so shape not constants",
				fmt.Sprintf("sizes %v (pre-extraction), %d reps, random start and target", sizes, reps),
			},
		}
		welch := &Table{
			Title:   "E8b  Greedy vs walk separation at the largest size (Welch t-test)",
			Columns: []string{"k", "greedy-mean", "walk-mean", "t", "p-value", "greedy-wins"},
			Notes:   []string{"the paper's related-work claim: high-degree search beats the walk"},
		}
		lastSamples := map[float64][][]float64{}
		lastMeans := map[float64][]float64{}
		var ks []float64
		for _, c := range cells {
			a := algos[c.ai]
			res, err := c.collect(results)
			if err != nil {
				return nil, fmt.Errorf("E8 k=%v %s: %w", c.k, a.alg.Name(), err)
			}
			last := res.Points[len(res.Points)-1]
			if c.ai == 0 {
				ks = append(ks, c.k)
				lastSamples[c.k] = make([][]float64, len(algos))
				lastMeans[c.k] = make([]float64, len(algos))
			}
			lastSamples[c.k][c.ai] = last.Measurement.Samples
			lastMeans[c.k][c.ai] = last.Measurement.Requests.Mean
			table.AddRow(a.alg.Name(), c.k, last.N,
				last.Measurement.Requests.Mean,
				res.Fit.Exponent, res.Fit.ExponentSE,
				a.theory(c.k),
				last.Measurement.FoundRate)
		}
		for _, k := range ks {
			wres, err := stats.WelchTTest(lastSamples[k][0], lastSamples[k][1])
			if err != nil {
				return nil, fmt.Errorf("E8 Welch k=%v: %w", k, err)
			}
			welch.AddRow(k, lastMeans[k][0], lastMeans[k][1], wres.T, wres.PValue,
				fmt.Sprintf("%v", lastMeans[k][0] < lastMeans[k][1]))
		}
		return []Table{*table, *welch}, nil
	}), nil
}

// PlanE9 reproduces the navigability contrast: Kleinberg greedy routing
// across the long-range exponent r, side by side with the best
// label-greedy searcher on a Móri graph of comparable size. Only the
// grid at r = 2 stays polylogarithmic; the scale-free searcher pays the
// Ω(√n) toll. One trial per (r, L) routing cell and one per contrast
// size.
func PlanE9(cfg Config) (*Plan, error) {
	reps := cfg.scaleInt(300, 50)
	searchReps := cfg.scaleInt(24, 6)
	b := newPlanBuilder()
	ls := []int{32, 64, 128}
	rExps := []float64{0, 1, 2, 3}

	// Grid cells keep the historical seeding: the graph stream depends
	// only on L, the source stream on L — so numbers match the serial
	// harness exactly.
	gridIdx := make([][]int, len(rExps)) // [rExp][li] -> trial index
	for ri, rExp := range rExps {
		gridIdx[ri] = make([]int, len(ls))
		for li, L := range ls {
			gridIdx[ri][li] = b.add(
				fmt.Sprintf("E9a/r=%v/L=%d", rExp, L),
				cfg.seed(800+uint64(li)),
				func(_ context.Context, _ *rng.RNG) (any, error) {
					g, err := kleinberg.Config{L: L, R: rExp}.Generate(rng.New(cfg.seed(800 + uint64(li))))
					if err != nil {
						return nil, fmt.Errorf("E9 L=%d r=%v: %w", L, rExp, err)
					}
					src := rng.New(cfg.seed(820 + uint64(li)))
					total := 0
					n := L * L
					for i := 0; i < reps; i++ {
						s := graph.Vertex(src.IntRange(1, n))
						t := graph.Vertex(src.IntRange(1, n))
						total += g.GreedyRoute(s, t, 0).Steps
					}
					return float64(total) / float64(reps), nil
				})
		}
	}

	// Contrast cells: one trial per size, each a full MeasureSearch
	// replication set (the per-size seeds match the serial harness).
	contrastSizes := make([]int, 0, 3)
	for _, n := range []int{1024, 4096, 16384} {
		contrastSizes = append(contrastSizes, cfg.scaleInt(n, 128))
	}
	contrastIdx := make([]int, len(contrastSizes))
	for i, n := range contrastSizes {
		seed := cfg.seed(850 + uint64(i))
		contrastIdx[i] = b.addScratch(
			fmt.Sprintf("E9b/n=%d", n), seed,
			func(_ context.Context, _ *rng.RNG, s *core.Scratch) (any, error) {
				return core.MeasureSearchScratch(
					core.MoriGen(mori.Config{N: n, M: 1, P: 0.5}),
					core.SearchSpec{
						Algorithm: search.NewIDGreedyWeak(),
						Reps:      searchReps,
						Seed:      seed,
					}, s)
			})
	}

	return b.build(func(results []any) ([]Table, error) {
		grid := &Table{
			Title:   "E9a  Kleinberg greedy routing: mean steps per delivery",
			Columns: []string{"r", "L=32", "L=64", "L=128", "ln²(n) @128"},
			Notes: []string{
				"r = 2 is the navigable exponent (O(log² n)); r < 2 grows as L^((2-r)/3)·…, r > 2 as a higher power",
				"finite-size note: the r<2 polynomial separation emerges slowly; r=3 is already clearly worse",
			},
		}
		for ri, rExp := range rExps {
			row := []interface{}{rExp}
			for li := range ls {
				mean, ok := results[gridIdx[ri][li]].(float64)
				if !ok {
					return nil, fmt.Errorf("E9a r=%v L=%d: result type %T", rExp, ls[li], results[gridIdx[ri][li]])
				}
				row = append(row, mean)
			}
			row = append(row, logSquared(ls[len(ls)-1]))
			grid.AddRow(row...)
		}

		contrast := &Table{
			Title:   "E9b  Scale-free contrast: id-greedy search on Móri graphs (weak model)",
			Columns: []string{"n", "mean-requests", "√n", "theorem bound"},
			Notes:   []string{"same identity-greedy idea as geographic greedy routing, defeated by Ω(√n)"},
		}
		for i, n := range contrastSizes {
			m, ok := results[contrastIdx[i]].(core.Measurement)
			if !ok {
				return nil, fmt.Errorf("E9b n=%d: result type %T", n, results[contrastIdx[i]])
			}
			bound, err := core.Theorem1Bound(n, 0.5)
			if err != nil {
				return nil, err
			}
			contrast.AddRow(n, m.Requests.Mean, sqrtf(n), bound)
		}
		return []Table{*grid, *contrast}, nil
	}), nil
}

// PlanE10 reproduces Sarshar et al.'s percolation search on a power-law
// giant component: hit rate and message cost across replication walk
// lengths and broadcast probabilities. The giant component is generated
// once at plan time and shared read-only by the per-(walk, q) trials.
func PlanE10(cfg Config) (*Plan, error) {
	n := cfg.scaleInt(1<<14, 2048)
	queries := cfg.scaleInt(60, 15)
	g, _, err := configmodel.Config{N: n, Exponent: 2.3, MinDeg: 1}.GenerateGiant(rng.New(cfg.seed(900)))
	if err != nil {
		return nil, fmt.Errorf("E10 generating graph: %w", err)
	}
	b := newPlanBuilder()

	type cell struct {
		walk int
		q    float64
		idx  int
	}
	var cells []cell
	nv := g.NumVertices()
	queryBase := cfg.seed(901)
	stream := uint64(0)
	for _, walk := range []int{isqrtInt(nv) / 2, isqrtInt(nv), 2 * isqrtInt(nv)} {
		for _, q := range []float64{0.1, 0.2, 0.3} {
			stream++
			idx := b.add(
				fmt.Sprintf("E10/walk=%d/q=%v", walk, q),
				rng.DeriveSeed(queryBase, stream),
				func(_ context.Context, r *rng.RNG) (any, error) {
					hits, msgs, reached := 0, 0, 0
					for i := 0; i < queries; i++ {
						origin := graph.Vertex(r.IntRange(1, nv))
						replicas := percolation.Replicate(g, r, origin, walk)
						start := graph.Vertex(r.IntRange(1, nv))
						res, err := percolation.Query(g, r, replicas, start, percolation.Config{
							QueryWalk:     walk / 2,
							BroadcastProb: q,
						})
						if err != nil {
							return nil, fmt.Errorf("E10 walk=%d q=%v: %w", walk, q, err)
						}
						if res.Hit {
							hits++
						}
						msgs += res.Messages
						reached += res.Reached
					}
					return PercolationCellResult{Hits: hits, Msgs: msgs, Reached: reached}, nil
				})
			cells = append(cells, cell{walk: walk, q: q, idx: idx})
		}
	}

	return b.build(func(results []any) ([]Table, error) {
		table := &Table{
			Title:   "E10  Percolation search (Sarshar et al.) on a k=2.3 giant component",
			Columns: []string{"replication-walk", "broadcast-q", "hit-rate", "mean-messages", "msg/edges", "mean-reached"},
			Notes: []string{
				fmt.Sprintf("giant component: %d vertices, %d edges; %d queries per cell",
					g.NumVertices(), g.NumEdges(), queries),
				"claim: sublinear traffic with high hit rate once replication is polynomial in n",
			},
		}
		for _, c := range cells {
			cr, ok := results[c.idx].(PercolationCellResult)
			if !ok {
				return nil, fmt.Errorf("E10 walk=%d q=%v: result type %T", c.walk, c.q, results[c.idx])
			}
			table.AddRow(c.walk, c.q,
				float64(cr.Hits)/float64(queries),
				float64(cr.Msgs)/float64(queries),
				float64(cr.Msgs)/float64(queries)/float64(g.NumEdges()),
				float64(cr.Reached)/float64(queries))
		}
		return []Table{*table}, nil
	}), nil
}

func logSquared(l int) float64 {
	ln := math.Log(float64(l) * float64(l))
	return ln * ln
}

func sqrtf(n int) float64 {
	return math.Sqrt(float64(n))
}

func isqrtInt(x int) int {
	if x < 0 {
		return 0
	}
	return int(math.Sqrt(float64(x)))
}
