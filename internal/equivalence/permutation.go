package equivalence

import (
	"fmt"
	"math"

	"scalefree/internal/graph"
	"scalefree/internal/mori"
)

// WindowPermutation builds a full permutation of [1, size] that acts as
// perm on the window (a, b] and as the identity elsewhere. perm must be
// a permutation of {0, ..., b-a-1}: window vertex a+1+i maps to
// a+1+perm[i].
func WindowPermutation(size, a, b int, perm []int) ([]graph.Vertex, error) {
	if err := validateWindow(a, b, size); err != nil {
		return nil, err
	}
	if len(perm) != b-a {
		return nil, fmt.Errorf("equivalence: perm length %d, window size %d", len(perm), b-a)
	}
	sigma := make([]graph.Vertex, size+1)
	for v := 1; v <= size; v++ {
		sigma[v] = graph.Vertex(v)
	}
	seen := make([]bool, b-a)
	for i, p := range perm {
		if p < 0 || p >= b-a || seen[p] {
			return nil, fmt.Errorf("equivalence: perm %v is not a permutation of [0, %d)", perm, b-a)
		}
		seen[p] = true
		sigma[a+1+i] = graph.Vertex(a + 1 + p)
	}
	return sigma, nil
}

// PermuteTree applies σ to a tree: edge k → father(k) becomes
// σ(k) → σ(father(k)). It errors when the image is not a valid
// increasing tree (some new father would be younger than its child),
// which is exactly the case Lemma 2 excludes by conditioning on
// E_{a,b}.
func PermuteTree(t *mori.Tree, sigma []graph.Vertex) (*mori.Tree, error) {
	size := t.Size()
	if len(sigma) != size+1 {
		return nil, fmt.Errorf("equivalence: sigma length %d for tree size %d", len(sigma), size)
	}
	out := &mori.Tree{P: t.P, Fathers: make([]graph.Vertex, size+1)}
	for k := 2; k <= size; k++ {
		child := sigma[k]
		father := sigma[t.Father(graph.Vertex(k))]
		if father >= child {
			return nil, fmt.Errorf("equivalence: σ maps edge %d→%d to non-increasing %d→%d",
				k, t.Father(graph.Vertex(k)), child, father)
		}
		out.Fathers[child] = father
	}
	if out.Fathers[2] != 1 {
		return nil, fmt.Errorf("equivalence: σ image has fathers[2] = %d", out.Fathers[2])
	}
	return out, nil
}

// ForEachPermutation enumerates all permutations of {0, ..., k-1} via
// Heap's algorithm, passing each to visit. The slice is reused; visit
// must not retain it.
func ForEachPermutation(k int, visit func(perm []int)) {
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	var rec func(n int)
	rec = func(n int) {
		if n == 1 {
			visit(perm)
			return
		}
		for i := 0; i < n; i++ {
			rec(n - 1)
			if n%2 == 0 {
				perm[i], perm[n-1] = perm[n-1], perm[i]
			} else {
				perm[0], perm[n-1] = perm[n-1], perm[0]
			}
		}
	}
	if k > 0 {
		rec(k)
	} else {
		visit(perm)
	}
}

// VerifyLemma2 exhaustively verifies Lemma 2 on trees of the given
// size: enumerating every tree T and every window permutation σ of
// (a, b], it checks that
//
//   - σ maps the event set {T : E_{a,b}(T)} onto itself, and
//   - P(T) = P(σ(T)) for every T satisfying E_{a,b}
//
// within tol. Complexity is (size-1)!·(b-a)!, so keep size <= 8.
// It returns the number of (tree, permutation) pairs checked.
func VerifyLemma2(size, a, b int, p, tol float64) (checked int, err error) {
	if err := validateWindow(a, b, size); err != nil {
		return 0, err
	}
	var firstErr error
	treeErr := mori.EnumerateTrees(size, func(fathers []graph.Vertex) {
		if firstErr != nil {
			return
		}
		t := &mori.Tree{P: p, Fathers: append([]graph.Vertex(nil), fathers...)}
		holds, err := CheckEvent(t, a, b)
		if err != nil {
			firstErr = err
			return
		}
		if !holds {
			return
		}
		probT, err := mori.TreeProb(t.Fathers, p)
		if err != nil {
			firstErr = err
			return
		}
		ForEachPermutation(b-a, func(perm []int) {
			if firstErr != nil {
				return
			}
			sigma, err := WindowPermutation(size, a, b, perm)
			if err != nil {
				firstErr = err
				return
			}
			image, err := PermuteTree(t, sigma)
			if err != nil {
				firstErr = fmt.Errorf("equivalence: σ broke an E-tree: %w", err)
				return
			}
			imageHolds, err := CheckEvent(image, a, b)
			if err != nil {
				firstErr = err
				return
			}
			if !imageHolds {
				firstErr = fmt.Errorf("equivalence: σ(%v) left the event set", t.Fathers)
				return
			}
			probImage, err := mori.TreeProb(image.Fathers, p)
			if err != nil {
				firstErr = err
				return
			}
			if math.Abs(probT-probImage) > tol {
				firstErr = fmt.Errorf("equivalence: P(T)=%v but P(σT)=%v for T=%v perm=%v",
					probT, probImage, t.Fathers, perm)
				return
			}
			checked++
		})
	})
	if treeErr != nil {
		return checked, treeErr
	}
	return checked, firstErr
}
