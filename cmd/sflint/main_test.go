package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseOptionsDefaults(t *testing.T) {
	o, err := parseOptions(nil)
	if err != nil {
		t.Fatalf("parseOptions(nil): %v", err)
	}
	if o.jsonOut || o.list {
		t.Errorf("defaults: jsonOut=%v list=%v, want false false", o.jsonOut, o.list)
	}
	if len(o.patterns) != 1 || o.patterns[0] != "./..." {
		t.Errorf("default patterns = %v, want [./...]", o.patterns)
	}
}

func TestParseOptionsRejectsUnknownFlag(t *testing.T) {
	if _, err := parseOptions([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag should be rejected")
	}
}

func TestListMode(t *testing.T) {
	var out, errBuf bytes.Buffer
	code, err := run([]string{"-list"}, &out, &errBuf)
	if err != nil || code != 0 {
		t.Fatalf("run -list: code=%d err=%v", code, err)
	}
	for _, name := range []string{"determinism", "lockorder", "hotpath", "codecreg"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// writeModule lays down a one-package module for run to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func TestJSONFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"clock.go": "package tmpmod\n\nimport \"time\"\n\n" +
			"func now() time.Time { return time.Now() }\n",
	})
	var out, errBuf bytes.Buffer
	code, err := run([]string{"-C", dir, "-json"}, &out, &errBuf)
	if err != nil {
		t.Fatalf("run -json: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings)", code)
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != "determinism" || d.File != "clock.go" || d.Line == 0 || d.Col == 0 {
		t.Errorf("finding = %+v, want determinism at clock.go with position", d)
	}
	if !strings.Contains(d.Message, "time.Now") {
		t.Errorf("message %q should name time.Now", d.Message)
	}
}

func TestJSONCleanModule(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module tmpmod\n\ngo 1.22\n",
		"pure.go": "package tmpmod\n\nfunc add(a, b int) int { return a + b }\n",
	})
	var out, errBuf bytes.Buffer
	code, err := run([]string{"-C", dir, "-json"}, &out, &errBuf)
	if err != nil || code != 0 {
		t.Fatalf("run -json on clean module: code=%d err=%v", code, err)
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("clean module produced findings: %+v", diags)
	}
}

func TestUnmatchedPatternFails(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":  "module tmpmod\n\ngo 1.22\n",
		"pure.go": "package tmpmod\n\nfunc one() int { return 1 }\n",
	})
	var out, errBuf bytes.Buffer
	code, err := run([]string{"-C", dir, "nonexistent/..."}, &out, &errBuf)
	if err == nil || code != 2 {
		t.Fatalf("unmatched pattern: code=%d err=%v, want usage error", code, err)
	}
}
