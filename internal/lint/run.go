package lint

import "fmt"

// Result is one full sflint run: the surviving diagnostics plus any
// suppression-hygiene errors. A run is clean only when both are
// empty.
type Result struct {
	// Diagnostics are the findings left after //sflint:ignore
	// suppression, in stable (file, line, column) order.
	Diagnostics []Diagnostic
	// IgnoreErrors are suppression-hygiene failures: stale ignores
	// (directives that suppressed nothing). Unknown analyzer names
	// and missing reasons fail earlier, at parse time.
	IgnoreErrors []Diagnostic
}

// Clean reports whether the run found nothing.
func (r *Result) Clean() bool {
	return len(r.Diagnostics) == 0 && len(r.IgnoreErrors) == 0
}

// All returns diagnostics and ignore errors merged in stable order —
// what the CLI prints and the JSON mode emits.
func (r *Result) All() []Diagnostic {
	out := append(append([]Diagnostic{}, r.Diagnostics...), r.IgnoreErrors...)
	sortDiagnostics(out)
	return out
}

// Run executes the analyzers over the packages and applies the
// //sflint:ignore suppressions. Analyzer execution errors (not
// findings) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) (*Result, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Notes:    pkg.Notes,
				report:   func(d Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	res := &Result{}
	res.Diagnostics = applyIgnores(pkgs, diags)
	for _, pkg := range pkgs {
		for _, ig := range pkg.Notes.Ignores {
			if !ig.Used {
				res.IgnoreErrors = append(res.IgnoreErrors, Diagnostic{
					Position: ig.Position,
					Analyzer: "sflint",
					Message: fmt.Sprintf("stale //sflint:ignore %s (%s): it suppresses nothing — delete it",
						ig.Analyzer, ig.Reason),
				})
			}
		}
	}
	sortDiagnostics(res.Diagnostics)
	sortDiagnostics(res.IgnoreErrors)
	return res, nil
}

// applyIgnores drops diagnostics covered by an //sflint:ignore for
// the same analyzer on the same line or the line directly above, and
// marks the directives used.
func applyIgnores(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	index := map[key][]*Ignore{}
	for _, pkg := range pkgs {
		for _, ig := range pkg.Notes.Ignores {
			k := key{ig.Position.Filename, ig.Position.Line, ig.Analyzer}
			index[k] = append(index[k], ig)
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, line := range []int{d.Position.Line, d.Position.Line - 1} {
			for _, ig := range index[key{d.Position.Filename, line, d.Analyzer}] {
				ig.Used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}
