package graph

import (
	"runtime"
	"testing"

	"scalefree/internal/rng"
)

// workerCounts is the sweep every parallel-equality test runs:
// serial fallback, minimal parallelism, and whatever the machine has.
func workerCounts() []int {
	counts := []int{1, 2, runtime.NumCPU()}
	if runtime.NumCPU() < 4 {
		counts = append(counts, 4, 8) // exercise workers > cores too
	}
	return counts
}

// randomMultigraph draws a directed multigraph with self-loops,
// parallel edges, and (for density < ~1) isolated vertices.
func randomMultigraph(r *rng.RNG, n, m int) *Graph {
	b := NewBuilder(n, m)
	b.AddVertices(n)
	for i := 0; i < m; i++ {
		b.AddEdge(Vertex(r.IntRange(1, n)), Vertex(r.IntRange(1, n)))
	}
	return b.Freeze()
}

func checkBFSParallelMatches(t *testing.T, g *Graph, src Vertex, workers int, s *BFSScratch) {
	t.Helper()
	n := g.NumVertices()
	want := make([]int32, n+1)
	queue := make([]Vertex, 0, n)
	BFSInto(g, src, want, queue)
	got := make([]int32, n+1)
	BFSParallelInto(g, src, got, workers, s)
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("workers=%d src=%d: dist[%d] = %d, want %d", workers, src, v, got[v], want[v])
		}
	}
}

// TestBFSParallelMatchesSerial sweeps random multigraphs — connected
// and disconnected, with multi-edges and self-loops — across sizes and
// worker counts. dist must match BFSInto entry for entry.
func TestBFSParallelMatchesSerial(t *testing.T) {
	r := rng.New(13)
	var s BFSScratch
	for _, size := range []struct{ n, m int }{
		{1, 0},       // singleton, no edges
		{2, 1},       // minimal pair
		{50, 40},     // sparse: many unreachable vertices
		{500, 400},   // disconnected at scale
		{1000, 4000}, // dense enough for one giant component
		{5000, 10000},
	} {
		g := randomMultigraph(r, size.n, size.m)
		sources := []Vertex{1, Vertex(size.n)}
		if size.n > 2 {
			sources = append(sources, Vertex(r.IntRange(1, size.n)))
		}
		for _, workers := range workerCounts() {
			for _, src := range sources {
				checkBFSParallelMatches(t, g, src, workers, &s)
			}
		}
	}
}

// TestBFSParallelWideFrontier forces the fan-out path (frontier far
// above the serial cutoff in a single level): a star plus a deep
// second tier, so level 1 has ~n vertices.
func TestBFSParallelWideFrontier(t *testing.T) {
	const n = 20000
	b := NewBuilder(n, n-1)
	b.AddVertices(n)
	for v := Vertex(2); v <= n; v++ {
		b.AddEdge(1, v)
	}
	g := b.Freeze()
	var s BFSScratch
	for _, workers := range workerCounts() {
		checkBFSParallelMatches(t, g, 1, workers, &s)
		checkBFSParallelMatches(t, g, n/2, workers, &s)
	}
}

// TestBFSParallelPathGraph: the worst case for level synchronization —
// n levels of frontier size 1 — must still terminate and agree.
func TestBFSParallelPathGraph(t *testing.T) {
	g := buildPath(2000)
	var s BFSScratch
	for _, workers := range workerCounts() {
		checkBFSParallelMatches(t, g, 1, workers, &s)
		checkBFSParallelMatches(t, g, 1000, workers, &s)
	}
}

// TestBFSParallelNilScratchAndConvenience covers the nil-scratch path
// and the allocating wrapper.
func TestBFSParallelNilScratchAndConvenience(t *testing.T) {
	g := randomMultigraph(rng.New(4), 800, 2400)
	want := BFS(g, 3)
	BFSParallelInto(g, 3, make([]int32, g.NumVertices()+1), 4, nil)
	got := BFSParallel(g, 3, 4)
	for v := range want {
		if want[v] != got[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSParallelSourceOutOfRange(t *testing.T) {
	g := buildPath(3)
	for _, src := range []Vertex{0, -1, 4} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BFSParallelInto(src=%d) did not panic", src)
				}
			}()
			BFSParallelInto(g, src, make([]int32, 4), 2, nil)
		}()
	}
}

// TestComponentsParallelMatchesSerial: labels and count must be
// byte-identical to Components for every worker count, including on
// graphs that are nothing but tiny components.
func TestComponentsParallelMatchesSerial(t *testing.T) {
	r := rng.New(21)
	var s BFSScratch
	for _, size := range []struct{ n, m int }{
		{1, 0},
		{80, 0},      // all isolated
		{300, 150},   // shattered
		{2000, 1500}, // mixed component sizes
		{4000, 12000},
	} {
		g := randomMultigraph(r, size.n, size.m)
		wantLabels, wantCount := Components(g)
		for _, workers := range workerCounts() {
			labels := make([]int32, size.n+1)
			count := ComponentsParallelInto(g, labels, workers, &s)
			if count != wantCount {
				t.Fatalf("n=%d workers=%d: count %d, want %d", size.n, workers, count, wantCount)
			}
			for v := range wantLabels {
				if labels[v] != wantLabels[v] {
					t.Fatalf("n=%d workers=%d: label[%d] = %d, want %d", size.n, workers, v, labels[v], wantLabels[v])
				}
			}
		}
		gotLabels, gotCount := ComponentsParallel(g, 3)
		if gotCount != wantCount {
			t.Fatalf("ComponentsParallel count %d, want %d", gotCount, wantCount)
		}
		sizes := ComponentSizesFrom(g, gotLabels, gotCount)
		total := 0
		for _, c := range sizes {
			total += c
		}
		if total != size.n {
			t.Fatalf("component sizes sum to %d, want %d", total, size.n)
		}
	}
}

// TestDistancePassesParallelMatchSerial pins the derived passes the
// CLIs use: double sweep and sampled mean distance.
func TestDistancePassesParallelMatchSerial(t *testing.T) {
	g := randomMultigraph(rng.New(31), 3000, 9000)
	n := g.NumVertices()
	dist := make([]int32, n+1)
	queue := make([]Vertex, 0, n)
	sources := []Vertex{1, 17, 1500, 3000}

	wantDiam := DoubleSweepLowerBoundInto(g, sources[0], dist, queue)
	wantMean := AverageDistanceSampledInto(g, sources, dist, queue)

	var s BFSScratch
	for _, workers := range workerCounts() {
		if got := DoubleSweepLowerBoundParallelInto(g, sources[0], dist, workers, &s); got != wantDiam {
			t.Errorf("workers=%d: double sweep %d, want %d", workers, got, wantDiam)
		}
		if got := AverageDistanceSampledParallelInto(g, sources, dist, workers, &s); got != wantMean {
			t.Errorf("workers=%d: mean distance %g, want %g", workers, got, wantMean)
		}
	}
}

// TestBFSParallelSteadyStateAllocs pins the zero-allocation contract:
// after warm-up, repeated traversals of the same graph through one
// scratch allocate nothing — frontier buffers, worker records, and
// goroutine bookkeeping are all reused.
func TestBFSParallelSteadyStateAllocs(t *testing.T) {
	g := randomMultigraph(rng.New(8), 30000, 90000)
	dist := make([]int32, g.NumVertices()+1)
	var s BFSScratch
	const workers = 4
	for i := 0; i < 3; i++ {
		BFSParallelInto(g, 1, dist, workers, &s)
	}
	if avg := testing.AllocsPerRun(10, func() {
		BFSParallelInto(g, 1, dist, workers, &s)
	}); avg != 0 {
		t.Errorf("BFSParallelInto allocates %.1f per run in steady state, want 0", avg)
	}
}

// TestMaxDegreeParallelMatches: partitioned maxima equal the serial
// scans on graphs big enough to actually partition.
func TestMaxDegreeParallelMatches(t *testing.T) {
	g := randomMultigraph(rng.New(44), 40000, 120000)
	for _, workers := range workerCounts() {
		if got := g.MaxDegreeParallel(workers); got != g.MaxDegree() {
			t.Errorf("workers=%d: MaxDegreeParallel %d, want %d", workers, got, g.MaxDegree())
		}
		if got := g.MaxInDegreeParallel(workers); got != g.MaxInDegree() {
			t.Errorf("workers=%d: MaxInDegreeParallel %d, want %d", workers, got, g.MaxInDegree())
		}
	}
}

// TestAppendDegrees: the buffer-reusing variants agree with the
// allocating ones and append (not overwrite).
func TestAppendDegrees(t *testing.T) {
	g := randomMultigraph(rng.New(5), 100, 250)
	wantDeg, wantIn := g.Degrees()[1:], g.InDegrees()[1:]

	buf := make([]int, 0, g.NumVertices())
	degs := g.AppendDegrees(buf)
	if &degs[0] != &buf[:1][0] {
		t.Error("AppendDegrees did not reuse the caller's buffer")
	}
	ins := g.AppendInDegrees(nil)
	for i := range wantDeg {
		if degs[i] != wantDeg[i] {
			t.Fatalf("AppendDegrees[%d] = %d, want %d", i, degs[i], wantDeg[i])
		}
		if ins[i] != wantIn[i] {
			t.Fatalf("AppendInDegrees[%d] = %d, want %d", i, ins[i], wantIn[i])
		}
	}
	prefixed := g.AppendDegrees([]int{-7})
	if prefixed[0] != -7 || len(prefixed) != g.NumVertices()+1 {
		t.Error("AppendDegrees overwrote existing entries instead of appending")
	}
}
