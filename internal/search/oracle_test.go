package search

import (
	"testing"

	"scalefree/internal/graph"
)

// pathGraph returns the path 1-2-...-n (edges oriented k+1 -> k).
func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n, n-1)
	b.AddVertices(n)
	for v := 2; v <= n; v++ {
		b.AddEdge(graph.Vertex(v), graph.Vertex(v-1))
	}
	return b.Freeze()
}

// starGraph returns a star with the hub as vertex 1 and n-1 leaves.
func starGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n, n-1)
	b.AddVertices(n)
	for v := 2; v <= n; v++ {
		b.AddEdge(graph.Vertex(v), 1)
	}
	return b.Freeze()
}

func TestNewOracleValidation(t *testing.T) {
	g := pathGraph(5)
	cases := []struct {
		name          string
		start, target graph.Vertex
		k             Knowledge
	}{
		{"bad model", 1, 2, Knowledge(0)},
		{"start zero", 0, 2, Weak},
		{"start high", 6, 2, Weak},
		{"target zero", 1, 0, Weak},
		{"target high", 1, 6, Strong},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewOracle(g, tc.start, tc.target, tc.k); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestOracleStartEqualsTarget(t *testing.T) {
	g := pathGraph(3)
	for _, k := range []Knowledge{Weak, Strong} {
		o, err := NewOracle(g, 2, 2, k)
		if err != nil {
			t.Fatal(err)
		}
		if !o.Found() || o.Requests() != 0 {
			t.Errorf("%v: found=%v requests=%d, want immediate success", k, o.Found(), o.Requests())
		}
		path, err := o.FoundPath()
		if err != nil {
			t.Fatal(err)
		}
		if len(path) != 1 || path[0] != 2 {
			t.Errorf("%v: path = %v", k, path)
		}
	}
}

func TestWeakRequestEdgeProtocol(t *testing.T) {
	g := pathGraph(4)
	o, err := NewOracle(g, 2, 4, Weak)
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := o.RequestEdge(3, 0); err == nil {
		t.Error("request on undiscovered vertex accepted")
	}
	if _, _, err := o.RequestEdge(2, -1); err == nil {
		t.Error("negative slot accepted")
	}
	if _, _, err := o.RequestEdge(2, 2); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, _, err := o.RequestVertex(2); err == nil {
		t.Error("RequestVertex accepted in weak model")
	}

	// Vertex 2's slots: slot 0 is its out-edge to 1, slot 1 the in-edge
	// from 3.
	v, newInfo, err := o.RequestEdge(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || !newInfo {
		t.Fatalf("RequestEdge(2,0) = (%d, %v)", v, newInfo)
	}
	if o.Requests() != 1 {
		t.Fatalf("requests = %d, want 1", o.Requests())
	}

	// Re-reading the same slot is free.
	v, newInfo, err = o.RequestEdge(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 || newInfo || o.Requests() != 1 {
		t.Fatalf("re-read = (%d, %v), requests %d; want cached", v, newInfo, o.Requests())
	}

	// The answer revealed vertex 1's edge list, and the searcher can
	// identify the connecting edge: vertex 1's slot for that edge must
	// be resolved to 2.
	view, ok := o.ViewOf(1)
	if !ok {
		t.Fatal("vertex 1 not discovered")
	}
	if view.Degree != 1 || view.Resolved[0] != 2 || view.Unresolved != 0 {
		t.Fatalf("view of 1 = %+v", view)
	}
}

func TestWeakFoundAndPath(t *testing.T) {
	g := pathGraph(4)
	o, err := NewOracle(g, 1, 4, Weak)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.FoundPath(); err == nil {
		t.Error("FoundPath before found should error")
	}
	// Walk up the path: 1 -> 2 -> 3 -> 4.
	cur := graph.Vertex(1)
	for !o.Found() {
		view, _ := o.ViewOf(cur)
		slot := -1
		for s, w := range view.Resolved {
			if w == graph.NoVertex {
				slot = s
				break
			}
		}
		if slot == -1 {
			t.Fatalf("no unresolved slot at %d", cur)
		}
		next, _, err := o.RequestEdge(cur, slot)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	if o.Requests() != 3 {
		t.Errorf("requests = %d, want 3", o.Requests())
	}
	path, err := o.FoundPath()
	if err != nil {
		t.Fatal(err)
	}
	want := []graph.Vertex{1, 2, 3, 4}
	if len(path) != 4 {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestWeakSelfLoopResolvesBothHalves(t *testing.T) {
	b := graph.NewBuilder(2, 2)
	b.AddVertices(2)
	b.AddEdge(1, 1)
	b.AddEdge(2, 1)
	g := b.Freeze()
	o, err := NewOracle(g, 1, 2, Weak)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 1 has 3 slots: two halves of the loop plus the edge from 2.
	view, _ := o.ViewOf(1)
	if view.Degree != 3 {
		t.Fatalf("degree of 1 = %d", view.Degree)
	}
	v, _, err := o.RequestEdge(1, 0) // a loop half
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("loop request returned %d", v)
	}
	if view.Resolved[0] != 1 || view.Resolved[1] != 1 {
		t.Fatalf("loop halves not both resolved: %v", view.Resolved)
	}
	if view.Unresolved != 1 {
		t.Fatalf("unresolved = %d, want 1", view.Unresolved)
	}
	if o.Found() {
		t.Fatal("loop revealed no new vertex; target cannot be found")
	}
}

func TestWeakParallelEdgesResolveIndependently(t *testing.T) {
	b := graph.NewBuilder(2, 2)
	b.AddVertices(2)
	b.AddEdge(2, 1)
	b.AddEdge(2, 1)
	g := b.Freeze()
	o, err := NewOracle(g, 1, 2, Weak)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.RequestEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	// Vertex 2 is now discovered; exactly one of its two slots (the one
	// carrying the requested edge) must be resolved.
	view, _ := o.ViewOf(2)
	resolved := 0
	for _, w := range view.Resolved {
		if w != graph.NoVertex {
			resolved++
		}
	}
	if resolved != 1 || view.Unresolved != 1 {
		t.Fatalf("parallel edge views: %+v", view)
	}
	// Vertex 1's other slot is still unresolved.
	v1, _ := o.ViewOf(1)
	if v1.Unresolved != 1 {
		t.Fatalf("vertex 1 unresolved = %d, want 1", v1.Unresolved)
	}
}

func TestStrongProtocol(t *testing.T) {
	g := starGraph(5)
	o, err := NewOracle(g, 2, 4, Strong)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.RequestEdge(2, 0); err == nil {
		t.Error("RequestEdge accepted in strong model")
	}
	if _, _, err := o.RequestVertex(1); err == nil {
		t.Error("request on non-visible vertex accepted")
	}
	if got := o.Visible(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("initial frontier = %v", got)
	}

	// Request the start: reveals the hub.
	ns, newInfo, err := o.RequestVertex(2)
	if err != nil {
		t.Fatal(err)
	}
	if !newInfo || len(ns) != 1 || ns[0] != 1 {
		t.Fatalf("neighbors of 2 = %v (new %v)", ns, newInfo)
	}
	if o.Requests() != 1 {
		t.Fatalf("requests = %d", o.Requests())
	}
	if !o.IsVisible(1) {
		t.Fatal("hub should be visible")
	}
	// The hub's degree is known once visible.
	hub, ok := o.ViewOf(1)
	if !ok || hub.Degree != 4 {
		t.Fatalf("hub view = %+v", hub)
	}

	// Requesting the hub reveals all leaves, including the target.
	ns, _, err = o.RequestVertex(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 4 {
		t.Fatalf("hub neighbors = %v", ns)
	}
	if !o.Found() {
		t.Fatal("target visible but not found")
	}
	if o.Requests() != 2 {
		t.Fatalf("requests = %d, want 2", o.Requests())
	}
	path, err := o.FoundPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 || path[0] != 2 || path[1] != 1 || path[2] != 4 {
		t.Fatalf("path = %v", path)
	}

	// Re-requesting a discovered vertex is free.
	_, newInfo, err = o.RequestVertex(2)
	if err != nil {
		t.Fatal(err)
	}
	if newInfo || o.Requests() != 2 {
		t.Fatal("re-request of discovered vertex was not free")
	}
}

func TestStrongFrontierShrinks(t *testing.T) {
	g := pathGraph(5)
	o, err := NewOracle(g, 3, 5, Strong)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := o.RequestVertex(3); err != nil {
		t.Fatal(err)
	}
	// Frontier: 2 and 4.
	front := o.Visible()
	if len(front) != 2 {
		t.Fatalf("frontier = %v", front)
	}
	if o.IsVisible(3) {
		t.Fatal("requested vertex still visible")
	}
	if _, _, err := o.RequestVertex(4); err != nil {
		t.Fatal(err)
	}
	if !o.Found() {
		t.Fatal("target 5 should be visible after requesting 4")
	}
}

func TestViewSharedStateIsConsistent(t *testing.T) {
	g := pathGraph(3)
	o, err := NewOracle(g, 1, 3, Weak)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o.ViewOf(99); ok {
		t.Error("view of unknown vertex reported ok")
	}
	if _, _, err := o.RequestEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if got := len(o.Discovered()); got != 2 {
		t.Fatalf("discovered = %d, want 2", got)
	}
}
