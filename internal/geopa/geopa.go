// Package geopa implements a geometric (spatial) preferential-
// attachment model, the second workload of the paper's closing remark
// (experiment E13 runs the weak/strong search battery on it).
//
// Each vertex arrives at an independent uniform position on the unit
// torus [0,1)²; every later vertex t attaches M edges to existing
// vertices chosen with probability proportional to
//
//	d_t(u) · e^{−dist(x_t, x_u)/R},
//
// where d_t(u) is the total degree of u, dist is the torus Euclidean
// distance, and R > 0 is the kernel range. This is the soft-kernel
// cousin of the Flaxman–Frieze–Vera geometric preferential-attachment
// model (and of the SPA family): degree still drives attachment, but
// geography damps it, so hubs are local and the age/degree correlation
// the paper's lower bounds exploit coexists with spatial clustering.
// R → ∞ degenerates to pure Barabási–Albert.
//
// The sampler stays on the O(1) endpoint array by rejection: a uniform
// draw from the array of recorded edge endpoints is a draw
// proportional to degree, and accepting it with probability
// e^{−dist/R} makes the joint draw exactly proportional to
// degree·kernel. The kernel is bounded below by e^{−√2/(2R)} (the
// torus diameter), so the rejection loop is exact and terminates in
// O(e^{√2/(2R)}) expected attempts — O(1) for fixed R — with O(1)
// allocations (amortized zero with a Scratch). GenerateRef keeps an
// O(n) per-draw exact-inversion sampler as the reference
// implementation the rejection path is validated against (chi-square
// equivalence in the tests); the two consume RNG streams differently,
// so equal seeds yield different (identically distributed) graphs.
package geopa

import (
	"fmt"
	"math"

	"scalefree/internal/buf"
	"scalefree/internal/graph"
	"scalefree/internal/rng"
	"scalefree/internal/weights"
)

// MinR is the practical floor on Config.R: expected rejection
// attempts per edge grow as e^{dist/R} (typical torus distance
// ≈ 0.38), so values below this would turn generation into an
// effectively unbounded busy-loop. At the floor the expected cost is
// ~e^{7.7} ≈ 2000 attempts per edge — slow but bounded.
const MinR = 0.05

// Config describes a geometric preferential-attachment graph.
type Config struct {
	N int     // number of vertices, >= 2
	M int     // edges added per new vertex, >= 1
	R float64 // proximity kernel range, >= MinR
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("geopa: N = %d < 2", c.N)
	}
	if c.M < 1 {
		return fmt.Errorf("geopa: M = %d < 1", c.M)
	}
	if math.IsNaN(c.R) || c.R <= 0 {
		return fmt.Errorf("geopa: R = %v must be positive", c.R)
	}
	if c.R < MinR {
		return fmt.Errorf("geopa: R = %v below the practical floor %v (expected rejection attempts grow as e^{dist/R})", c.R, MinR)
	}
	return nil
}

// String implements fmt.Stringer for bench and log labels.
func (c Config) String() string {
	return fmt.Sprintf("geopa(n=%d,m=%d,r=%g)", c.N, c.M, c.R)
}

// numEdges is the exact final edge count: the seed loop plus M edges
// per later vertex.
func (c Config) numEdges() int { return 1 + c.M*(c.N-1) }

// torusDist returns the Euclidean distance between two points on the
// unit torus (per-axis wraparound).
func torusDist(x1, y1, x2, y2 float64) float64 {
	dx := math.Abs(x1 - x2)
	if dx > 0.5 {
		dx = 1 - dx
	}
	dy := math.Abs(y1 - y2)
	if dy > 0.5 {
		dy = 1 - dy
	}
	return math.Sqrt(dx*dx + dy*dy)
}

// kernel is the proximity damping e^{−d/R}, in (0, 1].
func (c Config) kernel(d float64) float64 { return math.Exp(-d / c.R) }

// Scratch holds the reusable buffers of one generation worker: the
// edge-list builder, its CSR snapshot, the endpoint array, and the
// vertex position tables. The zero value is ready to use; after a
// warm-up generation, repeated same-size GenerateScratch calls
// allocate nothing.
type Scratch struct {
	builder graph.Builder
	g       graph.Graph
	ends    weights.EndpointArray
	xs, ys  []float64
}

// Generate draws a geometric PA graph: vertex 1 carries a seed
// self-loop at a uniform position, and every later vertex t arrives at
// a uniform position and attaches M edges chosen proportionally to
// degree·e^{−dist/R} (multi-edges allowed). The result is connected
// with 1 + M·(N-1) edges, standalone — it pins none of the generation
// buffers.
func (c Config) Generate(r *rng.RNG) (*graph.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(c.N, c.numEdges())
	c.generate(r, b, weights.NewEndpointArray(2*c.numEdges()),
		make([]float64, c.N+1), make([]float64, c.N+1))
	return b.Freeze(), nil
}

// GenerateScratch is Generate drawing the identical distribution (and,
// for equal seeds, the identical graph) through s's reusable buffers.
// The returned graph aliases s and is valid until the next call with
// the same scratch; callers that outlive the scratch must use
// Generate.
func (c Config) GenerateScratch(r *rng.RNG, s *Scratch) (*graph.Graph, error) {
	if s == nil {
		return c.Generate(r)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	s.builder.Reset(c.N, c.numEdges())
	s.ends.Reset(2 * c.numEdges())
	s.xs = buf.Grow(s.xs, c.N+1)
	s.ys = buf.Grow(s.ys, c.N+1)
	c.generate(r, &s.builder, &s.ends, s.xs, s.ys)
	return s.builder.FreezeInto(&s.g), nil
}

// generate runs the attachment process into a freshly reset builder,
// endpoint array, and position tables (length N+1).
func (c Config) generate(r *rng.RNG, b *graph.Builder, ends *weights.EndpointArray, xs, ys []float64) {
	b.AddVertex()
	xs[1], ys[1] = r.Float64(), r.Float64()
	b.AddEdge(1, 1)
	ends.Record(1)
	ends.Record(1)

	for t := 2; t <= c.N; t++ {
		v := b.AddVertex()
		vx, vy := r.Float64(), r.Float64()
		xs[v], ys[v] = vx, vy
		for i := 0; i < c.M; i++ {
			// Rejection: a degree-proportional endpoint draw accepted
			// with probability e^{−dist/R} makes the joint draw
			// ∝ degree·kernel. The kernel never vanishes (the torus
			// diameter bounds dist), so the loop is exact and its
			// expected attempt count is a constant for fixed R.
			var w graph.Vertex
			for {
				w = graph.Vertex(ends.Sample(r))
				if r.Bernoulli(c.kernel(torusDist(vx, vy, xs[w], ys[w]))) {
					break
				}
			}
			b.AddEdge(v, w)
		}
		// Record after all M draws so one vertex's edges are
		// exchangeable, exactly as in the BA generator.
		for i := 0; i < c.M; i++ {
			e := graph.EdgeID(b.NumEdges() - c.M + i)
			from, to := b.Endpoints(e)
			ends.Record(int32(from))
			ends.Record(int32(to))
		}
	}
}

// GenerateRef is the reference generator: the same process drawing
// every attachment target by exact inversion over the weights
// d(u)·e^{−dist/R} with an O(n) linear scan per draw. It samples
// exactly the same distribution as Generate and is kept for the
// chi-square equivalence test; the two consume RNG streams
// differently, so equal seeds yield different (identically
// distributed) graphs.
func (c Config) GenerateRef(r *rng.RNG) (*graph.Graph, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	b := graph.NewBuilder(c.N, c.numEdges())
	xs := make([]float64, c.N+1)
	ys := make([]float64, c.N+1)
	deg := make([]int, c.N+1)

	b.AddVertex()
	xs[1], ys[1] = r.Float64(), r.Float64()
	b.AddEdge(1, 1)
	deg[1] = 2

	w := make([]float64, c.N+1) // per-step weights d(u)·kernel
	for t := 2; t <= c.N; t++ {
		v := b.AddVertex()
		vx, vy := r.Float64(), r.Float64()
		xs[v], ys[v] = vx, vy
		total := 0.0
		for u := 1; u < t; u++ {
			w[u] = float64(deg[u]) * c.kernel(torusDist(vx, vy, xs[u], ys[u]))
			total += w[u]
		}
		base := b.NumEdges()
		for i := 0; i < c.M; i++ {
			x := r.Float64() * total
			target := graph.Vertex(1)
			for u := 1; u < t; u++ {
				x -= w[u]
				if x < 0 {
					target = graph.Vertex(u)
					break
				}
				// Accumulated rounding can push x past every weight;
				// the last weighted vertex absorbs it.
				if w[u] > 0 {
					target = graph.Vertex(u)
				}
			}
			b.AddEdge(v, target)
		}
		for i := 0; i < c.M; i++ {
			from, to := b.Endpoints(graph.EdgeID(base + i))
			deg[from]++
			deg[to]++
		}
	}
	return b.Freeze(), nil
}
