package experiment

import (
	"fmt"

	"scalefree/internal/core"
	"scalefree/internal/equivalence"
	"scalefree/internal/mori"
	"scalefree/internal/search"
)

// RunE11 is the extension experiment suggested by the paper's closing
// remark ("the technique we used seems broad enough to be adapted to
// other models of growing random graphs"): pure uniform attachment
// (p = 0, the random recursive tree), which lies outside the paper's
// 0 < p <= 1 range. The same equivalence window applies with exact
// P(E_{a,b}) → e^{-1}, so the Ω(√n) non-searchability carries over —
// and the measurements confirm it.
func RunE11(cfg Config) ([]Table, error) {
	sizes := cfg.sizes(512, 5)
	reps := cfg.scaleInt(24, 6)

	probs := &Table{
		Title:   "E11a  Extension p=0 (uniform attachment): equivalence event probability",
		Columns: []string{"n", "a", "b", "exact P(E)", "e^{-1} floor", "holds"},
	}
	for _, n := range []int{1 << 8, 1 << 10, 1 << 12} {
		a, b, err := equivalence.Window(n)
		if err != nil {
			return nil, err
		}
		exact, err := equivalence.ExactEventProb(0, a, b)
		if err != nil {
			return nil, err
		}
		floor := equivalence.Lemma3Bound(0)
		probs.AddRow(n, a, b, exact, floor, fmt.Sprintf("%v", exact >= floor-1e-12))
	}

	table := &Table{
		Title: "E11b  Extension p=0: weak-model search cost on random recursive trees",
		Columns: []string{"algorithm", "n(max)", "mean@max", "bound@max",
			"fit-exponent", "±se", "found-rate"},
		Notes: []string{
			"conjecture (paper's closing remark): exponent >= 0.5 persists at p = 0",
			fmt.Sprintf("sizes %v, %d reps per point", sizes, reps),
		},
	}
	stream := uint64(1100)
	for _, alg := range search.WeakAlgorithms() {
		stream++
		spec := core.SearchSpec{
			Algorithm: alg,
			Reps:      reps,
			Seed:      cfg.seed(stream),
		}
		if isWalk(alg) {
			spec.Budget = walkBudgetFactor * sizes[len(sizes)-1]
		}
		res, err := core.MeasureScaling(sizes,
			func(n int) core.GraphGen { return core.MoriGen(mori.Config{N: n, M: 1, P: 0}) },
			func(n int) (float64, error) { return core.Theorem1Bound(n, 0) },
			spec)
		if err != nil {
			return nil, fmt.Errorf("E11 %s: %w", alg.Name(), err)
		}
		last := res.Points[len(res.Points)-1]
		table.AddRow(alg.Name(), last.N,
			last.Measurement.Requests.Mean, last.Bound,
			res.Fit.Exponent, res.Fit.ExponentSE,
			last.Measurement.FoundRate)
	}
	return []Table{*probs, *table}, nil
}
