package sweep

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"scalefree/internal/engine"
)

// WorkerJob is the worker-local counterpart of a CoordJob: the plan's
// trials plus an Execute closure that runs a subset of them through
// the caller's execution stack (engine options, scratch factory,
// result cache). Execute must honour sweep.Execute's semantics:
// results keyed by plan trial index, context cancellation respected.
type WorkerJob struct {
	Trials  []engine.Trial
	Execute func(ctx context.Context, trials []engine.Trial) (map[int]any, Stats, error)
}

// WorkerJobResolver maps a leased (experiment ID, plan fingerprint)
// onto the worker's local plan. Returning an error means the worker
// cannot run this sweep at all — wrong experiment selection, seed,
// scale, or binary revision — and aborts the sweep loudly on both
// sides rather than letting a misconfigured worker spin or, worse,
// compute under different parameters.
type WorkerJobResolver func(expID, fingerprint string) (*WorkerJob, error)

// WorkerOptions configures one RunWorker call.
type WorkerOptions struct {
	// Name identifies the worker in coordinator-side progress and
	// error messages; empty defaults to host:pid.
	Name string
	// Heartbeat overrides the coordinator-announced PING interval
	// (tests); <= 0 uses the announced value.
	Heartbeat time.Duration
	// Log, if non-nil, receives one line per lease processed.
	Log func(format string, args ...any)
}

// RunWorker connects to a coordinator, pulls chunk leases until the
// coordinator reports the sweep done, executes each chunk via the
// resolver's Execute closure, and streams encoded results back. While
// a chunk executes, a background heartbeat keeps its lease alive; if
// the coordinator reports the lease revoked (this worker was presumed
// dead and its chunk stolen), the chunk's execution is cancelled and
// abandoned without error — the thief delivers the results. The
// returned stats aggregate what this worker executed and what its
// local cache satisfied.
func RunWorker(ctx context.Context, addr string, resolve WorkerJobResolver, opts WorkerOptions) (Stats, error) {
	var stats Stats
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return stats, fmt.Errorf("sweep: worker connecting to %s: %w", addr, err)
	}
	wc := newWireConn(conn)
	defer wc.close()
	// Unblock any in-flight read when the caller cancels.
	stopWatch := context.AfterFunc(ctx, func() { conn.Close() })
	defer stopWatch()

	name := opts.Name
	if name == "" {
		host, _ := os.Hostname()
		name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if err := wc.send(fmt.Sprintf("HELLO %s %s", protoVersion, name)); err != nil {
		return stats, fmt.Errorf("sweep: worker handshake: %w", err)
	}
	line, err := wc.recv()
	if err != nil {
		return stats, fmt.Errorf("sweep: worker handshake: %w", err)
	}
	verb, fields := splitMsg(line)
	if verb != "OK" {
		return stats, fmt.Errorf("sweep: coordinator rejected handshake: %s", line)
	}
	heartbeat := opts.Heartbeat
	if heartbeat <= 0 && len(fields) > 0 {
		if hb, err := parseMillis(fields[0]); err == nil && hb > 0 {
			heartbeat = hb
		}
	}
	if heartbeat <= 0 {
		heartbeat = 3 * time.Second
	}

	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		if err := wc.send("NEXT"); err != nil {
			return stats, fmt.Errorf("sweep: worker requesting chunk: %w", err)
		}
		line, err := wc.recv()
		if err != nil {
			return stats, fmt.Errorf("sweep: worker requesting chunk: %w", err)
		}
		verb, fields := splitMsg(line)
		switch verb {
		case "DONE":
			return stats, nil
		case "ABORT":
			// The sweep failed elsewhere (another worker's trial error
			// or config skew); exit nonzero so this worker's machine
			// also shows the failure.
			return stats, fmt.Errorf("sweep: aborted: %s", unquoteMsg(fields))
		case "WAIT":
			if len(fields) != 1 {
				return stats, fmt.Errorf("sweep: malformed WAIT %q", line)
			}
			d, err := parseMillis(fields[0])
			if err != nil {
				return stats, err
			}
			select {
			case <-ctx.Done():
				return stats, ctx.Err()
			case <-time.After(d):
			}
		case "LEASE":
			m, err := parseLease(fields)
			if err != nil {
				return stats, err
			}
			chunkStats, err := runLease(ctx, wc, m, resolve, heartbeat, opts.Log)
			stats.Executed += chunkStats.Executed
			stats.CacheHits += chunkStats.CacheHits
			if err != nil {
				return stats, err
			}
		case "ERR":
			return stats, fmt.Errorf("sweep: coordinator: %s", unquoteMsg(fields))
		default:
			return stats, fmt.Errorf("sweep: unexpected coordinator reply %q", line)
		}
	}
}

// runLease executes one leased chunk and streams its results. A
// revoked lease (stolen chunk) is not an error: the work is abandoned
// and the caller polls for the next chunk.
func runLease(ctx context.Context, wc *wireConn, m leaseMsg, resolve WorkerJobResolver, heartbeat time.Duration, logf func(string, ...any)) (Stats, error) {
	job, err := resolve(m.ExpID, m.Fingerprint)
	if err == nil && m.Hi > len(job.Trials) {
		err = fmt.Errorf("lease range [%d,%d) exceeds local plan of %d trials", m.Lo, m.Hi, len(job.Trials))
	}
	if err != nil {
		// The coordinator must learn this worker cannot participate;
		// a silent exit would look like a death and waste a TTL.
		sendFail(wc, m.ID, err)
		return Stats{}, fmt.Errorf("sweep: lease for %s: %w", m.ExpID, err)
	}
	trials := job.Trials[m.Lo:m.Hi]
	if logf != nil {
		logf("lease %d: %s trials [%d,%d)", m.ID, m.ExpID, m.Lo, m.Hi)
	}

	results, stats, err := executeWithHeartbeat(ctx, wc, m.ID, job, trials, heartbeat)
	if err != nil {
		if errors.Is(err, errLeaseRevoked) {
			if logf != nil {
				logf("lease %d revoked, chunk stolen", m.ID)
			}
			return stats, nil
		}
		if ctx.Err() != nil {
			return stats, ctx.Err()
		}
		sendFail(wc, m.ID, err)
		return stats, fmt.Errorf("sweep: executing %s trials [%d,%d): %w", m.ExpID, m.Lo, m.Hi, err)
	}

	// Stream the chunk's results in index order (determinism of the
	// wire stream itself is not required — results land positionally —
	// but ordered streams make captures diffable), then synchronize on
	// COMPLETE's acknowledgement.
	idxs := make([]int, 0, len(results))
	for i := range results {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		payload, err := EncodeResult(results[i])
		if err != nil {
			sendFail(wc, m.ID, err)
			return stats, fmt.Errorf("sweep: encoding %s trial %d: %w", m.ExpID, i, err)
		}
		if err := wc.buffer(formatResult(m.ID, m.ExpID, i, payload)); err != nil {
			return stats, fmt.Errorf("sweep: streaming results: %w", err)
		}
	}
	if err := wc.send(fmt.Sprintf("COMPLETE %d", m.ID)); err != nil {
		return stats, fmt.Errorf("sweep: completing lease: %w", err)
	}
	line, err := wc.recv()
	if err != nil {
		return stats, fmt.Errorf("sweep: completing lease: %w", err)
	}
	switch verb, fields := splitMsg(line); verb {
	case "OK", "GONE": // GONE: lease was stolen but the results were accepted
		return stats, nil
	case "ERR":
		return stats, fmt.Errorf("sweep: coordinator: %s", unquoteMsg(fields))
	default:
		return stats, fmt.Errorf("sweep: unexpected COMPLETE reply %q", line)
	}
}

// executeWithHeartbeat runs the chunk while a background goroutine
// owns the connection, pinging the lease every interval. The two
// goroutines never touch the connection concurrently: the main
// goroutine is inside Execute for exactly the period the heartbeater
// runs, and resumes only after the heartbeater has fully stopped.
func executeWithHeartbeat(ctx context.Context, wc *wireConn, leaseID uint64, job *WorkerJob, trials []engine.Trial, interval time.Duration) (map[int]any, Stats, error) {
	hbCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	stop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-hbCtx.Done():
				return
			case <-ticker.C:
				if err := wc.send(fmt.Sprintf("PING %d", leaseID)); err != nil {
					cancel(err)
					return
				}
				line, err := wc.recv()
				if err != nil {
					cancel(err)
					return
				}
				if verb, _ := splitMsg(line); verb == "GONE" {
					cancel(errLeaseRevoked)
					return
				}
			}
		}
	}()
	results, stats, err := job.Execute(hbCtx, trials)
	close(stop)
	<-hbDone
	if err != nil {
		// Surface the cancellation's cause: a revoked lease or a
		// heartbeat transport failure explains the abort better than
		// the bare context.Canceled the engine reports.
		if cause := context.Cause(hbCtx); cause != nil && !errors.Is(err, cause) && errors.Is(err, context.Canceled) {
			err = cause
		}
	}
	return results, stats, err
}

func sendFail(wc *wireConn, leaseID uint64, failure error) {
	if err := wc.send(fmt.Sprintf("FAIL %d %s", leaseID, quoteMsg(failure.Error()))); err != nil {
		return
	}
	wc.recv() // the OK acknowledgement; errors are moot at this point
}
