// Package kleinberg implements Kleinberg's navigable small-world model:
// an L×L torus grid where every vertex keeps its local edges and adds q
// long-range links chosen with probability proportional to d(u,v)^(−r),
// plus the greedy geographic routing algorithm.
//
// This is the navigable counterpoint the paper contrasts against: at
// r = 2 greedy routing delivers in O(log² n) steps, while for any other
// r (and, the paper proves, for scale-free evolving graphs under any
// local algorithm) delivery time is polynomial. Experiment E9
// reproduces the r-sweep.
package kleinberg

import (
	"fmt"
	"math"

	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

// Config describes a Kleinberg grid.
type Config struct {
	L int     // side length; the graph has L² vertices
	R float64 // long-range exponent r >= 0
	Q int     // long-range links per vertex (default 1)
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.L < 2 {
		return fmt.Errorf("kleinberg: L = %d < 2", c.L)
	}
	if c.R < 0 {
		return fmt.Errorf("kleinberg: R = %v < 0", c.R)
	}
	if c.Q < 0 {
		return fmt.Errorf("kleinberg: Q = %d < 0", c.Q)
	}
	return nil
}

// Grid is a realized Kleinberg small world: the frozen graph plus the
// geometry needed by greedy routing.
type Grid struct {
	L     int
	Graph *graph.Graph
}

// Generate draws a grid. Local edges connect each vertex to its right
// and down torus neighbors (the undirected view yields the full
// 4-neighborhood); each vertex then adds q directed long-range links
// with P(v) ∝ d(u,v)^(−r) over all v ≠ u.
func (c Config) Generate(r *rng.RNG) (*Grid, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	q := c.Q
	if q == 0 {
		q = 1
	}
	L := c.L
	n := L * L
	b := graph.NewBuilder(n, 2*n+q*n)
	b.AddVertices(n)

	g := &Grid{L: L}
	for v := graph.Vertex(1); v <= graph.Vertex(n); v++ {
		x, y := g.Coord(v)
		b.AddEdge(v, g.VertexAt((x+1)%L, y))
		b.AddEdge(v, g.VertexAt(x, (y+1)%L))
	}

	// Long-range links: sample a distance class proportional to
	// count(d)·d^(−r), then a uniform offset within the class.
	buckets, dist, err := offsetBuckets(L, c.R)
	if err != nil {
		return nil, err
	}
	for v := graph.Vertex(1); v <= graph.Vertex(n); v++ {
		x, y := g.Coord(v)
		for i := 0; i < q; i++ {
			class := buckets[dist.Sample(r)]
			off := class[r.Intn(len(class))]
			b.AddEdge(v, g.VertexAt((x+off[0])%L, (y+off[1])%L))
		}
	}
	g.Graph = b.Freeze()
	return g, nil
}

// offsetBuckets groups all non-zero torus offsets by Manhattan distance
// and builds the distance-class distribution with weights
// count(d)·d^(−r).
func offsetBuckets(L int, r float64) ([][][2]int, *rng.Discrete, error) {
	maxD := L // torus Manhattan distance is at most 2·(L/2)
	byDist := make([][][2]int, maxD+1)
	for dx := 0; dx < L; dx++ {
		for dy := 0; dy < L; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			d := torusAxis(dx, L) + torusAxis(dy, L)
			byDist[d] = append(byDist[d], [2]int{dx, dy})
		}
	}
	var buckets [][][2]int
	var weights []float64
	for d := 1; d <= maxD; d++ {
		if len(byDist[d]) == 0 {
			continue
		}
		buckets = append(buckets, byDist[d])
		weights = append(weights, float64(len(byDist[d]))*powNeg(float64(d), r))
	}
	dist, err := rng.NewDiscrete(weights)
	if err != nil {
		return nil, nil, fmt.Errorf("kleinberg: building distance distribution: %w", err)
	}
	return buckets, dist, nil
}

func powNeg(d, r float64) float64 {
	if r == 0 {
		return 1
	}
	return math.Pow(d, -r)
}

// Coord returns the (x, y) grid coordinates of v.
func (g *Grid) Coord(v graph.Vertex) (x, y int) {
	idx := int(v) - 1
	return idx % g.L, idx / g.L
}

// VertexAt returns the vertex at grid coordinates (x, y), both taken
// modulo L by the callers.
func (g *Grid) VertexAt(x, y int) graph.Vertex {
	return graph.Vertex(y*g.L + x + 1)
}

// Dist returns the torus Manhattan distance between two vertices.
func (g *Grid) Dist(a, b graph.Vertex) int {
	ax, ay := g.Coord(a)
	bx, by := g.Coord(b)
	return torusAxis(ax-bx, g.L) + torusAxis(ay-by, g.L)
}

func torusAxis(d, l int) int {
	if d < 0 {
		d = -d
	}
	if l-d < d {
		return l - d
	}
	return d
}

// RouteResult reports one greedy routing run.
type RouteResult struct {
	Steps     int
	Delivered bool
}

// GreedyRoute runs Kleinberg's greedy routing from s to t: at every
// step the message moves to the incident neighbor (local or long-range,
// over the undirected view) closest to t in torus Manhattan distance.
// Local edges guarantee progress, so routing always delivers; the
// maxSteps cap (<= 0 means no cap) exists for instrumentation.
func (g *Grid) GreedyRoute(s, t graph.Vertex, maxSteps int) RouteResult {
	cur := s
	steps := 0
	for cur != t {
		if maxSteps > 0 && steps >= maxSteps {
			return RouteResult{Steps: steps, Delivered: false}
		}
		best := graph.NoVertex
		bestD := g.Dist(cur, t)
		for _, h := range g.Graph.Incident(cur) {
			if d := g.Dist(h.Other, t); d < bestD {
				best = h.Other
				bestD = d
			}
		}
		// A local neighbor always strictly decreases distance, so best
		// is never NoVertex here.
		cur = best
		steps++
	}
	return RouteResult{Steps: steps, Delivered: true}
}
