package percolation

import (
	"testing"

	"scalefree/internal/configmodel"
	"scalefree/internal/graph"
	"scalefree/internal/rng"
)

func ringGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n, n)
	b.AddVertices(n)
	for v := 1; v < n; v++ {
		b.AddEdge(graph.Vertex(v), graph.Vertex(v+1))
	}
	b.AddEdge(graph.Vertex(n), 1)
	return b.Freeze()
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{ReplicationWalk: -1},
		{QueryWalk: -1},
		{BroadcastProb: -0.1},
		{BroadcastProb: 1.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, c)
		}
	}
}

func TestReplicateWalkLength(t *testing.T) {
	g := ringGraph(50)
	r := rng.New(3)
	replicas := Replicate(g, r, 10, 5)
	if !replicas[10] {
		t.Fatal("origin not replicated")
	}
	if len(replicas) < 2 || len(replicas) > 6 {
		t.Fatalf("replica count %d out of [2, 6] after a 5-step walk", len(replicas))
	}
	if len(Replicate(g, r, 10, 0)) != 1 {
		t.Fatal("zero-length walk should keep only the origin")
	}
}

func TestQueryValidation(t *testing.T) {
	g := ringGraph(10)
	if _, err := Query(g, rng.New(1), nil, 0, Config{}); err == nil {
		t.Error("start 0 accepted")
	}
	if _, err := Query(g, rng.New(1), nil, 11, Config{}); err == nil {
		t.Error("start out of range accepted")
	}
	if _, err := Query(g, rng.New(1), nil, 1, Config{BroadcastProb: 2}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestQueryFullBroadcastReachesComponent(t *testing.T) {
	g := ringGraph(40)
	res, err := Query(g, rng.New(7), map[graph.Vertex]bool{25: true}, 1, Config{BroadcastProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit {
		t.Error("full broadcast missed the replica")
	}
	if res.Reached != 40 {
		t.Errorf("reached %d of 40 vertices at q=1", res.Reached)
	}
	// Each ring edge traversed exactly once.
	if res.Messages != 40 {
		t.Errorf("messages = %d, want 40", res.Messages)
	}
}

func TestQueryZeroBroadcastIsJustTheWalk(t *testing.T) {
	g := ringGraph(30)
	res, err := Query(g, rng.New(9), map[graph.Vertex]bool{2: true}, 1,
		Config{QueryWalk: 4, BroadcastProb: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 4 {
		t.Errorf("messages = %d, want 4 walk steps", res.Messages)
	}
	if res.Reached > 5 {
		t.Errorf("reached %d vertices without broadcast", res.Reached)
	}
}

func TestQueryHitOnStartReplica(t *testing.T) {
	g := ringGraph(10)
	res, err := Query(g, rng.New(1), map[graph.Vertex]bool{3: true}, 3, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hit || res.Messages != 0 {
		t.Errorf("free hit on own replica: %+v", res)
	}
}

func TestQueryMessageCap(t *testing.T) {
	g := ringGraph(1000)
	res, err := Query(g, rng.New(5), nil, 1, Config{BroadcastProb: 1, MaxMessages: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages > 20 {
		t.Errorf("messages = %d exceeds cap 20", res.Messages)
	}
	if res.Hit {
		t.Error("hit reported with empty replica set")
	}
}

func TestQueryDeterminism(t *testing.T) {
	g := ringGraph(100)
	reps := map[graph.Vertex]bool{60: true}
	cfg := Config{QueryWalk: 10, BroadcastProb: 0.5}
	a, err := Query(g, rng.New(77), reps, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Query(g, rng.New(77), reps, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("same seed gave %+v then %+v", a, b)
	}
}

func TestPercolationOnPowerLawGraphIsSublinear(t *testing.T) {
	// The headline property: on a power-law giant component, a modest
	// replication level plus percolated broadcast hits with high
	// probability while touching a vanishing fraction of edges.
	g, _, err := configmodel.Config{N: 8000, Exponent: 2.3}.GenerateGiant(rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	n := g.NumVertices()
	hits, totalMsgs := 0, 0
	const trials = 30
	for i := 0; i < trials; i++ {
		origin := graph.Vertex(r.IntRange(1, n))
		replicas := Replicate(g, r, origin, 80)
		start := graph.Vertex(r.IntRange(1, n))
		res, err := Query(g, r, replicas, start, Config{QueryWalk: 40, BroadcastProb: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Hit {
			hits++
		}
		totalMsgs += res.Messages
	}
	if hits < trials*6/10 {
		t.Errorf("hit rate %d/%d too low", hits, trials)
	}
	meanMsgs := float64(totalMsgs) / trials
	if meanMsgs > float64(g.NumEdges())/2 {
		t.Errorf("mean messages %.0f not sublinear in edges %d", meanMsgs, g.NumEdges())
	}
}

func BenchmarkQuery(b *testing.B) {
	g, _, err := configmodel.Config{N: 1 << 13, Exponent: 2.3}.GenerateGiant(rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	replicas := Replicate(g, r, 1, 100)
	cfg := Config{QueryWalk: 30, BroadcastProb: 0.3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Query(g, r, replicas, graph.Vertex(r.IntRange(1, g.NumVertices())), cfg); err != nil {
			b.Fatal(err)
		}
	}
}
