// Package lint is sflint: a suite of static analyzers that prove the
// repository's determinism, lock-order, and hot-path invariants at
// compile time (DESIGN.md §10).
//
// The golden runtime tests (byte-identical tables for any
// workers/shards/coordinator configuration) catch determinism
// violations only on the code paths a test happens to exercise; the
// analyzers here check the *argument* instead of one schedule, the
// same discipline the paper applies to its schedule-independence
// proofs. Four analyzers ship:
//
//   - determinism: on the deterministic side of the DESIGN.md §9
//     boundary, forbids wall-clock reads (time.Now/Since/Until),
//     global math/rand, environment reads, and map iteration whose
//     results can leak iteration order into return values or output.
//     The nondeterministic side opts out with //sf:wallclock.
//   - lockorder: checks the documented coordinator lock order —
//     mutex fields annotated //sf:mutex NAME, the partial order
//     declared by //sf:lockorder A B (A may be held when acquiring
//     B, never the reverse), and //sf:locksequential functions that
//     must never nest any two annotated locks.
//   - hotpath: functions annotated //sf:hotpath may not contain
//     appends to unpreallocated local slices, closure allocations,
//     fmt calls, or interface-boxing conversions — the explained,
//     source-located form of the AllocsPerRun pins.
//   - codecreg: every exported *Result wire type in package
//     experiment must be registered with sweep.RegisterResult, and
//     every model Family's Build hook must read exactly the
//     parameters the family declares.
//
// Suppressions require //sflint:ignore <analyzer> <reason>; a
// missing reason, an unknown analyzer name, or a stale ignore (one
// matching no diagnostic) fails the run, so the suppression list can
// only shrink.
//
// Everything is built on the standard library's go/parser and
// go/types (no golang.org/x/tools dependency): Load type-checks the
// module's packages with a chained importer — module-internal paths
// from source in dependency order, standard-library paths through
// importer.ForCompiler(fset, "source", nil).
package lint
