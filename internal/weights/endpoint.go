package weights

import "scalefree/internal/rng"

// EndpointArray implements pure preferential attachment by the
// append-only endpoint-array trick: every time an edge touches a
// vertex, the vertex is appended; a uniform draw from the array is then
// a draw proportional to hit counts. It is O(1) per draw but, unlike
// Fenwick, supports only integer hit-count weights.
//
// It exists as the ablation baseline for the Fenwick sampler (see the
// package comment) and as the natural sampler for the Barabási–Albert
// model, whose weights are exactly total degrees.
type EndpointArray struct {
	hits []int32
}

// NewEndpointArray returns an empty sampler with a capacity hint.
func NewEndpointArray(capHint int) *EndpointArray {
	return &EndpointArray{hits: make([]int32, 0, capHint)}
}

// Record appends one hit for item (so its weight increases by one).
func (e *EndpointArray) Record(item int32) {
	e.hits = append(e.hits, item)
}

// Sample draws an item with probability proportional to its hit count.
// It panics when nothing has been recorded.
func (e *EndpointArray) Sample(r *rng.RNG) int32 {
	if len(e.hits) == 0 {
		panic("weights: EndpointArray.Sample with no recorded hits")
	}
	return e.hits[r.Intn(len(e.hits))]
}

// Total returns the total number of recorded hits.
func (e *EndpointArray) Total() int { return len(e.hits) }
