package experiment

import (
	"scalefree/internal/core"
	"scalefree/internal/sweep"
)

// The concrete result types experiment trials produce. They are the
// wire contract of the distribution layer: every value a Plan.Run can
// return is one of these (or float64 / core.SearchOutcome /
// core.Measurement), registered below with the sweep codec so shard
// files and the result cache round-trip them exactly. Fields are
// exported for the codec; wire names are stable — renaming one orphans
// cached results and must come with a CodecVersion bump.

// EquivProbResult is one E4a cell: exact vs Monte-Carlo equivalence
// event probability on the canonical window, with the Lemma-3 floor.
type EquivProbResult struct {
	A, B  int
	Exact float64
	Est   float64
	SE    float64
	Floor float64
}

// Lemma2Result is one E4b cell: an exhaustive Lemma-2 verification
// over a small tree size.
type Lemma2Result struct {
	Checked int
	Result  string
}

// WindowProbResult is one E11a cell: the exact equivalence event
// probability at p = 0.
type WindowProbResult struct {
	A, B  int
	Exact float64
}

// PercolationCellResult is one E10 cell: percolation-search query
// statistics summed over the cell's queries.
type PercolationCellResult struct {
	Hits    int
	Msgs    int
	Reached int
}

// PowerLawFitResult is one E6 cell: the MLE tail fit of a generated
// graph's degree distribution.
type PowerLawFitResult struct {
	N          int
	Alpha      float64
	StdErr     float64
	Xmin       int
	SlopePlus1 float64
	MaxDeg     int
}

// DistanceResult is one E7 cell: sampled mean BFS distance and the
// double-sweep diameter lower bound.
type DistanceResult struct {
	MeanDist float64
	Diam     int
}

// ModelStructResult is one E12/E13 structure cell: degree statistics
// of one registry-generated graph (a zero Alpha means the power-law
// tail fit was unavailable at this size).
type ModelStructResult struct {
	N      int
	MaxDeg int
	MaxIn  int
	Alpha  float64
	StdErr float64
	Xmin   int
}

func init() {
	// Shared scalar and core types.
	sweep.RegisterResult[float64]("float64")
	sweep.RegisterResult[core.SearchOutcome]("core.SearchOutcome")
	sweep.RegisterResult[core.Measurement]("core.Measurement")
	// Experiment-specific cells.
	sweep.RegisterResult[EquivProbResult]("experiment.EquivProbResult")
	sweep.RegisterResult[Lemma2Result]("experiment.Lemma2Result")
	sweep.RegisterResult[WindowProbResult]("experiment.WindowProbResult")
	sweep.RegisterResult[PercolationCellResult]("experiment.PercolationCellResult")
	sweep.RegisterResult[PowerLawFitResult]("experiment.PowerLawFitResult")
	sweep.RegisterResult[DistanceResult]("experiment.DistanceResult")
	sweep.RegisterResult[ModelStructResult]("experiment.ModelStructResult")
}
